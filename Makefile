# Convenience wrappers; everything real lives in dune.

DUNE ?= dune
SIM   = $(DUNE) exec bin/mdst_sim.exe --

.PHONY: all build test pbt pbt-long explore fuzz fuzz-long mutate bench bench-json bench-proto bench-parallel bench-guard pardet clean

all: build

build:
	$(DUNE) build @all

# Tier-1: bounded, fixed seeds, must stay fast (CI budget: 60 s).
test:
	$(DUNE) build
	$(DUNE) runtest

# Quick interactive property sweep (same defaults as CI's smoke run).
pbt: build
	$(SIM) pbt

# Extended sweep for nightly use: more cases, larger graphs and plans,
# plus the broken-variant self-check (must be falsified and shrunk).
pbt-long: build
	$(SIM) pbt --tests 500 --seed 20090525 --max-nodes 14 --max-events 8
	$(SIM) pbt --broken --tests 60 --seed 20090525

# Bounded schedule exploration: exhaustive delivery interleavings of a
# small instance, conformance against the reference model plus closure of
# the legitimacy predicate on every path (see docs/TESTING.md).
explore: build
	$(SIM) explore -f complete -n 4
	$(SIM) explore -f complete -n 4 --suppressed

# Coverage-guided schedule fuzzing smoke: swarm sweep + a short guided
# campaign, every execution in lockstep with the reference model.  Fails
# (non-zero) when a trophy is found; the reproducer is printed.
fuzz: build
	$(SIM) fuzz --quick --seed 1

# Extended campaign for nightly use: 20-minute budget, full graph sizes,
# corpus persisted under _fuzz-corpus/ (trophies land there too).
fuzz-long: build
	$(SIM) fuzz --budget 1200 --seed 20090525 --corpus _fuzz-corpus

# Mutation-check the suite: each historical-bug mutant must be detected
# when forced on and leave the probes silent when forced off.
mutate: build
	$(SIM) mutate

bench: build
	$(DUNE) exec bench/main.exe

# Engine macro-benchmarks (experiment E19): the tracked perf trajectory.
bench-json: build
	$(SIM) bench --out BENCH_engine.json

# Protocol macro-benchmarks (experiment E20): convergence time, message
# volume and allocation, with and without Info suppression.
bench-proto: build
	$(SIM) bench --proto --out BENCH_proto.json

# Parallel-engine trajectory: the full v2 sweep (sequential baselines plus
# the sharded engine at 2/4/8 domains with the speedup column), then the
# determinism gate — identical quiescence fingerprints across shard counts.
# Speedups above 1 need more cores than domains; the JSON header records
# how many the machine had.
bench-parallel: build
	$(SIM) bench --out BENCH_engine.json
	$(SIM) pardet -f grid -n 64 -s 11 --domains 1,2,4

# Parallel determinism gate alone: sharded-schedule conformance (model +
# sequential-engine replay) and fingerprint equivalence across 1/2/4
# shards.  Non-zero exit on any divergence.
pardet: build
	$(SIM) pardet -f grid -n 36 -s 7 --domains 1,2,4
	$(SIM) pardet -f er -n 24 -s 3 --init clean --domains 1,2,4

# Regression guard: re-measure quick engine points and compare against the
# committed trajectory (fails on an events/sec drop beyond 30% on any
# matching (topology, n, domains) key; v1 baselines parse as domains=1).
bench-guard: build
	$(SIM) bench --quick --out /tmp/BENCH_engine_fresh.json --baseline BENCH_engine.json

clean:
	$(DUNE) clean

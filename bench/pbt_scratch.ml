(* Standalone replay of the pinned convergence-under-adversity cases: the
   race reproducer from test_check and the fault-matrix triples from
   test_faults.  Useful when re-deriving the matrix goldens after an
   engine change: run it and copy the printed numbers. *)

let () =
  let module C = Mdst_check.Convergence in
  (* the case that exposed the stop-check / scheduled-fault race *)
  let r =
    C.Default.run_case
      (C.case_of_string
         "n=7;ids=5,1,3,4,0,7,2;edges=0-1,0-5,1-4,2-5,2-6,3-4,4-6;seed=341458;plan=seed=711241|cut:208:2-5")
  in
  Printf.printf "race case: converged=%b closure=%b rounds=%d\n%!" r.C.converged
    r.C.closure_ok r.C.rounds;
  List.iter
    (fun line ->
      let r = C.Default.run_case (C.case_of_string line) in
      Printf.printf "converged=%b closure=%b rounds=%d deg=%s a=%d b=%d\n%!"
        r.C.converged r.C.closure_ok r.C.rounds
        (match r.C.degree with Some d -> string_of_int d | None -> "-")
        (r.C.stats.Mdst_sim.Fault.drops + r.C.stats.Mdst_sim.Fault.corruptions + r.C.stats.Mdst_sim.Fault.cuts)
        (r.C.stats.Mdst_sim.Fault.crashes + r.C.stats.Mdst_sim.Fault.reorders + r.C.stats.Mdst_sim.Fault.links))
    [
      "n=8;edges=0-1,1-2,2-3,3-4,4-5,5-6,6-7,0-7;seed=5;plan=seed=2|drop:0-80:0>1:0.5|crash:60:3:random";
      "n=10;edges=0-1,1-2,2-3,3-4,0-4,0-5,1-6,2-7,3-8,4-9,5-7,7-9,9-6,6-8,8-5;seed=9;plan=seed=4|cut:40:0-1|link:90:0-2";
      "n=9;edges=0-1,1-2,3-4,4-5,6-7,7-8,0-3,3-6,1-4,4-7,2-5,5-8;seed=13;plan=seed=8|corrupt:0-60:4>1:0.75|reorder:0-120:1>4:0.5:6";
    ]

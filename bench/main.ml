(* Benchmark binary.

   Part 1 regenerates every table and figure of EXPERIMENTS.md (experiments
   E1..E20) through the analysis harness — `--quick` shrinks sizes/seeds,
   `--only E3` selects one experiment, `--bench-json FILE` additionally
   persists the E19 engine macro-bench points as JSON and `--proto-json
   FILE` the E20 protocol macro-bench points.

   Part 2 runs Bechamel micro-benchmarks of the hot substrate paths (one
   Test.make per experiment family plus the primitives they lean on), so
   regressions in the simulator or the solvers are visible independently of
   the experiment-level numbers.  `--skip-micro` omits it. *)

open Bechamel
open Toolkit
module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Algo = Mdst_graph.Algo
module Prng = Mdst_util.Prng

(* ---------------- micro-benchmarks ---------------- *)

let bench_graph_generation =
  Test.make ~name:"E-substrate: generate er-64"
    (Staged.stage (fun () -> ignore (Gen.erdos_renyi_connected (Prng.create 1) ~n:64 ~p:0.1)))

let bench_fundamental_cycle =
  let g = Gen.erdos_renyi_connected (Prng.create 2) ~n:64 ~p:0.1 in
  let t = Algo.bfs_tree g ~root:0 in
  let nte = Array.of_list (Tree.non_tree_edges t) in
  let i = ref 0 in
  Test.make ~name:"E-substrate: fundamental cycle (n=64)"
    (Staged.stage (fun () ->
         let e = nte.(!i mod Array.length nte) in
         incr i;
         ignore (Tree.fundamental_cycle t e)))

let bench_wilson =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:64 ~p:0.1 in
  let rng = Prng.create 4 in
  Test.make ~name:"E2: uniform random spanning tree (n=64)"
    (Staged.stage (fun () -> ignore (Algo.random_spanning_tree rng g ~root:0)))

let bench_fr =
  let g = Gen.erdos_renyi_connected (Prng.create 5) ~n:32 ~p:0.15 in
  Test.make ~name:"E1: FR sequential approx (n=32)"
    (Staged.stage (fun () -> ignore (Mdst_baseline.Fr.approx_mdst g)))

let bench_exact =
  let g = Gen.erdos_renyi_connected (Prng.create 6) ~n:12 ~p:0.3 in
  Test.make ~name:"E1: exact branch-and-bound (n=12)"
    (Staged.stage (fun () -> ignore (Mdst_baseline.Exact.solve g)))

let bench_engine_steps =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:24 ~p:0.2 in
  Test.make ~name:"E3: 1000 simulator events (n=24)"
    (Staged.stage (fun () ->
         let e = Mdst_core.Run.make_engine ~seed:3 g in
         for _ = 1 to 1000 do
           ignore (Mdst_core.Run.Engine.step e)
         done))

let bench_full_convergence =
  Test.make ~name:"E1: full convergence, ring-8, corrupted start"
    (Staged.stage (fun () ->
         ignore (Mdst_core.Run.converge ~seed:5 ~init:`Random (Gen.ring 8))))

let bench_prufer =
  let rng = Prng.create 8 in
  Test.make ~name:"E-substrate: prufer encode/decode (n=64)"
    (Staged.stage (fun () ->
         let edges = Mdst_graph.Prufer.random_tree rng ~n:64 in
         let seq = Mdst_graph.Prufer.encode ~n:64 edges in
         ignore (Mdst_graph.Prufer.decode ~n:64 seq)))

let bench_checker =
  let g = Gen.erdos_renyi_connected (Prng.create 9) ~n:32 ~p:0.15 in
  let e = Mdst_core.Run.make_engine ~seed:4 g in
  for _ = 1 to 20_000 do
    ignore (Mdst_core.Run.Engine.step e)
  done;
  let states = Mdst_core.Run.Engine.states e in
  Test.make ~name:"E-substrate: global legitimacy check (n=32)"
    (Staged.stage (fun () -> ignore (Mdst_core.Checker.legitimate g states)))

let bench_sync_rounds =
  let g = Gen.erdos_renyi_connected (Prng.create 10) ~n:24 ~p:0.2 in
  Test.make ~name:"E12: 50 synchronous rounds (n=24)"
    (Staged.stage (fun () ->
         let e = Mdst_core.Sync_run.Engine.create ~seed:3 g in
         for _ = 1 to 50 do
           Mdst_core.Sync_run.Engine.round e
         done))

let bench_pif_wave =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let tree = Algo.bfs_tree g ~root:0 in
  let module I = struct
    let parent_of id = Graph.id g (Tree.parent tree (Graph.index_of_id g id))

    let value_of id = id

    let combine = max

    let neutral = min_int
  end in
  let module A = Mdst_core.Pif.Make (I) in
  let module E = Mdst_sim.Engine.Make (A) in
  Test.make ~name:"E-substrate: PIF wave to completion (n=16)"
    (Staged.stage (fun () ->
         let e = E.create ~seed:2 g in
         let stop t = (E.state t 0).Mdst_core.Pif.result <> None in
         ignore (E.run e ~max_rounds:10_000 ~stop ())))

let micro_tests =
  [
    bench_graph_generation;
    bench_fundamental_cycle;
    bench_wilson;
    bench_fr;
    bench_exact;
    bench_engine_steps;
    bench_sync_rounds;
    bench_pif_wave;
    bench_full_convergence;
    bench_prufer;
    bench_checker;
  ]

let run_micro () =
  print_endline "\n######## Bechamel micro-benchmarks ########\n";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      Hashtbl.iter
        (fun name raw ->
          match Analyze.one ols instance raw with
          | result -> (
              match Analyze.OLS.estimates result with
              | Some [ est ] -> Printf.printf "%-50s %12.1f ns/run\n%!" name est
              | _ -> Printf.printf "%-50s (no estimate)\n%!" name)
          | exception _ -> Printf.printf "%-50s (analysis failed)\n%!" name)
        results)
    micro_tests

(* ---------------- entry point ---------------- *)

let () =
  let quick = Array.exists (( = ) "--quick") Sys.argv in
  let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv in
  let only = ref None in
  let bench_json = ref None in
  let proto_json = ref None in
  Array.iteri
    (fun i a ->
      if i + 1 < Array.length Sys.argv then begin
        if a = "--only" then only := Some Sys.argv.(i + 1);
        if a = "--bench-json" then bench_json := Some Sys.argv.(i + 1);
        if a = "--proto-json" then proto_json := Some Sys.argv.(i + 1)
      end)
    Sys.argv;
  (match !only with
  | Some id ->
      let e = Mdst_analysis.Registry.find id in
      Printf.printf "%s — %s\nclaim: %s\n\n" e.id e.title e.claim;
      List.iter Mdst_analysis.Table.print (e.run ~quick ())
  | None ->
      print_endline "######## Experiment suite (EXPERIMENTS.md tables & figures) ########";
      Mdst_analysis.Registry.run_all ~quick ());
  (match !bench_json with
  | Some path ->
      (* The E19 macro-bench points, re-measured and persisted: the same
         payload `mdst_sim bench` writes, honoring --quick. *)
      let points = Mdst_analysis.Bench_engine.points ~quick () in
      Mdst_analysis.Bench_engine.write_json ~path ~quick points;
      Printf.printf "wrote %s (%d points)\n%!" path (List.length points)
  | None -> ());
  (match !proto_json with
  | Some path ->
      (* The E20 protocol macro-bench points, same scheme as --bench-json:
         what `mdst_sim bench --proto` writes, honoring --quick. *)
      let points = Mdst_analysis.Bench_proto.points ~quick () in
      Mdst_analysis.Bench_proto.write_json ~path ~quick points;
      Printf.printf "wrote %s (%d points)\n%!" path (List.length points)
  | None -> ());
  if not skip_micro then run_micro ()

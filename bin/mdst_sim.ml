(* mdst_sim — command-line front end.

   Subcommands:
     run          simulate the self-stabilizing MDST protocol on one graph
     solve        compare FR / exact / naive baselines on one graph
     experiments  regenerate the tables and figures of EXPERIMENTS.md
     bench        engine macro-benchmarks; writes BENCH_engine.json
     pardet       parallel-determinism check (sharded schedule conformance
                  + fingerprint equivalence across shard counts)
     families     list the available graph families and named workloads *)

open Cmdliner
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Gen = Mdst_graph.Gen
module Run = Mdst_core.Run

let graph_of ~family ~n ~seed ~shuffle_ids ~input =
  (* Generation and relabelling get independent child streams, so
     --shuffle-ids permutes the identifiers of the *same* topology the
     unshuffled run uses, instead of changing the graph under the
     comparison. *)
  let rng = Mdst_util.Prng.create (seed lxor 0x5eed) in
  let gen_rng = Mdst_util.Prng.split rng in
  let id_rng = Mdst_util.Prng.split rng in
  let g =
    match input with
    | Some path -> Mdst_graph.Io.load path
    | None -> Gen.by_name family gen_rng ~n
  in
  if shuffle_ids then Gen.with_random_ids id_rng g else g

(* ---- common options ---- *)

let family_arg =
  let doc =
    "Graph family: " ^ String.concat ", " Gen.family_names ^ "."
  in
  Arg.(value & opt string "er" & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes (approximate for some families).")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let shuffle_arg =
  Arg.(value & flag & info [ "shuffle-ids" ] ~doc:"Assign a random permutation of identifiers (the protocol must not depend on the transport numbering).")

let input_arg =
  Arg.(value & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Load the topology from an edge-list file instead of generating one (see Mdst_graph.Io for the format).")

let save_graph_arg =
  Arg.(value & opt (some string) None & info [ "save-graph" ] ~docv:"FILE" ~doc:"Write the (generated) topology to $(docv) in edge-list form.")

(* ---- run ---- *)

let init_conv = Arg.enum [ ("clean", `Clean); ("random", `Random) ]

let init_arg =
  Arg.(value & opt init_conv `Random & info [ "init" ] ~docv:"INIT" ~doc:"Initial configuration: $(b,clean) or $(b,random) (adversarial).")

let latency_arg =
  let doc = "Latency model: " ^ String.concat ", " Mdst_sim.Latency.names ^ "." in
  Arg.(value & opt string "uniform" & info [ "latency" ] ~docv:"MODEL" ~doc)

let max_rounds_arg =
  Arg.(value & opt int Run.default_max_rounds & info [ "max-rounds" ] ~doc:"Abort after this many asynchronous rounds.")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the final tree as Graphviz DOT to $(docv).")

let oracle_arg =
  Arg.(value & flag & info [ "no-oracle" ] ~doc:"Do not require the Fürer–Raghavachari fixpoint in the stop condition (quiescence only).")

let trace_arg =
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc:"Print the first $(docv) protocol events (ticks excluded, gossip excluded).")

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"PLAN"
           ~doc:"Inject a deterministic fault plan while the protocol runs.  $(docv) is the textual plan form, e.g. $(b,seed=3|drop:0-200:0>1:0.5|crash:150:4:random|cut:100:0-1); see docs/FAULTS.md.  Convergence is only declared after the plan's last fault round.")

let domains_arg =
  Arg.(value & opt int 1
       & info [ "domains" ] ~docv:"K"
           ~doc:"Run the sharded parallel engine on $(docv) domains instead of the \
                 sequential engine.  The executed schedule is independent of $(docv): any \
                 two shard counts produce the same rounds, messages and final tree \
                 (verify with $(b,mdst_sim pardet)).  The parallel engine draws latencies \
                 from per-node streams, so its schedule differs from the sequential \
                 default's even though both stabilize the same instance.  $(b,--trace) \
                 and $(b,--faults) require the sequential engine.")

let run_cmd =
  let action family n seed shuffle input save_graph init latency max_rounds dot no_oracle trace
      faults domains =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    (match save_graph with
    | Some path ->
        Mdst_graph.Io.save path graph;
        Printf.printf "wrote topology to %s\n" path
    | None -> ());
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    if domains > 1 && (faults <> None || trace > 0) then begin
      prerr_endline "mdst_sim run: --trace and --faults require the sequential engine (--domains 1)";
      exit 2
    end;
    let fixpoint =
      if no_oracle then fun _ -> true else fun t -> not (Mdst_baseline.Fr.improvable t)
    in
    let latency = Mdst_sim.Latency.by_name latency seed in
    let plan = Option.map Mdst_sim.Fault.of_string faults in
    (* Tracing and fault injection both need to drive the engine manually;
       the plain path stays on the one-call harness. *)
    let r, final_graph =
      match (plan, trace) with
      | None, t when t <= 0 ->
          if domains > 1 then
            (Run.converge_par ~latency ~seed ~init ~max_rounds ~fixpoint ~domains graph, graph)
          else (Run.converge ~latency ~seed ~init ~max_rounds ~fixpoint graph, graph)
      | _ ->
          let engine = Run.make_engine ~latency ~seed ~init graph in
          Option.iter
            (fun p -> Run.Engine.install_faults engine ~remap:Mdst_core.Transplant.states p)
            plan;
          if trace > 0 then begin
            let remaining = ref trace in
            Run.Engine.observe engine (function
              | Mdst_sim.Engine.Obs_deliver { src; dst; label; round; time }
                when label <> "info" && !remaining > 0 ->
                  decr remaining;
                  Printf.printf "  [round %5d | t=%8.1f] %-11s %d -> %d\n" round time label src
                    dst
              | Mdst_sim.Engine.Obs_fault { kind; detail; round; time } ->
                  Printf.printf "  [round %5d | t=%8.1f] fault:%-5s %s\n" round time kind detail
              | Mdst_sim.Engine.Obs_deliver _ | Mdst_sim.Engine.Obs_tick _ -> ())
          end;
          (* Convergence only counts once the adversary is done: strictly
             past the last fault round, with no scheduled event waiting. *)
          let last_fault =
            match plan with Some p -> Mdst_sim.Fault.last_fault_round p | None -> -1
          in
          let base_stop = Run.make_stop ~fixpoint () in
          let stop e =
            let held = base_stop e in
            held && Run.Engine.rounds e > last_fault && not (Run.Engine.faults_pending e)
          in
          let outcome = Run.Engine.run engine ~max_rounds ~check_every:2 ~stop () in
          if trace > 0 then Run.Engine.unobserve engine;
          (match plan with
          | Some _ ->
              Format.printf "faults applied: %a@." Mdst_sim.Fault.pp_stats
                (Run.Engine.fault_stats engine)
          | None -> ());
          (Run.snapshot engine ~converged:outcome.converged, Run.Engine.graph engine)
    in
    Printf.printf "converged: %b\nrounds: %d\nvirtual time: %.1f\nmessages: %d (%d bits)\n"
      r.converged r.rounds r.time r.total_messages r.total_bits;
    List.iter (fun (l, c) -> Printf.printf "  %-12s %d\n" l c) r.messages;
    (match r.degree with
    | Some d ->
        Printf.printf "final tree degree: %d\n" d;
        (* Against the final topology: cut/link faults may have changed it. *)
        let fr = Tree.max_degree (Mdst_baseline.Fr.approx_mdst final_graph) in
        let lo = max (Mdst_baseline.Exact.lower_bound final_graph) (fr - 1) in
        if lo = fr then Printf.printf "FR reference degree: %d (Delta* = %d)\n" fr fr
        else Printf.printf "FR reference degree: %d (Delta* is %d or %d)\n" fr lo fr
    | None -> print_endline "no legitimate tree at stop");
    match (dot, r.tree) with
    | Some file, Some tree ->
        let oc = open_out file in
        output_string oc (Mdst_graph.Dot.tree_to_string tree);
        close_out oc;
        Printf.printf "wrote %s\n" file
    | _ -> ()
  in
  let term =
    Term.(
      const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg $ save_graph_arg
      $ init_arg $ latency_arg $ max_rounds_arg $ dot_arg $ oracle_arg $ trace_arg $ faults_arg
      $ domains_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate the self-stabilizing MDST protocol on one graph.") term

(* ---- solve ---- *)

let solve_cmd =
  let action family n seed shuffle input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    let rng = Mdst_util.Prng.create seed in
    List.iter
      (fun spec ->
        (* Independent stream per baseline: listing more baselines must
           not change the draws of the ones before. *)
        Printf.printf "%-12s degree %d\n" (Mdst_baseline.Naive.name spec)
          (Mdst_baseline.Naive.degree (Mdst_util.Prng.split rng) spec graph))
      Mdst_baseline.Naive.all;
    let fr = Mdst_baseline.Fr.approx_mdst graph in
    Printf.printf "%-12s degree %d\n" "FR" (Tree.max_degree fr);
    if Graph.n graph <= 22 then
      match Mdst_baseline.Exact.solve graph with
      | Some r -> Printf.printf "%-12s degree %d (%d expansions)\n" "exact" r.optimum r.expansions
      | None -> print_endline "exact        budget exhausted"
    else print_endline "exact        skipped (n > 22)"
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg) in
  Cmd.v (Cmd.info "solve" ~doc:"Compare baseline spanning-tree algorithms on one graph.") term

(* ---- compare ---- *)

let compare_cmd =
  let action family n seed shuffle input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    let fr = Tree.max_degree (Mdst_baseline.Fr.approx_mdst graph) in
    Printf.printf "%-28s degree %d (sequential reference)\n%!" "Fürer–Raghavachari" fr;
    let fixpoint t = not (Mdst_baseline.Fr.improvable t) in
    let proto = Run.converge ~seed ~init:`Random ~fixpoint graph in
    Printf.printf "%-28s degree %s in %d rounds, %d msgs (from corruption)\n%!"
      "paper protocol"
      (match proto.degree with Some d -> string_of_int d | None -> "-")
      proto.rounds proto.total_messages;
    let bb = Mdst_baseline.Bb.converge ~seed graph in
    Printf.printf "%-28s degree %s in %d rounds, %d msgs, %d phases (clean start)\n%!"
      "serialized BB-style [3]"
      (match bb.degree with Some d -> string_of_int d | None -> "-")
      bb.rounds bb.total_messages bb.phases_run;
    Printf.printf "peak state bits: protocol %d vs BB %d\n" proto.max_state_bits
      bb.max_state_bits
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Head-to-head: the paper's protocol vs the serialized Blin–Butelle-style comparator.")
    term

(* ---- props ---- *)

let props_cmd =
  let action family n seed input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:false ~input in
    List.iter (fun (k, v) -> Printf.printf "%-22s %s\n" k v) (Mdst_graph.Props.summary graph);
    let h = Mdst_graph.Props.degree_histogram graph in
    print_string "degree histogram       ";
    Array.iteri (fun d c -> if c > 0 then Printf.printf "%d:%d " d c) h;
    print_newline ()
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ input_arg) in
  Cmd.v (Cmd.info "props" ~doc:"Print structural statistics of one graph.") term

(* ---- experiments ---- *)

let experiments_cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes and fewer seeds.") in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (E1..E20).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV under $(docv).")
  in
  let action quick only csv =
    (match only with
    | Some id ->
        let e = Mdst_analysis.Registry.find id in
        Printf.printf "%s — %s\nclaim: %s\n\n" e.id e.title e.claim;
        List.iter Mdst_analysis.Table.print (e.run ~quick ())
    | None -> Mdst_analysis.Registry.run_all ~quick ());
    match csv with
    | Some dir ->
        let files = Mdst_analysis.Registry.save_csvs ~dir ~quick () in
        Printf.printf "wrote %d CSV files under %s\n" (List.length files) dir
    | None -> ()
  in
  let term = Term.(const action $ quick_arg $ only_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate every table and figure of EXPERIMENTS.md.")
    term

(* ---- bench ---- *)

let bench_cmd =
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes and a reduced event budget (CI smoke).")
  in
  let proto_arg =
    Arg.(value & flag
         & info [ "proto" ]
             ~doc:"Run the protocol macro-benchmarks (experiment E20: convergence time, \
                   message volume, allocation, with and without Info suppression) instead \
                   of the engine benchmarks.")
  in
  let out_arg =
    Arg.(value & opt (some string) None
         & info [ "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON benchmark points (default: BENCH_engine.json, \
                   or BENCH_proto.json with $(b,--proto)).")
  in
  let baseline_arg =
    Arg.(value & opt (some file) None
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Regression guard (engine benchmarks only): compare the fresh points \
                   against this committed BENCH_engine.json and exit non-zero if \
                   events/sec regressed beyond the tolerance on any matching point.")
  in
  let tolerance_arg =
    Arg.(value & opt float 0.3
         & info [ "tolerance" ] ~docv:"FRAC"
             ~doc:"Allowed fractional events/sec drop before the regression guard fails \
                   (default 0.3; benchmarks on shared CI runners are noisy).")
  in
  let action quick proto out baseline tolerance =
    if proto then begin
      let module B = Mdst_analysis.Bench_proto in
      let out = Option.value out ~default:"BENCH_proto.json" in
      let points =
        B.points ~quick ~progress:(fun p -> Format.printf "  %a@." B.pp_point p) ()
      in
      Mdst_analysis.Table.print (B.table points);
      B.write_json ~path:out ~quick points;
      Printf.printf "wrote %s (%d points)\n" out (List.length points)
    end
    else begin
      let module B = Mdst_analysis.Bench_engine in
      let out = Option.value out ~default:"BENCH_engine.json" in
      (* Read the baseline before writing --out: guarding against the file
         being overwritten when baseline and out name the same path. *)
      let base = Option.map B.load_json baseline in
      let points = B.points ~quick () in
      Mdst_analysis.Table.print (B.table points);
      B.write_json ~path:out ~quick points;
      Printf.printf "wrote %s (%d points)\n" out (List.length points);
      match base with
      | None -> ()
      | Some baseline_pts ->
          (match B.regressions ~tolerance ~baseline:baseline_pts points with
          | [] ->
              Printf.printf "regression guard: OK (%d baseline points, tolerance %.0f%%)\n"
                (List.length baseline_pts) (100.0 *. tolerance)
          | lines ->
              print_endline "regression guard: FAILED";
              List.iter (fun l -> print_endline ("  " ^ l)) lines;
              exit 1)
    end
  in
  let term = Term.(const action $ quick_arg $ proto_arg $ out_arg $ baseline_arg $ tolerance_arg) in
  Cmd.v
    (Cmd.info "bench"
       ~doc:"Macro-benchmarks: the engine trajectory (E19, default; BENCH_engine.json, \
             optional --baseline regression guard) or the protocol trajectory (E20, \
             --proto; BENCH_proto.json).")
    term

(* ---- pardet ---- *)

let pardet_cmd =
  let domains_list_arg =
    Arg.(value & opt (list int) [ 1; 2; 4 ]
         & info [ "domains" ] ~docv:"K,K,..."
             ~doc:"Shard counts to cross-validate (comma-separated).")
  in
  let until_arg =
    Arg.(value & opt float 40.0
         & info [ "until" ] ~docv:"T"
             ~doc:"Virtual-time horizon of the recorded conformance run.")
  in
  let max_rounds_arg =
    Arg.(value & opt int Run.default_max_rounds
         & info [ "max-rounds" ] ~doc:"Round budget for the fingerprint convergence runs.")
  in
  (* Parcheck's init is the closed [`Clean | `Random]; the shared init_arg
     unifies with Run.init (which also admits `Tree). *)
  let pinit_arg =
    Arg.(value
         & opt (enum [ ("clean", `Clean); ("random", `Random) ]) `Random
         & info [ "init" ] ~docv:"INIT"
             ~doc:"Initial configuration: $(b,clean) or $(b,random) (adversarial).")
  in
  let action family n seed input init domains until max_rounds =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:false ~input in
    Printf.printf "graph: %s  n=%d m=%d  seed=%d  init=%s\n%!" family (Graph.n graph)
      (Graph.m graph) seed
      (match init with `Clean -> "clean" | `Random -> "random");
    let module P = Mdst_check.Parcheck in
    let failures = ref 0 in
    (* Sharded-schedule conformance: the merged (time, shard, seq) schedule
       of every k>1 run must replay through the reference model and the
       sequential engine.  k=1 is the definitional baseline — skipped. *)
    List.iter
      (fun d ->
        if d > 1 then begin
          let r = P.Default.run_case { P.graph; seed; init; domains = d; until } in
          match r.P.failure with
          | None ->
              Printf.printf "  conformance domains=%d: OK (%d events replayed)\n%!" d r.P.events
          | Some why ->
              incr failures;
              Printf.printf "  conformance domains=%d: FAIL — %s\n%!" d why
        end)
      domains;
    let eq = P.Default.fingerprint_equivalence ~max_rounds ~seed ~init ~domains graph in
    List.iter
      (fun (d, converged, fp) ->
        Printf.printf "  domains=%d  converged=%b  fingerprint=%d\n" d converged fp)
      eq.P.per_domain;
    if eq.P.agree then print_endline "fingerprints: MATCH"
    else begin
      incr failures;
      print_endline "fingerprints: DIVERGED"
    end;
    if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ family_arg $ n_arg $ seed_arg $ input_arg $ pinit_arg $ domains_list_arg
      $ until_arg $ max_rounds_arg)
  in
  Cmd.v
    (Cmd.info "pardet"
       ~doc:"Parallel-determinism check: replay a sharded run's merged schedule through the \
             reference model and the sequential engine, then converge the same instance \
             under several shard counts and require identical quiescence fingerprints.  \
             Non-zero exit on any divergence.")
    term

(* ---- pbt ---- *)

let pbt_cmd =
  let tests_arg =
    Arg.(value & opt int 60 & info [ "tests" ] ~docv:"N" ~doc:"Generated cases per property.")
  in
  let pbt_seed_arg =
    Arg.(value & opt int 1729 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Seed for the whole generate-fail-shrink trajectory; the same seed replays it exactly.")
  in
  let suite_arg =
    let doc =
      "Property suite: "
      ^ String.concat ", " (Mdst_check.Suites.suite_names @ [ "convergence" ])
      ^ ".  $(b,all) runs everything including convergence."
    in
    Arg.(value & opt string "all" & info [ "suite" ] ~docv:"SUITE" ~doc)
  in
  let max_nodes_arg =
    Arg.(value & opt int 10 & info [ "max-nodes" ] ~docv:"N" ~doc:"Largest generated topology for the convergence property.")
  in
  let max_events_arg =
    Arg.(value & opt int 5 & info [ "max-events" ] ~docv:"N" ~doc:"Most fault events per generated plan.")
  in
  let broken_arg =
    Arg.(value & flag & info [ "broken" ] ~doc:"Test the deliberately broken grant-dropping protocol variant instead of the real one.  The run succeeds when the property is $(i,falsified) and prints the shrunk reproducer — a self-check that the harness catches real bugs.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None & info [ "replay" ] ~docv:"CASE" ~doc:"Skip generation and replay one printed reproducer (the $(b,n=..;edges=..;seed=..;plan=..) line a failure reports).")
  in
  let action tests seed suite max_nodes max_events broken replay =
    let module C = Mdst_check.Convergence in
    let module P = Mdst_check.Property in
    let module S = Mdst_check.Suites in
    let run_case, prop, variant =
      if broken then (C.Broken.run_case, C.Broken.prop () , "broken grant-dropping variant")
      else (C.Default.run_case, C.Default.prop (), "paper protocol")
    in
    match replay with
    | Some line ->
        let case = C.case_of_string line in
        Printf.printf "replaying (%s): %s\n%!" variant (C.case_to_string case);
        let r = run_case ?budget:None case in
        Printf.printf
          "converged: %b\nrounds: %d (last fault at round %d)\ntree degree: %s (FR reference %d)\nclosure: %b\n"
          r.C.converged r.C.rounds r.C.last_fault_round
          (match r.C.degree with Some d -> string_of_int d | None -> "-")
          r.C.fr_degree r.C.closure_ok;
        Format.printf "faults applied: %a@." Mdst_sim.Fault.pp_stats r.C.stats;
        (match prop case with
        | Ok () -> print_endline "property: holds on this case"
        | Error reason ->
            Printf.printf "property: falsified — %s\n" reason;
            exit 1)
    | None ->
        let failures = ref 0 in
        let run_packed packed =
          match S.check ~tests ~seed packed with
          | P.Passed { tests } -> Printf.printf "PASS %-36s %d tests\n%!" (S.name packed) tests
          | P.Falsified c ->
              incr failures;
              print_endline (P.render ~name:(S.name packed) c)
        in
        (match suite with
        | "convergence" | "all" -> ()
        | s -> ignore (S.by_name s));
        (match suite with
        | "convergence" -> ()
        | s -> List.iter run_packed (S.by_name (if s = "all" then "all" else s)));
        (match suite with
        | "convergence" | "all" ->
            let property =
              (if broken then C.Broken.property else C.Default.property)
                ~max_n:max_nodes ~max_events ()
            in
            let t0 = Sys.time () in
            (match P.check ~tests ~seed property with
            | P.Passed { tests } ->
                Printf.printf "%s %-36s %d tests (%.1fs)\n%!"
                  (if broken then "FAIL" else "PASS")
                  property.P.name tests (Sys.time () -. t0);
                if broken then begin
                  incr failures;
                  print_endline
                    "expected the broken variant to be falsified, but every test passed"
                end
            | P.Falsified c ->
                if broken then begin
                  Printf.printf
                    "falsified as expected (%d tests, %d shrink steps).  Shrunk reproducer:\n  %s\nreason: %s\nreplay with: mdst_sim pbt --broken --replay '%s'\n%!"
                    c.P.tests_run c.P.shrink_steps c.P.printed c.P.reason c.P.printed
                end
                else begin
                  incr failures;
                  print_endline (P.render ~name:property.P.name c)
                end)
        | _ -> ());
        if !failures > 0 then exit 1
  in
  let term =
    Term.(
      const action $ tests_arg $ pbt_seed_arg $ suite_arg $ max_nodes_arg $ max_events_arg
      $ broken_arg $ replay_arg)
  in
  Cmd.v
    (Cmd.info "pbt"
       ~doc:"Property-based testing: generate random (topology, fault plan, seed) cases, check convergence-under-adversity, shrink failures to minimal reproducers.")
    term

(* ---- explore ---- *)

let explore_cmd =
  let n_arg =
    Arg.(value & opt int 4
         & info [ "n" ] ~docv:"N"
             ~doc:"Number of nodes.  Exploration is exponential in the schedule; keep $(docv) <= 5.")
  in
  let depth_arg =
    Arg.(value & opt int 8 & info [ "max-depth" ] ~docv:"D" ~doc:"DFS depth cap (events per explored path).")
  in
  let configs_arg =
    Arg.(value & opt int 20_000 & info [ "max-configs" ] ~docv:"C" ~doc:"Cap on distinct configurations expanded per initial configuration.")
  in
  let random_inits_arg =
    Arg.(value & opt int 3 & info [ "random-inits" ] ~docv:"K" ~doc:"How many adversarial (random-state) initial configurations to explore.")
  in
  let walks_arg =
    Arg.(value & opt int 2 & info [ "walks" ] ~docv:"K" ~doc:"Random lockstep walks (engine schedule-control hook vs model) to run after the DFS.")
  in
  let walk_steps_arg =
    Arg.(value & opt int 400 & info [ "walk-steps" ] ~docv:"N" ~doc:"Events per random lockstep walk.")
  in
  let suppressed_arg =
    Arg.(value & flag & info [ "suppressed" ] ~doc:"Explore the Info-suppression protocol variant instead of the default one.")
  in
  let quick_arg =
    Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke preset: clamps depth, config, init and walk budgets.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE" ~doc:"On violation, also write the reproducers to $(docv) (CI artifact).")
  in
  let action family n seed input suppressed quick max_depth max_configs random_inits walks
      walk_steps out =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:false ~input in
    let max_depth, max_configs, random_inits, walks, walk_steps =
      if quick then
        (min max_depth 6, min max_configs 3_000, min random_inits 2, min walks 1, min walk_steps 150)
      else (max_depth, max_configs, random_inits, walks, walk_steps)
    in
    let module X =
      (val (if suppressed then (module Mdst_check.Explore.Suppressed)
            else (module Mdst_check.Explore.Default))
          : Mdst_check.Explore.S)
    in
    Printf.printf "graph: %s  n=%d m=%d  variant: %s\n%!" family (Graph.n graph) (Graph.m graph)
      (if suppressed then "suppressed" else "default");
    let violations = ref [] in
    let run_dfs label init =
      let t0 = Sys.time () in
      let stats, vio = X.dfs ~max_depth ~max_configs ~init graph in
      Printf.printf "  dfs  %-16s %6d configs, %7d transitions, depth<=%d%s (%.1fs)%s\n%!" label
        stats.Mdst_check.Explore.configs stats.transitions stats.max_depth_reached
        (if stats.truncated then ", truncated" else "")
        (Sys.time () -. t0)
        (match vio with None -> "" | Some _ -> "  VIOLATION");
      match vio with
      | None -> ()
      | Some v ->
          violations :=
            (label, Format.asprintf "%a" Mdst_check.Explore.pp_violation v) :: !violations
    in
    run_dfs "clean" `Clean;
    run_dfs "legitimate" `Legitimate;
    for i = 0 to random_inits - 1 do
      run_dfs (Printf.sprintf "random:%d" (seed + i)) (`Random (seed + i))
    done;
    for i = 0 to walks - 1 do
      let wseed = seed + 100 + i in
      match X.walk ~steps:walk_steps ~seed:wseed ~init:`Random graph with
      | Ok steps ->
          Printf.printf "  walk random seed=%d: %d lockstep events conformant\n%!" wseed steps
      | Error e -> violations := (Printf.sprintf "walk seed=%d" wseed, e) :: !violations
    done;
    match List.rev !violations with
    | [] -> print_endline "explore: no conformance or closure violations"
    | vs ->
        List.iter (fun (l, v) -> Printf.printf "VIOLATION (%s): %s\n" l v) vs;
        (match out with
        | Some path ->
            let oc = open_out path in
            Printf.fprintf oc "graph: %s\n" (Mdst_graph.Io.to_string graph);
            List.iter (fun (l, v) -> Printf.fprintf oc "%s: %s\n" l v) vs;
            close_out oc;
            Printf.printf "wrote %s\n" path
        | None -> ());
        exit 1
  in
  let term =
    Term.(
      const action $ family_arg $ n_arg $ seed_arg $ input_arg $ suppressed_arg $ quick_arg
      $ depth_arg $ configs_arg $ random_inits_arg $ walks_arg $ walk_steps_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:"Bounded schedule exploration: enumerate delivery interleavings of a small instance, checking the real protocol against the reference model and closure of the legitimacy predicate on every path.")
    term

(* ---- fuzz ---- *)

let fuzz_cmd =
  let quick_arg =
    Arg.(value & flag
         & info [ "quick" ]
             ~doc:"CI smoke preset: ~30s budget, small graphs.  Exit status is the \
                   verdict: non-zero means the fuzzer found a trophy.")
  in
  let budget_arg =
    Arg.(value & opt float 60.0
         & info [ "budget" ] ~docv:"SEC" ~doc:"Wall-clock budget for the campaign.")
  in
  let execs_arg =
    Arg.(value & opt (some int) None
         & info [ "execs" ] ~docv:"N" ~doc:"Stop after $(docv) executions (default: budget only).")
  in
  let fuzz_seed_arg =
    Arg.(value & opt int 1
         & info [ "s"; "seed" ] ~docv:"SEED"
             ~doc:"Campaign seed; the same seed and caps replay the same campaign.")
  in
  let max_n_arg =
    Arg.(value & opt (some int) None
         & info [ "max-n" ] ~docv:"N" ~doc:"Largest generated topology (default 96, or 10 with $(b,--quick)).")
  in
  let corpus_arg =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Persist the corpus: load $(docv) before the swarm sweep, save every \
                   retained entry and shrunk trophy into it.")
  in
  let replay_arg =
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"CASE"
             ~doc:"Skip fuzzing and strictly replay one reproducer line (as emitted for a \
                   trophy or saved in a corpus).  Exit status 1 when the violation \
                   reproduces, 0 when the execution is clean.")
  in
  let random_arg =
    Arg.(value & flag
         & info [ "random" ]
             ~doc:"Run the uniform random-walk baseline instead of the coverage-guided \
                   campaign (the control arm of BENCH_fuzz.json).")
  in
  let bench_arg =
    Arg.(value & flag
         & info [ "bench" ]
             ~doc:"Produce BENCH_fuzz.json instead of one campaign: both arms' throughput \
                   and novelty timelines plus the per-mutant detection table (medians over \
                   $(b,--seeds) seeds).  Exit status 1 unless the fuzzer beats the random \
                   walker on every historical mutant.")
  in
  let seeds_arg =
    Arg.(value & opt int 5
         & info [ "seeds" ] ~docv:"K" ~doc:"Detection seeds per mutant for $(b,--bench).")
  in
  let out_arg =
    Arg.(value & opt string "BENCH_fuzz.json"
         & info [ "out" ] ~docv:"FILE" ~doc:"Where $(b,--bench) writes its JSON.")
  in
  let action quick budget execs seed max_n corpus replay random bench seeds out =
    let module F = Mdst_check.Fuzz in
    match replay with
    | Some line -> (
        let e = F.entry_of_string line in
        Printf.printf "replaying: %s\n%!" (F.entry_to_string e);
        match F.replay e with
        | Ok () -> print_endline "replay clean: no violation"
        | Error (kind, detail) ->
            Printf.printf "reproduced %s: %s\n" (F.kind_to_string kind) detail;
            exit 1)
    | None ->
        if bench then begin
          let json, beaten = F.bench_json ~quick ~seeds ~seed () in
          let oc = open_out out in
          output_string oc json;
          close_out oc;
          Printf.printf "wrote %s\n" out;
          Printf.printf "fuzz beats random on all mutants: %b\n" beaten;
          if not beaten then exit 1
        end
        else begin
          let mode = if random then `Random_walk else `Fuzz in
          let budget_s = if quick then min budget 30.0 else budget in
          let st =
            F.campaign ~mode ~quick ~budget_s ?max_execs:execs ?max_n
              ?corpus_dir:corpus ~seed ()
          in
          Printf.printf
            "%s: %d executions in %.1fs (%.0f/s)\ncorpus: %d entries%s\n\
             coverage: %d fingerprints, %d coarse shapes, %d probe buckets\n"
            (match mode with `Fuzz -> "fuzz" | `Random_walk -> "random walk")
            st.F.s_execs st.F.s_elapsed
            (float_of_int st.F.s_execs /. Float.max 1e-9 st.F.s_elapsed)
            st.F.s_corpus
            (match corpus with Some d -> Printf.sprintf " (saved in %s)" d | None -> "")
            st.F.s_fine st.F.s_coarse st.F.s_buckets;
          match st.F.s_trophies with
          | [] -> print_endline "no violations found"
          | ts ->
              Printf.printf "%d TROPHIES (shrunk; replay with --replay):\n" (List.length ts);
              List.iter
                (fun (t : F.trophy) ->
                  Printf.printf "  %s: %s\n    %s\n" (F.kind_to_string t.F.t_kind)
                    t.F.t_detail
                    (F.entry_to_string t.F.t_entry))
                ts;
              exit 1
        end
  in
  let term =
    Term.(
      const action $ quick_arg $ budget_arg $ execs_arg $ fuzz_seed_arg $ max_n_arg
      $ corpus_arg $ replay_arg $ random_arg $ bench_arg $ seeds_arg $ out_arg)
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Coverage-guided schedule fuzzing: mutate delivery schedules through the \
             engine's schedule-control hook under swarm configurations, rank by \
             projection-fingerprint and handler-probe novelty, run every execution in \
             lockstep with the reference model, and shrink any violation to a one-line \
             reproducer.")
    term

(* ---- mutate ---- *)

let mutate_cmd =
  let only_arg =
    Arg.(value & opt (some string) None
         & info [ "only" ] ~docv:"NAME" ~doc:"Run a single mutant instead of the whole registry.")
  in
  let fuzz_arg =
    Arg.(value & flag
         & info [ "fuzz" ]
             ~doc:"Also run each mutant under a short schedule-fuzzing budget and report \
                   how many executions the coverage-guided campaign and the uniform \
                   random walker need to find it (medians over $(b,--fuzz-seeds) seeds).")
  in
  let fuzz_seeds_arg =
    Arg.(value & opt int 3
         & info [ "fuzz-seeds" ] ~docv:"K" ~doc:"Detection seeds per mutant for $(b,--fuzz).")
  in
  let action only fuzz fuzz_seeds =
    let module M = Mdst_check.Mutants in
    let module F = Mdst_check.Fuzz in
    let mutants = match only with None -> M.all | Some name -> [ M.find name ] in
    let outcomes = List.map M.run mutants in
    let fuzz_max_execs = 500 in
    let detections =
      if not fuzz then []
      else
        List.map
          (fun (m : M.mutant) ->
            let d = F.detect ~seeds:fuzz_seeds ~max_execs:fuzz_max_execs ~budget_s:45.0 m.M.name in
            Printf.printf "  fuzz-detect %-24s done\n%!" m.M.name;
            d)
          mutants
    in
    List.iter
      (fun (o : M.outcome) ->
        Printf.printf "%-24s %s\n" o.name o.source;
        Printf.printf "  mutant on : %s  %s\n"
          (if o.caught then "DETECTED (ok)" else "UNDETECTED (FAIL)")
          o.on_detail;
        Printf.printf "  mutant off: %s  %s\n%!"
          (if o.clean then "silent (ok)" else "FALSE POSITIVE (FAIL)")
          o.off_detail)
      outcomes;
    if detections <> [] then begin
      Printf.printf "\ndetection cost (median executions to first trophy, %d seeds, cap %d):\n"
        fuzz_seeds fuzz_max_execs;
      Printf.printf "  %-24s %10s %10s\n" "mutant" "fuzz" "random";
      List.iter
        (fun (d : F.detection) ->
          let med arr = F.median_execs arr ~max_execs:fuzz_max_execs in
          let show m = if m > fuzz_max_execs then ">" ^ string_of_int fuzz_max_execs else string_of_int m in
          let f = med d.F.d_fuzz and r = med d.F.d_random in
          Printf.printf "  %-24s %10s %10s%s\n" d.F.d_mutant (show f) (show r)
            (if f < r then "  fuzz faster" else if f > r then "  random faster" else ""))
        detections
    end;
    let bad = List.filter (fun o -> not (M.ok o)) outcomes in
    if bad = [] then
      Printf.printf "mutate: %d/%d mutants detected, no false positives\n"
        (List.length outcomes) (List.length outcomes)
    else begin
      Printf.printf "mutate: %d of %d mutants FAILED: %s\n" (List.length bad)
        (List.length outcomes)
        (String.concat ", " (List.map (fun (o : M.outcome) -> o.name) bad));
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "mutate"
       ~doc:"Mutation-check the suite: force each historical-bug mutant on (its probe must detect it) and off (the probe must stay silent).  With $(b,--fuzz), also measure schedule-fuzzing detection cost against the random-walk baseline.")
    Term.(const action $ only_arg $ fuzz_arg $ fuzz_seeds_arg)

(* ---- families ---- *)

let families_cmd =
  let action () =
    print_endline "graph families (use with --family):";
    List.iter (fun f -> print_endline ("  " ^ f)) Gen.family_names;
    print_endline "named experiment workloads:";
    List.iter (fun w -> print_endline ("  " ^ w)) Mdst_analysis.Workloads.names
  in
  Cmd.v (Cmd.info "families" ~doc:"List graph families and named workloads.") Term.(const action $ const ())

let () =
  let doc = "Self-stabilizing minimum-degree spanning tree (Blin et al., IPDPS 2009) simulator" in
  let info = Cmd.info "mdst_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; solve_cmd; compare_cmd; props_cmd; experiments_cmd; bench_cmd; pardet_cmd; pbt_cmd; explore_cmd; fuzz_cmd; mutate_cmd; families_cmd ]))

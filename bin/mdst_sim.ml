(* mdst_sim — command-line front end.

   Subcommands:
     run          simulate the self-stabilizing MDST protocol on one graph
     solve        compare FR / exact / naive baselines on one graph
     experiments  regenerate the tables and figures of EXPERIMENTS.md
     families     list the available graph families and named workloads *)

open Cmdliner
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Gen = Mdst_graph.Gen
module Run = Mdst_core.Run

let graph_of ~family ~n ~seed ~shuffle_ids ~input =
  let rng = Mdst_util.Prng.create (seed lxor 0x5eed) in
  let g =
    match input with Some path -> Mdst_graph.Io.load path | None -> Gen.by_name family rng ~n
  in
  if shuffle_ids then Gen.with_random_ids rng g else g

(* ---- common options ---- *)

let family_arg =
  let doc =
    "Graph family: " ^ String.concat ", " Gen.family_names ^ "."
  in
  Arg.(value & opt string "er" & info [ "f"; "family" ] ~docv:"FAMILY" ~doc)

let n_arg = Arg.(value & opt int 16 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes (approximate for some families).")

let seed_arg = Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Deterministic seed.")

let shuffle_arg =
  Arg.(value & flag & info [ "shuffle-ids" ] ~doc:"Assign a random permutation of identifiers (the protocol must not depend on the transport numbering).")

let input_arg =
  Arg.(value & opt (some file) None & info [ "i"; "input" ] ~docv:"FILE" ~doc:"Load the topology from an edge-list file instead of generating one (see Mdst_graph.Io for the format).")

let save_graph_arg =
  Arg.(value & opt (some string) None & info [ "save-graph" ] ~docv:"FILE" ~doc:"Write the (generated) topology to $(docv) in edge-list form.")

(* ---- run ---- *)

let init_conv = Arg.enum [ ("clean", `Clean); ("random", `Random) ]

let init_arg =
  Arg.(value & opt init_conv `Random & info [ "init" ] ~docv:"INIT" ~doc:"Initial configuration: $(b,clean) or $(b,random) (adversarial).")

let latency_arg =
  let doc = "Latency model: " ^ String.concat ", " Mdst_sim.Latency.names ^ "." in
  Arg.(value & opt string "uniform" & info [ "latency" ] ~docv:"MODEL" ~doc)

let max_rounds_arg =
  Arg.(value & opt int Run.default_max_rounds & info [ "max-rounds" ] ~doc:"Abort after this many asynchronous rounds.")

let dot_arg =
  Arg.(value & opt (some string) None & info [ "dot" ] ~docv:"FILE" ~doc:"Write the final tree as Graphviz DOT to $(docv).")

let oracle_arg =
  Arg.(value & flag & info [ "no-oracle" ] ~doc:"Do not require the Fürer–Raghavachari fixpoint in the stop condition (quiescence only).")

let trace_arg =
  Arg.(value & opt int 0 & info [ "trace" ] ~docv:"N" ~doc:"Print the first $(docv) protocol events (ticks excluded, gossip excluded).")

let run_cmd =
  let action family n seed shuffle input save_graph init latency max_rounds dot no_oracle trace
      =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    (match save_graph with
    | Some path ->
        Mdst_graph.Io.save path graph;
        Printf.printf "wrote topology to %s\n" path
    | None -> ());
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    let fixpoint =
      if no_oracle then fun _ -> true else fun t -> not (Mdst_baseline.Fr.improvable t)
    in
    let latency = Mdst_sim.Latency.by_name latency seed in
    (* With --trace we drive the engine manually so the observer can print
       as the run unfolds. *)
    let r =
      if trace <= 0 then Run.converge ~latency ~seed ~init ~max_rounds ~fixpoint graph
      else begin
        let engine = Run.make_engine ~latency ~seed ~init graph in
        let remaining = ref trace in
        Run.Engine.observe engine (function
          | Mdst_sim.Engine.Obs_deliver { src; dst; label; round; time }
            when label <> "info" && !remaining > 0 ->
              decr remaining;
              Printf.printf "  [round %5d | t=%8.1f] %-11s %d -> %d\n" round time label src dst
          | Mdst_sim.Engine.Obs_deliver _ | Mdst_sim.Engine.Obs_tick _ -> ());
        let stop = Run.make_stop ~fixpoint () in
        let outcome = Run.Engine.run engine ~max_rounds ~check_every:2 ~stop () in
        Run.Engine.unobserve engine;
        ignore outcome;
        (* Re-derive the result record via a fresh converge on the same
           seed — identical by determinism — to keep one code path. *)
        Run.converge ~latency ~seed ~init ~max_rounds ~fixpoint graph
      end
    in
    Printf.printf "converged: %b\nrounds: %d\nvirtual time: %.1f\nmessages: %d (%d bits)\n"
      r.converged r.rounds r.time r.total_messages r.total_bits;
    List.iter (fun (l, c) -> Printf.printf "  %-12s %d\n" l c) r.messages;
    (match r.degree with
    | Some d ->
        Printf.printf "final tree degree: %d\n" d;
        let fr = Tree.max_degree (Mdst_baseline.Fr.approx_mdst graph) in
        let lo = max (Mdst_baseline.Exact.lower_bound graph) (fr - 1) in
        if lo = fr then Printf.printf "FR reference degree: %d (Delta* = %d)\n" fr fr
        else Printf.printf "FR reference degree: %d (Delta* is %d or %d)\n" fr lo fr
    | None -> print_endline "no legitimate tree at stop");
    match (dot, r.tree) with
    | Some file, Some tree ->
        let oc = open_out file in
        output_string oc (Mdst_graph.Dot.tree_to_string tree);
        close_out oc;
        Printf.printf "wrote %s\n" file
    | _ -> ()
  in
  let term =
    Term.(
      const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg $ save_graph_arg
      $ init_arg $ latency_arg $ max_rounds_arg $ dot_arg $ oracle_arg $ trace_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Simulate the self-stabilizing MDST protocol on one graph.") term

(* ---- solve ---- *)

let solve_cmd =
  let action family n seed shuffle input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    let rng = Mdst_util.Prng.create seed in
    List.iter
      (fun spec ->
        Printf.printf "%-12s degree %d\n" (Mdst_baseline.Naive.name spec)
          (Mdst_baseline.Naive.degree rng spec graph))
      Mdst_baseline.Naive.all;
    let fr = Mdst_baseline.Fr.approx_mdst graph in
    Printf.printf "%-12s degree %d\n" "FR" (Tree.max_degree fr);
    if Graph.n graph <= 22 then
      match Mdst_baseline.Exact.solve graph with
      | Some r -> Printf.printf "%-12s degree %d (%d expansions)\n" "exact" r.optimum r.expansions
      | None -> print_endline "exact        budget exhausted"
    else print_endline "exact        skipped (n > 22)"
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg) in
  Cmd.v (Cmd.info "solve" ~doc:"Compare baseline spanning-tree algorithms on one graph.") term

(* ---- compare ---- *)

let compare_cmd =
  let action family n seed shuffle input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:shuffle ~input in
    Printf.printf "graph: %s  n=%d m=%d deg(G)=%d\n%!" family (Graph.n graph) (Graph.m graph)
      (Graph.max_degree graph);
    let fr = Tree.max_degree (Mdst_baseline.Fr.approx_mdst graph) in
    Printf.printf "%-28s degree %d (sequential reference)\n%!" "Fürer–Raghavachari" fr;
    let fixpoint t = not (Mdst_baseline.Fr.improvable t) in
    let proto = Run.converge ~seed ~init:`Random ~fixpoint graph in
    Printf.printf "%-28s degree %s in %d rounds, %d msgs (from corruption)\n%!"
      "paper protocol"
      (match proto.degree with Some d -> string_of_int d | None -> "-")
      proto.rounds proto.total_messages;
    let bb = Mdst_baseline.Bb.converge ~seed graph in
    Printf.printf "%-28s degree %s in %d rounds, %d msgs, %d phases (clean start)\n%!"
      "serialized BB-style [3]"
      (match bb.degree with Some d -> string_of_int d | None -> "-")
      bb.rounds bb.total_messages bb.phases_run;
    Printf.printf "peak state bits: protocol %d vs BB %d\n" proto.max_state_bits
      bb.max_state_bits
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ shuffle_arg $ input_arg) in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Head-to-head: the paper's protocol vs the serialized Blin–Butelle-style comparator.")
    term

(* ---- props ---- *)

let props_cmd =
  let action family n seed input =
    let graph = graph_of ~family ~n ~seed ~shuffle_ids:false ~input in
    List.iter (fun (k, v) -> Printf.printf "%-22s %s\n" k v) (Mdst_graph.Props.summary graph);
    let h = Mdst_graph.Props.degree_histogram graph in
    print_string "degree histogram       ";
    Array.iteri (fun d c -> if c > 0 then Printf.printf "%d:%d " d c) h;
    print_newline ()
  in
  let term = Term.(const action $ family_arg $ n_arg $ seed_arg $ input_arg) in
  Cmd.v (Cmd.info "props" ~doc:"Print structural statistics of one graph.") term

(* ---- experiments ---- *)

let experiments_cmd =
  let quick_arg = Arg.(value & flag & info [ "quick" ] ~doc:"Small sizes and fewer seeds.") in
  let only_arg =
    Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc:"Run a single experiment (E1..E17).")
  in
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"DIR" ~doc:"Also write every table as CSV under $(docv).")
  in
  let action quick only csv =
    (match only with
    | Some id ->
        let e = Mdst_analysis.Registry.find id in
        Printf.printf "%s — %s\nclaim: %s\n\n" e.id e.title e.claim;
        List.iter Mdst_analysis.Table.print (e.run ~quick ())
    | None -> Mdst_analysis.Registry.run_all ~quick ());
    match csv with
    | Some dir ->
        let files = Mdst_analysis.Registry.save_csvs ~dir ~quick () in
        Printf.printf "wrote %d CSV files under %s\n" (List.length files) dir
    | None -> ()
  in
  let term = Term.(const action $ quick_arg $ only_arg $ csv_arg) in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Regenerate every table and figure of EXPERIMENTS.md.")
    term

(* ---- families ---- *)

let families_cmd =
  let action () =
    print_endline "graph families (use with --family):";
    List.iter (fun f -> print_endline ("  " ^ f)) Gen.family_names;
    print_endline "named experiment workloads:";
    List.iter (fun w -> print_endline ("  " ^ w)) Mdst_analysis.Workloads.names
  in
  Cmd.v (Cmd.info "families" ~doc:"List graph families and named workloads.") Term.(const action $ const ())

let () =
  let doc = "Self-stabilizing minimum-degree spanning tree (Blin et al., IPDPS 2009) simulator" in
  let info = Cmd.info "mdst_sim" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ run_cmd; solve_cmd; compare_cmd; props_cmd; experiments_cmd; families_cmd ]))

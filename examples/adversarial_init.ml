(* Adversarial initial configurations: the self-stabilization property,
   demonstrated the hard way.

   Three starts on the same lollipop graph (a clique with a tail — plenty
   of room between the worst tree and the best):

     1. the worst legal spanning tree (a star inside the clique),
     2. a clean cold start (all nodes factory-reset),
     3. full corruption: every variable of every node randomised and
        garbage messages already in flight.

   All three must end at the same place: a tree of degree <= Delta* + 1.

   `dune exec examples/adversarial_init.exe` *)

module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Run = Mdst_core.Run

let () =
  let graph = Gen.lollipop ~clique:9 ~tail:5 in
  let n = Graph.n graph in
  Printf.printf "lollipop graph: K9 plus a 5-node tail (n=%d, m=%d)\n" n (Graph.m graph);
  let exact = Mdst_baseline.Exact.solve graph in
  (match exact with
  | Some r -> Printf.printf "exact Delta* = %d (so the protocol may end at %d or %d)\n\n" r.optimum r.optimum (r.optimum + 1)
  | None -> print_endline "exact solver out of budget\n");

  (* The worst legal spanning tree: node 0 is the centre of a star covering
     the clique, the tail hangs off the last clique node. *)
  let star_parents =
    Array.init n (fun v -> if v = 0 then 0 else if v < 9 then 0 else v - 1)
  in
  let star_tree = Tree.of_parents graph ~root:0 star_parents in

  let fixpoint tree = not (Mdst_baseline.Fr.improvable tree) in
  let scenario name init =
    let r = Run.converge ~seed:17 ~init ~fixpoint graph in
    Printf.printf "%-24s converged=%b rounds=%5d final degree=%s\n" name r.converged r.rounds
      (match r.degree with Some d -> string_of_int d | None -> "-")
  in
  Printf.printf "worst tree degree to start from: %d\n" (Tree.max_degree star_tree);
  scenario "from worst star tree" (`Tree star_tree);
  scenario "from clean cold start" `Clean;
  scenario "from full corruption" `Random;

  print_endline "\nSame fixpoint quality from every start: that is self-stabilization."

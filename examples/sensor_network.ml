(* Sensor-network scenario (the paper's ad-hoc network motivation).

   Sensors scattered over the unit square talk to everything within radio
   range.  The communication overlay should be a spanning tree whose
   maximum degree is as small as possible: a high-degree sensor relays the
   traffic of many others, burns its battery first, and its loss partitions
   the overlay.  We compare the degree (and a simple battery-lifetime
   proxy) of naive trees against the protocol's tree.

   `dune exec examples/sensor_network.exe` *)

module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree

(* Battery proxy: a node's drain is proportional to its tree degree; the
   network lives until its busiest relay dies. *)
let lifetime tree = 1.0 /. float_of_int (Tree.max_degree tree)

let () =
  let rng = Mdst_util.Prng.create 7 in
  let n = 36 in
  let radius = 1.9 *. sqrt (log (float_of_int n) /. float_of_int n) in
  let graph = Gen.random_geometric_connected rng ~n ~radius in
  Printf.printf "sensor field: %d sensors, %d radio links, busiest sensor hears %d others\n"
    (Graph.n graph) (Graph.m graph) (Graph.max_degree graph);

  let bfs = Mdst_graph.Algo.bfs_tree graph ~root:(Graph.min_id_node graph) in
  Printf.printf "\nBFS overlay        : degree %d, relative lifetime %.2f\n"
    (Tree.max_degree bfs) (lifetime bfs);

  let fixpoint tree = not (Mdst_baseline.Fr.improvable tree) in
  let result = Mdst_core.Run.converge ~seed:5 ~init:`Random ~fixpoint graph in
  (match result.tree with
  | Some tree ->
      Printf.printf "protocol overlay   : degree %d, relative lifetime %.2f (%d rounds to form)\n"
        (Tree.max_degree tree) (lifetime tree) result.rounds;
      let h = Tree.degree_histogram tree in
      print_string "degree histogram   : ";
      Array.iteri (fun d c -> if d > 0 && c > 0 then Printf.printf "deg%d:%d " d c) h;
      print_newline ()
  | None -> print_endline "protocol did not converge (raise max_rounds)");

  (* A sensor network is dynamic: nodes reboot with garbage state.  The
     overlay repairs itself — that is the point of self-stabilization. *)
  let recovery =
    Mdst_core.Run.converge_corrupt_recover ~seed:5 ~fixpoint ~fraction:0.3 graph
  in
  match recovery.recovery_rounds with
  | Some r ->
      Printf.printf "\nafter rebooting %d sensors with garbage state: overlay repaired in %d rounds\n"
        recovery.corrupted r
  | None -> print_endline "\nrecovery did not finish (raise max_rounds)"

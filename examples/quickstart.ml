(* Quickstart: build a graph, run the self-stabilizing MDST protocol on it,
   inspect the result.  `dune exec examples/quickstart.exe` *)

module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Run = Mdst_core.Run

let () =
  (* 1. A topology: a connected random graph with 20 nodes. *)
  let rng = Mdst_util.Prng.create 2024 in
  let graph = Gen.erdos_renyi_connected rng ~n:20 ~p:0.2 in
  Printf.printf "network: %d nodes, %d links, max degree %d\n" (Graph.n graph) (Graph.m graph)
    (Graph.max_degree graph);

  (* 2. Run the protocol from an adversarial (corrupted) start until the
        configuration is legitimate and no improvement remains. *)
  let fixpoint tree = not (Mdst_baseline.Fr.improvable tree) in
  let result = Run.converge ~seed:1 ~init:`Random ~fixpoint graph in

  (* 3. Inspect. *)
  Printf.printf "converged: %b after %d asynchronous rounds (%d messages)\n" result.converged
    result.rounds result.total_messages;
  match result.tree with
  | None -> print_endline "no legitimate tree — increase max_rounds"
  | Some tree ->
      Printf.printf "spanning tree degree: %d\n" (Tree.max_degree tree);
      (* The centralized Fürer–Raghavachari algorithm is the reference: the
         protocol's guarantee is the same Delta*+1. *)
      let reference = Mdst_baseline.Fr.approx_mdst graph in
      Printf.printf "centralized FR reference: %d\n" (Tree.max_degree reference);
      Printf.printf "tree edges: %s\n"
        (String.concat " "
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) (Tree.edge_list tree)))

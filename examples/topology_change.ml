(* Topology changes under a live overlay — the paper's concluding open
   problem (dynamic networks), explored with the machinery of experiment
   E13.

   We converge the overlay on a random graph, then hit it with the worst
   structural event: one of its own tree edges disappears (a link failure),
   splitting the spanning tree.  State is carried over as-is — dangling
   parent pointers included — and the protocol must notice and re-attach
   the orphaned subtree.  Then we do the friendly event: a brand-new link
   appears, and if it is an improving edge the protocol exploits it.

   `dune exec examples/topology_change.exe` *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Run = Mdst_core.Run
module Engine = Run.Engine
module Transplant = Mdst_core.Transplant

let fixpoint t = not (Mdst_baseline.Fr.improvable t)

let converge_on ?(states = None) graph =
  let engine =
    match states with
    | None -> Run.make_engine ~seed:9 graph
    | Some arr ->
        Engine.create ~seed:10 ~init:(`Custom (fun ctx _ -> arr.(ctx.Mdst_sim.Node.node))) graph
  in
  let stop = Run.make_stop ~fixpoint () in
  let o = Engine.run engine ~max_rounds:40_000 ~check_every:2 ~stop () in
  (engine, o)

let () =
  let rng = Mdst_util.Prng.create 2718 in
  let graph = Mdst_graph.Gen.erdos_renyi_connected rng ~n:20 ~p:0.22 in
  Printf.printf "overlay: %d nodes, %d links\n" (Graph.n graph) (Graph.m graph);

  let engine, o1 = converge_on graph in
  let tree =
    match Mdst_core.Checker.tree_of_states graph (Engine.states engine) with
    | Some t -> t
    | None -> failwith "did not converge; raise max_rounds"
  in
  Printf.printf "converged in %d rounds at tree degree %d\n\n" o1.rounds (Tree.max_degree tree);

  (* Event 1: a tree link fails. *)
  (match Transplant.remove_tree_edge rng graph tree with
  | None -> print_endline "every tree edge is a bridge here; no removable link"
  | Some (graph', (u, v)) ->
      Printf.printf "link failure: tree edge %d--%d vanishes (subtree orphaned)\n" u v;
      let moved =
        Transplant.states ~old_graph:graph ~new_graph:graph' (Engine.states engine)
      in
      let engine', o2 = converge_on ~states:(Some moved) graph' in
      let deg =
        match Mdst_core.Checker.tree_degree_now graph' (Engine.states engine') with
        | Some d -> string_of_int d
        | None -> "?"
      in
      Printf.printf "  re-stabilized: %b after %d rounds, tree degree %s\n\n" o2.converged
        o2.rounds deg);

  (* Event 2: a new link appears. *)
  match Transplant.add_random_edge rng graph with
  | None -> print_endline "graph already complete"
  | Some (graph', (u, v)) ->
      Printf.printf "new link: %d--%d appears\n" u v;
      let moved = Transplant.states ~old_graph:graph ~new_graph:graph' (Engine.states engine) in
      let engine', o3 = converge_on ~states:(Some moved) graph' in
      let deg =
        match Mdst_core.Checker.tree_degree_now graph' (Engine.states engine') with
        | Some d -> string_of_int d
        | None -> "?"
      in
      Printf.printf "  absorbed: %b after %d rounds, tree degree %s\n" o3.converged o3.rounds deg;
      print_endline
        "\nThe protocol handles both events by self-stabilization alone; a\n\
         super-stabilizing variant (the paper's open problem) would additionally\n\
         bound the disruption during the repair."

(* Peer-to-peer overlay scenario (the paper's second motivation).

   In a P2P overlay, a peer's tree degree is the bandwidth it donates to
   others, so fairness means low maximum degree.  Preferential-attachment
   graphs have hubs; the MDST tree spreads the relay load.  We measure the
   relay-fairness (max and 95th-percentile tree degree) and then watch the
   overlay absorb a burst of peer state corruption — churned peers
   rejoining with stale state.

   `dune exec examples/p2p_overlay.exe` *)

module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Stats = Mdst_analysis.Stats

let tree_deg_p95 tree =
  let g = Tree.graph tree in
  let degs = List.init (Graph.n g) (fun v -> float_of_int (Tree.degree tree v)) in
  Stats.percentile 95.0 degs

let describe name tree =
  Printf.printf "%-18s max relay load %d, p95 %.1f\n" name (Tree.max_degree tree)
    (tree_deg_p95 tree)

let () =
  let rng = Mdst_util.Prng.create 404 in
  let graph = Gen.barabasi_albert rng ~n:40 ~k:2 in
  Printf.printf "overlay: %d peers, %d connections, biggest hub knows %d peers\n\n"
    (Graph.n graph) (Graph.m graph) (Graph.max_degree graph);

  (* Naive overlays concentrate relaying on the hubs. *)
  describe "BFS tree" (Mdst_graph.Algo.bfs_tree graph ~root:(Graph.min_id_node graph));
  describe "random tree" (Mdst_graph.Algo.random_spanning_tree rng graph ~root:(Graph.min_id_node graph));

  let fixpoint tree = not (Mdst_baseline.Fr.improvable tree) in
  let result = Mdst_core.Run.converge ~seed:8 ~init:`Clean ~fixpoint graph in
  (match result.tree with
  | Some tree ->
      describe "MDST protocol" tree;
      Printf.printf "\nformed in %d rounds, %d messages\n" result.rounds result.total_messages
  | None -> print_endline "MDST protocol: did not converge");

  (* Churn burst: half the peers come back with arbitrary state. *)
  print_endline "\nchurn burst: 50% of peers rejoin with stale/garbage protocol state...";
  let recovery =
    Mdst_core.Run.converge_corrupt_recover ~seed:8 ~fixpoint ~fraction:0.5 graph
  in
  match recovery.recovery_rounds with
  | Some r ->
      Printf.printf "overlay re-stabilized in %d rounds; tree degree after recovery: %s\n" r
        (match recovery.first.degree with Some d -> string_of_int d | None -> "?")
  | None -> print_endline "recovery did not finish (raise max_rounds)"

(* Tests for the graph substrate: construction, generators, trees,
   fundamental cycles, Prüfer coding, classical algorithms. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Tree = Mdst_graph.Tree
module Algo = Mdst_graph.Algo
module Prufer = Mdst_graph.Prufer
module Union_find = Mdst_graph.Union_find
module Prng = Mdst_util.Prng

let check = Alcotest.(check bool)

let rng () = Prng.create 71

(* ---------------- Graph ---------------- *)

let test_graph_basic () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (3, 0) ] in
  Alcotest.(check int) "n" 4 (Graph.n g);
  Alcotest.(check int) "m" 4 (Graph.m g);
  check "mem" true (Graph.mem_edge g 0 1);
  check "mem sym" true (Graph.mem_edge g 1 0);
  check "not mem" false (Graph.mem_edge g 0 2);
  check "no self edge" false (Graph.mem_edge g 1 1);
  Alcotest.(check int) "degree" 2 (Graph.degree g 0)

let test_graph_dedup () =
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "duplicates collapsed" 1 (Graph.m g)

let test_graph_rejects () =
  Alcotest.check_raises "self loop" (Invalid_argument "Graph: self-loop") (fun () ->
      ignore (Graph.of_edges ~n:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Graph: endpoint out of range")
    (fun () -> ignore (Graph.of_edges ~n:3 [ (0, 5) ]));
  Alcotest.check_raises "dup ids" (Invalid_argument "Graph: duplicate identifier") (fun () ->
      ignore (Graph.of_edges ~ids:[| 1; 1; 2 |] ~n:3 []))

let test_graph_ids () =
  let g = Graph.of_edges ~ids:[| 30; 10; 20 |] ~n:3 [ (0, 1); (1, 2) ] in
  Alcotest.(check int) "id" 30 (Graph.id g 0);
  Alcotest.(check int) "index_of_id" 1 (Graph.index_of_id g 10);
  Alcotest.(check int) "min id node" 1 (Graph.min_id_node g);
  let g2 = Graph.relabel_ids g [| 5; 6; 7 |] in
  Alcotest.(check int) "relabel" 0 (Graph.min_id_node g2);
  check "relabel keeps edges" true (Graph.mem_edge g2 0 1)

let test_degree_sum () =
  let g = Gen.erdos_renyi_connected (rng ()) ~n:20 ~p:0.3 in
  let sum = ref 0 in
  Graph.iter_nodes g (fun v -> sum := !sum + Graph.degree g v);
  Alcotest.(check int) "handshake lemma" (2 * Graph.m g) !sum

let test_non_edges () =
  let g = Gen.ring 5 in
  let ne = Graph.non_edges g in
  Alcotest.(check int) "count" (10 - 5) (List.length ne);
  check "disjoint from edges" true
    (List.for_all (fun (u, v) -> not (Graph.mem_edge g u v)) ne)

let test_complete () =
  let g = Graph.complete 6 in
  Alcotest.(check int) "m" 15 (Graph.m g);
  Alcotest.(check int) "max degree" 5 (Graph.max_degree g);
  Alcotest.(check int) "min degree" 5 (Graph.min_degree g)

(* ---------------- Union-find ---------------- *)

let test_union_find () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  check "union" true (Union_find.union uf 0 1);
  check "redundant union" false (Union_find.union uf 1 0);
  check "same" true (Union_find.same uf 0 1);
  check "not same" false (Union_find.same uf 0 2);
  let snapshot = Union_find.copy uf in
  ignore (Union_find.union uf 2 3);
  check "copy unaffected" false (Union_find.same snapshot 2 3);
  Alcotest.(check int) "count after unions" 3 (Union_find.count uf)

(* ---------------- Generators ---------------- *)

let connected_families =
  [
    ("path", fun () -> Gen.path 9);
    ("ring", fun () -> Gen.ring 9);
    ("star", fun () -> Gen.star 9);
    ("wheel", fun () -> Gen.wheel 9);
    ("grid", fun () -> Gen.grid ~rows:3 ~cols:4);
    ("torus", fun () -> Gen.torus ~rows:3 ~cols:4);
    ("hypercube", fun () -> Gen.hypercube 4);
    ("petersen", fun () -> Gen.petersen ());
    ("lollipop", fun () -> Gen.lollipop ~clique:5 ~tail:4);
    ("caterpillar", fun () -> Gen.caterpillar ~spine:4 ~legs:2);
    ("star-of-cliques", fun () -> Gen.star_of_cliques ~cliques:3 ~clique_size:4);
    ("bintree-chords", fun () -> Gen.binary_tree_with_chords ~depth:3);
    ("k-bipartite", fun () -> Gen.complete_bipartite 3 4);
    ("er-connected", fun () -> Gen.erdos_renyi_connected (rng ()) ~n:15 ~p:0.2);
    ("random-connected", fun () -> Gen.random_connected (rng ()) ~n:15 ~m:25);
    ("ba", fun () -> Gen.barabasi_albert (rng ()) ~n:15 ~k:2);
    ("geometric", fun () -> Gen.random_geometric_connected (rng ()) ~n:15 ~radius:0.3);
    ("regular", fun () -> Gen.random_regular (rng ()) ~n:12 ~d:3);
  ]

let test_families_connected () =
  List.iter
    (fun (name, build) -> check (name ^ " connected") true (Algo.is_connected (build ())))
    connected_families

let test_gen_shapes () =
  Alcotest.(check int) "path edges" 8 (Graph.m (Gen.path 9));
  Alcotest.(check int) "ring edges" 9 (Graph.m (Gen.ring 9));
  Alcotest.(check int) "star max degree" 8 (Graph.max_degree (Gen.star 9));
  Alcotest.(check int) "wheel hub" 8 (Graph.degree (Gen.wheel 9) 0);
  Alcotest.(check int) "hypercube degree" 4 (Graph.max_degree (Gen.hypercube 4));
  Alcotest.(check int) "torus regular" 4 (Graph.min_degree (Gen.torus ~rows:3 ~cols:4));
  Alcotest.(check int) "petersen cubic" 3 (Graph.max_degree (Gen.petersen ()));
  Alcotest.(check int) "petersen n" 10 (Graph.n (Gen.petersen ()))

let test_random_connected_m () =
  let g = Gen.random_connected (rng ()) ~n:12 ~m:20 in
  Alcotest.(check int) "exact edge count" 20 (Graph.m g)

let test_random_regular_degrees () =
  let g = Gen.random_regular (rng ()) ~n:14 ~d:3 in
  Graph.iter_nodes g (fun v -> Alcotest.(check int) "regular degree" 3 (Graph.degree g v))

let test_caterpillar_structure () =
  let g = Gen.caterpillar ~spine:3 ~legs:2 in
  Alcotest.(check int) "n" 9 (Graph.n g);
  Alcotest.(check int) "m = n-1 (a tree)" 8 (Graph.m g);
  check "tree" true (Algo.is_connected g)

let test_edge_count_formulas () =
  (* Closed-form edge counts pin down the generators' shapes. *)
  Alcotest.(check int) "torus 3x4" (2 * 12) (Graph.m (Gen.torus ~rows:3 ~cols:4));
  Alcotest.(check int) "grid 3x4" ((3 * 3) + (2 * 4)) (Graph.m (Gen.grid ~rows:3 ~cols:4));
  Alcotest.(check int) "hypercube d=4" (4 * 8) (Graph.m (Gen.hypercube 4));
  Alcotest.(check int) "wheel 9" (2 * 8) (Graph.m (Gen.wheel 9));
  Alcotest.(check int) "K_{3,4}" 12 (Graph.m (Gen.complete_bipartite 3 4));
  Alcotest.(check int) "petersen" 15 (Graph.m (Gen.petersen ()));
  (* lollipop: clique + tail path *)
  Alcotest.(check int) "lollipop 5+3" ((5 * 4 / 2) + 3) (Graph.m (Gen.lollipop ~clique:5 ~tail:3));
  (* star-of-cliques: c cliques + c hub spokes + c outer-cycle edges *)
  Alcotest.(check int) "star-of-cliques 3x4" ((3 * 6) + 3 + 3)
    (Graph.m (Gen.star_of_cliques ~cliques:3 ~clique_size:4));
  (* binary tree with chords: (n-1) tree edges + (leaves - 1) chords *)
  Alcotest.(check int) "bintree-chords d=3" (14 + 7) (Graph.m (Gen.binary_tree_with_chords ~depth:3))

let test_generator_rejections () =
  let rejects f = try ignore (f ()); false with Invalid_argument _ -> true in
  check "ring 2" true (rejects (fun () -> Gen.ring 2));
  check "wheel 3" true (rejects (fun () -> Gen.wheel 3));
  check "torus 2x5" true (rejects (fun () -> Gen.torus ~rows:2 ~cols:5));
  check "regular odd nd" true (rejects (fun () -> Gen.random_regular (rng ()) ~n:5 ~d:3));
  check "regular d>=n" true (rejects (fun () -> Gen.random_regular (rng ()) ~n:4 ~d:4));
  check "er bad p" true (rejects (fun () -> Gen.erdos_renyi (rng ()) ~n:5 ~p:1.5));
  check "random_connected m too small" true
    (rejects (fun () -> Gen.random_connected (rng ()) ~n:6 ~m:3))

let test_known_diameters () =
  Alcotest.(check int) "hypercube diameter = d" 4 (Algo.diameter (Gen.hypercube 4));
  Alcotest.(check int) "grid diameter" 5 (Algo.diameter (Gen.grid ~rows:3 ~cols:4));
  Alcotest.(check int) "petersen diameter" 2 (Algo.diameter (Gen.petersen ()));
  Alcotest.(check int) "star diameter" 2 (Algo.diameter (Gen.star 9))

let test_deblock_gadget_shape () =
  let g = Gen.deblock_gadget () in
  let g', parents = Gen.deblock_gadget_tree g in
  check "same graph returned" true (Graph.equal g g');
  let t = Tree.of_parents g ~root:0 parents in
  Alcotest.(check int) "blocked tree degree" 4 (Tree.max_degree t);
  Alcotest.(check int) "hub degree" 4 (Tree.degree t 0);
  Alcotest.(check int) "blocker degree = dmax - 1" 3 (Tree.degree t 5);
  Alcotest.(check (list (pair int int))) "the two escape edges" [ (1, 5); (6, 7) ]
    (Tree.non_tree_edges t);
  (* The gadget's optimum really is 3 (so ablated runs at 4 exceed D*+1 - 1). *)
  match Mdst_baseline.Exact.solve g with
  | Some r -> Alcotest.(check int) "gadget Delta*" 3 r.optimum
  | None -> Alcotest.fail "exact solver must handle n=8"

let prop_bridges_disconnect =
  QCheck.Test.make ~name:"removing a bridge disconnects the graph" ~count:40
    QCheck.(pair small_int (int_range 5 14))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi_connected (Prng.create seed) ~n ~p:0.18 in
      List.for_all
        (fun (u, v) ->
          let edges =
            Graph.fold_edges g ~init:[] ~f:(fun acc a b ->
                if (a, b) = (u, v) then acc else (a, b) :: acc)
          in
          not (Algo.is_connected (Graph.of_edges ~n:(Graph.n g) edges)))
        (Algo.bridges g))

let prop_non_bridges_keep_connected =
  QCheck.Test.make ~name:"removing a non-bridge keeps the graph connected" ~count:30
    QCheck.(pair small_int (int_range 5 12))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi_connected (Prng.create seed) ~n ~p:0.3 in
      let bridges = Algo.bridges g in
      Graph.fold_edges g ~init:true ~f:(fun acc u v ->
          acc
          && (List.mem (u, v) bridges
             ||
             let edges =
               Graph.fold_edges g ~init:[] ~f:(fun acc a b ->
                   if (a, b) = (u, v) then acc else (a, b) :: acc)
             in
             Algo.is_connected (Graph.of_edges ~n:(Graph.n g) edges))))

let test_by_name_all () =
  List.iter
    (fun name ->
      let g = Gen.by_name name (rng ()) ~n:12 in
      check (name ^ " by_name connected") true (Algo.is_connected g))
    Gen.family_names

let test_by_name_unknown () =
  check "unknown family raises" true
    (try
       ignore (Gen.by_name "nope" (rng ()) ~n:5);
       false
     with Invalid_argument _ -> true)

let test_with_random_ids () =
  let g = Gen.with_random_ids (rng ()) (Gen.ring 10) in
  let ids = List.init 10 (Graph.id g) in
  check "ids are a permutation" true (List.sort compare ids = List.init 10 Fun.id)

(* ---------------- Tree ---------------- *)

let sample_tree () =
  (* 0-1-2-3 path plus chords 0-2, 1-3, 0-3. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3); (0, 2); (1, 3); (0, 3) ] in
  (g, Tree.of_parents g ~root:0 [| 0; 0; 1; 2 |])

let test_tree_basics () =
  let _, t = sample_tree () in
  Alcotest.(check int) "root" 0 (Tree.root t);
  Alcotest.(check int) "depth 3" 3 (Tree.depth t 3);
  Alcotest.(check int) "degree mid" 2 (Tree.degree t 1);
  Alcotest.(check int) "degree leaf" 1 (Tree.degree t 3);
  Alcotest.(check int) "max degree" 2 (Tree.max_degree t);
  Alcotest.(check (list int)) "children" [ 2 ] (Tree.children t 1);
  check "tree edge" true (Tree.is_tree_edge t 1 2);
  check "non tree edge" false (Tree.is_tree_edge t 0 2);
  Alcotest.(check (list (pair int int))) "edges" [ (0, 1); (1, 2); (2, 3) ] (Tree.edge_list t);
  Alcotest.(check (list (pair int int)))
    "non tree edges" [ (0, 2); (0, 3); (1, 3) ] (Tree.non_tree_edges t)

let test_tree_invalid () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  check "cycle rejected" true
    (try
       ignore (Tree.of_parents g ~root:0 [| 0; 2; 1; 2 |]);
       false
     with Tree.Invalid _ -> true);
  check "non-edge parent rejected" true
    (try
       ignore (Tree.of_parents g ~root:0 [| 0; 0; 0; 2 |]);
       false
     with Tree.Invalid _ -> true);
  check "bad root rejected" true
    (try
       ignore (Tree.of_parents g ~root:0 [| 1; 0; 1; 2 |]);
       false
     with Tree.Invalid _ -> true)

let test_fundamental_cycle () =
  let _, t = sample_tree () in
  Alcotest.(check (list int)) "cycle 0-2" [ 0; 1; 2 ] (Tree.fundamental_cycle t (0, 2));
  Alcotest.(check (list int)) "cycle 0-3" [ 0; 1; 2; 3 ] (Tree.fundamental_cycle t (0, 3));
  Alcotest.(check (list int)) "cycle 1-3" [ 1; 2; 3 ] (Tree.fundamental_cycle t (1, 3));
  check "tree edge rejected" true
    (try
       ignore (Tree.fundamental_cycle t (0, 1));
       false
     with Tree.Invalid _ -> true)

let test_swap () =
  let _, t = sample_tree () in
  let t' = Tree.swap t ~remove:(1, 2) ~add:(0, 2) in
  check "new edge in" true (Tree.is_tree_edge t' 0 2);
  check "old edge out" false (Tree.is_tree_edge t' 1 2);
  Alcotest.(check int) "still spanning" 3 (List.length (Tree.edge_list t'));
  check "swap off-cycle rejected" true
    (try
       ignore (Tree.swap t ~remove:(2, 3) ~add:(0, 2));
       false
     with Tree.Invalid _ -> true)

let test_in_subtree () =
  let _, t = sample_tree () in
  check "3 under 1" true (Tree.in_subtree t ~root:1 3);
  check "1 not under 2" false (Tree.in_subtree t ~root:2 1);
  check "root covers all" true (Tree.in_subtree t ~root:0 3)

let test_degree_histogram () =
  let _, t = sample_tree () in
  Alcotest.(check (array int)) "histogram" [| 0; 2; 2 |] (Tree.degree_histogram t)

let test_of_edge_list_roundtrip () =
  let g, t = sample_tree () in
  let t' = Tree.of_edge_list g ~root:0 (Tree.edge_list t) in
  check "same edges" true (Tree.equal_edges t t')

let prop_random_tree_is_spanning =
  QCheck.Test.make ~name:"wilson random spanning tree is valid" ~count:60
    QCheck.(pair small_int (int_range 4 24))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.3 in
      let t = Algo.random_spanning_tree rng g ~root:0 in
      List.length (Tree.edge_list t) = n - 1)

let prop_fundamental_cycle_valid =
  QCheck.Test.make ~name:"fundamental cycle: tree path joining the non-tree edge" ~count:60
    QCheck.(pair small_int (int_range 5 20))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.35 in
      let t = Algo.bfs_tree g ~root:0 in
      List.for_all
        (fun (u, v) ->
          let c = Tree.fundamental_cycle t (u, v) in
          let rec consecutive_tree_edges = function
            | a :: (b :: _ as rest) -> Tree.is_tree_edge t a b && consecutive_tree_edges rest
            | _ -> true
          in
          List.hd c = u
          && List.hd (List.rev c) = v
          && List.length (List.sort_uniq compare c) = List.length c
          && consecutive_tree_edges c)
        (Tree.non_tree_edges t))

let prop_swap_keeps_spanning =
  QCheck.Test.make ~name:"swapping along a fundamental cycle keeps a spanning tree" ~count:60
    QCheck.(pair small_int (int_range 5 16))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.35 in
      let t = Algo.bfs_tree g ~root:0 in
      match Tree.non_tree_edges t with
      | [] -> true
      | (u, v) :: _ -> (
          let c = Tree.fundamental_cycle t (u, v) in
          match c with
          | a :: b :: _ ->
              let t' = Tree.swap t ~remove:(a, b) ~add:(u, v) in
              List.length (Tree.edge_list t') = n - 1 && Tree.is_tree_edge t' u v
          | _ -> true))

(* ---------------- Prüfer ---------------- *)

let test_prufer_known () =
  (* The star 0-{1,2,3} has sequence [0; 0]. *)
  let seq = Prufer.encode ~n:4 [ (0, 1); (0, 2); (0, 3) ] in
  Alcotest.(check (array int)) "star sequence" [| 0; 0 |] seq;
  let edges = Prufer.decode ~n:4 [| 0; 0 |] in
  Alcotest.(check int) "decoded edges" 3 (List.length edges)

let prop_prufer_roundtrip =
  QCheck.Test.make ~name:"prufer decode . encode = id (as edge sets)" ~count:150
    QCheck.(pair small_int (int_range 3 30))
    (fun (seed, n) ->
      let edges = Prufer.random_tree (Prng.create seed) ~n in
      let seq = Prufer.encode ~n edges in
      let edges' = Prufer.decode ~n seq in
      List.sort compare (List.map (fun (a, b) -> (min a b, max a b)) edges)
      = List.sort compare edges')

let prop_prufer_random_tree_spans =
  QCheck.Test.make ~name:"prufer random tree is a tree" ~count:100
    QCheck.(pair small_int (int_range 2 40))
    (fun (seed, n) ->
      let edges = Prufer.random_tree (Prng.create seed) ~n in
      let uf = Union_find.create n in
      List.length edges = n - 1
      && List.for_all (fun (u, v) -> Union_find.union uf u v) edges)

(* ---------------- Algo ---------------- *)

let test_bfs_distances () =
  let g = Gen.ring 8 in
  let d = Algo.bfs_distances g ~src:0 in
  Alcotest.(check int) "opposite point" 4 d.(4);
  Alcotest.(check int) "adjacent" 1 d.(1)

let test_components () =
  let g = Graph.of_edges ~n:5 [ (0, 1); (2, 3) ] in
  Alcotest.(check int) "three components" 3 (Algo.component_count g);
  check "disconnected" false (Algo.is_connected g)

let test_bfs_dfs_trees () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let b = Algo.bfs_tree g ~root:0 and d = Algo.dfs_tree g ~root:0 in
  Alcotest.(check int) "bfs spans" 8 (List.length (Tree.edge_list b));
  Alcotest.(check int) "dfs spans" 8 (List.length (Tree.edge_list d));
  check "dfs depth >= bfs depth" true
    (List.fold_left (fun acc v -> max acc (Tree.depth d v)) 0 (List.init 9 Fun.id)
    >= List.fold_left (fun acc v -> max acc (Tree.depth b v)) 0 (List.init 9 Fun.id));
  Alcotest.(check int) "dfs of 3x3 grid snakes (degree 2)" 2 (Tree.max_degree d)

let test_bridges () =
  Alcotest.(check (list (pair int int))) "ring has no bridges" [] (Algo.bridges (Gen.ring 6));
  Alcotest.(check int) "path all bridges" 5 (List.length (Algo.bridges (Gen.path 6)));
  let lolli = Gen.lollipop ~clique:4 ~tail:3 in
  Alcotest.(check int) "lollipop tail bridges" 3 (List.length (Algo.bridges lolli))

let test_diameter () =
  Alcotest.(check int) "ring 8" 4 (Algo.diameter (Gen.ring 8));
  Alcotest.(check int) "path 6" 5 (Algo.diameter (Gen.path 6));
  Alcotest.(check int) "complete" 1 (Algo.diameter (Graph.complete 5));
  Alcotest.(check int) "disconnected" (-1) (Algo.diameter (Graph.of_edges ~n:3 [ (0, 1) ]))

(* ---------------- Dot ---------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_dot_output () =
  let g, t = sample_tree () in
  let s = Mdst_graph.Dot.graph_to_string g in
  check "graph dot mentions edge" true (contains s "0 -- 1");
  let st = Mdst_graph.Dot.tree_to_string t in
  check "tree dot has dotted non-tree edge" true (contains st "style=dotted");
  check "tree dot highlights" true (contains st "fillcolor")

(* ---------------- Io ---------------- *)

let test_io_roundtrip () =
  let g = Gen.with_random_ids (rng ()) (Gen.grid ~rows:3 ~cols:4) in
  let g' = Mdst_graph.Io.of_string (Mdst_graph.Io.to_string g) in
  check "roundtrip equal" true (Graph.equal g g')

let test_io_default_ids_omitted () =
  let g = Gen.ring 5 in
  let s = Mdst_graph.Io.to_string g in
  check "no ids line for default ids" false (contains s "ids");
  check "roundtrip" true (Graph.equal g (Mdst_graph.Io.of_string s))

let test_io_parses_comments () =
  let g = Mdst_graph.Io.of_string "# a comment\nn 3\n0 1\n\n1 2\n" in
  Alcotest.(check int) "n" 3 (Graph.n g);
  Alcotest.(check int) "m" 2 (Graph.m g)

let test_io_rejects_malformed () =
  let rejects s =
    try
      ignore (Mdst_graph.Io.of_string s);
      false
    with Invalid_argument _ -> true
  in
  check "missing header" true (rejects "0 1\n");
  check "bad edge" true (rejects "n 3\n0 x\n");
  check "junk line" true (rejects "n 3\nhello world extra\n")

let prop_io_roundtrip_random =
  QCheck.Test.make ~name:"io roundtrip on random shuffled-id graphs" ~count:150
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, n) ->
      let r = Prng.create seed in
      let g =
        Gen.with_random_ids (Prng.split r)
          (Gen.random_connected (Prng.split r) ~n ~m:(n - 1 + (n / 3)))
      in
      Graph.equal g (Mdst_graph.Io.of_string (Mdst_graph.Io.to_string g)))

let prop_random_ids_preserve_structure =
  QCheck.Test.make ~name:"with_random_ids keeps n, m and adjacency" ~count:150
    QCheck.(pair small_int (int_range 4 20))
    (fun (seed, n) ->
      let r = Prng.create seed in
      let g = Gen.erdos_renyi_connected (Prng.split r) ~n ~p:0.4 in
      let g' = Gen.with_random_ids (Prng.split r) g in
      Graph.n g' = n
      && Graph.m g' = Graph.m g
      && List.for_all
           (fun (u, v) -> Graph.mem_edge g' u v)
           (Array.to_list (Graph.edges g))
      && List.sort compare (List.init n (Graph.id g'))
         = List.sort compare (List.init n (Graph.id g)))

let test_io_file_roundtrip () =
  let g = Gen.petersen () in
  let path = Filename.temp_file "mdst" ".graph" in
  Mdst_graph.Io.save path g;
  let g' = Mdst_graph.Io.load path in
  Sys.remove path;
  check "file roundtrip" true (Graph.equal g g')

(* ---------------- Props ---------------- *)

let feq = Alcotest.(check (float 1e-9))

let test_props_known_values () =
  let k4 = Graph.complete 4 in
  feq "K4 density" 1.0 (Mdst_graph.Props.density k4);
  Alcotest.(check int) "K4 triangles" 4 (Mdst_graph.Props.triangle_count k4);
  feq "K4 clustering" 1.0 (Mdst_graph.Props.global_clustering k4);
  feq "K4 local clustering" 1.0 (Mdst_graph.Props.average_local_clustering k4);
  let ring = Gen.ring 6 in
  Alcotest.(check int) "ring triangles" 0 (Mdst_graph.Props.triangle_count ring);
  feq "ring clustering" 0.0 (Mdst_graph.Props.global_clustering ring);
  feq "ring avg degree" 2.0 (Mdst_graph.Props.average_degree ring)

let test_props_histogram () =
  let star = Gen.star 5 in
  Alcotest.(check (array int)) "star histogram" [| 0; 4; 0; 0; 1 |]
    (Mdst_graph.Props.degree_histogram star)

let test_props_assortativity_sign () =
  (* Stars are maximally disassortative; a ring has constant degrees. *)
  check "star negative" true (Mdst_graph.Props.degree_assortativity (Gen.star 8) < -0.9);
  feq "ring undefined -> 0" 0.0 (Mdst_graph.Props.degree_assortativity (Gen.ring 8))

let test_props_summary_keys () =
  let s = Mdst_graph.Props.summary (Gen.ring 5) in
  List.iter
    (fun key -> check ("summary has " ^ key) true (List.mem_assoc key s))
    [ "nodes"; "edges"; "density"; "connected"; "diameter"; "degree assortativity" ]

(* ---------------- Partition ---------------- *)

module Partition = Mdst_graph.Partition

let test_partition_balance () =
  let g = Gen.by_name "grid" (rng ()) ~n:36 in
  List.iter
    (fun parts ->
      let part = Partition.blocks g ~parts in
      check "validate" true (Partition.validate g part ~parts);
      let quota = Partition.part_sizes ~n:(Graph.n g) ~parts in
      let sizes = Array.make parts 0 in
      Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) part;
      let lo = Array.fold_left min max_int quota and hi = Array.fold_left max 0 quota in
      Array.iter (fun s -> check "within floor/ceil band" true (s >= lo && s <= hi)) sizes)
    [ 2; 3; 4; 5 ]

let test_partition_degenerate () =
  let g = Gen.ring 6 in
  check "parts=1 all zero" true (Array.for_all (( = ) 0) (Partition.blocks g ~parts:1));
  Alcotest.(check int) "parts=1 no cut" 0
    (Partition.cut_edges g (Partition.blocks g ~parts:1));
  let solo = Partition.blocks g ~parts:10 in
  let distinct = List.sort_uniq compare (Array.to_list solo) in
  Alcotest.(check int) "parts>=n: one node per part" 6 (List.length distinct);
  check "parts<=0 rejected" true
    (try
       ignore (Partition.blocks g ~parts:0);
       false
     with Invalid_argument _ -> true)

let test_partition_members () =
  let g = Gen.by_name "grid" (rng ()) ~n:25 in
  let parts = 4 in
  let part = Partition.blocks g ~parts in
  let members = Partition.members part ~parts in
  let all = Array.to_list members |> List.concat_map Array.to_list |> List.sort compare in
  check "members cover every node exactly once" true (all = List.init (Graph.n g) Fun.id);
  Array.iteri
    (fun s nodes -> Array.iter (fun v -> Alcotest.(check int) "member in its part" s part.(v)) nodes)
    members

let test_partition_cut_quality () =
  (* BFS growth + greedy refinement must beat a striped split on a mesh:
     the parallel engine's cross-shard traffic is proportional to the cut. *)
  let g = Gen.by_name "grid" (rng ()) ~n:64 in
  let parts = 4 in
  let part = Partition.blocks g ~parts in
  let striped = Array.init (Graph.n g) (fun v -> v mod parts) in
  check "partitioner cut below striped cut" true
    (Partition.cut_edges g part < Partition.cut_edges g striped)

let test_partition_deterministic () =
  let g = Gen.erdos_renyi_connected (rng ()) ~n:40 ~p:0.15 in
  check "pure function of (graph, parts)" true
    (Partition.blocks g ~parts:3 = Partition.blocks g ~parts:3)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "graph"
    [
      ( "graph",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "dedup" `Quick test_graph_dedup;
          Alcotest.test_case "rejects invalid" `Quick test_graph_rejects;
          Alcotest.test_case "identifiers" `Quick test_graph_ids;
          Alcotest.test_case "degree sum" `Quick test_degree_sum;
          Alcotest.test_case "non edges" `Quick test_non_edges;
          Alcotest.test_case "complete" `Quick test_complete;
        ] );
      ("union-find", [ Alcotest.test_case "operations" `Quick test_union_find ]);
      ( "generators",
        [
          Alcotest.test_case "all connected" `Quick test_families_connected;
          Alcotest.test_case "shapes" `Quick test_gen_shapes;
          Alcotest.test_case "random_connected edge count" `Quick test_random_connected_m;
          Alcotest.test_case "regular degrees" `Quick test_random_regular_degrees;
          Alcotest.test_case "caterpillar" `Quick test_caterpillar_structure;
          Alcotest.test_case "by_name all" `Quick test_by_name_all;
          Alcotest.test_case "by_name unknown" `Quick test_by_name_unknown;
          Alcotest.test_case "random ids" `Quick test_with_random_ids;
          Alcotest.test_case "edge-count formulas" `Quick test_edge_count_formulas;
          Alcotest.test_case "generator rejections" `Quick test_generator_rejections;
          Alcotest.test_case "known diameters" `Quick test_known_diameters;
          Alcotest.test_case "deblock gadget shape" `Quick test_deblock_gadget_shape;
        ] );
      ( "tree",
        [
          Alcotest.test_case "basics" `Quick test_tree_basics;
          Alcotest.test_case "invalid rejected" `Quick test_tree_invalid;
          Alcotest.test_case "fundamental cycle" `Quick test_fundamental_cycle;
          Alcotest.test_case "swap" `Quick test_swap;
          Alcotest.test_case "in_subtree" `Quick test_in_subtree;
          Alcotest.test_case "degree histogram" `Quick test_degree_histogram;
          Alcotest.test_case "edge list roundtrip" `Quick test_of_edge_list_roundtrip;
          q prop_random_tree_is_spanning;
          q prop_fundamental_cycle_valid;
          q prop_swap_keeps_spanning;
        ] );
      ( "prufer",
        [
          Alcotest.test_case "known sequence" `Quick test_prufer_known;
          q prop_prufer_roundtrip;
          q prop_prufer_random_tree_spans;
        ] );
      ( "algo",
        [
          Alcotest.test_case "bfs distances" `Quick test_bfs_distances;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "bfs/dfs trees" `Quick test_bfs_dfs_trees;
          Alcotest.test_case "bridges" `Quick test_bridges;
          Alcotest.test_case "diameter" `Quick test_diameter;
          q prop_bridges_disconnect;
          q prop_non_bridges_keep_connected;
        ] );
      ("dot", [ Alcotest.test_case "output" `Quick test_dot_output ]);
      ( "io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "default ids omitted" `Quick test_io_default_ids_omitted;
          Alcotest.test_case "comments" `Quick test_io_parses_comments;
          Alcotest.test_case "rejects malformed" `Quick test_io_rejects_malformed;
          Alcotest.test_case "file roundtrip" `Quick test_io_file_roundtrip;
          q prop_io_roundtrip_random;
          q prop_random_ids_preserve_structure;
        ] );
      ( "props",
        [
          Alcotest.test_case "known values" `Quick test_props_known_values;
          Alcotest.test_case "histogram" `Quick test_props_histogram;
          Alcotest.test_case "assortativity sign" `Quick test_props_assortativity_sign;
          Alcotest.test_case "summary keys" `Quick test_props_summary_keys;
        ] );
      ( "partition",
        [
          Alcotest.test_case "balance band + validate" `Quick test_partition_balance;
          Alcotest.test_case "degenerate part counts" `Quick test_partition_degenerate;
          Alcotest.test_case "members partition the nodes" `Quick test_partition_members;
          Alcotest.test_case "cut beats random split on a grid" `Quick test_partition_cut_quality;
          Alcotest.test_case "deterministic" `Quick test_partition_deterministic;
        ] );
    ]

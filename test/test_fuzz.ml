(* The schedule-fuzzing layer: strict replay failing closed, campaign
   soundness on the unmutated automaton, trophy reproducibility, shrink
   idempotence on the PR-4 stop-check-race reproducer, and the committed
   protocol-benchmark anchor the upcoming suppression fix will move. *)

module Graph = Mdst_graph.Graph
module Fault = Mdst_sim.Fault
module Mutation = Mdst_util.Mutation
module Shrink = Mdst_check.Shrink
module Fuzz = Mdst_check.Fuzz
module C = Mdst_check.Convergence

let check = Alcotest.(check bool)

(* ---------------- shrink idempotence (PR-4 race fixture) ---------------- *)

let race_case () = C.case_of_string Mdst_check.Mutants.race_fixture

(* The strictness contract directly: no shrinker offers its input back. *)
let test_shrink_strictness () =
  let case = race_case () in
  let plan_str = Fault.to_string case.C.plan in
  Seq.iter
    (fun p -> check "plan candidate differs from input" true (Fault.to_string p <> plan_str))
    (Shrink.plan case.C.plan);
  Seq.iter
    (fun g ->
      check "graph candidate strictly smaller" true
        (Graph.n g + Graph.m g < Graph.n case.C.graph + Graph.m case.C.graph))
    (Shrink.graph case.C.graph);
  (* A single-event plan must still offer the empty plan — otherwise
     "minimal" silently means "at least one event". *)
  check "singleton plan shrinks to empty" true
    (Seq.exists (fun p -> Fault.is_empty p) (Shrink.plan case.C.plan))

(* Greedy minimization is idempotent: once no candidate of a case still
   fails, re-shrinking returns the case unchanged.  Exercised on the PR-4
   tampered-message race with its historical bug forced back on. *)
let test_shrink_idempotent_on_race () =
  Fun.protect ~finally:(fun () -> Mutation.force None) @@ fun () ->
  Mutation.force (Some [ "stop-check-race" ]);
  let fails case = Result.is_error (C.Default.prop () case) in
  check "race fixture still fails under its mutant" true (fails (race_case ()));
  let rec minimize case =
    match Seq.find fails (C.shrink_case case) with
    | Some smaller -> minimize smaller
    | None -> case
  in
  let m1 = minimize (race_case ()) in
  let m2 = minimize m1 in
  Alcotest.(check string) "re-shrinking the minimum returns it unchanged"
    (C.case_to_string m1) (C.case_to_string m2);
  check "minimum still fails" true (fails m2)

(* ---------------- strict replay fails closed ---------------- *)

let triangle () = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ]

let entry ?(sched = []) ?steps () =
  let config =
    {
      Fuzz.variant = `Default;
      init = `Clean;
      graph = triangle ();
      engine_seed = 7;
      plan = Fault.empty;
      double_corrupt = false;
    }
  in
  let steps = match steps with Some s -> s | None -> List.length sched in
  { Fuzz.config; sched; steps }

let fails_closed name e =
  match Fuzz.replay e with
  | exception Failure _ -> ()
  | Ok () -> Alcotest.failf "%s: replay fell back to default order" name
  | Error (_, d) -> Alcotest.failf "%s: replay reported a trophy instead: %s" name d

let test_replay_empty_schedule () = fails_closed "empty" (entry ())

let test_replay_exhausted () =
  fails_closed "exhausted" (entry ~sched:[ "t0" ] ~steps:5 ())

let test_replay_ineligible_channel () =
  (* From a clean init no message is in flight, so delivering 0>1 as the
     first step references an empty channel. *)
  fails_closed "empty channel" (entry ~sched:[ "0>1" ] ())

let test_step_with_out_of_range () =
  let module E = Mdst_sim.Engine.Make (Mdst_core.Proto.Default) in
  let e = E.create ~seed:1 ~init:`Clean (triangle ()) in
  check "out-of-range choice rejected" true
    (try
       ignore (E.step_with e ~choose:(fun options -> Array.length options));
       false
     with Invalid_argument _ -> true)

(* ---------------- entry reproducer format ---------------- *)

let test_entry_print_parse_fixpoint () =
  let lines =
    [
      "variant=default;init=clean;n=3;edges=0-1,0-2,1-2;seed=7;sched=t0,t1,0>1";
      "variant=suppressed;init=random;n=4;ids=3,0,2,1;edges=0-1,1-2,2-3;seed=1;\
       plan=seed=5|corrupt:3-9:1>2:0.5;steps=4;sched=t0,t1,0>1,t2";
      "variant=default;init=legitimate;n=3;edges=0-1,1-2;seed=2;dc=1";
    ]
  in
  List.iter
    (fun line ->
      let once = Fuzz.entry_to_string (Fuzz.entry_of_string line) in
      let twice = Fuzz.entry_to_string (Fuzz.entry_of_string once) in
      Alcotest.(check string) "printing is a fixpoint of parsing" once twice)
    lines;
  let rejects s =
    try
      ignore (Fuzz.entry_of_string s);
      false
    with Invalid_argument _ -> true
  in
  check "empty rejected" true (rejects "");
  check "bad variant rejected" true (rejects "variant=wat;init=clean;n=3;edges=0-1,1-2;seed=1");
  check "bad sched token rejected" true
    (rejects "variant=default;init=clean;n=3;edges=0-1,1-2;seed=1;sched=xyz")

(* ---------------- campaign soundness and trophy replay ---------------- *)

(* No mutant forced: a bounded campaign must produce zero trophies in both
   arms — the oracles never convict the honest automaton. *)
let test_campaign_sound_unmutated () =
  List.iter
    (fun mode ->
      let st =
        Fuzz.campaign ~mode ~quick:true ~budget_s:8. ~max_execs:25
          ~shrink_trophies:false ~seed:42 ()
      in
      check "executions ran" true (st.Fuzz.s_execs > 0);
      check "coverage observed" true (st.Fuzz.s_fine > 0 && st.Fuzz.s_buckets > 0);
      match st.Fuzz.s_trophies with
      | [] -> ()
      | t :: _ ->
          Alcotest.failf "unmutated campaign produced a trophy: %s: %s  [%s]"
            (Fuzz.kind_to_string t.Fuzz.t_kind) t.Fuzz.t_detail
            (Fuzz.entry_to_string t.Fuzz.t_entry))
    [ `Fuzz; `Random_walk ]

(* With a historical bug forced on, the campaign finds a trophy and its
   one-line reproducer replays deterministically to the same verdict. *)
let test_trophy_replays () =
  Fun.protect ~finally:(fun () -> Mutation.force None) @@ fun () ->
  Mutation.force (Some [ "suppression-no-refresh" ]);
  let st =
    Fuzz.campaign ~quick:true ~budget_s:30. ~max_execs:60 ~stop_on_trophy:true
      ~seed:7 ()
  in
  match st.Fuzz.s_trophies with
  | [] -> Alcotest.fail "campaign missed the forced suppression mutant"
  | t :: _ -> (
      let line = Fuzz.entry_to_string t.Fuzz.t_entry in
      match Fuzz.replay (Fuzz.entry_of_string line) with
      | Error (k, _) ->
          Alcotest.(check string) "same trophy kind on replay"
            (Fuzz.kind_to_string t.Fuzz.t_kind) (Fuzz.kind_to_string k)
      | Ok () -> Alcotest.failf "trophy did not reproduce from its line: %s" line)

(* ---------------- committed benchmark anchor ---------------- *)

(* Satellite of the suppression work queued in ROADMAP: pin the committed
   BENCH_proto.json numbers for the dense-graph Suppressed anomaly (ER
   n=1024 takes ~3x the rounds and ~1.6x the messages of the unsuppressed
   run).  The upcoming suppression fix must regenerate the bench and
   consciously move this anchor. *)
let test_bench_proto_suppressed_anchor () =
  let path =
    List.find Sys.file_exists [ "../BENCH_proto.json"; "BENCH_proto.json" ]
  in
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> close_in ic);
  let contains line sub =
    let n = String.length line and m = String.length sub in
    let rec go i = i + m <= n && (String.sub line i m = sub || go (i + 1)) in
    m > 0 && go 0
  in
  let int_field line key =
    let pat = Printf.sprintf "\"%s\": " key in
    let n = String.length line and m = String.length pat in
    let rec find i =
      if i + m > n then Alcotest.failf "field %s not found in %s" key line
      else if String.sub line i m = pat then i + m
      else find (i + 1)
    in
    let start = find 0 in
    let stop = ref start in
    while !stop < n && (match line.[!stop] with '0' .. '9' -> true | _ -> false) do
      incr stop
    done;
    int_of_string (String.sub line start (!stop - start))
  in
  let point ~suppressed =
    let want = Printf.sprintf "\"suppression\": %b" suppressed in
    match
      List.find_opt
        (fun l ->
          contains l "\"topology\": \"er\"" && contains l "\"n\": 1024"
          && contains l want)
        !lines
    with
    | Some l -> l
    | None -> Alcotest.failf "no er/1024/suppression=%b point in BENCH_proto.json" suppressed
  in
  let supp = point ~suppressed:true and base = point ~suppressed:false in
  Alcotest.(check int) "suppressed rounds pinned" 2066 (int_field supp "rounds");
  Alcotest.(check int) "suppressed messages pinned" 42388633 (int_field supp "messages");
  Alcotest.(check int) "unsuppressed rounds pinned" 728 (int_field base "rounds");
  Alcotest.(check int) "unsuppressed messages pinned" 25877960 (int_field base "messages");
  (* The anomaly itself: suppression is supposed to cut traffic, but on
     dense ER graphs it currently inflates both rounds and messages. *)
  check "anomaly present: suppression costs messages" true
    (int_field supp "messages" > int_field base "messages");
  check "anomaly present: suppression costs rounds" true
    (int_field supp "rounds" > int_field base "rounds")

let () =
  Alcotest.run "fuzz"
    [
      ( "shrink",
        [
          Alcotest.test_case "strictness contract" `Quick test_shrink_strictness;
          Alcotest.test_case "idempotent on the PR-4 race reproducer" `Quick
            test_shrink_idempotent_on_race;
        ] );
      ( "replay",
        [
          Alcotest.test_case "empty schedule fails closed" `Quick test_replay_empty_schedule;
          Alcotest.test_case "exhausted schedule fails closed" `Quick test_replay_exhausted;
          Alcotest.test_case "ineligible channel fails closed" `Quick
            test_replay_ineligible_channel;
          Alcotest.test_case "step_with rejects out-of-range" `Quick
            test_step_with_out_of_range;
          Alcotest.test_case "entry print/parse fixpoint" `Quick test_entry_print_parse_fixpoint;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "sound on the unmutated automaton" `Quick
            test_campaign_sound_unmutated;
          Alcotest.test_case "trophy replays deterministically" `Quick test_trophy_replays;
        ] );
      ( "bench",
        [
          Alcotest.test_case "suppressed ER-1024 anchor" `Quick
            test_bench_proto_suppressed_anchor;
        ] );
    ]

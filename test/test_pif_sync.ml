(* Tests for the two auxiliary execution substrates added on top of the
   core reproduction: the standalone PIF wave protocol (the paper's cited
   substrate [16,17] for max-degree computation) and the synchronous
   lockstep engine (daemon-independence, experiment E12). *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Tree = Mdst_graph.Tree
module Algo = Mdst_graph.Algo
module Prng = Mdst_util.Prng
module Pif = Mdst_core.Pif

let check = Alcotest.(check bool)

(* ---------------- PIF over a fixed tree ---------------- *)

(* Build a PIF instance over the BFS tree of [graph] aggregating the given
   per-node values with max. *)
let make_pif_modules graph values =
  let tree = Algo.bfs_tree graph ~root:(Graph.min_id_node graph) in
  let module I = struct
    let parent_of id =
      let v = Graph.index_of_id graph id in
      let p = Tree.parent tree v in
      Graph.id graph p

    let value_of id = values.(Graph.index_of_id graph id)

    let combine = max

    let neutral = min_int
  end in
  (module I : Pif.INPUT)

let run_pif ?(init = `Clean) ?(max_rounds = 4000) graph values =
  let input = make_pif_modules graph values in
  let module I = (val input) in
  let module A = Pif.Make (I) in
  let module E = Mdst_sim.Engine.Make (A) in
  let engine = E.create ~seed:7 ~init graph in
  let root = Graph.min_id_node graph in
  let expected = Array.fold_left max min_int values in
  let stop t = (E.state t root).Pif.result = Some expected in
  let outcome = E.run engine ~max_rounds ~stop () in
  (outcome.converged, E.state engine root)

let test_pif_computes_max () =
  let graph = Gen.grid ~rows:3 ~cols:4 in
  let values = Array.init 12 (fun i -> (i * 7) mod 23) in
  let converged, _ = run_pif graph values in
  check "root learns the max" true converged

let test_pif_on_path_and_star () =
  List.iter
    (fun graph ->
      let n = Graph.n graph in
      let values = Array.init n (fun i -> 100 - i) in
      let converged, _ = run_pif graph values in
      check "pif converges" true converged)
    [ Gen.path 9; Gen.star 9; Gen.ring 9 ]

let test_pif_single_node_value () =
  (* The max sits at a deep leaf: the feedback phase must carry it up. *)
  let graph = Gen.path 10 in
  let values = Array.make 10 1 in
  values.(9) <- 77;
  let converged, st = run_pif graph values in
  check "leaf value reaches root" true converged;
  Alcotest.(check (option int)) "result" (Some 77) st.Pif.result

let test_pif_self_stabilizes () =
  (* Arbitrary initial states and garbage in flight: waves flush it. *)
  let graph = Gen.grid ~rows:3 ~cols:3 in
  let values = Array.init 9 (fun i -> i * 3) in
  let converged, _ = run_pif ~init:`Random ~max_rounds:8000 graph values in
  check "recovers from corruption" true converged

let test_pif_repeated_waves_stay_correct () =
  (* After first completion, later waves must keep reporting the same max
     (closure). *)
  let graph = Gen.ring 8 in
  let values = Array.init 8 (fun i -> i) in
  let input = make_pif_modules graph values in
  let module I = (val input) in
  let module A = Pif.Make (I) in
  let module E = Mdst_sim.Engine.Make (A) in
  let engine = E.create ~seed:3 graph in
  let root = Graph.min_id_node graph in
  let stop t = (E.state t root).Pif.result = Some 7 in
  let o = E.run engine ~max_rounds:4000 ~stop () in
  check "first completion" true o.converged;
  for _ = 1 to 20_000 do
    ignore (E.step engine)
  done;
  Alcotest.(check (option int)) "still correct many waves later" (Some 7)
    (E.state engine root).Pif.result

let prop_pif_random_trees =
  QCheck.Test.make ~name:"pif computes max over random trees and values" ~count:25
    QCheck.(pair small_int (int_range 4 16))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.3 in
      let values = Array.init n (fun _ -> Prng.int rng 1000) in
      let converged, _ = run_pif ~max_rounds:6000 g values in
      converged)

(* ---------------- Synchronous engine ---------------- *)

module SyncFlood = Mdst_sim.Sync_engine.Make (struct
  type state = int list (* received values *)

  type msg = int

  let name = "sync-flood"

  let init _ = []

  let random_state _ rng = [ Mdst_util.Prng.int rng 10 ]

  let random_msg _ rng = Some (Mdst_util.Prng.int rng 10)

  let on_tick ctx st =
    Array.iter (fun nb -> ctx.Mdst_sim.Node.send nb ctx.Mdst_sim.Node.id) ctx.Mdst_sim.Node.neighbors;
    st

  let on_message _ st ~src:_ v = v :: st

  let msg_label _ = "m"

  let msg_bits ~n:_ _ = 4

  let state_bits ~n:_ st = 4 * List.length st
end)

let test_sync_lockstep_delivery () =
  let g = Gen.ring 4 in
  let e = SyncFlood.create ~seed:1 g in
  SyncFlood.round e;
  (* Round 1: everyone ticked and sent; nothing delivered yet. *)
  Array.iter (fun st -> Alcotest.(check int) "no deliveries in round 1" 0 (List.length st))
    (SyncFlood.states e);
  SyncFlood.round e;
  (* Round 2: the round-1 messages arrive — exactly 2 per ring node. *)
  Array.iter (fun st -> Alcotest.(check int) "2 deliveries in round 2" 2 (List.length st))
    (SyncFlood.states e);
  Alcotest.(check int) "round counter" 2 (SyncFlood.rounds e)

let test_sync_deterministic () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let run () =
    let e = SyncFlood.create ~seed:5 g in
    for _ = 1 to 50 do
      SyncFlood.round e
    done;
    Array.to_list (SyncFlood.states e)
  in
  check "deterministic" true (run () = run ())

let test_sync_corrupt_and_set () =
  let g = Gen.ring 6 in
  let e = SyncFlood.create ~seed:5 g in
  let hit = SyncFlood.corrupt e ~fraction:0.5 () in
  check "some corrupted" true (hit = 3);
  SyncFlood.set_state e 0 [ 9; 9 ];
  Alcotest.(check int) "set_state" 2 (List.length (SyncFlood.state e 0))

let test_sync_rejects_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "rejects disconnected" true
    (try
       ignore (SyncFlood.create g);
       false
     with Invalid_argument _ -> true)

(* ---------------- Protocol under the synchronous daemon ---------------- *)

let fixpoint t = not (Mdst_baseline.Fr.improvable t)

let test_sync_protocol_converges () =
  List.iter
    (fun (name, graph, bound) ->
      let r = Mdst_core.Sync_run.converge ~seed:4 ~init:`Random ~fixpoint graph in
      check (name ^ " converged") true r.converged;
      match r.degree with
      | Some d -> check (name ^ " within bound") true (d <= bound)
      | None -> Alcotest.fail (name ^ ": no tree"))
    [
      ("ring-10", Gen.ring 10, 2);
      ("grid-3x4", Gen.grid ~rows:3 ~cols:4, 3);
      ("wheel-10", Gen.wheel 10, 3);
      ("er-12", Gen.erdos_renyi_connected (Prng.create 3) ~n:12 ~p:0.3, 4);
    ]

let test_sync_async_same_guarantee () =
  (* Differential: both daemons land in [Delta*, Delta*+1]. *)
  List.iter
    (fun seed ->
      let g = Gen.erdos_renyi_connected (Prng.create (seed * 5)) ~n:10 ~p:0.35 in
      let optimum =
        match Mdst_baseline.Exact.solve g with Some e -> e.optimum | None -> Alcotest.fail "exact"
      in
      let a = Mdst_core.Run.converge ~seed ~init:`Random ~fixpoint g in
      let s = Mdst_core.Sync_run.converge ~seed ~init:`Random ~fixpoint g in
      (match a.degree with
      | Some d -> check "async within band" true (d <= optimum + 1)
      | None -> Alcotest.fail "async no tree");
      match s.degree with
      | Some d -> check "sync within band" true (d <= optimum + 1)
      | None -> Alcotest.fail "sync no tree")
    [ 1; 2; 3 ]

let test_sync_protocol_from_tree () =
  let g = Gen.deblock_gadget () in
  let _, parents = Gen.deblock_gadget_tree g in
  let t0 = Tree.of_parents g ~root:0 parents in
  let r = Mdst_core.Sync_run.converge ~seed:2 ~init:(`Tree t0) ~fixpoint g in
  check "gadget resolves under sync daemon too" true r.converged;
  Alcotest.(check (option int)) "degree 3" (Some 3) r.degree

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "pif-sync"
    [
      ( "pif",
        [
          q prop_pif_random_trees;
          Alcotest.test_case "computes max" `Quick test_pif_computes_max;
          Alcotest.test_case "path/star/ring" `Quick test_pif_on_path_and_star;
          Alcotest.test_case "deep leaf value" `Quick test_pif_single_node_value;
          Alcotest.test_case "self-stabilizes" `Quick test_pif_self_stabilizes;
          Alcotest.test_case "closure over many waves" `Quick test_pif_repeated_waves_stay_correct;
        ] );
      ( "sync-engine",
        [
          Alcotest.test_case "lockstep delivery" `Quick test_sync_lockstep_delivery;
          Alcotest.test_case "deterministic" `Quick test_sync_deterministic;
          Alcotest.test_case "corrupt/set_state" `Quick test_sync_corrupt_and_set;
          Alcotest.test_case "rejects disconnected" `Quick test_sync_rejects_disconnected;
        ] );
      ( "sync-protocol",
        [
          Alcotest.test_case "converges on families" `Quick test_sync_protocol_converges;
          Alcotest.test_case "same guarantee as async" `Slow test_sync_async_same_guarantee;
          Alcotest.test_case "deblock gadget" `Quick test_sync_protocol_from_tree;
        ] );
    ]

(* Golden step-trace tests: three fixed-seed clean-start executions of the
   real protocol, one projection line per event, committed under
   test/golden/.  Each run also steps the reference model in lockstep, so a
   trace mismatch localizes to either a protocol change (model diverges at
   the same event) or an engine schedule change (model agrees, golden
   differs).  Regenerate after an intentional change with

     MDST_GOLDEN_UPDATE=test/golden dune exec test/test_model.exe *)

module Graph = Mdst_graph.Graph
module Model = Mdst_model.Model
module Projection = Mdst_core.Projection
module E = Mdst_sim.Engine.Make (Mdst_core.Proto.Default)

type fixture = { fname : string; graph : Graph.t; seed : int; events : int }

let star n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))
let path n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let fixtures =
  [
    { fname = "k4"; graph = Graph.complete 4; seed = 7; events = 200 };
    { fname = "star6"; graph = star 6; seed = 11; events = 240 };
    { fname = "path5"; graph = path 5; seed = 13; events = 200 };
  ]

(* One line per event: "<event> <projection>", both round-trippable
   ([Model.event_of_string], [Projection.of_string]). *)
let trace_lines fx =
  let engine = E.create ~seed:fx.seed ~init:`Clean fx.graph in
  let model =
    ref
      (Model.make ~params:Model.default ~states:(E.states engine)
         ~in_flight:(E.in_flight engine) fx.graph)
  in
  let pending = ref None in
  E.observe engine (function
    | Mdst_sim.Engine.Obs_tick { node; _ } -> pending := Some (Model.Tick node)
    | Obs_deliver { src; dst; _ } -> pending := Some (Model.Deliver { src; dst })
    | Obs_fault _ -> ());
  let lines = ref [] in
  for i = 1 to fx.events do
    if not (E.step engine) then Alcotest.failf "%s: engine ran dry" fx.fname;
    let ev =
      match !pending with
      | Some e -> e
      | None -> Alcotest.failf "%s: step %d produced no observation" fx.fname i
    in
    pending := None;
    model := Model.step !model ev;
    let real = Projection.of_states (E.states engine) in
    let mdl = Projection.of_states (!model).Model.nodes in
    if not (Projection.equal real mdl) then
      Alcotest.failf "%s: reference model diverged at event %d (%s): %s"
        fx.fname i
        (Model.event_to_string ev)
        (String.concat "; "
           (List.map
              (fun (v, d) -> Printf.sprintf "node %d: %s" v d)
              (Projection.diff real mdl)));
    lines := (Model.event_to_string ev ^ " " ^ Projection.to_string real) :: !lines
  done;
  List.rev !lines

let golden_path fx = Filename.concat "golden" (fx.fname ^ ".trace")

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let test_golden fx () =
  let fresh = trace_lines fx in
  let golden =
    try read_lines (golden_path fx)
    with Sys_error _ ->
      Alcotest.failf
        "%s missing — regenerate with MDST_GOLDEN_UPDATE=test/golden dune \
         exec test/test_model.exe"
        (golden_path fx)
  in
  if List.length golden <> List.length fresh then
    Alcotest.failf "%s: %d golden lines, %d fresh" fx.fname
      (List.length golden) (List.length fresh);
  List.iteri
    (fun i (g, f) ->
      if g <> f then
        Alcotest.failf "%s: first mismatch at event %d\n  golden: %s\n  fresh:  %s"
          fx.fname (i + 1) g f)
    (List.combine golden fresh)

(* The committed traces must stay parseable — they are documentation of the
   reproducer vocabulary as much as regression pins. *)
let test_roundtrip fx () =
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | None -> Alcotest.failf "%s: malformed line %S" fx.fname line
      | Some i ->
          let ev = String.sub line 0 i in
          let proj = String.sub line (i + 1) (String.length line - i - 1) in
          let ev' = Model.event_to_string (Model.event_of_string ev) in
          Alcotest.(check string) "event round-trip" ev ev';
          let proj' = Projection.to_string (Projection.of_string proj) in
          Alcotest.(check string) "projection round-trip" proj proj')
    (read_lines (golden_path fx))

let update_goldens dir =
  List.iter
    (fun fx ->
      let path = Filename.concat dir (fx.fname ^ ".trace") in
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) (trace_lines fx);
      close_out oc;
      Printf.printf "wrote %s (%d events)\n" path fx.events)
    fixtures

let () =
  match Sys.getenv_opt "MDST_GOLDEN_UPDATE" with
  | Some dir -> update_goldens dir
  | None ->
      Alcotest.run "model"
        [
          ( "golden-traces",
            List.map
              (fun fx ->
                Alcotest.test_case (fx.fname ^ " matches golden") `Quick
                  (test_golden fx))
              fixtures );
          ( "golden-roundtrip",
            List.map
              (fun fx ->
                Alcotest.test_case (fx.fname ^ " lines parse") `Quick
                  (test_roundtrip fx))
              fixtures );
        ]

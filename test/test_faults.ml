(* The fault-injection layer: engine semantics under a toy automaton,
   exact-replay regressions for the real protocol, and the acceptance
   self-check that the PBT harness catches a deliberately broken variant. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Node = Mdst_sim.Node
module Fault = Mdst_sim.Fault
module Latency = Mdst_sim.Latency
module Prng = Mdst_util.Prng

let check = Alcotest.(check bool)

(* ---------------- toy automaton ----------------

   Every tick each node sends a per-node strictly increasing counter to all
   neighbours, so FIFO delivery is observable as monotonicity.  [boots]
   marks how the state was (re)installed and [random_msg] returns a marker
   value, so crash-restart and corruption are observable too. *)

let corrupt_marker = 424242

module Count = struct
  type state = { boots : int; sent : int; from : (int * int) list (* src, value; newest first *) }

  type msg = int

  let name = "count"

  let init _ = { boots = 0; sent = 0; from = [] }

  let random_state _ _ = { boots = 999; sent = 0; from = [] }

  let random_msg _ _ = Some corrupt_marker

  let on_tick ctx st =
    Array.iter (fun nb -> ctx.Node.send nb st.sent) ctx.Node.neighbors;
    { st with sent = st.sent + 1 }

  let on_message _ st ~src v = { st with from = (src, v) :: st.from }

  let msg_label v = if v = corrupt_marker then "corrupt" else "ping"

  let msg_bits ~n:_ _ = 8

  let state_bits ~n:_ _ = 8
end

module E = Mdst_sim.Engine.Make (Count)

(* A mute automaton: the only traffic is what the test injects, so delivery
   counts and arrival times can be asserted exactly. *)
module Silent = struct
  type state = (int * float) list (* value, arrival time; newest first *)

  type msg = int

  let name = "silent"

  let init _ = []

  let random_state _ _ = []

  let random_msg _ _ = None

  let on_tick _ st = st

  let on_message ctx st ~src:_ v = (v, ctx.Node.now ()) :: st

  let msg_label _ = "m"

  let msg_bits ~n:_ _ = 8

  let state_bits ~n:_ _ = 8
end

module S = Mdst_sim.Engine.Make (Silent)

let path3 () = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ]

let run_with ?(graph = path3 ()) ?(init = `Clean) ?(rounds = 60) plan =
  let e = E.create ~seed:17 ~init graph in
  E.install_faults e (Fault.of_string plan);
  ignore (E.run e ~max_rounds:rounds ~check_every:1 ~stop:(fun _ -> false) ());
  e

(* Arrival order (oldest first) of the values [dst] received from [src]. *)
let received e ~src ~dst =
  List.rev
    (List.filter_map
       (fun (s, v) -> if s = src then Some v else None)
       (E.state e dst).Count.from)

let rec strictly_increasing = function
  | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
  | _ -> true

(* ---------------- channel faults ---------------- *)

let test_drop_everything () =
  let e = run_with "seed=1|drop:0-100000:0>1:1" in
  Alcotest.(check (list int)) "channel 0>1 silenced" [] (received e ~src:0 ~dst:1);
  check "reverse channel alive" true (received e ~src:1 ~dst:0 <> []);
  check "other channel alive" true (received e ~src:2 ~dst:1 <> []);
  check "drops counted" true ((E.fault_stats e).Fault.drops > 0)

let test_drop_window_closes () =
  let e = run_with "seed=1|drop:0-10:0>1:1" in
  let vals = received e ~src:0 ~dst:1 in
  check "traffic resumes after the window" true (vals <> []);
  check "earliest values lost inside the window" false (List.mem 0 vals)

let test_duplicate () =
  let base = run_with "seed=1" in
  let e = run_with "seed=1|dup:0-100000:0>1:1:2" in
  let vals = received e ~src:0 ~dst:1 in
  check "more deliveries than the fault-free run" true
    (List.length vals > List.length (received base ~src:0 ~dst:1));
  check "some value delivered at least twice" true
    (List.length vals > List.length (List.sort_uniq compare vals));
  check "duplicates counted" true ((E.fault_stats e).Fault.duplicates > 0)

let test_duplicate_exact_copies () =
  (* [copies = k] means exactly k EXTRA deliveries: the original plus k
     duplicates, pinned here with a mute automaton so nothing else rides
     the channel (documented in fault.mli). *)
  let e = S.create ~seed:17 (path3 ()) in
  S.install_faults e (Fault.of_string "seed=1|dup:0-100000:0>1:1:2");
  S.inject e ~src:0 ~dst:1 777;
  S.inject e ~src:0 ~dst:1 888;
  ignore (S.run e ~max_rounds:30 ~check_every:1 ~stop:(fun _ -> false) ());
  let got = List.map fst (S.state e 1) in
  let count v = List.length (List.filter (( = ) v) got) in
  Alcotest.(check int) "first send: copies+1 deliveries" 3 (count 777);
  Alcotest.(check int) "second send: copies+1 deliveries" 3 (count 888);
  Alcotest.(check int) "total deliveries" 6 (List.length got);
  Alcotest.(check int) "one dup event per tampered send" 2 (S.fault_stats e).Fault.duplicates

let test_corrupt () =
  let e = run_with "seed=1|corrupt:0-100000:0>1:1" in
  let vals = received e ~src:0 ~dst:1 in
  check "payloads replaced by random_msg" true
    (vals <> [] && List.for_all (fun v -> v = corrupt_marker) vals);
  check "other channel untouched" true
    (List.for_all (fun v -> v <> corrupt_marker) (received e ~src:2 ~dst:1));
  check "corruptions counted" true ((E.fault_stats e).Fault.corruptions > 0)

let test_corrupt_channels_same_schedule () =
  (* Regression: [corrupt ~channels:true] used to draw its injected
     payloads and their latencies from the engine's own PRNG, shifting
     every later tick/latency draw.  Each victim now owns a split stream,
     so the post-corruption schedule of ORGANIC traffic is identical
     whether or not channel corruption was requested. *)
  let run channels =
    let e = E.create ~seed:33 (Gen.ring 8) in
    ignore (E.run e ~max_rounds:20 ~check_every:1 ~stop:(fun _ -> false) ());
    let nvictims = E.corrupt e ~fraction:0.25 ~channels () in
    let sched = ref [] in
    E.observe e (function
      | Mdst_sim.Engine.Obs_deliver { src; dst; label = "ping"; time; _ } ->
          sched := (src, dst, time) :: !sched
      | _ -> ());
    ignore (E.run e ~max_rounds:60 ~check_every:1 ~stop:(fun _ -> false) ());
    let victims =
      List.filteri (fun i _ -> (E.state e i).Count.boots = 999)
        (List.init (Graph.n (E.graph e)) Fun.id)
    in
    (nvictims, victims, List.rev !sched)
  in
  let n_a, v_a, sched_a = run false in
  let n_b, v_b, sched_b = run true in
  Alcotest.(check int) "same victim count" n_a n_b;
  check "same victims" true (v_a = v_b);
  check "victims exist" true (v_a <> []);
  check "post-corruption organic schedule identical" true (sched_a = sched_b)

let test_fault_detail_formatting () =
  (* Fault observations are built lazily on the hot path; pin that the
     rendered labels did not change shape. *)
  let e = E.create ~seed:17 (path3 ()) in
  E.install_faults e (Fault.of_string "seed=1|dup:0-100000:0>1:1:2|crash:5:2:init");
  let seen = ref [] in
  E.observe e (function
    | Mdst_sim.Engine.Obs_fault { kind; detail; _ } -> seen := (kind, detail) :: !seen
    | _ -> ());
  ignore (E.run e ~max_rounds:20 ~check_every:1 ~stop:(fun _ -> false) ());
  check "dup detail names channel and copies" true (List.mem ("dup", "0>1 x2") !seen);
  check "crash detail names node and mode" true (List.mem ("crash", "2 init") !seen)

let test_reorder_breaks_fifo () =
  let e = run_with ~rounds:200 "seed=1|reorder:0-100000:0>1:0.5:8" in
  check "reorders counted" true ((E.fault_stats e).Fault.reorders > 0);
  check "FIFO violated on the tampered channel" false
    (strictly_increasing (received e ~src:0 ~dst:1));
  check "FIFO intact elsewhere" true (strictly_increasing (received e ~src:2 ~dst:1))

(* ---------------- scheduled faults ---------------- *)

let test_crash_reinit () =
  let e = run_with ~init:`Random "seed=1|crash:5:1:init" in
  Alcotest.(check int) "crashed node rebooted via init" 0 (E.state e 1).Count.boots;
  Alcotest.(check int) "other nodes keep their adversarial state" 999 (E.state e 0).Count.boots;
  Alcotest.(check int) "one crash" 1 (E.fault_stats e).Fault.crashes

let test_cut_edge () =
  let e = run_with ~graph:(Gen.ring 4) "seed=1|cut:3:0-1" in
  check "edge removed" false (Graph.mem_edge (E.graph e) 0 1);
  check "still connected" true (Mdst_graph.Algo.is_connected (E.graph e));
  Alcotest.(check int) "one cut" 1 (E.fault_stats e).Fault.cuts

let test_cut_bridge_skipped () =
  let e = run_with "seed=1|cut:3:0-1" in
  check "bridge survives" true (Graph.mem_edge (E.graph e) 0 1);
  Alcotest.(check int) "no cut" 0 (E.fault_stats e).Fault.cuts;
  Alcotest.(check int) "skip recorded" 1 (E.fault_stats e).Fault.skipped

let test_link_edge () =
  let e = run_with "seed=1|link:3:0-2" in
  check "edge added" true (Graph.mem_edge (E.graph e) 0 2);
  check "new channel carries traffic" true (received e ~src:2 ~dst:0 <> []);
  Alcotest.(check int) "one link" 1 (E.fault_stats e).Fault.links

let test_link_existing_skipped () =
  let e = run_with "seed=1|link:3:0-1" in
  Alcotest.(check int) "no link" 0 (E.fault_stats e).Fault.links;
  Alcotest.(check int) "skip recorded" 1 (E.fault_stats e).Fault.skipped

(* ---------------- observations, determinism, drift ---------------- *)

let test_fault_observations () =
  let graph = Gen.ring 4 in
  let e = E.create ~seed:17 graph in
  E.install_faults e (Fault.of_string "seed=1|drop:0-40:0>1:1|crash:5:2:init|cut:3:0-1|link:3:0-2|link:4:0-2");
  let seen = ref 0 in
  E.observe e (function Mdst_sim.Engine.Obs_fault _ -> incr seen | _ -> ());
  ignore (E.run e ~max_rounds:60 ~check_every:1 ~stop:(fun _ -> false) ());
  let s = E.fault_stats e in
  Alcotest.(check int) "every fault action observed (skips included)"
    (Fault.total s + s.Fault.skipped) !seen;
  Alcotest.(check int) "second link skipped" 1 s.Fault.skipped

let test_fault_determinism () =
  let snapshot () =
    let e = run_with ~graph:(Gen.ring 5) ~rounds:120 "seed=9|drop:0-50:0>1:0.5|crash:30:2:random|cut:10:0-1" in
    Array.to_list (Array.map (fun (s : Count.state) -> s.Count.from) (E.states e))
  in
  check "same plan + seed, same execution" true (snapshot () = snapshot ())

let test_empty_plan_no_drift () =
  (* Installing a plan must not touch the engine's own PRNG: a plan whose
     window never opens leaves the execution byte-identical. *)
  let snapshot plan =
    let e = E.create ~seed:23 ~init:`Random (Gen.ring 5) in
    Option.iter (fun p -> E.install_faults e (Fault.of_string p)) plan;
    ignore (E.run e ~max_rounds:80 ~check_every:1 ~stop:(fun _ -> false) ());
    Array.to_list (Array.map (fun (s : Count.state) -> s.Count.from) (E.states e))
  in
  check "no plan vs empty plan" true (snapshot None = snapshot (Some "seed=5"));
  check "no plan vs never-active plan" true
    (snapshot None = snapshot (Some "seed=5|drop:500000-500001:0>1:1"))

(* ---------------- ad-hoc primitives ---------------- *)

let test_purge_channel () =
  let e = E.create ~seed:3 (path3 ()) in
  E.inject e ~src:0 ~dst:1 7;
  E.inject e ~src:0 ~dst:1 8;
  E.inject e ~src:1 ~dst:2 9;
  Alcotest.(check int) "purged the ordered channel only" 2 (E.purge_channel e ~src:0 ~dst:1);
  Alcotest.(check int) "idempotent" 0 (E.purge_channel e ~src:0 ~dst:1);
  Alcotest.(check int) "other channel intact" 1 (E.purge_channel e ~src:1 ~dst:2)

let test_purge_keeps_fifo_floor () =
  (* Pinned semantics (fault.mli, engine.mli): purging a channel KEEPS its
     FIFO floor, so later traffic still arrives strictly after the lost
     messages would have.  With constant latency 5.0 the purged message
     fixed the floor at 5.0; the next send's raw arrival is also 5.0 and
     must be nudged strictly past it. *)
  let e = S.create ~latency:(Latency.constant 5.0) ~seed:3 (path3 ()) in
  S.inject e ~src:0 ~dst:1 7;
  Alcotest.(check int) "one message purged" 1 (S.purge_channel e ~src:0 ~dst:1);
  S.inject e ~src:0 ~dst:1 8;
  ignore (S.run e ~max_rounds:10 ~check_every:1 ~stop:(fun _ -> false) ());
  match S.state e 1 with
  | [ (v, at) ] ->
      Alcotest.(check int) "only the second message arrives" 8 v;
      check "arrival strictly after the purged message's floor" true (at > 5.0);
      check "nudged by epsilon, not rescheduled" true (at < 5.001)
  | got -> Alcotest.failf "expected exactly one delivery, got %d" (List.length got)

let test_reset_node () =
  let e = E.create ~seed:3 (path3 ()) in
  E.reset_node e `Random 1;
  Alcotest.(check int) "random_state installed" 999 (E.state e 1).Count.boots;
  E.reset_node e `Init 1;
  Alcotest.(check int) "init reinstalled" 0 (E.state e 1).Count.boots

let test_reshape () =
  let e = E.create ~seed:3 (path3 ()) in
  ignore (E.run e ~max_rounds:10 ~check_every:1 ~stop:(fun _ -> false) ());
  E.reshape e (Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ]);
  check "triangle installed" true (Graph.mem_edge (E.graph e) 0 2);
  ignore (E.run e ~max_rounds:30 ~check_every:1 ~stop:(fun _ -> false) ());
  check "new channel live after reshape" true (received e ~src:2 ~dst:0 <> []);
  Alcotest.check_raises "node-count mismatch rejected"
    (Invalid_argument "Engine.reshape: node count must be preserved") (fun () ->
      E.reshape e (Gen.ring 4));
  Alcotest.check_raises "disconnected replacement rejected"
    (Invalid_argument "Engine.reshape: graph must stay connected") (fun () ->
      E.reshape e (Graph.of_edges ~n:3 [ (0, 1) ]))

(* ---------------- exact-replay regression matrix ----------------

   Pinned end-to-end outcomes for the real protocol under fixed
   (topology, plan, seed) triples.  Any change to the engine's event
   ordering, the fault interpreter or the protocol shifts these numbers —
   that is the point: fault executions must replay bit-identically. *)

module C = Mdst_check.Convergence

let matrix =
  [
    ( "ring8 drop+crash",
      "n=8;edges=0-1,1-2,2-3,3-4,4-5,5-6,6-7,0-7;seed=5;plan=seed=2|drop:0-80:0>1:0.5|crash:60:3:random",
      (* rounds, degree, drops+corruptions+cuts, crashes+reorders+links *)
      (124, 2, 46, 1) );
    ( "petersen cut+link",
      "n=10;edges=0-1,1-2,2-3,3-4,0-4,0-5,1-6,2-7,3-8,4-9,5-7,7-9,9-6,6-8,8-5;seed=9;plan=seed=4|cut:40:0-1|link:90:0-2",
      (284, 2, 1, 1) );
    ( "grid9 corrupt+reorder",
      "n=9;edges=0-1,1-2,3-4,4-5,6-7,7-8,0-3,3-6,1-4,4-7,2-5,5-8;seed=13;plan=seed=8|corrupt:0-60:4>1:0.75|reorder:0-120:1>4:0.5:6",
      (174, 2, 56, 111) );
  ]

let test_fault_matrix () =
  List.iter
    (fun (label, case_line, (rounds, degree, a, b)) ->
      let r = C.Default.run_case (C.case_of_string case_line) in
      check (label ^ ": converged") true r.C.converged;
      check (label ^ ": closure") true r.C.closure_ok;
      Alcotest.(check int) (label ^ ": exact rounds") rounds r.C.rounds;
      Alcotest.(check (option int)) (label ^ ": exact degree") (Some degree) r.C.degree;
      Alcotest.(check int) (label ^ ": fault count a") a
        (r.C.stats.Fault.drops + r.C.stats.Fault.corruptions + r.C.stats.Fault.cuts);
      Alcotest.(check int) (label ^ ": fault count b") b
        (r.C.stats.Fault.crashes + r.C.stats.Fault.reorders + r.C.stats.Fault.links))
    matrix

(* ---------------- acceptance: the harness catches a broken variant ---- *)

let small_budget = { C.settle_rounds = 1500; per_node_rounds = 150; closure_rounds = 60 }

let test_broken_variant_caught () =
  let module P = Mdst_check.Property in
  let property =
    C.Broken.property ~budget:small_budget ~min_n:4 ~max_n:10 ~max_events:5 ~horizon:300 ()
  in
  match P.check ~tests:20 ~seed:7 property with
  | P.Passed _ -> Alcotest.fail "grant-dropping variant must be falsified"
  | P.Falsified c ->
      let case = C.case_of_string c.P.printed in
      check "shrunk to at most 8 nodes" true (Graph.n case.C.graph <= 8);
      check "shrunk to at most 5 fault events" true
        (List.length case.C.plan.Fault.events <= 5);
      (* The printed reproducer replays to the same verdict from its seed. *)
      (match C.Broken.prop ~budget:small_budget () case with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "reproducer did not replay the failure");
      (* The real protocol is fine on the very same case. *)
      match C.Default.prop ~budget:small_budget () case with
      | Ok () -> ()
      | Error reason -> Alcotest.fail ("real protocol failed the shrunk case: " ^ reason)

let test_honest_protocol_passes () =
  let module P = Mdst_check.Property in
  let property = C.Default.property ~min_n:4 ~max_n:9 ~max_events:4 ~horizon:250 () in
  match P.check ~tests:15 ~seed:7 property with
  | P.Passed _ -> ()
  | P.Falsified c -> Alcotest.fail (P.render ~name:property.P.name c)

let () =
  Alcotest.run "faults"
    [
      ( "channel",
        [
          Alcotest.test_case "drop everything" `Quick test_drop_everything;
          Alcotest.test_case "drop window closes" `Quick test_drop_window_closes;
          Alcotest.test_case "duplicate" `Quick test_duplicate;
          Alcotest.test_case "duplicate exact copies" `Quick test_duplicate_exact_copies;
          Alcotest.test_case "corrupt" `Quick test_corrupt;
          Alcotest.test_case "corrupt channels same schedule" `Quick test_corrupt_channels_same_schedule;
          Alcotest.test_case "fault detail formatting" `Quick test_fault_detail_formatting;
          Alcotest.test_case "reorder breaks fifo" `Quick test_reorder_breaks_fifo;
        ] );
      ( "scheduled",
        [
          Alcotest.test_case "crash reinit" `Quick test_crash_reinit;
          Alcotest.test_case "cut edge" `Quick test_cut_edge;
          Alcotest.test_case "cut bridge skipped" `Quick test_cut_bridge_skipped;
          Alcotest.test_case "link edge" `Quick test_link_edge;
          Alcotest.test_case "link existing skipped" `Quick test_link_existing_skipped;
        ] );
      ( "engine",
        [
          Alcotest.test_case "fault observations" `Quick test_fault_observations;
          Alcotest.test_case "determinism" `Quick test_fault_determinism;
          Alcotest.test_case "empty plan no drift" `Quick test_empty_plan_no_drift;
          Alcotest.test_case "purge channel" `Quick test_purge_channel;
          Alcotest.test_case "purge keeps fifo floor" `Quick test_purge_keeps_fifo_floor;
          Alcotest.test_case "reset node" `Quick test_reset_node;
          Alcotest.test_case "reshape" `Quick test_reshape;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "exact-replay fault matrix" `Quick test_fault_matrix;
          Alcotest.test_case "broken variant caught + shrunk" `Slow test_broken_variant_caught;
          Alcotest.test_case "honest protocol passes" `Slow test_honest_protocol_passes;
        ] );
    ]

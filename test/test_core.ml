(* Tests for the protocol library: message metering, local state and
   predicates, the global checker, and end-to-end behaviour of each paper
   module (spanning tree, max degree, cycle search, reduction, deblock) on
   purpose-built topologies. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Tree = Mdst_graph.Tree
module Prng = Mdst_util.Prng
module Intset = Mdst_util.Intset
module Node = Mdst_sim.Node
module State = Mdst_core.State
module Msg = Mdst_core.Msg
module Checker = Mdst_core.Checker
module Run = Mdst_core.Run

let check = Alcotest.(check bool)

let fixpoint t = not (Mdst_baseline.Fr.improvable t)

(* A fabricated ctx for unit-testing State in isolation. *)
let make_ctx ?(n = 8) ~id ~neighbor_ids () =
  {
    Node.node = id;
    id;
    n;
    neighbors = Array.of_list (List.map (fun x -> x) neighbor_ids);
    neighbor_ids = Array.of_list neighbor_ids;
    send = (fun _ _ -> ());
    note_suppressed = (fun _ -> ());
    rng = Prng.create 1;
    now = (fun () -> 0.0);
  }

(* ---------------- Msg ---------------- *)

let test_msg_labels () =
  let entry = { Msg.e_id = 1; e_deg = 2; e_dist = 3 } in
  let cases =
    [
      ( Msg.Info
          {
            i_root = 0; i_parent = 0; i_dist = 0; i_deg = 1; i_dmax = 2; i_color = false;
            i_subtree_max = 1;
          },
        "info" );
      (Msg.Search { s_edge = (0, 1); s_idblock = None; s_stack = [ entry ]; s_visited = Intset.singleton 0 }, "search");
      (Msg.Swap_req { r_edge = (0, 1); r_target = (2, 3); r_deg_max = 4; r_segment = [ 0 ] }, "swap-req");
      (Msg.Remove { m_edge = (0, 1); m_target = (2, 3); m_deg_max = 4; m_segment = [ 0 ] }, "remove");
      (Msg.Grant { g_edge = (0, 1); g_target = (2, 3); g_deg_max = 4; g_segment = [ 0 ] }, "grant");
      (Msg.Reverse { v_edge = (0, 1); v_dist = 2; v_segment = [ 0 ] }, "reverse");
      (Msg.Update_dist { u_dist = 1; u_ttl = 4 }, "update-dist");
      (Msg.Deblock { d_idblock = 3; d_ttl = 2 }, "deblock");
    ]
  in
  List.iter (fun (m, l) -> Alcotest.(check string) l l (Msg.label m)) cases

let test_msg_bits_grow_with_path () =
  let entry i = { Msg.e_id = i; e_deg = 2; e_dist = i } in
  let mk k =
    Msg.Search
      {
        s_edge = (0, 1);
        s_idblock = None;
        s_stack = List.init k entry;
        s_visited = Intset.of_list (List.init k Fun.id);
      }
  in
  check "longer path costs more bits" true (Msg.bits ~n:32 (mk 10) > Msg.bits ~n:32 (mk 2));
  check "info is small" true
    (Msg.bits ~n:32
       (Msg.Info
          {
            i_root = 0; i_parent = 0; i_dist = 0; i_deg = 1; i_dmax = 2; i_color = false;
            i_subtree_max = 1;
          })
    < Msg.bits ~n:32 (mk 10))

(* ---------------- State predicates ---------------- *)

let fresh_view ?(root = 0) ?(parent = 0) ?(dist = 0) ?(deg = 1) ?(dmax = 2) ?(color = false)
    ?(stm = 2) () =
  {
    State.w_root = root;
    w_parent = parent;
    w_dist = dist;
    w_deg = deg;
    w_dmax = dmax;
    w_color = color;
    w_subtree_max = stm;
    w_fresh = true;
  }

let test_clean_state_is_own_root () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5 ] () in
  let st = State.clean ctx in
  Alcotest.(check int) "root" 3 st.State.root;
  Alcotest.(check int) "parent self" 3 st.State.parent;
  Alcotest.(check int) "dist" 0 st.State.dist;
  check "coherent as own root" false (State.new_root_candidate ctx st)

let test_better_parent () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5 ] () in
  let st = State.clean ctx in
  check "no better parent when views unknown" false (State.better_parent ctx st);
  let st = { st with State.views = [| fresh_view ~root:1 ~dist:0 (); State.unknown_view |] } in
  check "smaller root attracts" true (State.better_parent ctx st);
  (* A claim with an out-of-bound distance must be ignored (count-to-infinity guard). *)
  let st = { st with State.views = [| fresh_view ~root:1 ~dist:99 (); State.unknown_view |] } in
  check "overlong distance ignored" false (State.better_parent ctx st)

let test_new_root_candidate_cases () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5 ] () in
  let st = State.clean ctx in
  (* Parent not a neighbour. *)
  check "foreign parent" true (State.new_root_candidate ctx { st with State.parent = 9 });
  (* Root larger than own id is never coherent. *)
  check "root above own id" true
    (State.new_root_candidate ctx { st with State.root = 7; parent = 5 });
  (* Distance incoherent with the parent's view. *)
  let views = [| fresh_view ~root:0 ~dist:4 (); State.unknown_view |] in
  let st' = { st with State.root = 0; parent = 1; dist = 2; views } in
  check "distance mismatch" true (State.new_root_candidate ctx st');
  let st'' = { st' with State.dist = 5 } in
  check "coherent when dist = parent+1" false (State.new_root_candidate ctx st'')

let test_is_tree_edge_both_directions () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5 ] () in
  let st = State.clean ctx in
  (* Our parent pointer makes the edge a tree edge... *)
  let st1 = { st with State.parent = 5 } in
  check "own parent edge" true (State.is_tree_edge ctx st1 1);
  (* ...and so does the neighbour's parent pointing at us. *)
  let views = [| fresh_view ~parent:3 (); State.unknown_view |] in
  let st2 = { st with State.views = views } in
  check "child edge" true (State.is_tree_edge ctx st2 0);
  check "plain neighbour is not" false (State.is_tree_edge ctx st 1)

let test_tree_degree_and_children () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5; 7 ] () in
  let st = State.clean ctx in
  let views = [| fresh_view ~parent:3 (); fresh_view ~parent:3 (); fresh_view ~parent:9 () |] in
  let st = { st with State.views; parent = 7 } in
  Alcotest.(check int) "two children + parent" 3 (State.tree_degree ctx st);
  Alcotest.(check (list int)) "children slots" [ 0; 1 ] (State.tree_children_slots ctx st)

let test_locally_stabilized_requires_agreement () =
  let ctx = make_ctx ~id:0 ~neighbor_ids:[ 1 ] () in
  let st = State.clean ctx in
  let agree = [| fresh_view ~root:0 ~parent:0 ~dmax:0 ~stm:0 () |] in
  let st_ok = { st with State.views = agree } in
  check "stabilized when all agree" true (State.locally_stabilized ctx st_ok);
  let disagree = [| fresh_view ~root:0 ~parent:0 ~dmax:5 () |] in
  check "dmax disagreement blocks" false
    (State.locally_stabilized ctx { st with State.views = disagree });
  let color_off = [| fresh_view ~root:0 ~parent:0 ~dmax:0 ~stm:0 ~color:true () |] in
  check "color disagreement blocks" false
    (State.locally_stabilized ctx { st with State.views = color_off })

let test_random_state_varies () =
  let ctx = make_ctx ~id:2 ~neighbor_ids:[ 0; 1; 3 ] () in
  let rng = Prng.create 9 in
  let a = State.random ctx rng and b = State.random ctx rng in
  check "two random states differ" true (a <> b)

let test_state_bits_scale () =
  let small = make_ctx ~id:0 ~neighbor_ids:[ 1 ] () in
  let big = make_ctx ~id:0 ~neighbor_ids:[ 1; 2; 3; 4; 5 ] () in
  check "state grows with degree" true
    (State.bits ~n:16 (State.clean big) > State.bits ~n:16 (State.clean small))

(* ---------------- Checker ---------------- *)

(* Build the state array a converged run would have, directly from a tree. *)
let states_of_tree graph tree =
  let k = Tree.max_degree tree in
  Array.init (Graph.n graph) (fun v ->
      let ctx =
        make_ctx ~n:(Graph.n graph) ~id:(Graph.id graph v)
          ~neighbor_ids:(Array.to_list (Array.map (Graph.id graph) (Graph.neighbors graph v)))
          ()
      in
      let st = State.clean ctx in
      {
        st with
        State.root = Graph.id graph (Tree.root tree);
        parent =
          (if Tree.parent tree v = v then Graph.id graph v else Graph.id graph (Tree.parent tree v));
        dist = Tree.depth tree v;
        dmax = k;
      })

let test_checker_accepts_good_config () =
  let g = Gen.ring 6 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let states = states_of_tree g tree in
  let v = Checker.inspect g states in
  check "spanning" true v.spanning;
  check "rooted" true v.rooted_at_min_id;
  check "dmax ok" true v.dmax_consistent;
  check "dist ok" true v.distances_consistent;
  check "legitimate" true (Checker.legitimate g states);
  Alcotest.(check (option int)) "degree now" (Some (Tree.max_degree tree))
    (Checker.tree_degree_now g states)

let test_checker_rejects_bad_configs () =
  let g = Gen.ring 6 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let states = states_of_tree g tree in
  (* Break the parent pointer of one node: not a spanning tree any more. *)
  let broken = Array.copy states in
  broken.(3) <- { broken.(3) with State.parent = 3 };
  check "two roots rejected" false (Checker.legitimate g broken);
  (* Wrong dmax. *)
  let wrong = Array.copy states in
  wrong.(2) <- { wrong.(2) with State.dmax = 7 };
  check "bad dmax rejected" false (Checker.legitimate g wrong)

let test_checker_fingerprint () =
  let g = Gen.ring 6 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let states = states_of_tree g tree in
  let fp = Checker.fingerprint states in
  Alcotest.(check int) "fingerprint stable" fp (Checker.fingerprint states);
  let changed = Array.copy states in
  changed.(1) <- { changed.(1) with State.dist = 17 };
  check "fingerprint tracks protocol vars" true (fp <> Checker.fingerprint changed);
  (* The search cursor must NOT affect the fingerprint (it moves forever). *)
  let cursor = Array.copy states in
  cursor.(1) <- { cursor.(1) with State.search_cursor = 3 };
  Alcotest.(check int) "cursor invisible" fp (Checker.fingerprint cursor)

(* ---------------- Protocol end-to-end on purpose-built graphs -------- *)

let converge ?(seed = 5) ?(init = `Clean) ?(max_rounds = 40_000) graph =
  Run.converge ~seed ~init ~max_rounds ~fixpoint graph

let test_path_tree_trivial () =
  (* On a path the only spanning tree is the path itself. *)
  let g = Gen.path 7 in
  let r = converge g in
  check "converged" true r.converged;
  Alcotest.(check (option int)) "degree 2" (Some 2) r.degree;
  match r.tree with
  | Some t -> check "tree is the path" true (List.length (Tree.edge_list t) = 6)
  | None -> Alcotest.fail "no tree"

let test_spanning_tree_module () =
  (* Check the spanning-tree layer invariants after convergence. *)
  let g = Gen.with_random_ids (Prng.create 3) (Gen.grid ~rows:3 ~cols:4) in
  let engine = Run.make_engine ~seed:4 ~init:`Random g in
  let stop = Run.make_stop ~fixpoint () in
  ignore (Run.Engine.run engine ~max_rounds:40_000 ~check_every:2 ~stop ());
  let states = Run.Engine.states engine in
  let verdict = Checker.inspect g states in
  check "spanning" true verdict.spanning;
  check "rooted at min id" true verdict.rooted_at_min_id;
  check "distances = depths" true verdict.distances_consistent;
  let min_id = Graph.id g (Graph.min_id_node g) in
  Array.iter (fun (st : State.t) -> Alcotest.(check int) "all share min root" min_id st.State.root) states

let test_max_degree_module () =
  let g = Gen.star 7 in
  (* A star is a tree: the protocol cannot change it; dmax must become 6. *)
  let r = converge g in
  check "converged" true r.converged;
  Alcotest.(check (option int)) "degree n-1" (Some 6) r.degree

let test_fig5_improvement () =
  (* The E9 instance: exactly one improvement must run the full swap. *)
  let g =
    Graph.of_edges ~n:8 [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (3, 6); (3, 7); (0, 5) ]
  in
  let t0 = Tree.of_parents g ~root:0 [| 0; 0; 1; 2; 3; 4; 3; 3 |] in
  let r = converge ~init:(`Tree t0) g in
  check "converged" true r.converged;
  Alcotest.(check (option int)) "degree 3 = Delta*" (Some 3) r.degree;
  match r.tree with
  | Some t ->
      check "improving edge adopted" true (Tree.is_tree_edge t 0 5);
      check "node 3 relieved" true (Tree.degree t 3 = 3)
  | None -> Alcotest.fail "no tree"

let test_deblock_gadget () =
  (* The crafted instance where Deblock is necessary: the only improving
     edge {5,1} is blocked by node 5 (degree dmax-1); the escape is the
     subtree edge {6,7}.  Full protocol must reach degree 3 = Delta*; the
     ablated variant must stay pinned at 4. *)
  let g = Gen.deblock_gadget () in
  let _, parents = Gen.deblock_gadget_tree g in
  let t0 = Tree.of_parents g ~root:0 parents in
  Alcotest.(check int) "start blocked at 4" 4 (Tree.max_degree t0);
  let r = converge ~init:(`Tree t0) g in
  check "full converged" true r.converged;
  Alcotest.(check (option int)) "full reaches Delta* = 3" (Some 3) r.degree;
  let module NoDeblock = Run.Runner (Mdst_core.Proto.No_deblock) in
  let ablated = NoDeblock.converge ~seed:5 ~init:(`Tree t0) ~quiet_rounds:150 g in
  Alcotest.(check (option int)) "ablated pinned at 4" (Some 4) ablated.degree

let test_deblock_needed () =
  (* K_{3,7}: improving K33-side nodes requires deblock chains in practice. *)
  let g = Gen.complete_bipartite 3 7 in
  let r = converge ~init:`Random g in
  check "converged" true r.converged;
  match (r.degree, Mdst_baseline.Exact.solve g) with
  | Some d, Some e -> check "within Delta*+1" true (d <= e.optimum + 1)
  | _ -> Alcotest.fail "missing result"

let test_ring_with_chord () =
  (* Ring + one chord: tree degree must stay 2 (ring minus an edge). *)
  let g = Graph.of_edges ~n:8 [ (0,1);(1,2);(2,3);(3,4);(4,5);(5,6);(6,7);(7,0);(0,4) ] in
  let r = converge g in
  Alcotest.(check (option int)) "degree 2" (Some 2) r.degree

let test_random_init_many_seeds () =
  List.iter
    (fun seed ->
      let g = Gen.erdos_renyi_connected (Prng.create (seed * 13)) ~n:10 ~p:0.35 in
      let r = converge ~seed ~init:`Random g in
      check (Printf.sprintf "seed %d converged" seed) true r.converged;
      match (r.degree, Mdst_baseline.Exact.solve g) with
      | Some d, Some e ->
          check (Printf.sprintf "seed %d within bound" seed) true (d <= e.optimum + 1)
      | _ -> Alcotest.fail "missing result")
    [ 1; 2; 3; 4; 5; 6 ]

let test_id_permutation_independence () =
  (* The protocol must work when identifiers are an arbitrary permutation of
     the transport indices (min-id root lands on a random node). *)
  let base = Gen.grid ~rows:3 ~cols:3 in
  List.iter
    (fun seed ->
      let g = Gen.with_random_ids (Prng.create seed) base in
      let r = converge ~seed g in
      check "converged with shuffled ids" true r.converged;
      (* The guarantee is Delta*+1 = 3; which of {2, 3} is reached depends
         on the improvement order, hence on the identifiers. *)
      match r.degree with
      | Some d -> check "within Delta*+1" true (d <= 3)
      | None -> Alcotest.fail "no tree")
    [ 1; 2; 3 ]

let test_corrupt_recover () =
  let g = Gen.erdos_renyi_connected (Prng.create 8) ~n:12 ~p:0.3 in
  let rec_ = Run.converge_corrupt_recover ~seed:4 ~fixpoint ~fraction:1.0 g in
  check "first convergence" true rec_.first.converged;
  check "recovered" true (rec_.recovery_rounds <> None);
  Alcotest.(check int) "all corrupted" 12 rec_.corrupted

let test_no_deblock_variant_runs () =
  let module R = Run.Runner (Mdst_core.Proto.No_deblock) in
  let g = Gen.erdos_renyi_connected (Prng.create 2) ~n:10 ~p:0.3 in
  let r = R.converge ~seed:1 ~quiet_rounds:150 g in
  check "ablated variant still reaches a legitimate tree" true (r.degree <> None)

let test_paper_faithful_variant () =
  (* The literal paper cadence (search on every gossip, no pruning) must
     reach the same quality; its Search traffic is strictly heavier. *)
  let module R = Run.Runner (Mdst_core.Proto.Paper_faithful) in
  let g = Gen.erdos_renyi_connected (Prng.create 12) ~n:10 ~p:0.35 in
  let faithful = R.converge ~seed:6 ~init:`Clean ~fixpoint g in
  let default = converge ~seed:6 ~init:`Clean g in
  check "faithful converges" true faithful.converged;
  (match (faithful.degree, default.degree, Mdst_baseline.Exact.solve g) with
  | Some a, Some b, Some e ->
      check "faithful within band" true (a <= e.optimum + 1);
      check "default within band" true (b <= e.optimum + 1)
  | _ -> Alcotest.fail "missing results");
  let searches r = try List.assoc "search" r with Not_found -> 0 in
  check "faithful searches more" true
    (searches faithful.messages > searches default.messages)

let test_no_prune_variant_runs () =
  let module R = Run.Runner (Mdst_core.Proto.No_prune) in
  let g = Gen.ring 8 in
  let r = R.converge ~seed:1 ~fixpoint g in
  check "no-prune converges" true r.converged;
  Alcotest.(check (option int)) "optimal" (Some 2) r.degree

let test_tree_only_variant () =
  (* The layer-isolation ablation: stabilizes a spanning tree but performs
     no reduction whatsoever. *)
  let module R = Run.Runner (Mdst_core.Proto.Tree_only) in
  let g = Gen.wheel 10 in
  (* Clean start: a `Random one would inject adversarial reduction messages
     at t=0, which the metering would (correctly) count as traffic. *)
  let r = R.converge ~seed:3 ~init:`Clean ~quiet_rounds:80 g in
  check "tree-only converges" true r.converged;
  (* The BFS layer roots at the hub's neighbour set: the min-id node 0 is
     the hub, so the tree is the star — degree 9, untouched. *)
  Alcotest.(check (option int)) "no reduction happens" (Some 9) r.degree;
  check "no reduction traffic" true
    (List.for_all
       (fun (l, _) -> l = "info")
       (List.filter (fun (_, c) -> c > 0) r.messages))

let test_invariants_watch () =
  let g = Gen.erdos_renyi_connected (Prng.create 31) ~n:14 ~p:0.3 in
  let engine = Run.make_engine ~seed:5 ~init:`Random g in
  let stop = Run.make_stop ~fixpoint () in
  let report =
    Mdst_core.Invariants.watch ~engine ~max_rounds:30_000 ~stop ()
  in
  check "sampled" true (report.samples > 10);
  check "ends spanning" true report.final_spanning;
  check "availability sane" true (report.availability > 0.0 && report.availability <= 1.0);
  check "several trees traversed" true (report.distinct_trees >= 1);
  check "worst degree bounded by graph" true (report.max_degree_seen <= Graph.max_degree g)

let test_invariants_clean_run_high_availability () =
  (* From a clean tree start the overlay should be spanning almost always. *)
  let g = Gen.grid ~rows:3 ~cols:4 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let engine = Run.make_engine ~seed:5 ~init:(`Tree tree) g in
  let stop = Run.make_stop ~fixpoint () in
  let report = Mdst_core.Invariants.watch ~engine ~max_rounds:30_000 ~stop () in
  check "high availability from tree start" true (report.availability > 0.8)

(* ---------------- Transplant (topology changes, E13) ---------------- *)

let test_transplant_preserves_views_by_id () =
  let old_graph = Gen.ring 6 in
  let engine = Run.make_engine ~seed:3 old_graph in
  let stop = Run.make_stop ~fixpoint () in
  ignore (Run.Engine.run engine ~max_rounds:20_000 ~check_every:2 ~stop ());
  let states = Run.Engine.states engine in
  (* Add a chord: old neighbours keep their mirror, the new one is unknown. *)
  match Mdst_core.Transplant.add_random_edge (Prng.create 4) old_graph with
  | None -> Alcotest.fail "ring is not complete"
  | Some (new_graph, (u, v)) ->
      let moved = Mdst_core.Transplant.states ~old_graph ~new_graph states in
      let slot_of g x y =
        let nbrs = Graph.neighbors g x in
        let rec go k = if nbrs.(k) = y then k else go (k + 1) in
        go 0
      in
      check "new neighbour mirror is unknown" false
        moved.(u).State.views.(slot_of new_graph u v).State.w_fresh;
      (* An old neighbour's mirror must be carried over untouched. *)
      let w = (u + 1) mod 6 in
      let w' = if w = v then (u + 5) mod 6 else w in
      check "old mirror preserved" true
        (moved.(u).State.views.(slot_of new_graph u w')
        = states.(u).State.views.(slot_of old_graph u w'))

let test_transplant_rejects_mismatched () =
  let a = Gen.ring 6 and b = Gen.ring 8 in
  let states = Array.make 6 (State.clean (make_ctx ~id:0 ~neighbor_ids:[ 1 ] ())) in
  check "node count mismatch rejected" true
    (try
       ignore (Mdst_core.Transplant.states ~old_graph:a ~new_graph:b states);
       false
     with Invalid_argument _ -> true)

let test_remove_tree_edge_keeps_connectivity () =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:14 ~p:0.3 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  match Mdst_core.Transplant.remove_tree_edge (Prng.create 1) g tree with
  | None -> Alcotest.fail "dense graph must have a removable tree edge"
  | Some (g', (u, v)) ->
      check "edge gone" false (Graph.mem_edge g' u v);
      Alcotest.(check int) "one less edge" (Graph.m g - 1) (Graph.m g');
      check "still connected" true (Mdst_graph.Algo.is_connected g')

let test_remove_tree_edge_none_on_tree () =
  (* On a tree every edge is a bridge: nothing is removable. *)
  let g = Gen.caterpillar ~spine:3 ~legs:2 in
  let tree = Mdst_graph.Algo.bfs_tree g ~root:0 in
  check "no removable edge" true
    (Mdst_core.Transplant.remove_tree_edge (Prng.create 1) g tree = None)

let test_recover_after_tree_edge_loss () =
  (* End-to-end E13 scenario: converge, drop a tree edge, re-stabilize. *)
  let graph = Gen.erdos_renyi_connected (Prng.create 11) ~n:12 ~p:0.35 in
  let engine = Run.make_engine ~seed:6 graph in
  let stop = Run.make_stop ~fixpoint () in
  let o1 = Run.Engine.run engine ~max_rounds:30_000 ~check_every:2 ~stop () in
  check "initial convergence" true o1.converged;
  let tree = Option.get (Checker.tree_of_states graph (Run.Engine.states engine)) in
  match Mdst_core.Transplant.remove_tree_edge (Prng.create 2) graph tree with
  | None -> Alcotest.fail "no removable tree edge"
  | Some (graph', _) ->
      let moved =
        Mdst_core.Transplant.states ~old_graph:graph ~new_graph:graph'
          (Run.Engine.states engine)
      in
      let engine' =
        Run.Engine.create ~seed:7
          ~init:(`Custom (fun ctx _ -> moved.(ctx.Mdst_sim.Node.node)))
          graph'
      in
      let stop' = Run.make_stop ~fixpoint () in
      let o2 = Run.Engine.run engine' ~max_rounds:30_000 ~check_every:2 ~stop:stop' () in
      check "re-stabilized" true o2.converged

let test_graceful_reattach_mechanism () =
  (* Craft the exact situation the E17 rule targets: a converged overlay
     loses the tree edge to an orphan that has a same-depth neighbour in
     the main component.  Graph: root 0 with two depth-1 children 1 and 2,
     1 -- 2 adjacent, subtree below 2.  Remove (0,2): node 2 must re-attach
     through 1 without resetting its subtree's roots. *)
  let g =
    Graph.of_edges ~n:6 [ (0, 1); (0, 2); (1, 2); (2, 3); (2, 4); (4, 5); (1, 5) ]
  in
  let t0 = Tree.of_parents g ~root:0 [| 0; 0; 0; 2; 2; 4 |] in
  let module GR = Run.Runner (Mdst_core.Proto.Graceful) in
  let engine = GR.make_engine ~seed:4 ~init:(`Tree t0) g in
  let stop = GR.make_stop ~fixpoint () in
  ignore (GR.Engine.run engine ~max_rounds:20_000 ~check_every:2 ~stop ());
  (* Break the edge and transplant onto the graph without it. *)
  let g' = Graph.of_edges ~n:6 [ (0, 1); (1, 2); (2, 3); (2, 4); (4, 5); (1, 5) ] in
  let moved =
    Mdst_core.Transplant.states ~old_graph:g ~new_graph:g' (GR.Engine.states engine)
  in
  let engine' =
    GR.Engine.create ~seed:5 ~init:(`Custom (fun ctx _ -> moved.(ctx.Mdst_sim.Node.node))) g'
  in
  let module W = Mdst_core.Invariants.Watch (Mdst_core.Proto.Graceful) in
  let stop = GR.make_stop ~fixpoint () in
  let report = W.watch ~engine:engine' ~max_rounds:20_000 ~stop () in
  check "repaired" true report.final_spanning;
  (* The graceful arm must never have reset node 2's subtree roots: the
     configurations stay spanning throughout (a reset would show an outage
     while 2..5 rebuild). *)
  check "no outage during graceful repair" true (report.longest_outage <= 1)

let test_colors_agree_at_fixpoint () =
  (* After convergence the colour wave must have settled: every node agrees
     with the whole neighbourhood (the per-swap flips have been absorbed). *)
  let g = Gen.erdos_renyi_connected (Prng.create 6) ~n:12 ~p:0.3 in
  let engine = Run.make_engine ~seed:9 ~init:`Random g in
  let stop = Run.make_stop ~fixpoint () in
  ignore (Run.Engine.run engine ~max_rounds:40_000 ~check_every:2 ~stop ());
  let states = Run.Engine.states engine in
  let colors = Array.map (fun (st : State.t) -> st.State.color) states in
  check "single colour across the tree" true
    (Array.for_all (fun c -> c = colors.(0)) colors)

(* ---------------- Info suppression dirty-bit edges ---------------- *)

module PS = Mdst_core.Proto.Suppressed

(* A single leaf node whose local rules quiesce immediately: every tick's
   gossip repeats itself, so the send pattern isolates the suppression
   logic.  [sent] records whether the last tick broadcast an Info. *)
let suppression_rig () =
  let sent = ref false in
  let ctx =
    {
      (make_ctx ~id:3 ~neighbor_ids:[ 1 ] ()) with
      Node.send =
        (fun _ m -> match m with Msg.Info _ -> sent := true | _ -> ());
    }
  in
  (ctx, sent)

let test_suppression_refresh_boundary () =
  let ctx, sent = suppression_rig () in
  let st = ref (PS.init ctx) in
  let send_ticks = ref [] in
  for i = 1 to 33 do
    sent := false;
    st := PS.on_tick ctx !st;
    if !sent then send_ticks := i :: !send_ticks
  done;
  (match List.rev !send_ticks with
  | first :: rest ->
      (* After the cold-cache send, refreshes land exactly every 8th tick
         (info_refresh_every), never earlier, never later. *)
      Alcotest.(check (list int)) "forced refresh every 8th tick"
        [ first + 8; first + 16; first + 24 ]
        (List.filteri (fun i _ -> i < 3) rest)
  | [] -> Alcotest.fail "node never advertised");
  check "age counts suppressed ticks since the last broadcast" true
    ((!st).State.info_age < 8)

let test_suppression_change_then_revert () =
  let ctx, sent = suppression_rig () in
  let st = ref (PS.init ctx) in
  (* Warm the cache and move into mid-window suppression. *)
  for _ = 1 to 3 do
    st := PS.on_tick ctx !st
  done;
  let base = !st in
  check "mid-window precondition" true
    (base.State.info_age > 0 && base.State.info_age < 6);
  (* The dirty bit compares tick-time values, not intermediate writes: a
     variable changed and reverted between two ticks is indistinguishable
     from one that never moved, so the tick stays suppressed. *)
  let transient = { base with State.color = not base.State.color } in
  let reverted = { transient with State.color = base.State.color } in
  sent := false;
  st := PS.on_tick ctx reverted;
  check "revert-before-tick is suppressed" false !sent;
  Alcotest.(check int) "suppressed tick still ages the cache"
    (base.State.info_age + 1) (!st).State.info_age;
  (* A difference still live at tick time (here: a cache that no longer
     matches the variables) re-advertises immediately and resets the age. *)
  let stale =
    match (!st).State.last_info with
    | Some i ->
        { !st with State.last_info = Some { i with Msg.i_color = not i.Msg.i_color } }
    | None -> Alcotest.fail "cache must be warm after a broadcast"
  in
  sent := false;
  st := PS.on_tick ctx stale;
  check "live difference re-advertises" true !sent;
  Alcotest.(check int) "broadcast resets the age" 0 (!st).State.info_age

let test_suppression_corrupted_age_is_bounded () =
  let ctx, sent = suppression_rig () in
  let st = ref (PS.init ctx) in
  for _ = 1 to 2 do
    st := PS.on_tick ctx !st
  done;
  (* Adversarial cache: the values match the variables exactly (maximally
     deceptive) but the age counter is corrupted sky-high.  The very next
     tick crosses the refresh boundary, so staleness stays bounded by
     info_refresh_every no matter what the adversary plants. *)
  sent := false;
  st := PS.on_tick ctx { !st with State.info_age = 1000 };
  check "corrupted age forces a refresh at the next tick" true !sent;
  Alcotest.(check int) "age restarts from the refresh" 0 (!st).State.info_age;
  (* And the boundary case itself: age = info_refresh_every - 1 means the
     window is exhausted on this tick. *)
  for _ = 1 to 2 do
    st := PS.on_tick ctx !st
  done;
  sent := false;
  st := PS.on_tick ctx { !st with State.info_age = 7 };
  check "age 7 tick is the forced refresh" true !sent;
  (* The window after a forced refresh is a full quiet one again. *)
  let quiet = ref 0 in
  for _ = 1 to 7 do
    sent := false;
    st := PS.on_tick ctx !st;
    if not !sent then incr quiet
  done;
  Alcotest.(check int) "seven suppressed ticks follow" 7 !quiet

let test_pp_smoke () =
  let ctx = make_ctx ~id:3 ~neighbor_ids:[ 1; 5 ] () in
  let st = State.clean ctx in
  let rendered = Format.asprintf "%a" (State.pp ctx) st in
  check "state pp mentions id" true (String.length rendered > 10);
  let msg =
    Msg.Search
      {
        s_edge = (1, 2);
        s_idblock = Some 3;
        s_stack = [ { Msg.e_id = 1; e_deg = 2; e_dist = 0 } ];
        s_visited = Intset.singleton 1;
      }
  in
  check "msg pp renders" true (String.length (Format.asprintf "%a" Msg.pp msg) > 10)

let test_tree_init_is_instantly_coherent () =
  (* `Tree initialization plants a legitimate tree: distances must match
     depths from the very first inspection (only dmax bookkeeping boots
     cold). *)
  let g = Gen.grid ~rows:3 ~cols:3 in
  let t0 = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let engine = Run.make_engine ~seed:2 ~init:(`Tree t0) g in
  let v = Checker.inspect g (Run.Engine.states engine) in
  check "spanning at birth" true v.spanning;
  check "distances at birth" true v.distances_consistent;
  check "dmax cold at birth" false v.dmax_consistent

let test_metering_collected () =
  let g = Gen.erdos_renyi_connected (Prng.create 5) ~n:10 ~p:0.3 in
  let r = converge ~init:`Random g in
  check "state bits metered" true (r.max_state_bits > 0);
  check "msg bits metered" true (r.max_msg_bits > 0);
  check "info messages flowed" true (List.mem_assoc "info" r.messages)

(* ---------------- Parallel engine ---------------- *)

let test_pengine_k_invariance () =
  (* The sharded engine's schedule is independent of the shard count by
     construction; the observable outcome must be bit-identical across k. *)
  let g = Gen.grid ~rows:4 ~cols:4 in
  let run d = Run.converge_par ~seed:5 ~init:`Random ~max_rounds:20_000 ~domains:d g in
  let r1 = run 1 and r2 = run 2 and r3 = run 3 in
  check "k=1 converges" true r1.Run.converged;
  List.iter
    (fun (label, r) ->
      check (label ^ " converges") true r.Run.converged;
      Alcotest.(check int) (label ^ " same rounds") r1.Run.rounds r.Run.rounds;
      Alcotest.(check int) (label ^ " same messages") r1.Run.total_messages r.Run.total_messages;
      Alcotest.(check (option int)) (label ^ " same degree") r1.Run.degree r.Run.degree)
    [ ("k=2", r2); ("k=3", r3) ]

let test_pengine_repeat_determinism () =
  let g = Gen.grid ~rows:3 ~cols:3 in
  let run () = Run.converge_par ~seed:11 ~init:`Random ~max_rounds:20_000 ~domains:2 g in
  let a = run () and b = run () in
  Alcotest.(check int) "same rounds across runs" a.Run.rounds b.Run.rounds;
  Alcotest.(check int) "same messages across runs" a.Run.total_messages b.Run.total_messages

let test_pengine_stabilizes_to_legit_tree () =
  let g = Gen.grid ~rows:4 ~cols:4 in
  let r = Run.converge_par ~seed:9 ~init:`Random ~max_rounds:30_000 ~fixpoint ~domains:2 g in
  check "converged" true r.converged;
  match r.tree with
  | Some t -> check "FR fixpoint reached" true (fixpoint t)
  | None -> Alcotest.fail "no legitimate tree at quiescence"

let () =
  Alcotest.run "core"
    [
      ( "msg",
        [
          Alcotest.test_case "labels" `Quick test_msg_labels;
          Alcotest.test_case "bits grow with path" `Quick test_msg_bits_grow_with_path;
        ] );
      ( "state",
        [
          Alcotest.test_case "clean is own root" `Quick test_clean_state_is_own_root;
          Alcotest.test_case "better_parent" `Quick test_better_parent;
          Alcotest.test_case "new_root_candidate" `Quick test_new_root_candidate_cases;
          Alcotest.test_case "is_tree_edge both directions" `Quick test_is_tree_edge_both_directions;
          Alcotest.test_case "degree and children" `Quick test_tree_degree_and_children;
          Alcotest.test_case "locally_stabilized" `Quick test_locally_stabilized_requires_agreement;
          Alcotest.test_case "random varies" `Quick test_random_state_varies;
          Alcotest.test_case "bits scale with degree" `Quick test_state_bits_scale;
        ] );
      ( "checker",
        [
          Alcotest.test_case "accepts good config" `Quick test_checker_accepts_good_config;
          Alcotest.test_case "rejects bad configs" `Quick test_checker_rejects_bad_configs;
          Alcotest.test_case "fingerprint" `Quick test_checker_fingerprint;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "path tree trivial" `Quick test_path_tree_trivial;
          Alcotest.test_case "spanning-tree module invariants" `Quick test_spanning_tree_module;
          Alcotest.test_case "max-degree module on star" `Quick test_max_degree_module;
          Alcotest.test_case "figure-5 improvement" `Quick test_fig5_improvement;
          Alcotest.test_case "deblock gadget (necessity)" `Quick test_deblock_gadget;
          Alcotest.test_case "deblock on K3,7" `Quick test_deblock_needed;
          Alcotest.test_case "ring with chord" `Quick test_ring_with_chord;
          Alcotest.test_case "random init, many seeds" `Slow test_random_init_many_seeds;
          Alcotest.test_case "id permutation independence" `Quick test_id_permutation_independence;
          Alcotest.test_case "corrupt and recover" `Quick test_corrupt_recover;
          Alcotest.test_case "no-deblock variant" `Quick test_no_deblock_variant_runs;
          Alcotest.test_case "no-prune variant" `Quick test_no_prune_variant_runs;
          Alcotest.test_case "paper-faithful cadence" `Quick test_paper_faithful_variant;
          Alcotest.test_case "tree init instantly coherent" `Quick test_tree_init_is_instantly_coherent;
          Alcotest.test_case "metering collected" `Quick test_metering_collected;
          Alcotest.test_case "colors agree at fixpoint" `Quick test_colors_agree_at_fixpoint;
          Alcotest.test_case "graceful reattach mechanism" `Quick test_graceful_reattach_mechanism;
          Alcotest.test_case "pp smoke" `Quick test_pp_smoke;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "refresh-tick boundary" `Quick test_suppression_refresh_boundary;
          Alcotest.test_case "change then revert within one tick" `Quick
            test_suppression_change_then_revert;
          Alcotest.test_case "corrupted age stays bounded" `Quick
            test_suppression_corrupted_age_is_bounded;
        ] );
      ( "variants",
        [
          Alcotest.test_case "tree-only layer isolation" `Quick test_tree_only_variant;
          Alcotest.test_case "invariants watcher" `Quick test_invariants_watch;
          Alcotest.test_case "availability from clean tree" `Quick test_invariants_clean_run_high_availability;
        ] );
      ( "transplant",
        [
          Alcotest.test_case "views re-matched by id" `Quick test_transplant_preserves_views_by_id;
          Alcotest.test_case "rejects mismatch" `Quick test_transplant_rejects_mismatched;
          Alcotest.test_case "removal keeps connectivity" `Quick test_remove_tree_edge_keeps_connectivity;
          Alcotest.test_case "trees have no removable edge" `Quick test_remove_tree_edge_none_on_tree;
          Alcotest.test_case "recovers after tree-edge loss" `Quick test_recover_after_tree_edge_loss;
        ] );
      ( "pengine",
        [
          Alcotest.test_case "outcome invariant in shard count" `Quick test_pengine_k_invariance;
          Alcotest.test_case "repeat determinism" `Quick test_pengine_repeat_determinism;
          Alcotest.test_case "stabilizes to FR fixpoint" `Quick
            test_pengine_stabilizes_to_legit_tree;
        ] );
    ]

(* Tests for the analysis layer: statistics, table rendering, workloads and
   the experiment registry. *)

module Stats = Mdst_analysis.Stats
module Table = Mdst_analysis.Table
module Workloads = Mdst_analysis.Workloads
module Registry = Mdst_analysis.Registry

let check = Alcotest.(check bool)

let feq = Alcotest.(check (float 1e-9))

(* ---------------- Stats ---------------- *)

let test_mean_median () =
  feq "mean" 2.5 (Stats.mean [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "median even" 2.5 (Stats.median [ 1.0; 2.0; 3.0; 4.0 ]);
  feq "median odd" 3.0 (Stats.median [ 5.0; 1.0; 3.0 ]);
  feq "median singleton" 7.0 (Stats.median [ 7.0 ])

let test_empty_rejected () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty list") (fun () ->
      ignore (Stats.mean []))

let test_percentile () =
  let xs = Stats.of_ints [ 10; 20; 30; 40; 50 ] in
  feq "p0" 10.0 (Stats.percentile 0.0 xs);
  feq "p100" 50.0 (Stats.percentile 100.0 xs);
  feq "p50" 30.0 (Stats.percentile 50.0 xs);
  feq "p25 interpolates" 20.0 (Stats.percentile 25.0 xs)

let test_stddev () =
  feq "constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  feq "known" 1.0 (Stats.stddev [ 1.0; 2.0; 3.0 ]);
  feq "singleton" 0.0 (Stats.stddev [ 9.0 ])

let test_minmax () =
  feq "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  feq "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ])

let test_ci () =
  let m, hw = Stats.mean_ci95 [ 10.0; 10.0; 10.0; 10.0 ] in
  feq "ci mean" 10.0 m;
  feq "ci width zero for constants" 0.0 hw

let test_linear_fit () =
  let slope, intercept = Stats.linear_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  feq "slope" 2.0 slope;
  feq "intercept" 1.0 intercept

let test_loglog_slope () =
  (* y = x^2 exactly. *)
  let pts = List.map (fun x -> (x, x *. x)) [ 1.0; 2.0; 4.0; 8.0 ] in
  feq "quadratic slope" 2.0 (Stats.loglog_slope pts)

let test_loglog_drops_nonpositive () =
  let pts = [ (0.0, 5.0); (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] in
  feq "ignores x=0 point" 1.0 (Stats.loglog_slope pts)

(* ---------------- Table ---------------- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

let test_table_render () =
  let t = Table.make ~title:"demo" ~columns:[ "a"; "bb" ] in
  Table.add_row t [ "1"; "2" ];
  Table.add_row t [ "333"; "4" ];
  Table.add_note t "a note";
  let s = Table.render t in
  check "title" true (contains s "== demo ==");
  check "cell" true (contains s "333");
  check "note" true (contains s "note: a note")

let test_table_arity () =
  let t = Table.make ~title:"demo" ~columns:[ "a"; "b" ] in
  check "wrong arity raises" true
    (try
       Table.add_row t [ "1" ];
       false
     with Invalid_argument _ -> true)

let test_table_csv () =
  let t = Table.make ~title:"demo" ~columns:[ "a"; "b" ] in
  Table.add_row t [ "x,y"; "plain" ];
  let csv = Table.to_csv t in
  check "header" true (contains csv "a,b");
  check "escaped comma" true (contains csv "\"x,y\"")

let test_cells () =
  Alcotest.(check string) "int" "42" (Table.cell_int 42);
  Alcotest.(check string) "float" "3.14" (Table.cell_float ~decimals:2 3.14159);
  Alcotest.(check string) "bool" "yes" (Table.cell_bool true);
  Alcotest.(check string) "opt none" "-" (Table.cell_opt Table.cell_int None);
  Alcotest.(check string) "opt some" "7" (Table.cell_opt Table.cell_int (Some 7))

(* ---------------- Workloads ---------------- *)

let test_workloads_build_connected () =
  List.iter
    (fun name ->
      let w = Workloads.find name in
      let g = w.build 1 in
      check (name ^ " connected") true (Mdst_graph.Algo.is_connected g))
    Workloads.names

let test_workloads_deterministic () =
  let w = Workloads.find "er-16" in
  check "same seed same graph" true (Mdst_graph.Graph.equal (w.build 3) (w.build 3))

let test_er_with () =
  let g = Workloads.er_with ~n:20 ~avg_deg:4.0 1 in
  check "connected" true (Mdst_graph.Algo.is_connected g);
  Alcotest.(check int) "n" 20 (Mdst_graph.Graph.n g)

let test_workloads_unknown () =
  check "unknown raises" true
    (try
       ignore (Workloads.find "nope");
       false
     with Invalid_argument _ -> true)

(* ---------------- Registry ---------------- *)

let test_registry_ids () =
  Alcotest.(check (list string))
    "all experiments present"
    [ "E1"; "E2"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "E17"; "E19"; "E20"; "E21" ]
    Registry.ids

let test_registry_find () =
  let e = Registry.find "e9" in
  Alcotest.(check string) "case-insensitive lookup" "E9" e.id;
  check "unknown raises" true
    (try
       ignore (Registry.find "E99");
       false
     with Invalid_argument _ -> true)

let test_fig5_experiment_passes () =
  (* E9 is cheap and fully assertive: every check row must end in "yes". *)
  let e = Registry.find "E9" in
  let tables = e.run ~quick:true () in
  List.iter
    (fun t ->
      let rendered = Table.render t in
      check "no failing check" false (contains rendered "| no ")
      )
    tables

let test_exp_common_delta_star () =
  let g = Mdst_graph.Gen.ring 8 in
  match Mdst_analysis.Exp_common.delta_star g with
  | Mdst_analysis.Exp_common.Exact_opt 2 -> ()
  | _ -> Alcotest.fail "ring Delta* must be exactly 2"

let test_all_experiments_quick_smoke () =
  (* Every experiment must run in quick mode and produce non-empty,
     renderable tables — the CI guard for the whole analysis layer. *)
  List.iter
    (fun (e : Registry.entry) ->
      let tables = e.run ~quick:true () in
      check (e.id ^ " produces tables") true (tables <> []);
      List.iter
        (fun t -> check (e.id ^ " renders") true (String.length (Table.render t) > 40))
        tables)
    Registry.all

let test_save_csvs () =
  (* Use the cheapest experiment only, via a one-entry registry slice
     written to a temp dir through the real CSV writer. *)
  let dir = Filename.temp_file "mdst" "" in
  Sys.remove dir;
  let e = Registry.find "E9" in
  let tables = e.run ~quick:true () in
  Sys.mkdir dir 0o755;
  List.iteri
    (fun i t ->
      let path = Filename.concat dir (Printf.sprintf "e9-%d.csv" i) in
      let oc = open_out path in
      output_string oc (Table.to_csv t);
      close_out oc;
      check "csv file non-empty" true (Sys.file_exists path))
    tables;
  Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  Sys.rmdir dir

let () =
  Alcotest.run "analysis"
    [
      ( "stats",
        [
          Alcotest.test_case "mean/median" `Quick test_mean_median;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min/max" `Quick test_minmax;
          Alcotest.test_case "ci95" `Quick test_ci;
          Alcotest.test_case "linear fit" `Quick test_linear_fit;
          Alcotest.test_case "loglog slope" `Quick test_loglog_slope;
          Alcotest.test_case "loglog drops nonpositive" `Quick test_loglog_drops_nonpositive;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "csv" `Quick test_table_csv;
          Alcotest.test_case "cells" `Quick test_cells;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "all connected" `Slow test_workloads_build_connected;
          Alcotest.test_case "deterministic" `Quick test_workloads_deterministic;
          Alcotest.test_case "er_with" `Quick test_er_with;
          Alcotest.test_case "unknown raises" `Quick test_workloads_unknown;
        ] );
      ( "registry",
        [
          Alcotest.test_case "ids" `Quick test_registry_ids;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "E9 passes" `Slow test_fig5_experiment_passes;
          Alcotest.test_case "delta_star helper" `Quick test_exp_common_delta_star;
          Alcotest.test_case "all experiments quick smoke" `Slow test_all_experiments_quick_smoke;
          Alcotest.test_case "csv export" `Quick test_save_csvs;
        ] );
    ]

(* Tests for the baselines: the exact branch-and-bound MDST solver, the
   Fürer–Raghavachari local search, and the naive spanning trees.  The
   exact solver is the ground truth for everything else, so it gets known
   closed-form instances first. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Tree = Mdst_graph.Tree
module Prng = Mdst_util.Prng
module Exact = Mdst_baseline.Exact
module Fr = Mdst_baseline.Fr
module Naive = Mdst_baseline.Naive

let check = Alcotest.(check bool)

let optimum g =
  match Exact.solve g with Some r -> r.optimum | None -> Alcotest.fail "budget exhausted"

(* ---------------- Exact ---------------- *)

let test_exact_known_values () =
  Alcotest.(check int) "path" 2 (optimum (Gen.path 6));
  Alcotest.(check int) "ring" 2 (optimum (Gen.ring 6));
  Alcotest.(check int) "star (forced)" 5 (optimum (Gen.star 6));
  Alcotest.(check int) "complete (ham path)" 2 (optimum (Graph.complete 7));
  Alcotest.(check int) "petersen (hypohamiltonian)" 2 (optimum (Gen.petersen ()));
  Alcotest.(check int) "wheel" 2 (optimum (Gen.wheel 9));
  Alcotest.(check int) "grid" 2 (optimum (Gen.grid ~rows:3 ~cols:4));
  Alcotest.(check int) "hypercube" 2 (optimum (Gen.hypercube 3));
  (* Caterpillar is a tree: the only spanning tree is itself. *)
  Alcotest.(check int) "caterpillar spine degree" 5
    (optimum (Gen.caterpillar ~spine:3 ~legs:3))

let test_exact_bipartite () =
  (* K_{2,5}: one side has 2 nodes; a spanning tree needs the 5 right nodes
     attached through them, so some left node has degree >= 3; 3+1 split is
     feasible => Delta* = 3.  (General K_{a,b}, b > a: ceil(b/a) + (1 if not divisible... )
     checked empirically here.) *)
  Alcotest.(check int) "K25" 3 (optimum (Gen.complete_bipartite 2 5));
  Alcotest.(check int) "K33" 2 (optimum (Gen.complete_bipartite 3 3));
  Alcotest.(check int) "K14" 4 (optimum (Gen.complete_bipartite 1 4))

let test_exact_witness_tree_valid () =
  let g = Gen.erdos_renyi_connected (Prng.create 4) ~n:12 ~p:0.3 in
  match Exact.solve g with
  | None -> Alcotest.fail "budget exhausted"
  | Some r ->
      Alcotest.(check int) "witness matches optimum" r.optimum (Tree.max_degree r.tree);
      Alcotest.(check int) "witness spans" 11 (List.length (Tree.edge_list r.tree));
      check "expansions counted" true (r.expansions > 0)

let test_exact_budget () =
  let g = Graph.complete 12 in
  Alcotest.(check (option int)) "tiny budget gives None" None
    (Option.map (fun (r : Exact.result) -> r.optimum) (Exact.solve ~budget:3 g))

let test_exact_tiny_graphs () =
  (* Degenerate sizes exercise the solver's base cases. *)
  let single = Graph.of_edges ~n:1 [] in
  (match Exact.solve single with
  | Some r -> Alcotest.(check int) "n=1 optimum" 0 r.optimum
  | None -> Alcotest.fail "n=1 must solve");
  let pair = Graph.of_edges ~n:2 [ (0, 1) ] in
  match Exact.solve pair with
  | Some r -> Alcotest.(check int) "n=2 optimum" 1 r.optimum
  | None -> Alcotest.fail "n=2 must solve"

let test_exact_gadget () =
  match Exact.solve (Gen.deblock_gadget ()) with
  | Some r -> Alcotest.(check int) "gadget optimum" 3 r.optimum
  | None -> Alcotest.fail "gadget must solve"

let test_exact_rejects_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "disconnected rejected" true
    (try
       ignore (Exact.solve g);
       false
     with Invalid_argument _ -> true)

let test_spanning_tree_with_degree () =
  let g = Gen.wheel 8 in
  (match Exact.spanning_tree_with_degree g 2 with
  | Some t -> Alcotest.(check int) "degree respected" 2 (Tree.max_degree t)
  | None -> Alcotest.fail "wheel has a ham path");
  check "degree-1 impossible on n>=3" true (Exact.spanning_tree_with_degree g 1 = None)

let test_lower_bound () =
  Alcotest.(check int) "star cut" 5 (Exact.lower_bound (Gen.star 6));
  Alcotest.(check int) "caterpillar spine" 5 (Exact.lower_bound (Gen.caterpillar ~spine:3 ~legs:3));
  Alcotest.(check int) "ring trivial" 2 (Exact.lower_bound (Gen.ring 6));
  check "lower bound <= optimum" true (Exact.lower_bound (Gen.wheel 9) <= optimum (Gen.wheel 9))

let prop_exact_leq_any_tree =
  QCheck.Test.make ~name:"exact optimum <= degree of any sampled spanning tree" ~count:40
    QCheck.(pair small_int (int_range 5 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.4 in
      let t = Mdst_graph.Algo.random_spanning_tree rng g ~root:0 in
      match Exact.solve g with
      | Some r -> r.optimum <= Tree.max_degree t
      | None -> true)

(* ---------------- FR ---------------- *)

let test_fr_fixpoint_not_improvable () =
  let g = Gen.erdos_renyi_connected (Prng.create 7) ~n:14 ~p:0.3 in
  let t = Fr.approx_mdst g in
  check "fixpoint" false (Fr.improvable t)

let test_fr_improves_star_in_clique () =
  (* BFS tree of a complete graph is a star; FR must drive it to degree 2. *)
  let g = Graph.complete 8 in
  let bfs = Mdst_graph.Algo.bfs_tree g ~root:0 in
  Alcotest.(check int) "bfs is a star" 7 (Tree.max_degree bfs);
  let t, improvements = Fr.run bfs in
  Alcotest.(check int) "ham path found" 2 (Tree.max_degree t);
  check "several improvements" true (improvements >= 5)

let test_fr_run_counts () =
  let g = Gen.ring 6 in
  let t = Mdst_graph.Algo.bfs_tree g ~root:0 in
  let _, improvements = Fr.run t in
  Alcotest.(check int) "ring tree needs no improvement" 0 improvements

let test_fr_reduce_node_once () =
  let g = Graph.complete 6 in
  let star = Mdst_graph.Algo.bfs_tree g ~root:0 in
  (match Fr.reduce_node_once star ~target:0 ~visited:[] with
  | Some t' -> check "degree reduced" true (Tree.degree t' 0 < Tree.degree star 0)
  | None -> Alcotest.fail "star in K6 must be reducible");
  (* A leaf cannot be reduced. *)
  let path_tree = Mdst_graph.Algo.bfs_tree (Gen.path 5) ~root:0 in
  check "leaf irreducible" true (Fr.reduce_node_once path_tree ~target:4 ~visited:[] = None)

let prop_fr_within_one_of_optimum =
  QCheck.Test.make ~name:"FR fixpoint degree <= Delta* + 1" ~count:40
    QCheck.(pair small_int (int_range 5 13))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.35 in
      let fr = Tree.max_degree (Fr.approx_mdst g) in
      match Exact.solve g with Some r -> fr <= r.optimum + 1 | None -> true)

let prop_fr_never_worse_than_start =
  QCheck.Test.make ~name:"FR never increases the tree degree" ~count:40
    QCheck.(pair small_int (int_range 5 14))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let g = Gen.erdos_renyi_connected rng ~n ~p:0.35 in
      let t0 = Mdst_graph.Algo.random_spanning_tree rng g ~root:0 in
      let t, _ = Fr.run t0 in
      Tree.max_degree t <= Tree.max_degree t0)

(* ---------------- Naive ---------------- *)

let test_naive_all_span () =
  let g = Gen.erdos_renyi_connected (Prng.create 2) ~n:15 ~p:0.3 in
  let rng = Prng.create 3 in
  List.iter
    (fun spec ->
      let t = Naive.build rng spec g in
      Alcotest.(check int) (Naive.name spec ^ " spans") 14 (List.length (Tree.edge_list t));
      Alcotest.(check int) (Naive.name spec ^ " rooted at min id") 0 (Tree.root t))
    Naive.all

let test_naive_names_distinct () =
  let names = List.map Naive.name Naive.all in
  Alcotest.(check int) "distinct names" (List.length names)
    (List.length (List.sort_uniq compare names))

let test_naive_bfs_on_star_is_bad () =
  let g = Gen.star 8 in
  let rng = Prng.create 1 in
  Alcotest.(check int) "star has only one tree" 7 (Naive.degree rng Naive.Bfs g)

(* ---------------- Blin–Butelle-style serialized comparator ---------------- *)

module Bb = Mdst_baseline.Bb

let test_bb_reaches_low_degree () =
  List.iter
    (fun (name, g, bound) ->
      let r = Bb.converge ~seed:1 g in
      check (name ^ " converged") true r.converged;
      match r.degree with
      | Some d -> check (Printf.sprintf "%s degree %d <= %d" name d bound) true (d <= bound)
      | None -> Alcotest.fail (name ^ ": no tree"))
    [
      ("ring", Gen.ring 8, 2);
      ("wheel", Gen.wheel 9, 3);
      ("complete", Graph.complete 8, 2);
      ("grid", Gen.grid ~rows:4 ~cols:4, 3);
    ]

let test_bb_counts_phases () =
  (* A complete graph's BFS tree is a star: several serialized phases are
     needed to flatten it. *)
  let r = Bb.converge ~seed:2 (Graph.complete 8) in
  check "multiple phases" true (r.phases_run >= 4)

let test_bb_no_op_on_path () =
  let r = Bb.converge ~seed:1 (Gen.path 8) in
  check "converged" true r.converged;
  Alcotest.(check int) "zero phases on a path" 0 r.phases_run

let test_bb_serializes_on_hubs () =
  (* With h simultaneous hubs, the serialized algorithm needs at least h
     phases before the tree degree can drop — one per hub. *)
  let cliques = 3 and clique_size = 6 in
  let graph = Gen.star_of_cliques ~cliques ~clique_size in
  let parents = Array.make (Graph.n graph) (Graph.n graph - 1) in
  parents.(Graph.n graph - 1) <- Graph.n graph - 1;
  for c = 0 to cliques - 1 do
    for i = 1 to clique_size - 1 do
      parents.((c * clique_size) + i) <- c * clique_size
    done
  done;
  let tree = Tree.of_parents graph ~root:(Graph.n graph - 1) parents in
  let k0 = Tree.max_degree tree in
  let engine = Bb.Engine.create ~seed:3 ~init:(`Custom (Bb.state_of_tree tree)) graph in
  let stop t =
    match Bb.extract_degree graph (Bb.Engine.states t) with Some k -> k < k0 | None -> false
  in
  let o = Bb.Engine.run engine ~max_rounds:100_000 ~check_every:2 ~stop () in
  check "eventually drops" true o.converged;
  (* The stop fires as soon as the last swap is visible, possibly before the
     root's phase acknowledgement arrives — hence the -1. *)
  let root_state = Bb.Engine.state engine (Graph.n graph - 1) in
  check "about one phase per hub" true (Bb.phases root_state >= cliques - 1)

let test_bb_membership_tables_grow () =
  (* The Θ(n log n) membership cost: metered state grows superlinearly in n
     relative to the degree bound on a path-of-cliques. *)
  let r_small = Bb.converge ~seed:1 (Gen.lollipop ~clique:4 ~tail:8) in
  let r_large = Bb.converge ~seed:1 (Gen.lollipop ~clique:4 ~tail:24) in
  check "tables grow with n at fixed degree" true
    (r_large.max_state_bits > (3 * r_small.max_state_bits / 2))

let test_bb_debug_dump () =
  let g = Gen.ring 6 in
  let engine = Bb.Engine.create ~seed:1 ~init:(`Custom (Bb.state_of_tree (Mdst_graph.Algo.bfs_tree g ~root:0))) g in
  let s = Bb.debug_dump (Bb.Engine.state engine 0) in
  check "dump mentions phase" true (String.length s > 10)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "baseline"
    [
      ( "exact",
        [
          Alcotest.test_case "known values" `Quick test_exact_known_values;
          Alcotest.test_case "bipartite" `Quick test_exact_bipartite;
          Alcotest.test_case "witness tree" `Quick test_exact_witness_tree_valid;
          Alcotest.test_case "budget" `Quick test_exact_budget;
          Alcotest.test_case "tiny graphs" `Quick test_exact_tiny_graphs;
          Alcotest.test_case "deblock gadget" `Quick test_exact_gadget;
          Alcotest.test_case "rejects disconnected" `Quick test_exact_rejects_disconnected;
          Alcotest.test_case "decision variant" `Quick test_spanning_tree_with_degree;
          Alcotest.test_case "lower bound" `Quick test_lower_bound;
          q prop_exact_leq_any_tree;
        ] );
      ( "fr",
        [
          Alcotest.test_case "fixpoint not improvable" `Quick test_fr_fixpoint_not_improvable;
          Alcotest.test_case "drives star to ham path" `Quick test_fr_improves_star_in_clique;
          Alcotest.test_case "no-op on optimal tree" `Quick test_fr_run_counts;
          Alcotest.test_case "reduce_node_once" `Quick test_fr_reduce_node_once;
          q prop_fr_within_one_of_optimum;
          q prop_fr_never_worse_than_start;
        ] );
      ( "naive",
        [
          Alcotest.test_case "all span" `Quick test_naive_all_span;
          Alcotest.test_case "names distinct" `Quick test_naive_names_distinct;
          Alcotest.test_case "star forced" `Quick test_naive_bfs_on_star_is_bad;
        ] );
      ( "blin-butelle",
        [
          Alcotest.test_case "reaches low degree" `Quick test_bb_reaches_low_degree;
          Alcotest.test_case "counts phases" `Quick test_bb_counts_phases;
          Alcotest.test_case "no-op on a path" `Quick test_bb_no_op_on_path;
          Alcotest.test_case "serializes over hubs" `Slow test_bb_serializes_on_hubs;
          Alcotest.test_case "membership tables grow" `Quick test_bb_membership_tables_grow;
          Alcotest.test_case "debug dump" `Quick test_bb_debug_dump;
        ] );
    ]

(* Unit and property tests for the util substrate: PRNG, heap, sizing. *)

module Prng = Mdst_util.Prng
module Heap = Mdst_util.Heap
module Sizing = Mdst_util.Sizing

let check = Alcotest.(check bool)

(* ---------------- Prng ---------------- *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_differs_by_seed () =
  let a = Prng.create 7 and b = Prng.create 8 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.bits64 a = Prng.bits64 b then incr same
  done;
  check "streams differ" true (!same < 4)

let test_prng_copy_independent () =
  let a = Prng.create 3 in
  let b = Prng.copy a in
  let x = Prng.bits64 a in
  let y = Prng.bits64 b in
  Alcotest.(check int64) "copy starts at same point" x y;
  ignore (Prng.bits64 a);
  (* advancing a must not affect b *)
  let c = Prng.copy b in
  Alcotest.(check int64) "b unchanged by a" (Prng.bits64 b) (Prng.bits64 c)

let test_prng_split_independent () =
  let a = Prng.create 11 in
  let child = Prng.split a in
  let xs = List.init 32 (fun _ -> Prng.bits64 a) in
  let ys = List.init 32 (fun _ -> Prng.bits64 child) in
  check "split streams differ" true (xs <> ys)

let test_int_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 7 in
    check "in range" true (v >= 0 && v < 7)
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 3 in
    check "int_in range" true (v >= -3 && v <= 3)
  done

let test_int_rejects_bad_bounds () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0));
  Alcotest.check_raises "lo > hi" (Invalid_argument "Prng.int_in: lo > hi") (fun () ->
      ignore (Prng.int_in rng 4 2))

let test_float_bounds () =
  let rng = Prng.create 9 in
  for _ = 1 to 1000 do
    let v = Prng.float rng 2.5 in
    check "float range" true (v >= 0.0 && v < 2.5)
  done

(* Reference SplitMix64 on Int64, straight from Steele-Lea-Flood.  The
   shipped implementation carries the state as two 32-bit native-int limbs
   (no Int64 boxing on the hot path); every replay trace and golden round
   count depends on the limb pipeline staying bit-exact with this. *)
module Ref64 = struct
  type t = { mutable state : int64 }

  let mix64 z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))

  let create seed = { state = mix64 (Int64.of_int seed) }

  let bits64 t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    mix64 t.state
end

let test_prng_matches_int64_reference () =
  (* Seeds exercising sign extension, carry chains and large magnitudes. *)
  let seeds = [ 0; 1; -1; 42; -7; 0xbe2c; max_int; min_int; 0x7ABC_1234_5678; -123456789 ] in
  List.iter
    (fun seed ->
      let a = Prng.create seed and r = Ref64.create seed in
      for i = 1 to 10_000 do
        let x = Prng.bits64 a and y = Ref64.bits64 r in
        if x <> y then
          Alcotest.failf "seed %d draw %d: limb %Lx <> reference %Lx" seed i x y
      done)
    seeds

let test_prng_split_matches_reference () =
  (* split = mix64 of the next raw output, on every lineage. *)
  let a = Prng.create 2009 and r = Ref64.create 2009 in
  for _ = 1 to 100 do
    let child = Prng.split a in
    let expected = { Ref64.state = Ref64.mix64 (Ref64.bits64 r) } in
    for _ = 1 to 16 do
      Alcotest.(check int64) "child stream" (Ref64.bits64 expected) (Prng.bits64 child)
    done
  done

let test_float_of_seed_matches_stream () =
  (* The allocation-free hash used by the latency hot path must equal the
     first draw of a fresh stream seeded the same way. *)
  List.iter
    (fun seed ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "seed %d" seed)
        (Prng.float (Prng.create seed) 1.0)
        (Prng.float_of_seed seed))
    [ 0; 1; 42; -7; 123456789; max_int ]

let test_bernoulli_extremes () =
  let rng = Prng.create 2 in
  for _ = 1 to 100 do
    check "p=0 never" false (Prng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    check "p=1 always" true (Prng.bernoulli rng 1.0)
  done

let test_bernoulli_rate () =
  let rng = Prng.create 13 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Prng.bernoulli rng 0.3 then incr hits
  done;
  let rate = float_of_int !hits /. float_of_int n in
  check "rate near 0.3" true (abs_float (rate -. 0.3) < 0.02)

let test_exponential_positive () =
  let rng = Prng.create 4 in
  for _ = 1 to 1000 do
    check "positive" true (Prng.exponential rng 2.0 >= 0.0)
  done

let test_exponential_mean () =
  let rng = Prng.create 6 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng 2.0
  done;
  let mean = !sum /. float_of_int n in
  check "mean near 1/rate" true (abs_float (mean -. 0.5) < 0.02)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list small_int))
    (fun (seed, xs) ->
      let a = Array.of_list xs in
      Prng.shuffle (Prng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare xs)

let prop_sample_without_replacement =
  QCheck.Test.make ~name:"sample_without_replacement: distinct, sorted, in range" ~count:200
    QCheck.(pair small_int (pair (int_bound 20) (int_bound 20)))
    (fun (seed, (a, b)) ->
      let k = min a b and n = max a b in
      let s = Prng.sample_without_replacement (Prng.create seed) k n in
      List.length s = k
      && List.sort_uniq compare s = s
      && List.for_all (fun v -> v >= 0 && v < n) s)

let test_seed_of_string_stable () =
  Alcotest.(check int) "stable" (Prng.seed_of_string "hello") (Prng.seed_of_string "hello");
  check "different strings differ" true
    (Prng.seed_of_string "hello" <> Prng.seed_of_string "world")

(* Pinned FNV-1a values: experiment seeds are derived from these strings,
   so a silent change here silently changes every named workload. *)
let test_seed_of_string_golden () =
  List.iter
    (fun (s, want) -> Alcotest.(check int) s want (Prng.seed_of_string s))
    [
      ("", -3750763034362895579);
      ("hello", 2607821981565500683);
      ("mdst", 4066404816837655011);
      ("E1", 647105507010916579);
      ("convergence", 1183647922022721582);
    ]

let test_prng_split_1k_distinct () =
  (* Fan-out experiments hand every worker a split child; a colliding pair
     would silently run two "independent" samples on the same stream. *)
  let parent = Prng.create 20090525 in
  let streams =
    List.init 1000 (fun _ ->
        let c = Prng.split parent in
        List.init 4 (fun _ -> Prng.bits64 c))
  in
  Alcotest.(check int) "1000 pairwise-distinct child streams" 1000
    (List.length (List.sort_uniq compare streams))

(* ---------------- Heap ---------------- *)

let test_heap_basic () =
  let h = Heap.create () in
  check "empty" true (Heap.is_empty h);
  Heap.push h ~prio:3.0 "c";
  Heap.push h ~prio:1.0 "a";
  Heap.push h ~prio:2.0 "b";
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option (pair (float 0.0) string))) "peek" (Some (1.0, "a")) (Heap.peek h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop a" (Some (1.0, "a")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop b" (Some (2.0, "b")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop c" (Some (3.0, "c")) (Heap.pop h);
  Alcotest.(check (option (pair (float 0.0) string))) "pop empty" None (Heap.pop h)

let test_heap_fifo_on_ties () =
  let h = Heap.create () in
  List.iter (fun s -> Heap.push h ~prio:1.0 s) [ "first"; "second"; "third" ];
  let order = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order among ties" [ "first"; "second"; "third" ] order

let test_heap_clear () =
  let h = Heap.create () in
  Heap.push h ~prio:1.0 1;
  Heap.clear h;
  check "cleared" true (Heap.is_empty h)

let test_heap_filter () =
  let h = Heap.create () in
  List.iteri (fun i p -> Heap.push h ~prio:p (string_of_int i)) [ 5.0; 1.0; 3.0; 2.0; 4.0 ];
  let removed = Heap.filter h (fun prio _ -> prio < 3.5) in
  Alcotest.(check int) "removed count" 2 removed;
  Alcotest.(check int) "length after" 3 (Heap.length h);
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc) in
  Alcotest.(check (list string)) "survivors in priority order" [ "1"; "3"; "2" ] (drain [])

let test_heap_filter_keeps_fifo () =
  let h = Heap.create () in
  List.iter (fun s -> Heap.push h ~prio:1.0 s) [ "a"; "drop"; "b"; "drop"; "c" ];
  let removed = Heap.filter h (fun _ v -> v <> "drop") in
  Alcotest.(check int) "removed" 2 removed;
  let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (_, v) -> drain (v :: acc) in
  Alcotest.(check (list string)) "tie order preserved across filter" [ "a"; "b"; "c" ] (drain [])

let test_heap_to_list () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p p) [ 5.0; 1.0; 3.0 ];
  let l = Heap.to_list h in
  Alcotest.(check int) "snapshot size" 3 (List.length l);
  Alcotest.(check int) "heap unchanged" 3 (Heap.length h)

(* Retention: the heap must not pin popped/removed values in its backing
   array.  Values are tracked through weak pointers; after the structural
   operation and a full major collection the weak slots must be empty. *)

let heap_fill h w k =
  (* Separate function so no local reference to a pushed value survives in
     the caller's frame. *)
  for i = 0 to k - 1 do
    let v = ref i in
    Weak.set w i (Some v);
    Heap.push h ~prio:(float_of_int i) v
  done

let heap_drain h =
  let rec go () = match Heap.pop h with None -> () | Some _ -> go () in
  go ()

let weak_live w =
  let live = ref 0 in
  for i = 0 to Weak.length w - 1 do
    if Weak.check w i then incr live
  done;
  !live

let test_heap_pop_releases () =
  let h = Heap.create ~capacity:4 () in
  let w = Weak.create 8 in
  heap_fill h w 8;
  heap_drain h;
  Gc.full_major ();
  Alcotest.(check int) "no popped value retained" 0 (weak_live w);
  (* The emptied heap must still work. *)
  Heap.push h ~prio:1.0 (ref 42);
  Alcotest.(check int) "heap usable after drain" 1 (Heap.length h)

let test_heap_filter_releases () =
  let h = Heap.create ~capacity:4 () in
  let w = Weak.create 8 in
  heap_fill h w 8;
  let removed = Heap.filter h (fun prio _ -> prio < 4.0) in
  Alcotest.(check int) "removed" 4 removed;
  Gc.full_major ();
  let live = weak_live w in
  (* Read the heap AFTER the collection so [h] itself stays a GC root
     throughout — otherwise the whole heap dies and the count is vacuous. *)
  Alcotest.(check int) "survivors still in heap" 4 (Heap.length h);
  Alcotest.(check int) "only survivors retained" 4 live

let test_heap_clear_releases () =
  let h = Heap.create ~capacity:4 () in
  let w = Weak.create 8 in
  heap_fill h w 8;
  Heap.clear h;
  Gc.full_major ();
  let live = weak_live w in
  Alcotest.(check int) "heap empty but alive" 0 (Heap.length h);
  Alcotest.(check int) "no cleared value retained" 0 live

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap pops in nondecreasing priority order" ~count:300
    QCheck.(small_list (float_bound_inclusive 100.0))
    (fun prios ->
      let h = Heap.create () in
      List.iter (fun p -> Heap.push h ~prio:p p) prios;
      let rec drain acc = match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc) in
      let out = drain [] in
      out = List.sort compare prios)

let prop_heap_grows =
  QCheck.Test.make ~name:"heap survives growth beyond initial capacity" ~count:50
    QCheck.(int_range 1 200)
    (fun n ->
      let h = Heap.create ~capacity:1 () in
      for i = n downto 1 do
        Heap.push h ~prio:(float_of_int i) i
      done;
      let rec drain last ok =
        match Heap.pop h with
        | None -> ok
        | Some (p, _) -> drain p (ok && p >= last)
      in
      drain neg_infinity true)

(* ---------------- Parallel ---------------- *)

module Parallel = Mdst_util.Parallel

let test_parallel_preserves_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int)) "order kept" (List.map (fun x -> x * x) xs)
    (Parallel.map ~domains:4 (fun x -> x * x) xs)

let test_parallel_empty_and_single () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 (fun x -> x) []);
  Alcotest.(check (list int)) "single" [ 42 ] (Parallel.map ~domains:4 (fun x -> x) [ 42 ])

let test_parallel_sequential_equiv () =
  let xs = List.init 37 (fun i -> i * 3) in
  let f x = (x * 7) mod 13 in
  Alcotest.(check (list int)) "domains=1 equals domains=4"
    (Parallel.map ~domains:1 f xs)
    (Parallel.map ~domains:4 f xs)

exception Boom

let test_parallel_propagates_exception () =
  check "exception re-raised" true
    (try
       ignore (Parallel.map ~domains:3 (fun x -> if x = 5 then raise Boom else x) (List.init 10 Fun.id));
       false
     with Boom -> true)

let test_parallel_real_work () =
  (* Independent seeded PRNG streams: parallel and sequential must agree. *)
  let f seed =
    let rng = Prng.create seed in
    let acc = ref 0 in
    for _ = 1 to 1000 do
      acc := !acc + Prng.int rng 100
    done;
    !acc
  in
  let seeds = List.init 12 (fun i -> i * 17) in
  Alcotest.(check (list int)) "deterministic under parallelism"
    (List.map f seeds)
    (Parallel.map ~domains:4 f seeds)

let test_parallel_domains1_no_spawn () =
  (* The domains=1 fast path must run everything on the caller's domain —
     benchmarks and tests rely on it having zero spawn overhead. *)
  let self = Domain.self () in
  let ids = Parallel.map ~domains:1 (fun _ -> Domain.self ()) (List.init 20 Fun.id) in
  check "no spawned domain at domains=1" true (List.for_all (fun d -> d = self) ids)

exception Boom_at of int

let test_parallel_exception_from_spawned_domain () =
  (* Rendezvous forces the two tasks onto two distinct domains: the first
     executor blocks inside f until the second has started, so the second
     necessarily runs on the other domain.  Both raise; the Err cells must
     survive the join and re-raise in the caller (earliest input index
     wins — results are scanned in order). *)
  let turn = Atomic.make 0 in
  let doms = Array.make 2 None in
  (try
     ignore
       (Parallel.map ~domains:2
          (fun i ->
            let me = Atomic.fetch_and_add turn 1 in
            doms.(me) <- Some (Domain.self ());
            if me = 0 then
              while Atomic.get turn < 2 do
                Domain.cpu_relax ()
              done;
            raise (Boom_at i))
          [ 0; 1 ]);
     Alcotest.fail "expected Boom_at to propagate"
   with Boom_at i -> Alcotest.(check int) "earliest input index re-raised" 0 i);
  check "tasks ran on two distinct domains" true (doms.(0) <> doms.(1) && doms.(1) <> None)

(* ---------------- Heap.push_at ---------------- *)

let test_heap_push_at_tiebreak () =
  let h = Heap.create () in
  Heap.push_at h ~prio:1.0 ~seq:50 "late";
  Heap.push_at h ~prio:1.0 ~seq:7 "early";
  Heap.push_at h ~prio:0.5 ~seq:99 "first";
  Alcotest.(check int) "top_seq reads the minimum's seq" 99 (Heap.top_seq h);
  let pop_v () = match Heap.pop h with Some (_, v) -> v | None -> Alcotest.fail "empty" in
  Alcotest.(check string) "smallest prio first" "first" (pop_v ());
  Alcotest.(check string) "smaller seq breaks the tie" "early" (pop_v ());
  Alcotest.(check string) "larger seq last" "late" (pop_v ())

let test_heap_push_at_oracle () =
  (* Stress against a sorted-list oracle: few distinct priorities (lots of
     ties) with caller-supplied sequence numbers in shuffled insertion
     order — pops must come out in exact (prio, seq) order regardless of
     when each entry was pushed. *)
  let rng = Prng.create 0x4ea9 in
  for _round = 1 to 40 do
    let n = 1 + Prng.int rng 200 in
    let entries =
      List.init n (fun i -> (float_of_int (Prng.int rng 6), i))
    in
    let shuffled = Array.of_list entries in
    Prng.shuffle rng shuffled;
    let h = Heap.create ~capacity:4 () in
    Array.iter (fun (prio, seq) -> Heap.push_at h ~prio ~seq (prio, seq)) shuffled;
    let oracle = List.sort compare entries in
    let popped =
      List.init n (fun _ ->
          match Heap.pop h with Some (_, v) -> v | None -> Alcotest.fail "heap ran dry")
    in
    check "pops in (prio, seq) order" true (popped = oracle)
  done

let test_heap_push_at_releases () =
  (* Same vacated-slot guarantee as push/pop: nothing popped stays
     reachable from the backing array. *)
  let h = Heap.create ~capacity:4 () in
  let w = Weak.create 8 in
  let fill () =
    for i = 0 to 7 do
      let v = ref i in
      Weak.set w i (Some v);
      Heap.push_at h ~prio:(float_of_int (i / 2)) ~seq:(7 - i) v
    done
  in
  fill ();
  heap_drain h;
  Gc.full_major ();
  Alcotest.(check int) "no popped value retained" 0 (weak_live w);
  Heap.push_at h ~prio:1.0 ~seq:0 (ref 42);
  Alcotest.(check int) "heap usable after drain" 1 (Heap.length h)

(* ---------------- Mailbox ---------------- *)

module Mailbox = Mdst_util.Mailbox

let test_mailbox_fifo () =
  let mb = Mailbox.create ~capacity:8 () in
  for i = 0 to 5 do
    check "push accepted" true (Mailbox.try_push mb i)
  done;
  Alcotest.(check int) "length" 6 (Mailbox.length mb);
  for i = 0 to 5 do
    Alcotest.(check (option int)) "FIFO order" (Some i) (Mailbox.try_pop mb)
  done;
  Alcotest.(check (option int)) "empty after drain" None (Mailbox.try_pop mb);
  check "is_empty" true (Mailbox.is_empty mb)

let test_mailbox_capacity_and_backpressure () =
  let mb = Mailbox.create ~capacity:3 () in
  Alcotest.(check int) "capacity rounds up to a power of two" 4 (Mailbox.capacity mb);
  for i = 0 to 3 do
    check "fills to capacity" true (Mailbox.try_push mb i)
  done;
  check "full ring refuses" false (Mailbox.try_push mb 99);
  Alcotest.(check (option int)) "pop frees a slot" (Some 0) (Mailbox.try_pop mb);
  check "push succeeds after pop" true (Mailbox.try_push mb 4);
  check "bad capacity rejected" true
    (try
       ignore (Mailbox.create ~capacity:0 ());
       false
     with Invalid_argument _ -> true)

let test_mailbox_pop_clears_slot () =
  let mb = Mailbox.create ~capacity:4 () in
  let w = Weak.create 4 in
  let fill () =
    for i = 0 to 3 do
      let v = ref i in
      Weak.set w i (Some v);
      ignore (Mailbox.try_push mb v)
    done
  in
  fill ();
  for _ = 0 to 3 do
    ignore (Mailbox.try_pop mb)
  done;
  Gc.full_major ();
  Alcotest.(check int) "vacated slots cleared" 0 (weak_live w);
  check "ring still usable" true (Mailbox.try_push mb (ref 9))

let test_mailbox_cross_domain () =
  (* The SPSC contract end to end: one producer domain, the caller
     consuming, a ring far smaller than the stream so wrap-around and the
     full/empty transitions are exercised thousands of times. *)
  let mb = Mailbox.create ~capacity:16 () in
  let total = 20_000 in
  let producer =
    Domain.spawn (fun () ->
        for i = 0 to total - 1 do
          while not (Mailbox.try_push mb i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let next = ref 0 in
  let ok = ref true in
  while !next < total do
    match Mailbox.try_pop mb with
    | Some v ->
        if v <> !next then ok := false;
        incr next
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  check "stream arrived complete and in order" true !ok;
  check "drained" true (Mailbox.is_empty mb)

(* ---------------- Intset ---------------- *)

module Intset = Mdst_util.Intset

let test_intset_basic () =
  let s = Intset.of_list [ 3; 1; 4; 1; 5; 9; 2; 6 ] in
  Alcotest.(check int) "cardinal dedups" 7 (Intset.cardinal s);
  check "mem 4" true (Intset.mem 4 s);
  check "mem 7" false (Intset.mem 7 s);
  check "mem negative absent" false (Intset.mem (-1) s);
  Alcotest.(check (list int)) "elements sorted" [ 1; 2; 3; 4; 5; 6; 9 ] (Intset.elements s);
  check "empty" true (Intset.is_empty Intset.empty);
  Alcotest.(check int) "singleton" 1 (Intset.cardinal (Intset.singleton 0));
  (* Negative keys (corrupt ids) must round-trip too. *)
  let neg = Intset.of_list [ -5; 3; -1 ] in
  check "mem -5" true (Intset.mem (-5) neg);
  Alcotest.(check int) "neg cardinal" 3 (Intset.cardinal neg)

let test_intset_canonical () =
  (* Patricia tries are canonical: insertion order must not matter for
     structural equality (messages carrying visited-sets are compared
     with polymorphic equality in tests and reproducers). *)
  let a = Intset.of_list [ 1; 2; 3; 4; 5 ] in
  let b = Intset.of_list [ 5; 3; 1; 4; 2 ] in
  check "structural equality" true (a = b);
  check "add existing is physically same" true (Intset.add 3 a == a)

let prop_intset_model =
  QCheck.Test.make ~name:"intset agrees with list model" ~count:300
    QCheck.(list (int_range (-100) 100))
    (fun xs ->
      let s = Intset.of_list xs in
      let model = List.sort_uniq compare xs in
      Intset.elements s = model
      && Intset.cardinal s = List.length model
      && List.for_all (fun x -> Intset.mem x s) model
      && not (Intset.mem 101 s))

(* ---------------- Sizing ---------------- *)

let test_sizing () =
  Alcotest.(check int) "log2 16" 4 (Sizing.bits_for_card 16);
  Alcotest.(check int) "log2 17" 5 (Sizing.bits_for_card 17);
  Alcotest.(check int) "log2 1" 1 (Sizing.bits_for_card 1);
  Alcotest.(check int) "id bits" 5 (Sizing.id_bits ~n:20);
  check "list bits grow with count" true
    (Sizing.list_bits ~n:16 8 10 > Sizing.list_bits ~n:16 8 2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "util"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_prng_differs_by_seed;
          Alcotest.test_case "copy independent" `Quick test_prng_copy_independent;
          Alcotest.test_case "split independent" `Quick test_prng_split_independent;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int rejects bad bounds" `Quick test_int_rejects_bad_bounds;
          Alcotest.test_case "float bounds" `Quick test_float_bounds;
          Alcotest.test_case "float_of_seed matches stream" `Quick test_float_of_seed_matches_stream;
          Alcotest.test_case "matches Int64 reference" `Quick test_prng_matches_int64_reference;
          Alcotest.test_case "split matches reference" `Quick test_prng_split_matches_reference;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "bernoulli rate" `Quick test_bernoulli_rate;
          Alcotest.test_case "exponential positive" `Quick test_exponential_positive;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "seed_of_string stable" `Quick test_seed_of_string_stable;
          Alcotest.test_case "seed_of_string golden" `Quick test_seed_of_string_golden;
          Alcotest.test_case "split: 1000 children distinct" `Quick test_prng_split_1k_distinct;
          q prop_shuffle_is_permutation;
          q prop_sample_without_replacement;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic order" `Quick test_heap_basic;
          Alcotest.test_case "fifo on ties" `Quick test_heap_fifo_on_ties;
          Alcotest.test_case "clear" `Quick test_heap_clear;
          Alcotest.test_case "filter" `Quick test_heap_filter;
          Alcotest.test_case "filter keeps fifo ties" `Quick test_heap_filter_keeps_fifo;
          Alcotest.test_case "to_list snapshot" `Quick test_heap_to_list;
          Alcotest.test_case "pop releases values" `Quick test_heap_pop_releases;
          Alcotest.test_case "filter releases removed values" `Quick test_heap_filter_releases;
          Alcotest.test_case "clear releases values" `Quick test_heap_clear_releases;
          Alcotest.test_case "push_at tie-break" `Quick test_heap_push_at_tiebreak;
          Alcotest.test_case "push_at vs sorted-list oracle" `Quick test_heap_push_at_oracle;
          Alcotest.test_case "push_at releases popped values" `Quick test_heap_push_at_releases;
          q prop_heap_sorts;
          q prop_heap_grows;
        ] );
      ( "intset",
        [
          Alcotest.test_case "basic membership" `Quick test_intset_basic;
          Alcotest.test_case "canonical equality" `Quick test_intset_canonical;
          q prop_intset_model;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "order preserved" `Quick test_parallel_preserves_order;
          Alcotest.test_case "empty/single" `Quick test_parallel_empty_and_single;
          Alcotest.test_case "sequential equivalence" `Quick test_parallel_sequential_equiv;
          Alcotest.test_case "exception propagation" `Quick test_parallel_propagates_exception;
          Alcotest.test_case "deterministic real work" `Quick test_parallel_real_work;
          Alcotest.test_case "domains=1 never spawns" `Quick test_parallel_domains1_no_spawn;
          Alcotest.test_case "exception from spawned domain" `Quick
            test_parallel_exception_from_spawned_domain;
        ] );
      ( "mailbox",
        [
          Alcotest.test_case "FIFO order" `Quick test_mailbox_fifo;
          Alcotest.test_case "capacity + backpressure" `Quick
            test_mailbox_capacity_and_backpressure;
          Alcotest.test_case "pop clears the slot" `Quick test_mailbox_pop_clears_slot;
          Alcotest.test_case "cross-domain stream" `Quick test_mailbox_cross_domain;
        ] );
      ("sizing", [ Alcotest.test_case "bit accounting" `Quick test_sizing ]);
    ]

(* Self-tests of the property-based testing layer: the driver's
   generate-fail-shrink loop, the shrinkers' domain invariants, generator
   determinism, and the shared suites. *)

module Graph = Mdst_graph.Graph
module Fault = Mdst_sim.Fault
module Prng = Mdst_util.Prng
module Gen = Mdst_check.Gen
module Shrink = Mdst_check.Shrink
module Property = Mdst_check.Property
module Suites = Mdst_check.Suites

let check = Alcotest.(check bool)

(* ---------------- driver ---------------- *)

let test_passing_property () =
  let p =
    Property.make ~name:"tautology" ~gen:(Gen.int_in 0 100) (fun _ -> Ok ())
  in
  match Property.check ~tests:50 ~seed:1 p with
  | Property.Passed { tests } -> Alcotest.(check int) "all tests ran" 50 tests
  | Property.Falsified _ -> Alcotest.fail "tautology falsified"

let test_failing_property_shrinks () =
  let p =
    Property.make ~name:"all-below-50" ~gen:(Gen.int_in 0 1000) ~shrink:(Shrink.int ~towards:0)
      ~print:string_of_int
      (fun x -> if x < 50 then Ok () else Error "too big")
  in
  match Property.check ~tests:100 ~seed:3 p with
  | Property.Passed _ -> Alcotest.fail "must be falsified"
  | Property.Falsified c ->
      let v = int_of_string c.Property.printed in
      check "shrunk value still fails" true (v >= 50);
      (* Greedy descent reaches a local minimum: every further shrink
         candidate passes. *)
      check "local minimum" true
        (Seq.for_all (fun w -> w < 50) (Shrink.int ~towards:0 v));
      Alcotest.(check string) "reason kept" "too big" c.Property.reason

let test_check_deterministic () =
  let p =
    Property.make ~name:"flaky-free" ~gen:(Gen.int_in 0 1000) ~shrink:(Shrink.int ~towards:0)
      ~print:string_of_int
      (fun x -> if x mod 7 <> 0 then Ok () else Error "divisible by 7")
  in
  let run () =
    match Property.check ~tests:100 ~seed:9 p with
    | Property.Passed _ -> "passed"
    | Property.Falsified c -> c.Property.printed
  in
  Alcotest.(check string) "same seed, same trajectory" (run ()) (run ())

let test_check_exn () =
  let p =
    Property.make ~name:"never" ~gen:(Gen.int_in 0 10) (fun _ -> Error "always fails")
  in
  check "check_exn raises" true
    (try
       Property.check_exn ~tests:5 ~seed:1 p;
       false
     with Failure _ -> true)

(* ---------------- generators ---------------- *)

let test_gen_deterministic () =
  let show seed =
    let g = Gen.run (Gen.connected_graph ()) ~seed in
    let plan = Gen.run (Gen.fault_plan ~graph:g ()) ~seed in
    Mdst_graph.Io.to_string g ^ "|" ^ Fault.to_string plan
  in
  Alcotest.(check string) "same seed, same case" (show 5) (show 5);
  check "different seeds differ" true (show 5 <> show 6)

let test_gen_combinators () =
  let rng = Prng.create 3 in
  List.iter
    (fun _ ->
      let v = Gen.oneof [ Gen.return 1; Gen.return 2 ] (Prng.split rng) in
      check "oneof picks a member" true (v = 1 || v = 2);
      let w = Gen.frequency [ (1, Gen.return "a"); (3, Gen.return "b") ] (Prng.split rng) in
      check "frequency picks a member" true (w = "a" || w = "b");
      let xs = Gen.list_of ~len:(Gen.return 4) Gen.bool (Prng.split rng) in
      Alcotest.(check int) "list_of length" 4 (List.length xs))
    (List.init 20 Fun.id)

(* ---------------- shrinkers ---------------- *)

let test_shrink_int () =
  check "nothing below target" true (Seq.is_empty (Shrink.int ~towards:0 0));
  List.iter
    (fun v ->
      Seq.iter
        (fun c -> check "candidate strictly closer to target" true (c >= 0 && c < v))
        (Shrink.int ~towards:0 v))
    [ 1; 2; 17; 1000 ]

let test_shrink_list () =
  let xs = [ 1; 2; 3; 4; 5; 6 ] in
  let is_subsequence sub =
    let rec go sub full =
      match (sub, full) with
      | [], _ -> true
      | _, [] -> false
      | s :: srest, f :: frest -> if s = f then go srest frest else go sub frest
    in
    go sub xs
  in
  Seq.iter
    (fun c ->
      check "strictly shorter" true (List.length c < List.length xs);
      check "order preserved" true (is_subsequence c))
    (Shrink.list xs);
  check "empty list has no candidates" true (Seq.is_empty (Shrink.list ([] : int list)))

let test_remove_vertex () =
  let ring = Mdst_graph.Gen.ring 5 in
  (match Shrink.remove_vertex ring 2 with
  | None -> Alcotest.fail "ring minus one vertex stays connected"
  | Some g ->
      Alcotest.(check int) "one vertex fewer" 4 (Graph.n g);
      check "connected" true (Mdst_graph.Algo.is_connected g);
      (* Dense renumbering keeps the original identifiers of survivors. *)
      Alcotest.(check (list int)) "ids of survivors kept" [ 0; 1; 3; 4 ]
        (List.init 4 (Graph.id g)));
  let path = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  check "cutting a path's middle vertex rejected" true (Shrink.remove_vertex path 1 = None);
  (match Shrink.remove_vertex path 2 with
  | Some g -> Alcotest.(check int) "endpoint removal fine" 2 (Graph.n g)
  | None -> Alcotest.fail "endpoint removal must succeed");
  check "never below 2 nodes" true
    (Shrink.remove_vertex (Graph.of_edges ~n:2 [ (0, 1) ]) 0 = None)

let test_remap_plan_without_vertex () =
  let plan =
    Fault.of_string "seed=4|drop:0-10:1>3:0.5|crash:5:0:init|cut:7:2-3|link:9:0-1"
  in
  let remapped = Shrink.remap_plan_without_vertex ~removed:1 plan in
  (* Events mentioning node 1 vanish; references above 1 shift down. *)
  Alcotest.(check string) "renumbered coherently" "seed=4|crash:5:0:init|cut:7:1-2"
    (Fault.to_string remapped)

let test_shrink_case_joint () =
  (* A shrunk (graph, plan) pair must stay self-consistent: every plan
     event references nodes that exist in the shrunk graph. *)
  let module C = Mdst_check.Convergence in
  let case =
    C.case_of_string
      "n=5;edges=0-1,1-2,2-3,3-4,0-4,1-3;seed=11;plan=seed=2|drop:0-20:1>2:0.5|crash:9:4:random|cut:5:1-3"
  in
  Seq.iter
    (fun (c : C.case) ->
      check "candidate graph connected" true (Mdst_graph.Algo.is_connected c.C.graph);
      check "plan references only live nodes" true
        (List.for_all
           (fun v -> v >= 0 && v < Graph.n c.C.graph)
           (Fault.nodes_mentioned c.C.plan)))
    (C.shrink_case case)

(* ---------------- reproducer format ---------------- *)

let test_case_print_parse_fixpoint () =
  let module C = Mdst_check.Convergence in
  let lines =
    [
      "n=4;edges=0-1,1-2,2-3,0-3;seed=7;plan=seed=3|drop:0-10:0>1:0.5";
      "n=4;ids=2,0,3,1;edges=0-1,1-2,2-3;seed=1;plan=seed=0";
      "n=3;edges=0-1,1-2;seed=0;plan=seed=9|dup:3-4:1>0:0.75:2|crash:5:2:init";
    ]
  in
  List.iter
    (fun line ->
      let once = C.case_to_string (C.case_of_string line) in
      let twice = C.case_to_string (C.case_of_string once) in
      Alcotest.(check string) "printing is a fixpoint of parsing" once twice)
    lines

let test_case_rejects_malformed () =
  let module C = Mdst_check.Convergence in
  let rejects s =
    try
      ignore (C.case_of_string s);
      false
    with Invalid_argument _ -> true
  in
  check "empty" true (rejects "");
  check "missing edges" true (rejects "n=4;seed=1;plan=seed=0");
  check "bad edge" true (rejects "n=4;edges=0~1;seed=1;plan=seed=0");
  check "unknown key" true (rejects "n=4;edges=0-1;wat=1")

(* ---------------- protocol properties ---------------- *)

(* Non-vacuity of the search-path property: on a ring (exactly one
   non-tree edge) the spy must actually record completed searches after
   convergence — a property that silently observes nothing would pass for
   the wrong reason. *)
let test_searchpath_not_vacuous () =
  let module S = Mdst_check.Searchpath in
  let case = { S.graph = Mdst_graph.Gen.ring 8; seed = 5 } in
  let count = S.completed_count case in
  check "searches completed on the converged ring" true (count > 0);
  match S.prop case with
  | Ok () -> ()
  | Error reason -> Alcotest.fail ("search-path property failed on ring-8: " ^ reason)

(* Convergence-under-adversity with Info dirty-bit suppression ON: the
   adversary corrupts the suppression cache along with everything else, so
   this validates that the bounded-staleness refresh preserves
   self-stabilization (tentpole acceptance gate). *)
let test_suppressed_convergence () =
  let module C = Mdst_check.Convergence in
  let property = C.Suppressed.property ~max_n:7 ~max_events:3 () in
  match Property.check ~tests:6 ~seed:20090525 property with
  | Property.Passed _ -> ()
  | Property.Falsified c ->
      Alcotest.fail (Property.render ~name:property.Property.name c)

(* ---------------- conformance / explorer / mutants ---------------- *)

let test_conformance_format () =
  let module Cf = Mdst_check.Conformance in
  let lines =
    [
      "n=4;edges=0-1,1-2,2-3,0-3;seed=7;init=random;events=40";
      "n=3;ids=2,0,1;edges=0-1,1-2;seed=1;init=clean;events=5";
    ]
  in
  List.iter
    (fun line ->
      let once = Cf.case_to_string (Cf.case_of_string line) in
      let twice = Cf.case_to_string (Cf.case_of_string once) in
      Alcotest.(check string) "printing is a fixpoint of parsing" once twice)
    lines;
  let rejects s =
    try
      ignore (Cf.case_of_string s);
      false
    with Invalid_argument _ -> true
  in
  check "empty" true (rejects "");
  check "bad init" true (rejects "n=3;edges=0-1,1-2;seed=1;init=wat;events=5");
  check "bad events" true (rejects "n=3;edges=0-1,1-2;seed=1;init=clean;events=-2");
  (* omitted events falls back to the documented default *)
  Alcotest.(check int) "events default" 100
    (Cf.case_of_string "n=3;edges=0-1,1-2;seed=1;init=clean").Cf.events

(* A long adversarial-start lockstep run on K5: enough events to cover
   every message family, including the Remove/Grant/Reverse swap pass. *)
let test_conformance_lockstep () =
  let module Cf = Mdst_check.Conformance in
  let case =
    Cf.case_of_string
      "n=5;edges=0-1,0-2,0-3,0-4,1-2,1-3,1-4,2-3,2-4,3-4;seed=3;init=random;events=1500"
  in
  let r = Cf.Default.run_case case in
  Alcotest.(check int) "all events ran" 1500 r.Cf.events_run;
  match r.Cf.divergence with
  | None -> ()
  | Some d ->
      Alcotest.failf "divergence at event %d (%s): %s" d.Cf.index d.Cf.event
        d.Cf.detail

let test_explore_smoke () =
  let module X = Mdst_check.Explore in
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2); (0, 2) ] in
  List.iter
    (fun init ->
      let stats, vio = X.Default.dfs ~max_depth:6 ~max_configs:2_000 ~init g in
      check "explored more than the root" true (stats.X.configs > 1);
      match vio with
      | None -> ()
      | Some v ->
          Alcotest.failf "violation: %s" (Format.asprintf "%a" X.pp_violation v))
    [ `Clean; `Legitimate; `Random 4 ];
  match X.Default.walk ~steps:200 ~seed:11 ~init:`Random g with
  | Ok n -> Alcotest.(check int) "walk ran all steps" 200 n
  | Error e -> Alcotest.fail ("lockstep walk diverged: " ^ e)

(* Non-vacuity: the lockstep walk must notice a seeded protocol bug. *)
let test_explore_walk_catches_mutant () =
  let module X = Mdst_check.Explore in
  let module Mutation = Mdst_util.Mutation in
  let g = Graph.of_edges ~n:3 [ (0, 1); (1, 2) ] in
  Fun.protect ~finally:(fun () -> Mutation.force None) @@ fun () ->
  Mutation.force (Some [ "suppression-no-refresh" ]);
  match X.Suppressed.walk ~steps:300 ~seed:5 ~init:`Clean g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "suppression mutant not caught by the lockstep walk"

(* The full registry: every historical bug detected when forced on, every
   probe silent when forced off (same gate as `mdst_sim mutate` / CI). *)
let test_mutation_check () =
  let module M = Mdst_check.Mutants in
  List.iter
    (fun (o : M.outcome) ->
      check (o.M.name ^ ": detected when forced on") true o.M.caught;
      check (o.M.name ^ ": silent when forced off") true o.M.clean)
    (M.run_all ())

(* ---------------- shared suites ---------------- *)

let suite_cases =
  List.map
    (fun packed ->
      Alcotest.test_case (Suites.name packed) `Quick (fun () ->
          match Suites.check ~tests:50 ~seed:2 packed with
          | Property.Passed _ -> ()
          | Property.Falsified c ->
              Alcotest.fail (Property.render ~name:(Suites.name packed) c)))
    Suites.all

(* ---------------- parcheck ---------------- *)

module Parcheck = Mdst_check.Parcheck

let test_parcheck_conformance () =
  (* The merged (time, shard, seq) schedule of a 2-shard run must replay
     through the reference model AND be accepted by the sequential engine
     with exact final-state equality. *)
  let g = Mdst_graph.Gen.grid ~rows:3 ~cols:3 in
  let r =
    Parcheck.Default.run_case
      { Parcheck.graph = g; seed = 7; init = `Random; domains = 2; until = 25.0 }
  in
  (match r.Parcheck.failure with
  | None -> ()
  | Some why -> Alcotest.fail ("sharded schedule not conformant: " ^ why));
  check "replayed a non-trivial schedule" true (r.Parcheck.events > 100)

let test_parcheck_fingerprints () =
  let g = Mdst_graph.Gen.grid ~rows:3 ~cols:3 in
  let eq =
    Parcheck.Default.fingerprint_equivalence ~max_rounds:20_000 ~seed:7 ~init:`Random
      ~domains:[ 1; 2; 4 ] g
  in
  List.iter
    (fun (d, converged, _) -> check (Printf.sprintf "domains=%d converged" d) true converged)
    eq.Parcheck.per_domain;
  check "fingerprints agree across shard counts" true eq.Parcheck.agree

let () =
  Alcotest.run "check"
    [
      ( "driver",
        [
          Alcotest.test_case "passing property" `Quick test_passing_property;
          Alcotest.test_case "failure shrinks to local minimum" `Quick
            test_failing_property_shrinks;
          Alcotest.test_case "deterministic from seed" `Quick test_check_deterministic;
          Alcotest.test_case "check_exn" `Quick test_check_exn;
        ] );
      ( "gen",
        [
          Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "combinators" `Quick test_gen_combinators;
        ] );
      ( "shrink",
        [
          Alcotest.test_case "int" `Quick test_shrink_int;
          Alcotest.test_case "list" `Quick test_shrink_list;
          Alcotest.test_case "remove_vertex" `Quick test_remove_vertex;
          Alcotest.test_case "remap plan" `Quick test_remap_plan_without_vertex;
          Alcotest.test_case "joint case shrink" `Quick test_shrink_case_joint;
        ] );
      ( "format",
        [
          Alcotest.test_case "print/parse fixpoint" `Quick test_case_print_parse_fixpoint;
          Alcotest.test_case "rejects malformed" `Quick test_case_rejects_malformed;
        ] );
      ( "proto",
        [
          Alcotest.test_case "search-path spy not vacuous" `Quick test_searchpath_not_vacuous;
          Alcotest.test_case "convergence with Info suppression" `Quick
            test_suppressed_convergence;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "case print/parse fixpoint" `Quick test_conformance_format;
          Alcotest.test_case "lockstep on K5 adversarial start" `Quick
            test_conformance_lockstep;
        ] );
      ( "explore",
        [
          Alcotest.test_case "triangle DFS and walk" `Quick test_explore_smoke;
          Alcotest.test_case "walk catches seeded mutant" `Quick
            test_explore_walk_catches_mutant;
        ] );
      ("mutants", [ Alcotest.test_case "registry discriminates" `Quick test_mutation_check ]);
      ( "parcheck",
        [
          Alcotest.test_case "sharded schedule conformance" `Quick test_parcheck_conformance;
          Alcotest.test_case "fingerprint equivalence across shards" `Quick
            test_parcheck_fingerprints;
        ] );
      ("suites", suite_cases);
    ]

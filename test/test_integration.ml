(* Cross-library integration tests: the protocol against the exact solver
   and the FR oracle over randomized instances, differential behaviour of
   the ablation variants, robustness across latency models, and the paper's
   end-to-end guarantees.  These are the tests that tie Theorem 2, the
   self-stabilization definition, and the Δ*+1 bound together. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Tree = Mdst_graph.Tree
module Prng = Mdst_util.Prng
module Run = Mdst_core.Run
module Fr = Mdst_baseline.Fr
module Exact = Mdst_baseline.Exact
module Latency = Mdst_sim.Latency

let check = Alcotest.(check bool)

let fixpoint t = not (Fr.improvable t)

let converge ?(seed = 5) ?(init = `Random) ?latency graph =
  Run.converge ~seed ~init ?latency ~max_rounds:50_000 ~fixpoint graph

(* The headline guarantee, property-tested: random connected graph, random
   corrupted start, protocol result within one of the exact optimum. *)
let prop_protocol_within_one_of_optimum =
  QCheck.Test.make ~name:"protocol final degree <= Delta* + 1 (random graphs, random starts)"
    ~count:12
    QCheck.(pair (int_range 1 1000) (int_range 6 12))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi_connected (Prng.create (seed * 31)) ~n ~p:0.35 in
      let r = converge ~seed g in
      match (r.degree, Exact.solve g) with
      | Some d, Some e -> r.converged && d <= e.optimum + 1
      | _ -> false)

(* Protocol and centralized FR must agree at fixpoints: the protocol's final
   tree admits no FR improvement, and both land within the same band. *)
let prop_protocol_matches_fr_band =
  QCheck.Test.make ~name:"protocol tree is an FR fixpoint in the same band as FR's own"
    ~count:10
    QCheck.(int_range 1 500)
    (fun seed ->
      let g = Gen.erdos_renyi_connected (Prng.create (seed * 7)) ~n:12 ~p:0.3 in
      let r = converge ~seed g in
      match r.tree with
      | None -> false
      | Some t ->
          let fr = Tree.max_degree (Fr.approx_mdst g) in
          (not (Fr.improvable t)) && abs (Tree.max_degree t - fr) <= 1)

let test_structured_families_exact () =
  (* Families where Delta* is known: the protocol must land at Delta* or
     Delta*+1 from a corrupted start. *)
  let cases =
    [
      ("ring", Gen.ring 10, 2);
      ("wheel", Gen.wheel 10, 2);
      ("complete", Graph.complete 8, 2);
      ("petersen", Gen.petersen (), 2);
      ("grid", Gen.grid ~rows:3 ~cols:4, 2);
      ("hypercube", Gen.hypercube 3, 2);
      ("K_{2,5}", Gen.complete_bipartite 2 5, 3);
      ("star", Gen.star 9, 8);
    ]
  in
  List.iter
    (fun (name, g, delta_star) ->
      let r = converge ~seed:3 g in
      check (name ^ " converged") true r.converged;
      match r.degree with
      | Some d -> check (Printf.sprintf "%s degree %d within %d+1" name d delta_star) true (d <= delta_star + 1)
      | None -> Alcotest.fail (name ^ ": no tree"))
    cases

let test_latency_models_all_converge () =
  let g = Gen.erdos_renyi_connected (Prng.create 12) ~n:12 ~p:0.3 in
  let optimum = match Exact.solve g with Some e -> e.optimum | None -> Alcotest.fail "exact" in
  List.iter
    (fun name ->
      let r = converge ~seed:6 ~latency:(Latency.by_name name 3) g in
      check (name ^ " converged") true r.converged;
      match r.degree with
      | Some d -> check (name ^ " within bound") true (d <= optimum + 1)
      | None -> Alcotest.fail (name ^ " no tree"))
    Latency.names

let test_recovery_from_every_fraction () =
  let g = Gen.erdos_renyi_connected (Prng.create 20) ~n:14 ~p:0.3 in
  List.iter
    (fun fraction ->
      let r = Run.converge_corrupt_recover ~seed:2 ~fixpoint ~fraction g in
      check (Printf.sprintf "recovered from %.0f%%" (fraction *. 100.0)) true
        (r.recovery_rounds <> None))
    [ 0.25; 0.5; 1.0 ]

let test_deblock_ablation_differential () =
  (* On K_{2,6} reaching Delta*+1 needs unblocking chains; without Deblock
     the run may stall higher, never lower.  Differentially: full >= ablated
     never happens (ablated cannot beat full). *)
  let module NoDeblock = Run.Runner (Mdst_core.Proto.No_deblock) in
  let g = Gen.complete_bipartite 2 6 in
  let full = converge ~seed:4 ~init:`Clean g in
  let ablated = NoDeblock.converge ~seed:4 ~init:`Clean ~quiet_rounds:200 g in
  match (full.degree, ablated.degree) with
  | Some df, Some da -> check "ablated never better" true (da >= df)
  | _ -> Alcotest.fail "missing results"

let test_prune_ablation_equivalent_quality () =
  let module NoPrune = Run.Runner (Mdst_core.Proto.No_prune) in
  let g = Gen.erdos_renyi_connected (Prng.create 9) ~n:10 ~p:0.35 in
  let pruned = converge ~seed:8 ~init:`Clean g in
  let noisy = NoPrune.converge ~seed:8 ~init:`Clean ~fixpoint g in
  check "both converge" true (pruned.converged && noisy.converged);
  (* Different search schedules may land on different FR fixpoints, but both
     sit in the same [Delta*, Delta*+1] band. *)
  let optimum = match Exact.solve g with Some e -> e.optimum | None -> Alcotest.fail "exact" in
  match (pruned.degree, noisy.degree) with
  | Some a, Some b ->
      check "pruned within band" true (a <= optimum + 1);
      check "no-prune within band" true (b <= optimum + 1)
  | _ -> Alcotest.fail "missing results"

let test_message_size_bound () =
  (* Lemma 5: messages carry at most O(n log n) bits.  Generous constant. *)
  let n = 16 in
  let g = Gen.erdos_renyi_connected (Prng.create 15) ~n ~p:0.3 in
  let r = converge ~seed:3 g in
  let logn = Mdst_util.Sizing.bits_for_card n in
  check "message size O(n log n)" true (r.max_msg_bits <= 8 * n * logn)

let test_state_size_bound () =
  let n = 16 in
  let g = Gen.erdos_renyi_connected (Prng.create 16) ~n ~p:0.3 in
  let r = converge ~seed:3 g in
  let delta = Graph.max_degree g in
  let logn = Mdst_util.Sizing.bits_for_card n in
  check "state size O(delta log n)" true (r.max_state_bits <= 16 * (delta + 1) * logn)

let test_trajectory_monotone_at_fixpoint () =
  (* Once converged, re-running the stop predicate keeps holding (closure of
     the legitimacy predicate, Definition 1(i)). *)
  let g = Gen.grid ~rows:3 ~cols:3 in
  let engine = Run.make_engine ~seed:31 ~init:`Clean g in
  let stop = Run.make_stop ~fixpoint () in
  let o1 = Run.Engine.run engine ~max_rounds:30_000 ~check_every:2 ~stop () in
  check "converged" true o1.converged;
  let deg1 = Mdst_core.Checker.tree_degree_now g (Run.Engine.states engine) in
  (* Keep executing: the tree must not change any more. *)
  for _ = 1 to 20_000 do
    ignore (Run.Engine.step engine)
  done;
  let deg2 = Mdst_core.Checker.tree_degree_now g (Run.Engine.states engine) in
  Alcotest.(check (option int)) "closure: tree stable after convergence" deg1 deg2;
  check "still legitimate" true
    (Mdst_core.Checker.legitimate g (Run.Engine.states engine))

let prop_transplant_identity =
  QCheck.Test.make ~name:"transplant onto the same graph is the identity" ~count:30
    QCheck.(pair small_int (int_range 5 14))
    (fun (seed, n) ->
      let g = Gen.erdos_renyi_connected (Prng.create seed) ~n ~p:0.3 in
      let engine = Run.make_engine ~seed g in
      for _ = 1 to 2000 do
        ignore (Run.Engine.step engine)
      done;
      let states = Run.Engine.states engine in
      let moved = Mdst_core.Transplant.states ~old_graph:g ~new_graph:g states in
      Array.for_all2 (fun (a : Mdst_core.State.t) b -> a = b) states moved)

let prop_diverse_families_converge =
  (* One property spanning several generator families: corrupted start,
     convergence within the band on whatever family the seed picks. *)
  QCheck.Test.make ~name:"protocol converges within band across graph families" ~count:10
    QCheck.(pair (int_range 1 10_000) (int_range 0 3))
    (fun (seed, fam) ->
      let rng = Prng.create seed in
      let g =
        match fam with
        | 0 -> Gen.random_regular rng ~n:10 ~d:3
        | 1 -> Gen.random_geometric_connected rng ~n:10 ~radius:0.5
        | 2 -> Gen.barabasi_albert rng ~n:10 ~k:2
        | _ -> Gen.random_connected rng ~n:10 ~m:16
      in
      let r = converge ~seed g in
      match (r.degree, Exact.solve g) with
      | Some d, Some e -> r.converged && d <= e.optimum + 1
      | _ -> false)

let test_run_respects_max_rounds () =
  let g = Gen.erdos_renyi_connected (Prng.create 3) ~n:16 ~p:0.3 in
  let r = Run.converge ~seed:1 ~init:`Random ~max_rounds:20 ~fixpoint g in
  check "not converged in 20 rounds" false r.converged;
  check "rounds bounded" true (r.rounds <= 40)

let test_messages_sum_to_total () =
  let g = Gen.ring 8 in
  let r = converge ~seed:2 g in
  Alcotest.(check int) "per-label counts sum to total" r.total_messages
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.messages)

let test_seed_determinism_end_to_end () =
  let g = Gen.erdos_renyi_connected (Prng.create 44) ~n:12 ~p:0.3 in
  let r1 = converge ~seed:9 g and r2 = converge ~seed:9 g in
  Alcotest.(check int) "same rounds" r1.rounds r2.rounds;
  Alcotest.(check int) "same messages" r1.total_messages r2.total_messages;
  check "same tree" true
    (match (r1.tree, r2.tree) with
    | Some a, Some b -> Tree.equal_edges a b
    | _ -> false)

let test_schedule_fuzz () =
  (* One small graph, many random schedules (seed x latency model): the
     guarantee must hold under every interleaving we can sample. *)
  let g = Gen.erdos_renyi_connected (Prng.create 77) ~n:9 ~p:0.4 in
  let optimum =
    match Exact.solve g with Some e -> e.optimum | None -> Alcotest.fail "exact"
  in
  List.iter
    (fun model ->
      List.iter
        (fun seed ->
          let latency = Latency.by_name model (seed * 3) in
          let r = converge ~seed ~latency g in
          match r.degree with
          | Some d ->
              check
                (Printf.sprintf "%s seed %d within band" model seed)
                true
                (r.converged && d <= optimum + 1)
          | None -> Alcotest.fail (Printf.sprintf "%s seed %d: no tree" model seed))
        (List.init 12 (fun i -> 1000 + (13 * i))))
    [ "uniform"; "exponential"; "slow-links" ]

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "integration"
    [
      ( "guarantee",
        [
          q prop_protocol_within_one_of_optimum;
          q prop_protocol_matches_fr_band;
          Alcotest.test_case "structured families" `Slow test_structured_families_exact;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "all latency models" `Slow test_latency_models_all_converge;
          Alcotest.test_case "schedule fuzz (36 interleavings)" `Slow test_schedule_fuzz;
          Alcotest.test_case "recovery at all fractions" `Slow test_recovery_from_every_fraction;
          Alcotest.test_case "closure after convergence" `Slow test_trajectory_monotone_at_fixpoint;
          Alcotest.test_case "deterministic end-to-end" `Quick test_seed_determinism_end_to_end;
          Alcotest.test_case "max_rounds respected" `Quick test_run_respects_max_rounds;
          Alcotest.test_case "message accounting consistent" `Quick test_messages_sum_to_total;
          q prop_transplant_identity;
          q prop_diverse_families_converge;
        ] );
      ( "ablations",
        [
          Alcotest.test_case "deblock differential" `Quick test_deblock_ablation_differential;
          Alcotest.test_case "prune equivalence" `Quick test_prune_ablation_equivalent_quality;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "message size bound" `Quick test_message_size_bound;
          Alcotest.test_case "state size bound" `Quick test_state_size_bound;
        ] );
    ]

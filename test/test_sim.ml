(* Tests for the discrete-event simulator: latency models, metrics, and the
   engine's FIFO / determinism / round-accounting / fault-injection
   contracts, exercised through small purpose-built automata. *)

module Prng = Mdst_util.Prng
module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Latency = Mdst_sim.Latency
module Metrics = Mdst_sim.Metrics
module Node = Mdst_sim.Node

let check = Alcotest.(check bool)

(* ---------------- Latency ---------------- *)

let test_latency_positive () =
  let rng = Prng.create 3 in
  List.iter
    (fun name ->
      let m = Latency.by_name name 9 in
      for src = 0 to 3 do
        for dst = 0 to 3 do
          if src <> dst then
            check (name ^ " positive") true (Latency.sample m rng ~src ~dst > 0.0)
        done
      done)
    Latency.names

let test_latency_constant () =
  let rng = Prng.create 3 in
  let m = Latency.constant 2.0 in
  Alcotest.(check (float 0.0)) "constant" 2.0 (Latency.sample m rng ~src:0 ~dst:1)

let test_latency_slow_links_deterministic () =
  let m = Latency.slow_links ~factor:10.0 ~fraction:0.5 ~base:(Latency.constant 1.0) 7 in
  let rng = Prng.create 1 in
  let a = Latency.sample m rng ~src:0 ~dst:1 in
  let b = Latency.sample m rng ~src:0 ~dst:1 in
  Alcotest.(check (float 0.0)) "same link same slowdown" a b

let test_latency_unknown () =
  check "unknown model raises" true
    (try
       ignore (Latency.by_name "warp" 1);
       false
     with Invalid_argument _ -> true)

let test_latency_uniform_bounds () =
  let rng = Prng.create 8 in
  let m = Latency.uniform ~lo:0.5 ~hi:1.5 () in
  for _ = 1 to 2000 do
    let d = Latency.sample m rng ~src:0 ~dst:1 in
    check "in [lo,hi]" true (d >= 0.5 && d <= 1.5)
  done

let test_latency_exponential_mean () =
  let rng = Prng.create 9 in
  let m = Latency.exponential ~mean:2.0 () in
  let n = 30_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Latency.sample m rng ~src:0 ~dst:1
  done;
  let mean = !sum /. float_of_int n in
  check "mean near 2.0" true (abs_float (mean -. 2.0) < 0.1)

let test_latency_node_skew_is_per_receiver () =
  let m = Latency.node_skew ~max_factor:8.0 ~base:(Latency.constant 1.0) 5 in
  let rng = Prng.create 1 in
  let to_a = Latency.sample m rng ~src:0 ~dst:1 in
  let to_a' = Latency.sample m rng ~src:2 ~dst:1 in
  Alcotest.(check (float 1e-9)) "same receiver, same factor" to_a to_a'

(* ---------------- Metrics ---------------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.record_send m ~label:"a" ~bits:10;
  Metrics.record_send m ~label:"a" ~bits:30;
  Metrics.record_send m ~label:"b" ~bits:5;
  Metrics.record_delivery m;
  Metrics.record_state_bits m 12;
  Metrics.record_state_bits m 7;
  Alcotest.(check int) "total messages" 3 (Metrics.total_messages m);
  Alcotest.(check int) "deliveries" 1 (Metrics.deliveries m);
  Alcotest.(check int) "total bits" 45 (Metrics.total_bits m);
  Alcotest.(check (list (pair string int))) "by label" [ ("a", 2); ("b", 1) ]
    (Metrics.messages_by_label m);
  Alcotest.(check int) "max state bits" 12 (Metrics.max_state_bits m);
  Alcotest.(check int) "max msg bits" 30 (Metrics.max_msg_bits m);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.total_messages m)

(* ---------------- A toy automaton: sequence-number flooding ---------------- *)

(* Each node sends an incrementing counter to all neighbours on every tick
   and records, per neighbour, every value received.  FIFO means each
   neighbour's received list must be strictly increasing. *)
module Flood = struct
  type state = { next : int; received : (int * int) list (* src, value *) }

  type msg = int

  let name = "flood"

  let init _ = { next = 0; received = [] }

  let random_state _ rng = { next = Prng.int rng 100; received = [] }

  let random_msg _ rng = Some (Prng.int rng 100)

  let on_tick ctx st =
    Array.iter (fun nb -> ctx.Node.send nb st.next) ctx.Node.neighbors;
    { st with next = st.next + 1 }

  let on_message _ctx st ~src v = { st with received = (src, v) :: st.received }

  let msg_label _ = "flood"

  let msg_bits ~n:_ _ = 8

  let state_bits ~n:_ st = 8 * (1 + List.length st.received)
end

module FloodEngine = Mdst_sim.Engine.Make (Flood)

let run_flood ?latency ~seed ~steps graph =
  let e = FloodEngine.create ?latency ~seed graph in
  for _ = 1 to steps do
    ignore (FloodEngine.step e)
  done;
  e

let test_engine_fifo () =
  (* Exponential latencies sample out of order; FIFO must still hold. *)
  let graph = Gen.ring 6 in
  let e = run_flood ~latency:(Latency.exponential ()) ~seed:5 ~steps:4000 graph in
  for v = 0 to 5 do
    let st = FloodEngine.state e v in
    let per_src = Hashtbl.create 4 in
    List.iter
      (fun (src, value) ->
        let prev = try Hashtbl.find per_src src with Not_found -> max_int in
        (* received list is newest-first: each older value must be smaller *)
        check "fifo order" true (value < prev);
        Hashtbl.replace per_src src value)
      (FloodEngine.state e v).received;
    ignore st
  done

let test_engine_scales_without_quadratic_memory () =
  (* n = 2048: a dense per-ordered-pair float matrix alone would be
     n^2 * 8 bytes = 33.5 MB.  The sparse per-channel FIFO floors keep the
     whole engine — graph, heap, states, plus 10k steps of traffic — well
     under half of that. *)
  let graph = Gen.erdos_renyi_connected (Prng.create 1) ~n:2048 ~p:(4.0 /. 2047.0) in
  Gc.full_major ();
  let before = (Gc.stat ()).Gc.live_words in
  let e = run_flood ~seed:7 ~steps:10_000 graph in
  Gc.full_major ();
  let after = (Gc.stat ()).Gc.live_words in
  let delta_bytes = (after - before) * (Sys.word_size / 8) in
  check "engine advanced" true (FloodEngine.now e > 0.0);
  check "no quadratic engine memory (< 16 MB live)" true (delta_bytes < 16 * 1024 * 1024)

let test_engine_deterministic () =
  let graph = Gen.grid ~rows:3 ~cols:3 in
  let run () =
    let e = run_flood ~seed:11 ~steps:2000 graph in
    Array.to_list (Array.map (fun (s : Flood.state) -> s.received) (FloodEngine.states e))
  in
  check "same seed, same execution" true (run () = run ())

let test_engine_seed_changes_execution () =
  let graph = Gen.grid ~rows:3 ~cols:3 in
  let run seed =
    let e = run_flood ~seed ~steps:2000 graph in
    Array.to_list (Array.map (fun (s : Flood.state) -> s.received) (FloodEngine.states e))
  in
  check "different seed, different execution" true (run 1 <> run 2)

let test_engine_rounds_advance () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  Alcotest.(check int) "starts at round 0" 0 (FloodEngine.rounds e);
  for _ = 1 to 500 do
    ignore (FloodEngine.step e)
  done;
  check "rounds advanced" true (FloodEngine.rounds e > 5);
  check "virtual time advanced" true (FloodEngine.now e > 0.0)

let test_engine_all_nodes_tick () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  for _ = 1 to 300 do
    ignore (FloodEngine.step e)
  done;
  Array.iter
    (fun (s : Flood.state) -> check "every node ticked" true (s.next > 0))
    (FloodEngine.states e)

let test_engine_messages_flow () =
  let graph = Gen.ring 5 in
  let e = run_flood ~seed:3 ~steps:500 graph in
  Array.iter
    (fun (s : Flood.state) -> check "every node received" true (List.length s.received > 0))
    (FloodEngine.states e);
  check "metrics counted sends" true (Metrics.total_messages (FloodEngine.metrics e) > 0)

let test_engine_run_stop () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  let outcome =
    FloodEngine.run e ~max_rounds:10_000 ~stop:(fun t -> FloodEngine.rounds t >= 50) ()
  in
  check "stopped by predicate" true outcome.converged;
  check "stopped promptly" true (FloodEngine.rounds e < 80)

let test_engine_max_rounds () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  let outcome = FloodEngine.run e ~max_rounds:30 ~stop:(fun _ -> false) () in
  check "did not converge" false outcome.converged;
  check "bounded" true (FloodEngine.rounds e <= 40)

let test_engine_corrupt () =
  let graph = Gen.ring 8 in
  let e = FloodEngine.create ~seed:3 graph in
  let hit = FloodEngine.corrupt e ~fraction:0.5 () in
  check "about half corrupted" true (hit >= 3 && hit <= 5);
  let full = FloodEngine.corrupt e ~fraction:1.0 () in
  Alcotest.(check int) "all corrupted" 8 full

let test_engine_inject_and_in_flight () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  check "nothing in flight initially" false (FloodEngine.in_flight_exists e (fun v -> v = 424242));
  FloodEngine.inject e ~src:0 ~dst:1 424242;
  check "injected message visible" true (FloodEngine.in_flight_exists e (fun v -> v = 424242));
  check "inject rejects non-adjacent" true
    (try
       FloodEngine.inject e ~src:0 ~dst:2 1;
       false
     with Invalid_argument _ -> true)

let test_engine_set_state () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  FloodEngine.set_state e 2 { Flood.next = 99; received = [] };
  Alcotest.(check int) "set_state visible" 99 (FloodEngine.state e 2).Flood.next

let test_engine_rejects_disconnected () =
  let g = Graph.of_edges ~n:4 [ (0, 1); (2, 3) ] in
  check "disconnected rejected" true
    (try
       ignore (FloodEngine.create g);
       false
     with Invalid_argument _ -> true)

(* Causal-depth rounds: a message chain across a path of length L needs at
   least L rounds. *)
module Relay = struct
  type state = { hops : int option }

  type msg = int

  let name = "relay"

  let init _ = { hops = None }

  let random_state _ _ = { hops = None }

  let random_msg _ _ = None

  let on_tick ctx st =
    (* Only node 0 fires, once. *)
    if ctx.Node.id = 0 && st.hops = None then begin
      Array.iter (fun nb -> if nb > ctx.Node.node then ctx.Node.send nb 1) ctx.Node.neighbors;
      { hops = Some 0 }
    end
    else st

  let on_message ctx st ~src:_ h =
    if st.hops = None then begin
      Array.iter (fun nb -> if nb > ctx.Node.node then ctx.Node.send nb (h + 1)) ctx.Node.neighbors;
      { hops = Some h }
    end
    else st

  let msg_label _ = "relay"

  let msg_bits ~n:_ _ = 8

  let state_bits ~n:_ _ = 8
end

module RelayEngine = Mdst_sim.Engine.Make (Relay)

let test_engine_observer () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  let ticks = ref 0 and delivers = ref 0 in
  FloodEngine.observe e (function
    | Mdst_sim.Engine.Obs_tick _ -> incr ticks
    | Mdst_sim.Engine.Obs_deliver { label; _ } ->
        Alcotest.(check string) "label" "flood" label;
        incr delivers
    | Mdst_sim.Engine.Obs_fault _ -> Alcotest.fail "no faults installed");
  for _ = 1 to 400 do
    ignore (FloodEngine.step e)
  done;
  check "ticks observed" true (!ticks > 0);
  check "deliveries observed" true (!delivers > 0);
  Alcotest.(check int) "every event observed" 400 (!ticks + !delivers);
  FloodEngine.unobserve e;
  let before = !ticks + !delivers in
  for _ = 1 to 50 do
    ignore (FloodEngine.step e)
  done;
  Alcotest.(check int) "observer detached" before (!ticks + !delivers)

(* ---------------- Trace ---------------- *)

module Trace = Mdst_sim.Trace

let test_trace_records_and_filters () =
  let graph = Gen.ring 5 in
  let e = FloodEngine.create ~seed:3 graph in
  let trace = Trace.create ~keep:(fun _ -> true) () in
  FloodEngine.observe e (Trace.record trace);
  for _ = 1 to 200 do
    ignore (FloodEngine.step e)
  done;
  Alcotest.(check int) "everything recorded" 200 (Trace.recorded trace);
  let labels = Trace.counts_by_label trace in
  check "flood label counted" true (List.mem_assoc "flood" labels);
  let only_msgs = Trace.create () in
  (* default filter keeps non-info deliveries only *)
  Trace.record only_msgs (Mdst_sim.Engine.Obs_tick { node = 0; round = 1; time = 0.0 });
  Alcotest.(check int) "ticks filtered" 0 (Trace.recorded only_msgs);
  Trace.record only_msgs
    (Mdst_sim.Engine.Obs_deliver { src = 0; dst = 1; label = "info"; round = 1; time = 0.0 });
  Alcotest.(check int) "info filtered" 0 (Trace.recorded only_msgs);
  Trace.record only_msgs
    (Mdst_sim.Engine.Obs_deliver { src = 0; dst = 1; label = "search"; round = 1; time = 0.0 });
  Alcotest.(check int) "protocol msg kept" 1 (Trace.recorded only_msgs)

let test_trace_ring_eviction () =
  let trace = Trace.create ~capacity:4 ~keep:(fun _ -> true) () in
  for i = 1 to 10 do
    Trace.record trace
      (Mdst_sim.Engine.Obs_deliver { src = i; dst = 0; label = "m"; round = i; time = 0.0 })
  done;
  Alcotest.(check int) "all recorded" 10 (Trace.recorded trace);
  let evs = Trace.events trace in
  Alcotest.(check int) "only capacity retained" 4 (List.length evs);
  (match List.hd evs with
  | Mdst_sim.Engine.Obs_deliver { src; _ } -> Alcotest.(check int) "oldest retained is #7" 7 src
  | _ -> Alcotest.fail "unexpected event");
  check "render limit" true
    (String.length (Trace.render ~limit:2 trace) < String.length (Trace.render trace));
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (List.length (Trace.events trace))

let test_rounds_reflect_causal_depth () =
  let n = 12 in
  let graph = Gen.path n in
  let e = RelayEngine.create ~seed:2 graph in
  let outcome =
    RelayEngine.run e ~max_rounds:10_000
      ~stop:(fun t -> (RelayEngine.state t (n - 1)).Relay.hops <> None)
      ()
  in
  check "chain completed" true outcome.converged;
  (* The chain is n-1 messages deep, so at least n-1 rounds must have
     elapsed by the causal-depth definition. *)
  check "rounds >= chain depth" true (RelayEngine.rounds e >= n - 1)

(* ---------------- Latency lookahead ---------------- *)

let test_latency_min_delay () =
  (* The parallel engine's conservative lookahead is exactly min_delay: a
     zero or negative value would deadlock or unsound-execute the shards,
     and the uniform default's 0.5 floor is what the shipped BENCH numbers
     were measured under. *)
  Alcotest.(check (float 0.0)) "uniform default floor" 0.5
    (Latency.min_delay (Latency.by_name "uniform" 3));
  Alcotest.(check (float 0.0)) "constant" 2.0 (Latency.min_delay (Latency.constant 2.0));
  List.iter
    (fun name ->
      check (name ^ " lookahead positive") true (Latency.min_delay (Latency.by_name name 3) > 0.0))
    Latency.names;
  (* min_delay must actually bound the samples. *)
  let rng = Prng.create 17 in
  List.iter
    (fun name ->
      let m = Latency.by_name name 9 in
      let d = Latency.min_delay m in
      for _ = 1 to 200 do
        check (name ^ " sample >= min_delay") true (Latency.sample m rng ~src:0 ~dst:1 >= d)
      done)
    Latency.names

(* ---------------- Shard scaffolding ---------------- *)

module Shard = Mdst_sim.Shard

let test_shard_key_roundtrip () =
  let cases =
    [ (0, 0); (1, 0); (0, 1); (37, 12345); (Shard.max_shards - 1, (1 lsl Shard.seq_bits) - 1) ]
  in
  List.iter
    (fun (shard, seq) ->
      let k = Shard.key ~shard ~seq in
      Alcotest.(check int) "shard survives" shard (Shard.key_shard k);
      Alcotest.(check int) "seq survives" seq (Shard.key_seq k);
      check "key non-negative" true (k >= 0))
    cases

let test_shard_key_order () =
  (* Int comparison on keys = lexicographic (shard, seq): the heap's
     tie-break relies on it. *)
  check "same shard, seq orders" true (Shard.key ~shard:3 ~seq:5 < Shard.key ~shard:3 ~seq:6);
  check "shard dominates seq" true
    (Shard.key ~shard:2 ~seq:((1 lsl Shard.seq_bits) - 1) < Shard.key ~shard:3 ~seq:0)

let test_shard_clocks () =
  let c = Shard.Clocks.create 2 in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Shard.Clocks.get c 0);
  Shard.Clocks.advance c 0 1.5;
  Alcotest.(check (float 0.0)) "advances" 1.5 (Shard.Clocks.get c 0);
  Shard.Clocks.advance c 0 1.0;
  Alcotest.(check (float 0.0)) "never moves backwards" 1.5 (Shard.Clocks.get c 0);
  (* Regression: clocks at or above virtual time 2.0 (IEEE payload bit 62)
     must keep advancing — an int-packed representation silently dropped
     every publish past 2.0 and the shards deadlocked. *)
  List.iter
    (fun v ->
      Shard.Clocks.advance c 1 v;
      Alcotest.(check (float 0.0)) (Printf.sprintf "reaches %g" v) v (Shard.Clocks.get c 1))
    [ 1.9; 2.0; 2.5; 1024.0; 1e9 ];
  check "negative rejected" true
    (try
       Shard.Clocks.advance c 0 (-1.0);
       false
     with Invalid_argument _ -> true);
  Shard.Clocks.infinity_ c 0;
  check "poisoned clock is infinite" true (Shard.Clocks.get c 0 = infinity)

let test_shard_in_shards () =
  (* Path 0-1-2-3 split into pairs: only the middle edge crosses. *)
  let g = Graph.of_edges ~n:4 [ (0, 1); (1, 2); (2, 3) ] in
  let adj = Shard.in_shards g [| 0; 0; 1; 1 |] ~k:2 in
  check "0 watches 1" true (adj.(0) = [| 1 |]);
  check "1 watches 0" true (adj.(1) = [| 0 |]);
  (* All in one shard: nothing to watch. *)
  let adj1 = Shard.in_shards g [| 0; 0; 0; 0 |] ~k:1 in
  check "no peers at k=1" true (adj1.(0) = [||])

let () =
  Alcotest.run "sim"
    [
      ( "latency",
        [
          Alcotest.test_case "positive everywhere" `Quick test_latency_positive;
          Alcotest.test_case "constant" `Quick test_latency_constant;
          Alcotest.test_case "slow links deterministic" `Quick test_latency_slow_links_deterministic;
          Alcotest.test_case "unknown raises" `Quick test_latency_unknown;
          Alcotest.test_case "uniform bounds" `Quick test_latency_uniform_bounds;
          Alcotest.test_case "exponential mean" `Quick test_latency_exponential_mean;
          Alcotest.test_case "node skew per receiver" `Quick test_latency_node_skew_is_per_receiver;
          Alcotest.test_case "min_delay bounds samples" `Quick test_latency_min_delay;
        ] );
      ( "shard",
        [
          Alcotest.test_case "key roundtrip" `Quick test_shard_key_roundtrip;
          Alcotest.test_case "key lexicographic order" `Quick test_shard_key_order;
          Alcotest.test_case "clocks monotone, no 2.0 cliff" `Quick test_shard_clocks;
          Alcotest.test_case "cross-shard adjacency" `Quick test_shard_in_shards;
        ] );
      ("metrics", [ Alcotest.test_case "accounting" `Quick test_metrics ]);
      ( "engine",
        [
          Alcotest.test_case "fifo under reordering latency" `Quick test_engine_fifo;
          Alcotest.test_case "scales without quadratic memory" `Quick test_engine_scales_without_quadratic_memory;
          Alcotest.test_case "deterministic per seed" `Quick test_engine_deterministic;
          Alcotest.test_case "seed changes execution" `Quick test_engine_seed_changes_execution;
          Alcotest.test_case "rounds advance" `Quick test_engine_rounds_advance;
          Alcotest.test_case "all nodes tick" `Quick test_engine_all_nodes_tick;
          Alcotest.test_case "messages flow + metrics" `Quick test_engine_messages_flow;
          Alcotest.test_case "run stops on predicate" `Quick test_engine_run_stop;
          Alcotest.test_case "run respects max_rounds" `Quick test_engine_max_rounds;
          Alcotest.test_case "corrupt counts" `Quick test_engine_corrupt;
          Alcotest.test_case "inject + in_flight" `Quick test_engine_inject_and_in_flight;
          Alcotest.test_case "set_state" `Quick test_engine_set_state;
          Alcotest.test_case "rejects disconnected" `Quick test_engine_rejects_disconnected;
          Alcotest.test_case "observer hook" `Quick test_engine_observer;
          Alcotest.test_case "rounds = causal depth" `Quick test_rounds_reflect_causal_depth;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records and filters" `Quick test_trace_records_and_filters;
          Alcotest.test_case "ring eviction" `Quick test_trace_ring_eviction;
        ] );
    ]

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Union_find = Mdst_graph.Union_find
module Algo = Mdst_graph.Algo

type result = { optimum : int; tree : Mdst_graph.Tree.t; expansions : int }

exception Budget_exhausted

exception Found of (int * int) list

(* Decision procedure: spanning tree with all degrees <= [limit]?  Classic
   include/exclude backtracking over the edge array with three prunes:
   cycle edges are never included, degree budgets cut the include branch,
   and a count argument cuts the exclude branch (fewer usable edges left
   than components still to merge). *)
let exists_tree graph ~limit ~budget ~expansions =
  let n = Graph.n graph in
  let edges = Graph.edges graph in
  let m = Array.length edges in
  let deg = Array.make n 0 in
  let rec go uf used acc i =
    incr expansions;
    if !expansions > budget then raise Budget_exhausted;
    if used = n - 1 then raise (Found acc);
    if i >= m then ()
    else begin
      let components = Union_find.count uf in
      if m - i >= components - 1 then begin
        let u, v = edges.(i) in
        (* Include branch. *)
        if deg.(u) < limit && deg.(v) < limit && not (Union_find.same uf u v) then begin
          let uf' = Union_find.copy uf in
          ignore (Union_find.union uf' u v);
          deg.(u) <- deg.(u) + 1;
          deg.(v) <- deg.(v) + 1;
          go uf' (used + 1) ((u, v) :: acc) (i + 1);
          deg.(u) <- deg.(u) - 1;
          deg.(v) <- deg.(v) - 1
        end;
        (* Exclude branch. *)
        go uf used acc (i + 1)
      end
    end
  in
  match go (Union_find.create n) 0 [] 0 with
  | () -> None
  | exception Found edges -> Some edges

let lower_bound graph =
  let n = Graph.n graph in
  if n <= 2 then max 1 (n - 1)
  else begin
    (* deg_T(v) >= number of components of G - v, for every v. *)
    let best = ref 2 in
    for v = 0 to n - 1 do
      let remaining =
        Graph.fold_edges graph ~init:[] ~f:(fun acc a b ->
            if a = v || b = v then acc else (a, b) :: acc)
      in
      let uf = Union_find.create n in
      List.iter (fun (a, b) -> ignore (Union_find.union uf a b)) remaining;
      (* Components among the n-1 nodes other than v. *)
      let module IS = Set.Make (Int) in
      let reps = ref IS.empty in
      for u = 0 to n - 1 do
        if u <> v then reps := IS.add (Union_find.find uf u) !reps
      done;
      if IS.cardinal !reps > !best then best := IS.cardinal !reps
    done;
    !best
  end

let spanning_tree_with_degree ?(budget = 5_000_000) graph d =
  if Graph.n graph = 0 || not (Algo.is_connected graph) then
    invalid_arg "Exact: graph must be connected and non-empty";
  let expansions = ref 0 in
  match exists_tree graph ~limit:d ~budget ~expansions with
  | Some edges -> Some (Tree.of_edge_list graph ~root:(Graph.min_id_node graph) edges)
  | None -> None
  | exception Budget_exhausted -> None

let solve ?(budget = 5_000_000) graph =
  if Graph.n graph = 0 || not (Algo.is_connected graph) then
    invalid_arg "Exact: graph must be connected and non-empty";
  let n = Graph.n graph in
  if n = 1 then
    Some { optimum = 0; tree = Tree.of_parents graph ~root:0 [| 0 |]; expansions = 0 }
  else begin
    let expansions = ref 0 in
    let rec search d =
      if d > n - 1 then None
      else
        match exists_tree graph ~limit:d ~budget ~expansions with
        | Some edges ->
            let tree = Tree.of_edge_list graph ~root:(Graph.min_id_node graph) edges in
            Some { optimum = Tree.max_degree tree; tree; expansions = !expansions }
        | None -> search (d + 1)
        | exception Budget_exhausted -> None
    in
    search (lower_bound graph)
  end

(** Sequential Fürer–Raghavachari local search (SODA'92 / J.Alg'94): the
    algorithm the paper builds on, used here both as the centralized
    comparator and as the oracle that decides whether a tree is at an
    improvement fixpoint.

    An {e improvement} swaps a non-tree edge [e = {u,v}] for a tree edge of
    the fundamental cycle C_e incident to a node [w] of maximal degree,
    provided [deg w >= max(deg u, deg v) + 2] (the paper's Eq. 1).  When the
    candidate endpoints have degree [k - 1] they are {e blocking} and the
    algorithm first reduces their degree recursively.  At the fixpoint the
    tree degree is at most Δ* + 1. *)

val improve_once : Mdst_graph.Tree.t -> Mdst_graph.Tree.t option
(** One improvement of some maximum-degree node, unblocking recursively if
    needed; [None] when the tree is at the fixpoint. *)

val improvable : Mdst_graph.Tree.t -> bool

val run : Mdst_graph.Tree.t -> Mdst_graph.Tree.t * int
(** Iterate {!improve_once} to the fixpoint; also returns the number of
    improvements applied. *)

val approx_mdst : ?root:int -> Mdst_graph.Graph.t -> Mdst_graph.Tree.t
(** Start from a BFS tree and run to the fixpoint: a spanning tree of
    degree at most Δ* + 1. *)

val reduce_node_once :
  Mdst_graph.Tree.t -> target:int -> visited:int list -> Mdst_graph.Tree.t option
(** Try to lower [target]'s tree degree by one without raising any node to
    [deg target] or beyond; recursive unblocking skips nodes in [visited].
    Exposed for tests and for the ablation benchmark (E11). *)

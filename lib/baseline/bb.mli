(** A distributed, {e non-self-stabilizing}, token-serialized MDST algorithm
    in the style of Blin–Butelle [3] — the comparator the paper contrasts
    itself with (§1, "Our results").

    Faithful to [3] in the properties the paper argues about, simplified in
    the bookkeeping:

    - improvements are {e serialized}: the root runs one phase at a time —
      gather (recompute the tree degree k and refresh subtree-membership
      tables), query (collect candidate improving edges), probe (discover
      one fundamental cycle), swap, repeat.  No two improvements ever run
      concurrently, which is exactly the behaviour the paper's
      fundamental-cycle design improves on (experiment E14, cf. E6);
    - every node stores the identifier set of its subtree per child (the
      membership information of [3]): Θ(n log n) bits on path-ish trees —
      metered and compared against the paper's O(δ log n) state;
    - recursive unblocking is not implemented: the algorithm stops when no
      direct improvement applies (degree within one of the FR fixpoint on
      workloads without blocking chains).

    Being non-self-stabilizing, it must start from a proper configuration:
    use {!state_of_tree} (e.g. over a BFS tree).  Corrupted starts are
    outside its contract — that is the paper's whole point. *)

type state

type msg

module Automaton : Mdst_sim.Node.AUTOMATON with type state = state and type msg = msg

val state_of_tree :
  Mdst_graph.Tree.t -> msg Mdst_sim.Node.ctx -> Mdst_util.Prng.t -> state
(** Proper initial configuration over a given spanning tree. *)

val finished : state -> bool
(** Root only: no candidate improving edge remains. *)

val phases : state -> int
(** Root only: improvement phases executed (successful swaps). *)

(** Convergence harness mirroring {!Mdst_core.Run.converge}. *)
type result = {
  converged : bool;
  rounds : int;
  degree : int option;
  total_messages : int;
  max_state_bits : int;
  phases_run : int;
}

val converge :
  ?latency:Mdst_sim.Latency.t ->
  ?seed:int ->
  ?max_rounds:int ->
  ?tree:Mdst_graph.Tree.t ->
  Mdst_graph.Graph.t ->
  result
(** Run the algorithm from [tree] (default: a BFS tree rooted at the
    minimum identifier) until the root declares no further improvement;
    extract the final tree degree. *)

(** Lower-level access for bespoke experiments (e.g. E14 drives the engine
    manually to time the first degree drop). *)
module Engine : module type of Mdst_sim.Engine.Make (Automaton)

val extract_degree : Mdst_graph.Graph.t -> state array -> int option

val debug_dump : state -> string
(** One-line rendering of the bookkeeping fields (tests and debugging). *)

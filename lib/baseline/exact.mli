(** Exact minimum-degree spanning tree by branch-and-bound.

    MDST is NP-hard (Hamiltonian path reduces to "is Δ* = 2"), so this
    solver is exponential in the worst case; it exists to certify the
    Δ* + 1 guarantee on the small instances of experiment E1.  The search
    asks, for increasing degree bounds D, whether a spanning tree of degree
    at most D exists, by backtracking over edge inclusion/exclusion with
    connectivity, bridge and degree-budget pruning. *)

type result = {
  optimum : int;  (** Δ*: the minimum possible spanning-tree degree *)
  tree : Mdst_graph.Tree.t;  (** a witness tree of degree Δ* *)
  expansions : int;  (** search nodes explored, for reporting *)
}

val solve : ?budget:int -> Mdst_graph.Graph.t -> result option
(** [solve g] computes Δ* exactly, or returns [None] when the search
    exceeds [budget] node expansions (default [5_000_000]).
    @raise Invalid_argument on a disconnected or empty graph. *)

val spanning_tree_with_degree : ?budget:int -> Mdst_graph.Graph.t -> int -> Mdst_graph.Tree.t option
(** [spanning_tree_with_degree g d] — a spanning tree of degree <= [d], if
    one exists within budget ([None] means "not found", which is only
    conclusive if the budget was not exhausted; use {!solve} for the
    authoritative answer). *)

val lower_bound : Mdst_graph.Graph.t -> int
(** Cheap combinatorial lower bound on Δ*: every spanning tree needs at
    least ceil((n-1) / (n - leaves...)) ... concretely we use the
    max over vertex cuts argument: for any vertex set S, a spanning tree
    has some node of degree >= (components of G - S + |S| - 1) / |S|.
    Evaluated over singleton and articulation-based cuts. *)

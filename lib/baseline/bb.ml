module Node = Mdst_sim.Node
module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module P = Mdst_util.Prng
module Sizing = Mdst_util.Sizing

(* ------------------------------------------------------------------ *)
(* Types                                                                *)
(* ------------------------------------------------------------------ *)

type nbr = { b_deg : int; b_dist : int; b_parent : int; b_fresh : bool }

type entry = { p_id : int; p_deg : int; p_dist : int }

(* (initiator, responder, score): score = max endpoint degree, lower is a
   more comfortable improvement. *)
type cand = int * int * int

type up_payload = Done_phase | Failed of (int * int)

type msg =
  | Share of { s_deg : int; s_dist : int; s_parent : int }
  | Gather of { g_seq : int }
  | Sub of { u_seq : int; u_ids : int list; u_submax : int }
  | Query of { q_seq : int; q_k : int }
  | Cands of { c_seq : int; c_cands : cand list }
  | Route of { r_target : int; r_edge : int * int; r_k : int }
  | Bsearch of { b_edge : int * int; b_k : int; b_stack : entry list; b_visited : int list }
  | Exec of { e_edge : int * int; e_target : int * int; e_segment : int list }
  | Reorient of { o_dist : int; o_segment : int list }
  | Up of up_payload

type wave_kind = Wgather | Wquery

type wave = {
  w_kind : wave_kind;
  w_seq : int;
  w_waiting : int list;  (* child ids still to reply *)
  w_ids : (int * int list) list;  (* per replying child: its subtree ids *)
  w_submax : int;
  w_cands : cand list;
}

type root_phase = Cooldown of int | Gathering | Querying | Probing of (int * int) | Done

type state = {
  parent : int;
  dist : int;
  nbrs : nbr array;
  child_subtrees : (int * int list) list;  (* the membership tables of [3] *)
  wave : wave option;
  k : int;  (* tree degree as last broadcast by the root *)
  (* root bookkeeping *)
  phase : root_phase;
  candidates : cand list;
  failed : (int * int) list;
  seq : int;
  stall : int;
  phases_done : int;
  finished_flag : bool;
}

let finished st = st.finished_flag

let phases st = st.phases_done

(* ------------------------------------------------------------------ *)
(* Local helpers                                                        *)
(* ------------------------------------------------------------------ *)

let slot_of ctx uid =
  let rec find i =
    if i >= Array.length ctx.Node.neighbor_ids then None
    else if ctx.Node.neighbor_ids.(i) = uid then Some i
    else find (i + 1)
  in
  find 0

let send_to ctx uid m =
  match slot_of ctx uid with Some s -> ctx.Node.send ctx.Node.neighbors.(s) m | None -> ()

let is_root ctx st = st.parent = ctx.Node.id

let is_tree_edge ctx st slot =
  let uid = ctx.Node.neighbor_ids.(slot) in
  st.parent = uid || (st.nbrs.(slot).b_fresh && st.nbrs.(slot).b_parent = ctx.Node.id)

let tree_degree ctx st =
  let d = ref 0 in
  for slot = 0 to Array.length ctx.Node.neighbors - 1 do
    if is_tree_edge ctx st slot then incr d
  done;
  !d

let children_ids ctx st =
  let acc = ref [] in
  Array.iteri
    (fun slot uid ->
      if st.nbrs.(slot).b_fresh && st.nbrs.(slot).b_parent = ctx.Node.id then acc := uid :: !acc)
    ctx.Node.neighbor_ids;
  !acc

(* Candidate improving edges incident to this node, under degree bound k:
   both endpoints must stay strictly below k - 1 after the swap. *)
let local_candidates ctx st ~k =
  let own = tree_degree ctx st in
  let acc = ref [] in
  Array.iteri
    (fun slot uid ->
      let v = st.nbrs.(slot) in
      if
        v.b_fresh
        && (not (is_tree_edge ctx st slot))
        && ctx.Node.id < uid
        && max own v.b_deg <= k - 2
      then acc := (ctx.Node.id, uid, max own v.b_deg) :: !acc)
    ctx.Node.neighbor_ids;
  !acc

let merge_cands a b =
  List.sort_uniq compare (a @ b)

(* ------------------------------------------------------------------ *)
(* Waves (gather / query broadcast + convergecast)                      *)
(* ------------------------------------------------------------------ *)

let start_wave ctx st ~kind ~seq ~k =
  let waiting = children_ids ctx st in
  let msg = match kind with Wgather -> Gather { g_seq = seq } | Wquery -> Query { q_seq = seq; q_k = k } in
  List.iter (fun c -> send_to ctx c msg) waiting;
  let wave =
    {
      w_kind = kind;
      w_seq = seq;
      w_waiting = waiting;
      w_ids = [];
      w_submax = tree_degree ctx st;
      w_cands = (match kind with Wquery -> local_candidates ctx st ~k | Wgather -> []);
    }
  in
  { st with wave = Some wave; k = (match kind with Wquery -> k | Wgather -> st.k) }

(* All children have replied: fold the wave's result into this node. *)
let rec finish_wave ctx st wave =
  let subtree_ids = ctx.Node.id :: List.concat_map snd wave.w_ids in
  if is_root ctx st then begin
    match wave.w_kind with
    | Wgather ->
        let k = wave.w_submax in
        let st = { st with child_subtrees = wave.w_ids; wave = None } in
        let st = { st with phase = Querying; seq = st.seq + 1; stall = 0 } in
        start_wave ctx st ~kind:Wquery ~seq:st.seq ~k
    | Wquery ->
        let candidates =
          List.filter
            (fun (u, v, _) -> not (List.mem (u, v) st.failed))
            (List.sort (fun (_, _, a) (_, _, b) -> compare a b) wave.w_cands)
        in
        let st = { st with wave = None; candidates; stall = 0 } in
        next_candidate ctx st
  end
  else begin
    match wave.w_kind with
    | Wgather ->
        send_to ctx st.parent
          (Sub { u_seq = wave.w_seq; u_ids = subtree_ids; u_submax = wave.w_submax });
        (* Only gather waves carry membership; query completions must not
           wipe the routing tables. *)
        { st with child_subtrees = wave.w_ids; wave = None }
    | Wquery ->
        send_to ctx st.parent (Cands { c_seq = wave.w_seq; c_cands = wave.w_cands });
        { st with wave = None }
  end

(* Root: pop the next candidate and probe it, or declare the fixpoint. *)
and next_candidate ctx st =
  match st.candidates with
  | [] ->
      if st.phase = Done then st
      else { st with phase = Done; finished_flag = true }
  | (u, v, _) :: rest ->
      let st = { st with candidates = rest; phase = Probing (u, v); stall = 0 } in
      route_down ctx st ~target:u (Route { r_target = u; r_edge = (u, v); r_k = st.k })

(* Route a message towards [target] using the membership tables. *)
and route_down ctx st ~target msg =
  if target = ctx.Node.id then st (* caller handles local delivery *)
  else begin
    match List.find_opt (fun (_, ids) -> List.mem target ids) st.child_subtrees with
    | Some (child, _) ->
        send_to ctx child msg;
        st
    | None ->
        (* Stale tables: report failure upwards (or handle at root). *)
        if is_root ctx st then
          match msg with
          | Route { r_edge; _ } ->
              next_candidate ctx { st with failed = r_edge :: st.failed }
          | _ -> st
        else begin
          send_to ctx st.parent (Up (Failed (0, 0)));
          st
        end
  end

(* ------------------------------------------------------------------ *)
(* Cycle search (serialized DFS) and the swap                           *)
(* ------------------------------------------------------------------ *)

let self_entry ctx st = { p_id = ctx.Node.id; p_deg = tree_degree ctx st; p_dist = st.dist }

let continue_search ctx st ~edge ~k ~stack ~visited =
  let me = ctx.Node.id in
  let visited = if List.mem me visited then visited else me :: visited in
  let next = ref None in
  Array.iteri
    (fun slot uid ->
      if
        is_tree_edge ctx st slot
        && (not (List.mem uid visited))
        && (match !next with Some best -> uid < best | None -> true)
      then next := Some uid)
    ctx.Node.neighbor_ids;
  match !next with
  | Some uid ->
      send_to ctx uid
        (Bsearch { b_edge = edge; b_k = k; b_stack = stack @ [ self_entry ctx st ]; b_visited = visited })
  | None -> (
      match List.rev stack with
      | [] -> ()
      | last :: before_rev ->
          send_to ctx last.p_id
            (Bsearch { b_edge = edge; b_k = k; b_stack = List.rev before_rev; b_visited = visited }))

let send_up ctx st payload =
  if is_root ctx st then ()
  else send_to ctx st.parent (Up payload)

(* Execute a swap as [s]: adopt the improving edge, re-orient the segment. *)
let exec_swap ctx st ~edge ~segment =
  let _, t_id = edge in
  let t_dist =
    match slot_of ctx t_id with
    | Some slot when st.nbrs.(slot).b_fresh -> st.nbrs.(slot).b_dist
    | Some _ | None -> st.dist
  in
  let old_parent = st.parent in
  let st = { st with parent = t_id; dist = t_dist + 1 } in
  (match segment with
  | _ :: next :: _ when next = old_parent ->
      send_to ctx old_parent (Reorient { o_dist = st.dist; o_segment = segment })
  | _ ->
      (* Single-node segment: the old parent edge simply left the tree. *)
      send_up ctx st Done_phase);
  st

(* The responder decides on the discovered cycle. *)
let action_on_cycle ctx st ~edge ~k ~stack =
  let path = stack @ [ self_entry ctx st ] in
  let interior = match stack with [] -> [] | _ :: rest -> rest in
  let initiator_id = fst edge in
  let w_entry =
    List.fold_left
      (fun best e ->
        if e.p_deg < k then best
        else match best with Some b when b.p_id <= e.p_id -> best | _ -> Some e)
      None interior
  in
  match w_entry with
  | None ->
      send_up ctx st (Failed edge);
      st
  | Some w -> (
      let rec succ_of = function
        | a :: b :: _ when a.p_id = w.p_id -> Some b
        | _ :: rest -> succ_of rest
        | [] -> None
      in
      match succ_of path with
      | None ->
          send_up ctx st (Failed edge);
          st
      | Some z ->
          let lower = if w.p_dist > z.p_dist then w else z in
          let ids = List.map (fun e -> e.p_id) path in
          let pos id =
            let rec go i = function x :: r -> if x = id then i else go (i + 1) r | [] -> -1 in
            go 0 ids
          in
          let s_is_initiator = pos lower.p_id <= min (pos w.p_id) (pos z.p_id) in
          let rec take_until acc = function
            | [] -> None
            | x :: rest ->
                if x = lower.p_id then Some (List.rev (x :: acc)) else take_until (x :: acc) rest
          in
          let segment =
            if s_is_initiator then take_until [] ids else take_until [] (List.rev ids)
          in
          (match segment with
          | None | Some [] ->
              send_up ctx st (Failed edge);
              st
          | Some segment ->
              if s_is_initiator then begin
                send_to ctx initiator_id
                  (Exec
                     {
                       e_edge = (initiator_id, ctx.Node.id);
                       e_target = (lower.p_id, (if lower == w then z else w).p_id);
                       e_segment = segment;
                     });
                st
              end
              else exec_swap ctx st ~edge:(ctx.Node.id, initiator_id) ~segment))

(* ------------------------------------------------------------------ *)
(* Automaton                                                            *)
(* ------------------------------------------------------------------ *)

module Automaton = struct
  type nonrec state = state

  type nonrec msg = msg

  let name = "blin-butelle"

  let unknown = { b_deg = 0; b_dist = 0; b_parent = max_int; b_fresh = false }

  let init ctx =
    (* A proper configuration is normally installed via [state_of_tree];
       cold init treats every node as an isolated root, which this
       non-self-stabilizing algorithm does not repair — documented. *)
    {
      parent = ctx.Node.id;
      dist = 0;
      nbrs = Array.make (Array.length ctx.Node.neighbors) unknown;
      child_subtrees = [];
      wave = None;
      k = 0;
      phase = Cooldown 6;
      candidates = [];
      failed = [];
      seq = 0;
      stall = 0;
      phases_done = 0;
      finished_flag = false;
    }

  let random_state ctx rng =
    let st = init ctx in
    { st with dist = P.int rng ctx.Node.n }

  let random_msg _ _ = None

  let msg_label = function
    | Share _ -> "bb-share"
    | Gather _ | Sub _ -> "bb-gather"
    | Query _ | Cands _ -> "bb-query"
    | Route _ -> "bb-route"
    | Bsearch _ -> "bb-search"
    | Exec _ | Reorient _ -> "bb-swap"
    | Up _ -> "bb-up"

  let msg_bits ~n m =
    let id = Sizing.id_bits ~n in
    match m with
    | Share _ -> 3 * id
    | Gather _ | Query _ -> 2 * id
    | Sub { u_ids; _ } -> (2 * id) + Sizing.list_bits ~n id (List.length u_ids)
    | Cands { c_cands; _ } -> id + Sizing.list_bits ~n (3 * id) (List.length c_cands)
    | Route _ -> 4 * id
    | Bsearch { b_stack; b_visited; _ } ->
        (3 * id)
        + Sizing.list_bits ~n (3 * id) (List.length b_stack)
        + Sizing.list_bits ~n id (List.length b_visited)
    | Exec { e_segment; _ } -> (5 * id) + Sizing.list_bits ~n id (List.length e_segment)
    | Reorient { o_segment; _ } -> id + Sizing.list_bits ~n id (List.length o_segment)
    | Up _ -> 3 * id

  (* The membership tables dominate: Θ(n log n) on deep trees — the memory
     cost the paper's design avoids. *)
  let state_bits ~n st =
    let id = Sizing.id_bits ~n in
    let tables =
      List.fold_left
        (fun acc (_, ids) -> acc + id + Sizing.list_bits ~n id (List.length ids))
        0 st.child_subtrees
    in
    (5 * id) + (Array.length st.nbrs * 3 * id) + tables

  let on_tick ctx st =
    (* Gossip degrees / distances / parents. *)
    let payload = Share { s_deg = tree_degree ctx st; s_dist = st.dist; s_parent = st.parent } in
    Array.iter (fun nb -> ctx.Node.send nb payload) ctx.Node.neighbors;
    (* Distance repair after swaps. *)
    let st =
      if is_root ctx st then (if st.dist <> 0 then { st with dist = 0 } else st)
      else
        match slot_of ctx st.parent with
        | Some slot when st.nbrs.(slot).b_fresh && st.dist <> st.nbrs.(slot).b_dist + 1 ->
            { st with dist = st.nbrs.(slot).b_dist + 1 }
        | Some _ | None -> st
    in
    if not (is_root ctx st) then st
    else begin
      match st.phase with
      | Done -> st
      | Cooldown t when t > 0 -> { st with phase = Cooldown (t - 1) }
      | Cooldown _ ->
          (* Waves rely on the neighbour mirrors (children discovery); hold
             until the first gossip exchange completed. *)
          if not (Array.for_all (fun v -> v.b_fresh) st.nbrs) then { st with phase = Cooldown 1 }
          else begin
            let st = { st with phase = Gathering; seq = st.seq + 1; stall = 0 } in
            start_wave ctx st ~kind:Wgather ~seq:st.seq ~k:st.k
          end
      | Gathering | Querying | Probing _ ->
          let st = { st with stall = st.stall + 1 } in
          if st.stall > 8 * ctx.Node.n then
            (* Lost wave or probe: restart from a fresh gather. *)
            let st =
              match st.phase with
              | Probing edge -> { st with failed = edge :: st.failed }
              | Gathering | Querying | Cooldown _ | Done -> st
            in
            let st = { st with phase = Gathering; seq = st.seq + 1; stall = 0; wave = None } in
            start_wave ctx st ~kind:Wgather ~seq:st.seq ~k:st.k
          else st
    end

  let absorb_reply ctx st ~seq ~child ~ids ~submax ~cands =
    match st.wave with
    | Some w when w.w_seq = seq && List.mem child w.w_waiting ->
        let w =
          {
            w with
            w_waiting = List.filter (fun c -> c <> child) w.w_waiting;
            w_ids = (match ids with Some l -> (child, l) :: w.w_ids | None -> w.w_ids);
            w_submax = max w.w_submax submax;
            w_cands = merge_cands w.w_cands cands;
          }
        in
        let st = { st with wave = Some w; stall = 0 } in
        if w.w_waiting = [] then finish_wave ctx st w else st
    | Some _ | None -> st

  let on_message ctx st ~src m =
    let sender =
      let rec find k =
        if k >= Array.length ctx.Node.neighbors then -1
        else if ctx.Node.neighbors.(k) = src then ctx.Node.neighbor_ids.(k)
        else find (k + 1)
      in
      find 0
    in
    match m with
    | Share { s_deg; s_dist; s_parent } -> (
        match slot_of ctx sender with
        | Some slot ->
            let nbrs = Array.copy st.nbrs in
            nbrs.(slot) <- { b_deg = s_deg; b_dist = s_dist; b_parent = s_parent; b_fresh = true };
            { st with nbrs }
        | None -> st)
    | Gather { g_seq } ->
        if sender <> st.parent then st
        else begin
          let st = start_wave ctx st ~kind:Wgather ~seq:g_seq ~k:st.k in
          match st.wave with
          | Some w when w.w_waiting = [] -> finish_wave ctx st w
          | Some _ | None -> st
        end
    | Query { q_seq; q_k } ->
        if sender <> st.parent then st
        else begin
          let st = start_wave ctx st ~kind:Wquery ~seq:q_seq ~k:q_k in
          match st.wave with
          | Some w when w.w_waiting = [] -> finish_wave ctx st w
          | Some _ | None -> st
        end
    | Sub { u_seq; u_ids; u_submax } ->
        absorb_reply ctx st ~seq:u_seq ~child:sender ~ids:(Some u_ids) ~submax:u_submax ~cands:[]
    | Cands { c_seq; c_cands } ->
        absorb_reply ctx st ~seq:c_seq ~child:sender ~ids:None ~submax:0 ~cands:c_cands
    | Route { r_target; r_edge; r_k } ->
        if r_target = ctx.Node.id then begin
          (* We are the initiator: launch the serialized cycle search. *)
          continue_search ctx st ~edge:r_edge ~k:r_k ~stack:[] ~visited:[];
          st
        end
        else route_down ctx st ~target:r_target m
    | Bsearch { b_edge; b_k; b_stack; b_visited } ->
        if ctx.Node.id = snd b_edge then action_on_cycle ctx st ~edge:b_edge ~k:b_k ~stack:b_stack
        else begin
          continue_search ctx st ~edge:b_edge ~k:b_k ~stack:b_stack ~visited:b_visited;
          st
        end
    | Exec { e_edge; e_segment; _ } ->
        if fst e_edge = ctx.Node.id then exec_swap ctx st ~edge:e_edge ~segment:e_segment else st
    | Reorient { o_dist; o_segment } ->
        (* Flip towards the sender, then forward along the segment: the next
           segment element is our old parent unless we are [lower]. *)
        let old_parent = st.parent in
        let st = { st with parent = sender; dist = o_dist + 1 } in
        let rec next_after = function
          | a :: b :: rest -> if a = ctx.Node.id then Some b else next_after (b :: rest)
          | _ -> None
        in
        (match next_after o_segment with
        | Some next when next = old_parent ->
            send_to ctx old_parent (Reorient { o_dist = st.dist; o_segment })
        | Some _ | None -> send_up ctx st Done_phase);
        st
    | Up payload ->
        if not (is_root ctx st) then begin
          send_to ctx st.parent (Up payload);
          st
        end
        else begin
          match (payload, st.phase) with
          | Done_phase, Probing _ ->
              {
                st with
                phases_done = st.phases_done + 1;
                failed = [];
                phase = Cooldown (2 * ctx.Node.n);
                candidates = [];
              }
          | Failed edge, Probing current when edge = current || edge = (0, 0) ->
              next_candidate ctx { st with failed = current :: st.failed }
          | (Done_phase | Failed _), _ -> st
        end
end

(* ------------------------------------------------------------------ *)
(* Harness                                                              *)
(* ------------------------------------------------------------------ *)

let state_of_tree tree ctx _rng =
  let graph = Tree.graph tree in
  let v = Graph.index_of_id graph ctx.Node.id in
  let st = Automaton.init ctx in
  let parent = if Tree.parent tree v = v then ctx.Node.id else Graph.id graph (Tree.parent tree v) in
  { st with parent; dist = Tree.depth tree v }

let debug_dump st =
  let phase =
    match st.phase with
    | Cooldown t -> Printf.sprintf "cooldown(%d)" t
    | Gathering -> "gathering"
    | Querying -> "querying"
    | Probing (u, v) -> Printf.sprintf "probing(%d,%d)" u v
    | Done -> "done"
  in
  Printf.sprintf
    "parent=%d dist=%d k=%d phase=%s seq=%d cands=%d failed=%d phases=%d fresh=%d/%d kids=%d wave=%s tables=%d"
    st.parent st.dist st.k phase st.seq (List.length st.candidates) (List.length st.failed)
    st.phases_done
    (Array.fold_left (fun a v -> if v.b_fresh then a + 1 else a) 0 st.nbrs)
    (Array.length st.nbrs)
    (Array.fold_left (fun a v -> if v.b_fresh && v.b_parent <> max_int then a + 1 else a) 0 st.nbrs)
    (match st.wave with
    | None -> "-"
    | Some w -> Printf.sprintf "%s#%d(wait %d)" (match w.w_kind with Wgather -> "g" | Wquery -> "q") w.w_seq (List.length w.w_waiting))
    (List.length st.child_subtrees)

type result = {
  converged : bool;
  rounds : int;
  degree : int option;
  total_messages : int;
  max_state_bits : int;
  phases_run : int;
}

module Engine = Mdst_sim.Engine.Make (Automaton)

let extract_degree graph states =
  let n = Graph.n graph in
  let parents = Array.make n (-1) in
  let root = ref None in
  let ok = ref true in
  Array.iteri
    (fun v (st : state) ->
      if st.parent = Graph.id graph v then begin
        parents.(v) <- v;
        match !root with None -> root := Some v | Some _ -> ok := false
      end
      else
        match Graph.index_of_id graph st.parent with
        | p when Graph.mem_edge graph v p -> parents.(v) <- p
        | _ -> ok := false
        | exception Not_found -> ok := false)
    states;
  match (!ok, !root) with
  | true, Some root -> (
      match Tree.of_parents graph ~root parents with
      | tree -> Some (Tree.max_degree tree)
      | exception Tree.Invalid _ -> None)
  | _ -> None

let converge ?(latency = Mdst_sim.Latency.uniform ()) ?(seed = 42) ?(max_rounds = 200_000) ?tree
    graph =
  let root = Graph.min_id_node graph in
  let tree = match tree with Some t -> t | None -> Mdst_graph.Algo.bfs_tree graph ~root in
  let root = Tree.root tree in
  let engine = Engine.create ~latency ~seed ~init:(`Custom (state_of_tree tree)) graph in
  let root_done t = finished (Engine.state t root) in
  let outcome = Engine.run engine ~max_rounds ~check_every:2 ~stop:root_done () in
  let metrics = Engine.metrics engine in
  {
    converged = outcome.converged;
    rounds = outcome.rounds;
    degree = extract_degree graph (Engine.states engine);
    total_messages = Mdst_sim.Metrics.total_messages metrics;
    max_state_bits = Mdst_sim.Metrics.max_state_bits metrics;
    phases_run = phases (Engine.state engine root);
  }

(** Naive spanning-tree baselines for experiment E2: what tree degree do you
    get with no degree-awareness at all? *)

type spec = Bfs | Dfs | Random_walk | Kruskal_random

val name : spec -> string

val all : spec list

val build : Mdst_util.Prng.t -> spec -> Mdst_graph.Graph.t -> Mdst_graph.Tree.t
(** Rooted at the minimum-identifier node, like the protocol's result. *)

val degree : Mdst_util.Prng.t -> spec -> Mdst_graph.Graph.t -> int

module Graph = Mdst_graph.Graph
module Algo = Mdst_graph.Algo

type spec = Bfs | Dfs | Random_walk | Kruskal_random

let name = function
  | Bfs -> "bfs"
  | Dfs -> "dfs"
  | Random_walk -> "random-walk"
  | Kruskal_random -> "kruskal"

let all = [ Bfs; Dfs; Random_walk; Kruskal_random ]

let build rng spec graph =
  let root = Graph.min_id_node graph in
  match spec with
  | Bfs -> Algo.bfs_tree graph ~root
  | Dfs -> Algo.dfs_tree graph ~root
  | Random_walk -> Algo.random_spanning_tree rng graph ~root
  | Kruskal_random -> Algo.kruskal_random_tree rng graph ~root

let degree rng spec graph = Mdst_graph.Tree.max_degree (build rng spec graph)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Algo = Mdst_graph.Algo

(* The tree edge to delete: the cycle edge joining [target] to its successor
   (or predecessor) on the fundamental-cycle path. *)
let cycle_edge_at cycle target =
  let rec go = function
    | a :: b :: _ when a = target -> Some (a, b)
    | a :: b :: rest ->
        if b = target then Some (b, a) else go (b :: rest)
    | _ -> None
  in
  go cycle

(* Cycle-path nodes strictly between the two endpoints. *)
let interior cycle =
  match cycle with
  | [] | [ _ ] -> []
  | _ :: rest -> ( match List.rev rest with [] -> [] | _last :: mid_rev -> List.rev mid_rev)

(* Reduce the degree of [target] by one through an edge swap, recursively
   unblocking endpoints of degree [deg target - 1].  Depth-bounded so
   pathological unblock chains terminate; [visited] prevents re-entering a
   node within one chain. *)
let rec attempt tree ~target ~visited ~depth =
  if depth > Graph.n (Tree.graph tree) then None
  else begin
    let k_t = Tree.degree tree target in
    if k_t < 2 then None
    else begin
      let non_tree = Tree.non_tree_edges tree in
      let through_target =
        List.filter_map
          (fun (u, v) ->
            if u = target || v = target then None
            else
              let cycle = Tree.fundamental_cycle tree (u, v) in
              if List.mem target (interior cycle) then Some ((u, v), cycle) else None)
          non_tree
      in
      (* Direct improvements first (paper Eq. 1). *)
      let direct =
        List.find_opt
          (fun ((u, v), _) -> max (Tree.degree tree u) (Tree.degree tree v) <= k_t - 2)
          through_target
      in
      match direct with
      | Some ((u, v), cycle) -> (
          match cycle_edge_at cycle target with
          | Some (a, b) -> Some (Tree.swap tree ~remove:(a, b) ~add:(u, v))
          | None -> None)
      | None ->
          (* Unblock: lower a blocking endpoint, then retry. *)
          let rec try_blocked = function
            | [] -> None
            | ((u, v), _) :: rest ->
                let blocked_endpoints =
                  List.filter
                    (fun x -> Tree.degree tree x = k_t - 1 && not (List.mem x visited))
                    [ u; v ]
                in
                let rec try_endpoints = function
                  | [] -> try_blocked rest
                  | x :: xs -> (
                      match
                        attempt tree ~target:x ~visited:(target :: visited) ~depth:(depth + 1)
                      with
                      | Some tree' -> (
                          match attempt tree' ~target ~visited ~depth:(depth + 1) with
                          | Some tree'' -> Some tree''
                          | None -> try_endpoints xs)
                      | None -> try_endpoints xs)
                in
                if
                  max (Tree.degree tree u) (Tree.degree tree v) = k_t - 1
                  && blocked_endpoints <> []
                then try_endpoints blocked_endpoints
                else try_blocked rest
          in
          try_blocked through_target
    end
  end

let reduce_node_once tree ~target ~visited = attempt tree ~target ~visited ~depth:0

let improve_once tree =
  let rec try_nodes = function
    | [] -> None
    | w :: rest -> (
        match reduce_node_once tree ~target:w ~visited:[] with
        | Some tree' -> Some tree'
        | None -> try_nodes rest)
  in
  try_nodes (Tree.max_degree_nodes tree)

let improvable tree = improve_once tree <> None

let run tree =
  let rec loop tree count =
    match improve_once tree with Some tree' -> loop tree' (count + 1) | None -> (tree, count)
  in
  loop tree 0

let approx_mdst ?root graph =
  let root = match root with Some r -> r | None -> Graph.min_id_node graph in
  fst (run (Algo.bfs_tree graph ~root))

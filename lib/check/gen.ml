(* QuickCheck-style generators on top of the repository PRNG.  Every
   combinator works on a split child of the incoming state, so a composite
   generator's sub-draws never interfere with each other. *)

module Prng = Mdst_util.Prng
module Graph = Mdst_graph.Graph
module Fault = Mdst_sim.Fault

type 'a t = Prng.t -> 'a

let run g ~seed = g (Prng.create seed)

let return v _ = v

let map f g rng = f (g (Prng.split rng))

let bind g f rng =
  let v = g (Prng.split rng) in
  f v (Prng.split rng)

let pair a b rng =
  let x = a (Prng.split rng) in
  let y = b (Prng.split rng) in
  (x, y)

let int_in lo hi rng = Prng.int_in rng lo hi

let float_in lo hi rng = lo +. Prng.float rng (hi -. lo)

let bool rng = Prng.bool rng

let oneof gens rng =
  match gens with
  | [] -> invalid_arg "Gen.oneof: empty list"
  | _ ->
      let g = List.nth gens (Prng.int rng (List.length gens)) in
      g (Prng.split rng)

let frequency weighted rng =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Gen.frequency: weights must be positive";
  let pick = ref (Prng.int rng total) in
  let chosen =
    List.find
      (fun (w, _) ->
        if !pick < w then true
        else begin
          pick := !pick - w;
          false
        end)
      weighted
  in
  (snd chosen) (Prng.split rng)

let list_of ~len g rng =
  let n = len (Prng.split rng) in
  List.init n (fun _ -> g (Prng.split rng))

(* ---------------- graphs ---------------- *)

let connected_graph ?(min_n = 4) ?(max_n = 12) ?(shuffle_ids = true) () rng =
  let n = Prng.int_in rng min_n max_n in
  let child = Prng.split rng in
  let g =
    match Prng.int rng 4 with
    | 0 | 1 ->
        (* Random tree plus a few extra edges: the sparse common case. *)
        let max_m = n * (n - 1) / 2 in
        let m = min max_m (n - 1 + Prng.int rng (1 + (n / 2))) in
        Mdst_graph.Gen.random_connected child ~n ~m
    | 2 ->
        let p = 0.25 +. Prng.float rng 0.35 in
        Mdst_graph.Gen.erdos_renyi_connected child ~n ~p
    | _ -> Mdst_graph.Gen.barabasi_albert child ~n ~k:(min (n - 1) (1 + Prng.int rng 2))
  in
  if shuffle_ids then Mdst_graph.Gen.with_random_ids (Prng.split rng) g else g

(* ---------------- fault plans ---------------- *)

let window ~horizon rng =
  let from_round = Prng.int_in rng 0 horizon in
  let len = Prng.int_in rng 0 (max 1 (horizon / 4)) in
  { Fault.from_round; upto_round = min horizon (from_round + len) }

let channel graph rng =
  let u, v = Prng.choose rng (Graph.edges graph) in
  if Prng.bool rng then (u, v) else (v, u)

let fault_event graph ~horizon rng =
  (* Probabilities and delays are drawn on a centesimal grid so the
     reproducer's textual form round-trips bit-exactly (Fault.rng_for
     hashes event contents — a parse that changed one low bit would
     replay a different adversary). *)
  let prob rng = float_of_int (Prng.int_in rng 25 100) /. 100. in
  let non_bridge () =
    let bridges = Mdst_graph.Algo.bridges graph in
    Array.to_list (Graph.edges graph)
    |> List.filter (fun e -> not (List.mem e bridges))
  in
  match Prng.int rng 13 with
  | 0 | 1 | 2 ->
      let src, dst = channel graph rng in
      Fault.Drop { window = window ~horizon rng; src; dst; prob = prob rng }
  | 3 | 4 ->
      let src, dst = channel graph rng in
      Fault.Duplicate
        { window = window ~horizon rng; src; dst; prob = prob rng; copies = Prng.int_in rng 1 3 }
  | 5 | 6 ->
      let src, dst = channel graph rng in
      Fault.Reorder
        { window = window ~horizon rng; src; dst; prob = prob rng;
          delay = float_of_int (Prng.int_in rng 10 100) /. 10. }
  | 7 | 8 ->
      let src, dst = channel graph rng in
      Fault.Corrupt { window = window ~horizon rng; src; dst; prob = prob rng }
  | 9 | 10 ->
      Fault.Crash
        { at_round = Prng.int_in rng 0 horizon; node = Prng.int rng (Graph.n graph);
          mode = (if Prng.bool rng then `Random else `Init) }
  | 11 -> (
      match non_bridge () with
      | [] ->
          (* Every edge is a bridge (a tree): fall back to a crash. *)
          Fault.Crash
            { at_round = Prng.int_in rng 0 horizon; node = Prng.int rng (Graph.n graph);
              mode = `Random }
      | candidates ->
          let u, v = List.nth candidates (Prng.int rng (List.length candidates)) in
          Fault.Cut { at_round = Prng.int_in rng 0 horizon; u; v })
  | _ -> (
      match Graph.non_edges graph with
      | [] ->
          Fault.Crash
            { at_round = Prng.int_in rng 0 horizon; node = Prng.int rng (Graph.n graph);
              mode = `Init }
      | absent ->
          let u, v = List.nth absent (Prng.int rng (List.length absent)) in
          Fault.Link { at_round = Prng.int_in rng 0 horizon; u; v })

let fault_plan ~graph ?(max_events = 6) ?(horizon = 400) () rng =
  let k = Prng.int_in rng 0 max_events in
  let plan_seed = Prng.int rng 1_000_000 in
  let events = List.init k (fun _ -> fault_event graph ~horizon (Prng.split rng)) in
  { Fault.plan_seed; events }

(* Conformance for the sharded parallel engine.  Two statements:

   1. Sharded-schedule conformance ([run_case]): record the merged
      (time, shard, seq) schedule of a k-shard run, then
        (a) replay it through the pure reference model starting from the
            same initial configuration — every Deliver must hit a
            non-empty channel whose head is the delivered message
            (per-channel FIFO survived the sharding), and the final model
            states must equal the parallel engine's; and
        (b) replay it through the *sequential* engine via
            [Engine.step_with] — every recorded event must be eligible
            (armed tick / channel FIFO head), i.e. the merged order is a
            schedule the sequential engine accepts, and the final states
            must again match exactly.  The two engines share handler code
            and per-node protocol streams, so (b) holds iff the sharding
            changed nothing about *what* executed, only *where*.

   2. Fingerprint equivalence ([fingerprint_equivalence]): converge the
      same (seed, init) under several shard counts and compare the
      quiescence fingerprints.  The parallel engine's timestamps are
      k-independent by construction, so the executed schedules are
      equivalent and the stabilized configurations must agree bit for
      bit. *)

module Graph = Mdst_graph.Graph
module Model = Mdst_model.Model
module State = Mdst_core.State
module Checker = Mdst_core.Checker

type case = {
  graph : Graph.t;
  seed : int;
  init : [ `Clean | `Random ];
  domains : int;
  until : float;  (* virtual-time horizon of the recorded run *)
}

type report = { events : int; failure : string option }

type equiv = {
  per_domain : (int * bool * int) list;  (* domains, converged, fingerprint *)
  agree : bool;
}

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (P : sig
  val params : Model.params
end) =
struct
  module PE = Mdst_sim.Pengine.Make (A)
  module E = Mdst_sim.Engine.Make (A)
  module R = Mdst_core.Run.Runner (A)

  exception Fail of string

  let failf fmt = Printf.ksprintf (fun s -> raise (Fail s)) fmt

  let first_state_mismatch (a : State.t array) (b : State.t array) =
    let rec go v =
      if v >= Array.length a then -1 else if a.(v) <> b.(v) then v else go (v + 1)
    in
    go 0

  let replay_model case ~init_states ~init_inflight ~sched ~final =
    let model =
      ref (Model.make ~params:P.params ~states:init_states ~in_flight:init_inflight case.graph)
    in
    Array.iteri
      (fun i (_, ev) ->
        let event =
          match (ev : PE.sched_event) with
          | PE.Sched_tick { node } -> Model.Tick node
          | PE.Sched_deliver { src; dst } -> Model.Deliver { src; dst }
        in
        match Model.step !model event with
        | m -> model := m
        | exception Invalid_argument msg ->
            failf "model rejected event %d/%d (%s): %s" (i + 1) (Array.length sched)
              (Model.event_to_string event) msg)
      sched;
    let v = first_state_mismatch final !model.Model.nodes in
    if v >= 0 then
      failf "model final state differs at node %d after %d events" v (Array.length sched)

  let replay_sequential case ~sched ~final =
    let init = (case.init :> E.init) in
    let engine = E.create ~seed:case.seed ~init case.graph in
    Array.iteri
      (fun i (_, ev) ->
        let matches (o : E.choice) =
          match ((ev : PE.sched_event), o) with
          | PE.Sched_tick { node }, E.Choose_tick t -> t.node = node
          | PE.Sched_deliver { src; dst }, E.Choose_deliver d -> d.src = src && d.dst = dst
          | _ -> false
        in
        let choose options =
          let rec find j =
            if j >= Array.length options then
              failf "sequential engine rejected event %d/%d: not eligible" (i + 1)
                (Array.length sched)
            else if matches options.(j) then j
            else find (j + 1)
          in
          find 0
        in
        if not (E.step_with engine ~choose) then
          failf "sequential engine ran dry at event %d/%d" (i + 1) (Array.length sched))
      sched;
    let v = first_state_mismatch final (E.states engine) in
    if v >= 0 then
      failf "sequential replay final state differs at node %d after %d events" v
        (Array.length sched)

  let run_case case =
    let init = (case.init :> PE.init) in
    let pe = PE.create ~seed:case.seed ~init ~record:true ~domains:case.domains case.graph in
    let init_states = Array.copy (PE.states pe) in
    let init_inflight = PE.in_flight pe in
    PE.run_window pe ~until:case.until;
    let sched = PE.schedule pe in
    let final = Array.copy (PE.states pe) in
    let failure =
      try
        replay_model case ~init_states ~init_inflight ~sched ~final;
        replay_sequential case ~sched ~final;
        None
      with Fail s -> Some s
    in
    { events = Array.length sched; failure }

  let fingerprint_equivalence ?quiet_rounds ?(max_rounds = 60_000) ?window ~seed ~init
      ~domains graph =
    let per_domain =
      List.map
        (fun d ->
          let e = R.make_pengine ~seed ~init:(init :> Mdst_core.Run.init) ~domains:d graph in
          let stop = R.make_pstop ?quiet_rounds () in
          let o = R.Pengine.run e ~max_rounds ?window ~stop () in
          (d, o.R.Pengine.converged, Checker.fingerprint (R.Pengine.states e)))
        domains
    in
    let agree =
      match per_domain with
      | [] -> true
      | (_, c0, fp0) :: rest -> List.for_all (fun (_, c, fp) -> c = c0 && fp = fp0) rest
    in
    { per_domain; agree }
end

module Default = Make (Mdst_core.Proto.Default) (struct
  let params = Model.default
end)

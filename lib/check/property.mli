(** The QuickCheck-style driver: generate, test, shrink, report.

    A property bundles a generator, a predicate, a shrinker and a printer.
    {!check} runs [tests] generated cases from a deterministic seed; on the
    first failure it greedily shrinks the case to a local minimum (the
    first failing candidate of each shrink round is kept) and reports a
    {!counterexample} whose [printed] form is the minimal reproducer. *)

type 'a prop = 'a -> (unit, string) result
(** [Error reason] means the case falsifies the property. *)

type 'a t = {
  name : string;
  gen : 'a Gen.t;
  prop : 'a prop;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

val make :
  name:string -> gen:'a Gen.t -> ?shrink:'a Shrink.t -> ?print:('a -> string) -> 'a prop -> 'a t
(** Defaults: no shrinking, opaque printer. *)

type counterexample = {
  printed : string;  (** the shrunk case, via the property's printer *)
  reason : string;  (** why it fails (the final candidate's reason) *)
  tests_run : int;  (** generated cases before the failure *)
  shrink_steps : int;  (** successful shrink steps taken *)
  seed : int;  (** the [check] seed that reproduces the whole search *)
}

type result = Passed of { tests : int } | Falsified of counterexample

val check : ?tests:int -> ?seed:int -> ?max_shrinks:int -> 'a t -> result
(** Defaults: [tests = 100], [seed = 1729], [max_shrinks = 1000].  The
    same seed replays the identical generate–fail–shrink trajectory. *)

val check_exn : ?tests:int -> ?seed:int -> ?max_shrinks:int -> 'a t -> unit
(** @raise Failure with a rendered counterexample on falsification. *)

val render : name:string -> counterexample -> string
(** The human-facing failure report (multi-line, ends with the
    reproducer). *)

(** Mutation testing of the checking stack itself.

    Each mutant reintroduces one historical bug (see CHANGES.md) behind a
    {!Mdst_util.Mutation} flag; its probe runs the part of the suite that
    is supposed to notice.  A useful suite {e detects} every mutant when
    its flag is forced on and stays {e silent} when it is forced off — an
    undetected mutant means a conformance/convergence check has gone
    toothless, a noisy probe means it flags phantom bugs.  The
    [mdst_sim mutate] subcommand (CI job: mutation-check) enforces both
    directions. *)

(** What a probe observed: [Detected] means the suite flagged a bug. *)
type verdict = Detected of string | Silent of string

type mutant = {
  name : string;  (** a {!Mdst_util.Mutation.names} slug *)
  source : string;  (** which historical bug this reintroduces *)
  probe : unit -> verdict;
      (** The detecting check, run under whatever mutant flags are
          currently forced.  Deterministic: fixed fixtures, fixed seeds. *)
}

val all : mutant list
(** One mutant per {!Mdst_util.Mutation.names} slug, same order. *)

val race_fixture : string
(** The shrunk PR-4 stop-check-race reproducer (a {!Convergence} case
    line): a corruption window that closes before its tampered message is
    delivered.  Exposed as the known-minimal fixture for shrinker
    idempotence tests. *)

val find : string -> mutant
(** @raise Invalid_argument on an unknown slug. *)

type outcome = {
  name : string;
  source : string;
  caught : bool;  (** probe with the mutant forced on said [Detected] *)
  clean : bool;  (** probe with the mutant forced off said [Silent] *)
  on_detail : string;
  off_detail : string;
}

val ok : outcome -> bool
(** [caught && clean]. *)

val run : mutant -> outcome
(** Probe with the mutant forced on, then with all mutants forced off;
    always restores the environment-driven flag state afterwards. *)

val run_all : unit -> outcome list

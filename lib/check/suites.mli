(** Named property suites over the repository's foundations.

    These are the properties that the `mdst_sim pbt` subcommand and the
    bounded `dune runtest` suite share, packed existentially so callers
    can iterate over suites without knowing each case type.  The
    convergence-under-adversity property itself lives in {!Convergence}
    (it needs budgets and a protocol variant); everything generator-,
    PRNG-, graph- and reproducer-format-shaped is here. *)

type packed = Pack : 'a Property.t -> packed

val name : packed -> string

val check : ?tests:int -> ?seed:int -> packed -> Property.result

val prng : packed list
(** {!Mdst_util.Prng}: [int_in] bounds, [sample_without_replacement]
    cardinality/distinctness/range, pairwise-distinct [split] streams,
    create/copy determinism. *)

val graph : packed list
(** {!Mdst_graph}: Prüfer encode ∘ decode identity, generated graphs
    connected with n in range, {!Mdst_graph.Io} round-trip,
    {!Shrink.graph} candidates stay connected. *)

val faults : packed list
(** Reproducer formats: {!Mdst_sim.Fault} plan and {!Convergence} case
    strings parse back to equal values; generated plans respect the
    horizon. *)

val model : packed list
(** {!Mdst_model.Model} and its checking stack: [step] determinism over
    random enabled-event walks, {!Mdst_core.Projection} string round-trip,
    fingerprint consistency (allocation-free hash = projection hash, phase
    bits excluded), and the {!Conformance} lockstep property for both the
    Default and Suppressed variants. *)

val proto : packed list
(** {!Searchpath}: a completed fundamental-cycle Search reports the exact
    tree path between its non-tree edge's endpoints. *)

val all : packed list
(** [prng @ graph @ faults @ model @ proto]. *)

val by_name : string -> packed list
(** ["prng" | "graph" | "faults" | "model" | "proto" | "all"].
    @raise Invalid_argument on anything else. *)

val suite_names : string list

(** Generators for the property-based testing harness.

    A generator is a function of a {!Mdst_util.Prng.t}; all combinators
    split the incoming generator state so that composite generators are
    insensitive to how many draws their components make (adding a field to
    a record generator does not shift sibling draws). *)

type 'a t = Mdst_util.Prng.t -> 'a

val run : 'a t -> seed:int -> 'a
(** Run a generator from a fresh seed. *)

(** {1 Combinators} *)

val return : 'a -> 'a t

val map : ('a -> 'b) -> 'a t -> 'b t

val bind : 'a t -> ('a -> 'b t) -> 'b t

val pair : 'a t -> 'b t -> ('a * 'b) t

val int_in : int -> int -> int t
(** Uniform in the inclusive range. *)

val float_in : float -> float -> float t

val bool : bool t

val oneof : 'a t list -> 'a t

val frequency : (int * 'a t) list -> 'a t
(** Weighted choice; weights must be positive. *)

val list_of : len:int t -> 'a t -> 'a list t

(** {1 Domain generators} *)

val connected_graph : ?min_n:int -> ?max_n:int -> ?shuffle_ids:bool -> unit -> Mdst_graph.Graph.t t
(** A random connected graph: a uniform random spanning tree
    ({!Mdst_graph.Prufer}) plus a random number of extra edges, with the
    occasional denser Erdős–Rényi or Barabási–Albert instance mixed in.
    Defaults: [min_n = 4], [max_n = 12], identifiers shuffled. *)

val fault_plan :
  graph:Mdst_graph.Graph.t ->
  ?max_events:int ->
  ?horizon:int ->
  unit ->
  Mdst_sim.Fault.plan t
(** A fault plan for [graph]: up to [max_events] (default 6) events whose
    windows and rounds fall within [\[0, horizon\]] (default 400).  Channel
    events target real edges of [graph]; cut events target non-bridge
    edges when one exists; link events target absent pairs.  The plan seed
    is drawn from the generator too, so a case replays from one seed. *)

(** Reference-model conformance: the real automaton and {!Mdst_model.Model}
    driven in lockstep on the same engine-produced event sequence.

    The engine runs the real protocol as usual (arrival-time order, FIFO
    floors, random tick phases); a tap around the automaton records which
    event each step executed, and the model replays exactly that event on
    its idealized configuration.  After every event the driver compares

    - the delivered message against the model's channel head (FIFO
      conformance),
    - the {!Mdst_core.Projection} of all node states (observable
      conformance),
    - the full [State.t] arrays (internal conformance — a divergence here
      with equal projections means a non-observable field drifted),

    and at the end of the sequence the complete in-flight channel contents.
    Any mismatch is a {e divergence}; the property shrinks a diverging case
    to a one-line reproducer like the convergence harness does.

    Clean builds must show zero divergences on every fixture and generated
    case; the mutation suite ({!Mutants}) relies on reintroduced historical
    bugs surfacing here. *)

module Graph = Mdst_graph.Graph
module Model = Mdst_model.Model

type case = {
  graph : Graph.t;
  seed : int;
  init : [ `Clean | `Random ];
  events : int;  (** how many engine events to execute and replay *)
}

val case_to_string : case -> string
(** One-line reproducer, e.g.
    ["n=4;edges=0-1,0-2,1-3,2-3;seed=7;init=random;events=120"]. *)

val case_of_string : string -> case
(** @raise Invalid_argument on malformed input. *)

val gen_case : ?min_n:int -> ?max_n:int -> ?max_events:int -> unit -> case Gen.t

val shrink_case : case Shrink.t
(** Event-count bisection first (cheap), then graph shrinking. *)

type divergence = {
  index : int;  (** 1-based event index at which the divergence appeared *)
  event : string;  (** the event, in {!Mdst_model.Model.event_to_string} form *)
  detail : string;  (** what differed, field by field *)
}

type report = { events_run : int; divergence : divergence option }

(** What one automaton/model pairing exposes. *)
module type S = sig
  val run_case : case -> report

  val prop : case Property.prop

  val property :
    ?min_n:int -> ?max_n:int -> ?max_events:int -> unit -> case Property.t
end

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (_ : sig
  val params : Model.params
end) : S

module Default : S
(** [Proto.Default] against [Model.default]. *)

module Suppressed : S
(** [Proto.Suppressed] against [Model.suppressed] — exercises the Info
    dirty-bit suppression and refresh-cadence rules. *)

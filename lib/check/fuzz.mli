(** Coverage-guided schedule fuzzing: the adversarial daemon as a search.

    The bounded explorer ({!Explore}) enumerates every interleaving of
    tiny instances and the PBT layer samples uniform random schedules;
    neither seeks out the rare interleavings where self-stabilization
    proofs actually bite.  The fuzzer closes that gap greybox-style: it
    replays {e delivery schedules} through the engine's
    {!Mdst_sim.Engine.Make.step_with} hook, runs the real automaton in
    lockstep with the {!Mdst_model} reference, and keeps a corpus of
    schedules ranked by novelty — new projection fingerprints
    ({!Mdst_core.Projection.fingerprint_states} plus the
    labeling-insensitive {!Mdst_core.Projection.fingerprint_coarse}) and
    new handler-branch hit buckets (the [proto:*] probes riding the
    {!Mdst_util.Mutation} plumbing).  Interesting executions are mutated
    (swap / delay / duplicate-position / chunk-drop / crossover / tail
    extension) and fed back.

    {2 Swarm configurations}

    Every corpus entry carries its own configuration: protocol variant
    (Default / Suppressed), initial distribution (clean / legitimate /
    random), an optional {!Mdst_sim.Fault.plan} (adversity mode: fuzzed
    prefix, then run to convergence under the same stop predicate and
    closure checks as {!Convergence}), and a stream-decoupling toggle
    (twin engines replaying {!Mdst_sim.Engine.Make.corrupt} pulses that
    must agree regardless of the [channels] flag).

    {2 Oracles and trophies}

    A failing execution is a {b trophy}: lockstep divergence (state or
    channel-head mismatch against the model, including the final
    in-flight comparison), legitimacy-closure violation (a configuration
    satisfying {!Explore.premise} stepped to an illegitimate one),
    adversity failure (no convergence in budget, degree bound broken, or
    post-convergence closure breach), stream decoupling, or an exception.
    Trophies are greedily shrunk ({!shrink_trophy}) and printed as
    one-line reproducers ({!entry_to_string}) that {!replay} re-executes
    {e strictly} — a replayed schedule step that is no longer eligible
    (tick not armed, channel empty or purged) fails closed with a clear
    error instead of silently falling back to default order. *)

type variant = [ `Default | `Suppressed ]

type init = [ `Clean | `Legitimate | `Random ]

(** One swarm configuration.  [plan] empty and [double_corrupt] off is
    lockstep mode; a non-empty [plan] selects adversity mode;
    [double_corrupt] selects the twin-engine decoupling oracle (then
    [plan] and the schedule are ignored). *)
type config = {
  variant : variant;
  init : init;
  graph : Mdst_graph.Graph.t;
  engine_seed : int;
  plan : Mdst_sim.Fault.plan;
  double_corrupt : bool;
}

(** A corpus entry: a configuration plus a delivery schedule in
    {!Mdst_model.Model.event_to_string} vocabulary (["t3"] / ["0>2"]).
    [steps] is the adaptive execution horizon; entries produced by the
    fuzzer always have [steps = List.length sched] (every executed event
    was recorded), so they replay strictly. *)
type entry = { config : config; sched : string list; steps : int }

val entry_to_string : entry -> string
(** One line:
    [variant=default;init=clean;n=5;ids=...;edges=0-1,...;seed=7;plan=...;
    dc=1;steps=12;sched=t0,0>1,...] — [plan] / [dc] / [steps] / [sched]
    omitted when empty, off, equal to the schedule length, or empty. *)

val entry_of_string : string -> entry
(** @raise Invalid_argument on malformed input. *)

type trophy_kind = Divergence | Closure | Crash | Adversity | Decoupling

val kind_to_string : trophy_kind -> string

type trophy = { t_kind : trophy_kind; t_entry : entry; t_detail : string }

val replay : entry -> (unit, trophy_kind * string) result
(** Strict replay: re-execute the entry's schedule exactly, with every
    oracle armed.  [Ok ()] for a clean run, [Error (kind, detail)] when
    the failure reproduces.
    @raise Failure when the schedule cannot be replayed as recorded: it
    is empty, [steps] exceeds its length (the adaptive fallback is
    disabled in replay), or a step is not eligible — e.g. it references
    a channel that is empty or was purged. *)

val shrink_trophy : ?max_attempts:int -> trophy -> trophy
(** Greedy minimization: drop schedule chunks, then fault-plan events,
    re-running each candidate and keeping it only when the {e same}
    trophy kind still fires.  The result replays strictly.  Idempotent on
    already-minimal trophies (candidate sequences never include the
    input itself).  Default [max_attempts = 300] executions. *)

type mode = [ `Fuzz | `Random_walk ]
(** [`Fuzz] is the coverage-guided campaign (swarm sweep seeds, corpus,
    novelty feedback, mutation).  [`Random_walk] is the uniform baseline:
    a fresh random configuration and pure random scheduling every
    execution, no corpus, no feedback — the control arm the acceptance
    criterion compares against. *)

type stats = {
  s_mode : mode;
  s_execs : int;  (** executions performed *)
  s_corpus : int;  (** corpus entries retained (0 in [`Random_walk]) *)
  s_fine : int;  (** distinct projection fingerprints observed *)
  s_coarse : int;  (** distinct labeling-insensitive fingerprints *)
  s_buckets : int;  (** distinct (probe, hit-bucket) coverage points *)
  s_trophies : trophy list;  (** shrunk, most recent first *)
  s_elapsed : float;  (** CPU seconds *)
  s_timeline : (int * int) list;
      (** [(execs, distinct fine fingerprints)] samples, oldest first —
          the novelty-over-time curve BENCH_fuzz.json plots fuzz vs
          random *)
}

val campaign :
  ?mode:mode ->
  ?quick:bool ->
  ?budget_s:float ->
  ?max_execs:int ->
  ?max_n:int ->
  ?stop_on_trophy:bool ->
  ?shrink_trophies:bool ->
  ?corpus_dir:string ->
  seed:int ->
  unit ->
  stats
(** Run one campaign.  Defaults: [mode = `Fuzz], [quick = false],
    [budget_s = 60.], [max_execs = max_int], [stop_on_trophy = false],
    [shrink_trophies = true] ({!detect} turns it off — detection measures
    executions to the {e first} trophy, not minimization cost).
    [quick] caps graph sizes (CI smoke); [max_n] overrides the size cap.
    [corpus_dir], when given, is loaded before the swarm sweep and every
    retained entry / shrunk trophy is persisted into it ([NNNNNN.case],
    [trophy-N.case] + [trophy-N.info]).  Deterministic for a fixed seed
    and caps (budget permitting). *)

type detection = {
  d_mutant : string;
  d_fuzz : int option array;  (** per seed: execs to first trophy *)
  d_random : int option array;
}

val detect :
  ?seeds:int -> ?max_execs:int -> ?budget_s:float -> string -> detection
(** Force one {!Mdst_util.Mutation} mutant on and measure, over [seeds]
    independent campaign seeds (default 5), how many executions the
    coverage-guided campaign and the uniform random walker need to
    produce their first trophy.  [max_execs] (default 2000) and
    [budget_s] (default 120 s) cap each arm.  Restores the flag state.
    @raise Invalid_argument on an unknown mutant slug. *)

val median_execs : int option array -> max_execs:int -> int
(** Median with [None] censored at [max_execs + 1]. *)

val bench_json :
  ?quick:bool ->
  ?seeds:int ->
  ?max_execs:int ->
  ?budget_s:float ->
  seed:int ->
  unit ->
  string * bool
(** The BENCH_fuzz.json payload (schema [mdst-bench-fuzz/1]): campaign
    throughput and novelty timelines for both modes plus the per-mutant
    detection table.  The boolean is the acceptance verdict: every mutant
    detected in all fuzz seeds with a fuzz median strictly below the
    random median. *)

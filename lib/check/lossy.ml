module Make
    (A : Mdst_sim.Node.AUTOMATON)
    (L : sig
      val drop_labels : string list
    end) =
struct
  type state = A.state

  type msg = A.msg

  let name = A.name ^ "-lossy"

  let init = A.init

  let random_state = A.random_state

  let random_msg = A.random_msg

  let on_tick = A.on_tick

  let on_message ctx st ~src msg =
    if List.mem (A.msg_label msg) L.drop_labels then st else A.on_message ctx st ~src msg

  let msg_label = A.msg_label

  let msg_bits = A.msg_bits

  let state_bits = A.state_bits
end

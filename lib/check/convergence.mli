(** Convergence-under-adversity: the paper's self-stabilization claim as an
    executable, shrinkable property.

    A {!case} is a connected topology, a {!Mdst_sim.Fault.plan} and an
    engine seed — everything needed to replay one adversarial execution
    deterministically.  The property runs the protocol from an adversarial
    ([`Random]) start while the plan's faults are injected, and requires:

    + {b convergence}: within a round budget after the last fault, the
      configuration is legitimate ({!Mdst_core.Checker}), quiescent, and
      the tree admits no Fürer–Raghavachari improvement;
    + {b degree bound}: the final tree's degree is at most [deg_FR + 1]
      (which the paper's [Δ* + 1] guarantee implies, since [Δ* <= deg_FR]);
    + {b closure}: running an extra window after convergence changes
      neither legitimacy nor the protocol fingerprint — no further swap
      ever commits.

    Shrinking deletes fault events, then graph vertices (with the plan
    renumbered coherently), then non-bridge edges, and replays every
    candidate from the case seed, yielding a minimal reproducer. *)

type case = {
  graph : Mdst_graph.Graph.t;
  plan : Mdst_sim.Fault.plan;
  seed : int;  (** engine seed: latencies, tick phases, initial corruption *)
}

val case_to_string : case -> string
(** One-line reproducer:
    [n=7;ids=2,0,...;edges=0-1,1-2,...;seed=99;plan=seed=3|drop:...]. *)

val case_of_string : string -> case
(** @raise Invalid_argument on malformed input. *)

val gen_case :
  ?min_n:int -> ?max_n:int -> ?max_events:int -> ?horizon:int -> unit -> case Gen.t
(** Defaults follow {!Gen.connected_graph} and {!Gen.fault_plan}. *)

val shrink_case : case Shrink.t

(** Round budgets for the property (all counted in asynchronous rounds). *)
type budget = {
  settle_rounds : int;  (** flat allowance after the last fault *)
  per_node_rounds : int;  (** additional allowance per node *)
  closure_rounds : int;  (** extra window the closure check runs for *)
}

val default_budget : budget
(** [{ settle_rounds = 4000; per_node_rounds = 250; closure_rounds = 80 }] *)

type report = {
  converged : bool;
  rounds : int;  (** rounds at the first convergence check that held *)
  last_fault_round : int;
  degree : int option;  (** deg(T) of the final tree, when one exists *)
  fr_degree : int;  (** FR reference degree on the {e final} topology *)
  closure_ok : bool;  (** true when not applicable (no convergence) *)
  stats : Mdst_sim.Fault.stats;  (** what the adversary actually did *)
}

(** The harness, generic over protocol variants so broken variants are
    first-class test subjects. *)
module Harness (A : Mdst_sim.Node.AUTOMATON
                  with type state = Mdst_core.State.t
                   and type msg = Mdst_core.Msg.t) : sig
  val run_case : ?budget:budget -> case -> report

  val prop : ?budget:budget -> unit -> case Property.prop

  val property :
    ?budget:budget ->
    ?min_n:int ->
    ?max_n:int ->
    ?max_events:int ->
    ?horizon:int ->
    unit ->
    case Property.t
  (** The assembled property: generator, predicate, joint graph + plan
      shrinker, reproducer printer. *)
end

module Default : module type of Harness (Mdst_core.Proto.Default)
(** The paper's protocol. *)

module Suppressed : module type of Harness (Mdst_core.Proto.Suppressed)
(** The Info dirty-bit-suppression variant; the adversary also corrupts
    the suppression cache ([last_info] / [info_age]), so this validates
    that the periodic refresh preserves self-stabilization. *)

module Broken_automaton : Mdst_sim.Node.AUTOMATON
  with type state = Mdst_core.State.t
   and type msg = Mdst_core.Msg.t
(** {!Mdst_core.Proto.Default} with every [Grant] discarded on receipt —
    the swap acknowledgement is skipped, no improvement ever commits.
    Exists to prove the harness catches real protocol bugs. *)

module Broken : module type of Harness (Broken_automaton)

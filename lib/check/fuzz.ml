(* Coverage-guided schedule fuzzing.  See fuzz.mli for the statement.

   One execution = one swarm configuration + one delivery schedule,
   replayed through the engine's [step_with] hook.  Three oracles share
   the entry format:

   - lockstep: real automaton vs the pure reference model, event by
     event, plus the legitimacy-closure premise;
   - adversity: fuzzed prefix under an installed fault plan, then run to
     convergence under the same stop predicate, closure window and
     degree bound as the Convergence harness;
   - decoupling: twin engines whose [corrupt] pulses differ only in the
     [channels] flag must corrupt the same victims to the same states.

   Novelty = new projection fingerprints (fine or labeling-insensitive)
   or new (probe, hit-bucket) coverage points from the [proto:*] probes
   riding the Mutation plumbing. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Model = Mdst_model.Model
module State = Mdst_core.State
module Msg = Mdst_core.Msg
module Projection = Mdst_core.Projection
module Checker = Mdst_core.Checker
module Run = Mdst_core.Run
module Node = Mdst_sim.Node
module Fault = Mdst_sim.Fault
module Prng = Mdst_util.Prng
module Mutation = Mdst_util.Mutation
module Fr = Mdst_baseline.Fr

type variant = [ `Default | `Suppressed ]

type init = [ `Clean | `Legitimate | `Random ]

type config = {
  variant : variant;
  init : init;
  graph : Graph.t;
  engine_seed : int;
  plan : Fault.plan;
  double_corrupt : bool;
}

type entry = { config : config; sched : string list; steps : int }

type trophy_kind = Divergence | Closure | Crash | Adversity | Decoupling

let kind_to_string = function
  | Divergence -> "divergence"
  | Closure -> "closure"
  | Crash -> "crash"
  | Adversity -> "adversity"
  | Decoupling -> "decoupling"

type trophy = { t_kind : trophy_kind; t_entry : entry; t_detail : string }

(* ---------------- reproducer format ---------------- *)

let fail fmt = Printf.ksprintf invalid_arg fmt

let entry_to_string (e : entry) =
  let g = e.config.graph in
  let n = Graph.n g in
  let ids = List.init n (Graph.id g) in
  let identity = List.for_all2 ( = ) ids (List.init n Fun.id) in
  let edges =
    Array.to_list (Graph.edges g)
    |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v)
    |> String.concat ","
  in
  let slen = List.length e.sched in
  String.concat ";"
    ([
       "variant="
       ^ (match e.config.variant with `Default -> "default" | `Suppressed -> "suppressed");
       "init="
       ^ (match e.config.init with
         | `Clean -> "clean"
         | `Legitimate -> "legitimate"
         | `Random -> "random");
       Printf.sprintf "n=%d" n;
     ]
    @ (if identity then []
       else [ "ids=" ^ String.concat "," (List.map string_of_int ids) ])
    @ [ "edges=" ^ edges; Printf.sprintf "seed=%d" e.config.engine_seed ]
    @ (if Fault.is_empty e.config.plan then []
       else [ "plan=" ^ Fault.to_string e.config.plan ])
    @ (if e.config.double_corrupt then [ "dc=1" ] else [])
    @ (if e.steps = slen then [] else [ Printf.sprintf "steps=%d" e.steps ])
    @ if e.sched = [] then [] else [ "sched=" ^ String.concat "," e.sched ])

let entry_of_string s =
  let variant = ref `Default and init = ref `Clean in
  let n = ref None and ids = ref None and edges = ref None in
  let seed = ref 0 and plan = ref Fault.empty and dc = ref false in
  let steps = ref None and sched = ref [] in
  List.iter
    (fun part ->
      let part = String.trim part in
      if part = "" then ()
      else
        match String.index_opt part '=' with
        | None -> fail "Fuzz.entry_of_string: bad component %S" part
        | Some i -> (
            let key = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "variant" -> (
                match value with
                | "default" -> variant := `Default
                | "suppressed" -> variant := `Suppressed
                | _ -> fail "Fuzz.entry_of_string: bad variant %S" value)
            | "init" -> (
                match value with
                | "clean" -> init := `Clean
                | "legitimate" -> init := `Legitimate
                | "random" -> init := `Random
                | _ -> fail "Fuzz.entry_of_string: bad init %S" value)
            | "n" -> n := int_of_string_opt value
            | "ids" ->
                ids :=
                  Some
                    (String.split_on_char ',' value
                    |> List.map (fun v ->
                           match int_of_string_opt (String.trim v) with
                           | Some x -> x
                           | None -> fail "Fuzz.entry_of_string: bad id %S" v))
            | "seed" -> (
                match int_of_string_opt value with
                | Some v -> seed := v
                | None -> fail "Fuzz.entry_of_string: bad seed %S" value)
            | "plan" -> (
                try plan := Fault.of_string value
                with Invalid_argument m -> fail "Fuzz.entry_of_string: %s" m)
            | "dc" -> dc := value = "1"
            | "steps" -> (
                match int_of_string_opt value with
                | Some v when v >= 0 -> steps := Some v
                | _ -> fail "Fuzz.entry_of_string: bad steps %S" value)
            | "edges" ->
                edges :=
                  Some
                    (String.split_on_char ',' value
                    |> List.filter (fun e -> String.trim e <> "")
                    |> List.map (fun e ->
                           match String.split_on_char '-' (String.trim e) with
                           | [ u; v ] -> (int_of_string u, int_of_string v)
                           | _ -> fail "Fuzz.entry_of_string: bad edge %S" e))
            | "sched" ->
                sched :=
                  String.split_on_char ',' value
                  |> List.filter (fun t -> String.trim t <> "")
                  |> List.map (fun t ->
                         let t = String.trim t in
                         (try ignore (Model.event_of_string t)
                          with Failure m -> fail "Fuzz.entry_of_string: %s" m);
                         t)
            | _ -> fail "Fuzz.entry_of_string: unknown key %S" key))
    (String.split_on_char ';' s);
  match (!n, !edges) with
  | Some n, Some edges ->
      let ids = Option.map Array.of_list !ids in
      let graph = Graph.of_edges ?ids ~n edges in
      let sched = !sched in
      let steps = match !steps with Some v -> v | None -> List.length sched in
      {
        config =
          {
            variant = !variant;
            init = !init;
            graph;
            engine_seed = !seed;
            plan = !plan;
            double_corrupt = !dc;
          };
        sched;
        steps;
      }
  | _ -> fail "Fuzz.entry_of_string: missing n= or edges="

(* ---------------- execution ---------------- *)

(* What one execution produced: the events actually executed (in
   [Model.event_to_string] vocabulary — a trophy's schedule is rebuilt
   from this so it replays strictly), the fingerprints sampled along the
   way (the novelty signal), and the failure, if any. *)
type exec_outcome = {
  x_executed : string list;
  x_fps : int list;
  x_coarse : int list;
  x_fail : (trophy_kind * string) option;
}

let gap_bucket gap =
  if gap <= 4 then 0
  else if gap <= 16 then 1
  else if gap <= 64 then 2
  else if gap <= 256 then 3
  else 4

module Exec
    (A : Node.AUTOMATON with type state = State.t and type msg = Msg.t) (P : sig
      val params : Model.params
    end) =
struct
  module R = Run.Runner (A)
  module E = R.Engine

  let make_engine (cfg : config) =
    match cfg.init with
    | `Clean -> E.create ~seed:cfg.engine_seed ~init:`Clean cfg.graph
    | `Random -> E.create ~seed:cfg.engine_seed ~init:`Random cfg.graph
    | `Legitimate ->
        let e = E.create ~seed:cfg.engine_seed ~init:`Clean cfg.graph in
        Array.iteri (E.set_state e) (Explore.legitimate_states cfg.graph);
        e

  let matches ev (c : E.choice) =
    match (ev, c) with
    | Model.Tick v, E.Choose_tick { node } -> node = v
    | Model.Deliver { src; dst }, E.Choose_deliver d -> d.src = src && d.dst = dst
    | _ -> false

  let find_choice ev options =
    let len = Array.length options in
    let rec go i =
      if i >= len then -1 else if matches ev options.(i) then i else go (i + 1)
    in
    go 0

  (* The shared chooser.  Strict mode replays [sched.(!i)] exactly and
     fails closed when it is no longer eligible.  Adaptive mode consumes
     the schedule as a preference list — the first still-eligible entry
     from the cursor wins — and falls back to a uniform random choice
     when the schedule is exhausted or nothing in it is eligible. *)
  let choose_with ~strict ~rng ~sched ~cursor ~i ~chosen options =
    let k =
      if strict then begin
        let ev = sched.(!i) in
        let k = find_choice ev options in
        if k < 0 then
          failwith
            (Printf.sprintf
               "Fuzz.replay: step %d: scheduled event %s is not eligible (tick not \
                armed, or channel empty or purged)"
               !i (Model.event_to_string ev));
        k
      end
      else begin
        let slen = Array.length sched in
        let rec scan j =
          if j >= slen then None
          else
            let k = find_choice sched.(j) options in
            if k >= 0 then Some (j, k) else scan (j + 1)
        in
        match scan !cursor with
        | Some (j, k) ->
            cursor := j + 1;
            k
        | None -> Prng.int rng (Array.length options)
      end
    in
    chosen := Some options.(k);
    k

  let token_of (c : E.choice) =
    match c with
    | E.Choose_tick { node } -> Printf.sprintf "t%d" node
    | E.Choose_deliver { src; dst; _ } -> Printf.sprintf "%d>%d" src dst

  (* Lockstep mode: every executed event is mirrored on the reference
     model; states (all fields), delivered heads and — at the end — the
     whole in-flight content must agree.  The closure premise is
     re-evaluated every 4th step (it is O(n + m + in-flight) and most
     steps cannot newly establish it); only fewer violations can be
     reported by the throttling, never spurious ones, because a breach is
     only flagged when the premise provably held before the step. *)
  let run_lockstep ~strict ~rng (cfg : config) sched ~total =
    let engine = make_engine cfg in
    let g = cfg.graph in
    let n = Graph.n g in
    let model =
      ref
        (Model.make ~params:P.params ~states:(E.states engine)
           ~in_flight:(E.in_flight engine) g)
    in
    let executed = ref [] and fps = ref [] and coarse = ref [] in
    let failure = ref None in
    let cursor = ref 0 and prem_prev = ref false in
    let i = ref 0 in
    while !i < total && !failure = None do
      let chosen = ref None in
      let choose = choose_with ~strict ~rng ~sched ~cursor ~i ~chosen in
      let progressed = E.step_with engine ~choose in
      (match (!chosen, progressed) with
      | None, _ | _, false -> i := total
      | Some c, true ->
          let ev =
            match c with
            | E.Choose_tick { node } -> Model.Tick node
            | E.Choose_deliver { src; dst; _ } -> Model.Deliver { src; dst }
          in
          executed := Model.event_to_string ev :: !executed;
          let head_ok =
            match c with
            | E.Choose_tick _ -> true
            | E.Choose_deliver { src; dst; label } -> (
                match Model.peek !model ~src ~dst with
                | None ->
                    failure :=
                      Some
                        ( Divergence,
                          Printf.sprintf
                            "channel %d->%d: engine delivered %s but the model \
                             channel is empty"
                            src dst label );
                    false
                | Some m when Msg.label m <> label ->
                    failure :=
                      Some
                        ( Divergence,
                          Printf.sprintf
                            "channel %d->%d: engine delivered %s, model head is %s"
                            src dst label (Msg.label m) );
                    false
                | Some _ -> true)
          in
          if head_ok then begin
            model := Model.step !model ev;
            let st = E.states engine and mst = (!model).Model.nodes in
            if st <> mst then begin
              let detail =
                match Projection.diff (Projection.of_states mst) (Projection.of_states st) with
                | (idx, what) :: _ ->
                    Printf.sprintf "after %s: node %d %s (model vs engine)"
                      (Model.event_to_string ev) idx what
                | [] ->
                    let idx = ref (-1) in
                    Array.iteri (fun k s -> if !idx < 0 && s <> mst.(k) then idx := k) st;
                    Printf.sprintf "after %s: node %d differs in a non-projected field"
                      (Model.event_to_string ev) !idx
              in
              failure := Some (Divergence, detail)
            end
            else begin
              fps := Projection.fingerprint_states st :: !fps;
              coarse := Projection.fingerprint_coarse st :: !coarse;
              let legit = Checker.legitimate g mst in
              if !prem_prev && not legit then
                failure :=
                  Some
                    ( Closure,
                      Printf.sprintf
                        "after %s: a configuration satisfying the closure premise \
                         stepped to an illegitimate one"
                        (Model.event_to_string ev) )
              else
                prem_prev :=
                  legit && !i land 3 = 0
                  && Explore.premise g mst (!model).Model.channels
            end
          end);
      incr i
    done;
    (if !failure = None then begin
       let chans = Array.make (n * n) [] in
       List.iter
         (fun (src, dst, m) -> chans.((src * n) + dst) <- m :: chans.((src * n) + dst))
         (E.in_flight engine);
       Array.iteri (fun idx l -> chans.(idx) <- List.rev l) chans;
       let mchans = (!model).Model.channels in
       let idx = ref (-1) in
       Array.iteri (fun k l -> if !idx < 0 && l <> mchans.(k) then idx := k) chans;
       if !idx >= 0 then
         failure :=
           Some
             ( Divergence,
               Printf.sprintf "final in-flight mismatch on channel %d->%d" (!idx / n)
                 (!idx mod n) )
     end);
    {
      x_executed = List.rev !executed;
      x_fps = !fps;
      x_coarse = !coarse;
      x_fail = !failure;
    }

  (* Adversity mode: fuzzed prefix under the installed plan, then run to
     convergence with the same stop predicate, closure window and degree
     bound as the Convergence harness (including its stop-check-race
     mutant hook — a mutant that stops while tampered messages are in
     flight is then convicted by the closure window). *)
  let run_adversity ~strict ~rng (cfg : config) sched ~total =
    let engine = make_engine cfg in
    E.install_faults engine ~remap:Mdst_core.Transplant.states cfg.plan;
    let executed = ref [] and fps = ref [] and coarse = ref [] in
    let failure = ref None in
    let cursor = ref 0 in
    let i = ref 0 in
    while !i < total do
      let chosen = ref None in
      let choose = choose_with ~strict ~rng ~sched ~cursor ~i ~chosen in
      let progressed = E.step_with engine ~choose in
      (match (!chosen, progressed) with
      | None, _ | _, false -> i := total
      | Some c, true ->
          executed := token_of c :: !executed;
          if !i land 3 = 0 then begin
            fps := Projection.fingerprint_states (E.states engine) :: !fps;
            coarse := Projection.fingerprint_coarse (E.states engine) :: !coarse
          end);
      incr i
    done;
    let n = Graph.n cfg.graph in
    let last_fault = Fault.last_fault_round cfg.plan in
    let base_stop = R.make_stop ~fixpoint:(fun tree -> not (Fr.improvable tree)) () in
    let stop e =
      base_stop e
      && E.rounds e > last_fault
      && (Mutation.enabled "stop-check-race" || not (E.faults_pending e))
    in
    let max_rounds = last_fault + 4000 + (250 * n) in
    let outcome = E.run engine ~max_rounds ~check_every:2 ~stop () in
    Mutation.probe
      (Printf.sprintf "fuzz:adv-gap-%d" (gap_bucket (outcome.E.rounds - last_fault)));
    Mutation.probe_n "fuzz:adv-faults" (Fault.total (E.fault_stats engine));
    if not outcome.E.converged then
      failure :=
        Some
          ( Adversity,
            Printf.sprintf
              "no convergence within %d rounds (last fault at round %d, %d faults \
               applied)"
              max_rounds last_fault
              (Fault.total (E.fault_stats engine)) )
    else if E.faults_pending engine then
      (* The stop predicate must not declare victory while tampered
         messages are in flight or scheduled faults are outstanding — a
         sound stop waits for [not (faults_pending e)], so this can only
         fire when the stop check races the adversary. *)
      failure :=
        Some
          ( Adversity,
            Printf.sprintf
              "convergence declared at round %d with adversarial work still \
               outstanding (tampered message in flight or scheduled fault pending)"
              outcome.E.rounds )
    else begin
      Mutation.probe "fuzz:adv-converged";
      (* Closure window: after declared convergence the fingerprint must
         hold still and the configuration stay legitimate. *)
      let fp0 = Checker.fingerprint (E.states engine) in
      let r0 = E.rounds engine in
      ignore (E.run engine ~max_rounds:(r0 + 80) ~check_every:4 ~stop:(fun _ -> false) ());
      let g_now = E.graph engine in
      let fp1 = Checker.fingerprint (E.states engine) in
      let legit = Checker.legitimate g_now (E.states engine) in
      if fp0 <> fp1 || not legit then
        failure :=
          Some
            ( Adversity,
              Printf.sprintf
                "closure breach after declared convergence at round %d (fingerprint \
                 %s, %s)"
                r0
                (if fp0 <> fp1 then "moved" else "stable")
                (if legit then "legitimate" else "illegitimate") )
      else
        match Checker.tree_degree_now g_now (E.states engine) with
        | None -> failure := Some (Adversity, "converged but no tree extractable")
        | Some d ->
            let bound = Tree.max_degree (Fr.approx_mdst g_now) + 1 in
            if d > bound then
              failure :=
                Some
                  ( Adversity,
                    Printf.sprintf "final degree %d exceeds FR-degree + 1 = %d" d bound
                  )
    end;
    {
      x_executed = List.rev !executed;
      x_fps = !fps;
      x_coarse = !coarse;
      x_fail = !failure;
    }

  (* Decoupling mode: twin engines, same seed; each corrupt pulse flips
     the [channels] flag between them.  Victim sets and corrupted states
     come from split streams, so the states must agree either way — a
     mutant that draws from the engine stream couples them. *)
  let run_decoupling (cfg : config) =
    let init = match cfg.init with `Random -> `Random | `Clean | `Legitimate -> `Clean in
    let e1 = E.create ~seed:cfg.engine_seed ~init cfg.graph in
    let e2 = E.create ~seed:cfg.engine_seed ~init cfg.graph in
    let rng = Prng.create (cfg.engine_seed lxor 0x7a3d) in
    let pulses = 2 + Prng.int rng 3 in
    let failure = ref None in
    let fps = ref [] and coarse = ref [] in
    let p = ref 0 in
    while !p < pulses && !failure = None do
      let fraction = 0.25 +. Prng.float rng 0.75 in
      let ch = Prng.bool rng in
      ignore (E.corrupt e1 ~fraction ~channels:ch ());
      ignore (E.corrupt e2 ~fraction ~channels:(not ch) ());
      Mutation.probe (Printf.sprintf "fuzz:dc-pulse-%d" !p);
      if E.states e1 <> E.states e2 then
        failure :=
          Some
            ( Decoupling,
              Printf.sprintf
                "corrupt pulse %d (fraction %.2f): victim states depend on the \
                 channels flag"
                !p fraction )
      else begin
        fps := Projection.fingerprint_states (E.states e1) :: !fps;
        coarse := Projection.fingerprint_coarse (E.states e1) :: !coarse
      end;
      incr p
    done;
    { x_executed = []; x_fps = !fps; x_coarse = !coarse; x_fail = !failure }

  let execute_entry ~strict ~rng (e : entry) =
    let cfg = e.config in
    if cfg.double_corrupt then run_decoupling cfg
    else begin
      let sched = Array.of_list (List.map Model.event_of_string e.sched) in
      let slen = Array.length sched in
      let n = Graph.n cfg.graph in
      let adversity = not (Fault.is_empty cfg.plan) in
      let default_total = if adversity then (8 * n) + 64 else (48 * n) + 128 in
      let total =
        if strict then begin
          if slen = 0 then failwith "Fuzz.replay: empty schedule — nothing to replay";
          if e.steps > slen then
            failwith
              (Printf.sprintf
                 "Fuzz.replay: schedule exhausted: steps=%d but only %d events \
                  recorded (adaptive fallback is disabled in replay)"
                 e.steps slen);
          slen
        end
        else max slen (if e.steps > 0 then e.steps else default_total)
      in
      if adversity then run_adversity ~strict ~rng cfg sched ~total
      else run_lockstep ~strict ~rng cfg sched ~total
    end
end

module Exec_default =
  Exec
    (Mdst_core.Proto.Default)
    (struct
      let params = Model.default
    end)

module Exec_suppressed =
  Exec
    (Mdst_core.Proto.Suppressed)
    (struct
      let params = Model.suppressed
    end)

let execute ~strict ~rng (e : entry) =
  match e.config.variant with
  | `Default -> Exec_default.execute_entry ~strict ~rng e
  | `Suppressed -> Exec_suppressed.execute_entry ~strict ~rng e

let replay e =
  match (execute ~strict:true ~rng:(Prng.create 0) e).x_fail with
  | None -> Ok ()
  | Some (k, d) -> Error (k, d)

(* ---------------- shrinking ---------------- *)

(* Shrink candidates run adaptively (a dropped chunk can make later
   schedule entries ineligible; the adaptive chooser skips them), with
   the chooser's fallback stream derived from the candidate itself so a
   re-run of the same candidate replays bit-identically.  An accepted
   candidate's entry is rebuilt from what actually executed, so the final
   trophy always replays strictly. *)
let run_deterministic e =
  let rng = Prng.create (Prng.seed_of_string (entry_to_string e)) in
  execute ~strict:false ~rng e

let shrink_trophy ?(max_attempts = 300) (trophy : trophy) =
  let attempts = ref max_attempts in
  let try_entry e =
    match run_deterministic e with
    | out -> (out.x_fail, out.x_executed)
    | exception exn -> (Some (Crash, Printexc.to_string exn), [])
  in
  let rebuild cand executed =
    if executed = [] then cand
    else { cand with sched = executed; steps = List.length executed }
  in
  let rec minimize (t : trophy) =
    if !attempts <= 0 then t
    else begin
      let e = t.t_entry in
      let sched_cands =
        Seq.map (fun s -> { e with sched = s; steps = List.length s }) (Shrink.list e.sched)
      in
      let plan_cands =
        if Fault.is_empty e.config.plan then Seq.empty
        else
          Seq.map
            (fun p -> { e with config = { e.config with plan = p } })
            (Shrink.plan e.config.plan)
      in
      let rec search cands =
        if !attempts <= 0 then None
        else
          match cands () with
          | Seq.Nil -> None
          | Seq.Cons (cand, rest) -> (
              decr attempts;
              match try_entry cand with
              | Some (k, d), executed when k = t.t_kind ->
                  Some { t_kind = k; t_entry = rebuild cand executed; t_detail = d }
              | _ -> search rest)
      in
      match search (Seq.append sched_cands plan_cands) with
      | Some t' -> minimize t'
      | None -> t
    end
  in
  minimize trophy

(* ---------------- campaign ---------------- *)

type mode = [ `Fuzz | `Random_walk ]

type stats = {
  s_mode : mode;
  s_execs : int;
  s_corpus : int;
  s_fine : int;
  s_coarse : int;
  s_buckets : int;
  s_trophies : trophy list;
  s_elapsed : float;
  s_timeline : (int * int) list;
}

(* AFL-style hit buckets: 1, 2, 3, 4–7, 8–15, 16–31, 32+. *)
let bucketize hits =
  if hits <= 0 then 0
  else if hits <= 3 then hits
  else if hits < 8 then 4
  else if hits < 16 then 5
  else if hits < 32 then 6
  else 7

let gen_graph ~max_n rng =
  (* Size classes: mostly small (fast oracles, dense coverage), some
     medium, occasionally as large as the cap — that is where the issue's
     "medium n" trophies live. *)
  if max_n <= 12 then Gen.connected_graph ~min_n:4 ~max_n () (Prng.split rng)
  else begin
    let c = Prng.int rng 10 in
    let min_n, hi =
      if c < 6 then (4, 12)
      else if c < 9 then (13, min 48 max_n)
      else (min 50 max_n, max_n)
    in
    Gen.connected_graph ~min_n ~max_n:hi () (Prng.split rng)
  end

let gen_plan graph rng = Gen.fault_plan ~graph ~max_events:4 ~horizon:160 () (Prng.split rng)

let vocab graph =
  let n = Graph.n graph in
  let ticks = List.init n (Printf.sprintf "t%d") in
  let dirs =
    Array.to_list (Graph.edges graph)
    |> List.concat_map (fun (u, v) ->
           [ Printf.sprintf "%d>%d" u v; Printf.sprintf "%d>%d" v u ])
  in
  Array.of_list (ticks @ dirs)

(* The swarm sweep: deterministic seed entries covering every toggle
   combination that matters, cheapest detectors first — suppressed
   lockstep (Info-refresh bugs), stream decoupling, adversity under fault
   plans (stop-predicate bugs), then the remaining variant x init
   pairs.  Each entry starts with an empty schedule; the adaptive run
   records what executed and the corpus keeps the recording. *)
(* Stretch one channel event's window up to the plan's last active round
   and raise its probability: maximal tampering pressure exactly where a
   convergence check first gets to declare victory (the stop predicate
   may only fire after [last_fault_round]).  This is the mutator that
   hunts stop-check races; Drop and Corrupt victims are rebuilt as
   Duplicates because an exact copy of a current-valued message never
   breaks legitimacy — it stays tampered-in-flight right across the stop
   boundary while the configuration it races is still legitimate,
   whereas a corrupted delivery perturbs state and forces a
   re-stabilization gap the tampered horizon rarely survives. *)
let sharpen_plan rng (plan : Fault.plan) =
  let last = Fault.last_fault_round plan in
  let is_chan = function
    | Fault.Drop _ | Fault.Duplicate _ | Fault.Reorder _ | Fault.Corrupt _ -> true
    | Fault.Crash _ | Fault.Cut _ | Fault.Link _ -> false
  in
  let chans = List.filteri (fun _ e -> is_chan e) plan.Fault.events in
  if chans = [] then plan
  else begin
    let victim = List.nth chans (Prng.int rng (List.length chans)) in
    let window =
      { Fault.from_round = max 0 (last - 4 - Prng.int rng 24); upto_round = last }
    in
    let prob = 0.7 +. Prng.float rng 0.3 in
    let sharpened =
      match victim with
      | Fault.Drop { src; dst; _ } | Fault.Corrupt { src; dst; _ } ->
          Fault.Duplicate { window; src; dst; prob; copies = 1 + Prng.int rng 2 }
      | Fault.Duplicate { src; dst; copies; _ } ->
          Fault.Duplicate { window; src; dst; prob; copies }
      | Fault.Reorder { src; dst; delay; _ } -> Fault.Reorder { window; src; dst; prob; delay }
      | (Fault.Crash _ | Fault.Cut _ | Fault.Link _) as e -> e
    in
    let replaced = ref false in
    let events =
      List.map
        (fun e ->
          if (not !replaced) && e == victim then begin
            replaced := true;
            sharpened
          end
          else e)
        plan.Fault.events
    in
    { plan with Fault.events = events }
  end

let sweep_entries ~max_n rng =
  let seed () = Prng.int rng 1_000_000 in
  let mk variant init ~plan ~dc graph =
    {
      config = { variant; init; graph; engine_seed = seed (); plan; double_corrupt = dc };
      sched = [];
      steps = 0;
    }
  in
  let plain variant init = mk variant init ~plan:Fault.empty ~dc:false (gen_graph ~max_n rng) in
  let dc variant init = mk variant init ~plan:Fault.empty ~dc:true (gen_graph ~max_n rng) in
  (* Sweep adversity plans start sharpened: a tampering window pressed
     against the stop boundary is the fuzzer's prior about where
     stop-predicate bugs live.  The plan redraw mutators un-sharpen. *)
  let adv variant init =
    let g = gen_graph ~max_n rng in
    mk variant init ~plan:(sharpen_plan rng (gen_plan g rng)) ~dc:false g
  in
  [
    plain `Suppressed `Clean;
    dc `Default `Random;
    adv `Default `Random;
    plain `Default `Clean;
    adv `Suppressed `Clean;
    plain `Default `Random;
    adv `Default `Legitimate;
    plain `Default `Legitimate;
    adv `Suppressed `Random;
    plain `Suppressed `Random;
    dc `Suppressed `Clean;
    plain `Suppressed `Legitimate;
  ]

let shift_window d { Fault.from_round; upto_round } =
  let from_round = max 0 (from_round + d) in
  { Fault.from_round; upto_round = max from_round (upto_round + d) }

let shift_event d (e : Fault.event) =
  match e with
  | Fault.Drop { window; src; dst; prob } ->
      Fault.Drop { window = shift_window d window; src; dst; prob }
  | Fault.Duplicate { window; src; dst; prob; copies } ->
      Fault.Duplicate { window = shift_window d window; src; dst; prob; copies }
  | Fault.Reorder { window; src; dst; prob; delay } ->
      Fault.Reorder { window = shift_window d window; src; dst; prob; delay }
  | Fault.Corrupt { window; src; dst; prob } ->
      Fault.Corrupt { window = shift_window d window; src; dst; prob }
  | Fault.Crash { at_round; node; mode } ->
      Fault.Crash { at_round = max 0 (at_round + d); node; mode }
  | Fault.Cut { at_round; u; v } -> Fault.Cut { at_round = max 0 (at_round + d); u; v }
  | Fault.Link { at_round; u; v } -> Fault.Link { at_round = max 0 (at_round + d); u; v }

let mutate_sched rng graph sched steps =
  let arr = Array.of_list sched in
  let len = Array.length arr in
  let keep_steps l = max (List.length l) steps in
  match Prng.int rng 6 with
  | 0 when len >= 2 ->
      let i = Prng.int rng len and j = Prng.int rng len in
      let a = Array.copy arr in
      let t = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- t;
      let l = Array.to_list a in
      (l, keep_steps l)
  | 1 when len >= 2 ->
      (* delay: pull one event to a later position *)
      let i = Prng.int rng (len - 1) in
      let j = i + 1 + Prng.int rng (len - i - 1) in
      let a = Array.copy arr in
      let t = a.(i) in
      Array.blit a (i + 1) a i (j - i);
      a.(j) <- t;
      let l = Array.to_list a in
      (l, keep_steps l)
  | 2 when len >= 1 ->
      let i = Prng.int rng len in
      let l =
        List.concat (List.mapi (fun j x -> if j = i then [ x; x ] else [ x ]) sched)
      in
      (l, keep_steps l)
  | 3 when len >= 2 ->
      let i = Prng.int rng len in
      let k = 1 + Prng.int rng (max 1 (len / 4)) in
      let l = List.filteri (fun j _ -> j < i || j >= i + k) sched in
      (l, keep_steps l)
  | 4 -> (sched, max len steps + 32 + Prng.int rng 96)
  | _ ->
      let voc = vocab graph in
      let i = Prng.int rng (len + 1) in
      let tok = Prng.choose rng voc in
      let l =
        if i >= len then sched @ [ tok ]
        else List.concat (List.mapi (fun j x -> if j = i then [ tok; x ] else [ x ]) sched)
      in
      (l, keep_steps l)

let flip_variant (cfg : config) =
  {
    cfg with
    variant = (match cfg.variant with `Default -> `Suppressed | `Suppressed -> `Default);
  }

let cycle_init (cfg : config) =
  {
    cfg with
    init =
      (match cfg.init with
      | `Clean -> `Legitimate
      | `Legitimate -> `Random
      | `Random -> `Clean);
  }

(* A fresh graph invalidates everything that referenced the old one: the
   plan's events target the old edges, so a plan-carrying configuration
   gets a plan redrawn for the new topology. *)
let fresh_graph ~max_n rng (cfg : config) =
  let g = gen_graph ~max_n rng in
  let plan = if Fault.is_empty cfg.plan then Fault.empty else gen_plan g rng in
  { cfg with graph = g; plan }

let mutate_config ~max_n rng (cfg : config) =
  if Fault.is_empty cfg.plan then
    match Prng.int rng 8 with
    | 0 -> flip_variant cfg
    | 1 -> cycle_init cfg
    | 2 | 3 -> { cfg with engine_seed = Prng.int rng 1_000_000 }
    | 4 -> { cfg with plan = gen_plan cfg.graph rng; double_corrupt = false }
    | 5 -> { cfg with double_corrupt = not cfg.double_corrupt }
    | _ -> fresh_graph ~max_n rng cfg
  else
    (* Plan-carrying parents: most energy goes to the plan itself — a
       full redraw escapes dud plans, window shifts slide a tampering
       window onto (or off) the convergence transient, sharpening turns a
       plan into a stop-check stress test.  The engine seed redraws too:
       a race is a (plan, seed) coincidence, and a parent that converged
       cleanly has already proven its own pair harmless. *)
    match Prng.int rng 10 with
    | 0 -> if Prng.bool rng then flip_variant cfg else cycle_init cfg
    | 1 | 2 -> { cfg with engine_seed = Prng.int rng 1_000_000 }
    | 3 | 4 -> { cfg with plan = gen_plan cfg.graph rng; engine_seed = Prng.int rng 1_000_000 }
    | 5 ->
        let evs = cfg.plan.Fault.events in
        let i = Prng.int rng (List.length evs) in
        {
          cfg with
          plan = { cfg.plan with Fault.events = List.filteri (fun j _ -> j <> i) evs };
        }
    | 6 ->
        let d = Prng.int_in rng (-48) 48 in
        {
          cfg with
          plan =
            { cfg.plan with Fault.events = List.map (shift_event d) cfg.plan.Fault.events };
        }
    | 7 | 8 ->
        {
          cfg with
          plan = sharpen_plan rng cfg.plan;
          engine_seed = Prng.int rng 1_000_000;
        }
    | _ -> fresh_graph ~max_n rng cfg

let mutate_cfg_entry ~max_n rng (e : entry) =
  let cfg = mutate_config ~max_n rng e.config in
  if cfg.graph != e.config.graph then { config = cfg; sched = []; steps = 0 }
  else { e with config = cfg }

let mutate_entry ~max_n rng (e : entry) =
  let sched_share = if Fault.is_empty e.config.plan then 7 else 4 in
  if Prng.int rng 10 < sched_share && e.sched <> [] then begin
    let sched, steps = mutate_sched rng e.config.graph e.sched e.steps in
    { e with sched; steps }
  end
  else mutate_cfg_entry ~max_n rng e

(* The uniform baseline: a fresh random configuration and a pure random
   schedule (empty preference list) every execution.  Kind mix: 1/10
   decoupling, 3/10 adversity, 6/10 lockstep — the same mix the sweep
   uses, so the comparison measures feedback, not configuration reach. *)
let gen_random_entry ~max_n rng =
  let graph = gen_graph ~max_n rng in
  let variant = if Prng.bool rng then `Default else `Suppressed in
  let init = match Prng.int rng 3 with 0 -> `Clean | 1 -> `Legitimate | _ -> `Random in
  let kind = Prng.int rng 10 in
  let dc = kind = 0 in
  let plan = if (not dc) && kind < 4 then gen_plan graph rng else Fault.empty in
  {
    config =
      {
        variant;
        init;
        graph;
        engine_seed = Prng.int rng 1_000_000;
        plan;
        double_corrupt = dc;
      };
    sched = [];
    steps = 0;
  }

(* Entries sharing a configuration line are crossover-compatible. *)
let config_key (e : entry) = entry_to_string { e with sched = []; steps = 0 }

let crossover rng (a : entry) (b : entry) =
  let xa = Array.of_list a.sched and xb = Array.of_list b.sched in
  if Array.length xa = 0 || Array.length xb = 0 then a
  else begin
    let i = Prng.int rng (Array.length xa + 1) in
    let j = Prng.int rng (Array.length xb + 1) in
    let sched =
      Array.to_list (Array.sub xa 0 i)
      @ Array.to_list (Array.sub xb j (Array.length xb - j))
    in
    let sched = if sched = [] then a.sched else sched in
    { a with sched; steps = max (List.length sched) a.steps }
  end

let ensure_dir d = if not (Sys.file_exists d) then Sys.mkdir d 0o755

let save_case dir name line =
  ensure_dir dir;
  let oc = open_out (Filename.concat dir name) in
  output_string oc line;
  output_char oc '\n';
  close_out oc

let load_corpus dir =
  if not (Sys.file_exists dir) then []
  else
    Sys.readdir dir |> Array.to_list |> List.sort compare
    |> List.filter_map (fun f ->
           let trophy = String.length f >= 7 && String.sub f 0 7 = "trophy-" in
           if Filename.check_suffix f ".case" && not trophy then begin
             let ic = open_in (Filename.concat dir f) in
             let line = try input_line ic with End_of_file -> "" in
             close_in ic;
             try Some (entry_of_string line) with _ -> None
           end
           else None)

let campaign ?(mode = (`Fuzz : mode)) ?(quick = false) ?(budget_s = 60.)
    ?(max_execs = max_int) ?max_n ?(stop_on_trophy = false) ?(shrink_trophies = true)
    ?corpus_dir ~seed () =
  let max_n = match max_n with Some v -> v | None -> if quick then 10 else 96 in
  let rng = Prng.create seed in
  let t0 = Sys.time () in
  let fine = Hashtbl.create 4096 in
  let coarse_seen = Hashtbl.create 1024 in
  let buckets = Hashtbl.create 1024 in
  (* Per-kind sub-corpora with a weighted power schedule.  Novelty-based
     retention alone starves the rare kinds: lockstep entries produce far
     more fresh fingerprints per execution, so a flat corpus drifts to
     ~all-lockstep and adversity/decoupling configurations stop receiving
     mutation energy — exactly the entries that detect stop-predicate and
     stream-coupling bugs. *)
  let lock_c = ref [] and lock_n = ref 0 in
  let adv_c = ref [] and adv_n = ref 0 in
  let dc_c = ref [] and dc_n = ref 0 in
  let sub_of (e : entry) =
    if e.config.double_corrupt then (dc_c, dc_n)
    else if not (Fault.is_empty e.config.plan) then (adv_c, adv_n)
    else (lock_c, lock_n)
  in
  let ncorpus = ref 0 and saved = ref 0 in
  let burst_q = ref [] and burst_n = ref 0 in
  let trophies = ref [] and ntrophies = ref 0 in
  let timeline = ref [] in
  let execs = ref 0 in
  let queue =
    ref
      (match mode with
      | `Random_walk -> []
      | `Fuzz ->
          (match corpus_dir with Some d -> load_corpus d | None -> [])
          @ sweep_entries ~max_n rng)
  in
  let pick_parent () =
    (* Energy split: lockstep 6, adversity 3, decoupling 1 — among the
       kinds that have corpus entries.  Within a kind: half the picks go
       to the 16 most recent entries, half uniform.  Lockstep gets the
       lion's share because divergence bugs need many deep schedules;
       adversity rides mostly on the gap-burst feedback below. *)
    let pools =
      List.filter
        (fun (_, _, cnt) -> !cnt > 0)
        [ (6, lock_c, lock_n); (3, adv_c, adv_n); (1, dc_c, dc_n) ]
    in
    let total = List.fold_left (fun acc (w, _, _) -> acc + w) 0 pools in
    let roll = Prng.int rng total in
    let rec go acc = function
      | [ (_, c, cnt) ] -> (c, cnt)
      | (w, c, cnt) :: rest -> if roll < acc + w then (c, cnt) else go (acc + w) rest
      | [] -> assert false
    in
    let c, cnt = go 0 pools in
    let recent = min 16 !cnt in
    if Prng.bool rng then List.nth !c (Prng.int rng recent)
    else List.nth !c (Prng.int rng !cnt)
  in
  let next_entry () =
    match mode with
    | `Random_walk -> gen_random_entry ~max_n rng
    | `Fuzz -> (
        match !queue with
        | e :: rest ->
            queue := rest;
            e
        | [] when !burst_q <> [] && Prng.int rng 3 = 0 -> (
            (* Burst entries preempt only 1 pick in 3: a gap-burst chain
               must sharpen the adversity search without starving the
               lockstep share that divergence bugs need. *)
            match !burst_q with
            | e :: rest ->
                burst_q := rest;
                decr burst_n;
                e
            | [] -> assert false)
        | [] ->
            (* 1-in-4 fresh draws: corpus parents are proven-clean for
               their exact trajectory, so pure mutation under-explores
               configurations — fresh entries keep the blind-spot search
               alive alongside the guided one. *)
            if !ncorpus = 0 || Prng.int rng 4 = 0 then gen_random_entry ~max_n rng
            else begin
              let parent = pick_parent () in
              if Prng.int rng 10 = 0 then begin
                let pool, _ = sub_of parent in
                let key = config_key parent in
                match
                  List.filter (fun e -> e != parent && config_key e = key) !pool
                with
                | [] -> mutate_entry ~max_n rng parent
                | mates -> crossover rng parent (List.nth mates (Prng.int rng (List.length mates)))
              end
              else mutate_entry ~max_n rng parent
            end)
  in
  let retain e =
    let pool, cnt = sub_of e in
    pool := e :: !pool;
    incr cnt;
    incr ncorpus;
    match corpus_dir with
    | None -> ()
    | Some d ->
        incr saved;
        save_case d (Printf.sprintf "s%d-%06d.case" seed !saved) (entry_to_string e)
  in
  let keep_trophy t =
    trophies := t :: !trophies;
    incr ntrophies;
    match corpus_dir with
    | None -> ()
    | Some d ->
        save_case d
          (Printf.sprintf "trophy-s%d-%d.case" seed !ntrophies)
          (entry_to_string t.t_entry);
        save_case d
          (Printf.sprintf "trophy-s%d-%d.info" seed !ntrophies)
          (Printf.sprintf "%s: %s" (kind_to_string t.t_kind) t.t_detail)
  in
  let continue_ () =
    !execs < max_execs
    && Sys.time () -. t0 < budget_s
    && not (stop_on_trophy && !trophies <> [])
  in
  while continue_ () do
    let e = next_entry () in
    incr execs;
    let erng = Prng.split rng in
    let (x_fail, executed, fps, coarse), census =
      try
        let out, census =
          Mutation.with_coverage (fun () -> execute ~strict:false ~rng:erng e)
        in
        ((out.x_fail, out.x_executed, out.x_fps, out.x_coarse), census)
      with exn -> ((Some (Crash, Printexc.to_string exn), [], [], []), [])
    in
    let interesting = ref false in
    let note tbl k =
      if not (Hashtbl.mem tbl k) then begin
        Hashtbl.add tbl k ();
        interesting := true
      end
    in
    List.iter (note fine) fps;
    List.iter (note coarse_seen) coarse;
    List.iter (fun (p, hits) -> note buckets (p, bucketize hits)) census;
    (match x_fail with
    | Some (k, d) ->
        let t_entry =
          if executed = [] then e
          else { e with sched = executed; steps = List.length executed }
        in
        let t = { t_kind = k; t_entry; t_detail = d } in
        keep_trophy (if shrink_trophies then shrink_trophy ~max_attempts:120 t else t)
    | None ->
        if mode = `Fuzz then begin
          let kept =
            if executed = [] then e
            else { e with sched = executed; steps = List.length executed }
          in
          if !interesting then retain kept;
          (* Novelty feedback beyond retention: an adversity run whose
             convergence check fired within 4 rounds of the last fault
             came close to a stop-check race.  Burst-schedule config
             mutations of it (plan sharpen / redraw, seed redraw) ahead
             of the regular power schedule. *)
          if
            List.exists (fun (p, _) -> p = "fuzz:adv-gap-0") census
            && !burst_n < 12
          then
            for _ = 1 to 3 do
              burst_q := mutate_cfg_entry ~max_n rng kept :: !burst_q;
              incr burst_n
            done
        end);
    if !execs land 15 = 0 then timeline := (!execs, Hashtbl.length fine) :: !timeline
  done;
  timeline := (!execs, Hashtbl.length fine) :: !timeline;
  {
    s_mode = mode;
    s_execs = !execs;
    s_corpus = !ncorpus;
    s_fine = Hashtbl.length fine;
    s_coarse = Hashtbl.length coarse_seen;
    s_buckets = Hashtbl.length buckets;
    s_trophies = !trophies;
    s_elapsed = Sys.time () -. t0;
    s_timeline = List.rev !timeline;
  }

(* ---------------- mutation-detection benchmark ---------------- *)

type detection = {
  d_mutant : string;
  d_fuzz : int option array;
  d_random : int option array;
}

let detect ?(seeds = 5) ?(max_execs = 2000) ?(budget_s = 120.) mutant =
  if not (List.mem mutant Mutation.names) then
    fail "Fuzz.detect: unknown mutant %S" mutant;
  let base = Prng.seed_of_string mutant land 0xFFFFFF in
  let arm mode =
    Array.init seeds (fun i ->
        Mutation.force (Some [ mutant ]);
        Fun.protect
          ~finally:(fun () -> Mutation.force None)
          (fun () ->
            let s =
              campaign ~mode ~quick:true ~budget_s ~max_execs ~stop_on_trophy:true
                ~shrink_trophies:false
                ~seed:(base + (7919 * i))
                ()
            in
            if s.s_trophies <> [] then Some s.s_execs else None))
  in
  { d_mutant = mutant; d_fuzz = arm `Fuzz; d_random = arm `Random_walk }

let median_execs results ~max_execs =
  let vals =
    Array.map (function Some v -> v | None -> max_execs + 1) results
  in
  Array.sort compare vals;
  vals.(Array.length vals / 2)

let downsample ~keep l =
  let arr = Array.of_list l in
  let len = Array.length arr in
  if len <= keep then l else List.init keep (fun i -> arr.(i * len / keep))

let bench_json ?(quick = false) ?seeds ?max_execs ?budget_s ~seed () =
  let seeds = match seeds with Some v -> v | None -> if quick then 2 else 5 in
  let max_execs = match max_execs with Some v -> v | None -> if quick then 300 else 2000 in
  let budget_s = match budget_s with Some v -> v | None -> if quick then 10. else 120. in
  let cam_budget = if quick then 5. else 20. in
  let cam_execs = if quick then 150 else 800 in
  let cam mode =
    campaign ~mode ~quick:true ~budget_s:cam_budget ~max_execs:cam_execs
      ~shrink_trophies:false ~seed ()
  in
  let fuzz = cam `Fuzz and random = cam `Random_walk in
  let stats_json s =
    let timeline =
      downsample ~keep:40 s.s_timeline
      |> List.map (fun (x, f) -> Printf.sprintf "[%d,%d]" x f)
      |> String.concat ","
    in
    Printf.sprintf
      {|{"execs":%d,"corpus":%d,"fine_fps":%d,"coarse_fps":%d,"probe_buckets":%d,"trophies":%d,"elapsed_s":%.3f,"execs_per_s":%.1f,"timeline":[%s]}|}
      s.s_execs s.s_corpus s.s_fine s.s_coarse s.s_buckets
      (List.length s.s_trophies) s.s_elapsed
      (float_of_int s.s_execs /. Float.max s.s_elapsed 1e-9)
      timeline
  in
  let detections = List.map (fun m -> detect ~seeds ~max_execs ~budget_s m) Mutation.names in
  let opt = function Some v -> string_of_int v | None -> "null" in
  let arr a = "[" ^ String.concat "," (Array.to_list (Array.map opt a)) ^ "]" in
  let row d =
    let fm = median_execs d.d_fuzz ~max_execs and rm = median_execs d.d_random ~max_execs in
    let beats = Array.for_all (fun x -> x <> None) d.d_fuzz && fm < rm in
    ( beats,
      Printf.sprintf
        {|{"mutant":"%s","fuzz_execs":%s,"fuzz_median":%d,"random_execs":%s,"random_median":%d,"fuzz_beats_random":%b}|}
        d.d_mutant (arr d.d_fuzz) fm (arr d.d_random) rm beats )
  in
  let rows = List.map row detections in
  let all_beaten = List.for_all fst rows in
  let json =
    Printf.sprintf
      {|{"schema":"mdst-bench-fuzz/1","quick":%b,"seeds":%d,"max_execs":%d,"campaign":{"fuzz":%s,"random":%s},"detection":[%s],"all_mutants_beaten":%b}|}
      quick seeds max_execs (stats_json fuzz) (stats_json random)
      (String.concat "," (List.map snd rows))
      all_beaten
  in
  (json, all_beaten)

(* Packed property suites shared by the CLI `pbt` subcommand and the
   bounded test suite.  Keep each property cheap: `dune runtest` runs
   these with two-digit test counts. *)

module Prng = Mdst_util.Prng
module Graph = Mdst_graph.Graph
module Fault = Mdst_sim.Fault

type packed = Pack : 'a Property.t -> packed

let name (Pack p) = p.Property.name

let check ?tests ?seed (Pack p) = Property.check ?tests ?seed p

(* ---------------- helpers ---------------- *)

let canonical_edges edges =
  List.map (fun (u, v) -> (min u v, max u v)) edges |> List.sort_uniq compare

let graph_equal a b =
  Graph.n a = Graph.n b
  && List.init (Graph.n a) (Graph.id a) = List.init (Graph.n b) (Graph.id b)
  && canonical_edges (Array.to_list (Graph.edges a))
     = canonical_edges (Array.to_list (Graph.edges b))

let seq_take k seq =
  (* Seq.take, but without pinning the stdlib version. *)
  let rec go k seq () =
    if k <= 0 then Seq.Nil
    else match seq () with Seq.Nil -> Seq.Nil | Seq.Cons (x, rest) -> Seq.Cons (x, go (k - 1) rest)
  in
  go k seq

let seed_gen = Gen.int_in 0 1_000_000_000

(* ---------------- prng ---------------- *)

let prng_int_in_bounds =
  let gen rng =
    let seed = seed_gen (Prng.split rng) in
    let lo = Gen.int_in (-1000) 1000 (Prng.split rng) in
    let span = Gen.int_in 0 2000 (Prng.split rng) in
    (seed, lo, lo + span)
  in
  Property.make ~name:"prng:int-in-bounds" ~gen
    ~print:(fun (s, lo, hi) -> Printf.sprintf "seed=%d lo=%d hi=%d" s lo hi)
    (fun (seed, lo, hi) ->
      let r = Prng.create seed in
      let bad = ref None in
      for _ = 1 to 100 do
        let v = Prng.int_in r lo hi in
        if v < lo || v > hi then bad := Some v
      done;
      match !bad with
      | None -> Ok ()
      | Some v -> Error (Printf.sprintf "draw %d outside [%d, %d]" v lo hi))

let prng_sample_without_replacement =
  let gen rng =
    let seed = seed_gen (Prng.split rng) in
    let n = Gen.int_in 0 200 (Prng.split rng) in
    let k = Gen.int_in 0 n (Prng.split rng) in
    (seed, n, k)
  in
  Property.make ~name:"prng:sample-without-replacement" ~gen
    ~print:(fun (s, n, k) -> Printf.sprintf "seed=%d n=%d k=%d" s n k)
    (fun (seed, n, k) ->
      let xs = Prng.sample_without_replacement (Prng.create seed) k n in
      if List.length xs <> k then
        Error (Printf.sprintf "drew %d values, wanted %d" (List.length xs) k)
      else if List.exists (fun x -> x < 0 || x >= n) xs then
        Error (Printf.sprintf "value outside [0, %d)" n)
      else
        let rec strictly_increasing = function
          | a :: (b :: _ as rest) -> a < b && strictly_increasing rest
          | _ -> true
        in
        if strictly_increasing xs then Ok ()
        else Error "result not strictly increasing (duplicate or unsorted)")

let prng_split_distinct =
  Property.make ~name:"prng:split-streams-distinct" ~gen:seed_gen
    ~print:(fun s -> Printf.sprintf "seed=%d" s)
    (fun seed ->
      let parent = Prng.create seed in
      let firsts = List.init 256 (fun _ -> Prng.bits64 (Prng.split parent)) in
      let distinct = List.length (List.sort_uniq compare firsts) in
      if distinct = 256 then Ok ()
      else Error (Printf.sprintf "only %d distinct first outputs across 256 split children" distinct))

let prng_determinism =
  Property.make ~name:"prng:create-copy-determinism" ~gen:seed_gen
    ~print:(fun s -> Printf.sprintf "seed=%d" s)
    (fun seed ->
      let a = Prng.create seed and b = Prng.create seed in
      let stream r = List.init 64 (fun _ -> Prng.bits64 r) in
      if stream a <> stream b then Error "two generators from one seed diverged"
      else
        let c = Prng.copy a in
        if stream a = stream c then Ok ()
        else Error "a copy diverged from its original")

let prng = [ Pack prng_int_in_bounds; Pack prng_sample_without_replacement;
             Pack prng_split_distinct; Pack prng_determinism ]

(* ---------------- graph ---------------- *)

let prufer_roundtrip =
  let gen rng =
    let n = Gen.int_in 2 40 (Prng.split rng) in
    (n, Mdst_graph.Prufer.random_tree (Prng.split rng) ~n)
  in
  Property.make ~name:"graph:prufer-roundtrip" ~gen
    ~print:(fun (n, edges) ->
      Printf.sprintf "n=%d edges=%s" n
        (String.concat ","
           (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) edges)))
    (fun (n, edges) ->
      let back = Mdst_graph.Prufer.decode ~n (Mdst_graph.Prufer.encode ~n edges) in
      if canonical_edges back = canonical_edges edges then Ok ()
      else Error "decode (encode tree) is a different tree")

let generator_connected =
  Property.make ~name:"graph:generator-connected"
    ~gen:(Gen.connected_graph ~min_n:4 ~max_n:16 ())
    ~shrink:Shrink.graph ~print:Mdst_graph.Io.to_string
    (fun g ->
      if not (Mdst_graph.Algo.is_connected g) then Error "generated graph is disconnected"
      else if Graph.n g < 4 || Graph.n g > 16 then
        Error (Printf.sprintf "n = %d outside the requested [4, 16]" (Graph.n g))
      else Ok ())

let io_roundtrip =
  Property.make ~name:"graph:io-roundtrip"
    ~gen:(Gen.connected_graph ())
    ~shrink:Shrink.graph ~print:Mdst_graph.Io.to_string
    (fun g ->
      let back = Mdst_graph.Io.of_string (Mdst_graph.Io.to_string g) in
      if graph_equal g back then Ok ()
      else Error "of_string (to_string g) differs from g")

let shrink_preserves_connectivity =
  Property.make ~name:"graph:shrink-candidates-connected"
    ~gen:(Gen.connected_graph ~max_n:10 ())
    ~print:Mdst_graph.Io.to_string
    (fun g ->
      let bad =
        Seq.filter (fun c -> not (Mdst_graph.Algo.is_connected c)) (seq_take 64 (Shrink.graph g))
      in
      match bad () with
      | Seq.Nil -> Ok ()
      | Seq.Cons (c, _) ->
          Error
            (Printf.sprintf "shrink candidate disconnected:\n%s" (Mdst_graph.Io.to_string c)))

let graph = [ Pack prufer_roundtrip; Pack generator_connected; Pack io_roundtrip;
              Pack shrink_preserves_connectivity ]

(* ---------------- faults / reproducer formats ---------------- *)

let plan_gen rng =
  let g = Gen.connected_graph () (Prng.split rng) in
  Gen.fault_plan ~graph:g () (Prng.split rng)

let plan_roundtrip =
  Property.make ~name:"faults:plan-roundtrip" ~gen:plan_gen
    ~shrink:Shrink.plan ~print:Fault.to_string
    (fun p ->
      if Fault.of_string (Fault.to_string p) = p then Ok ()
      else Error "of_string (to_string plan) differs from plan")

let plan_horizon =
  Property.make ~name:"faults:plan-within-horizon" ~gen:plan_gen
    ~shrink:Shrink.plan ~print:Fault.to_string
    (fun p ->
      if Fault.last_fault_round p > 400 then
        Error (Printf.sprintf "last fault round %d past the 400 horizon" (Fault.last_fault_round p))
      else if List.exists (fun v -> v < 0) (Fault.nodes_mentioned p) then
        Error "negative node mentioned"
      else Ok ())

let case_roundtrip =
  Property.make ~name:"faults:case-roundtrip"
    ~gen:(Convergence.gen_case ())
    ~shrink:Convergence.shrink_case ~print:Convergence.case_to_string
    (fun c ->
      let back = Convergence.case_of_string (Convergence.case_to_string c) in
      if
        graph_equal c.Convergence.graph back.Convergence.graph
        && back.Convergence.plan = c.Convergence.plan
        && back.Convergence.seed = c.Convergence.seed
      then Ok ()
      else Error "case_of_string (case_to_string c) differs from c")

let faults = [ Pack plan_roundtrip; Pack plan_horizon; Pack case_roundtrip ]

(* ---------------- model ---------------- *)

module Model = Mdst_model.Model
module Projection = Mdst_core.Projection

(* A small engine exists here only to manufacture realistic configurations
   (clean or adversarial) for the model-level properties; the walks
   themselves are pure [Model.step] iteration. *)
module ME = Mdst_sim.Engine.Make (Mdst_core.Proto.Default)

let seed_model (c : Conformance.case) =
  let init = match c.Conformance.init with `Clean -> `Clean | `Random -> `Random in
  let e = ME.create ~seed:c.Conformance.seed ~init c.Conformance.graph in
  Model.make ~params:Model.default ~states:(ME.states e) ~in_flight:(ME.in_flight e)
    c.Conformance.graph

(* Walk [steps] uniformly random enabled events (every tick, every
   non-empty channel head), calling [f] on each configuration/event pair
   before stepping.  Event choice derives from the case seed only, so a
   case string replays the walk. *)
let walk_model (c : Conformance.case) f =
  let rng = Prng.create (c.Conformance.seed lxor 0x5eed) in
  let cur = ref (seed_model c) in
  for _ = 1 to c.Conformance.events do
    let n = Graph.n (!cur).Model.graph in
    let delivers =
      Model.nonempty_channels !cur
      |> List.map (fun (src, dst) -> Model.Deliver { src; dst })
    in
    let events = Array.of_list (List.init n (fun v -> Model.Tick v) @ delivers) in
    let ev = events.(Prng.int rng (Array.length events)) in
    f !cur ev;
    cur := Model.step !cur ev
  done;
  !cur

let model_gen = Conformance.gen_case ~min_n:3 ~max_n:7 ~max_events:60 ()

let model_step_determinism =
  Property.make ~name:"model:step-determinism" ~gen:model_gen
    ~shrink:Conformance.shrink_case ~print:Conformance.case_to_string
    (fun c ->
      let bad = ref None in
      ignore
        (walk_model c (fun cfg ev ->
             if !bad = None && not (Model.equal (Model.step cfg ev) (Model.step cfg ev))
             then bad := Some (Model.event_to_string ev)));
      match !bad with
      | None -> Ok ()
      | Some ev ->
          Error (Printf.sprintf "two applications of event %s disagree (step impure?)" ev))

let model_projection_roundtrip =
  Property.make ~name:"model:projection-roundtrip" ~gen:model_gen
    ~shrink:Conformance.shrink_case ~print:Conformance.case_to_string
    (fun c ->
      let bad = ref false in
      ignore
        (walk_model c (fun cfg _ ->
             let p = Projection.of_states cfg.Model.nodes in
             if not (Projection.equal (Projection.of_string (Projection.to_string p)) p)
             then bad := true));
      if !bad then Error "of_string (to_string projection) differs from projection"
      else Ok ())

let model_fingerprint_stability =
  (* The explorer keys its visited set on [fingerprint_states]; two things
     must hold for that to be sound: the allocation-free hash agrees with
     the projection-level one, and the phase bits (busy, deblock — excluded
     from the hash so post-convergence quiescence stays detectable) never
     influence it. *)
  Property.make ~name:"model:fingerprint-stability" ~gen:model_gen
    ~shrink:Conformance.shrink_case ~print:Conformance.case_to_string
    (fun c ->
      let bad = ref None in
      ignore
        (walk_model c (fun cfg _ ->
             if !bad = None then begin
               let p = Projection.of_states cfg.Model.nodes in
               let fp = Projection.fingerprint p in
               if Projection.fingerprint_states cfg.Model.nodes <> fp then
                 bad := Some "fingerprint_states disagrees with fingerprint-of-projection"
               else
                 let flipped =
                   Array.map
                     (fun nd ->
                       {
                         nd with
                         Projection.p_busy = not nd.Projection.p_busy;
                         p_deblock = not nd.Projection.p_deblock;
                       })
                     p
                 in
                 if Projection.fingerprint flipped <> fp then
                   bad := Some "phase bits leak into the fingerprint"
             end));
      match !bad with None -> Ok () | Some why -> Error why)

let model =
  [
    Pack model_step_determinism;
    Pack model_projection_roundtrip;
    Pack model_fingerprint_stability;
    Pack (Conformance.Default.property ~max_n:6 ~max_events:150 ());
    Pack (Conformance.Suppressed.property ~max_n:6 ~max_events:150 ());
  ]

(* ---------------- proto ---------------- *)

(* Each test is a full clean-start run to convergence plus an observation
   window, so the graphs stay small — the bounded suite runs this with
   two-digit test counts. *)
let proto = [ Pack (Searchpath.property ~min_n:4 ~max_n:10 ()) ]

let all = prng @ graph @ faults @ model @ proto

let suite_names = [ "prng"; "graph"; "faults"; "model"; "proto"; "all" ]

let by_name = function
  | "prng" -> prng
  | "graph" -> graph
  | "faults" -> faults
  | "model" -> model
  | "proto" -> proto
  | "all" -> all
  | s ->
      invalid_arg
        (Printf.sprintf
           "Suites.by_name: unknown suite %S (want prng|graph|faults|model|proto|all)" s)

(* Bounded schedule exploration.  See explore.mli for the statement.

   The DFS carries one canonical configuration (the model's) and, for every
   transition, steps it twice: once through the real protocol handlers
   (driven directly, with hand-built contexts — the handlers are
   deterministic and never touch ctx.rng / ctx.now, which the conformance
   property verifies continuously) and once through the reference model.
   Equal results let the search continue on either; unequal results are a
   conformance violation with the full event path as reproducer. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Model = Mdst_model.Model
module Node = Mdst_sim.Node
module State = Mdst_core.State
module Msg = Mdst_core.Msg
module Checker = Mdst_core.Checker
module Projection = Mdst_core.Projection
module Fr = Mdst_baseline.Fr
module Prng = Mdst_util.Prng

type init = [ `Clean | `Random of int | `Legitimate ]

type stats = {
  configs : int;
  transitions : int;
  max_depth_reached : int;
  truncated : bool;
}

type kind = Conformance_divergence | Closure_violation

type violation = { kind : kind; path : string; detail : string }

let pp_violation ppf v =
  Format.fprintf ppf "%s after [%s]: %s"
    (match v.kind with
    | Conformance_divergence -> "conformance divergence"
    | Closure_violation -> "closure violation")
    v.path v.detail

module type S = sig
  val dfs :
    ?max_depth:int ->
    ?max_configs:int ->
    init:init ->
    Graph.t ->
    stats * violation option

  val walk :
    ?steps:int ->
    seed:int ->
    init:[ `Clean | `Random ] ->
    Graph.t ->
    (int, string) result
end

(* ---------------- shared premise machinery ---------------- *)

let current_info ctxs states v =
  let st = states.(v) in
  {
    Msg.i_root = st.State.root;
    i_parent = st.State.parent;
    i_dist = st.State.dist;
    i_deg = State.tree_degree ctxs.(v) st;
    i_dmax = st.State.dmax;
    i_color = st.State.color;
    i_subtree_max = st.State.subtree_max;
  }

let views_accurate ctxs states =
  let ok = ref true in
  Array.iteri
    (fun v st ->
      Array.iteri
        (fun s w ->
          let vw = st.State.views.(s) in
          let stw = states.(w) in
          if
            not
              (vw.State.w_fresh && vw.State.w_root = stw.State.root
              && vw.State.w_parent = stw.State.parent
              && vw.State.w_dist = stw.State.dist
              && vw.State.w_deg = State.tree_degree ctxs.(w) stw
              && vw.State.w_dmax = stw.State.dmax
              && vw.State.w_color = stw.State.color
              && vw.State.w_subtree_max = stw.State.subtree_max)
          then ok := false)
        ctxs.(v).Node.neighbors)
    states;
  !ok

(* A message is premise-compatible when delivering it (now or later) cannot
   feed a node data that disagrees with the network's current truth:
   an Info that is exactly the sender's current public variables, a Search
   whose every stack entry matches its node's current degree and distance,
   or a Deblock (a pure request to search).  Everything else — mid-swap
   traffic, distance repair, stale gossip — falsifies the premise. *)
let message_ok ctxs graph states src msg =
  match msg with
  | Msg.Info i -> i = current_info ctxs states src
  | Msg.Search { s_stack; _ } ->
      List.for_all
        (fun e ->
          match Graph.index_of_id graph e.Msg.e_id with
          | exception Not_found -> false
          | w ->
              e.Msg.e_deg = State.tree_degree ctxs.(w) states.(w)
              && e.Msg.e_dist = states.(w).State.dist)
        s_stack
  | Msg.Deblock _ -> true
  | Msg.Swap_req _ | Msg.Remove _ | Msg.Grant _ | Msg.Reverse _
  | Msg.Update_dist _ ->
      false

(* The legitimacy-closure premise: from here, every enabled event must lead
   to a legitimate configuration.  [not (Fr.improvable tree)] is the paper's
   fixpoint condition — while an improvement exists the protocol rightly
   commits a swap, transiting through configurations whose dmax bookkeeping
   lags the tree. *)
let premise_with ctxs graph nodes channels =
  Checker.legitimate graph nodes
  && Array.for_all (fun st -> st.State.pending = None) nodes
  && views_accurate ctxs nodes
  && (let ok = ref true in
      let n = Graph.n graph in
      Array.iteri
        (fun k l ->
          let src = k / n in
          List.iter
            (fun m -> if not (message_ok ctxs graph nodes src m) then ok := false)
            l)
        channels;
      !ok)
  &&
  match Checker.tree_of_states graph nodes with
  | None -> false
  | Some tree -> not (Fr.improvable tree)

(* ---------------- initial configurations ---------------- *)

let legitimate_with ctxs graph =
  let tree = Fr.approx_mdst ~root:(Graph.min_id_node graph) graph in
  let dmax = Tree.max_degree tree in
  let root = Tree.root tree in
  let root_id = Graph.id graph root in
  let n = Graph.n graph in
  let stm = Array.make n 0 in
  let rec fill v =
    let m = ref (Tree.degree tree v) in
    List.iter
      (fun c ->
        fill c;
        if stm.(c) > !m then m := stm.(c))
      (Tree.children tree v);
    stm.(v) <- !m
  in
  fill root;
  let parent_id v = Graph.id graph (if v = root then v else Tree.parent tree v) in
  Array.init n (fun v ->
      let views =
        Array.map
          (fun w ->
            {
              State.w_root = root_id;
              w_parent = parent_id w;
              w_dist = Tree.depth tree w;
              w_deg = Tree.degree tree w;
              w_dmax = dmax;
              w_color = false;
              w_subtree_max = stm.(w);
              w_fresh = true;
            })
          ctxs.(v).Node.neighbors
      in
      {
        State.root = root_id;
        parent = parent_id v;
        dist = Tree.depth tree v;
        dmax;
        color = false;
        subtree_max = stm.(v);
        views;
        pending = None;
        deblock = None;
        search_cursor = 0;
        last_info = None;
        info_age = 0;
      })

(* Handler-independent contexts: the premise and the legitimate builder
   only read the topology fields (neighbors / ids / n), so a no-op-send
   context array lets external harnesses (the fuzzer) call them against a
   bare graph.  The exported graph-only wrappers below build one per call —
   O(n·δ) array setup, noise next to the checks themselves. *)
let dummy_ctxs graph =
  let n = Graph.n graph in
  Array.init n (fun v ->
      let nbrs = Array.copy (Graph.neighbors graph v) in
      {
        Node.node = v;
        id = Graph.id graph v;
        n;
        neighbors = nbrs;
        neighbor_ids = Array.map (Graph.id graph) nbrs;
        send = (fun _ _ -> ());
        note_suppressed = (fun _ -> ());
        rng = Prng.create 0;
        now = (fun () -> 0.0);
      })

let legitimate_states graph = legitimate_with (dummy_ctxs graph) graph

let premise graph nodes channels = premise_with (dummy_ctxs graph) graph nodes channels

(* ---------------- the explorer ---------------- *)

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (P : sig
  val params : Model.params
end) =
struct
  module E = Mdst_sim.Engine.Make (A)

  let make_ctxs graph outbox =
    let n = Graph.n graph in
    Array.init n (fun v ->
        let nbrs = Array.copy (Graph.neighbors graph v) in
        {
          Node.node = v;
          id = Graph.id graph v;
          n;
          neighbors = nbrs;
          neighbor_ids = Array.map (Graph.id graph) nbrs;
          send = (fun dst msg -> outbox := (v, dst, msg) :: !outbox);
          note_suppressed = (fun _ -> ());
          rng = Prng.create 0;
          now = (fun () -> 0.0);
        })

  let initial ctxs ~init graph =
    let n = Graph.n graph in
    let nodes, channels =
      match init with
      | `Clean -> (Array.init n (fun v -> A.init ctxs.(v)), Array.make (n * n) [])
      | `Legitimate -> (legitimate_with ctxs graph, Array.make (n * n) [])
      | `Random seed ->
          let rng = Prng.create seed in
          let nodes = Array.init n (fun v -> A.random_state ctxs.(v) (Prng.split rng)) in
          let channels = Array.make (n * n) [] in
          for u = 0 to n - 1 do
            Array.iter
              (fun v ->
                let k = Prng.int rng 3 in
                channels.((u * n) + v) <-
                  List.filter_map
                    (fun _ -> A.random_msg ctxs.(u) (Prng.split rng))
                    (List.init k Fun.id))
              (Graph.neighbors graph u)
          done;
          (nodes, channels)
    in
    { Model.graph; params = P.params; nodes; channels }

  (* The same event through the real handlers. *)
  let real_step ctxs outbox n (m : Model.config) ev =
    outbox := [];
    let nodes = Array.copy m.Model.nodes in
    let channels = Array.copy m.Model.channels in
    (match ev with
    | Model.Tick v -> nodes.(v) <- A.on_tick ctxs.(v) nodes.(v)
    | Model.Deliver { src; dst } -> (
        let k = (src * n) + dst in
        match channels.(k) with
        | [] -> invalid_arg "Explore.real_step: empty channel"
        | msg :: rest ->
            channels.(k) <- rest;
            nodes.(dst) <- A.on_message ctxs.(dst) nodes.(dst) ~src msg));
    List.iter
      (fun (sender, dst, msg) ->
        let k = (sender * n) + dst in
        channels.(k) <- channels.(k) @ [ msg ])
      (List.rev !outbox);
    (nodes, channels)

  let mismatch_detail n (rn, rc) (m' : Model.config) =
    let v = ref (-1) in
    Array.iteri (fun i s -> if !v < 0 && s <> m'.Model.nodes.(i) then v := i) rn;
    if !v >= 0 then
      Printf.sprintf "node %d: real handlers and model disagree" !v
    else begin
      let k = ref (-1) in
      Array.iteri (fun i l -> if !k < 0 && l <> m'.Model.channels.(i) then k := i) rc;
      if !k >= 0 then
        Printf.sprintf "channel %d->%d: real handlers and model disagree" (!k / n)
          (!k mod n)
      else "no difference located (internal error)"
    end

  let enabled n (m : Model.config) =
    let delivers = ref [] in
    Array.iteri
      (fun k l ->
        if l <> [] then
          delivers := Model.Deliver { src = k / n; dst = k mod n } :: !delivers)
      m.Model.channels;
    List.rev !delivers @ List.init n (fun v -> Model.Tick v)

  let dfs ?(max_depth = 10) ?(max_configs = 20_000) ~init graph =
    let n = Graph.n graph in
    let outbox = ref [] in
    let ctxs = make_ctxs graph outbox in
    let m0 = initial ctxs ~init graph in
    let visited : (int, (State.t array * Msg.t list array) list) Hashtbl.t =
      Hashtbl.create 1024
    in
    let configs = ref 0
    and transitions = ref 0
    and max_depth_reached = ref 0
    and truncated = ref false
    and violation = ref None in
    let seen (m : Model.config) =
      (* The quiescence fingerprint alone is a terrible key here: every
         configuration reachable from a legitimate one shares it, collapsing
         the table into one bucket.  Folding in a deep generic hash of the
         full configuration keeps buckets short; the bucket's full
         structural comparison is what makes the visited set sound either
         way. *)
      let fp =
        Projection.fingerprint_states m.Model.nodes
        lxor Hashtbl.hash_param 500 4000 (m.Model.nodes, m.Model.channels)
      in
      let bucket = try Hashtbl.find visited fp with Not_found -> [] in
      if
        List.exists
          (fun (s, c) -> s = m.Model.nodes && c = m.Model.channels)
          bucket
      then true
      else begin
        Hashtbl.replace visited fp ((m.Model.nodes, m.Model.channels) :: bucket);
        false
      end
    in
    let rec expand m depth path =
      if !violation <> None || seen m then ()
      else if !configs >= max_configs then truncated := true
      else begin
        incr configs;
        if depth > !max_depth_reached then max_depth_reached := depth;
        if depth >= max_depth then truncated := true
        else
          let prem = premise_with ctxs graph m.Model.nodes m.Model.channels in
          List.iter
            (fun ev ->
              if !violation = None then begin
                incr transitions;
                let m' = Model.step m ev in
                let (rn, rc) = real_step ctxs outbox n m ev in
                let path' = List.rev (Model.event_to_string ev :: path) in
                if not (rn = m'.Model.nodes && rc = m'.Model.channels) then
                  violation :=
                    Some
                      {
                        kind = Conformance_divergence;
                        path = String.concat "," path';
                        detail = mismatch_detail n (rn, rc) m';
                      }
                else if prem && not (Checker.legitimate graph m'.Model.nodes)
                then
                  violation :=
                    Some
                      {
                        kind = Closure_violation;
                        path = String.concat "," path';
                        detail =
                          "legitimate configuration stepped to an illegitimate one";
                      }
                else expand m' (depth + 1) (Model.event_to_string ev :: path)
              end)
            (enabled n m)
      end
    in
    expand m0 0 [];
    ( {
        configs = !configs;
        transitions = !transitions;
        max_depth_reached = !max_depth_reached;
        truncated = !truncated;
      },
      !violation )

  (* ---------------- random lockstep walk ---------------- *)

  let walk ?(steps = 500) ~seed ~init graph =
    let n = Graph.n graph in
    let init_e = match init with `Clean -> `Clean | `Random -> `Random in
    let engine = E.create ~seed ~init:init_e graph in
    let model =
      ref
        (Model.make ~params:P.params ~states:(E.states engine)
           ~in_flight:(E.in_flight engine) graph)
    in
    let rng = Prng.create (seed lxor 0x9e3f) in
    let err = ref None in
    let i = ref 0 in
    while !i < steps && !err = None do
      incr i;
      let chosen = ref None in
      ignore
        (E.step_with engine ~choose:(fun arr ->
             let k = Prng.int rng (Array.length arr) in
             chosen := Some arr.(k);
             k));
      (match !chosen with
      | None -> err := Some (Printf.sprintf "step %d: engine ran no event" !i)
      | Some (E.Choose_tick { node }) ->
          model := Model.step !model (Model.Tick node)
      | Some (E.Choose_deliver { src; dst; label }) -> (
          match Model.peek !model ~src ~dst with
          | Some m when Msg.label m = label ->
              model := Model.step !model (Model.Deliver { src; dst })
          | Some m ->
              err :=
                Some
                  (Printf.sprintf
                     "step %d: channel %d->%d head mismatch (engine %s, model %s)"
                     !i src dst label (Msg.label m))
          | None ->
              err :=
                Some
                  (Printf.sprintf
                     "step %d: engine delivered %s on %d->%d but model channel is empty"
                     !i label src dst)));
      if !err = None && E.states engine <> (!model).Model.nodes then
        err := Some (Printf.sprintf "step %d: node states diverged" !i)
    done;
    (match !err with
    | Some _ -> ()
    | None ->
        let chans = Array.make (n * n) [] in
        List.iter
          (fun (src, dst, msg) ->
            let k = (src * n) + dst in
            chans.(k) <- msg :: chans.(k))
          (E.in_flight engine);
        Array.iteri (fun k l -> chans.(k) <- List.rev l) chans;
        Array.iteri
          (fun k l ->
            if !err = None && l <> (!model).Model.channels.(k) then
              err :=
                Some
                  (Printf.sprintf "final in-flight mismatch on channel %d->%d"
                     (k / n) (k mod n)))
          chans);
    match !err with None -> Ok !i | Some e -> Error e
end

module Default = Make (Mdst_core.Proto.Default) (struct
  let params = Model.default
end)

module Suppressed = Make (Mdst_core.Proto.Suppressed) (struct
  let params = Model.suppressed
end)

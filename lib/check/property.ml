module Prng = Mdst_util.Prng

type 'a prop = 'a -> (unit, string) result

type 'a t = {
  name : string;
  gen : 'a Gen.t;
  prop : 'a prop;
  shrink : 'a Shrink.t;
  print : 'a -> string;
}

let make ~name ~gen ?(shrink = Shrink.nothing) ?(print = fun _ -> "<opaque>") prop =
  { name; gen; prop; shrink; print }

type counterexample = {
  printed : string;
  reason : string;
  tests_run : int;
  shrink_steps : int;
  seed : int;
}

type result = Passed of { tests : int } | Falsified of counterexample

(* Greedy descent: take the first failing shrink candidate, repeat until no
   candidate fails (a local minimum) or the step budget runs out. *)
let minimize p case reason ~max_shrinks =
  let rec go case reason steps =
    if steps >= max_shrinks then (case, reason, steps)
    else
      let failing =
        Seq.filter_map
          (fun candidate ->
            match p.prop candidate with
            | Ok () -> None
            | Error r -> Some (candidate, r))
          (p.shrink case)
      in
      match failing () with
      | Seq.Nil -> (case, reason, steps)
      | Seq.Cons ((candidate, r), _) -> go candidate r (steps + 1)
  in
  go case reason 0

let check ?(tests = 100) ?(seed = 1729) ?(max_shrinks = 1000) p =
  let rng = Prng.create seed in
  let rec loop i =
    if i >= tests then Passed { tests }
    else
      let case = p.gen (Prng.split rng) in
      match p.prop case with
      | Ok () -> loop (i + 1)
      | Error reason ->
          let case, reason, shrink_steps = minimize p case reason ~max_shrinks in
          Falsified
            { printed = p.print case; reason; tests_run = i + 1; shrink_steps; seed }
  in
  loop 0

let render ~name c =
  Printf.sprintf
    "property %S falsified after %d test(s), %d shrink step(s) [seed %d]\n\
     reason: %s\n\
     minimal counterexample:\n%s"
    name c.tests_run c.shrink_steps c.seed c.reason c.printed

let check_exn ?tests ?seed ?max_shrinks p =
  match check ?tests ?seed ?max_shrinks p with
  | Passed _ -> ()
  | Falsified c -> failwith (render ~name:p.name c)

(** The fundamental-cycle detection invariant (paper §3.2.2) as an
    executable property.

    A completed Search — one that reaches the responder endpoint of its
    non-tree closing edge while that node is locally stabilized — carries
    the DFS's reconstruction of the tree path between the edge's
    endpoints.  On a converged (static) tree that reconstruction must be
    {e exact}: initiator first, responder last, no node revisited, length
    at most [n], and equal to the unique parent-pointer path through the
    endpoints' lowest common ancestor.

    The check runs the default protocol from a clean start to legitimacy +
    FR fixpoint, snapshots the parent pointers, then lets the
    (never-halting) run continue while a spy automaton records every
    search completing on the now-static tree. *)

type case = { graph : Mdst_graph.Graph.t; seed : int }

val case_to_string : case -> string

val gen_case : ?min_n:int -> ?max_n:int -> unit -> case Gen.t

val shrink_case : case Shrink.t

val prop : case Property.prop

val property : ?min_n:int -> ?max_n:int -> unit -> case Property.t

val completed_count : case -> int
(** Searches the spy recorded on this case after convergence ([-1] when
    the case never converged) — the suite's non-vacuity probe. *)

(** Deliberately broken protocol variants, for validating the harness.

    A self-test of the PBT layer needs a protocol with a {e known} bug.
    [Make] wraps any automaton and silently discards, on receipt, every
    message whose family label is listed — e.g. dropping ["grant"] makes
    the MDST protocol skip the Remove/Grant swap acknowledgement, so no
    degree improvement ever commits and the convergence property must
    fail.  The wrapper stays inside the {!Mdst_sim.Node.AUTOMATON}
    contract, so the whole engine / fault / checker stack runs unchanged. *)

module Make (A : Mdst_sim.Node.AUTOMATON) (_ : sig
  val drop_labels : string list
end) : Mdst_sim.Node.AUTOMATON with type state = A.state and type msg = A.msg

(** Conformance checks for the sharded parallel engine ({!Mdst_sim.Pengine}).

    [run_case] records the merged [(time, shard, seq)] schedule of a
    k-shard run and replays it twice: through the pure reference model
    (FIFO feasibility + final-state equality, as in {!Conformance}) and
    through the sequential engine's [step_with] (every recorded event must
    be eligible, and the final states must match exactly — the two engines
    share handler code and per-node protocol streams, so acceptance means
    the sharding changed nothing about what executed).

    [fingerprint_equivalence] converges one (seed, init) under several
    shard counts and requires identical quiescence fingerprints — the
    standing cross-validation behind the [pardet] CLI command and the CI
    multi-domain smoke job. *)

type case = {
  graph : Mdst_graph.Graph.t;
  seed : int;
  init : [ `Clean | `Random ];
  domains : int;
  until : float;  (** virtual-time horizon of the recorded run *)
}

type report = {
  events : int;  (** events executed and replayed *)
  failure : string option;  (** [None] = conformant *)
}

type equiv = {
  per_domain : (int * bool * int) list;  (** (domains, converged, fingerprint) *)
  agree : bool;
}

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (_ : sig
  val params : Mdst_model.Model.params
end) : sig
  val run_case : case -> report

  val fingerprint_equivalence :
    ?quiet_rounds:int ->
    ?max_rounds:int ->
    ?window:float ->
    seed:int ->
    init:[ `Clean | `Random ] ->
    domains:int list ->
    Mdst_graph.Graph.t ->
    equiv
end

module Default : sig
  val run_case : case -> report

  val fingerprint_equivalence :
    ?quiet_rounds:int ->
    ?max_rounds:int ->
    ?window:float ->
    seed:int ->
    init:[ `Clean | `Random ] ->
    domains:int list ->
    Mdst_graph.Graph.t ->
    equiv
end

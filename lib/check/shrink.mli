(** Greedy counterexample shrinking.

    A shrinker maps a failing value to a lazy sequence of strictly
    "smaller" candidates; {!Property.check} keeps the first candidate that
    still fails and iterates to a local minimum.  Every candidate must stay
    inside the test domain — graph shrinkers preserve connectivity, plan
    shrinkers only delete events (per-event PRNG streams make deletion
    non-interfering, see {!Mdst_sim.Fault.rng_for}).

    {b Strictness contract}: no exported shrinker ever yields a candidate
    equal to its input — each candidate is strictly smaller under the
    shrinker's size measure, enforced by {!strictly} at generation time.
    This is what makes greedy shrinking terminate, and what makes it
    idempotent: re-shrinking an already-minimal counterexample finds no
    candidate that still fails (in particular never the counterexample
    itself) and returns it unchanged. *)

type 'a t = 'a -> 'a Seq.t

val nothing : 'a t

val strictly : size:('a -> int) -> 'a t -> 'a t
(** [strictly ~size shrink] asserts, as each candidate is produced, that
    [size candidate < size input] — the strictness contract above.  Wrap
    any new shrinker in it. *)

val int : ?towards:int -> int t
(** Bisect towards [towards] (default 0). *)

val list : 'a list t
(** Remove chunks (halves first), then single elements — never reorders. *)

val graph : Mdst_graph.Graph.t t
(** Candidates, biggest reduction first: delete one vertex (neighbours
    renumbered densely, identifiers retained, connectivity preserved,
    never below 2 nodes), then delete one non-bridge edge. *)

val plan : Mdst_sim.Fault.plan t
(** Delete event chunks, then single events. *)

val remap_plan_without_vertex :
  removed:int -> Mdst_sim.Fault.plan -> Mdst_sim.Fault.plan
(** Companion to vertex deletion in {!graph}: drop every event mentioning
    the removed vertex and renumber references above it, so a (graph,
    plan) pair shrinks coherently. *)

val remove_vertex : Mdst_graph.Graph.t -> int -> Mdst_graph.Graph.t option
(** [remove_vertex g v] — [g] minus vertex [v] (dense renumbering, ids
    kept), or [None] if the result would be disconnected or smaller than 2
    nodes.  Exposed for joint graph + plan shrinking. *)

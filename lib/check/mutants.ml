module Mutation = Mdst_util.Mutation
module Graph = Mdst_graph.Graph

type verdict = Detected of string | Silent of string

type mutant = { name : string; source : string; probe : unit -> verdict }

(* Each probe is the narrowest standing check that notices its bug: fixed
   fixtures found by running the generating properties under the mutant and
   keeping the shrunk reproducers, so [mdst_sim mutate] is fast and
   deterministic rather than a fresh property search per run. *)

let conformance_sweep (module C : Conformance.S) fixtures =
  let rec go = function
    | [] ->
        Silent
          (Printf.sprintf "lockstep conformance held across %d fixtures"
             (List.length fixtures))
    | f :: rest -> (
        let report = C.run_case (Conformance.case_of_string f) in
        match report.Conformance.divergence with
        | Some d ->
            Detected
              (Printf.sprintf "divergence at event %d (%s): %s  [%s]"
                 d.Conformance.index d.Conformance.event d.Conformance.detail
                 f)
        | None -> go rest)
  in
  go fixtures

let k5 = "0-1,0-2,0-3,0-4,1-2,1-3,1-4,2-3,2-4,3-4"

(* Random starts on K5 force degree-improving swaps, so Grants flow; long
   event horizons make sure at least one Grant is delivered in-window. *)
let grant_drop_fixtures =
  [
    Printf.sprintf "n=5;edges=%s;seed=11;init=random;events=8000" k5;
    Printf.sprintf "n=5;edges=%s;seed=23;init=random;events=8000" k5;
    Printf.sprintf "n=5;edges=%s;seed=47;init=random;events=8000" k5;
  ]

(* Clean starts quiesce quickly, so the 8-tick refresh boundary is reached
   with an unchanged Info cache well inside the event budget. *)
let suppression_fixtures =
  [
    "n=3;edges=0-1,1-2;seed=5;init=clean;events=400";
    "n=4;edges=0-1,1-2,2-3,0-3;seed=9;init=clean;events=600";
  ]

(* Shrunk reproducer of the faults_pending race: a corruption window closes
   before its tampered message is delivered, so a stop check that ignores
   [Engine.faults_pending] declares convergence on a doomed configuration. *)
let race_fixture =
  "n=5;ids=5,3,4,1,2;edges=0-1,0-4,1-2,1-3,1-4,2-3,3-4;seed=57795;plan=seed=338085|corrupt:383-387:1>3:0.73"

let stop_check_race_probe () =
  match
    Convergence.Default.prop () (Convergence.case_of_string race_fixture)
  with
  | Error reason -> Detected reason
  | Ok () -> Silent "convergence and closure hold on the stop-race fixture"

module CE = Mdst_sim.Engine.Make (Mdst_core.Proto.Default)

(* [corrupt ~channels:b] must advance the engine's own stream identically
   for both values of [b]; if channel injection leaks draws from it, a
   second corruption lands on different victims with different states. *)
let corrupt_stream_probe () =
  let mk () = CE.create ~seed:9 ~init:`Clean (Graph.complete 4) in
  let e1 = mk () and e2 = mk () in
  ignore (CE.corrupt e1 ~channels:false ());
  ignore (CE.corrupt e1 ~channels:false ());
  ignore (CE.corrupt e2 ~channels:true ());
  ignore (CE.corrupt e2 ~channels:false ());
  if CE.states e1 = CE.states e2 then
    Silent "channel injection left the engine stream untouched"
  else
    Detected
      "engine streams decoupled: a second corruption differs depending on \
       whether the first one injected channels"

let all =
  [
    {
      name = "grant-drop";
      source = "PR 1 lossy variant: Grants discarded on receipt, validated \
                swaps never commit";
      probe =
        (fun () ->
          conformance_sweep (module Conformance.Default) grant_drop_fixtures);
    };
    {
      name = "stop-check-race";
      source = "PR 1 harness race: stop predicate ran while scheduled or \
                in-flight tampered faults were still pending";
      probe = stop_check_race_probe;
    };
    {
      name = "corrupt-shared-stream";
      source = "PR 2 schedule coupling: channel corruption drew from the \
                engine's own stream";
      probe = corrupt_stream_probe;
    };
    {
      name = "suppression-no-refresh";
      source = "PR 3 failure mode: dirty-bit Info suppression without the \
                periodic refresh";
      probe =
        (fun () ->
          conformance_sweep (module Conformance.Suppressed)
            suppression_fixtures);
    };
  ]

(* The registry and the flag namespace must not drift apart. *)
let () = assert (List.map (fun m -> m.name) all = Mutation.names)

let find name =
  match List.find_opt (fun m -> m.name = name) all with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "Mutants.find: unknown mutant %S (known: %s)" name
           (String.concat ", " (List.map (fun m -> m.name) all)))

type outcome = {
  name : string;
  source : string;
  caught : bool;
  clean : bool;
  on_detail : string;
  off_detail : string;
}

let ok o = o.caught && o.clean

let run (m : mutant) =
  Fun.protect ~finally:(fun () -> Mutation.force None) @@ fun () ->
  Mutation.force (Some [ m.name ]);
  let on_v = m.probe () in
  Mutation.force (Some []);
  let off_v = m.probe () in
  let detail = function Detected d | Silent d -> d in
  {
    name = m.name;
    source = m.source;
    caught = (match on_v with Detected _ -> true | Silent _ -> false);
    clean = (match off_v with Silent _ -> true | Detected _ -> false);
    on_detail = detail on_v;
    off_detail = detail off_v;
  }

let run_all () = List.map run all

(* Lockstep conformance between the real automaton (under the engine) and
   the pure reference model.  See conformance.mli for the statement. *)

module Graph = Mdst_graph.Graph
module Model = Mdst_model.Model
module Node = Mdst_sim.Node
module State = Mdst_core.State
module Msg = Mdst_core.Msg
module Projection = Mdst_core.Projection
module Prng = Mdst_util.Prng

type case = {
  graph : Graph.t;
  seed : int;
  init : [ `Clean | `Random ];
  events : int;
}

(* ---------------- reproducer format ---------------- *)

let case_to_string c =
  let n = Graph.n c.graph in
  let ids = List.init n (Graph.id c.graph) in
  let identity = List.for_all2 ( = ) ids (List.init n Fun.id) in
  let edges =
    Array.to_list (Graph.edges c.graph)
    |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v)
    |> String.concat ","
  in
  String.concat ";"
    ([ Printf.sprintf "n=%d" n ]
    @ (if identity then []
       else [ "ids=" ^ String.concat "," (List.map string_of_int ids) ])
    @ [
        "edges=" ^ edges;
        Printf.sprintf "seed=%d" c.seed;
        "init=" ^ (match c.init with `Clean -> "clean" | `Random -> "random");
        Printf.sprintf "events=%d" c.events;
      ])

let fail fmt = Printf.ksprintf invalid_arg fmt

let case_of_string s =
  let n = ref None and ids = ref None and edges = ref None in
  let seed = ref 0 and init = ref `Random and events = ref 100 in
  List.iter
    (fun part ->
      let part = String.trim part in
      if part = "" then ()
      else
        match String.index_opt part '=' with
        | None -> fail "Conformance.case_of_string: bad component %S" part
        | Some i -> (
            let key = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "n" -> n := int_of_string_opt value
            | "ids" ->
                ids :=
                  Some
                    (String.split_on_char ',' value
                    |> List.map (fun v ->
                           match int_of_string_opt (String.trim v) with
                           | Some x -> x
                           | None -> fail "Conformance.case_of_string: bad id %S" v))
            | "seed" -> (
                match int_of_string_opt value with
                | Some v -> seed := v
                | None -> fail "Conformance.case_of_string: bad seed %S" value)
            | "init" -> (
                match value with
                | "clean" -> init := `Clean
                | "random" -> init := `Random
                | _ -> fail "Conformance.case_of_string: bad init %S" value)
            | "events" -> (
                match int_of_string_opt value with
                | Some v when v >= 0 -> events := v
                | _ -> fail "Conformance.case_of_string: bad events %S" value)
            | "edges" ->
                edges :=
                  Some
                    (String.split_on_char ',' value
                    |> List.filter (fun e -> String.trim e <> "")
                    |> List.map (fun e ->
                           match String.split_on_char '-' (String.trim e) with
                           | [ u; v ] -> (int_of_string u, int_of_string v)
                           | _ -> fail "Conformance.case_of_string: bad edge %S" e))
            | _ -> fail "Conformance.case_of_string: unknown key %S" key))
    (String.split_on_char ';' s);
  match (!n, !edges) with
  | Some n, Some edges ->
      let ids = Option.map Array.of_list !ids in
      {
        graph = Graph.of_edges ?ids ~n edges;
        seed = !seed;
        init = !init;
        events = !events;
      }
  | _ -> fail "Conformance.case_of_string: missing n= or edges="

(* ---------------- generation and shrinking ---------------- *)

let gen_case ?min_n ?max_n ?(max_events = 400) () rng =
  let graph = Gen.connected_graph ?min_n ?max_n () (Prng.split rng) in
  let seed = Prng.int rng 1_000_000 in
  let init = if Gen.bool (Prng.split rng) then `Random else `Clean in
  let events = 1 + Prng.int rng max_events in
  { graph; seed; init; events }

let shrink_case c =
  (* Fewer events first: re-running a prefix is sound because the engine's
     schedule for a given (graph, seed, init) is a fixed sequence.  Then
     shrink the graph (a different graph is a different schedule, but any
     diverging case is a valid counterexample). *)
  let events =
    Seq.filter_map
      (fun e -> if e >= 1 && e < c.events then Some { c with events = e } else None)
      (Shrink.int ~towards:1 c.events)
  in
  let graphs = Seq.map (fun g -> { c with graph = g }) (Shrink.graph c.graph) in
  Seq.append events graphs

(* ---------------- the lockstep driver ---------------- *)

type divergence = { index : int; event : string; detail : string }

type report = { events_run : int; divergence : divergence option }

module type S = sig
  val run_case : case -> report

  val prop : case Property.prop

  val property :
    ?min_n:int -> ?max_n:int -> ?max_events:int -> unit -> case Property.t
end

(* Wrap an automaton so the engine's execution leaks which event each step
   ran.  The buffer is per functor application: drivers drain it after
   every single [Engine.step], so one record is pending at a time. *)
module Tap (A : Mdst_sim.Node.AUTOMATON) = struct
  include A

  type record =
    | Rec_tick of int
    | Rec_deliver of { src : int; dst : int; msg : A.msg }

  let buffer : record list ref = ref []

  let drain () =
    let r = List.rev !buffer in
    buffer := [];
    r

  let on_tick ctx st =
    buffer := Rec_tick ctx.Node.node :: !buffer;
    A.on_tick ctx st

  let on_message ctx st ~src msg =
    buffer := Rec_deliver { src; dst = ctx.Node.node; msg } :: !buffer;
    A.on_message ctx st ~src msg
end

let render_diff diffs =
  diffs
  |> List.map (fun (v, field) -> Printf.sprintf "node %d: %s" v field)
  |> String.concat "; "

let first_state_mismatch (real : State.t array) (model : State.t array) =
  let rec go v =
    if v >= Array.length real then -1
    else if real.(v) <> model.(v) then v
    else go (v + 1)
  in
  go 0

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (P : sig
  val params : Model.params
end) =
struct
  module T = Tap (A)
  module E = Mdst_sim.Engine.Make (T)

  let msg_str m = Format.asprintf "%a" Msg.pp m

  let run_case case =
    let init = match case.init with `Clean -> `Clean | `Random -> `Random in
    let engine = E.create ~seed:case.seed ~init case.graph in
    ignore (T.drain ());
    (* The model starts from the engine's post-init truth: same states, same
       queued messages (random-init corruption included). *)
    let model =
      ref
        (Model.make ~params:P.params ~states:(E.states engine)
           ~in_flight:(E.in_flight engine) case.graph)
    in
    let divergence = ref None in
    let diverged d = divergence := Some d in
    let i = ref 0 in
    while !i < case.events && !divergence = None do
      incr i;
      ignore (E.step engine);
      match T.drain () with
      | [] ->
          (* A step that ran no handler (cannot happen: ticks stay armed and
             fault plans are never installed here). *)
          diverged
            { index = !i; event = "?"; detail = "engine step ran no handler" }
      | _ :: _ :: _ ->
          diverged
            { index = !i; event = "?"; detail = "engine step ran several handlers" }
      | [ r ] -> (
          let event =
            match r with
            | T.Rec_tick node -> Model.Tick node
            | T.Rec_deliver { src; dst; _ } -> Model.Deliver { src; dst }
          in
          let ev_str = Model.event_to_string event in
          let head_ok =
            match r with
            | T.Rec_tick _ -> true
            | T.Rec_deliver { src; dst; msg } -> (
                match Model.peek !model ~src ~dst with
                | Some m when m = msg -> true
                | head ->
                    diverged
                      {
                        index = !i;
                        event = ev_str;
                        detail =
                          Printf.sprintf
                            "channel-head mismatch on %d->%d: engine delivered %s, model head %s"
                            src dst (msg_str msg)
                            (match head with
                            | None -> "(empty)"
                            | Some m -> msg_str m);
                      };
                    false)
          in
          if head_ok then begin
            model := Model.step !model event;
            let real = E.states engine in
            let real_proj = Projection.of_states real in
            let model_proj = Projection.of_states !model.Model.nodes in
            if not (Projection.equal real_proj model_proj) then
              diverged
                {
                  index = !i;
                  event = ev_str;
                  detail =
                    "projection: " ^ render_diff (Projection.diff real_proj model_proj);
                }
            else
              let v = first_state_mismatch real !model.Model.nodes in
              if v >= 0 then
                diverged
                  {
                    index = !i;
                    event = ev_str;
                    detail =
                      Printf.sprintf
                        "internal divergence: node %d state differs (projection equal)"
                        v;
                  }
          end)
    done;
    (* Final in-flight comparison: group the engine's queue per ordered
       channel (its arrival-time order is per-channel FIFO order) and
       compare against the model's channels. *)
    (match !divergence with
    | Some _ -> ()
    | None ->
        let n = Graph.n case.graph in
        let chans = Array.make (n * n) [] in
        List.iter
          (fun (src, dst, msg) ->
            let k = (src * n) + dst in
            chans.(k) <- msg :: chans.(k))
          (E.in_flight engine);
        Array.iteri (fun k l -> chans.(k) <- List.rev l) chans;
        let bad = ref (-1) in
        Array.iteri
          (fun k l ->
            if !bad < 0 && l <> (!model).Model.channels.(k) then bad := k)
          chans;
        if !bad >= 0 then
          let src = !bad / n and dst = !bad mod n in
          let show l =
            "[" ^ String.concat ", " (List.map msg_str l) ^ "]"
          in
          diverged
            {
              index = !i;
              event = "(end)";
              detail =
                Printf.sprintf "in-flight mismatch on %d->%d: engine %s, model %s"
                  src dst
                  (show chans.(!bad))
                  (show (!model).Model.channels.(!bad));
            });
    { events_run = !i; divergence = !divergence }

  let prop case =
    let r = run_case case in
    match r.divergence with
    | None -> Ok ()
    | Some d ->
        Error
          (Printf.sprintf "model divergence at event %d/%d (%s): %s" d.index
             r.events_run d.event d.detail)

  (* [A.name] is shared across config variants; tag the property with the
     one model parameter the variants differ in. *)
  let variant =
    if P.params.Model.info_suppression then "suppressed" else "default"

  let property ?min_n ?max_n ?max_events () =
    Property.make
      ~name:("model-conformance:" ^ A.name ^ ":" ^ variant)
      ~gen:(gen_case ?min_n ?max_n ?max_events ())
      ~shrink:shrink_case ~print:case_to_string prop
end

module Default = Make (Mdst_core.Proto.Default) (struct
  let params = Model.default
end)

module Suppressed = Make (Mdst_core.Proto.Suppressed) (struct
  let params = Model.suppressed
end)

(* The fundamental-cycle detection invariant as a property: see the mli.

   The spy automaton wraps the default protocol and mirrors the responder
   guard of [Proto.handle_search] exactly — a completed search is one
   whose Search message reaches the responder endpoint while the node is
   locally stabilized and the closing edge is a non-tree edge.  At that
   moment the carried stack (most-recent-first, responder excluded) is the
   protocol's claim of the fundamental-cycle tree path, which we check
   against the actual parent pointers. *)

module Graph = Mdst_graph.Graph
module Prng = Mdst_util.Prng
module State = Mdst_core.State
module Msg = Mdst_core.Msg
module Run = Mdst_core.Run

(* Completed searches: (initiator, responder, forward path ids, initiator
   first and responder last).  Module-level because the automaton functor
   offers no instance state; the harness clears it per phase. *)
let completed : (int * int * int list) Queue.t = Queue.create ()

module Spy = struct
  module A = Mdst_core.Proto.Default

  type state = A.state

  type msg = A.msg

  let name = A.name ^ "-search-spy"

  let init = A.init

  let random_state = A.random_state

  let random_msg = A.random_msg

  let on_tick = A.on_tick

  let on_message ctx st ~src msg =
    (match msg with
    | Msg.Search { s_edge = initiator_id, responder_id; s_stack; _ }
      when ctx.Mdst_sim.Node.id = responder_id && State.locally_stabilized ctx st -> (
        match State.slot_of ctx initiator_id with
        | Some slot when not (State.is_tree_edge ctx st slot) ->
            let ids =
              List.rev_map (fun e -> e.Msg.e_id) s_stack @ [ ctx.Mdst_sim.Node.id ]
            in
            Queue.add (initiator_id, responder_id, ids) completed
        | Some _ | None -> ())
    | _ -> ());
    A.on_message ctx st ~src msg

  let msg_label = A.msg_label

  let msg_bits = A.msg_bits

  let state_bits = A.state_bits
end

module R = Run.Runner (Spy)

type case = { graph : Graph.t; seed : int }

let case_to_string c =
  Printf.sprintf "n=%d;edges=%s;seed=%d" (Graph.n c.graph)
    (Array.to_list (Graph.edges c.graph)
    |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v)
    |> String.concat ",")
    c.seed

let gen_case ?min_n ?max_n () rng =
  {
    graph = Gen.connected_graph ?min_n ?max_n () (Prng.split rng);
    seed = Prng.int rng 1_000_000;
  }

let shrink_case c = Seq.map (fun graph -> { c with graph }) (Shrink.graph c.graph)

(* The exact tree path u..v through their lowest common ancestor, walking a
   parent map.  [None] when the walk does not terminate within [n] hops —
   the parent pointers are then not a forest, which the legitimacy gate
   should have excluded. *)
let tree_path ~n ~parent_of u v =
  let exception Runaway in
  let depth = Hashtbl.create 16 in
  try
    let rec up fuel x =
      if fuel < 0 then raise Runaway;
      Hashtbl.replace depth x ();
      let p = parent_of x in
      if p <> x then up (fuel - 1) p
    in
    up n u;
    let rec from_v fuel acc x =
      if fuel < 0 then raise Runaway
      else if Hashtbl.mem depth x then (x, acc)
      else from_v (fuel - 1) (x :: acc) (parent_of x)
    in
    let lca, tail = from_v n [] v in
    let rec from_u fuel acc x =
      if fuel < 0 then raise Runaway
      else if x = lca then List.rev (x :: acc)
      else from_u (fuel - 1) (x :: acc) (parent_of x)
    in
    Some (from_u n [] u @ tail)
  with Runaway -> None

let rec distinct = function
  | [] -> true
  | x :: rest -> (not (List.mem x rest)) && distinct rest

(* Run one case: clean start to legitimacy + FR fixpoint, snapshot the (now
   final) parent pointers, then keep the self-stabilizing run going for a
   window with the spy recording.  Every search completing on the static
   tree must report the exact fundamental-cycle path. *)
let observe ?(extra_rounds = 400) case =
  let fixpoint t = not (Mdst_baseline.Fr.improvable t) in
  let engine = R.make_engine ~seed:case.seed ~init:`Clean case.graph in
  let stop = R.make_stop ~fixpoint () in
  let outcome = R.Engine.run engine ~max_rounds:30_000 ~check_every:2 ~stop () in
  if not outcome.converged then Error "no convergence from a clean start"
  else begin
    let parent_map () =
      let tbl = Hashtbl.create (Graph.n case.graph) in
      Array.iteri
        (fun v (st : State.t) -> Hashtbl.replace tbl (Graph.id case.graph v) st.State.parent)
        (R.Engine.states engine);
      tbl
    in
    let before = parent_map () in
    Queue.clear completed;
    let _ =
      R.Engine.run engine
        ~max_rounds:(R.Engine.rounds engine + extra_rounds)
        ~check_every:4
        ~stop:(fun _ -> false)
        ()
    in
    let after = parent_map () in
    if before <> after then Error "closure violated: parent pointers moved after convergence"
    else begin
      let recorded = List.of_seq (Queue.to_seq completed) in
      Queue.clear completed;
      Ok (recorded, before)
    end
  end

let check_recorded ~graph ~parents (initiator, responder, ids) =
  let n = Graph.n graph in
  let parent_of x = match Hashtbl.find_opt parents x with Some p -> p | None -> x in
  let adjacent u v =
    match Graph.index_of_id graph u with
    | iu -> Array.exists (fun s -> Graph.id graph s = v) (Graph.neighbors graph iu)
    | exception _ -> false
  in
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let pp_ids ids = String.concat "," (List.map string_of_int ids) in
  match ids with
  | [] -> err "empty path for edge %d-%d" initiator responder
  | first :: _ ->
      let last = List.nth ids (List.length ids - 1) in
      if first <> initiator then err "path %s does not start at initiator %d" (pp_ids ids) initiator
      else if last <> responder then err "path %s does not end at responder %d" (pp_ids ids) responder
      else if not (distinct ids) then err "path %s revisits a node" (pp_ids ids)
      else if List.length ids > n then err "path %s longer than n = %d" (pp_ids ids) n
      else if not (adjacent initiator responder) then
        err "closing edge %d-%d not in the graph" initiator responder
      else if parent_of initiator = responder || parent_of responder = initiator then
        err "closing edge %d-%d is a tree edge" initiator responder
      else
        match tree_path ~n ~parent_of initiator responder with
        | None -> err "parent pointers are not a forest"
        | Some expected ->
            if ids = expected then Ok ()
            else err "path %s differs from the tree path %s" (pp_ids ids) (pp_ids expected)

let prop case =
  match observe case with
  | Error _ as e -> e
  | Ok (recorded, parents) ->
      let rec all = function
        | [] -> Ok ()
        | r :: rest -> (
            match check_recorded ~graph:case.graph ~parents r with
            | Ok () -> all rest
            | Error _ as e -> e)
      in
      all recorded

let property ?min_n ?max_n () =
  Property.make ~name:"proto:search-path-exact"
    ~gen:(gen_case ?min_n ?max_n ())
    ~shrink:shrink_case ~print:case_to_string prop

(* Non-vacuity helper for the bounded suite: how many searches actually
   completed on this case.  A property that silently observes nothing
   would pass for the wrong reason. *)
let completed_count case =
  match observe case with Ok (recorded, _) -> List.length recorded | Error _ -> -1

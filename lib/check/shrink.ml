module Graph = Mdst_graph.Graph
module Fault = Mdst_sim.Fault

type 'a t = 'a -> 'a Seq.t

let nothing _ = Seq.empty

(* Strictness is what makes greedy shrinking terminate and — just as
   importantly — idempotent: re-shrinking an already-minimal
   counterexample finds no candidate that still fails (in particular
   never the counterexample itself) and returns it unchanged.  Every
   exported shrinker is wrapped so a violation fails loudly at the point
   of generation instead of looping the driver forever. *)
let strictly ~size shrink x =
  let sx = size x in
  Seq.map
    (fun c ->
      assert (size c < sx);
      c)
    (shrink x)

let int ?(towards = 0) v =
  let raw v =
    if v = towards then Seq.empty
    else
      (* The target first, then candidates halving the distance back up. *)
      let rec gaps acc gap = if gap = 0 then acc else gaps (gap :: acc) (gap / 2) in
      towards :: List.rev_map (fun g -> towards + g) (gaps [] ((v - towards) / 2))
      |> List.to_seq
      |> Seq.filter (fun c -> c <> v)
  in
  strictly ~size:(fun c -> abs (c - towards)) raw v

(* Remove chunks of decreasing size, then singles. *)
let list xs =
  let raw xs =
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let without_range lo len =
      Array.to_list arr |> List.filteri (fun i _ -> i < lo || i >= lo + len)
    in
    let rec chunks size () =
      if size = 0 then Seq.Nil
      else
        let starts = Seq.init (max 1 (n - size + 1)) (fun i -> i) in
        Seq.append
          (Seq.filter_map
             (fun lo -> if lo + size <= n then Some (without_range lo size) else None)
             starts)
          (chunks (size / 2))
          ()
    in
    (* [max 1]: a singleton still offers the empty list — without it a
       one-element schedule or plan could never lose its last entry and
       "minimal" would silently mean "at least one". *)
    if n = 0 then Seq.empty else chunks (max 1 (n / 2))
  in
  strictly ~size:List.length raw xs

let remove_vertex g v =
  let n = Graph.n g in
  if n <= 2 || v < 0 || v >= n then None
  else begin
    let rename w = if w > v then w - 1 else w in
    let edges =
      Graph.fold_edges g ~init:[] ~f:(fun acc a b ->
          if a = v || b = v then acc else (rename a, rename b) :: acc)
    in
    let ids =
      Array.init (n - 1) (fun i -> Graph.id g (if i >= v then i + 1 else i))
    in
    let candidate = Graph.of_edges ~ids ~n:(n - 1) edges in
    if Mdst_graph.Algo.is_connected candidate then Some candidate else None
  end

let remove_edge g (u, v) =
  let n = Graph.n g in
  let edges =
    Graph.fold_edges g ~init:[] ~f:(fun acc a b ->
        if (a = u && b = v) || (a = v && b = u) then acc else (a, b) :: acc)
  in
  let ids = Array.init n (Graph.id g) in
  Graph.of_edges ~ids ~n edges

let graph g =
  let raw g =
    let vertex_deletions =
      Seq.filter_map (fun v -> remove_vertex g v) (Seq.init (Graph.n g) (fun v -> v))
    in
    let edge_deletions =
      let bridges = Mdst_graph.Algo.bridges g in
      Array.to_seq (Graph.edges g)
      |> Seq.filter (fun e -> not (List.mem e bridges))
      |> Seq.map (remove_edge g)
    in
    Seq.append vertex_deletions edge_deletions
  in
  strictly ~size:(fun g -> Graph.n g + Graph.m g) raw g

let plan (p : Fault.plan) =
  strictly
    ~size:(fun p -> List.length p.Fault.events)
    (fun p -> Seq.map (fun events -> { p with Fault.events }) (list p.Fault.events))
    p

let remap_plan_without_vertex ~removed (p : Fault.plan) =
  let rename w = if w > removed then w - 1 else w in
  let keep ev =
    not (List.mem removed (Fault.nodes_mentioned { p with Fault.events = [ ev ] }))
  in
  let rename_event (ev : Fault.event) : Fault.event =
    match ev with
    | Drop f -> Drop { f with src = rename f.src; dst = rename f.dst }
    | Duplicate f -> Duplicate { f with src = rename f.src; dst = rename f.dst }
    | Reorder f -> Reorder { f with src = rename f.src; dst = rename f.dst }
    | Corrupt f -> Corrupt { f with src = rename f.src; dst = rename f.dst }
    | Crash f -> Crash { f with node = rename f.node }
    | Cut f -> Cut { f with u = rename f.u; v = rename f.v }
    | Link f -> Link { f with u = rename f.u; v = rename f.v }
  in
  { p with Fault.events = List.map rename_event (List.filter keep p.Fault.events) }

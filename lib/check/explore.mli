(** Bounded schedule exploration: every delivery interleaving of a small
    instance, checked for model conformance and closure.

    The engine's scheduler realizes {e one} interleaving per seed; the
    explorer enumerates {e all} of them up to caps.  From an initial
    configuration it runs a DFS over enabled events (every non-empty
    channel's FIFO head, every node's tick), keeping a visited set keyed by
    {!Mdst_core.Projection.fingerprint_states} (with full structural
    comparison inside each hash bucket, so collisions never hide a state).
    On every transition it checks

    - {b conformance}: the real handlers ({!Mdst_core.Proto}) and the
      reference model ({!Mdst_model.Model}), stepped from the same
      configuration by the same event, produce identical configurations;
    - {b closure}: from any configuration satisfying the legitimacy-closure
      premise (legitimate tree, no pending swap, fresh and accurate
      neighbour mirrors, in-flight messages that cannot carry stale data,
      and no Fürer–Raghavachari improvement available — the protocol keeps
      committing swaps while one exists, which legitimately changes the
      tree), every successor is again legitimate.

    A violation reports the full event path from the initial configuration
    — a one-line reproducer over {!Mdst_model.Model.event_to_string}
    vocabulary.

    For graphs beyond exhaustive reach, {!S.walk} drives the engine's
    {!Mdst_sim.Engine.Make.step_with} schedule-control hook with a seeded
    random chooser, replaying each chosen event on the model in lockstep —
    random deep walks where the DFS does bounded-depth exhaustion. *)

module Graph = Mdst_graph.Graph
module Model = Mdst_model.Model

type init =
  [ `Clean  (** every node boots via the automaton's [init] *)
  | `Random of int  (** adversarial states + 0–2 junk messages per channel *)
  | `Legitimate
    (** a legitimate configuration built from the Fürer–Raghavachari tree:
        accurate fresh mirrors, empty channels — the closure premise's
        natural starting point *) ]

type stats = {
  configs : int;  (** distinct configurations expanded *)
  transitions : int;  (** event applications (including duplicates' edges) *)
  max_depth_reached : int;
  truncated : bool;  (** a depth or config cap was hit somewhere *)
}

type kind = Conformance_divergence | Closure_violation

type violation = {
  kind : kind;
  path : string;  (** comma-joined events from the init, e.g. ["t0,0>2,t1"] *)
  detail : string;
}

val pp_violation : Format.formatter -> violation -> unit

val legitimate_states : Graph.t -> Mdst_core.State.t array
(** A legitimate configuration over the Fürer–Raghavachari tree of the
    graph: accurate fresh mirrors, no pending swap or deblock service —
    the [`Legitimate] init, exposed so other harnesses (the schedule
    fuzzer) can seed executions from the closure premise's natural
    starting point. *)

val premise : Graph.t -> Mdst_core.State.t array -> Mdst_core.Msg.t list array -> bool
(** Does the legitimacy-closure premise hold for this configuration?
    (Legitimate tree, no pending swap, accurate fresh mirrors, premise-
    compatible in-flight messages, no Fürer–Raghavachari improvement
    available.)  [channels] is indexed [(src * n) + dst], FIFO order. *)

module type S = sig
  val dfs :
    ?max_depth:int ->
    ?max_configs:int ->
    init:init ->
    Graph.t ->
    stats * violation option
  (** Defaults: [max_depth = 10], [max_configs = 20_000].  Exhaustive for
      the given caps: no violation means {e no} reachable configuration
      within them diverges or breaks closure. *)

  val walk :
    ?steps:int ->
    seed:int ->
    init:[ `Clean | `Random ] ->
    Graph.t ->
    (int, string) result
  (** Random-schedule lockstep walk via the engine's [step_with]: [Ok
      steps] or [Error detail] on the first divergence.  Default
      [steps = 500]. *)
end

module Make (A : Mdst_sim.Node.AUTOMATON
               with type state = Mdst_core.State.t
                and type msg = Mdst_core.Msg.t) (_ : sig
  val params : Model.params
end) : S

module Default : S

module Suppressed : S

(* The paper's self-stabilization claim as a property over (graph, fault
   plan, seed) cases.  See convergence.mli for the statement. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Fault = Mdst_sim.Fault
module Run = Mdst_core.Run
module Checker = Mdst_core.Checker
module Fr = Mdst_baseline.Fr

type case = { graph : Graph.t; plan : Fault.plan; seed : int }

(* ---------------- reproducer format ---------------- *)

let case_to_string c =
  let n = Graph.n c.graph in
  let ids = List.init n (Graph.id c.graph) in
  let identity = List.for_all2 ( = ) ids (List.init n Fun.id) in
  let edges =
    Array.to_list (Graph.edges c.graph)
    |> List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v)
    |> String.concat ","
  in
  String.concat ";"
    ([ Printf.sprintf "n=%d" n ]
    @ (if identity then []
       else [ "ids=" ^ String.concat "," (List.map string_of_int ids) ])
    @ [
        "edges=" ^ edges;
        Printf.sprintf "seed=%d" c.seed;
        "plan=" ^ Fault.to_string c.plan;
      ])

let fail fmt = Printf.ksprintf invalid_arg fmt

let case_of_string s =
  let n = ref None and ids = ref None and edges = ref None in
  let seed = ref 0 and plan = ref Fault.empty in
  List.iter
    (fun part ->
      let part = String.trim part in
      if part = "" then ()
      else
        match String.index_opt part '=' with
        | None -> fail "Convergence.case_of_string: bad component %S" part
        | Some i -> (
            let key = String.sub part 0 i in
            let value = String.sub part (i + 1) (String.length part - i - 1) in
            match key with
            | "n" -> n := int_of_string_opt value
            | "ids" ->
                ids :=
                  Some
                    (String.split_on_char ',' value
                    |> List.map (fun v ->
                           match int_of_string_opt (String.trim v) with
                           | Some x -> x
                           | None -> fail "Convergence.case_of_string: bad id %S" v))
            | "seed" -> (
                match int_of_string_opt value with
                | Some v -> seed := v
                | None -> fail "Convergence.case_of_string: bad seed %S" value)
            | "plan" -> plan := Fault.of_string value
            | "edges" ->
                edges :=
                  Some
                    (String.split_on_char ',' value
                    |> List.filter (fun e -> String.trim e <> "")
                    |> List.map (fun e ->
                           match String.split_on_char '-' (String.trim e) with
                           | [ u; v ] -> (int_of_string u, int_of_string v)
                           | _ -> fail "Convergence.case_of_string: bad edge %S" e))
            | _ -> fail "Convergence.case_of_string: unknown key %S" key))
    (String.split_on_char ';' s);
  match (!n, !edges) with
  | Some n, Some edges ->
      let ids = Option.map Array.of_list !ids in
      { graph = Graph.of_edges ?ids ~n edges; plan = !plan; seed = !seed }
  | _ -> fail "Convergence.case_of_string: missing n= or edges="

(* ---------------- generation and shrinking ---------------- *)

let gen_case ?min_n ?max_n ?max_events ?horizon () rng =
  let graph = Gen.connected_graph ?min_n ?max_n () (Mdst_util.Prng.split rng) in
  let plan = Gen.fault_plan ~graph ?max_events ?horizon () (Mdst_util.Prng.split rng) in
  { graph; plan; seed = Mdst_util.Prng.int rng 1_000_000 }

let shrink_case c =
  (* Vertex deletions shrink graph and plan together; plan deletions are
     sound in isolation because per-event PRNG streams are independent. *)
  let vertices =
    Seq.filter_map
      (fun v ->
        match Shrink.remove_vertex c.graph v with
        | Some g ->
            Some { c with graph = g; plan = Shrink.remap_plan_without_vertex ~removed:v c.plan }
        | None -> None)
      (Seq.init (Graph.n c.graph) Fun.id)
  in
  let plans = Seq.map (fun plan -> { c with plan }) (Shrink.plan c.plan) in
  let edges =
    let bridges = Mdst_graph.Algo.bridges c.graph in
    Array.to_seq (Graph.edges c.graph)
    |> Seq.filter (fun e -> not (List.mem e bridges))
    |> Seq.map (fun (u, v) ->
           let ids = Array.init (Graph.n c.graph) (Graph.id c.graph) in
           let kept =
             Graph.fold_edges c.graph ~init:[] ~f:(fun acc a b ->
                 if (a = u && b = v) || (a = v && b = u) then acc else (a, b) :: acc)
           in
           { c with graph = Graph.of_edges ~ids ~n:(Graph.n c.graph) kept })
  in
  Seq.append vertices (Seq.append plans edges)

(* ---------------- running one case ---------------- *)

type budget = { settle_rounds : int; per_node_rounds : int; closure_rounds : int }

let default_budget = { settle_rounds = 4000; per_node_rounds = 250; closure_rounds = 80 }

type report = {
  converged : bool;
  rounds : int;
  last_fault_round : int;
  degree : int option;
  fr_degree : int;
  closure_ok : bool;
  stats : Fault.stats;
}

module Harness (A : Mdst_sim.Node.AUTOMATON
                  with type state = Mdst_core.State.t
                   and type msg = Mdst_core.Msg.t) =
struct
  module R = Run.Runner (A)

  let fixpoint tree = not (Fr.improvable tree)

  let run_case ?(budget = default_budget) case =
    let engine = R.make_engine ~seed:case.seed ~init:`Random case.graph in
    R.Engine.install_faults engine ~remap:Mdst_core.Transplant.states case.plan;
    let last_fault_round = Fault.last_fault_round case.plan in
    let max_rounds =
      last_fault_round + budget.settle_rounds
      + (budget.per_node_rounds * Graph.n case.graph)
    in
    (* Convergence only counts after the adversary is done: the stop
       predicate is evaluated first so its fingerprint tracker never misses
       a sample, then gated strictly past the last fault round.  The
       [faults_pending] guard closes a race: a cut scheduled at round r
       fires when the engine processes an event at or past r, which can be
       after a stop check already ran at round r — victory declared then
       would push the fault into the closure window. *)
    let base_stop = R.make_stop ~fixpoint () in
    (* Mutant "stop-check-race" removes the [faults_pending] conjunct,
       reopening the race this guard closes. *)
    let stop e =
      let held = base_stop e in
      held
      && R.Engine.rounds e > last_fault_round
      && (Mdst_util.Mutation.enabled "stop-check-race" || not (R.Engine.faults_pending e))
    in
    let outcome = R.Engine.run engine ~max_rounds ~check_every:2 ~stop () in
    let final_graph = R.Engine.graph engine in
    let degree = Checker.tree_degree_now final_graph (R.Engine.states engine) in
    let fr_degree = Tree.max_degree (Fr.approx_mdst final_graph) in
    let closure_ok =
      if not outcome.converged then true
      else begin
        (* Closure: nothing fingerprinted may move once legitimate —
           self-stabilizing protocols keep gossiping and searching, but no
           swap may commit any more. *)
        let fp = Checker.fingerprint (R.Engine.states engine) in
        let _ =
          R.Engine.run engine
            ~max_rounds:(R.Engine.rounds engine + budget.closure_rounds)
            ~check_every:4
            ~stop:(fun _ -> false)
            ()
        in
        Checker.fingerprint (R.Engine.states engine) = fp
        && Checker.legitimate final_graph (R.Engine.states engine)
      end
    in
    {
      converged = outcome.converged;
      rounds = outcome.rounds;
      last_fault_round;
      degree;
      fr_degree;
      closure_ok;
      stats = R.Engine.fault_stats engine;
    }

  let prop ?budget () case =
    let r = run_case ?budget case in
    if not r.converged then
      Error
        (Printf.sprintf
           "no convergence: still illegitimate or improvable %d rounds after the last fault \
            (round %d; faults applied: %s)"
           (r.rounds - r.last_fault_round) r.last_fault_round
           (Format.asprintf "%a" Fault.pp_stats r.stats))
    else
      match r.degree with
      | Some d when d > r.fr_degree + 1 ->
          Error
            (Printf.sprintf "degree bound violated: deg(T) = %d > deg_FR + 1 = %d" d
               (r.fr_degree + 1))
      | _ when not r.closure_ok ->
          Error "closure violated: fingerprint or legitimacy changed after convergence"
      | _ -> Ok ()

  let property ?budget ?min_n ?max_n ?max_events ?horizon () =
    Property.make
      ~name:("convergence-under-adversity:" ^ A.name)
      ~gen:(gen_case ?min_n ?max_n ?max_events ?horizon ())
      ~shrink:shrink_case ~print:case_to_string
      (prop ?budget ())
end

module Default = Harness (Mdst_core.Proto.Default)

module Suppressed = Harness (Mdst_core.Proto.Suppressed)

module Broken_automaton = Lossy.Make (Mdst_core.Proto.Default) (struct
  let drop_labels = [ "grant" ]
end)

module Broken = Harness (Broken_automaton)

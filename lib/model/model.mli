(** Executable reference model of the four-module MDST composition.

    A pure small-step function over an idealized {e global} configuration:
    every node's state plus the exact content of every FIFO channel.  The
    step semantics follow docs/PROTOCOL.md rule by rule — spanning-tree
    rules R1/R2, the dmax PIF and colour wave, the Search DFS, and the
    three-pass Remove/Grant/Reverse degree reduction — written in plain
    specification style (lists, structural recursion, no sharing or
    fast-path tricks), independently of [Mdst_core.Proto]'s optimized
    handler code.

    The conformance driver ({!Mdst_check.Conformance}) runs the real
    automaton and this model on the same engine-produced event sequence and
    diffs the state after every event; the bounded schedule explorer
    ({!Mdst_check.Explore}) does the same over {e all} delivery
    interleavings of small instances.  Per-node state deliberately reuses
    [Mdst_core.State.t] so a divergence can be reported field by field, but
    nothing of the real implementation's step logic is shared.

    The model is deterministic and total: [step] never draws randomness
    (the protocol's handlers are deterministic; only adversarial
    initialization is random, and that is an input here). *)

module Graph = Mdst_graph.Graph
module State = Mdst_core.State
module Msg = Mdst_core.Msg

(** Mirror of [Mdst_core.Proto.CONFIG], as a value. *)
type params = {
  busy_ttl : int;
  deblock_ttl : int;
  eager_prune : bool;
  enable_deblock : bool;
  enable_reduction : bool;
  graceful_reattach : bool;
  search_on_info : bool;
  info_suppression : bool;
  info_refresh_every : int;
}

val default : params
(** [Proto.Default_config] as a value. *)

val suppressed : params
(** [Proto.Suppressed_config]: [default] with [info_suppression = true]. *)

(** The idealized global configuration.  Channels are per ordered adjacent
    pair, FIFO, head = oldest; the simulator's latency and arrival-time
    machinery is abstracted away entirely — only delivery {e order} exists
    here, supplied by the [event] sequence. *)
type config = {
  graph : Graph.t;
  params : params;
  nodes : State.t array;  (** indexed by dense node index *)
  channels : Msg.t list array;  (** index [(src * n) + dst] *)
}

type event =
  | Tick of int  (** local timer of one node fires *)
  | Deliver of { src : int; dst : int }
      (** head of the FIFO channel [src -> dst] is delivered *)

val make :
  params:params ->
  states:State.t array ->
  in_flight:(int * int * Msg.t) list ->
  Graph.t ->
  config
(** [make ~params ~states ~in_flight graph] seeds a configuration.
    [states] is copied; [in_flight] lists queued messages as
    [(src, dst, msg)] oldest-first {e per channel} (cross-channel order is
    irrelevant). *)

val step : config -> event -> config
(** One atomic step: the handler runs, and every message it sends is
    appended (in send order) to its channel.  The input configuration is
    not mutated.
    @raise Invalid_argument on [Deliver] over an empty channel, a
    non-adjacent pair, or an out-of-range node. *)

val peek : config -> src:int -> dst:int -> Msg.t option
(** Oldest undelivered message on the channel, if any. *)

val channel : config -> src:int -> dst:int -> Msg.t list

val nonempty_channels : config -> (int * int) list
(** All [(src, dst)] with a queued message, in channel-index order — the
    explorer's deterministic enumeration of enabled deliveries. *)

val event_to_string : event -> string
(** ["t3"] for [Tick 3], ["0>2"] for [Deliver {src = 0; dst = 2}] — the
    vocabulary of explorer reproducer strings. *)

val event_of_string : string -> event
(** @raise Failure on malformed input. *)

val equal : config -> config -> bool
(** Structural equality of states and channels (graph and params assumed
    shared). *)

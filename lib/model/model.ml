(* Executable reference model of the MDST protocol composition.

   Everything here follows docs/PROTOCOL.md in plain specification style:
   structural recursion over lists, no in-place scans, no fast paths, no
   sharing.  The one concession to the implementation is the per-node state
   type ([Mdst_core.State.t]) itself, reused so the conformance driver can
   diff real and model state field by field; the step logic is written from
   the rules, not from [Proto]'s handlers.

   Conventions shared with the real system that the rules depend on:
   - a node's neighbour slots follow [Graph.neighbors] order (sorted dense
     indices), and [slot_of] resolves a protocol identifier to the first
     matching slot;
   - messages a handler sends are appended to their channel in send-call
     order (the engine's per-channel FIFO floor guarantees the same);
   - the sender of a delivered message is identified by translating its
     dense index through the receiver's neighbour table. *)

module Graph = Mdst_graph.Graph
module Intset = Mdst_util.Intset
module State = Mdst_core.State
module Msg = Mdst_core.Msg

type params = {
  busy_ttl : int;
  deblock_ttl : int;
  eager_prune : bool;
  enable_deblock : bool;
  enable_reduction : bool;
  graceful_reattach : bool;
  search_on_info : bool;
  info_suppression : bool;
  info_refresh_every : int;
}

let default =
  {
    busy_ttl = 16;
    deblock_ttl = 24;
    eager_prune = true;
    enable_deblock = true;
    enable_reduction = true;
    graceful_reattach = false;
    search_on_info = false;
    info_suppression = false;
    info_refresh_every = 8;
  }

let suppressed = { default with info_suppression = true }

type config = {
  graph : Graph.t;
  params : params;
  nodes : State.t array;
  channels : Msg.t list array;
}

type event = Tick of int | Deliver of { src : int; dst : int }

(* The node-local lens: what one rule application may read, plus the send
   effect collected by [step]. *)
type local = {
  p : params;
  id : int;  (* protocol identifier *)
  n : int;
  nbrs : int array;  (* dense indices, Graph.neighbors order *)
  nbr_ids : int array;  (* protocol identifiers, same order *)
  send : int -> Msg.t -> unit;  (* by slot *)
}

let slots l = List.init (Array.length l.nbrs) Fun.id

let slot_of l nid =
  let rec find k =
    if k >= Array.length l.nbr_ids then None
    else if l.nbr_ids.(k) = nid then Some k
    else find (k + 1)
  in
  find 0

let send_to_id l id msg = match slot_of l id with Some slot -> l.send slot msg | None -> ()

let lock_ttl l = l.p.busy_ttl + (8 * l.n)

(* ---------------------------------------------------------------- *)
(* Local tree structure and the paper predicates (§3.1)              *)
(* ---------------------------------------------------------------- *)

let is_tree_edge l (st : State.t) slot =
  let uid = l.nbr_ids.(slot) in
  st.State.parent = uid
  || (st.views.(slot).State.w_fresh && st.views.(slot).State.w_parent = l.id)

let tree_degree l st = List.length (List.filter (is_tree_edge l st) (slots l))

let tree_children_slots l (st : State.t) =
  List.filter
    (fun slot ->
      let v = st.State.views.(slot) in
      v.State.w_fresh && v.w_parent = l.id)
    (slots l)

let better_parent l (st : State.t) =
  List.exists
    (fun slot ->
      let v = st.State.views.(slot) in
      v.State.w_fresh && v.w_root < st.root && v.w_dist < l.n)
    (slots l)

let coherent_parent l (st : State.t) =
  if st.State.parent = l.id then st.root = l.id
  else
    match slot_of l st.State.parent with
    | None -> false
    | Some slot ->
        let v = st.views.(slot) in
        (not v.State.w_fresh) || v.w_root = st.root

let coherent_distance l (st : State.t) =
  if st.State.parent = l.id then st.dist = 0
  else
    st.State.dist >= 0
    && st.dist <= l.n
    &&
    match slot_of l st.State.parent with
    | None -> false
    | Some slot ->
        let v = st.views.(slot) in
        (not v.State.w_fresh) || st.dist = v.w_dist + 1

let new_root_candidate l st =
  (not (coherent_parent l st)) || (not (coherent_distance l st)) || st.State.root > l.id

let tree_stabilized l st = (not (better_parent l st)) && not (new_root_candidate l st)

let degree_stabilized (st : State.t) =
  Array.for_all (fun v -> v.State.w_fresh && v.w_dmax = st.dmax) st.State.views

let color_stabilized (st : State.t) =
  Array.for_all (fun v -> v.State.w_fresh && v.w_color = st.color) st.State.views

let locally_stabilized l st =
  tree_stabilized l st && degree_stabilized st && color_stabilized st

(* ---------------------------------------------------------------- *)
(* Gossip                                                            *)
(* ---------------------------------------------------------------- *)

let info_of l (st : State.t) =
  {
    Msg.i_root = st.root;
    i_parent = st.parent;
    i_dist = st.dist;
    i_deg = tree_degree l st;
    i_dmax = st.dmax;
    i_color = st.color;
    i_subtree_max = st.subtree_max;
  }

let broadcast_info l (st : State.t) =
  if not l.p.info_suppression then begin
    List.iter (fun slot -> l.send slot (Msg.Info (info_of l st))) (slots l);
    st
  end
  else
    (* Dirty-bit suppression: elide the broadcast while the public
       variables equal the last snapshot actually sent, refreshing
       unconditionally every [info_refresh_every] ticks. *)
    let unchanged = match st.State.last_info with Some last -> last = info_of l st | None -> false in
    if unchanged && st.State.info_age + 1 < l.p.info_refresh_every then
      { st with State.info_age = st.info_age + 1 }
    else begin
      let i = info_of l st in
      List.iter (fun slot -> l.send slot (Msg.Info i)) (slots l);
      { st with State.last_info = Some i; info_age = 0 }
    end

let update_view (st : State.t) slot (i : Msg.info) =
  let views = Array.copy st.State.views in
  views.(slot) <-
    {
      State.w_root = i.Msg.i_root;
      w_parent = i.i_parent;
      w_dist = i.i_dist;
      w_deg = i.i_deg;
      w_dmax = i.i_dmax;
      w_color = i.i_color;
      w_subtree_max = i.i_subtree_max;
      w_fresh = true;
    };
  { st with State.views }

(* ---------------------------------------------------------------- *)
(* Spanning-tree module (rules R1 / R2)                              *)
(* ---------------------------------------------------------------- *)

let create_new_root l (st : State.t) = { st with State.root = l.id; parent = l.id; dist = 0 }

let try_graceful_reattach l (st : State.t) =
  if (not l.p.graceful_reattach) || st.State.parent = l.id || st.root > l.id then None
  else
    let orphaned =
      match slot_of l st.State.parent with
      | None -> true
      | Some slot ->
          let v = st.views.(slot) in
          v.State.w_fresh && v.w_root <> st.root && v.w_root = st.parent
    in
    if not orphaned then None
    else
      (* Fresh same-root neighbour at minimal (strictly improving) depth;
         earlier slot wins ties because only a strictly smaller distance
         replaces the candidate. *)
      let best =
        List.fold_left
          (fun best slot ->
            let v = st.State.views.(slot) in
            if
              v.State.w_fresh
              && l.nbr_ids.(slot) <> st.parent
              && v.w_root = st.root
              && v.w_dist <= st.dist
              && v.w_dist < l.n
              && (match best with Some (d, _) -> v.w_dist < d | None -> true)
            then Some (v.State.w_dist, l.nbr_ids.(slot))
            else best)
          None (slots l)
      in
      match best with
      | Some (dist, parent_id) -> Some { st with State.parent = parent_id; dist = dist + 1 }
      | None -> None

let apply_tree_rules l (st : State.t) =
  match try_graceful_reattach l st with
  | Some st -> st
  | None ->
      if new_root_candidate l st then create_new_root l st
      else if better_parent l st then
        (* R1: adopt the fresh neighbour minimizing (claimed root, id). *)
        let best =
          List.fold_left
            (fun best slot ->
              let v = st.State.views.(slot) in
              if v.State.w_fresh && v.w_root < st.root && v.w_dist < l.n then
                match best with
                | None -> Some slot
                | Some b ->
                    let bv = st.views.(b) in
                    if
                      v.w_root < bv.State.w_root
                      || (v.w_root = bv.State.w_root && l.nbr_ids.(slot) < l.nbr_ids.(b))
                    then Some slot
                    else best
              else best)
            None (slots l)
        in
        (match best with
        | None -> st
        | Some slot ->
            let v = st.views.(slot) in
            { st with State.root = v.State.w_root; parent = l.nbr_ids.(slot); dist = v.w_dist + 1 })
      else st

(* ---------------------------------------------------------------- *)
(* Maximum-degree module (continuous PIF + colour wave)               *)
(* ---------------------------------------------------------------- *)

let apply_degree_rules l (st : State.t) =
  let stm =
    List.fold_left
      (fun acc slot ->
        let v = st.State.views.(slot) in
        if v.State.w_fresh && v.w_parent = l.id then max acc v.w_subtree_max else acc)
      (tree_degree l st) (slots l)
  in
  let st = { st with State.subtree_max = stm } in
  if st.State.parent = l.id then
    if st.dmax <> stm then { st with State.dmax = stm; color = not st.color } else st
  else
    match slot_of l st.State.parent with
    | Some slot when st.views.(slot).State.w_fresh ->
        let v = st.views.(slot) in
        { st with State.dmax = v.State.w_dmax; color = v.w_color }
    | Some _ | None -> st

let recompute l st = apply_degree_rules l (apply_tree_rules l st)

(* ---------------------------------------------------------------- *)
(* Fundamental-cycle detection (Search DFS)                          *)
(* ---------------------------------------------------------------- *)

let self_entry l (st : State.t) =
  { Msg.e_id = l.id; e_deg = tree_degree l st; e_dist = st.State.dist }

let continue_search l (st : State.t) ~edge ~idblock ~stack ~visited =
  let visited = Intset.add l.id visited in
  (* Advance to the smallest-id unvisited tree neighbour... *)
  let unvisited =
    List.filter
      (fun slot -> is_tree_edge l st slot && not (Intset.mem l.nbr_ids.(slot) visited))
      (slots l)
  in
  let best =
    List.fold_left
      (fun best slot ->
        match best with
        | Some b when l.nbr_ids.(b) <= l.nbr_ids.(slot) -> best
        | _ -> Some slot)
      None unvisited
  in
  match best with
  | Some slot ->
      l.send slot
        (Msg.Search
           { s_edge = edge; s_idblock = idblock; s_stack = self_entry l st :: stack; s_visited = visited })
  | None -> (
      (* ... or backtrack to the previous stack element over a still-valid
         tree edge; a dead end with an empty stack ends the walk. *)
      match stack with
      | [] -> ()
      | last :: before -> (
          match slot_of l last.Msg.e_id with
          | Some slot when is_tree_edge l st slot ->
              l.send slot
                (Msg.Search { s_edge = edge; s_idblock = idblock; s_stack = before; s_visited = visited })
          | Some _ | None -> ()))

let start_search l st ~responder_id ~idblock =
  continue_search l st ~edge:(l.id, responder_id) ~idblock ~stack:[] ~visited:Intset.empty

(* ---------------------------------------------------------------- *)
(* Improve: the three-pass edge swap                                  *)
(* ---------------------------------------------------------------- *)

let endpoints_ok l (st : State.t) ~t_slot ~deg_max =
  let v = st.State.views.(t_slot) in
  v.State.w_fresh
  && (not (is_tree_edge l st t_slot))
  && deg_max <= st.dmax
  &&
  let bound = if deg_max >= st.dmax then deg_max - 1 else deg_max in
  max (tree_degree l st) v.State.w_deg < bound

(* Segment position helpers, all with first-occurrence semantics (a
   corrupted segment may repeat identifiers). *)

let segment_pred me segment =
  let rec go prev = function
    | [] -> None
    | x :: rest -> if x = me then prev else go (Some x) rest
  in
  go None segment

let segment_succ me segment =
  let rec go = function
    | x :: next :: _ when x = me -> Some next
    | _ :: rest -> go rest
    | [] -> None
  in
  go segment

let segment_mem me segment = List.mem me segment

let segment_is_last me segment =
  match List.rev segment with x :: _ -> x = me | [] -> false

let fresh_deg_of l (st : State.t) id =
  match slot_of l id with
  | Some slot when st.State.views.(slot).State.w_fresh -> st.views.(slot).State.w_deg
  | Some _ | None -> -1

let push_update_dist l (st : State.t) =
  List.iter
    (fun slot -> l.send slot (Msg.Update_dist { u_dist = st.State.dist; u_ttl = l.n }))
    (tree_children_slots l st);
  broadcast_info l st

let commit_at_s l (st : State.t) ~edge ~target ~deg_max ~segment =
  let s_id, t_id = edge in
  if s_id <> l.id then None
  else
    match slot_of l t_id with
    | None -> None
    | Some t_slot ->
        if
          not
            (locally_stabilized l st && st.State.pending = None
            && endpoints_ok l st ~t_slot ~deg_max)
        then None
        else
          let v = st.State.views.(t_slot) in
          (match segment with
          | [] -> None
          | [ me ] ->
              let upper = if fst target = me then snd target else fst target in
              if
                me = fst target
                && st.State.parent = upper
                && fresh_deg_of l st upper >= deg_max
              then
                Some
                  { st with State.parent = t_id; dist = v.State.w_dist + 1; color = not st.color }
              else None
          | me :: next :: _ ->
              if me <> l.id || st.State.parent <> next then None
              else begin
                let st =
                  { st with State.parent = t_id; dist = v.State.w_dist + 1; color = not st.color }
                in
                send_to_id l next
                  (Msg.Reverse { v_edge = edge; v_dist = st.State.dist; v_segment = segment });
                Some st
              end)

let handle_swap_req l (st : State.t) ~edge ~target ~deg_max ~segment =
  match segment with
  | [ _ ] -> (
      match commit_at_s l st ~edge ~target ~deg_max ~segment with
      | Some st -> push_update_dist l st
      | None -> st)
  | me :: next :: _ when me = l.id -> (
      if (not (locally_stabilized l st)) || st.State.pending <> None || st.parent <> next then st
      else
        let _, t_id = edge in
        match slot_of l t_id with
        | Some t_slot when endpoints_ok l st ~t_slot ~deg_max ->
            let st =
              {
                st with
                State.pending = Some { p_edge = edge; p_target = target; p_ttl = lock_ttl l };
              }
            in
            send_to_id l next
              (Msg.Remove { m_edge = edge; m_target = target; m_deg_max = deg_max; m_segment = segment });
            st
        | Some _ | None -> st)
  | _ -> st

let handle_remove l (st : State.t) ~edge ~target ~deg_max ~segment =
  let me = l.id in
  if not (segment_mem me segment) then st
  else if st.State.pending <> None || not (locally_stabilized l st) then st
  else if segment_is_last me segment then begin
    let w, z = target in
    let upper = if me = w then z else w in
    let valid =
      (me = w || me = z)
      && st.State.parent = upper
      && max (tree_degree l st) (fresh_deg_of l st upper) >= deg_max
    in
    if not valid then st
    else begin
      let st =
        { st with State.pending = Some { p_edge = edge; p_target = target; p_ttl = lock_ttl l } }
      in
      (match segment_pred me segment with
      | Some prev ->
          send_to_id l prev
            (Msg.Grant { g_edge = edge; g_target = target; g_deg_max = deg_max; g_segment = segment })
      | None -> ());
      st
    end
  end
  else
    match segment_succ me segment with
    | Some next when st.State.parent = next ->
        let st =
          { st with State.pending = Some { p_edge = edge; p_target = target; p_ttl = lock_ttl l } }
        in
        send_to_id l next
          (Msg.Remove { m_edge = edge; m_target = target; m_deg_max = deg_max; m_segment = segment });
        st
    | Some _ | None -> st

let handle_grant l (st : State.t) ~edge ~target ~deg_max ~segment =
  let me = l.id in
  match st.State.pending with
  | Some p when p.State.p_edge = edge && p.p_target = target -> (
      match segment with
      | first :: _ when first = me -> (
          let st = { st with State.pending = None } in
          match commit_at_s l st ~edge ~target ~deg_max ~segment with
          | Some st -> push_update_dist l st
          | None -> st)
      | _ -> (
          match segment_pred me segment with
          | Some prev ->
              send_to_id l prev
                (Msg.Grant
                   { g_edge = edge; g_target = target; g_deg_max = deg_max; g_segment = segment });
              st
          | None -> st))
  | Some _ | None -> st

let patch_view l (st : State.t) ~nid ~parent ~dist =
  match slot_of l nid with
  | None -> st
  | Some slot ->
      let v = st.State.views.(slot) in
      let w_parent = match parent with Some p -> p | None -> v.State.w_parent in
      let views = Array.copy st.State.views in
      views.(slot) <- { v with State.w_parent; w_dist = dist; w_fresh = true };
      { st with State.views }

let handle_reverse l (st : State.t) ~sender_id ~edge ~dist ~segment =
  let me = l.id in
  match st.State.pending with
  | Some p when p.State.p_edge = edge && segment_mem me segment && segment_pred me segment = Some sender_id
    ->
      let sender_parent =
        match segment_pred sender_id segment with Some p -> Some p | None -> Some (snd edge)
      in
      let st = patch_view l st ~nid:sender_id ~parent:sender_parent ~dist in
      let st =
        { st with State.parent = sender_id; dist = dist + 1; pending = None; color = not st.color }
      in
      (match segment_succ me segment with
      | Some next ->
          send_to_id l next
            (Msg.Reverse { v_edge = edge; v_dist = st.State.dist; v_segment = segment })
      | None -> ());
      push_update_dist l st
  | Some _ | None -> st

(* ---------------------------------------------------------------- *)
(* Action_on_Cycle                                                   *)
(* ---------------------------------------------------------------- *)

let send_deblock_flood l (st : State.t) ~idblock ~ttl =
  List.iter
    (fun slot -> l.send slot (Msg.Deblock { d_idblock = idblock; d_ttl = ttl }))
    (tree_children_slots l st)

let run_improve l (st : State.t) ~initiator_id ~path ~w_entry ~deg_max =
  let rec succ_of = function
    | a :: b :: _ when a.Msg.e_id = w_entry.Msg.e_id -> Some b
    | _ :: rest -> succ_of rest
    | [] -> None
  in
  match succ_of path with
  | None -> st
  | Some z_entry ->
      let lower, upper =
        if w_entry.Msg.e_dist > z_entry.Msg.e_dist then (w_entry, z_entry) else (z_entry, w_entry)
      in
      let target = (lower.Msg.e_id, upper.Msg.e_id) in
      let ids = List.map (fun e -> e.Msg.e_id) path in
      let pos id =
        let rec go i = function
          | [] -> -1
          | x :: rest -> if x = id then i else go (i + 1) rest
        in
        go 0 ids
      in
      let entry_of id = List.find_opt (fun e -> e.Msg.e_id = id) path in
      let lower_pos = pos lower.Msg.e_id in
      let s_is_initiator = lower_pos <= min (pos w_entry.Msg.e_id) (pos z_entry.Msg.e_id) in
      let rec take_until acc = function
        | [] -> None
        | x :: rest ->
            if x = lower.Msg.e_id then Some (List.rev (x :: acc)) else take_until (x :: acc) rest
      in
      let segment = if s_is_initiator then take_until [] ids else take_until [] (List.rev ids) in
      (match segment with
      | None | Some [] -> st
      | Some segment ->
          let dists = List.filter_map entry_of segment |> List.map (fun e -> e.Msg.e_dist) in
          let rec strictly_descending = function
            | a :: (b :: _ as rest) -> a = b + 1 && strictly_descending rest
            | _ -> true
          in
          if List.length dists <> List.length segment || not (strictly_descending dists) then st
          else if s_is_initiator then begin
            send_to_id l initiator_id
              (Msg.Swap_req
                 {
                   r_edge = (initiator_id, l.id);
                   r_target = target;
                   r_deg_max = deg_max;
                   r_segment = segment;
                 });
            st
          end
          else handle_swap_req l st ~edge:(l.id, initiator_id) ~target ~deg_max ~segment)

let action_on_cycle l (st : State.t) ~initiator_id ~idblock ~stack =
  let fwd = List.rev stack in
  let path = fwd @ [ self_entry l st ] in
  let interior = match fwd with [] -> [] | _ :: rest -> rest in
  let deg_i =
    match slot_of l initiator_id with
    | Some slot when st.State.views.(slot).State.w_fresh -> st.views.(slot).State.w_deg
    | Some _ | None -> max_int
  in
  let deg_me = tree_degree l st in
  let endpoint_max = if deg_i = max_int then max_int else max deg_me deg_i in
  let dmax = st.State.dmax in
  let deblock_endpoint () =
    if not l.p.enable_deblock then st
    else begin
      let st =
        if deg_me = dmax - 1 then begin
          (match st.State.deblock with
          | Some (b, _) when b = l.id -> ()
          | Some _ | None -> send_deblock_flood l st ~idblock:l.id ~ttl:l.n);
          { st with State.deblock = Some (l.id, l.p.deblock_ttl) }
        end
        else st
      in
      if deg_i = dmax - 1 then
        send_to_id l initiator_id (Msg.Deblock { d_idblock = initiator_id; d_ttl = l.n });
      st
    end
  in
  match idblock with
  | None ->
      let d_path = List.fold_left (fun acc e -> max acc e.Msg.e_deg) 0 interior in
      if d_path <> dmax || dmax < 3 then st
      else if endpoint_max = dmax - 1 then deblock_endpoint ()
      else if endpoint_max < dmax - 1 then
        (* w = interior max-degree node of minimum id (first on ties). *)
        let w_entry =
          List.fold_left
            (fun best e ->
              if e.Msg.e_deg <> d_path then best
              else
                match best with Some b when b.Msg.e_id <= e.Msg.e_id -> best | _ -> Some e)
            None interior
        in
        (match w_entry with
        | None -> st
        | Some w -> run_improve l st ~initiator_id ~path ~w_entry:w ~deg_max:dmax)
      else st
  | Some b -> (
      match List.find_opt (fun e -> e.Msg.e_id = b) interior with
      | None -> st
      | Some b_entry ->
          if endpoint_max = dmax - 1 then deblock_endpoint ()
          else if endpoint_max < dmax - 1 then
            run_improve l st ~initiator_id ~path ~w_entry:b_entry ~deg_max:b_entry.Msg.e_deg
          else st)

let handle_search l (st : State.t) ~edge ~idblock ~stack ~visited =
  if not (locally_stabilized l st) then st
  else
    let initiator_id, responder_id = edge in
    if l.id = responder_id then
      match slot_of l initiator_id with
      | Some slot when not (is_tree_edge l st slot) ->
          action_on_cycle l st ~initiator_id ~idblock ~stack
      | Some _ | None -> st
    else begin
      continue_search l st ~edge ~idblock ~stack ~visited;
      st
    end

(* ---------------------------------------------------------------- *)
(* Deblock / UpdateDist receipt                                      *)
(* ---------------------------------------------------------------- *)

let handle_deblock l (st : State.t) ~idblock ~ttl =
  if ttl <= 0 || not l.p.enable_deblock then st
  else begin
    (match st.State.deblock with
    | Some (b, _) when b = idblock -> ()
    | Some _ | None -> send_deblock_flood l st ~idblock ~ttl:(ttl - 1));
    { st with State.deblock = Some (idblock, l.p.deblock_ttl) }
  end

let handle_update_dist l (st : State.t) ~sender_id ~dist ~ttl =
  if st.State.parent = sender_id && ttl > 0 && st.State.dist <> dist + 1 then begin
    let st = patch_view l st ~nid:sender_id ~parent:None ~dist in
    let st = { st with State.dist = dist + 1 } in
    List.iter
      (fun slot -> l.send slot (Msg.Update_dist { u_dist = st.State.dist; u_ttl = ttl - 1 }))
      (tree_children_slots l st);
    st
  end
  else st

(* ---------------------------------------------------------------- *)
(* Search initiation policy                                          *)
(* ---------------------------------------------------------------- *)

let maybe_start_search l (st : State.t) =
  let deg = Array.length l.nbrs in
  if
    (not l.p.enable_reduction)
    || deg = 0
    || st.State.pending <> None
    || not (locally_stabilized l st)
  then st
  else begin
    let idblock = match st.State.deblock with Some (b, _) -> Some b | None -> None in
    let own_deg = tree_degree l st in
    (* Rotate the cursor over neighbour slots, at most one full turn,
       starting the first worthwhile search found. *)
    let rec loop tried cursor =
      if tried >= deg then cursor
      else
        let slot = cursor mod deg in
        let cursor = (cursor + 1) mod deg in
        let uid = l.nbr_ids.(slot) in
        let v = st.State.views.(slot) in
        if (not (is_tree_edge l st slot)) && l.id < uid && v.State.w_fresh then begin
          let worth =
            match idblock with
            | Some _ -> true
            | None -> (not l.p.eager_prune) || st.State.dmax >= max own_deg v.State.w_deg + 1
          in
          if worth then begin
            start_search l st ~responder_id:uid ~idblock;
            cursor
          end
          else loop (tried + 1) cursor
        end
        else loop (tried + 1) cursor
    in
    let cursor = loop 0 st.State.search_cursor in
    if cursor = st.State.search_cursor then st else { st with State.search_cursor = cursor }
  end

(* ---------------------------------------------------------------- *)
(* Event handlers                                                    *)
(* ---------------------------------------------------------------- *)

let decay (st : State.t) =
  let pending =
    match st.State.pending with
    | Some p when p.State.p_ttl > 1 -> Some { p with State.p_ttl = p.p_ttl - 1 }
    | Some _ | None -> None
  in
  let deblock =
    match st.State.deblock with
    | Some (b, ttl) when ttl > 1 -> Some (b, ttl - 1)
    | Some _ | None -> None
  in
  { st with State.pending; deblock }

let on_tick l st =
  let st = decay st in
  let st = recompute l st in
  let st = maybe_start_search l st in
  broadcast_info l st

(* Sender identification: translate the dense source index through the
   receiver's neighbour table, as Graph_id.of_src does. *)
let id_of_src l ~src_node ~nbrs_nodes =
  let rec find k =
    if k >= Array.length nbrs_nodes then invalid_arg "Model: sender is not a neighbour"
    else if nbrs_nodes.(k) = src_node then l.nbr_ids.(k)
    else find (k + 1)
  in
  find 0

let on_message l (st : State.t) ~src_node msg =
  let sender_id = id_of_src l ~src_node ~nbrs_nodes:l.nbrs in
  match msg with
  | Msg.Info info -> (
      match slot_of l sender_id with
      | Some slot ->
          let st = recompute l (update_view st slot info) in
          if l.p.search_on_info then maybe_start_search l st else st
      | None -> st)
  | ( Msg.Search _ | Msg.Swap_req _ | Msg.Remove _ | Msg.Grant _ | Msg.Reverse _
    | Msg.Update_dist _ | Msg.Deblock _ )
    when not l.p.enable_reduction ->
      st
  | Msg.Search { s_edge; s_idblock; s_stack; s_visited } ->
      handle_search l st ~edge:s_edge ~idblock:s_idblock ~stack:s_stack ~visited:s_visited
  | Msg.Swap_req { r_edge; r_target; r_deg_max; r_segment } ->
      handle_swap_req l st ~edge:r_edge ~target:r_target ~deg_max:r_deg_max ~segment:r_segment
  | Msg.Remove { m_edge; m_target; m_deg_max; m_segment } ->
      handle_remove l st ~edge:m_edge ~target:m_target ~deg_max:m_deg_max ~segment:m_segment
  | Msg.Grant { g_edge; g_target; g_deg_max; g_segment } ->
      handle_grant l st ~edge:g_edge ~target:g_target ~deg_max:g_deg_max ~segment:g_segment
  | Msg.Reverse { v_edge; v_dist; v_segment } ->
      handle_reverse l st ~sender_id ~edge:v_edge ~dist:v_dist ~segment:v_segment
  | Msg.Update_dist { u_dist; u_ttl } ->
      handle_update_dist l st ~sender_id ~dist:u_dist ~ttl:u_ttl
  | Msg.Deblock { d_idblock; d_ttl } -> handle_deblock l st ~idblock:d_idblock ~ttl:d_ttl

(* ---------------------------------------------------------------- *)
(* The global configuration and its step                             *)
(* ---------------------------------------------------------------- *)

let chan_key ~n ~src ~dst = (src * n) + dst

let make ~params ~states ~in_flight graph =
  let n = Graph.n graph in
  let channels = Array.make (n * n) [] in
  List.iter
    (fun (src, dst, msg) ->
      if not (Graph.mem_edge graph src dst) then
        invalid_arg (Printf.sprintf "Model.make: %d -> %d is not a channel" src dst);
      let k = chan_key ~n ~src ~dst in
      channels.(k) <- channels.(k) @ [ msg ])
    in_flight;
  { graph; params; nodes = Array.copy states; channels }

let local_of config ~send v =
  let nbrs = Graph.neighbors config.graph v in
  {
    p = config.params;
    id = Graph.id config.graph v;
    n = Graph.n config.graph;
    nbrs;
    nbr_ids = Array.map (Graph.id config.graph) nbrs;
    send;
  }

let step config event =
  let n = Graph.n config.graph in
  let nodes = Array.copy config.nodes in
  let channels = Array.copy config.channels in
  let check_node v =
    if v < 0 || v >= n then invalid_arg (Printf.sprintf "Model.step: node %d out of range" v)
  in
  let run v handler =
    (* Sends are collected in call order, then appended to their channels:
       per-channel FIFO in send order, exactly the engine's guarantee. *)
    let sent = ref [] in
    let l =
      local_of config v ~send:(fun slot msg ->
          let dst = (Graph.neighbors config.graph v).(slot) in
          sent := (v, dst, msg) :: !sent)
    in
    nodes.(v) <- handler l nodes.(v);
    List.iter
      (fun (src, dst, msg) ->
        let k = chan_key ~n ~src ~dst in
        channels.(k) <- channels.(k) @ [ msg ])
      (List.rev !sent)
  in
  (match event with
  | Tick v ->
      check_node v;
      run v on_tick
  | Deliver { src; dst } -> (
      check_node src;
      check_node dst;
      match channels.(chan_key ~n ~src ~dst) with
      | [] -> invalid_arg (Printf.sprintf "Model.step: deliver on empty channel %d -> %d" src dst)
      | msg :: rest ->
          channels.(chan_key ~n ~src ~dst) <- rest;
          run dst (fun l st -> on_message l st ~src_node:src msg)));
  { config with nodes; channels }

let channel config ~src ~dst = config.channels.(chan_key ~n:(Graph.n config.graph) ~src ~dst)

let peek config ~src ~dst = match channel config ~src ~dst with [] -> None | m :: _ -> Some m

let nonempty_channels config =
  let n = Graph.n config.graph in
  let acc = ref [] in
  for k = (n * n) - 1 downto 0 do
    if config.channels.(k) <> [] then acc := (k / n, k mod n) :: !acc
  done;
  !acc

let event_to_string = function
  | Tick v -> Printf.sprintf "t%d" v
  | Deliver { src; dst } -> Printf.sprintf "%d>%d" src dst

let event_of_string s =
  let fail () = failwith (Printf.sprintf "Model.event_of_string: bad event %S" s) in
  if s = "" then fail ()
  else if s.[0] = 't' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some v -> Tick v
    | None -> fail ()
  else
    match String.index_opt s '>' with
    | None -> fail ()
    | Some i -> (
        match
          ( int_of_string_opt (String.sub s 0 i),
            int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
        with
        | Some src, Some dst -> Deliver { src; dst }
        | _ -> fail ())

let equal a b = a.nodes = b.nodes && a.channels = b.channels

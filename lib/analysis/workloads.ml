(* The named graph instances the experiments and the CLI share.  Every
   workload is reproducible: the generator PRNG is seeded from the workload
   name and the caller's seed. *)

module Gen = Mdst_graph.Gen
module Graph = Mdst_graph.Graph
module Prng = Mdst_util.Prng

type t = { name : string; n : int; build : int -> Graph.t }

let rng_for name seed = Prng.create (Prng.seed_of_string name lxor (seed * 7919))

let fixed name g = { name; n = Graph.n g; build = (fun _ -> g) }

let family name n = { name = Printf.sprintf "%s-%d" name n; n; build = (fun seed -> Gen.by_name name (rng_for name seed) ~n) }

(* The headline mix of experiment E1: deterministic structures whose Δ* is
   known analytically, plus random families. *)
let e1_mix =
  [
    fixed "ring-16" (Gen.ring 16);
    fixed "wheel-16" (Gen.wheel 16);
    fixed "petersen" (Gen.petersen ());
    fixed "hypercube-16" (Gen.hypercube 4);
    fixed "complete-10" (Gen.complete 10);
    fixed "grid-4x4" (Gen.grid ~rows:4 ~cols:4);
    fixed "k-bipartite-3x7" (Gen.complete_bipartite 3 7);
    fixed "lollipop-8+8" (Gen.lollipop ~clique:8 ~tail:8);
    fixed "caterpillar-4x3" (Gen.caterpillar ~spine:4 ~legs:3);
    fixed "bintree-chords-3" (Gen.binary_tree_with_chords ~depth:3);
    family "er" 16;
    family "er-dense" 14;
    family "ba" 18;
    family "geometric" 16;
    family "regular" 16;
  ]

(* Larger instances (no exact solve; FR gives the reference). *)
let large_mix =
  [
    family "er" 48;
    family "er-dense" 40;
    family "ba" 48;
    family "geometric" 48;
    fixed "hypercube-64" (Gen.hypercube 6);
    fixed "grid-7x7" (Gen.grid ~rows:7 ~cols:7);
  ]

let er_with ~n ~avg_deg seed =
  let p = avg_deg /. float_of_int (n - 1) in
  Gen.erdos_renyi_connected (rng_for "er-sweep" (seed + (1_000 * n))) ~n ~p

let all_named = e1_mix @ large_mix

let find name =
  match List.find_opt (fun w -> w.name = name) all_named with
  | Some w -> w
  | None -> invalid_arg (Printf.sprintf "Workloads.find: unknown workload %S" name)

let names = List.map (fun w -> w.name) all_named

(** Plain-text tables and CSV for the experiment harness — the output format
    of every regenerated "table" and "figure" of EXPERIMENTS.md. *)

type t

val make : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument when the arity differs from [columns]. *)

val add_note : t -> string -> unit
(** Free-form footnote printed under the table. *)

val render : t -> string
(** Aligned ASCII rendering. *)

val to_csv : t -> string

val print : t -> unit
(** [render] to stdout with a trailing newline. *)

(** Cell formatting helpers. *)

val cell_int : int -> string

val cell_float : ?decimals:int -> float -> string

val cell_bool : bool -> string

val cell_opt : ('a -> string) -> 'a option -> string
(** [None] renders as ["-"]. *)

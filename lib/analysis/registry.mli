(** The experiment registry: EXPERIMENTS.md identifiers mapped to runners.
    Both the CLI ([mdst_sim experiments]) and the benchmark binary iterate
    this list. *)

type entry = {
  id : string;  (** "E1" .. "E17", "E19" (E18 is the PBT harness, run via [mdst_sim pbt]) *)
  title : string;
  claim : string;  (** the paper statement the experiment checks *)
  run : ?quick:bool -> unit -> Table.t list;
}

val all : entry list

val find : string -> entry
(** Case-insensitive. @raise Invalid_argument on unknown identifiers. *)

val ids : string list

val run_all : ?quick:bool -> ?out:(string -> unit) -> unit -> unit
(** Render every experiment's tables through [out] (default stdout). *)

val save_csvs : dir:string -> ?quick:bool -> unit -> string list
(** Additionally write every table as a CSV file under [dir] (created if
    missing); returns the paths written. *)

(* E21 — model conformance and bounded schedule exploration coverage.

   The paper's proofs quantify over every asynchronous execution; testing
   samples them.  This experiment reports how much of the schedule space
   the checking layer actually covers: for each small instance, the
   exhaustive DFS over delivery interleavings (configurations, transitions,
   truncation) from clean, legitimate and adversarial starts, with
   conformance against the reference model and closure of the legitimacy
   predicate checked on every path — plus long random lockstep walks for
   the schedules past the horizon.  Violations must be zero on a correct
   build; the `mdst_sim mutate` gate proves the same machinery reports
   non-zero under seeded historical bugs. *)

module Graph = Mdst_graph.Graph
module Explore = Mdst_check.Explore

let instances quick =
  let path n = Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1))) in
  let cycle n = Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1))) in
  let base = [ ("K3", Graph.complete 3); ("path4", path 4); ("cycle4", cycle 4) ] in
  if quick then base else base @ [ ("K4", Graph.complete 4); ("cycle5", cycle 5) ]

let variants : (string * (module Explore.S)) list =
  [ ("default", (module Explore.Default)); ("suppressed", (module Explore.Suppressed)) ]

let run ?(quick = false) () =
  let max_depth = if quick then 6 else 8 in
  let max_configs = if quick then 3_000 else 20_000 in
  let dfs_table =
    Table.make ~title:"E21: bounded schedule exploration (conformance + closure on every path)"
      ~columns:[ "graph"; "variant"; "init"; "configs"; "transitions"; "depth"; "truncated"; "violations" ]
  in
  let walk_table =
    Table.make ~title:"E21: random lockstep walks (engine schedule hook vs reference model)"
      ~columns:[ "graph"; "variant"; "walks"; "events"; "divergences" ]
  in
  List.iter
    (fun (gname, graph) ->
      List.iter
        (fun (vname, (module X : Explore.S)) ->
          List.iter
            (fun (iname, init) ->
              let stats, vio = X.dfs ~max_depth ~max_configs ~init graph in
              Table.add_row dfs_table
                [
                  gname;
                  vname;
                  iname;
                  Table.cell_int stats.Explore.configs;
                  Table.cell_int stats.Explore.transitions;
                  Table.cell_int stats.Explore.max_depth_reached;
                  Table.cell_bool stats.Explore.truncated;
                  (match vio with None -> "0" | Some _ -> "VIOLATION");
                ])
            [ ("clean", `Clean); ("legitimate", `Legitimate); ("random", `Random 17) ];
          let walks = if quick then 2 else 4 in
          let steps = if quick then 200 else 600 in
          let events = ref 0 and divergences = ref 0 in
          for i = 0 to walks - 1 do
            match X.walk ~steps ~seed:(100 + i) ~init:`Random graph with
            | Ok n -> events := !events + n
            | Error _ -> incr divergences
          done;
          Table.add_row walk_table
            [ gname; vname; Table.cell_int walks; Table.cell_int !events; Table.cell_int !divergences ])
        variants)
    (instances quick);
  Table.add_note dfs_table
    "every explored transition checks real-vs-model conformance; closure: a legitimate, \
     quiescent, accurate configuration never steps to an illegitimate one";
  Table.add_note walk_table "walks replay the engine's own schedule through the model in lockstep";
  [ dfs_table; walk_table ]

(* Shared scaffolding for the experiment suite (EXPERIMENTS.md).

   Every experiment runs the real protocol through {!Mdst_core.Run} with the
   FR fixpoint oracle in the stop condition — a run only counts as converged
   once the tree admits no further Fürer–Raghavachari improvement, which is
   the paper's legitimacy notion. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Run = Mdst_core.Run
module Fr = Mdst_baseline.Fr
module Exact = Mdst_baseline.Exact

let fixpoint tree = not (Fr.improvable tree)

let run_protocol ?latency ?init ?max_rounds ~seed graph =
  Run.converge ?latency ?init ?max_rounds ~seed ~fixpoint graph

(* Δ*: exact for small instances, otherwise bracketed by the FR guarantee
   (deg_FR - 1 <= Δ* <= deg_FR). *)
type delta_star = Exact_opt of int | Range of int * int

let delta_star ?(exact_limit = 20) graph =
  let fr_deg = Tree.max_degree (Fr.approx_mdst graph) in
  if Graph.n graph <= exact_limit then
    match Exact.solve ~budget:3_000_000 graph with
    | Some r -> Exact_opt r.optimum
    | None -> Range (max (Exact.lower_bound graph) (fr_deg - 1), fr_deg)
  else Range (max (Exact.lower_bound graph) (fr_deg - 1), fr_deg)

let delta_star_cell = function
  | Exact_opt d -> string_of_int d
  | Range (lo, hi) -> if lo = hi then string_of_int lo else Printf.sprintf "%d..%d" lo hi

let delta_star_upper = function Exact_opt d -> d | Range (_, hi) -> hi

let within_bound ~degree ds = degree <= delta_star_upper ds + 1

let seeds count = List.init count (fun i -> 101 + (37 * i))

let median_int xs = int_of_float (Float.round (Stats.median (Stats.of_ints xs)))

(* E14 — head-to-head with the serialized distributed comparator (the
   Blin–Butelle [3] lineage, our {!Mdst_baseline.Bb}).

   The paper's §1 claims two advantages over [3]:
   1. concurrency — fundamental-cycle detection lets all maximum-degree
      nodes shed edges simultaneously, where [3] serializes improvements
      through fragment bookkeeping.  We time "rounds until deg(T) drops
      below its initial value" on the star-of-cliques workload: that drop
      requires *every* hub to be reduced, so the serialized comparator
      scales linearly with the number of hubs while the paper's protocol
      stays near-flat (cf. E6);
   2. memory — O(δ log n) bits per node versus the Θ(n log n) membership
      tables [3]-style algorithms maintain.  We meter both. *)

open Exp_common
module Bb = Mdst_baseline.Bb
module Gen = Mdst_graph.Gen

let bb_first_drop ~cliques ~clique_size ~seed =
  let graph = Gen.star_of_cliques ~cliques ~clique_size in
  let tree = Exp_simultaneous.hubby_tree graph ~cliques ~clique_size in
  let k0 = Mdst_graph.Tree.max_degree tree in
  let engine = Bb.Engine.create ~seed ~init:(`Custom (Bb.state_of_tree tree)) graph in
  let stop t =
    (match Bb.extract_degree (Bb.Engine.graph t) (Bb.Engine.states t) with
    | Some k -> k < k0
    | None -> false)
    || Bb.finished (Bb.Engine.state t (Mdst_graph.Tree.root tree))
  in
  let o = Bb.Engine.run engine ~max_rounds:100_000 ~check_every:2 ~stop () in
  let dropped =
    match Bb.extract_degree graph (Bb.Engine.states engine) with Some k -> k < k0 | None -> false
  in
  let bits = Mdst_sim.Metrics.max_state_bits (Bb.Engine.metrics engine) in
  ((if o.converged && dropped then Some o.rounds else None), bits)

let ours_state_bits ~cliques ~clique_size ~seed =
  let graph = Gen.star_of_cliques ~cliques ~clique_size in
  let tree = Exp_simultaneous.hubby_tree graph ~cliques ~clique_size in
  let r = Run.converge ~seed ~init:(`Tree tree) ~max_rounds:30_000 graph in
  r.max_state_bits

let run ?(quick = false) () =
  let clique_size = 8 in
  let table =
    Table.make
      ~title:"E14: concurrent (paper) vs serialized ([3]-style) reduction of all hubs"
      ~columns:
        [
          "cliques (= hubs)"; "n"; "paper: rounds"; "BB: rounds"; "paper: state bits";
          "BB: state bits";
        ]
  in
  let counts = if quick then [ 3; 5 ] else [ 3; 4; 5; 6; 8 ] in
  List.iter
    (fun cliques ->
      let ours =
        List.filter_map
          (fun seed -> snd (Exp_simultaneous.first_drop_rounds ~cliques ~clique_size ~seed))
          (seeds 3)
      in
      let bb = List.map (fun seed -> bb_first_drop ~cliques ~clique_size ~seed) (seeds 3) in
      let bb_rounds = List.filter_map fst bb in
      let bb_bits = List.fold_left (fun acc (_, b) -> max acc b) 0 bb in
      let our_bits = ours_state_bits ~cliques ~clique_size ~seed:101 in
      Table.add_row table
        [
          Table.cell_int cliques;
          Table.cell_int ((cliques * clique_size) + 1);
          (match ours with [] -> "-" | _ -> Table.cell_int (median_int ours));
          (match bb_rounds with [] -> "-" | _ -> Table.cell_int (median_int bb_rounds));
          Table.cell_int our_bits;
          Table.cell_int bb_bits;
        ])
    counts;
  Table.add_note table
    "the drop requires reducing EVERY hub: serialized phases scale with the hub count, concurrent ones do not";
  Table.add_note table
    "state bits: paper O(delta log n) vs BB-style Theta(n log n) membership tables";
  [ table ]

(* E2 / Table 2 — degree-oblivious spanning trees versus the protocol: how
   much does degree-awareness buy?  (The paper's introduction motivates the
   problem with exactly this gap: overlay hubs cause congestion and are
   attack targets.) *)

open Exp_common
module Naive = Mdst_baseline.Naive
module Prng = Mdst_util.Prng

let avg xs = Stats.mean (Stats.of_ints xs)

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E2: tree degree, degree-oblivious baselines vs FR vs protocol"
      ~columns:[ "graph"; "n"; "bfs"; "dfs"; "random-walk"; "kruskal"; "FR"; "protocol" ]
  in
  let mix =
    if quick then [ List.nth Workloads.e1_mix 10 ]
    else
      List.filteri (fun i _ -> i >= 4) Workloads.e1_mix
      @ (if quick then [] else [ List.nth Workloads.large_mix 0; List.nth Workloads.large_mix 2 ])
  in
  List.iter
    (fun (w : Workloads.t) ->
      let graph = w.build 1 in
      let rng = Prng.create 99 in
      (* One split child per baseline, bound in source order: the samples
         no longer share a stream, so adding or reordering a baseline does
         not shift the others' draws (and nothing depends on the
         compiler's argument evaluation order). *)
      let sample spec =
        let child = Prng.split rng in
        List.map (fun _ -> Naive.degree child spec graph) (seeds 3)
      in
      let bfs = avg (sample Naive.Bfs) in
      let dfs = avg (sample Naive.Dfs) in
      let random_walk = avg (sample Naive.Random_walk) in
      let kruskal = avg (sample Naive.Kruskal_random) in
      let fr_deg = Mdst_graph.Tree.max_degree (Fr.approx_mdst graph) in
      let proto = run_protocol ~seed:7 graph in
      Table.add_row table
        [
          w.name;
          Table.cell_int (Graph.n graph);
          Table.cell_float ~decimals:1 bfs;
          Table.cell_float ~decimals:1 dfs;
          Table.cell_float ~decimals:1 random_walk;
          Table.cell_float ~decimals:1 kruskal;
          Table.cell_int fr_deg;
          Table.cell_opt Table.cell_int proto.degree;
        ])
    mix;
  Table.add_note table "random baselines averaged over 3 draws";
  [ table ]

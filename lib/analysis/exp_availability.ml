(* E16 — overlay availability during convergence and repair.

   Self-stabilization says nothing about the journey, only the
   destination; super-stabilization (the paper's closing open problem)
   would bound the disruption along the way.  This experiment quantifies
   the journey for the existing algorithm: while converging from a clean
   tree, from full corruption, and while repairing after a mid-run fault,
   what fraction of sampled configurations had a spanning tree at all, how
   long was the longest outage, and how bad did the tree degree transiently
   get?  These are the baselines a super-stabilizing variant would have to
   beat. *)

open Exp_common
module Invariants = Mdst_core.Invariants
module Engine = Run.Engine

let watch_run ~seed ~init graph =
  let engine = Run.make_engine ~seed ~init graph in
  let stop = Run.make_stop ~fixpoint () in
  Invariants.watch ~engine ~max_rounds:Run.default_max_rounds ~stop ()

let watch_repair ~seed graph =
  let engine = Run.make_engine ~seed graph in
  let stop = Run.make_stop ~fixpoint () in
  ignore (Engine.run engine ~max_rounds:Run.default_max_rounds ~check_every:2 ~stop ());
  ignore (Engine.corrupt engine ~fraction:0.3 ~channels:true ());
  let stop = Run.make_stop ~fixpoint () in
  Invariants.watch ~engine ~max_rounds:Run.default_max_rounds ~stop ()

let row name (r : Invariants.report) =
  [
    name;
    Table.cell_float ~decimals:3 r.availability;
    Table.cell_int r.longest_outage;
    Table.cell_int r.distinct_trees;
    Table.cell_int r.max_degree_seen;
    Table.cell_bool r.final_spanning;
  ]

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E16: overlay availability during convergence and repair (ER n=20)"
      ~columns:
        [
          "scenario"; "availability"; "longest outage (samples)"; "distinct trees";
          "worst deg seen"; "ends spanning";
        ]
  in
  let graph = Workloads.er_with ~n:20 ~avg_deg:4.0 71 in
  let scenarios =
    if quick then [ ("from clean tree", `S (watch_run ~seed:4 ~init:`Clean)) ]
    else
      [
        ("from clean tree", `S (watch_run ~seed:4 ~init:`Clean));
        ("from full corruption", `S (watch_run ~seed:4 ~init:`Random));
        ("repair after 30% fault", `R (watch_repair ~seed:4));
      ]
  in
  List.iter
    (fun (name, s) ->
      let report = match s with `S f -> f graph | `R f -> f graph in
      Table.add_row table (row name report))
    scenarios;
  Table.add_note table
    "availability = fraction of sampled configurations whose parent pointers formed a spanning tree";
  Table.add_note table
    "a super-stabilizing variant (paper's open problem) would push availability towards 1.0 during repair";
  [ table ]

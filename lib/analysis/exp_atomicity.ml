(* E12 — atomicity-model comparison: the same protocol code under the
   asynchronous send/receive engine (the paper's model) and under the
   synchronous lockstep daemon (the model most shared-memory
   self-stabilization results assume).  Guarantees must be identical; the
   synchronous daemon typically converges in fewer, fatter rounds. *)

open Exp_common
module Sync = Mdst_core.Sync_run

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E12: asynchronous vs synchronous daemon (same protocol code)"
      ~columns:
        [
          "graph"; "async rounds"; "sync rounds"; "async deg"; "sync deg"; "both <= D*+1";
        ]
  in
  let graphs =
    let base =
      [
        ("ring-12", Mdst_graph.Gen.ring 12);
        ("grid-4x4", Mdst_graph.Gen.grid ~rows:4 ~cols:4);
        ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 21);
      ]
    in
    if quick then [ List.nth base 2 ] else base @ [ ("er-24", Workloads.er_with ~n:24 ~avg_deg:4.0 22) ]
  in
  List.iter
    (fun (name, graph) ->
      let ds = delta_star graph in
      let asyn = run_protocol ~seed:14 ~init:`Random graph in
      let syn = Sync.converge ~seed:14 ~init:`Random ~fixpoint graph in
      let ok =
        match (asyn.degree, syn.degree) with
        | Some a, Some s -> within_bound ~degree:a ds && within_bound ~degree:s ds
        | _ -> false
      in
      Table.add_row table
        [
          name;
          Table.cell_int asyn.rounds;
          Table.cell_int syn.rounds;
          Table.cell_opt Table.cell_int asyn.degree;
          Table.cell_opt Table.cell_int syn.degree;
          Table.cell_bool ok;
        ])
    graphs;
  Table.add_note table
    "async rounds are causal depth; sync rounds are lockstep rounds (not directly comparable in cost, only in guarantee)";
  [ table ]

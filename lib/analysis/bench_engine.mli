(** E19 — engine macro-benchmarks: events/sec and live memory of the async
    engine at n up to 2048, on ER (avg deg 4) and grid topologies, plus a
    sharded parallel-engine sweep (schema v2) with a speedup column.  The
    points feed BENCH_engine.json (via [mdst_sim bench] / [make bench-json])
    — the repository's tracked perf trajectory. *)

type point = {
  topology : string;  (** "er" or "grid" *)
  n : int;
  m : int;
  domains : int;  (** 1 = the sequential engine, >1 = Pengine shards *)
  events : int;  (** engine events processed during the timed window *)
  elapsed_s : float;
  events_per_sec : float;
  speedup : float;
      (** events/sec relative to the domains=1 point of the same
          (topology, n); 1.0 for sequential points, 0.0 when no baseline
          point exists. *)
  engine_bytes : int;
      (** live-heap delta attributable to the engine and its run — with the
          sparse FIFO-floor representation this is O(n + m + in-flight). *)
}

val cores : unit -> int
(** [Domain.recommended_domain_count ()] — recorded in the JSON header. *)

val points : ?quick:bool -> unit -> point list
(** Quick mode: sequential n in 64, 256 plus one 2-domain point at n=256,
    with a 20k-event budget (CI smoke); full mode adds sequential 1024 and
    2048 and a parallel sweep at n in 1024, 2048 with 2, 4 and 8 domains,
    200k events per point.  Runs an untimed warm-up first so the initial
    measured point does not absorb cold-start costs. *)

val table : point list -> Table.t

val run : ?quick:bool -> unit -> Table.t list
(** Registry entry point (experiment E19). *)

val to_json : ?quick:bool -> point list -> string
(** Schema "mdst-bench-engine/2": header records the machine's core count
    (a speedup measured with more domains than cores is an oversubscription
    datum, not a scaling claim). *)

val write_json : path:string -> ?quick:bool -> point list -> unit

val load_json : string -> point list
(** Read back a BENCH_engine.json written by {!write_json} (line-oriented;
    v1 points parse as domains=1; unparseable lines are skipped, so schema
    drift yields an empty list rather than an exception). *)

val regressions : ?tolerance:float -> baseline:point list -> point list -> string list
(** [regressions ~baseline fresh] — one human-readable line per benchmark
    point (matched on topology, n and domains) whose events/sec fell more
    than [tolerance] (default 0.3) below the baseline.  Empty means the
    guard passes. *)

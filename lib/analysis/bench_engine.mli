(** E19 — engine macro-benchmarks: events/sec and live memory of the async
    engine at n up to 2048, on ER (avg deg 4) and grid topologies.  The
    points feed BENCH_engine.json (via [mdst_sim bench] / [make bench-json])
    — the repository's tracked perf trajectory. *)

type point = {
  topology : string;  (** "er" or "grid" *)
  n : int;
  m : int;
  events : int;  (** engine events processed during the timed window *)
  elapsed_s : float;
  events_per_sec : float;
  engine_bytes : int;
      (** live-heap delta attributable to the engine and its run — with the
          sparse FIFO-floor representation this is O(n + m + in-flight). *)
}

val points : ?quick:bool -> unit -> point list
(** Quick mode: n in 64, 256 with a 20k-event budget (CI smoke); full mode
    adds 1024 and 2048 with 200k events per point. *)

val table : point list -> Table.t

val run : ?quick:bool -> unit -> Table.t list
(** Registry entry point (experiment E19). *)

val to_json : ?quick:bool -> point list -> string

val write_json : path:string -> ?quick:bool -> point list -> unit

val load_json : string -> point list
(** Read back a BENCH_engine.json written by {!write_json} (line-oriented;
    unparseable lines are skipped, so schema drift yields an empty list
    rather than an exception). *)

val regressions : ?tolerance:float -> baseline:point list -> point list -> string list
(** [regressions ~baseline fresh] — one human-readable line per benchmark
    point (matched on topology and n) whose events/sec fell more than
    [tolerance] (default 0.3) below the baseline.  Empty means the guard
    passes. *)

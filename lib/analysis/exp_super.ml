(* E17 — a prototype answer to the paper's open problem.

   The conclusion asks for a super-stabilizing MDST: topology changes
   should be absorbed with bounded disruption, not by letting the generic
   self-stabilization machinery churn.  Our [Graceful] variant adds one
   rule: a node whose parent edge vanished re-attaches to a fresh
   same-root neighbour with a strictly smaller distance (provably not its
   own descendant while the pre-fault distances are legitimate) instead of
   resetting to its own root and cascading R2 through the subtree.

   The experiment breaks a converged overlay's tree edge and replays the
   repair under both variants from the identical transplanted state,
   reporting re-stabilization time and availability during the repair. *)

open Exp_common
module Transplant = Mdst_core.Transplant
module Engine = Run.Engine
module Graceful_runner = Run.Runner (Mdst_core.Proto.Graceful)
module Watch_default = Mdst_core.Invariants.Watch (Mdst_core.Proto.Default)
module Watch_graceful = Mdst_core.Invariants.Watch (Mdst_core.Proto.Graceful)
module Prng = Mdst_util.Prng

type arm_result = { rounds : int option; availability : float; outage : int }

let repair_measurement ~seed graph =
  (* Converge once under the default protocol. *)
  let engine = Run.make_engine ~seed graph in
  let stop = Run.make_stop ~fixpoint () in
  let o1 = Engine.run engine ~max_rounds:Run.default_max_rounds ~check_every:2 ~stop () in
  if not o1.converged then None
  else begin
    let states = Array.copy (Engine.states engine) in
    (* Adversarial failure: orphan the largest subtree. *)
    match
      Option.bind
        (Mdst_core.Checker.tree_of_states graph states)
        (Transplant.remove_heaviest_tree_edge graph)
    with
    | None -> None
    | Some (graph', _) ->
        let moved = Transplant.states ~old_graph:graph ~new_graph:graph' states in
        let init = `Custom (fun ctx _ -> moved.(ctx.Mdst_sim.Node.node)) in
        let default_arm =
          let e = Watch_default.Engine.create ~seed:(seed + 1) ~init graph' in
          let stop = Run.make_stop ~fixpoint () in
          let r =
            Watch_default.watch ~engine:e ~max_rounds:Run.default_max_rounds ~stop ()
          in
          {
            rounds = (if r.final_spanning then Some (Watch_default.Engine.rounds e) else None);
            availability = r.availability;
            outage = r.longest_outage;
          }
        in
        let graceful_arm =
          let e = Watch_graceful.Engine.create ~seed:(seed + 1) ~init graph' in
          let stop = Graceful_runner.make_stop ~fixpoint () in
          let r =
            Watch_graceful.watch ~engine:e ~max_rounds:Run.default_max_rounds ~stop ()
          in
          {
            rounds = (if r.final_spanning then Some (Watch_graceful.Engine.rounds e) else None);
            availability = r.availability;
            outage = r.longest_outage;
          }
        in
        Some (default_arm, graceful_arm)
  end

let run ?(quick = false) () =
  let table =
    Table.make
      ~title:"E17: tree-edge failure repair — paper protocol vs graceful-reattach variant"
      ~columns:
        [
          "graph"; "seed"; "repair rounds (paper)"; "repair rounds (graceful)";
          "avail (paper)"; "avail (graceful)";
        ]
  in
  let graphs =
    if quick then [ ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 81) ]
    else
      [
        ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 81);
        ("er-24", Workloads.er_with ~n:24 ~avg_deg:4.0 82);
        ("geometric-20", Mdst_graph.Gen.by_name "geometric" (Prng.create 83) ~n:20);
      ]
  in
  List.iter
    (fun (name, graph) ->
      List.iter
        (fun seed ->
          match repair_measurement ~seed graph with
          | None -> ()
          | Some (d, g) ->
              Table.add_row table
                [
                  name;
                  Table.cell_int seed;
                  Table.cell_opt Table.cell_int d.rounds;
                  Table.cell_opt Table.cell_int g.rounds;
                  Table.cell_float ~decimals:3 d.availability;
                  Table.cell_float ~decimals:3 g.availability;
                ])
        (if quick then [ 101 ] else seeds 2))
    graphs;
  Table.add_note table
    "both arms replay the identical post-failure state; the graceful rule re-attaches the orphan directly";
  Table.add_note table
    "honest result: on random overlays the rule rarely applies (the orphan usually has no same-or-shallower \
     neighbour), so most rows coincide — the crafted-case test shows the mechanism works when it applies; \
     bounding disruption in general is exactly why the paper leaves super-stabilization open";
  [ table ]

(* The experiment registry: maps EXPERIMENTS.md identifiers to runners.
   Both the CLI (`mdst_sim experiments`) and the benchmark binary iterate
   this list. *)

type entry = {
  id : string;
  title : string;
  claim : string;  (* the paper statement this experiment checks *)
  run : ?quick:bool -> unit -> Table.t list;
}

let all =
  [
    {
      id = "E1";
      title = "Convergence to deg(T) <= Delta*+1";
      claim = "Theorem 2: the returned spanning tree has degree at most Delta*+1";
      run = Exp_convergence.run;
    };
    {
      id = "E2";
      title = "Degree-oblivious baselines";
      claim = "Intro: degree-aware trees avoid the high-degree hubs of naive trees";
      run = Exp_baselines.run;
    };
    {
      id = "E3";
      title = "Round-complexity scaling";
      claim = "Lemma 5: convergence within O(m n^2 log n) rounds";
      run = Exp_scaling.run;
    };
    {
      id = "E4";
      title = "Recovery from transient faults";
      claim = "Definition 1: convergence from any corrupted configuration";
      run = Exp_recovery.run;
    };
    {
      id = "E5";
      title = "Memory and message-size bounds";
      claim = "Lemma 5: O(delta log n) bits state, O(n log n) bits messages";
      run = Exp_memory.run;
    };
    {
      id = "E6";
      title = "Simultaneous max-degree reductions";
      claim = "Section 1: all max-degree nodes can decrease concurrently (vs [3])";
      run = Exp_simultaneous.run;
    };
    {
      id = "E7";
      title = "Degree trajectory";
      claim = "Figure 4: the reduction pipeline lowers deg(T) phase by phase";
      run = Exp_trajectory.run;
    };
    {
      id = "E8";
      title = "Message accounting by module";
      claim = "Section 3: traffic splits across gossip / cycle search / swaps";
      run = Exp_messages.run;
    };
    {
      id = "E9";
      title = "Figure 5 re-enactment";
      claim = "Figure 5: Remove/Back reverse the cycle orientation correctly";
      run = Exp_fig5.run;
    };
    {
      id = "E10";
      title = "Daemon robustness";
      claim = "Model: any asynchronous execution with reliable FIFO channels converges";
      run = Exp_schedulers.run;
    };
    {
      id = "E11";
      title = "Ablations (Deblock, Search pruning)";
      claim = "DESIGN.md: unblocking buys Delta*+1; pruning only saves traffic";
      run = Exp_ablation.run;
    };
    {
      id = "E12";
      title = "Atomicity-model comparison";
      claim = "Model: the guarantee is daemon-independent (async send/receive vs sync lockstep)";
      run = Exp_atomicity.run;
    };
    {
      id = "E13";
      title = "Topology changes";
      claim = "Conclusion: dynamic networks are the open problem — measure re-stabilization cost";
      run = Exp_topology.run;
    };
    {
      id = "E14";
      title = "Serialized comparator (Blin-Butelle style)";
      claim = "Section 1: concurrent improvements and O(delta log n) memory beat the [3] lineage";
      run = Exp_comparator.run;
    };
    {
      id = "E15";
      title = "Layer isolation";
      claim = "Section 3: the composition — tree layer cost vs what reduction adds";
      run = Exp_layers.run;
    };
    {
      id = "E16";
      title = "Availability during convergence/repair";
      claim = "Conclusion: the transient-disruption baseline a super-stabilizing variant must beat";
      run = Exp_availability.run;
    };
    {
      id = "E17";
      title = "Graceful re-attach (super-stabilization prototype)";
      claim = "Conclusion: a direct answer to the open problem — bounded disruption on link failure";
      run = Exp_super.run;
    };
    {
      id = "E19";
      title = "Engine macro-benchmarks (n up to 2048)";
      claim = "ROADMAP: the simulator scales to thousands of nodes — O(n+m) engine memory, tracked events/sec";
      run = Bench_engine.run;
    };
    {
      id = "E20";
      title = "Protocol macro-benchmarks (convergence, messages, allocation)";
      claim =
        "ROADMAP: the protocol hot path is allocation-lean — time/messages/allocated bytes \
         to convergence at n up to 2048, with and without Info suppression";
      run = Bench_proto.run;
    };
    {
      id = "E21";
      title = "Model conformance + schedule exploration coverage";
      claim =
        "Proof obligations quantify over all executions — report how much schedule space the \
         conformance DFS and lockstep walks cover, with zero violations on a correct build";
      run = Exp_explore.run;
    };
  ]

let find id =
  match List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) all with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Registry.find: unknown experiment %S" id)

let ids = List.map (fun e -> e.id) all

let run_all ?quick ?(out = print_string) () =
  List.iter
    (fun e ->
      out (Printf.sprintf "\n######## %s — %s\n# claim: %s\n\n" e.id e.title e.claim);
      List.iter (fun t -> out (Table.render t ^ "\n")) (e.run ?quick ()))
    all

(* Write every table as CSV under [dir]; returns the paths written. *)
let save_csvs ~dir ?quick () =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.concat_map
    (fun e ->
      List.mapi
        (fun i table ->
          let path = Filename.concat dir (Printf.sprintf "%s-%d.csv" (String.lowercase_ascii e.id) i) in
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () -> output_string oc (Table.to_csv table));
          path)
        (e.run ?quick ()))
    all

(* E8 / Table 5 — message-complexity accounting per protocol module: how the
   traffic splits between the gossip substrate (Info), cycle detection
   (Search, by far the dominant share — each detection is a DFS of the
   tree), and the swap machinery (Swap-req/Remove/Grant/Reverse +
   UpdateDist + Deblock). *)

open Exp_common

let get label messages = match List.assoc_opt label messages with Some c -> c | None -> 0

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E8: messages per converged run, by protocol module"
      ~columns:
        [ "n"; "m"; "info"; "search"; "swap(4 kinds)"; "update-dist"; "deblock"; "total" ]
  in
  let sizes = if quick then [ 12; 20 ] else [ 8; 12; 16; 20; 28; 36 ] in
  List.iter
    (fun n ->
      let graph = Workloads.er_with ~n ~avg_deg:4.0 8 in
      let r = run_protocol ~seed:2 ~init:`Random graph in
      let swap =
        get "swap-req" r.messages + get "remove" r.messages + get "grant" r.messages
        + get "reverse" r.messages
      in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int (Graph.m graph);
          Table.cell_int (get "info" r.messages);
          Table.cell_int (get "search" r.messages);
          Table.cell_int swap;
          Table.cell_int (get "update-dist" r.messages);
          Table.cell_int (get "deblock" r.messages);
          Table.cell_int r.total_messages;
        ])
    sizes;
  Table.add_note table "Info is the periodic gossip; it runs forever and dominates long runs";
  [ table ]

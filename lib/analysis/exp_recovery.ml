(* E4 / Figure B — self-stabilization (Definition 1): converge, corrupt a
   fraction of the node states (and inject garbage onto their channels),
   and measure the rounds needed to re-converge.  The defining property is
   that recovery succeeds from *any* corruption, including 100%. *)

open Exp_common

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E4: recovery rounds after transient corruption (ER n=20, avg deg 4)"
      ~columns:[ "corrupted fraction"; "nodes hit"; "recovery rounds (median)"; "recovered" ]
  in
  let fractions = if quick then [ 0.25; 1.0 ] else [ 0.1; 0.25; 0.5; 0.75; 1.0 ] in
  let seed_count = if quick then 2 else 3 in
  List.iter
    (fun fraction ->
      let runs =
        Mdst_util.Parallel.map
          (fun seed ->
            let graph = Workloads.er_with ~n:20 ~avg_deg:4.0 seed in
            Run.converge_corrupt_recover ~seed ~fixpoint ~fraction graph)
          (seeds seed_count)
      in
      let recoveries = List.filter_map (fun (r : Run.recovery) -> r.recovery_rounds) runs in
      let hit = List.map (fun (r : Run.recovery) -> r.corrupted) runs in
      Table.add_row table
        [
          Table.cell_float ~decimals:2 fraction;
          (match hit with [] -> "-" | _ -> Table.cell_int (median_int hit));
          (match recoveries with
          | [] -> "-"
          | _ -> Table.cell_int (median_int recoveries));
          Printf.sprintf "%d/%d" (List.length recoveries) (List.length runs);
        ])
    fractions;
  Table.add_note table "corruption randomises every protocol variable and injects garbage messages";
  [ table ]

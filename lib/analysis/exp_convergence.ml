(* E1 / Table 1 — the headline claim (Theorem 2): from a clean or arbitrary
   start, the protocol converges to a spanning tree of degree at most
   Δ* + 1, across every graph family. *)

open Exp_common
module Table = Table

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E1: convergence to deg(T) <= Delta*+1 (paper Theorem 2)"
      ~columns:
        [ "graph"; "n"; "m"; "deg(G)"; "Delta*"; "proto deg"; "FR deg"; "rounds"; "<=D*+1" ]
  in
  let mix = if quick then [ List.nth Workloads.e1_mix 0; List.nth Workloads.e1_mix 4; List.nth Workloads.e1_mix 10 ] else Workloads.e1_mix in
  let all_ok = ref true in
  List.iter
    (fun (w : Workloads.t) ->
      let graph = w.build 1 in
      let ds = delta_star graph in
      let fr_deg = Mdst_graph.Tree.max_degree (Fr.approx_mdst graph) in
      let result = run_protocol ~seed:11 ~init:`Random graph in
      let degree = match result.degree with Some d -> d | None -> -1 in
      let ok = result.converged && degree >= 0 && within_bound ~degree ds in
      if not ok then all_ok := false;
      Table.add_row table
        [
          w.name;
          Table.cell_int (Graph.n graph);
          Table.cell_int (Graph.m graph);
          Table.cell_int (Graph.max_degree graph);
          delta_star_cell ds;
          (if degree >= 0 then Table.cell_int degree else "-");
          Table.cell_int fr_deg;
          Table.cell_int result.rounds;
          Table.cell_bool ok;
        ])
    mix;
  Table.add_note table "all runs start from a corrupted (`Random) configuration";
  Table.add_note table
    (Printf.sprintf "paper claim deg(T) <= Delta*+1: %s"
       (if !all_ok then "HOLDS on every instance" else "VIOLATED somewhere (see rows)"));
  if quick then [ table ]
  else begin
    (* Larger instances: Delta* bracketed by the FR bound instead of the
       exact solver; the check still uses the bracket's upper end. *)
    let t2 =
      Table.make ~title:"E1b: larger instances (Delta* bracketed by the FR bound)"
        ~columns:[ "graph"; "n"; "m"; "Delta*"; "proto deg"; "rounds"; "<=D*+1" ]
    in
    List.iter
      (fun (w : Workloads.t) ->
        let graph = w.build 1 in
        let ds = delta_star graph in
        let result = run_protocol ~seed:11 ~init:`Random graph in
        let degree = match result.degree with Some d -> d | None -> -1 in
        let ok = result.converged && degree >= 0 && within_bound ~degree ds in
        Table.add_row t2
          [
            w.name;
            Table.cell_int (Graph.n graph);
            Table.cell_int (Graph.m graph);
            delta_star_cell ds;
            (if degree >= 0 then Table.cell_int degree else "-");
            Table.cell_int result.rounds;
            Table.cell_bool ok;
          ])
      Workloads.large_mix;
    [ table; t2 ]
  end

(** The named graph instances shared by the experiments and the CLI.
    Deterministic: a workload's generator PRNG is derived from its name and
    the caller's seed. *)

type t = {
  name : string;
  n : int;  (** approximate node count *)
  build : int -> Mdst_graph.Graph.t;  (** seed -> instance *)
}

val e1_mix : t list
(** The headline mix of experiment E1: deterministic structures with
    analytically known Δ* plus random families, all small enough for the
    exact solver. *)

val large_mix : t list
(** Larger instances (Δ* bracketed by the FR bound instead of solved). *)

val all_named : t list

val names : string list

val find : string -> t
(** @raise Invalid_argument on unknown workload names. *)

val er_with : n:int -> avg_deg:float -> int -> Mdst_graph.Graph.t
(** Connected Erdős–Rényi instance at a target average degree — the sweep
    workload of E3/E4/E5/E8. *)

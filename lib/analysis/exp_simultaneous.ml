(* E6 / Table 4 — simultaneous reduction of several maximum-degree nodes.

   The paper's stated advantage over the distributed FR of Blin–Butelle [3]
   is that fundamental-cycle detection lets *every* max-degree node shed an
   edge concurrently.  We build a star-of-cliques whose initial spanning
   tree has one max-degree hub per clique, and measure the rounds until the
   tree degree first drops below its initial value.  If reductions were
   serialised, this first phase would grow linearly with the number of
   hubs; concurrent reductions keep it nearly flat. *)

open Exp_common
module Gen = Mdst_graph.Gen
module Engine = Run.Engine

(* Spanning tree with one deg-(clique_size) node per clique: hub -> node0 of
   each clique -> the rest of its clique, star-wise. *)
let hubby_tree graph ~cliques ~clique_size =
  let n = Graph.n graph in
  let hub = n - 1 in
  let parents = Array.make n hub in
  parents.(hub) <- hub;
  for c = 0 to cliques - 1 do
    let base = c * clique_size in
    parents.(base) <- hub;
    for i = 1 to clique_size - 1 do
      parents.(base + i) <- base
    done
  done;
  Mdst_graph.Tree.of_parents graph ~root:hub parents

let first_drop_rounds ~cliques ~clique_size ~seed =
  let graph = Gen.star_of_cliques ~cliques ~clique_size in
  let tree = hubby_tree graph ~cliques ~clique_size in
  let k0 = Mdst_graph.Tree.max_degree tree in
  let engine = Run.make_engine ~seed ~init:(`Tree tree) graph in
  let stop t =
    match Mdst_core.Checker.tree_degree_now (Engine.graph t) (Engine.states t) with
    | Some k -> k < k0
    | None -> false
  in
  let outcome = Engine.run engine ~max_rounds:20_000 ~check_every:2 ~stop () in
  (k0, (if outcome.converged then Some outcome.rounds else None))

let run ?(quick = false) () =
  let table =
    Table.make
      ~title:"E6: first reduction phase vs number of simultaneous max-degree nodes"
      ~columns:[ "cliques"; "n"; "initial deg"; "max-deg nodes"; "rounds to first drop" ]
  in
  let clique_size = 8 in
  let counts = if quick then [ 3; 5 ] else [ 3; 4; 5; 6; 8 ] in
  List.iter
    (fun cliques ->
      let runs = List.map (fun seed -> first_drop_rounds ~cliques ~clique_size ~seed) (seeds 3) in
      let k0 = fst (List.hd runs) in
      let rounds = List.filter_map snd runs in
      Table.add_row table
        [
          Table.cell_int cliques;
          Table.cell_int ((cliques * clique_size) + 1);
          Table.cell_int k0;
          Table.cell_int cliques;
          (match rounds with [] -> "-" | _ -> Table.cell_int (median_int rounds));
        ])
    counts;
  Table.add_note table
    "near-flat rounds across rows = concurrent improvements (paper's contrast with [3])";
  [ table ]

(* E5 / Table 3 — memory and message-length complexity (Lemma 5):
   O(δ log n) bits of state per node in the send/receive model, and
   O(n log n)-bit messages (Search carries the fundamental-cycle path).
   We meter idealised bit sizes during real runs and report the ratio to
   the bound, which should stay O(1) across the sweep. *)

open Exp_common
module Sizing = Mdst_util.Sizing

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E5: peak state and message size vs paper bounds"
      ~columns:
        [
          "n"; "delta"; "state bits"; "delta*log n"; "ratio"; "msg bits"; "n*log n"; "ratio ";
        ]
  in
  let sizes = if quick then [ 12; 24 ] else [ 8; 12; 16; 24; 32; 48 ] in
  List.iter
    (fun n ->
      let graph = Workloads.er_with ~n ~avg_deg:4.0 3 in
      let r = run_protocol ~seed:5 ~init:`Random graph in
      let delta = Graph.max_degree graph in
      let logn = Sizing.bits_for_card n in
      let state_bound = delta * logn in
      let msg_bound = n * logn in
      Table.add_row table
        [
          Table.cell_int n;
          Table.cell_int delta;
          Table.cell_int r.max_state_bits;
          Table.cell_int state_bound;
          Table.cell_float (float_of_int r.max_state_bits /. float_of_int state_bound);
          Table.cell_int r.max_msg_bits;
          Table.cell_int msg_bound;
          Table.cell_float (float_of_int r.max_msg_bits /. float_of_int msg_bound);
        ])
    sizes;
  Table.add_note table "constant ratios across the sweep confirm the O(delta log n) / O(n log n) orders";
  [ table ]

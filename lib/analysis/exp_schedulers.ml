(* E10 / Table 6 — robustness to the asynchronous daemon: the algorithm must
   converge under any latency model (the paper only assumes reliable FIFO
   channels).  We run identical corrupted starts under each model. *)

open Exp_common
module Latency = Mdst_sim.Latency

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E10: convergence under different daemons (corrupted start)"
      ~columns:[ "graph"; "latency model"; "converged"; "rounds"; "deg"; "<=D*+1" ]
  in
  let models = if quick then [ "uniform"; "slow-links" ] else Latency.names in
  let graphs =
    [ ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 5);
      ("grid-4x4", Mdst_graph.Gen.grid ~rows:4 ~cols:4) ]
  in
  List.iter
    (fun (gname, graph) ->
      let ds = delta_star graph in
      List.iter
        (fun model ->
          let latency = Latency.by_name model 77 in
          let r = run_protocol ~latency ~seed:13 ~init:`Random graph in
          let ok =
            match r.degree with Some d -> r.converged && within_bound ~degree:d ds | None -> false
          in
          Table.add_row table
            [
              gname;
              model;
              Table.cell_bool r.converged;
              Table.cell_int r.rounds;
              Table.cell_opt Table.cell_int r.degree;
              Table.cell_bool ok;
            ])
        models)
    graphs;
  [ table ]

(** E6 — simultaneous max-degree reductions (see the .ml header). *)

val hubby_tree :
  Mdst_graph.Graph.t -> cliques:int -> clique_size:int -> Mdst_graph.Tree.t
(** Spanning tree of a star-of-cliques with one maximal hub per clique. *)

val first_drop_rounds : cliques:int -> clique_size:int -> seed:int -> int * int option
(** (initial tree degree, rounds until deg(T) first drops), or [None] when
    the drop did not happen within the round budget. *)

val run : ?quick:bool -> unit -> Table.t list

let check_nonempty name = function [] -> invalid_arg ("Stats." ^ name ^ ": empty list") | _ -> ()

let mean xs =
  check_nonempty "mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let sorted xs = List.sort compare xs

let percentile p xs =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let a = Array.of_list (sorted xs) in
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (a.(lo) *. (1.0 -. frac)) +. (a.(hi) *. frac)
  end

let median xs = percentile 50.0 xs

let stddev xs =
  check_nonempty "stddev" xs;
  match xs with
  | [ _ ] -> 0.0
  | _ ->
      let m = mean xs in
      let ss = List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
      sqrt (ss /. float_of_int (List.length xs - 1))

let minimum xs =
  check_nonempty "minimum" xs;
  List.fold_left min infinity xs

let maximum xs =
  check_nonempty "maximum" xs;
  List.fold_left max neg_infinity xs

let mean_ci95 xs =
  let m = mean xs in
  let n = float_of_int (List.length xs) in
  (m, 1.96 *. stddev xs /. sqrt n)

let linear_fit pts =
  if List.length pts < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let n = float_of_int (List.length pts) in
  let sx = List.fold_left (fun a (x, _) -> a +. x) 0.0 pts in
  let sy = List.fold_left (fun a (_, y) -> a +. y) 0.0 pts in
  let sxx = List.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 pts in
  let sxy = List.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 pts in
  let denom = (n *. sxx) -. (sx *. sx) in
  if abs_float denom < 1e-12 then invalid_arg "Stats.linear_fit: degenerate x values";
  let slope = ((n *. sxy) -. (sx *. sy)) /. denom in
  (slope, (sy -. (slope *. sx)) /. n)

let loglog_slope pts =
  let pts = List.filter (fun (x, y) -> x > 0.0 && y > 0.0) pts in
  let logged = List.map (fun (x, y) -> (log x, log y)) pts in
  fst (linear_fit logged)

let of_ints = List.map float_of_int

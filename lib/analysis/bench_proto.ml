(* E20 — protocol macro-benchmarks.

   Where E19 (bench_engine) meters the *engine* on a fixed event budget,
   this meters the *protocol*: full clean-start runs to convergence
   (legitimacy + fingerprint quiescence, no FR oracle) at n up to 2048 on
   ER (avg deg 4), grid and star topologies.  Per point it records
   wall-clock to convergence, total messages/bits, the peak number of
   in-flight events (sampled at stop-check granularity) and the GC
   allocation volume of the whole run — the cost driven by the Search
   path construction and the per-tick Info fan-out, i.e. the protocol hot
   path this trajectory exists to keep honest.

   The star topology is deliberately degenerate: the hub gossips to n-1
   neighbours every tick, which is the worst case for Info fan-out and
   the best case for dirty-bit suppression, while the graph is already a
   tree so no cycle search ever completes.  Points are serialized to
   BENCH_proto.json via `mdst_sim bench --proto` / `make bench-proto`,
   the same trajectory path as BENCH_engine.json. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Prng = Mdst_util.Prng
module Run = Mdst_core.Run
module Proto = Mdst_core.Proto
module Metrics = Mdst_sim.Metrics

type point = {
  topology : string;
  n : int;
  m : int;
  suppression : bool;  (** Info dirty-bit suppression mode active? *)
  converged : bool;
  rounds : int;
  elapsed_s : float;
  messages : int;  (** total sends over the run *)
  bits : int;  (** idealised encoded volume of those sends *)
  peak_in_flight : int;  (** max pending engine events, sampled every stop check *)
  suppressed : int;  (** Info sends elided by suppression (0 when off) *)
  allocated_bytes : float;  (** GC allocation volume of engine build + run *)
}

let sizes ~quick = if quick then [ 64; 256 ] else [ 64; 256; 1024; 2048 ]

let topologies = [ "er"; "grid"; "star" ]

let max_rounds = 60_000

let graph_for topology n =
  match topology with
  | "er" ->
      (* Same family/seed scheme as Bench_engine so the two trajectories
         describe the same graphs. *)
      let p = 4.0 /. float_of_int (n - 1) in
      Gen.erdos_renyi_connected (Prng.create (0xbe2c lxor n)) ~n ~p
  | "grid" | "star" -> Gen.by_name topology (Prng.create (0xbe2c lxor n)) ~n
  | other -> invalid_arg (Printf.sprintf "Bench_proto.graph_for: unknown topology %S" other)

module Bench
    (A : Mdst_sim.Node.AUTOMATON
           with type state = Mdst_core.State.t
            and type msg = Mdst_core.Msg.t) =
struct
  module R = Run.Runner (A)

  let point ~topology ~suppression graph =
    let alloc0 = Gc.allocated_bytes () in
    let engine = R.make_engine ~seed:11 ~init:`Clean graph in
    let stop_inner = R.make_stop () in
    let peak = ref 0 in
    let stop t =
      let p = R.Engine.pending_events t in
      if p > !peak then peak := p;
      stop_inner t
    in
    let t0 = Unix.gettimeofday () in
    let outcome = R.Engine.run engine ~max_rounds ~check_every:2 ~stop () in
    let elapsed = Unix.gettimeofday () -. t0 in
    let alloc1 = Gc.allocated_bytes () in
    let metrics = R.Engine.metrics engine in
    {
      topology;
      n = Graph.n graph;
      m = Graph.m graph;
      suppression;
      converged = outcome.converged;
      rounds = outcome.rounds;
      elapsed_s = elapsed;
      messages = Metrics.total_messages metrics;
      bits = Metrics.total_bits metrics;
      peak_in_flight = !peak;
      suppressed = Metrics.suppressed_sends metrics;
      allocated_bytes = alloc1 -. alloc0;
    }
end

module Default_bench = Bench (Proto.Default)
module Suppressed_bench = Bench (Proto.Suppressed)

let bench_point ~topology ~suppression graph =
  if suppression then Suppressed_bench.point ~topology ~suppression graph
  else Default_bench.point ~topology ~suppression graph

let points ?(quick = false) ?sizes:size_list ?(progress = fun _ -> ()) () =
  let ns = match size_list with Some l -> l | None -> sizes ~quick in
  List.concat_map
    (fun suppression ->
      List.concat_map
        (fun topology ->
          List.map
            (fun n ->
              let p = bench_point ~topology ~suppression (graph_for topology n) in
              progress p;
              p)
            ns)
        topologies)
    [ false; true ]

let table pts =
  let t =
    Table.make ~title:"E20: protocol macro-benchmarks (clean start to convergence)"
      ~columns:
        [ "topology"; "n"; "m"; "suppr"; "conv"; "rounds"; "secs"; "msgs"; "Mbits";
          "peak-fly"; "elided"; "alloc MB" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.topology;
          Table.cell_int p.n;
          Table.cell_int p.m;
          (if p.suppression then "on" else "off");
          (if p.converged then "yes" else "NO");
          Table.cell_int p.rounds;
          Table.cell_float ~decimals:1 p.elapsed_s;
          Table.cell_int p.messages;
          Table.cell_float ~decimals:1 (float_of_int p.bits /. 1e6);
          Table.cell_int p.peak_in_flight;
          Table.cell_int p.suppressed;
          Table.cell_float ~decimals:1 (p.allocated_bytes /. 1e6);
        ])
    pts;
  Table.add_note t
    "alloc MB = Gc.allocated_bytes over engine build + run; peak-fly sampled every stop check \
     (2 rounds)";
  t

(* The registry path rides inside the tier-1 quick smoke (60 s budget for
   the whole suite), so quick mode here stays at n = 64 only; the CLI
   bench path keeps the larger quick set via [points]. *)
let run ?(quick = false) () =
  [ table (if quick then points ~quick ~sizes:[ 64 ] () else points ()) ]

(* Same hand-rolled flat-JSON scheme as Bench_engine (no JSON dependency). *)
let to_json ?(quick = false) pts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"schema\": \"mdst-bench-proto/1\",\n  \"quick\": %b,\n  \"points\": [\n"
       quick);
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"topology\": %S, \"n\": %d, \"m\": %d, \"suppression\": %b, \
            \"converged\": %b, \"rounds\": %d, \"elapsed_s\": %.17g, \"messages\": %d, \
            \"bits\": %d, \"peak_in_flight\": %d, \"suppressed\": %d, \
            \"allocated_bytes\": %.17g}%s\n"
           p.topology p.n p.m p.suppression p.converged p.rounds p.elapsed_s p.messages
           p.bits p.peak_in_flight p.suppressed p.allocated_bytes
           (if i = List.length pts - 1 then "" else ",")))
    pts;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~path ?(quick = false) pts =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_json ~quick pts))

let pp_point ppf p =
  Format.fprintf ppf
    "%-5s n=%-5d suppr=%-3s conv=%b rounds=%d %.1fs msgs=%d alloc=%.1fMB"
    p.topology p.n
    (if p.suppression then "on" else "off")
    p.converged p.rounds p.elapsed_s p.messages
    (p.allocated_bytes /. 1e6)

(* E15 — layer isolation: the spanning-tree + max-degree layers alone
   (paper §3.2.1/§3.2.3, the Tree_only ablation) versus the full stack.

   Two questions:
   1. how much of the total convergence time does tree construction
      account for (the paper's Lemma 5 says the reduction layer dominates
      asymptotically);
   2. what tree degree does the bare BFS-style layer settle on — i.e. the
      quality the reduction layers add. *)

open Exp_common
module Tree_only = Run.Runner (Mdst_core.Proto.Tree_only)

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E15: spanning-tree layer alone vs full protocol (corrupted start)"
      ~columns:
        [
          "graph"; "tree-only rounds"; "full rounds"; "tree-only deg"; "full deg"; "msgs ratio";
        ]
  in
  let graphs =
    if quick then [ ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 61) ]
    else
      [
        ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 61);
        ("er-24", Workloads.er_with ~n:24 ~avg_deg:4.0 62);
        ("geometric-16", Mdst_graph.Gen.by_name "geometric" (Mdst_util.Prng.create 63) ~n:16);
        ("ba-24", Mdst_graph.Gen.barabasi_albert (Mdst_util.Prng.create 64) ~n:24 ~k:2);
      ]
  in
  List.iter
    (fun (name, graph) ->
      (* The bare layer stops at any legitimate quiescent configuration:
         there is no reduction to wait for. *)
      let bare = Tree_only.converge ~seed:19 ~init:`Random ~quiet_rounds:80 graph in
      let full = run_protocol ~seed:19 ~init:`Random graph in
      Table.add_row table
        [
          name;
          Table.cell_int bare.rounds;
          Table.cell_int full.rounds;
          Table.cell_opt Table.cell_int bare.degree;
          Table.cell_opt Table.cell_int full.degree;
          Table.cell_float
            (float_of_int full.total_messages /. float_of_int (max 1 bare.total_messages));
        ])
    graphs;
  Table.add_note table
    "tree-only settles on whatever tree the BFS rules build; the reduction layers buy the degree drop";
  [ table ]

(** E20 — protocol macro-benchmarks: full clean-start runs to convergence
    at n up to 2048 on ER (avg deg 4), grid and star, with and without
    Info dirty-bit suppression.  Per point: wall-clock, messages/bits,
    peak in-flight events and GC allocation volume — the protocol-level
    perf trajectory feeding BENCH_proto.json (via [mdst_sim bench
    --proto] / [make bench-proto]), alongside the engine trajectory in
    BENCH_engine.json. *)

type point = {
  topology : string;  (** "er", "grid" or "star" *)
  n : int;
  m : int;
  suppression : bool;  (** Info dirty-bit suppression mode active? *)
  converged : bool;
  rounds : int;
  elapsed_s : float;
  messages : int;  (** total sends over the run *)
  bits : int;  (** idealised encoded volume of those sends *)
  peak_in_flight : int;  (** max pending engine events, sampled every stop check *)
  suppressed : int;  (** Info sends elided by suppression (0 when off) *)
  allocated_bytes : float;  (** GC allocation volume of engine build + run *)
}

val graph_for : string -> int -> Mdst_graph.Graph.t
(** Same ER family/seed scheme as {!Bench_engine} so the two trajectories
    describe the same graphs. *)

val bench_point : topology:string -> suppression:bool -> Mdst_graph.Graph.t -> point
(** One full run to convergence (legitimacy + quiescence, no FR oracle). *)

val points :
  ?quick:bool -> ?sizes:int list -> ?progress:(point -> unit) -> unit -> point list
(** Quick mode: n in 64, 256 (CI smoke); full mode adds 1024 and 2048;
    [?sizes] overrides either set.  Both suppression arms, all three
    topologies.  [progress] fires after each completed point (points at
    large n take minutes). *)

val table : point list -> Table.t

val run : ?quick:bool -> unit -> Table.t list
(** Registry entry point (experiment E20). *)

val to_json : ?quick:bool -> point list -> string

val write_json : path:string -> ?quick:bool -> point list -> unit

val pp_point : Format.formatter -> point -> unit
(** One-line progress rendering for CLI streaming. *)

(** Shared scaffolding for the experiment suite.

    Every experiment runs the real protocol through {!Mdst_core.Run} with
    the Fürer–Raghavachari fixpoint oracle wired into the stop condition: a
    run only counts as converged once the extracted tree admits no further
    FR improvement, which is the paper's legitimacy notion. *)

(** Aliases the experiment modules pull in via [open Exp_common]. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Run = Mdst_core.Run
module Fr = Mdst_baseline.Fr
module Exact = Mdst_baseline.Exact

val fixpoint : Mdst_graph.Tree.t -> bool
(** [not (Fr.improvable tree)]. *)

val run_protocol :
  ?latency:Mdst_sim.Latency.t ->
  ?init:Mdst_core.Run.init ->
  ?max_rounds:int ->
  seed:int ->
  Mdst_graph.Graph.t ->
  Mdst_core.Run.result

(** Δ*: exact when the solver finished, otherwise bracketed by the FR
    guarantee (deg_FR - 1 <= Δ* <= deg_FR, floored by the cut bound). *)
type delta_star = Exact_opt of int | Range of int * int

val delta_star : ?exact_limit:int -> Mdst_graph.Graph.t -> delta_star
(** Exact solve attempted for graphs up to [exact_limit] nodes
    (default 20). *)

val delta_star_cell : delta_star -> string

val delta_star_upper : delta_star -> int

val within_bound : degree:int -> delta_star -> bool
(** The paper's guarantee, checked against the {e upper} end of the
    bracket (never optimistic). *)

val seeds : int -> int list
(** [count] deterministic experiment seeds. *)

val median_int : int list -> int

(* E13 — topology changes (the paper's concluding open problem: dynamic
   networks / churn).  The protocol was designed for static topologies; we
   measure how it copes when the topology changes under a converged
   overlay:

   - a tree edge is removed (the hard case: the spanning tree is broken
     and the orphaned subtree must re-attach);
   - an edge is added (the easy case: at worst a new improvement chance).

   State is carried across the change by {!Mdst_core.Transplant}: mirrors
   are re-matched by identifier, dangling parents are left for the
   protocol to repair.  This quantifies how far the existing algorithm is
   from the super-stabilization the paper calls for. *)

open Exp_common
module Transplant = Mdst_core.Transplant
module Engine = Run.Engine
module Prng = Mdst_util.Prng

type change = Remove_tree_edge | Add_edge

let change_name = function Remove_tree_edge -> "remove tree edge" | Add_edge -> "add edge"

let run_change ~seed ~change graph =
  let engine = Run.make_engine ~seed graph in
  let stop = Run.make_stop ~fixpoint () in
  let o1 = Engine.run engine ~max_rounds:Run.default_max_rounds ~check_every:2 ~stop () in
  if not o1.converged then None
  else begin
    let states = Array.copy (Engine.states engine) in
    let rng = Prng.create (seed * 97) in
    let mutation =
      match change with
      | Remove_tree_edge -> (
          match Mdst_core.Checker.tree_of_states graph states with
          | Some tree -> Transplant.remove_tree_edge rng graph tree
          | None -> None)
      | Add_edge -> Transplant.add_random_edge rng graph
    in
    match mutation with
    | None -> None
    | Some (new_graph, edge) ->
        let moved = Transplant.states ~old_graph:graph ~new_graph states in
        let engine2 =
          Engine.create ~seed:(seed + 1)
            ~init:(`Custom (fun ctx _ -> moved.(ctx.Mdst_sim.Node.node)))
            new_graph
        in
        let stop2 = Run.make_stop ~fixpoint () in
        let o2 =
          Engine.run engine2 ~max_rounds:Run.default_max_rounds ~check_every:2 ~stop:stop2 ()
        in
        ignore edge;
        let degree =
          Mdst_core.Checker.tree_degree_now new_graph (Engine.states engine2)
        in
        Some (o1.rounds, (if o2.converged then Some o2.rounds else None), degree)
  end

let run ?(quick = false) () =
  let table =
    Table.make ~title:"E13: re-stabilization after a topology change (converged overlay)"
      ~columns:
        [ "graph"; "change"; "initial rounds"; "re-stabilize rounds (median)"; "deg after" ]
  in
  let graphs =
    if quick then [ ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 41) ]
    else
      [
        ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 41);
        ("er-24", Workloads.er_with ~n:24 ~avg_deg:4.0 42);
        ("grid-4x4", Mdst_graph.Gen.grid ~rows:4 ~cols:4);
      ]
  in
  List.iter
    (fun (name, graph) ->
      List.iter
        (fun change ->
          let outcomes = List.filter_map (fun seed -> run_change ~seed ~change graph) (seeds 3) in
          let initial = List.map (fun (r, _, _) -> r) outcomes in
          let recov = List.filter_map (fun (_, r, _) -> r) outcomes in
          let degs = List.filter_map (fun (_, _, d) -> d) outcomes in
          Table.add_row table
            [
              name;
              change_name change;
              (match initial with [] -> "-" | _ -> Table.cell_int (median_int initial));
              (match recov with [] -> "-" | _ -> Table.cell_int (median_int recov));
              (match degs with [] -> "-" | _ -> Table.cell_int (median_int degs));
            ])
        [ Remove_tree_edge; Add_edge ])
    graphs;
  Table.add_note table
    "removal breaks the spanning tree (orphaned subtree re-attaches); addition at worst opens a new improvement";
  [ table ]

(** Experiment module — the header comment of the .ml explains the setup
    and the paper claim it checks; the registry maps it to its E-number. *)

val run : ?quick:bool -> unit -> Table.t list

(* E9 — re-enactment of paper Figure 5 (Reverse orientation after an edge
   removal).  We build the smallest instance whose single improvement
   exercises the full Remove/Grant/Reverse/UpdateDist machinery:

       0 - 1 - 2 - 3 - 4 - 5     the initial tree (a path, rooted at 0)
                   |\
                   6 7           two leaves pin node 3 at degree 4
       0 ----------------- 5     the improving non-tree edge

   The fundamental cycle of {0,5} passes through node 3 (degree 4 = dmax);
   both endpoints have tree degree 1, so {0,5} is an improving edge.  The
   protocol must delete a cycle edge at node 3 and re-orient the segment
   between the removed edge and an endpoint — exactly the situation of
   Figure 5 — ending at deg(T) = 3 = Δ* (node 3 keeps its two leaves plus
   one path edge; G - {3} splits into three components, so Δ* = 3). *)

open Exp_common
module Gen = Mdst_graph.Gen

let graph () =
  Mdst_graph.Graph.of_edges ~n:8
    [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 5); (3, 6); (3, 7); (0, 5) ]

let path_tree g =
  Mdst_graph.Tree.of_parents g ~root:0 [| 0; 0; 1; 2; 3; 4; 3; 3 |]

let run ?quick:(_ = false) () =
  let g = graph () in
  let t0 = path_tree g in
  let result = run_protocol ~seed:21 ~init:(`Tree t0) g in
  let table =
    Table.make ~title:"E9: paper Figure 5 re-enactment (orientation reversal)"
      ~columns:[ "check"; "value"; "ok" ]
  in
  let row name value ok = Table.add_row table [ name; value; Table.cell_bool ok ] in
  row "initial deg(T)" (Table.cell_int (Tree.max_degree t0)) (Tree.max_degree t0 = 4);
  row "converged" (Table.cell_bool result.converged) result.converged;
  (match result.tree with
  | None -> row "final tree" "-" false
  | Some t ->
      row "final deg(T)" (Table.cell_int (Tree.max_degree t)) (Tree.max_degree t = 3);
      row "improving edge {0,5} adopted" (Table.cell_bool (Tree.is_tree_edge t 0 5))
        (Tree.is_tree_edge t 0 5);
      let dropped =
        List.filter (fun e -> not (Tree.is_tree_edge t (fst e) (snd e))) [ (2, 3); (3, 4) ]
      in
      row "cycle edge at node 3 removed"
        (String.concat "," (List.map (fun (a, b) -> Printf.sprintf "(%d,%d)" a b) dropped))
        (List.length dropped = 1);
      let depth_ok =
        List.for_all
          (fun v -> v = Tree.root t || Tree.depth t v = Tree.depth t (Tree.parent t v) + 1)
          (List.init 8 Fun.id)
      in
      row "distances coherent after UpdateDist" (Table.cell_bool depth_ok) depth_ok);
  let swap_traffic =
    List.filter (fun (l, _) -> List.mem l [ "swap-req"; "remove"; "grant"; "reverse"; "update-dist" ])
      result.messages
  in
  List.iter
    (fun (l, c) -> Table.add_row table [ "traffic: " ^ l; Table.cell_int c; Table.cell_bool (c > 0) ])
    swap_traffic;
  [ table ]

(* E11 — ablations of the two design choices DESIGN.md calls out:

   (a) Deblock: without it the algorithm stalls at local optima where every
       improving candidate has a blocking endpoint; the final degree can sit
       above Δ*+1.  This isolates the paper's recursive unblocking as the
       ingredient that buys the approximation guarantee.
   (b) Eager pruning of Search starts: a pure message-cost optimisation;
       final trees must be identical in quality, traffic much lower when
       pruning is on (the paper's version always searches). *)

open Exp_common
module No_deblock = Run.Runner (Mdst_core.Proto.No_deblock)
module No_prune = Run.Runner (Mdst_core.Proto.No_prune)

let run ?(quick = false) () =
  let t1 =
    Table.make ~title:"E11a: Deblock ablation — final degree with/without unblocking"
      ~columns:[ "graph"; "seed"; "deg (full)"; "deg (no deblock)"; "Delta*" ]
  in
  (* The deblock gadget is the adversarial witness: its only improving edge
     is blocked, so the ablated variant must stay at degree 4. *)
  let gadget = Mdst_graph.Gen.deblock_gadget () in
  let _, gadget_parents = Mdst_graph.Gen.deblock_gadget_tree gadget in
  let gadget_tree = Tree.of_parents gadget ~root:0 gadget_parents in
  let graphs =
    ("deblock-gadget", gadget, Some (`Tree gadget_tree))
    ::
    (let random_start g = (g, None) in
     List.map
       (fun (n, g) -> let g, i = random_start g in (n, g, i))
       [
         ("k-bipartite-3x7", Mdst_graph.Gen.complete_bipartite 3 7);
         ("lollipop-8+8", Mdst_graph.Gen.lollipop ~clique:8 ~tail:8);
         ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 31);
         ( "er-dense-14",
           Mdst_graph.Gen.erdos_renyi_connected (Mdst_util.Prng.create 5) ~n:14 ~p:0.35 );
       ])
  in
  let seeds_used = if quick then [ 3 ] else [ 3; 23 ] in
  List.iter
    (fun (name, graph, forced_init) ->
      let ds = delta_star graph in
      List.iter
        (fun seed ->
          let init = match forced_init with Some i -> i | None -> `Random in
          let full = run_protocol ~seed ~init graph in
          (* No fixpoint oracle for the ablated run: it cannot reach the FR
             fixpoint in general, so quiescence alone decides. *)
          let ablated = No_deblock.converge ~seed ~init ~quiet_rounds:250 graph in
          Table.add_row t1
            [
              name;
              Table.cell_int seed;
              Table.cell_opt Table.cell_int full.degree;
              Table.cell_opt Table.cell_int ablated.degree;
              delta_star_cell ds;
            ])
        seeds_used)
    graphs;
  Table.add_note t1
    "deblock-gadget: the only improving edge has a blocking endpoint; without Deblock the tree is pinned at degree 4";
  let t2 =
    Table.make ~title:"E11b: Search-pruning ablation — messages to convergence"
      ~columns:[ "graph"; "msgs (pruned)"; "msgs (always-search)"; "degrees"; "ratio" ]
  in
  let graphs2 =
    if quick then [ ("er-12", Workloads.er_with ~n:12 ~avg_deg:4.0 2) ]
    else
      [
        ("er-12", Workloads.er_with ~n:12 ~avg_deg:4.0 2);
        ("er-16", Workloads.er_with ~n:16 ~avg_deg:4.0 2);
        ("grid-4x4", Mdst_graph.Gen.grid ~rows:4 ~cols:4);
      ]
  in
  List.iter
    (fun (name, graph) ->
      let pruned = run_protocol ~seed:9 graph in
      let noisy = No_prune.converge ~seed:9 ~fixpoint graph in
      Table.add_row t2
        [
          name;
          Table.cell_int pruned.total_messages;
          Table.cell_int noisy.total_messages;
          Printf.sprintf "%s / %s"
            (Table.cell_opt Table.cell_int pruned.degree)
            (Table.cell_opt Table.cell_int noisy.degree);
          Table.cell_float (float_of_int noisy.total_messages /. float_of_int (max 1 pruned.total_messages));
        ])
    graphs2;
  [ t1; t2 ]

(* E7 / Figure C — the degree-over-time staircase of the reduction process
   (paper Figure 4's pipeline, observed from outside).  Starting from a
   deliberately bad spanning tree, deg(T) steps down once per phase until
   the Δ*+1 fixpoint; transient dips where the tree is momentarily being
   re-oriented are part of the picture and are shown as "-". *)

open Exp_common
module Engine = Run.Engine
module Gen = Mdst_graph.Gen
module Algo = Mdst_graph.Algo

let trajectory graph ~init ~seed ~max_rounds =
  let engine = Run.make_engine ~seed ~init graph in
  let samples = ref [] in
  let last_deg = ref (-2) in
  let stop_oracle = Run.make_stop ~fixpoint () in
  let stop t =
    let deg =
      match Mdst_core.Checker.tree_degree_now (Engine.graph t) (Engine.states t) with
      | Some k -> k
      | None -> -1
    in
    if deg <> !last_deg then begin
      last_deg := deg;
      samples := (Engine.rounds t, deg) :: !samples
    end;
    stop_oracle t
  in
  ignore (Engine.run engine ~max_rounds ~check_every:2 ~stop ());
  List.rev !samples

let star_tree graph =
  (* Worst legal start on a lollipop: the clique part is a star around one
     clique node, maximising its degree. *)
  Algo.bfs_tree graph ~root:0

let run ?(quick = false) () =
  let mk_table name graph init seed =
    let table =
      Table.make
        ~title:(Printf.sprintf "E7: deg(T) trajectory on %s (\"-\" = tree re-orienting)" name)
        ~columns:[ "round"; "deg(T)" ]
    in
    let samples = trajectory graph ~init ~seed ~max_rounds:30_000 in
    List.iter
      (fun (round, deg) ->
        Table.add_row table
          [ Table.cell_int round; (if deg >= 0 then Table.cell_int deg else "-") ])
      samples;
    table
  in
  let lollipop = Gen.lollipop ~clique:8 ~tail:6 in
  let tables = [ mk_table "lollipop-8+6 (from BFS star tree)" lollipop (`Tree (star_tree lollipop)) 3 ] in
  if quick then tables
  else begin
    let er = Workloads.er_with ~n:24 ~avg_deg:5.0 9 in
    tables @ [ mk_table "er-24 (from corrupted state)" er `Random 4 ]
  end

(* E3 / Figure A — round complexity scaling (Lemma 5: O(m n^2 log n)).

   Two sweeps on connected Erdős–Rényi graphs: network size n at a fixed
   average degree, and density at a fixed n.  We report the median
   rounds-to-legitimacy and the empirical log-log slope; the paper's bound
   is a worst case, so the measured order should be comfortably below
   m n^2 log n ~ n^3 log n at fixed average degree. *)

open Exp_common

let run ?(quick = false) () =
  let sizes = if quick then [ 8; 12; 16 ] else [ 8; 12; 16; 24; 32; 48 ] in
  let seeds_n = if quick then 2 else 3 in
  let t1 =
    Table.make ~title:"E3a: rounds to legitimacy vs n (ER, avg deg 4)"
      ~columns:[ "n"; "m(median)"; "rounds(median)"; "rounds(p90)"; "msgs(median)" ]
  in
  let points = ref [] in
  List.iter
    (fun n ->
      let runs =
        Mdst_util.Parallel.map
          (fun seed ->
            let graph = Workloads.er_with ~n ~avg_deg:4.0 seed in
            let r = run_protocol ~seed ~init:`Random graph in
            (Graph.m graph, r.rounds, r.total_messages, r.converged))
          (seeds seeds_n)
      in
      let ok = List.filter (fun (_, _, _, c) -> c) runs in
      let rounds = List.map (fun (_, r, _, _) -> r) ok in
      let ms = List.map (fun (m, _, _, _) -> m) ok in
      let msgs = List.map (fun (_, _, g, _) -> g) ok in
      if rounds <> [] then begin
        points := (float_of_int n, Stats.median (Stats.of_ints rounds)) :: !points;
        Table.add_row t1
          [
            Table.cell_int n;
            Table.cell_int (median_int ms);
            Table.cell_int (median_int rounds);
            Table.cell_float ~decimals:0 (Stats.percentile 90.0 (Stats.of_ints rounds));
            Table.cell_int (median_int msgs);
          ]
      end)
    sizes;
  (if List.length !points >= 2 then
     let slope = Stats.loglog_slope !points in
     Table.add_note t1
       (Printf.sprintf "empirical order: rounds ~ n^%.2f (paper worst case at fixed avg deg: n^3 log n)"
          slope));
  let t2 =
    Table.make ~title:"E3b: rounds to legitimacy vs density (ER, n=20)"
      ~columns:[ "avg deg"; "m(median)"; "rounds(median)"; "msgs(median)" ]
  in
  let densities = if quick then [ 3.0; 6.0 ] else [ 3.0; 4.5; 6.0; 9.0; 12.0 ] in
  List.iter
    (fun avg_deg ->
      let runs =
        Mdst_util.Parallel.map
          (fun seed ->
            let graph = Workloads.er_with ~n:20 ~avg_deg (seed + 17) in
            let r = run_protocol ~seed ~init:`Random graph in
            (Graph.m graph, r.rounds, r.total_messages, r.converged))
          (seeds seeds_n)
      in
      let ok = List.filter (fun (_, _, _, c) -> c) runs in
      if ok <> [] then
        Table.add_row t2
          [
            Table.cell_float ~decimals:1 avg_deg;
            Table.cell_int (median_int (List.map (fun (m, _, _, _) -> m) ok));
            Table.cell_int (median_int (List.map (fun (_, r, _, _) -> r) ok));
            Table.cell_int (median_int (List.map (fun (_, _, g, _) -> g) ok));
          ])
    densities;
  (* E3c: large n, unlocked by the engine's sparse memory model.  Clean
     start and no FR oracle (FR at these sizes would dominate the run); the
     stop condition is legitimacy + quiescence.  The (n, seed) cross
     product is flattened into one Parallel.map so domains stay busy even
     when the largest size dwarfs the rest. *)
  let t3 =
    Table.make ~title:"E3c: rounds to legitimacy at large n (ER avg deg 4, clean start)"
      ~columns:[ "n"; "m(median)"; "rounds(median)"; "msgs(median)"; "converged" ]
  in
  let large_sizes = if quick then [ 32 ] else [ 64; 128; 256 ] in
  let large_seeds = seeds (if quick then 1 else seeds_n) in
  let cases = List.concat_map (fun n -> List.map (fun s -> (n, s)) large_seeds) large_sizes in
  let runs =
    Mdst_util.Parallel.map
      (fun (n, seed) ->
        let graph = Workloads.er_with ~n ~avg_deg:4.0 (seed + 59) in
        let r = Run.converge ~seed ~init:`Clean graph in
        (n, Graph.m graph, r.rounds, r.total_messages, r.converged))
      cases
  in
  List.iter
    (fun n ->
      let ok = List.filter (fun (n', _, _, _, c) -> n' = n && c) runs in
      let total = List.length (List.filter (fun (n', _, _, _, _) -> n' = n) runs) in
      if ok <> [] then
        Table.add_row t3
          [
            Table.cell_int n;
            Table.cell_int (median_int (List.map (fun (_, m, _, _, _) -> m) ok));
            Table.cell_int (median_int (List.map (fun (_, _, r, _, _) -> r) ok));
            Table.cell_int (median_int (List.map (fun (_, _, _, g, _) -> g) ok));
            Printf.sprintf "%d/%d" (List.length ok) total;
          ])
    large_sizes;
  Table.add_note t3 "no FR fixpoint oracle at these sizes; stop = legitimate + quiescent";
  [ t1; t2; t3 ]

type t = {
  title : string;
  columns : string list;
  mutable rows : string list list;  (* reversed *)
  mutable notes : string list;  (* reversed *)
}

let make ~title ~columns = { title; columns; rows = []; notes = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg
      (Printf.sprintf "Table.add_row (%s): expected %d cells, got %d" t.title
         (List.length t.columns) (List.length row));
  t.rows <- row :: t.rows

let add_note t note = t.notes <- note :: t.notes

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell -> if String.length cell > widths.(i) then widths.(i) <- String.length cell))
    all;
  let buf = Buffer.create 512 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  let render_row row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (if i = 0 then "| " else " | ");
        Buffer.add_string buf cell;
        Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_string buf " |\n"
  in
  let rule () =
    Array.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  rule ();
  render_row t.columns;
  rule ();
  List.iter render_row rows;
  rule ();
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) (List.rev t.notes);
  Buffer.contents buf

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let to_csv t =
  let buf = Buffer.create 256 in
  let row r = Buffer.add_string buf (String.concat "," (List.map csv_escape r) ^ "\n") in
  row t.columns;
  List.iter row (List.rev t.rows);
  Buffer.contents buf

let print t = print_string (render t ^ "\n")

let cell_int = string_of_int

let cell_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let cell_bool b = if b then "yes" else "no"

let cell_opt f = function Some v -> f v | None -> "-"

(* E19 — engine macro-benchmarks.

   Measures the async engine at production scale (n up to 2048): events per
   second of a fault-free clean-start protocol run and the live-heap
   footprint of the engine, on ER (avg deg 4) and grid topologies.  This is
   the persistent perf trajectory: `mdst_sim bench` (and `make bench-json`)
   serialize these points to BENCH_engine.json so regressions in the
   delivery hot path or the memory model are visible across commits.

   Since schema v2 the sweep also measures the sharded parallel engine
   ({!Mdst_sim.Pengine}) at several domain counts: each parallel point
   carries a [speedup] against the sequential engine on the same
   (topology, n), and the header records how many cores the machine
   actually had — a speedup measured on fewer cores than domains is an
   oversubscription datum, not a scaling claim.

   The workload is the real protocol from a clean start — tree
   construction, gossip and search traffic all exercise the send/deliver
   path — stepped for a fixed event budget rather than to convergence, so
   the measure stays O(budget) at every size. *)

module Graph = Mdst_graph.Graph
module Gen = Mdst_graph.Gen
module Prng = Mdst_util.Prng
module Run = Mdst_core.Run

type point = {
  topology : string;
  n : int;
  m : int;
  domains : int;  (** 1 = the sequential engine, >1 = Pengine shards *)
  events : int;  (** engine events processed during the timed window *)
  elapsed_s : float;
  events_per_sec : float;
  speedup : float;  (** vs the domains=1 point of the same (topology, n) *)
  engine_bytes : int;  (** live-heap delta attributable to engine + run *)
}

let sizes ~quick = if quick then [ 64; 256 ] else [ 64; 256; 1024; 2048 ]

(* Parallel sweep: largest sizes only (small instances measure
   synchronisation, not throughput). *)
let par_sizes ~quick = if quick then [ 256 ] else [ 1024; 2048 ]

let par_domains ~quick = if quick then [ 2 ] else [ 2; 4; 8 ]

let event_budget ~quick = if quick then 20_000 else 200_000

let cores () = Domain.recommended_domain_count ()

let graph_for topology n =
  match topology with
  | "er" ->
      let p = 4.0 /. float_of_int (n - 1) in
      Gen.erdos_renyi_connected (Prng.create (0xbe2c lxor n)) ~n ~p
  | "grid" -> Gen.by_name "grid" (Prng.create (0xbe2c lxor n)) ~n
  | other -> invalid_arg (Printf.sprintf "Bench_engine.graph_for: unknown topology %S" other)

let live_bytes () =
  Gc.full_major ();
  (Gc.stat ()).Gc.live_words * (Sys.word_size / 8)

let bench_point ~topology ~events graph =
  let before = live_bytes () in
  let engine = Run.make_engine ~seed:11 ~init:`Clean graph in
  let t0 = Unix.gettimeofday () in
  let stepped = ref 0 in
  while !stepped < events && Run.Engine.step engine do
    incr stepped
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let after = live_bytes () in
  ignore (Sys.opaque_identity engine);
  {
    topology;
    n = Graph.n graph;
    m = Graph.m graph;
    domains = 1;
    events = !stepped;
    elapsed_s = elapsed;
    events_per_sec = (if elapsed > 0.0 then float_of_int !stepped /. elapsed else 0.0);
    speedup = 1.0;
    engine_bytes = max 0 (after - before);
  }

(* The parallel engine advances whole virtual-time windows, so the event
   count overshoots the budget by at most one window's worth; the rate uses
   the count actually executed. *)
let bench_point_par ~topology ~events ~domains graph =
  let before = live_bytes () in
  let engine = Run.make_pengine ~seed:11 ~init:`Clean ~domains graph in
  let t0 = Unix.gettimeofday () in
  while Run.Pengine.events engine < events do
    Run.Pengine.run_window engine ~until:(Run.Pengine.now engine +. 8.0)
  done;
  let elapsed = Unix.gettimeofday () -. t0 in
  let executed = Run.Pengine.events engine in
  let after = live_bytes () in
  ignore (Sys.opaque_identity engine);
  {
    topology;
    n = Graph.n graph;
    m = Graph.m graph;
    domains;
    events = executed;
    elapsed_s = elapsed;
    events_per_sec = (if elapsed > 0.0 then float_of_int executed /. elapsed else 0.0);
    speedup = 0.0 (* filled by [with_speedups] *);
    engine_bytes = max 0 (after - before);
  }

let with_speedups pts =
  List.map
    (fun p ->
      if p.domains = 1 then { p with speedup = 1.0 }
      else
        match
          List.find_opt
            (fun b -> b.domains = 1 && b.topology = p.topology && b.n = p.n)
            pts
        with
        | Some b when b.events_per_sec > 0.0 ->
            { p with speedup = p.events_per_sec /. b.events_per_sec }
        | _ -> { p with speedup = 0.0 })
    pts

(* An untimed warm-up run before the sweep: the first measured point used
   to absorb one-off costs (page faults, branch-predictor and allocator
   warm-up, lazy runtime initialisation), which showed up as a systematic
   dip on whichever (topology, n) happened to run first. *)
let warmup () =
  let g = graph_for "er" 64 in
  ignore (Sys.opaque_identity (bench_point ~topology:"er" ~events:5_000 g))

let points ?(quick = false) () =
  let events = event_budget ~quick in
  warmup ();
  let seq =
    List.concat_map
      (fun topology ->
        List.map
          (fun n -> bench_point ~topology ~events (graph_for topology n))
          (sizes ~quick))
      [ "er"; "grid" ]
  in
  let par =
    List.concat_map
      (fun topology ->
        List.concat_map
          (fun n ->
            let graph = graph_for topology n in
            List.map
              (fun domains -> bench_point_par ~topology ~events ~domains graph)
              (par_domains ~quick))
          (par_sizes ~quick))
      [ "er"; "grid" ]
  in
  with_speedups (seq @ par)

let table pts =
  let t =
    Table.make ~title:"E19: engine macro-benchmarks (fault-free protocol, clean start)"
      ~columns:[ "topology"; "n"; "m"; "domains"; "events"; "events/s"; "speedup"; "engine MB" ]
  in
  List.iter
    (fun p ->
      Table.add_row t
        [
          p.topology;
          Table.cell_int p.n;
          Table.cell_int p.m;
          Table.cell_int p.domains;
          Table.cell_int p.events;
          Table.cell_float ~decimals:0 p.events_per_sec;
          Table.cell_float ~decimals:2 p.speedup;
          Table.cell_float ~decimals:2 (float_of_int p.engine_bytes /. 1e6);
        ])
    pts;
  Table.add_note t
    "engine MB = live-heap delta of engine + run (sparse FIFO floors: O(n + m), no n^2 matrix)";
  Table.add_note t
    (Printf.sprintf "speedup = events/s vs the domains=1 row of the same (topology, n); %d cores available"
       (cores ()));
  t

let run ?(quick = false) () = [ table (points ~quick ()) ]

(* Hand-rolled writer: the schema is flat and the toolchain carries no JSON
   dependency.  [%.17g] round-trips every float exactly. *)
let to_json ?(quick = false) pts =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"schema\": \"mdst-bench-engine/2\",\n  \"quick\": %b,\n  \"cores\": %d,\n  \"points\": [\n"
       quick (cores ()));
  List.iteri
    (fun i p ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"topology\": %S, \"n\": %d, \"m\": %d, \"domains\": %d, \"events\": %d, \
            \"elapsed_s\": %.17g, \"events_per_sec\": %.1f, \"speedup\": %.3f, \
            \"engine_bytes\": %d}%s\n"
           p.topology p.n p.m p.domains p.events p.elapsed_s p.events_per_sec p.speedup
           p.engine_bytes
           (if i = List.length pts - 1 then "" else ",")))
    pts;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let write_json ~path ?(quick = false) pts =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc (to_json ~quick pts))

(* --- Regression guard ----------------------------------------------------- *)

(* Line-oriented reader of the shapes [to_json] emits — one point object
   per line.  Both the v2 schema (with domains/speedup) and the v1 schema
   (sequential-only; implies domains=1) parse, so the guard keeps working
   across the schema bump; other lines (header, closing brackets, future
   fields) are skipped, degrading to "no baseline points" rather than
   crashing on drift. *)
let parse_point_line line =
  match
    Scanf.sscanf line
      " {\"topology\": %S, \"n\": %d, \"m\": %d, \"domains\": %d, \"events\": %d, \
       \"elapsed_s\": %f, \"events_per_sec\": %f, \"speedup\": %f, \"engine_bytes\": %d"
      (fun topology n m domains events elapsed_s events_per_sec speedup engine_bytes ->
        { topology; n; m; domains; events; elapsed_s; events_per_sec; speedup; engine_bytes })
  with
  | p -> Some p
  | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> (
      match
        Scanf.sscanf line
          " {\"topology\": %S, \"n\": %d, \"m\": %d, \"events\": %d, \"elapsed_s\": %f, \
           \"events_per_sec\": %f, \"engine_bytes\": %d"
          (fun topology n m events elapsed_s events_per_sec engine_bytes ->
            {
              topology;
              n;
              m;
              domains = 1;
              events;
              elapsed_s;
              events_per_sec;
              speedup = 1.0;
              engine_bytes;
            })
      with
      | p -> Some p
      | exception (Scanf.Scan_failure _ | End_of_file | Failure _) -> None)

let load_json path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let rec go acc =
        match input_line ic with
        | line -> go (match parse_point_line line with Some p -> p :: acc | None -> acc)
        | exception End_of_file -> List.rev acc
      in
      go [])

(* Compare fresh points against a committed baseline on the intersection of
   (topology, n, domains) keys: any events/sec drop beyond [tolerance] (a
   fraction, default 30%) is reported.  Machines differ, so the guard is
   deliberately loose — it exists to catch order-of-magnitude hot-path
   regressions, not single-digit noise. *)
let regressions ?(tolerance = 0.3) ~baseline fresh =
  List.filter_map
    (fun b ->
      match
        List.find_opt
          (fun p -> p.topology = b.topology && p.n = b.n && p.domains = b.domains)
          fresh
      with
      | None -> None
      | Some _ when b.events_per_sec <= 0.0 -> None
      | Some p ->
          let floor = (1.0 -. tolerance) *. b.events_per_sec in
          if p.events_per_sec < floor then
            Some
              (Printf.sprintf
                 "%s n=%d domains=%d: %.0f events/s vs baseline %.0f (%.0f%% drop > %.0f%% \
                  tolerance)"
                 p.topology p.n p.domains p.events_per_sec b.events_per_sec
                 (100.0 *. (1.0 -. (p.events_per_sec /. b.events_per_sec)))
                 (100.0 *. tolerance))
          else None)
    baseline

(** Small statistics toolbox for the experiment harness. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val median : float list -> float

val stddev : float list -> float
(** Sample standard deviation (n-1 denominator); 0 for singletons. *)

val minimum : float list -> float

val maximum : float list -> float

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0, 100\]], linear interpolation. *)

val mean_ci95 : float list -> float * float
(** Mean and the half-width of a normal-approximation 95% CI. *)

val linear_fit : (float * float) list -> float * float
(** Least-squares [(slope, intercept)].
    @raise Invalid_argument with fewer than two points. *)

val loglog_slope : (float * float) list -> float
(** Slope of log y against log x: the empirical polynomial order used to
    compare measured round complexity with the paper's O(m n^2 log n).
    Points with non-positive coordinates are dropped. *)

val of_ints : int list -> float list

(** The protocol under the synchronous daemon ({!Mdst_sim.Sync_engine}).

    Same convergence detection as {!Run} (legitimacy + quiescence +
    optional fixpoint oracle), but rounds are lockstep rounds.  Used by
    experiment E12 to show the guarantees are daemon-independent. *)

type result = {
  converged : bool;
  rounds : int;
  tree : Mdst_graph.Tree.t option;
  degree : int option;
  total_messages : int;
}

module Engine : module type of Mdst_sim.Sync_engine.Make (Proto.Default)

val converge :
  ?seed:int ->
  ?init:Run.init ->
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
  Mdst_graph.Graph.t ->
  result

(** Global-state observation: the paper's legitimacy predicate, evaluated by
    the test/experiment harness from outside the system.  No node ever sees
    this information — the protocol's own decisions use only {!State}.

    A configuration is legitimate when (i) the parent pointers form one
    spanning tree of the communication graph rooted at the minimum
    identifier, and (ii) every node's [dmax] equals the actual degree of
    that tree.  {!Run} combines legitimacy with quiescence and an optional
    fixpoint oracle to detect convergence. *)

type verdict = {
  tree : Mdst_graph.Tree.t option;  (** extracted tree, when parents form one *)
  spanning : bool;
  rooted_at_min_id : bool;
  dmax_consistent : bool;
  distances_consistent : bool;  (** every [dist] equals the tree depth *)
}

val tree_of_states : Mdst_graph.Graph.t -> State.t array -> Mdst_graph.Tree.t option
(** Extract the tree described by the parent pointers, if they do describe
    a spanning tree rooted at the minimum-identifier node. *)

val inspect : Mdst_graph.Graph.t -> State.t array -> verdict

val legitimate : Mdst_graph.Graph.t -> State.t array -> bool
(** [spanning && rooted_at_min_id && dmax_consistent]. *)

val fingerprint : State.t array -> int
(** Hash of the variables that matter for the tree and its degree
    bookkeeping.  Search cursors and TTLs are excluded: they keep moving
    forever by design, and must not defeat quiescence detection. *)

val tree_degree_now : Mdst_graph.Graph.t -> State.t array -> int option
(** Degree of the currently-described tree, when one exists. *)

module Tree = Mdst_graph.Tree

type report = {
  samples : int;
  spanning_samples : int;
  availability : float;
  longest_outage : int;
  distinct_trees : int;
  max_degree_seen : int;
  final_spanning : bool;
}

module Watch (A : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t) =
struct
  module Engine = Mdst_sim.Engine.Make (A)

  let watch ?(sample_every = 2) ~engine ~max_rounds ~stop () =
    let graph = Engine.graph engine in
    let samples = ref 0 in
    let spanning = ref 0 in
    let outage = ref 0 in
    let longest_outage = ref 0 in
    let max_degree_seen = ref 0 in
    let module ES = Set.Make (struct
      type t = (int * int) list

      let compare = compare
    end) in
    let trees = ref ES.empty in
    (* A node holding a swap lock means the parent pointers are mid-swap:
       the Remove/Grant/Reverse passes re-parent the segment one hop at a
       time, so the edge sets seen in that window are construction
       intermediates, not trees the protocol chose.  Counting them made
       E16/E17 over-report distinct_trees during search churn; sample tree
       identity only from swap-quiescent configurations, the same basis as
       Checker.fingerprint / Projection. *)
    let mid_swap () =
      Array.exists (fun st -> st.State.pending <> None) (Engine.states engine)
    in
    let sample () =
      incr samples;
      match Checker.tree_of_states graph (Engine.states engine) with
      | Some tree ->
          incr spanning;
          outage := 0;
          if not (mid_swap ()) then trees := ES.add (Tree.edge_list tree) !trees;
          if Tree.max_degree tree > !max_degree_seen then max_degree_seen := Tree.max_degree tree
      | None ->
          incr outage;
          if !outage > !longest_outage then longest_outage := !outage
    in
    let next_sample = ref 0 in
    let combined_stop t =
      if Engine.rounds t >= !next_sample then begin
        next_sample := Engine.rounds t + sample_every;
        sample ()
      end;
      stop t
    in
    ignore (Engine.run engine ~max_rounds ~check_every:1 ~stop:combined_stop ());
    sample ();
    {
      samples = !samples;
      spanning_samples = !spanning;
      availability =
        (if !samples = 0 then 0.0 else float_of_int !spanning /. float_of_int !samples);
      longest_outage = !longest_outage;
      distinct_trees = ES.cardinal !trees;
      max_degree_seen = !max_degree_seen;
      final_spanning = Checker.tree_of_states graph (Engine.states engine) <> None;
    }
end

module Default_watch = Watch (Proto.Default)

let watch = Default_watch.watch

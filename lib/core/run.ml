(* One-call harness: build an engine for the protocol, run it to legitimacy
   plus quiescence, return what the experiments need.

   Convergence is declared when the configuration is legitimate (see
   {!Checker}), the protocol fingerprint has been stable for [quiet_rounds]
   asynchronous rounds, and the caller's [fixpoint] oracle accepts the
   extracted tree.  Searches keep circulating forever — self-stabilizing
   algorithms never halt — but once no improvement applies they no longer
   modify any fingerprinted variable.

   [Runner] is a functor so the ablation variants of {!Proto} (no-deblock,
   no-prune) reuse the same machinery; [Run] itself exposes the default
   protocol instance. *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Latency = Mdst_sim.Latency

type init = [ `Clean | `Random | `Tree of Tree.t ]

type result = {
  converged : bool;
  rounds : int;
  time : float;
  deliveries : int;
  tree : Tree.t option;
  degree : int option;  (** deg(T) of the final tree, when legitimate *)
  messages : (string * int) list;
  total_messages : int;
  total_bits : int;
  max_state_bits : int;
  max_msg_bits : int;
}

type recovery = { first : result; corrupted : int; recovery_rounds : int option }

let default_max_rounds = 60_000

(* Start from a prescribed spanning tree: every node already agrees on the
   tree but dmax bookkeeping boots cold.  This isolates the reduction
   modules from tree construction (used by E6/E7 and many tests). *)
let state_of_tree tree ctx _rng =
  let graph = Tree.graph tree in
  let v = Graph.index_of_id graph ctx.Mdst_sim.Node.id in
  let st = State.clean ctx in
  let root_id = Graph.id graph (Tree.root tree) in
  let parent_id =
    if Tree.parent tree v = v then ctx.Mdst_sim.Node.id else Graph.id graph (Tree.parent tree v)
  in
  { st with State.root = root_id; parent = parent_id; dist = Tree.depth tree v }

module Runner (A : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t) =
struct
  module Engine = Mdst_sim.Engine.Make (A)

  let make_engine ?(latency = Latency.uniform ()) ?(seed = 42) ?(init = `Clean) graph =
    let engine_init =
      match (init : init) with
      | `Clean -> `Clean
      | `Random -> `Random
      | `Tree t -> `Custom (state_of_tree t)
    in
    Engine.create ~latency ~seed ~init:engine_init graph

  (* See the module comment for the role of [fixpoint]. *)
  let make_stop ?(quiet_rounds = 60) ?(fixpoint = fun _ -> true) () =
    let last_fp = ref 0 in
    let stable_since = ref (-1) in
    fun t ->
      let states = Engine.states t in
      let fp = Checker.fingerprint states in
      if fp <> !last_fp then begin
        last_fp := fp;
        stable_since := Engine.rounds t
      end;
      !stable_since >= 0
      && Engine.rounds t - !stable_since >= quiet_rounds
      && Checker.legitimate (Engine.graph t) states
      &&
      match Checker.tree_of_states (Engine.graph t) states with
      | Some tree -> fixpoint tree
      | None -> false

  let snapshot engine ~converged =
    let graph = Engine.graph engine in
    let states = Engine.states engine in
    let tree = Checker.tree_of_states graph states in
    let metrics = Engine.metrics engine in
    {
      converged;
      rounds = Engine.rounds engine;
      time = Engine.now engine;
      deliveries = Mdst_sim.Metrics.deliveries metrics;
      tree;
      degree = Option.map Tree.max_degree tree;
      messages = Mdst_sim.Metrics.messages_by_label metrics;
      total_messages = Mdst_sim.Metrics.total_messages metrics;
      total_bits = Mdst_sim.Metrics.total_bits metrics;
      max_state_bits = Mdst_sim.Metrics.max_state_bits metrics;
      max_msg_bits = Mdst_sim.Metrics.max_msg_bits metrics;
    }

  let converge ?latency ?seed ?init ?(max_rounds = default_max_rounds) ?quiet_rounds ?fixpoint
      graph =
    let engine = make_engine ?latency ?seed ?init graph in
    let stop = make_stop ?quiet_rounds ?fixpoint () in
    let outcome = Engine.run engine ~max_rounds ~check_every:2 ~stop () in
    snapshot engine ~converged:outcome.converged

  (* Convergence-then-corruption: steady state, corrupt a fraction of the
     nodes (and their channels), measure re-convergence (experiment E4). *)
  let converge_corrupt_recover ?latency ?(seed = 42) ?init ?(max_rounds = default_max_rounds)
      ?quiet_rounds ?fixpoint ~fraction graph =
    let engine = make_engine ?latency ~seed ?init graph in
    let stop = make_stop ?quiet_rounds ?fixpoint () in
    let outcome1 = Engine.run engine ~max_rounds ~check_every:2 ~stop () in
    let first = snapshot engine ~converged:outcome1.converged in
    if not outcome1.converged then { first; corrupted = 0; recovery_rounds = None }
    else begin
      let corrupted = Engine.corrupt engine ~fraction ~channels:true () in
      let start = Engine.rounds engine in
      let stop = make_stop ?quiet_rounds ?fixpoint () in
      let outcome2 = Engine.run engine ~max_rounds ~check_every:2 ~stop () in
      {
        first;
        corrupted;
        recovery_rounds = (if outcome2.converged then Some (outcome2.rounds - start) else None);
      }
    end

  (* ---- Sharded parallel engine (Pengine) counterparts. ---- *)

  module Pengine = Mdst_sim.Pengine.Make (A)

  let make_pengine ?(latency = Latency.uniform ()) ?(seed = 42) ?(init = `Clean) ?record
      ?partition ~domains graph =
    let engine_init =
      match (init : init) with
      | `Clean -> `Clean
      | `Random -> `Random
      | `Tree t -> `Custom (state_of_tree t)
    in
    Pengine.create ~latency ~seed ~init:engine_init ?record ?partition ~domains graph

  (* Same detector as [make_stop], over the parallel engine's accessors.
     It only runs between windows, where the engine is single-threaded. *)
  let make_pstop ?(quiet_rounds = 60) ?(fixpoint = fun _ -> true) () =
    let last_fp = ref 0 in
    let stable_since = ref (-1) in
    fun t ->
      let states = Pengine.states t in
      let fp = Checker.fingerprint states in
      if fp <> !last_fp then begin
        last_fp := fp;
        stable_since := Pengine.rounds t
      end;
      !stable_since >= 0
      && Pengine.rounds t - !stable_since >= quiet_rounds
      && Checker.legitimate (Pengine.graph t) states
      &&
      match Checker.tree_of_states (Pengine.graph t) states with
      | Some tree -> fixpoint tree
      | None -> false

  let psnapshot engine ~converged =
    let graph = Pengine.graph engine in
    let states = Pengine.states engine in
    let tree = Checker.tree_of_states graph states in
    let metrics = Pengine.metrics engine in
    {
      converged;
      rounds = Pengine.rounds engine;
      time = Pengine.now engine;
      deliveries = Mdst_sim.Metrics.deliveries metrics;
      tree;
      degree = Option.map Tree.max_degree tree;
      messages = Mdst_sim.Metrics.messages_by_label metrics;
      total_messages = Mdst_sim.Metrics.total_messages metrics;
      total_bits = Mdst_sim.Metrics.total_bits metrics;
      max_state_bits = Mdst_sim.Metrics.max_state_bits metrics;
      max_msg_bits = Mdst_sim.Metrics.max_msg_bits metrics;
    }

  let converge_par ?latency ?seed ?init ?(max_rounds = default_max_rounds) ?quiet_rounds
      ?fixpoint ?window ~domains graph =
    let engine = make_pengine ?latency ?seed ?init ~domains graph in
    let stop = make_pstop ?quiet_rounds ?fixpoint () in
    let outcome = Pengine.run engine ~max_rounds ?window ~stop () in
    psnapshot engine ~converged:outcome.converged
end

module Default_runner = Runner (Proto.Default)
include Default_runner

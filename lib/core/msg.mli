(** Protocol messages (paper §3.1, "Messages").

    All node references inside messages are protocol identifiers, never
    transport indices: the algorithm must work when identifiers are an
    arbitrary permutation.  [bits] reports the idealised encoded size used
    by experiment E5 (an identifier or distance costs ceil(log2 n) bits),
    which is what the paper's O(n log n) message-length bound counts. *)

(** One hop of a Search path: what Action_on_Cycle needs to know about every
    node of the fundamental cycle. *)
type entry = { e_id : int; e_deg : int; e_dist : int }

(** Payload of the periodic gossip that implements send/receive atomicity
    (paper §2): the sender's public variables. *)
type info = {
  i_root : int;
  i_parent : int;
  i_dist : int;
  i_deg : int;  (** tree degree the sender believes it has *)
  i_dmax : int;
  i_color : bool;
  i_subtree_max : int;  (** PIF feedback value *)
}

type t =
  | Info of info
  | Search of {
      s_edge : int * int;  (** (initiator id, responder id): the non-tree edge *)
      s_idblock : int option;  (** set on Deblock-triggered searches *)
      s_stack : entry list;
          (** DFS stack, excluding the receiver, most recent hop first
              (initiator last) — pushing a hop is a cons, backtracking
              pops the head, so forwarding is O(1) per hop *)
      s_visited : Mdst_util.Intset.t;  (** every id the DFS has visited *)
    }  (** Fundamental-cycle detection (paper Figure 3). *)
  | Swap_req of {
      r_edge : int * int;  (** (s, t): [s] must re-root, [t] is the anchor *)
      r_target : int * int;  (** (lower, upper): the tree edge to delete *)
      r_deg_max : int;  (** degree threshold the swap was decided under *)
      r_segment : int list;  (** ids from [s] to [lower], inclusive *)
    }
      (** Crosses the improving edge from the deciding responder to the
          endpoint that must re-root: the first leg of the paper's Remove. *)
  | Remove of {
      m_edge : int * int;
      m_target : int * int;
      m_deg_max : int;
      m_segment : int list;
    }  (** Validation/locking pass up the segment (paper Figure 2). *)
  | Grant of {
      g_edge : int * int;
      g_target : int * int;
      g_deg_max : int;
      g_segment : int list;
    }  (** Acknowledgement from [lower]: the swap may commit. *)
  | Reverse of {
      v_edge : int * int;
      v_dist : int;  (** distance of the sender after its own re-parenting *)
      v_segment : int list;
    }
      (** The paper's Remove/Back orientation correction, folded into one
          inward walk (see DESIGN.md §4). *)
  | Update_dist of { u_dist : int; u_ttl : int }
      (** Distance repair for off-path subtrees (paper's UpdateDist). *)
  | Deblock of { d_idblock : int; d_ttl : int }
      (** Subtree flood asking descendants to search on behalf of the
          blocking node [d_idblock] (paper's Deblock). *)

val label : t -> string
(** Coarse message family ("info", "search", ...) for metering. *)

val bits : n:int -> t -> int
(** Idealised encoded size in a network of [n] nodes. *)

val pp : Format.formatter -> t -> unit

(* Stable observable-state projection shared by the conformance driver,
   the schedule explorer and the golden traces.  See projection.mli for
   what is (and is deliberately not) observable. *)

type node = {
  p_root : int;
  p_parent : int;
  p_dist : int;
  p_dmax : int;
  p_color : bool;
  p_subtree_max : int;
  p_busy : bool;
  p_deblock : bool;
}

type t = node array

let of_state (st : State.t) =
  {
    p_root = st.State.root;
    p_parent = st.State.parent;
    p_dist = st.State.dist;
    p_dmax = st.State.dmax;
    p_color = st.State.color;
    p_subtree_max = st.State.subtree_max;
    p_busy = st.State.pending <> None;
    p_deblock = st.State.deblock <> None;
  }

let of_states states = Array.map of_state states

let equal (a : t) b = a = b

let diff (a : t) b =
  if Array.length a <> Array.length b then
    [ (-1, Printf.sprintf "length: %d <> %d" (Array.length a) (Array.length b)) ]
  else begin
    let out = ref [] in
    let add i field l r = out := (i, Printf.sprintf "%s: %s <> %s" field l r) :: !out in
    let int i field l r = if l <> r then add i field (string_of_int l) (string_of_int r) in
    let bool i field l r =
      if l <> r then add i field (string_of_bool l) (string_of_bool r)
    in
    for i = 0 to Array.length a - 1 do
      let x = a.(i) and y = b.(i) in
      int i "root" x.p_root y.p_root;
      int i "parent" x.p_parent y.p_parent;
      int i "dist" x.p_dist y.p_dist;
      int i "dmax" x.p_dmax y.p_dmax;
      bool i "color" x.p_color y.p_color;
      int i "subtree_max" x.p_subtree_max y.p_subtree_max;
      bool i "busy" x.p_busy y.p_busy;
      bool i "deblock" x.p_deblock y.p_deblock
    done;
    List.rev !out
  end

(* The historical Checker.fingerprint mixing: replay goldens and the
   quiet-rounds quiescence detector depend on these exact constants and
   this exact field order. *)
let fingerprint (p : t) =
  let h = ref 0x12345 in
  let mix v = h := (!h * 1_000_003) lxor v land max_int in
  Array.iter
    (fun nd ->
      mix nd.p_root;
      mix nd.p_parent;
      mix nd.p_dist;
      mix nd.p_dmax;
      mix (Bool.to_int nd.p_color);
      mix nd.p_subtree_max)
    p;
  !h

let fingerprint_states (states : State.t array) =
  let h = ref 0x12345 in
  let mix v = h := (!h * 1_000_003) lxor v land max_int in
  Array.iter
    (fun (st : State.t) ->
      mix st.State.root;
      mix st.State.parent;
      mix st.State.dist;
      mix st.State.dmax;
      mix (Bool.to_int st.State.color);
      mix st.State.subtree_max)
    states;
  !h

(* Labeling-insensitive companion to [fingerprint_states]: per-node mixes
   over the id-free fields only (depth, believed max degree, colour,
   subtree aggregate, phase bits), folded as a sorted multiset so the hash
   ignores both the identifier assignment and the node order.  Two
   configurations that differ only by a relabeling collide here on
   purpose — the fuzzer uses this as a second, coarser novelty dimension
   so corpus slots are not wasted on id-permuted replays of known shapes. *)
let fingerprint_coarse (states : State.t array) =
  let per =
    Array.map
      (fun (st : State.t) ->
        let h = ref 0x9e377 in
        let mix v = h := (!h * 1_000_003) lxor v land max_int in
        mix st.State.dist;
        mix st.State.dmax;
        mix (Bool.to_int st.State.color);
        mix st.State.subtree_max;
        mix (if st.State.pending <> None then 1 else 0);
        mix (if st.State.deblock <> None then 1 else 0);
        mix (if st.State.parent = st.State.root then 1 else 0);
        !h)
      states
  in
  Array.sort compare per;
  let h = ref 0x12345 in
  Array.iter (fun v -> h := (!h * 1_000_003) lxor v land max_int) per;
  !h

let node_to_string nd =
  Printf.sprintf "%d/%d/%d/%d/%c/%d/%c/%c" nd.p_root nd.p_parent nd.p_dist nd.p_dmax
    (if nd.p_color then 't' else 'f')
    nd.p_subtree_max
    (if nd.p_busy then 'b' else '-')
    (if nd.p_deblock then 'd' else '-')

let to_string p = String.concat " " (Array.to_list (Array.map node_to_string p))

let node_of_string s =
  match String.split_on_char '/' s with
  | [ root; parent; dist; dmax; color; stm; busy; deblock ] ->
      let int what x =
        match int_of_string_opt x with
        | Some v -> v
        | None -> failwith (Printf.sprintf "Projection.of_string: bad %s %S" what x)
      in
      let flag what t x =
        if x = t then true
        else if x = "-" || x = "f" then false
        else failwith (Printf.sprintf "Projection.of_string: bad %s %S" what x)
      in
      {
        p_root = int "root" root;
        p_parent = int "parent" parent;
        p_dist = int "dist" dist;
        p_dmax = int "dmax" dmax;
        p_color = flag "color" "t" color;
        p_subtree_max = int "subtree_max" stm;
        p_busy = flag "busy" "b" busy;
        p_deblock = flag "deblock" "d" deblock;
      }
  | _ -> failwith (Printf.sprintf "Projection.of_string: bad node %S" s)

let of_string s =
  String.split_on_char ' ' s
  |> List.filter (fun x -> x <> "")
  |> List.map node_of_string
  |> Array.of_list

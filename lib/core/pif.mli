(** Propagation of Information with Feedback over a fixed rooted tree — the
    substrate the paper cites ([16, 17]) for computing and disseminating the
    maximum node degree (§3.2.3).

    The main protocol ({!Proto}) folds this aggregation into its gossip
    because its tree keeps changing; this module is the wave-based original
    over a {e fixed} tree, kept as an independently tested substrate: the
    root repeatedly launches numbered waves ([Go] down, [Back] up), each
    wave aggregates every node's local value with an associative operator,
    and the result of the previous wave is disseminated by the next one.
    Sequence numbers plus a root-side timeout make it self-stabilizing:
    corrupted phases, stale acknowledgements and lost sub-waves are flushed
    by the following wave.

    Instantiate with the rooted tree (by protocol identifier) and the local
    input of each node. *)

module type INPUT = sig
  val parent_of : int -> int
  (** [parent_of id] — parent identifier in the fixed tree; the root maps
      to itself.  Must be stable for the lifetime of the automaton
      instance: per-node child lists are derived from it once and
      cached. *)

  val value_of : int -> int
  (** The local value this node contributes to the aggregate. *)

  val combine : int -> int -> int
  (** Associative, commutative (e.g. [max]). *)

  val neutral : int
end

type state = {
  seq : int;  (** wave number this node last joined *)
  waiting : int list;  (** children ids whose Back is still missing *)
  acc : int;  (** running aggregate of the current wave *)
  result : int option;  (** aggregate of the last completed wave *)
  ticks_stalled : int;  (** root only: ticks since the wave made progress *)
}

type msg = Go of { g_seq : int; g_result : int option } | Back of { b_seq : int; b_acc : int }

module Make (_ : INPUT) : sig
  include Mdst_sim.Node.AUTOMATON with type state = state and type msg = msg
end

val completed_waves : state -> bool
(** Has this node a result from some completed wave? *)

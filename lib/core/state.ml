(* Per-node protocol state and the predicates of paper §3.1.

   The send/receive atomicity model gives every node a mirror of its
   neighbours' public variables, refreshed by Info messages; [view] is that
   mirror.  Everything a predicate reads comes either from the node's own
   variables or from this mirror — never from global knowledge. *)

module Sizing = Mdst_util.Sizing

type view = {
  w_root : int;
  w_parent : int;
  w_dist : int;
  w_deg : int;
  w_dmax : int;
  w_color : bool;
  w_subtree_max : int;
  w_fresh : bool;  (* has an Info arrived from this neighbour yet *)
}

(* A pending swap this node is a segment participant of.  [busy_ttl] decays
   every tick so a corrupted or abandoned lock always clears. *)
type pending = { p_edge : int * int; p_target : int * int; p_ttl : int }

type t = {
  root : int;  (* believed tree-root identifier *)
  parent : int;  (* parent id; own id when (believed) root *)
  dist : int;
  dmax : int;  (* believed degree of the tree, deg(T) *)
  color : bool;  (* flips at the root whenever dmax changes *)
  subtree_max : int;  (* PIF feedback: max tree-degree in my subtree *)
  views : view array;  (* one slot per neighbour, same order as ctx.neighbors *)
  pending : pending option;
  deblock : (int * int) option;  (* (idblock, remaining ticks) *)
  search_cursor : int;  (* rotates over neighbour slots for Search starts *)
  (* Info dirty-bit suppression bookkeeping (inert — None/0 — unless the
     config enables suppression): the public-variable snapshot last
     gossiped and the ticks elapsed since, driving the periodic refresh
     that keeps stabilization under a corrupted cache. *)
  last_info : Msg.info option;
  info_age : int;
}

let unknown_view = {
  w_root = max_int;
  w_parent = max_int;
  w_dist = 0;
  w_deg = 0;
  w_dmax = 0;
  w_color = false;
  w_subtree_max = 0;
  w_fresh = false;
}

(* --- Local tree structure, derived from own vars + mirror ---------------- *)

let slot_of ctx nid =
  let rec find k =
    if k >= Array.length ctx.Mdst_sim.Node.neighbor_ids then None
    else if ctx.neighbor_ids.(k) = nid then Some k
    else find (k + 1)
  in
  find 0

(* is_tree_edge(v, u) = parent_v = ID_u or parent_u = ID_v (paper §3.1). *)
let is_tree_edge ctx st slot =
  let uid = ctx.Mdst_sim.Node.neighbor_ids.(slot) in
  st.parent = uid || (st.views.(slot).w_fresh && st.views.(slot).w_parent = ctx.id)

let tree_degree ctx st =
  let d = ref 0 in
  for slot = 0 to Array.length ctx.Mdst_sim.Node.neighbors - 1 do
    if is_tree_edge ctx st slot then incr d
  done;
  !d

let tree_children_slots ctx st =
  let acc = ref [] in
  for slot = Array.length ctx.Mdst_sim.Node.neighbors - 1 downto 0 do
    let v = st.views.(slot) in
    if v.w_fresh && v.w_parent = ctx.Mdst_sim.Node.id then acc := slot :: !acc
  done;
  !acc

(* --- Paper predicates ----------------------------------------------------- *)

(* paper-gap: the paper's simplified BFS module is vulnerable to
   count-to-infinity — a cluster of nodes can sustain a phantom root claim
   while their distances grow without bound (we reproduced this livelock
   before adding the guard).  The standard repair, consistent with the
   paper's O(log n)-bit distance fields, is to bound distances by the known
   upper bound on the network size: claims with dist >= n are ignored and
   holding one makes the node a new-root candidate. *)

(* The stabilization predicates run on every tick and every Search hop;
   the scans are top-level tail-recursive functions (not closures passed
   to Array.exists/for_all, nor local recursion capturing the state) so
   the hot path allocates nothing. *)
let rec better_parent_from views root n i =
  i < Array.length views
  &&
  let v = views.(i) in
  (v.w_fresh && v.w_root < root && v.w_dist < n) || better_parent_from views root n (i + 1)

let better_parent ctx st = better_parent_from st.views st.root ctx.Mdst_sim.Node.n 0

let coherent_parent ctx st =
  if st.parent = ctx.Mdst_sim.Node.id then st.root = ctx.id
  else
    match slot_of ctx st.parent with
    | None -> false
    | Some slot ->
        let v = st.views.(slot) in
        (not v.w_fresh) || v.w_root = st.root

let coherent_distance ctx st =
  if st.parent = ctx.Mdst_sim.Node.id then st.dist = 0
  else
    st.dist >= 0
    && st.dist <= ctx.Mdst_sim.Node.n
    &&
    match slot_of ctx st.parent with
    | None -> false
    | Some slot ->
        let v = st.views.(slot) in
        (not v.w_fresh) || st.dist = v.w_dist + 1

let new_root_candidate ctx st =
  (not (coherent_parent ctx st))
  || (not (coherent_distance ctx st))
  || st.root > ctx.Mdst_sim.Node.id (* own id would already be a better root *)

let tree_stabilized ctx st = (not (better_parent ctx st)) && not (new_root_candidate ctx st)

let rec degree_stabilized_from views dmax i =
  i >= Array.length views
  ||
  let v = views.(i) in
  v.w_fresh && v.w_dmax = dmax && degree_stabilized_from views dmax (i + 1)

let degree_stabilized st = degree_stabilized_from st.views st.dmax 0

let rec color_stabilized_from views color i =
  i >= Array.length views
  ||
  let v = views.(i) in
  v.w_fresh && v.w_color = color && color_stabilized_from views color (i + 1)

let color_stabilized st = color_stabilized_from st.views st.color 0

let locally_stabilized ctx st =
  tree_stabilized ctx st && degree_stabilized st && color_stabilized st

(* --- Construction --------------------------------------------------------- *)

let clean ctx =
  let deg = Array.length ctx.Mdst_sim.Node.neighbors in
  {
    root = ctx.Mdst_sim.Node.id;
    parent = ctx.id;
    dist = 0;
    dmax = 0;
    color = false;
    subtree_max = 0;
    views = Array.make deg unknown_view;
    pending = None;
    deblock = None;
    search_cursor = 0;
    last_info = None;
    info_age = 0;
  }

(* The self-stabilization adversary: any variable can hold any (type-correct)
   value, mirrors included. *)
let random ?(suppression = false) ctx rng =
  let module P = Mdst_util.Prng in
  let deg = Array.length ctx.Mdst_sim.Node.neighbors in
  let rand_id () = P.int rng (max 1 (2 * ctx.Mdst_sim.Node.n)) in
  let rand_view () =
    {
      w_root = rand_id ();
      w_parent = rand_id ();
      w_dist = P.int rng (2 * ctx.n);
      w_deg = P.int rng (deg + 2);
      w_dmax = P.int rng (ctx.n + 1);
      w_color = P.bool rng;
      w_subtree_max = P.int rng (ctx.n + 1);
      w_fresh = P.bool rng;
    }
  in
  {
    root = rand_id ();
    parent =
      (if deg > 0 && P.bool rng then ctx.neighbor_ids.(P.int rng deg)
       else if P.bool rng then ctx.id
       else rand_id ());
    dist = P.int rng (2 * ctx.n);
    dmax = P.int rng (ctx.n + 1);
    color = P.bool rng;
    subtree_max = P.int rng (ctx.n + 1);
    views = Array.init deg (fun _ -> rand_view ());
    pending =
      (if P.bool rng then None
       else
         Some
           {
             p_edge = (rand_id (), rand_id ());
             p_target = (rand_id (), rand_id ());
             p_ttl = P.int rng 8;
           });
    deblock = (if P.bool rng then None else Some (rand_id (), P.int rng 8));
    search_cursor = (if deg = 0 then 0 else P.int rng deg);
    (* Extra draws ONLY in suppression mode, and placed after every other
       field: configurations without suppression keep a bit-identical
       draw sequence, which the exact-replay fault goldens depend on. *)
    last_info =
      (if suppression && P.bool rng then
         Some
           {
             Msg.i_root = rand_id ();
             i_parent = rand_id ();
             i_dist = P.int rng (2 * ctx.n);
             i_deg = P.int rng (deg + 2);
             i_dmax = P.int rng (ctx.n + 1);
             i_color = P.bool rng;
             i_subtree_max = P.int rng (ctx.n + 1);
           }
       else None);
    info_age = (if suppression then P.int rng 16 else 0);
  }

(* --- Metering (experiment E5) --------------------------------------------- *)

let bits ~n st =
  let id = Sizing.id_bits ~n in
  let own = (5 * id) + Sizing.bool_bits + (3 * id) (* pending + deblock + cursor *) in
  let per_view = (6 * id) + (2 * Sizing.bool_bits) in
  (* Suppression cache: the snapshot (6 ids + colour) plus the age
     counter, only when the mode is on and a snapshot is held. *)
  let suppression =
    match st.last_info with None -> 0 | Some _ -> (7 * id) + Sizing.bool_bits
  in
  own + (Array.length st.views * per_view) + suppression

let pp ctx ppf st =
  Format.fprintf ppf "{id=%d root=%d parent=%d dist=%d deg=%d dmax=%d stm=%d%s%s}"
    ctx.Mdst_sim.Node.id st.root st.parent st.dist (tree_degree ctx st) st.dmax st.subtree_max
    (match st.pending with Some _ -> " busy" | None -> "")
    (match st.deblock with Some (w, _) -> Printf.sprintf " deblock=%d" w | None -> "")

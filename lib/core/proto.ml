(* The self-stabilizing MDST protocol (paper §3), as a {!Mdst_sim.Node}
   automaton.

   Module structure follows the paper:
   - spanning-tree module: rules R1 ("correction parent") and R2
     ("correction root") — [apply_tree_rules];
   - maximum-degree module: a continuous PIF over the believed tree —
     [apply_degree_rules];
   - fundamental-cycle detection: a DFS walk carried inside Search
     messages — [start_search] / [handle_search];
   - degree reduction: Action_on_Cycle, Improve and Deblock.

   paper-gap: the paper's Figures 1–2 correct cycle orientation with a pair
   of Remove/Back messages chosen by comparing endpoint identifiers, and
   repair distances afterwards with UpdateDist.  We implement the same
   exchange as an explicit three-pass commit over the ascending tree
   segment between the re-rooting endpoint [s] of the improving edge and
   the deeper endpoint [lower] of the removed edge:

     Remove  (s -> lower)  validate and lock every segment node;
     Grant   (lower -> s)  acknowledge that the removal may commit;
     Reverse (s -> lower)  flip parent pointers one hop at a time,
                           each hop carrying the already-correct distance.

   Every intermediate configuration of the Reverse pass is a spanning tree
   (each hop exchanges exactly one edge for another), which is the
   invariant the paper's prose relies on; off-path subtrees learn their new
   distances through UpdateDist exactly as in the paper.  Aborted attempts
   leave only TTL'd locks behind, mirroring the paper's "the Remove message
   is discarded". *)

module Node = Mdst_sim.Node
module P = Mdst_util.Prng
module Intset = Mdst_util.Intset

module type CONFIG = sig
  val busy_ttl : int
  (** Base number of ticks a swap lock survives without progress; the
      protocol adds a term linear in the network size so long segments can
      complete (nodes are assumed to know an upper bound on n, a standard
      assumption also implicit in the paper's O(log n)-bits counters). *)

  val deblock_ttl : int
  (** Ticks a node keeps answering searches on behalf of a blocking node. *)

  val eager_prune : bool
  (** Skip Search starts that cannot possibly satisfy the improvement
      precondition given the local dmax estimate.  [false] reproduces the
      paper's behaviour (every non-tree edge searches repeatedly); [true]
      converges to the same trees with far fewer messages. *)

  val enable_deblock : bool
  (** The paper's Deblock machinery.  Disabling it is the ablation of
      benchmark E11: the algorithm then stops at local optima where every
      improving candidate has a blocking endpoint. *)

  val enable_reduction : bool
  (** The whole degree-reduction stack (modules 3 and 4).  Disabling it
      leaves the self-stabilizing spanning-tree + max-degree layers alone
      (paper §3.2.1 and §3.2.3) — the layer-isolation ablation E15. *)

  val graceful_reattach : bool
  (** Prototype of the paper's open problem (super-stabilization): a node
      whose parent edge vanished re-attaches directly to a fresh neighbour
      with the same root and a strictly smaller distance — such a
      neighbour cannot be its own descendant while the pre-fault distances
      are still legitimate — instead of resetting to its own root and
      cascading R2 through its subtree.  [false] is the paper's behaviour;
      [true] is the E17 variant. *)

  val search_on_info : bool
  (** Paper Figure 2 line 2 starts Cycle_Search upon {e every} Info
      receipt; our default rate-limits starts to one rotating candidate
      per tick (same convergence, δ× less Search traffic).  [true] restores
      the paper's literal cadence. *)

  val info_suppression : bool
  (** Dirty-bit suppression of the periodic gossip: skip the tick's Info
      broadcast when the public variables are unchanged since the last
      one actually sent.  [false] is the paper's literal "send every
      tick"; [true] trades gossip volume for a bounded staleness window
      (see [info_refresh_every]). *)

  val info_refresh_every : int
  (** With suppression on, force a broadcast every this many ticks even
      without change.  The refresh is what preserves self-stabilization:
      a corrupted [last_info] cache can suppress at most this many ticks
      of gossip before the real variables are re-advertised. *)
end

module Default_config : CONFIG = struct
  let busy_ttl = 16
  let deblock_ttl = 24
  let eager_prune = true
  let enable_deblock = true
  let enable_reduction = true
  let graceful_reattach = false
  let search_on_info = false
  let info_suppression = false
  let info_refresh_every = 8
end

module No_deblock_config : CONFIG = struct
  include Default_config

  let enable_deblock = false
end

module No_prune_config : CONFIG = struct
  include Default_config

  let eager_prune = false
end

module Tree_only_config : CONFIG = struct
  include Default_config

  let enable_reduction = false
end

module Graceful_config : CONFIG = struct
  include Default_config

  let graceful_reattach = true
end

(* The paper's literal behaviour: no pruning, searches on every gossip. *)
module Paper_faithful_config : CONFIG = struct
  include Default_config

  let eager_prune = false
  let search_on_info = true
end

module Suppressed_config : CONFIG = struct
  include Default_config

  let info_suppression = true
end

module Make (C : CONFIG) : sig
  include Node.AUTOMATON with type state = State.t and type msg = Msg.t
end = struct
  type state = State.t

  type msg = Msg.t

  let name = "ss-mdst"

  let init = State.clean

  let random_state ctx rng = State.random ~suppression:C.info_suppression ctx rng

  let random_msg ctx rng =
    let rand_id () = P.int rng (max 1 (2 * ctx.Node.n)) in
    match P.int rng 5 with
    | 0 ->
        Some
          (Msg.Info
             {
               i_root = rand_id ();
               i_parent = rand_id ();
               i_dist = P.int rng ctx.n;
               i_deg = P.int rng 6;
               i_dmax = P.int rng ctx.n;
               i_color = P.bool rng;
               i_subtree_max = P.int rng ctx.n;
             })
    | 1 ->
        Some
          (Msg.Search
             {
               s_edge = (rand_id (), rand_id ());
               s_idblock = (if P.bool rng then None else Some (rand_id ()));
               s_stack =
                 [ { Msg.e_id = rand_id (); e_deg = P.int rng 6; e_dist = P.int rng ctx.n } ];
               s_visited = Intset.singleton (rand_id ());
             })
    | 2 ->
        Some
          (Msg.Remove
             {
               m_edge = (rand_id (), rand_id ());
               m_target = (rand_id (), rand_id ());
               m_deg_max = P.int rng ctx.n;
               m_segment = [ rand_id (); rand_id () ];
             })
    | 3 -> Some (Msg.Update_dist { u_dist = P.int rng ctx.n; u_ttl = P.int rng ctx.n })
    | _ -> Some (Msg.Deblock { d_idblock = rand_id (); d_ttl = P.int rng 4 })

  let msg_label = Msg.label

  let msg_bits = Msg.bits

  let lock_ttl ctx = C.busy_ttl + (8 * ctx.Node.n)

  let state_bits = State.bits

  (* ---------------------------------------------------------------- *)
  (* Gossip                                                            *)
  (* ---------------------------------------------------------------- *)

  let info_of ctx (st : State.t) =
    {
      Msg.i_root = st.root;
      i_parent = st.parent;
      i_dist = st.dist;
      i_deg = State.tree_degree ctx st;
      i_dmax = st.dmax;
      i_color = st.color;
      i_subtree_max = st.subtree_max;
    }

  (* Would this tick's gossip repeat [last] exactly?  Field-by-field so
     the suppressed path allocates nothing. *)
  let info_unchanged ctx (st : State.t) (last : Msg.info) =
    last.Msg.i_root = st.root
    && last.i_parent = st.parent
    && last.i_dist = st.dist
    && last.i_dmax = st.dmax
    && last.i_color = st.color
    && last.i_subtree_max = st.subtree_max
    && last.i_deg = State.tree_degree ctx st

  (* One payload per tick, shared across all neighbour sends.  Under
     suppression the broadcast is elided while nothing changed, with a
     forced refresh every [info_refresh_every] ticks: a corrupted cache
     can therefore silence a node only for a bounded window, after which
     the true variables are re-advertised — the stabilization argument is
     otherwise untouched.  Returns the state because the suppression
     bookkeeping lives in it (identity when the mode is off). *)
  let broadcast_info ctx (st : State.t) =
    if not C.info_suppression then begin
      let payload = Msg.Info (info_of ctx st) in
      Array.iter (fun nb -> ctx.Node.send nb payload) ctx.Node.neighbors;
      st
    end
    else
      let unchanged =
        match st.last_info with Some last -> info_unchanged ctx st last | None -> false
      in
      (* Mutant "suppression-no-refresh" reintroduces the staleness bug the
         periodic refresh exists to prevent: an unchanged (possibly
         corrupted) cache suppresses forever, never re-advertising the real
         variables. *)
      if
        unchanged
        && (st.info_age + 1 < C.info_refresh_every
           || Mdst_util.Mutation.enabled "suppression-no-refresh")
      then begin
        Mdst_util.Mutation.probe "proto:info-suppress";
        ctx.Node.note_suppressed (Array.length ctx.Node.neighbors);
        { st with State.info_age = st.info_age + 1 }
      end
      else begin
        if unchanged then Mdst_util.Mutation.probe "proto:info-refresh";
        let i = info_of ctx st in
        let payload = Msg.Info i in
        Array.iter (fun nb -> ctx.Node.send nb payload) ctx.Node.neighbors;
        { st with State.last_info = Some i; info_age = 0 }
      end

  (* Steady-state gossip overwhelmingly repeats the mirror it refreshes;
     copying the views array (plus a view and a state record) on every
     receipt made Info delivery the dominant allocation term at n in the
     thousands (Θ(δ) words per receipt — ~n words per receipt on a star
     hub).  When the incoming payload matches the already-fresh mirror the
     result is value-identical to the input, so returning it unchanged is
     observationally equivalent: no draw, send or fingerprint can tell. *)
  let view_matches (v : State.view) (i : Msg.info) =
    v.State.w_fresh
    && v.w_root = i.Msg.i_root
    && v.w_parent = i.i_parent
    && v.w_dist = i.i_dist
    && v.w_deg = i.i_deg
    && v.w_dmax = i.i_dmax
    && v.w_color = i.i_color
    && v.w_subtree_max = i.i_subtree_max

  let update_view (st : State.t) slot (i : Msg.info) =
    if view_matches st.views.(slot) i then st
    else begin
      let views = Array.copy st.views in
      views.(slot) <-
        {
          State.w_root = i.i_root;
          w_parent = i.i_parent;
          w_dist = i.i_dist;
          w_deg = i.i_deg;
          w_dmax = i.i_dmax;
          w_color = i.i_color;
          w_subtree_max = i.i_subtree_max;
          w_fresh = true;
        };
      { st with views }
    end

  let send_to_id ctx id msg =
    match State.slot_of ctx id with
    | Some slot -> ctx.Node.send ctx.Node.neighbors.(slot) msg
    | None -> ()

  (* ---------------------------------------------------------------- *)
  (* Spanning-tree module (rules R1 / R2, paper §3.2.1)                *)
  (* ---------------------------------------------------------------- *)

  (* Coverage probes ([Mdst_util.Mutation.probe]) mark the rare protocol
     phases — rule firings, search progress, the three-pass swap — so the
     schedule fuzzer can tell executions apart by which branches they
     reached, not only by which states they visited.  A probe site is a
     single load-and-branch unless a harness is collecting. *)

  let create_new_root ctx (st : State.t) =
    Mdst_util.Mutation.probe "proto:r1-new-root";
    { st with State.root = ctx.Node.id; parent = ctx.id; dist = 0 }

  (* E17 variant: the node's attachment to the tree broke — either the
     parent edge vanished (topology change) or the parent defected to its
     own root (it is itself recovering) — but the surroundings still carry
     legitimate pre-fault state.  Adopt a fresh same-root neighbour at a
     depth at most ours: under legitimate distances every descendant is
     strictly deeper, so the adoption cannot close a cycle.  When stale
     views make the heuristic misfire, the ordinary rules repair the result
     exactly as they repair any transient fault. *)
  let try_graceful_reattach ctx (st : State.t) =
    if (not C.graceful_reattach) || st.parent = ctx.Node.id || st.root > ctx.Node.id then None
    else begin
      let orphaned =
        match State.slot_of ctx st.parent with
        | None -> true (* parent edge no longer exists *)
        | Some slot ->
            let v = st.views.(slot) in
            v.State.w_fresh && v.w_root <> st.root && v.w_root = st.parent
            (* parent reset itself and now claims its own identifier *)
      in
      if not orphaned then None
      else begin
        let best = ref None in
        Array.iteri
          (fun slot (v : State.view) ->
            if
              v.State.w_fresh
              && ctx.Node.neighbor_ids.(slot) <> st.parent
              && v.w_root = st.root
              && v.w_dist <= st.dist
              && v.w_dist < ctx.Node.n
              &&
              match !best with
              | Some (d, _) -> v.w_dist < d
              | None -> true
            then best := Some (v.State.w_dist, ctx.Node.neighbor_ids.(slot)))
          st.views;
        match !best with
        | Some (dist, parent_id) ->
            Mdst_util.Mutation.probe "proto:reattach";
            Some { st with State.parent = parent_id; dist = dist + 1 }
        | None -> None
      end
    end

  let apply_tree_rules ctx (st : State.t) =
    match try_graceful_reattach ctx st with
    | Some st -> st
    | None ->
    if State.new_root_candidate ctx st then create_new_root ctx st
    else if State.better_parent ctx st then begin
      (* argmin over (root, neighbour id) among fresh mirrors, tracked as a
         slot index so the scan allocates nothing. *)
      let views = st.views in
      let best = ref (-1) in
      for slot = 0 to Array.length views - 1 do
        let v = views.(slot) in
        if v.State.w_fresh && v.w_root < st.root && v.w_dist < ctx.Node.n then
          if
            !best < 0
            ||
            let b = views.(!best) in
            v.w_root < b.State.w_root
            || (v.w_root = b.State.w_root
               && ctx.Node.neighbor_ids.(slot) < ctx.Node.neighbor_ids.(!best))
          then best := slot
      done;
      if !best < 0 then st
      else begin
        Mdst_util.Mutation.probe "proto:r2-adopt";
        let v = views.(!best) in
        {
          st with
          State.root = v.State.w_root;
          parent = ctx.Node.neighbor_ids.(!best);
          dist = v.w_dist + 1;
        }
      end
    end
    else st

  (* ---------------------------------------------------------------- *)
  (* Maximum-degree module (continuous PIF + colour wave, §3.2.3)      *)
  (* ---------------------------------------------------------------- *)

  (* Runs on every tick and every Info receipt, so it allocates only when
     a variable actually moves: the children fold reads the views array
     directly (no slot list), and each record update is skipped when the
     new values equal the old. *)
  let apply_degree_rules ctx (st : State.t) =
    let stm = ref (State.tree_degree ctx st) in
    Array.iter
      (fun (v : State.view) ->
        if v.State.w_fresh && v.w_parent = ctx.Node.id && v.w_subtree_max > !stm then
          stm := v.w_subtree_max)
      st.views;
    let stm = !stm in
    let st = if stm = st.State.subtree_max then st else { st with State.subtree_max = stm } in
    if st.parent = ctx.Node.id then
      if st.dmax <> stm then begin
        Mdst_util.Mutation.probe "proto:pif-flip";
        { st with State.dmax = stm; color = not st.color }
      end
      else st
    else
      match State.slot_of ctx st.parent with
      | Some slot when st.views.(slot).State.w_fresh ->
          let v = st.views.(slot) in
          if st.dmax = v.State.w_dmax && st.color = v.w_color then st
          else { st with State.dmax = v.w_dmax; color = v.w_color }
      | Some _ | None -> st

  let recompute ctx st = apply_degree_rules ctx (apply_tree_rules ctx st)

  (* ---------------------------------------------------------------- *)
  (* Fundamental-cycle detection (Search DFS, §3.2.2)                  *)
  (* ---------------------------------------------------------------- *)

  let self_entry ctx (st : State.t) =
    { Msg.e_id = ctx.Node.id; e_deg = State.tree_degree ctx st; e_dist = st.dist }

  (* Continue a DFS currently standing at this node; [stack] excludes us
     and is carried most-recent-first (see {!Msg}): advancing pushes our
     entry with a cons, dead-ending pops the head to backtrack — each hop
     costs O(1) in list cells where the forward-ordered representation
     re-copied the whole path (O(L) per hop, O(L²) per search). *)
  let continue_search ctx (st : State.t) ~edge ~idblock ~stack ~visited =
    let me = ctx.Node.id in
    let visited = Intset.add me visited in
    (* Smallest-id unvisited tree neighbour, tracked as a slot index so the
       per-hop scan allocates nothing (runs on every Search delivery). *)
    let ids = ctx.Node.neighbor_ids in
    let best = ref (-1) in
    for slot = 0 to Array.length ids - 1 do
      let uid = ids.(slot) in
      if
        State.is_tree_edge ctx st slot
        && (not (Intset.mem uid visited))
        && (!best < 0 || uid < ids.(!best))
      then best := slot
    done;
    match !best with
    | slot when slot >= 0 ->
        Mdst_util.Mutation.probe "proto:search-advance";
        ctx.Node.send ctx.Node.neighbors.(slot)
          (Msg.Search
             {
               s_edge = edge;
               s_idblock = idblock;
               s_stack = self_entry ctx st :: stack;
               s_visited = visited;
             })
    | _ -> (
        (* Dead end: backtrack to the previous stack element, if any. *)
        match stack with
        | [] ->
            Mdst_util.Mutation.probe "proto:search-deadend"
            (* whole tree explored without reaching the responder *)
        | last :: before -> (
            match State.slot_of ctx last.Msg.e_id with
            | Some slot when State.is_tree_edge ctx st slot ->
                Mdst_util.Mutation.probe "proto:search-backtrack";
                ctx.Node.send ctx.Node.neighbors.(slot)
                  (Msg.Search
                     { s_edge = edge; s_idblock = idblock; s_stack = before; s_visited = visited })
            | Some _ | None -> ()))

  let start_search ctx (st : State.t) ~responder_id ~idblock =
    continue_search ctx st
      ~edge:(ctx.Node.id, responder_id)
      ~idblock ~stack:[] ~visited:Intset.empty

  (* ---------------------------------------------------------------- *)
  (* Improve: the three-pass edge swap                                 *)
  (* ---------------------------------------------------------------- *)

  (* Endpoint safety at commit time.  For a swap relieving a node at the
     believed tree degree (deg_max = dmax) the paper's Eq. 1 requires both
     endpoints strictly below dmax - 1; a Deblock-initiated swap
     (deg_max = dmax - 1) only requires them below deg_max. *)
  let endpoints_ok ctx (st : State.t) ~t_slot ~deg_max =
    let v = st.views.(t_slot) in
    v.State.w_fresh
    && (not (State.is_tree_edge ctx st t_slot))
    && deg_max <= st.dmax
    &&
    let bound = if deg_max >= st.dmax then deg_max - 1 else deg_max in
    max (State.tree_degree ctx st) v.State.w_deg < bound

  (* Everything a segment handler needs to know about its own position,
     gathered in ONE traversal (the handlers used to rescan the list once
     per question).  First-occurrence semantics for [pred]/[succ] — under
     corruption a segment may carry duplicate ids, and the behaviour must
     match the original left-to-right scans exactly. *)
  type seg_scan = {
    sc_present : bool;
    sc_pred : int option;  (* element before the first occurrence *)
    sc_succ : int option;  (* element after the first occurrence *)
    sc_is_last : bool;  (* the physically last element equals the probe *)
  }

  let scan_segment me segment =
    let rec go prev pred succ found last = function
      | [] ->
          {
            sc_present = found;
            sc_pred = pred;
            sc_succ = succ;
            sc_is_last = (match last with Some x -> x = me | None -> false);
          }
      | x :: rest ->
          if found then
            (* the first element seen after the first occurrence is succ *)
            let succ = match succ with None -> Some x | s -> s in
            go (Some x) pred succ true (Some x) rest
          else if x = me then go (Some x) prev succ true (Some x) rest
          else go (Some x) pred succ false (Some x) rest
    in
    go None None None false None segment

  let segment_pred me segment = (scan_segment me segment).sc_pred

  (* After any re-parenting, descendants must refresh their distances.
     Returns the state: the closing gossip may update the suppression
     bookkeeping. *)
  let push_update_dist ctx (st : State.t) =
    let payload = Msg.Update_dist { u_dist = st.State.dist; u_ttl = ctx.Node.n } in
    List.iter
      (fun slot -> ctx.Node.send ctx.Node.neighbors.(slot) payload)
      (State.tree_children_slots ctx st);
    broadcast_info ctx st

  (* Commit at [s]: adopt the non-tree edge towards [t], then launch the
     Reverse pass up the segment.  Returns [None] to abort. *)
  let commit_at_s ctx (st : State.t) ~edge ~target ~deg_max ~segment =
    let s_id, t_id = edge in
    if s_id <> ctx.Node.id then None
    else
      match State.slot_of ctx t_id with
      | None -> None
      | Some t_slot ->
          if
            not
              (State.locally_stabilized ctx st
              && st.pending = None
              && endpoints_ok ctx st ~t_slot ~deg_max)
          then None
          else begin
            let v = st.views.(t_slot) in
            match segment with
            | [] -> None
            | [ me ] ->
                (* s = lower: the removed edge is our own parent link and the
                   swap is a single local exchange.  The relieved node is
                   [upper] — check it still carries deg_max. *)
                let upper = if fst target = me then snd target else fst target in
                let upper_deg =
                  match State.slot_of ctx upper with
                  | Some slot when st.views.(slot).State.w_fresh -> st.views.(slot).State.w_deg
                  | Some _ | None -> -1
                in
                if me = fst target && st.parent = upper && upper_deg >= deg_max then begin
                  (* paper Fig. 2 line 5: flip the colour after a swap so the
                     neighbourhood freezes until it re-agrees — this is what
                     keeps concurrent swaps in one clique from weaving a
                     transient parent cycle. *)
                  Mdst_util.Mutation.probe "proto:swap-commit-local";
                  Some
                    {
                      st with
                      State.parent = t_id;
                      dist = v.State.w_dist + 1;
                      color = not st.color;
                    }
                end
                else None
            | me :: next :: _ ->
                if me <> ctx.Node.id || st.parent <> next then None
                else begin
                  Mdst_util.Mutation.probe "proto:swap-commit-chain";
                  let st =
                    {
                      st with
                      State.parent = t_id;
                      dist = v.State.w_dist + 1;
                      color = not st.color;
                    }
                  in
                  send_to_id ctx next
                    (Msg.Reverse { v_edge = edge; v_dist = st.State.dist; v_segment = segment });
                  Some st
                end
          end

  (* Entry point at [s] (either on Swap_req receipt, or locally when the
     responder itself is s). *)
  let handle_swap_req ctx (st : State.t) ~edge ~target ~deg_max ~segment =
    match segment with
    | [ _ ] -> (
        match commit_at_s ctx st ~edge ~target ~deg_max ~segment with
        | Some st -> push_update_dist ctx st
        | None -> st)
    | me :: next :: _ when me = ctx.Node.id -> (
        if
          (not (State.locally_stabilized ctx st))
          || st.pending <> None
          || st.parent <> next
        then st
        else
          let _, t_id = edge in
          match State.slot_of ctx t_id with
          | Some t_slot when endpoints_ok ctx st ~t_slot ~deg_max ->
              Mdst_util.Mutation.probe "proto:swap-lock";
              let st =
                {
                  st with
                  State.pending =
                    Some { p_edge = edge; p_target = target; p_ttl = lock_ttl ctx };
                }
              in
              send_to_id ctx next
                (Msg.Remove
                   { m_edge = edge; m_target = target; m_deg_max = deg_max; m_segment = segment });
              st
          | Some _ | None -> st)
    | _ -> st

  let handle_remove ctx (st : State.t) ~edge ~target ~deg_max ~segment =
    let me = ctx.Node.id in
    let scan = scan_segment me segment in
    if not scan.sc_present then st
    else if st.pending <> None || not (State.locally_stabilized ctx st) then st
    else if scan.sc_is_last then begin
      (* We are [lower]: final validation (paper's target_remove), then
         grant. *)
      let w, z = target in
      let upper = if me = w then z else w in
      let upper_deg =
        match State.slot_of ctx upper with
        | Some slot when st.views.(slot).State.w_fresh -> st.views.(slot).State.w_deg
        | Some _ | None -> -1
      in
      let valid =
        (me = w || me = z)
        && st.parent = upper
        && max (State.tree_degree ctx st) upper_deg >= deg_max
      in
      if not valid then st
      else begin
        Mdst_util.Mutation.probe "proto:remove-grant";
        let st =
          {
            st with
            State.pending = Some { p_edge = edge; p_target = target; p_ttl = lock_ttl ctx };
          }
        in
        (match scan.sc_pred with
        | Some prev ->
            send_to_id ctx prev
              (Msg.Grant
                 { g_edge = edge; g_target = target; g_deg_max = deg_max; g_segment = segment })
        | None -> ());
        st
      end
    end
    else
      (* Interior hop: the chain must still ascend through us. *)
      match scan.sc_succ with
      | Some next when st.parent = next ->
          Mdst_util.Mutation.probe "proto:remove-forward";
          let st =
            {
              st with
              State.pending = Some { p_edge = edge; p_target = target; p_ttl = lock_ttl ctx };
            }
          in
          send_to_id ctx next
            (Msg.Remove
               { m_edge = edge; m_target = target; m_deg_max = deg_max; m_segment = segment });
          st
      | Some _ | None -> st

  let handle_grant ctx (st : State.t) ~edge ~target ~deg_max ~segment =
    let me = ctx.Node.id in
    match st.State.pending with
    | Some p when p.p_edge = edge && p.p_target = target -> (
        match segment with
        | first :: _ when first = me -> (
            (* We are s: commit or abort (the lock clears either way). *)
            Mdst_util.Mutation.probe "proto:grant-commit";
            let st = { st with State.pending = None } in
            match commit_at_s ctx st ~edge ~target ~deg_max ~segment with
            | Some st -> push_update_dist ctx st
            | None -> st)
        | _ -> (
            match segment_pred me segment with
            | Some prev ->
                Mdst_util.Mutation.probe "proto:grant-forward";
                send_to_id ctx prev
                  (Msg.Grant
                     { g_edge = edge; g_target = target; g_deg_max = deg_max; g_segment = segment });
                st
            | None -> st))
    | Some _ | None -> st

  (* Optimistically refresh a neighbour's mirror from facts a protocol
     message proves, so the R2 rule does not fire on staleness the next
     Info would repair anyway. *)
  let patch_view (st : State.t) ctx ~nid ~parent ~dist =
    match State.slot_of ctx nid with
    | None -> st
    | Some slot ->
        let v = st.State.views.(slot) in
        let w_parent = match parent with Some p -> p | None -> v.State.w_parent in
        if v.State.w_fresh && v.w_parent = w_parent && v.w_dist = dist then st
        else begin
          let views = Array.copy st.State.views in
          views.(slot) <- { v with State.w_parent; w_dist = dist; w_fresh = true };
          { st with State.views = views }
        end

  let handle_reverse ctx (st : State.t) ~src ~edge ~dist ~segment =
    let me = ctx.Node.id in
    let sender_id = Graph_id.of_src ctx src in
    (* One scan answers presence, pred and succ for us; the sender's own
       pred needs a second scan — a corrupt segment can repeat ids, so it
       cannot be derived from ours. *)
    let scan = scan_segment me segment in
    match st.State.pending with
    | Some p when p.p_edge = edge && scan.sc_present && scan.sc_pred = Some sender_id ->
        Mdst_util.Mutation.probe "proto:reverse-flip";
        (* Flip: the sender (previous segment node) becomes our parent.  Its
           own parent is the node before it on the segment (or the anchor
           endpoint of the improving edge when it is s). *)
        let sender_parent =
          match segment_pred sender_id segment with
          | Some p -> Some p
          | None -> Some (snd edge)
        in
        let st = patch_view st ctx ~nid:sender_id ~parent:sender_parent ~dist in
        let st =
          {
            st with
            State.parent = sender_id;
            dist = dist + 1;
            pending = None;
            color = not st.color (* paper Fig. 2 line 5 *);
          }
        in
        (match scan.sc_succ with
        | Some next ->
            send_to_id ctx next
              (Msg.Reverse { v_edge = edge; v_dist = st.State.dist; v_segment = segment })
        | None -> () (* we are lower: our old parent edge just left the tree *));
        push_update_dist ctx st
    | Some _ | None -> st

  (* ---------------------------------------------------------------- *)
  (* Action_on_Cycle (paper Figure 1)                                  *)
  (* ---------------------------------------------------------------- *)

  let send_deblock_flood ctx (st : State.t) ~idblock ~ttl =
    (* paper-gap: the paper floods Deblock over the whole tree minus the
       sender; Fürer–Raghavachari show searching the blocking node's
       subtree suffices, so we restrict the flood there. *)
    let payload = Msg.Deblock { d_idblock = idblock; d_ttl = ttl } in
    List.iter
      (fun slot -> ctx.Node.send ctx.Node.neighbors.(slot) payload)
      (State.tree_children_slots ctx st)

  (* Decide and launch an improvement removing the cycle edge (w, z), where
     z is w's successor on the cycle path.  [path] lists the whole cycle,
     initiator first, us (the responder) last. *)
  let run_improve ctx (st : State.t) ~initiator_id ~path ~w_entry ~deg_max =
    let rec succ_of = function
      | a :: b :: _ when a.Msg.e_id = w_entry.Msg.e_id -> Some b
      | _ :: rest -> succ_of rest
      | [] -> None
    in
    match succ_of path with
    | None -> st
    | Some z_entry ->
        let lower =
          if w_entry.Msg.e_dist > z_entry.Msg.e_dist then w_entry else z_entry
        in
        let upper = if lower == w_entry then z_entry else w_entry in
        let target = (lower.Msg.e_id, upper.Msg.e_id) in
        let ids = List.map (fun e -> e.Msg.e_id) path in
        (* Index the path once: position and entry of the FIRST occurrence
           of each id (a corrupt path can repeat ids, and every lookup
           below must behave like the left-to-right scan it replaces). *)
        let index : (int, int * Msg.entry) Hashtbl.t = Hashtbl.create 16 in
        List.iteri
          (fun i e ->
            if not (Hashtbl.mem index e.Msg.e_id) then Hashtbl.add index e.Msg.e_id (i, e))
          path;
        let pos id = match Hashtbl.find_opt index id with Some (i, _) -> i | None -> -1 in
        let entry_of id = Option.map snd (Hashtbl.find_opt index id) in
        let lower_pos = pos lower.Msg.e_id in
        let s_is_initiator = lower_pos <= min (pos w_entry.Msg.e_id) (pos z_entry.Msg.e_id) in
        let rec take_until acc = function
          | [] -> None
          | x :: rest ->
              if x = lower.Msg.e_id then Some (List.rev (x :: acc))
              else take_until (x :: acc) rest
        in
        let segment = if s_is_initiator then take_until [] ids else take_until [] (List.rev ids) in
        (match segment with
        | None | Some [] -> st
        | Some segment ->
            (* Ascending sanity: distances along the segment must decrease by
               exactly one per hop, otherwise our picture is stale. *)
            let dists = List.filter_map entry_of segment |> List.map (fun e -> e.Msg.e_dist) in
            let rec strictly_descending = function
              | a :: (b :: _ as rest) -> a = b + 1 && strictly_descending rest
              | _ -> true
            in
            if List.length dists <> List.length segment || not (strictly_descending dists) then st
            else if s_is_initiator then begin
              Mdst_util.Mutation.probe "proto:improve";
              send_to_id ctx initiator_id
                (Msg.Swap_req
                   {
                     r_edge = (initiator_id, ctx.Node.id);
                     r_target = target;
                     r_deg_max = deg_max;
                     r_segment = segment;
                   });
              st
            end
            else begin
              Mdst_util.Mutation.probe "proto:improve";
              handle_swap_req ctx st
                ~edge:(ctx.Node.id, initiator_id)
                ~target ~deg_max ~segment
            end)

  let action_on_cycle ctx (st : State.t) ~initiator_id ~idblock ~stack =
    (* [stack] arrives most-recent-first; one List.rev here rebuilds the
       forward path (initiator first, us last) so every fold below keeps
       the original left-to-right, first-occurrence semantics. *)
    let fwd = List.rev stack in
    let path = fwd @ [ self_entry ctx st ] in
    let interior = match fwd with [] -> [] | _ :: rest -> rest in
    let deg_i =
      match State.slot_of ctx initiator_id with
      | Some slot when st.State.views.(slot).State.w_fresh -> st.State.views.(slot).State.w_deg
      | Some _ | None -> max_int
    in
    let deg_me = State.tree_degree ctx st in
    let endpoint_max = if deg_i = max_int then max_int else max deg_me deg_i in
    let dmax = st.State.dmax in
    let deblock_endpoint () =
      if not C.enable_deblock then st
      else begin
      (* paper Figure 1, procedure Deblock: the endpoint(s) at dmax - 1 are
         blocking; reduce their degree first. *)
      let st =
        if deg_me = dmax - 1 then begin
          Mdst_util.Mutation.probe "proto:deblock-launch";
          (match st.State.deblock with
          | Some (b, _) when b = ctx.Node.id -> ()
          | Some _ | None -> send_deblock_flood ctx st ~idblock:ctx.Node.id ~ttl:ctx.Node.n);
          { st with State.deblock = Some (ctx.Node.id, C.deblock_ttl) }
        end
        else st
      in
      if deg_i = dmax - 1 then
        send_to_id ctx initiator_id (Msg.Deblock { d_idblock = initiator_id; d_ttl = ctx.Node.n });
      st
      end
    in
    match idblock with
    | None ->
        let d_path = List.fold_left (fun acc e -> max acc e.Msg.e_deg) 0 interior in
        if d_path <> dmax || dmax < 3 then st
        else if endpoint_max = dmax - 1 then deblock_endpoint ()
        else if endpoint_max < dmax - 1 then begin
          (* w = interior max-degree node of minimum id (paper line 13). *)
          let w_entry =
            List.fold_left
              (fun best e ->
                if e.Msg.e_deg <> d_path then best
                else
                  match best with
                  | Some b when b.Msg.e_id <= e.Msg.e_id -> best
                  | _ -> Some e)
              None interior
          in
          match w_entry with None -> st | Some w -> run_improve ctx st ~initiator_id ~path ~w_entry:w ~deg_max:dmax
        end
        else st
    | Some b -> (
        match List.find_opt (fun e -> e.Msg.e_id = b) interior with
        | None -> st
        | Some b_entry ->
            if endpoint_max = dmax - 1 then deblock_endpoint ()
            else if endpoint_max < dmax - 1 then
              run_improve ctx st ~initiator_id ~path ~w_entry:b_entry ~deg_max:b_entry.Msg.e_deg
            else st)

  let handle_search ctx (st : State.t) ~edge ~idblock ~stack ~visited =
    if not (State.locally_stabilized ctx st) then st
    else begin
      let initiator_id, responder_id = edge in
      if ctx.Node.id = responder_id then begin
        match State.slot_of ctx initiator_id with
        | Some slot when not (State.is_tree_edge ctx st slot) ->
            action_on_cycle ctx st ~initiator_id ~idblock ~stack
        | Some _ | None -> st
      end
      else begin
        continue_search ctx st ~edge ~idblock ~stack ~visited;
        st
      end
    end

  (* ---------------------------------------------------------------- *)
  (* Deblock / UpdateDist receipt                                      *)
  (* ---------------------------------------------------------------- *)

  let handle_deblock ctx (st : State.t) ~idblock ~ttl =
    if ttl <= 0 || not C.enable_deblock then st
    else begin
      (* Re-flood only when the request is news to us: repeated Deblocks for
         a blocking node we are already serving would otherwise amplify
         exponentially down the subtree. *)
      (match st.State.deblock with
      | Some (b, _) when b = idblock -> ()
      | Some _ | None ->
          Mdst_util.Mutation.probe "proto:deblock-flood";
          send_deblock_flood ctx st ~idblock ~ttl:(ttl - 1));
      { st with State.deblock = Some (idblock, C.deblock_ttl) }
    end

  let handle_update_dist ctx (st : State.t) ~src ~dist ~ttl =
    let sender_id = Graph_id.of_src ctx src in
    if st.State.parent = sender_id && ttl > 0 && st.State.dist <> dist + 1 then begin
      Mdst_util.Mutation.probe "proto:updatedist-apply";
      let st = patch_view st ctx ~nid:sender_id ~parent:None ~dist in
      let st = { st with State.dist = dist + 1 } in
      let payload = Msg.Update_dist { u_dist = st.State.dist; u_ttl = ttl - 1 } in
      List.iter
        (fun slot -> ctx.Node.send ctx.Node.neighbors.(slot) payload)
        (State.tree_children_slots ctx st);
      st
    end
    else st

  (* ---------------------------------------------------------------- *)
  (* Search initiation policy                                          *)
  (* ---------------------------------------------------------------- *)

  let maybe_start_search ctx (st : State.t) =
    let deg = Array.length ctx.Node.neighbors in
    if
      (not C.enable_reduction)
      || deg = 0
      || st.State.pending <> None
      || not (State.locally_stabilized ctx st)
    then st
    else begin
      let idblock = match st.State.deblock with Some (b, _) -> Some b | None -> None in
      let own_deg = State.tree_degree ctx st in
      let tried = ref 0 in
      let cursor = ref st.State.search_cursor in
      let started = ref false in
      while (not !started) && !tried < deg do
        let slot = !cursor mod deg in
        cursor := (!cursor + 1) mod deg;
        incr tried;
        let uid = ctx.Node.neighbor_ids.(slot) in
        let v = st.State.views.(slot) in
        if (not (State.is_tree_edge ctx st slot)) && ctx.Node.id < uid && v.State.w_fresh
        then begin
          (* Prune only edges that can neither improve (endpoints <= dmax-2,
             paper Eq. 1) nor expose a blocking endpoint (= dmax-1, which
             must be discovered for Deblock to ever fire). *)
          let worth =
            match idblock with
            | Some _ -> true
            | None -> (not C.eager_prune) || st.State.dmax >= max own_deg v.State.w_deg + 1
          in
          if worth then begin
            Mdst_util.Mutation.probe "proto:search-start";
            start_search ctx st ~responder_id:uid ~idblock;
            started := true
          end
        end
      done;
      if !cursor = st.State.search_cursor then st
      else { st with State.search_cursor = !cursor }
    end

  (* ---------------------------------------------------------------- *)
  (* Event handlers                                                    *)
  (* ---------------------------------------------------------------- *)

  let decay (st : State.t) =
    match (st.State.pending, st.State.deblock) with
    | None, None -> st (* nothing ticking down: the common case, no copy *)
    | _ ->
        let pending =
          match st.State.pending with
          | Some p when p.p_ttl > 1 -> Some { p with State.p_ttl = p.p_ttl - 1 }
          | Some _ | None -> None
        in
        let deblock =
          match st.State.deblock with
          | Some (b, ttl) when ttl > 1 -> Some (b, ttl - 1)
          | Some _ | None -> None
        in
        { st with State.pending; deblock }

  let on_tick ctx (st : State.t) =
    let st = decay st in
    let st = recompute ctx st in
    let st = maybe_start_search ctx st in
    broadcast_info ctx st

  let on_message ctx (st : State.t) ~src msg =
    match msg with
    | Msg.Info info -> (
        match State.slot_of ctx (Graph_id.of_src ctx src) with
        | Some slot ->
            let st = recompute ctx (update_view st slot info) in
            (* paper Fig. 2 line 2: Cycle_Search(NIL) on every receipt. *)
            if C.search_on_info then maybe_start_search ctx st else st
        | None -> st)
    | ( Msg.Search _ | Msg.Swap_req _ | Msg.Remove _ | Msg.Grant _ | Msg.Reverse _
      | Msg.Update_dist _ | Msg.Deblock _ )
      when not C.enable_reduction ->
        st
    | Msg.Search { s_edge; s_idblock; s_stack; s_visited } ->
        handle_search ctx st ~edge:s_edge ~idblock:s_idblock ~stack:s_stack ~visited:s_visited
    | Msg.Swap_req { r_edge; r_target; r_deg_max; r_segment } ->
        handle_swap_req ctx st ~edge:r_edge ~target:r_target ~deg_max:r_deg_max
          ~segment:r_segment
    | Msg.Remove { m_edge; m_target; m_deg_max; m_segment } ->
        handle_remove ctx st ~edge:m_edge ~target:m_target ~deg_max:m_deg_max ~segment:m_segment
    | Msg.Grant _ when Mdst_util.Mutation.enabled "grant-drop" ->
        (* Mutant: the PR-1 lossy-variant bug — Grants acknowledging a
           validated swap are discarded, so commits at [s] never happen and
           segment locks only ever clear by TTL. *)
        st
    | Msg.Grant { g_edge; g_target; g_deg_max; g_segment } ->
        handle_grant ctx st ~edge:g_edge ~target:g_target ~deg_max:g_deg_max ~segment:g_segment
    | Msg.Reverse { v_edge; v_dist; v_segment } ->
        handle_reverse ctx st ~src ~edge:v_edge ~dist:v_dist ~segment:v_segment
    | Msg.Update_dist { u_dist; u_ttl } -> handle_update_dist ctx st ~src ~dist:u_dist ~ttl:u_ttl
    | Msg.Deblock { d_idblock; d_ttl } -> handle_deblock ctx st ~idblock:d_idblock ~ttl:d_ttl
end

module Default = Make (Default_config)
module No_deblock = Make (No_deblock_config)
module No_prune = Make (No_prune_config)
module Tree_only = Make (Tree_only_config)
module Graceful = Make (Graceful_config)
module Paper_faithful = Make (Paper_faithful_config)
module Suppressed = Make (Suppressed_config)

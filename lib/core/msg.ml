(* Protocol messages (paper §3.1 "Messages").

   All node references inside messages are protocol identifiers, never
   transport indices: the algorithm must work when IDs are an arbitrary
   permutation.  Sizes reported by [bits] follow the paper's idealised
   accounting (an ID or distance costs ceil(log2 n) bits), which is what
   experiment E5 checks against the O(n log n) message-length bound. *)

module Sizing = Mdst_util.Sizing
module Intset = Mdst_util.Intset

(* One hop of a Search path: the information Action_on_Cycle needs about
   every node of the fundamental cycle. *)
type entry = { e_id : int; e_deg : int; e_dist : int }

type info = {
  i_root : int;
  i_parent : int;
  i_dist : int;
  i_deg : int;  (* tree degree the sender believes it has *)
  i_dmax : int;
  i_color : bool;
  i_subtree_max : int;  (* PIF feedback value *)
}

type t =
  | Info of info
      (** The gossip of §2: refreshes the receiver's mirror of the sender. *)
  | Search of {
      s_edge : int * int;  (* (initiator id, responder id) — the non-tree edge *)
      s_idblock : int option;
      s_stack : entry list;
          (* DFS stack, excluding the receiver, MOST RECENT HOP FIRST (the
             initiator is the last element).  The reverse accumulation is
             what makes each hop O(1): pushing is a cons, backtracking
             pops the head — no per-hop copy of the whole path. *)
      s_visited : Intset.t;  (* every id ever visited by this DFS *)
    }
  | Swap_req of {
      r_edge : int * int;  (* (s, t): s must re-root, t is the anchor *)
      r_target : int * int;  (* (lower, upper) tree edge to delete *)
      r_deg_max : int;  (* degree threshold the swap was decided under *)
      r_segment : int list;  (* ids from s to lower, inclusive *)
    }
      (** Sent across the non-tree edge from the deciding responder to the
          endpoint that must re-root (paper: first leg of [Remove]). *)
  | Remove of {
      m_edge : int * int;
      m_target : int * int;
      m_deg_max : int;
      m_segment : int list;  (* ids still ahead, next hop first *)
    }
  | Grant of {
      g_edge : int * int;
      g_target : int * int;
      g_deg_max : int;
      g_segment : int list;  (* ids back towards s, next hop first *)
    }
      (** Positive acknowledgement from [lower]: the swap may commit. *)
  | Reverse of {
      v_edge : int * int;
      v_dist : int;  (* distance of the sender after its own re-parenting *)
      v_segment : int list;  (* ids still ahead, next hop first *)
    }
      (** The paper's Remove/Back orientation correction, folded into one
          inward walk (see DESIGN.md §4). *)
  | Update_dist of { u_dist : int; u_ttl : int }
  | Deblock of { d_idblock : int; d_ttl : int }

let label = function
  | Info _ -> "info"
  | Search _ -> "search"
  | Swap_req _ -> "swap-req"
  | Remove _ -> "remove"
  | Grant _ -> "grant"
  | Reverse _ -> "reverse"
  | Update_dist _ -> "update-dist"
  | Deblock _ -> "deblock"

let bits ~n msg =
  let id = Sizing.id_bits ~n in
  let entry_bits = 3 * id in
  match msg with
  | Info _ -> (6 * id) + Sizing.bool_bits
  | Search { s_stack; s_visited; _ } ->
      (2 * id) + id (* idblock *)
      + Sizing.list_bits ~n entry_bits (List.length s_stack)
      + Sizing.list_bits ~n id (Intset.cardinal s_visited)
  | Swap_req { r_segment; _ } | Remove { m_segment = r_segment; _ }
  | Grant { g_segment = r_segment; _ } ->
      (5 * id) + Sizing.list_bits ~n id (List.length r_segment)
  | Reverse { v_segment; _ } -> (3 * id) + Sizing.list_bits ~n id (List.length v_segment)
  | Update_dist _ -> 2 * id
  | Deblock _ -> 2 * id

let pp_entry ppf e = Format.fprintf ppf "%d(d%d,h%d)" e.e_id e.e_deg e.e_dist

let pp ppf = function
  | Info i ->
      Format.fprintf ppf "Info{root=%d parent=%d dist=%d deg=%d dmax=%d stm=%d}" i.i_root
        i.i_parent i.i_dist i.i_deg i.i_dmax i.i_subtree_max
  | Search { s_edge = a, b; s_idblock; s_stack; _ } ->
      Format.fprintf ppf "Search{e=(%d,%d) blk=%s stack=[%a]}" a b
        (match s_idblock with None -> "-" | Some w -> string_of_int w)
        (Format.pp_print_list ~pp_sep:(fun f () -> Format.fprintf f ";") pp_entry)
        s_stack
  | Swap_req { r_edge = a, b; r_target = c, d; _ } ->
      Format.fprintf ppf "SwapReq{e=(%d,%d) rm=(%d,%d)}" a b c d
  | Remove { m_edge = a, b; m_target = c, d; _ } ->
      Format.fprintf ppf "Remove{e=(%d,%d) rm=(%d,%d)}" a b c d
  | Grant { g_edge = a, b; _ } -> Format.fprintf ppf "Grant{e=(%d,%d)}" a b
  | Reverse { v_dist; _ } -> Format.fprintf ppf "Reverse{dist=%d}" v_dist
  | Update_dist { u_dist; _ } -> Format.fprintf ppf "UpdateDist{%d}" u_dist
  | Deblock { d_idblock; _ } -> Format.fprintf ppf "Deblock{%d}" d_idblock

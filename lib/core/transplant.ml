module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree
module Algo = Mdst_graph.Algo
module Prng = Mdst_util.Prng

let states ~old_graph ~new_graph old_states =
  let n = Graph.n old_graph in
  if Graph.n new_graph <> n then invalid_arg "Transplant.states: node count differs";
  for v = 0 to n - 1 do
    if Graph.id old_graph v <> Graph.id new_graph v then
      invalid_arg "Transplant.states: identifier assignment differs"
  done;
  Array.init n (fun v ->
      let st = old_states.(v) in
      let old_nbrs = Graph.neighbors old_graph v in
      let new_nbrs = Graph.neighbors new_graph v in
      (* Re-match mirror slots by neighbour identifier. *)
      let view_of_id id =
        let rec find k =
          if k >= Array.length old_nbrs then State.unknown_view
          else if Graph.id old_graph old_nbrs.(k) = id then st.State.views.(k)
          else find (k + 1)
        in
        find 0
      in
      let views = Array.map (fun u -> view_of_id (Graph.id new_graph u)) new_nbrs in
      { st with State.views })

let remove_tree_edge rng graph tree =
  let bridges = Algo.bridges graph in
  let candidates =
    List.filter (fun e -> not (List.mem e bridges)) (Tree.edge_list tree)
  in
  match candidates with
  | [] -> None
  | _ ->
      let u, v = Prng.choose rng (Array.of_list candidates) in
      let kept =
        Graph.fold_edges graph ~init:[] ~f:(fun acc a b ->
            if (a, b) = (u, v) then acc else (a, b) :: acc)
      in
      let ids = Array.init (Graph.n graph) (Graph.id graph) in
      Some (Graph.of_edges ~ids ~n:(Graph.n graph) kept, (u, v))

let remove_heaviest_tree_edge graph tree =
  let bridges = Algo.bridges graph in
  let n = Graph.n graph in
  (* Subtree sizes via accumulation from the deepest nodes upward. *)
  let size = Array.make n 1 in
  let order = List.sort (fun a b -> compare (Tree.depth tree b) (Tree.depth tree a)) (List.init n Fun.id) in
  List.iter
    (fun v -> if v <> Tree.root tree then size.(Tree.parent tree v) <- size.(Tree.parent tree v) + size.(v))
    order;
  let weight (u, v) =
    let lower = if Tree.depth tree u > Tree.depth tree v then u else v in
    size.(lower)
  in
  let candidates = List.filter (fun e -> not (List.mem e bridges)) (Tree.edge_list tree) in
  match candidates with
  | [] -> None
  | first :: rest ->
      let u, v = List.fold_left (fun best e -> if weight e > weight best then e else best) first rest in
      let kept =
        Graph.fold_edges graph ~init:[] ~f:(fun acc a b ->
            if (a, b) = (u, v) then acc else (a, b) :: acc)
      in
      let ids = Array.init n (Graph.id graph) in
      Some (Graph.of_edges ~ids ~n kept, (u, v))

let add_random_edge rng graph =
  match Graph.non_edges graph with
  | [] -> None
  | absent ->
      let u, v = Prng.choose rng (Array.of_list absent) in
      let ids = Array.init (Graph.n graph) (Graph.id graph) in
      let edges = Array.to_list (Graph.edges graph) in
      Some (Graph.of_edges ~ids ~n:(Graph.n graph) ((u, v) :: edges), (u, v))

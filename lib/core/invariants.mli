(** Run-time invariant sampling: what happens {e between} legitimate
    configurations.

    Self-stabilization only constrains the limit; super-stabilization (the
    paper's closing open problem) also constrains the disruption along the
    way.  This module samples the global configuration at a fixed round
    cadence while a run executes and reports availability-style metrics:
    how often the parent pointers formed a spanning tree at all, the
    longest window without one, how many distinct trees were traversed, and
    the worst tree degree seen.  Used by experiments E16/E17 and the
    transient-behaviour tests.

    [Watch] works for any protocol variant (ablations, the graceful
    variant); the top-level [watch] is the default-protocol instance. *)

type report = {
  samples : int;
  spanning_samples : int;  (** samples where a spanning tree existed *)
  availability : float;  (** spanning_samples / samples *)
  longest_outage : int;  (** longest run of consecutive non-spanning samples *)
  distinct_trees : int;
      (** how many different edge sets were traversed, counted only over
          swap-quiescent samples (no node holding a pending swap lock) —
          mid-swap edge sets are Remove/Grant/Reverse construction
          intermediates, not trees the protocol chose *)
  max_degree_seen : int;  (** worst deg(T) over the spanning samples *)
  final_spanning : bool;
}

module Watch (A : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t) : sig
  module Engine : module type of Mdst_sim.Engine.Make (A)

  val watch :
    ?sample_every:int ->
    engine:Engine.t ->
    max_rounds:int ->
    stop:(Engine.t -> bool) ->
    unit ->
    report
end

val watch :
  ?sample_every:int ->
  engine:Run.Engine.t ->
  max_rounds:int ->
  stop:(Run.Engine.t -> bool) ->
  unit ->
  report
(** Drive [engine] until [stop] or [max_rounds], sampling every
    [sample_every] rounds (default 2). *)

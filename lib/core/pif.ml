module Node = Mdst_sim.Node
module P = Mdst_util.Prng
module Sizing = Mdst_util.Sizing

module type INPUT = sig
  val parent_of : int -> int

  val value_of : int -> int

  val combine : int -> int -> int

  val neutral : int
end

type state = {
  seq : int;
  waiting : int list;
  acc : int;
  result : int option;
  ticks_stalled : int;
}

type msg = Go of { g_seq : int; g_result : int option } | Back of { b_seq : int; b_acc : int }

let completed_waves st = st.result <> None

module Make (I : INPUT) = struct
  type nonrec state = state

  type nonrec msg = msg

  let name = "pif"

  (* [I.parent_of] is fixed at functor application (the PIF runs over a
     static tree), so each node's child list is computed once and reused:
     waves restart every few ticks and the per-wave Array.to_list +
     filter was a measurable allocation at scale. *)
  let children_cache : (int, int list) Hashtbl.t = Hashtbl.create 64

  let children_ids ctx =
    match Hashtbl.find_opt children_cache ctx.Node.node with
    | Some children -> children
    | None ->
        let children =
          Array.to_list ctx.Node.neighbor_ids |> List.filter (fun u -> I.parent_of u = ctx.Node.id)
        in
        Hashtbl.add children_cache ctx.Node.node children;
        children

  let is_root ctx = I.parent_of ctx.Node.id = ctx.Node.id

  let send_to_id ctx uid m =
    match State.slot_of ctx uid with
    | Some slot -> ctx.Node.send ctx.Node.neighbors.(slot) m
    | None -> ()

  let init ctx =
    ignore ctx;
    { seq = 0; waiting = []; acc = I.neutral; result = None; ticks_stalled = 0 }

  let random_state ctx rng =
    {
      seq = P.int rng 16;
      waiting =
        List.filter (fun _ -> P.bool rng) (Array.to_list ctx.Node.neighbor_ids)
        @ (if P.bool rng then [ P.int rng (2 * ctx.Node.n) ] else []);
      acc = P.int rng 64;
      result = (if P.bool rng then Some (P.int rng 64) else None);
      ticks_stalled = P.int rng 8;
    }

  let random_msg ctx rng =
    ignore ctx;
    if P.bool rng then Some (Go { g_seq = P.int rng 16; g_result = Some (P.int rng 64) })
    else Some (Back { b_seq = P.int rng 16; b_acc = P.int rng 64 })

  (* The root restarts a wedged wave after this many quiet ticks; any
     corrupted waiting-set or lost sub-wave is flushed by the restart. *)
  let stall_limit ctx = 4 + (6 * ctx.Node.n)

  let begin_wave ctx st ~seq =
    let children = children_ids ctx in
    let acc = I.combine I.neutral (I.value_of ctx.Node.id) in
    List.iter (fun c -> send_to_id ctx c (Go { g_seq = seq; g_result = st.result })) children;
    { st with seq; waiting = children; acc; ticks_stalled = 0 }

  let finish_up ctx st =
    if is_root ctx then { st with result = Some st.acc }
    else begin
      send_to_id ctx (I.parent_of ctx.Node.id) (Back { b_seq = st.seq; b_acc = st.acc });
      st
    end

  let on_tick ctx st =
    if not (is_root ctx) then st
    else if st.waiting = [] then
      (* Previous wave complete (or cold start): publish and relaunch. *)
      let st = if st.seq > 0 then { st with result = Some st.acc } else st in
      let st = begin_wave ctx st ~seq:(st.seq + 1) in
      if st.waiting = [] then { st with result = Some st.acc } else st
    else begin
      let st = { st with ticks_stalled = st.ticks_stalled + 1 } in
      if st.ticks_stalled > stall_limit ctx then begin_wave ctx st ~seq:(st.seq + 1) else st
    end

  let on_message ctx st ~src m =
    let sender = Graph_id.of_src ctx src in
    match m with
    | Go { g_seq; g_result } ->
        if is_root ctx || sender <> I.parent_of ctx.Node.id then st
        else begin
          let st = { st with result = (match g_result with Some _ -> g_result | None -> st.result) } in
          let st = begin_wave ctx st ~seq:g_seq in
          if st.waiting = [] then finish_up ctx st else st
        end
    | Back { b_seq; b_acc } ->
        if b_seq <> st.seq || not (List.mem sender st.waiting) then st
        else begin
          let st =
            {
              st with
              waiting = List.filter (fun c -> c <> sender) st.waiting;
              acc = I.combine st.acc b_acc;
              ticks_stalled = 0;
            }
          in
          if st.waiting = [] then finish_up ctx st else st
        end

  let msg_label = function Go _ -> "pif-go" | Back _ -> "pif-back"

  let msg_bits ~n = function
    | Go _ -> 2 * Sizing.id_bits ~n
    | Back _ -> 2 * Sizing.id_bits ~n

  let state_bits ~n st =
    (3 * Sizing.id_bits ~n) + Sizing.list_bits ~n (Sizing.id_bits ~n) (List.length st.waiting)
end

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree

module Engine = Mdst_sim.Sync_engine.Make (Proto.Default)

type result = {
  converged : bool;
  rounds : int;
  tree : Tree.t option;
  degree : int option;
  total_messages : int;
}

let converge ?(seed = 42) ?(init = `Clean) ?(max_rounds = 60_000) ?(quiet_rounds = 60)
    ?(fixpoint = fun _ -> true) graph =
  let engine_init =
    match (init : Run.init) with
    | `Clean -> `Clean
    | `Random -> `Random
    | `Tree t -> `Custom (Run.state_of_tree t)
  in
  let engine = Engine.create ~seed ~init:engine_init graph in
  let last_fp = ref 0 in
  let stable_since = ref (-1) in
  let stop t =
    let states = Engine.states t in
    let fp = Checker.fingerprint states in
    if fp <> !last_fp then begin
      last_fp := fp;
      stable_since := Engine.rounds t
    end;
    !stable_since >= 0
    && Engine.rounds t - !stable_since >= quiet_rounds
    && Checker.legitimate graph states
    &&
    match Checker.tree_of_states graph states with
    | Some tree -> fixpoint tree
    | None -> false
  in
  let outcome = Engine.run engine ~max_rounds ~stop () in
  let tree = Checker.tree_of_states graph (Engine.states engine) in
  {
    converged = outcome.converged;
    rounds = outcome.rounds;
    tree;
    degree = Option.map Tree.max_degree tree;
    total_messages = Mdst_sim.Metrics.total_messages (Engine.metrics engine);
  }

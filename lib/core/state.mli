(** Per-node protocol state and the predicates of paper §3.1.

    The send/receive atomicity model gives every node a mirror of its
    neighbours' public variables, refreshed by Info messages; {!view} is
    that mirror.  Everything a predicate reads comes either from the node's
    own variables or from this mirror — never from global knowledge (the
    global view lives in {!Checker} and is only used by the harness). *)

(** Mirror of one neighbour's public variables. *)
type view = {
  w_root : int;
  w_parent : int;
  w_dist : int;
  w_deg : int;
  w_dmax : int;
  w_color : bool;
  w_subtree_max : int;
  w_fresh : bool;  (** has any Info arrived from this neighbour yet *)
}

(** A pending swap this node is a segment participant of.  [p_ttl] decays
    every tick so a corrupted or abandoned lock always clears. *)
type pending = { p_edge : int * int; p_target : int * int; p_ttl : int }

type t = {
  root : int;  (** believed tree-root identifier *)
  parent : int;  (** parent id; own id when (believed) root *)
  dist : int;
  dmax : int;  (** believed degree of the tree, deg(T) *)
  color : bool;  (** flips at the root whenever dmax changes (§3.2.3) *)
  subtree_max : int;  (** PIF feedback: max tree degree in my subtree *)
  views : view array;  (** one slot per neighbour, in [ctx.neighbors] order *)
  pending : pending option;
  deblock : (int * int) option;  (** (idblock, remaining ticks) *)
  search_cursor : int;  (** rotates over neighbour slots for Search starts *)
  last_info : Msg.info option;
      (** Info dirty-bit suppression: snapshot of the public variables as
          last gossiped.  Inert ([None]) unless the protocol config enables
          suppression. *)
  info_age : int;  (** ticks since the last actual Info broadcast *)
}

val unknown_view : view
(** The not-yet-heard-from mirror ([w_fresh = false]). *)

(** {1 Derived tree structure} *)

val slot_of : 'msg Mdst_sim.Node.ctx -> int -> int option
(** Neighbour-array slot of a protocol identifier, if adjacent. *)

val is_tree_edge : 'msg Mdst_sim.Node.ctx -> t -> int -> bool
(** [is_tree_edge ctx st slot] — the paper's
    [parent_v = ID_u or parent_u = ID_v], evaluated on own state + mirror. *)

val tree_degree : 'msg Mdst_sim.Node.ctx -> t -> int

val tree_children_slots : 'msg Mdst_sim.Node.ctx -> t -> int list
(** Slots of neighbours whose mirrored parent pointer designates us. *)

(** {1 Paper predicates (§3.1)} *)

val better_parent : 'msg Mdst_sim.Node.ctx -> t -> bool
(** A fresh neighbour claims a strictly smaller root (with an in-bound
    distance — see the count-to-infinity note in the implementation). *)

val coherent_parent : 'msg Mdst_sim.Node.ctx -> t -> bool

val coherent_distance : 'msg Mdst_sim.Node.ctx -> t -> bool

val new_root_candidate : 'msg Mdst_sim.Node.ctx -> t -> bool

val tree_stabilized : 'msg Mdst_sim.Node.ctx -> t -> bool

val degree_stabilized : t -> bool

val color_stabilized : t -> bool

val locally_stabilized : 'msg Mdst_sim.Node.ctx -> t -> bool
(** The freeze condition: reductions only proceed from here (§3.2.3). *)

(** {1 Construction} *)

val clean : 'msg Mdst_sim.Node.ctx -> t
(** Factory state: own root, empty mirror. *)

val random : ?suppression:bool -> 'msg Mdst_sim.Node.ctx -> Mdst_util.Prng.t -> t
(** The self-stabilization adversary: every variable, mirror included,
    takes an arbitrary (type-correct) value.  With [~suppression:true]
    the gossip-suppression cache ([last_info] / [info_age]) is also drawn
    arbitrarily — the extra draws happen only in that mode, so existing
    exact-replay executions are unaffected. *)

(** {1 Metering / debug} *)

val bits : n:int -> t -> int
(** Idealised state size; O(δ log n) per Lemma 5, metered by E5. *)

val pp : 'msg Mdst_sim.Node.ctx -> Format.formatter -> t -> unit

(* Transport-to-protocol translation.

   The simulator addresses nodes by dense index; the algorithm reasons only
   about protocol identifiers.  These helpers are the single crossing point
   so that the protocol cannot accidentally depend on the transport
   numbering (tests run with permuted identifiers to enforce this). *)

let of_src ctx src =
  let rec find k =
    if k >= Array.length ctx.Mdst_sim.Node.neighbors then
      invalid_arg "Graph_id.of_src: sender is not a neighbour"
    else if ctx.Mdst_sim.Node.neighbors.(k) = src then ctx.Mdst_sim.Node.neighbor_ids.(k)
    else find (k + 1)
  in
  find 0

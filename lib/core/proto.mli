(** The self-stabilizing MDST protocol of the paper (§3), packaged as a
    {!Mdst_sim.Node.AUTOMATON}.

    The automaton stacks the paper's four modules by priority:

    + spanning-tree correction — rules R1 ("correction parent") and R2
      ("correction root"), §3.2.1;
    + maximum-degree computation — a continuous PIF over the believed tree
      plus the colour freeze, §3.2.3;
    + fundamental-cycle detection — a DFS carried inside [Search]
      messages, §3.2.2;
    + degree reduction — Action_on_Cycle, Improve (a three-pass
      Remove/Grant/Reverse commit over the ascending cycle segment) and
      Deblock, §3.2.4.

    Deviations from the paper's pseudo-code are documented in DESIGN.md §4
    and marked [paper-gap:] in the implementation. *)

module type CONFIG = sig
  val busy_ttl : int
  (** Base ticks a swap lock survives without progress; a term linear in
      the known network-size bound is added so long segments complete. *)

  val deblock_ttl : int
  (** Ticks a node keeps searching on behalf of a blocking node. *)

  val eager_prune : bool
  (** Skip Search starts that can neither improve (endpoints ≤ dmax−2,
      paper Eq. 1) nor expose a blocking endpoint (= dmax−1, required for
      Deblock to ever fire).  [false] reproduces the paper's
      always-search behaviour; [true] converges to the same band with
      fewer messages (ablation E11b). *)

  val enable_deblock : bool
  (** The paper's Deblock machinery.  Disabling it is ablation E11a: the
      algorithm then stalls at local optima where every improving
      candidate has a blocking endpoint. *)

  val enable_reduction : bool
  (** The whole degree-reduction stack (modules 3 and 4).  Disabling it
      leaves the self-stabilizing spanning-tree + max-degree layers alone
      (paper §3.2.1 / §3.2.3) — the layer-isolation ablation E15. *)

  val graceful_reattach : bool
  (** Prototype of the paper's open problem (super-stabilization): on a
      vanished parent edge, re-attach to a fresh same-root neighbour with a
      strictly smaller distance instead of resetting the subtree.  [false]
      is the paper's behaviour; [true] the E17 variant. *)

  val search_on_info : bool
  (** Paper Figure 2 line 2 starts Cycle_Search upon every Info receipt;
      our default rate-limits starts to one rotating candidate per tick.
      [true] restores the paper's literal cadence. *)

  val info_suppression : bool
  (** Dirty-bit suppression of the periodic gossip: skip a tick's Info
      broadcast when the public variables are unchanged since the last
      one actually sent.  [false] (default) is the paper's literal
      send-every-tick behaviour. *)

  val info_refresh_every : int
  (** With suppression on, force a broadcast at least every this many
      ticks: the bounded-staleness window that preserves
      self-stabilization when the suppression cache itself is corrupted. *)
end

module Default_config : CONFIG

module No_deblock_config : CONFIG

module No_prune_config : CONFIG

module Tree_only_config : CONFIG

module Graceful_config : CONFIG

module Paper_faithful_config : CONFIG

module Suppressed_config : CONFIG
(** Default behaviour plus Info dirty-bit suppression (refresh every 8
    ticks) — the gossip-volume arm of benchmark E20. *)

module Make (_ : CONFIG) : sig
  include Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t
end

module Default : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module No_deblock : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module No_prune : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module Tree_only : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module Graceful : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module Paper_faithful : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

module Suppressed : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t

(** Carrying protocol state across a topology change.

    The paper's system model is static, but its conclusion calls out
    dynamic networks (churn, super-stabilization) as the open problem.
    This module provides the mechanism our topology-change experiment
    (E13) uses: take the node states of a converged run on [old_graph] and
    re-home them onto [new_graph] (same node set, edges added and/or
    removed).  Per-neighbour mirror slots are re-matched by protocol
    identifier; mirrors of new neighbours start unknown, mirrors of
    vanished neighbours are dropped.  Nodes whose parent edge disappeared
    keep their dangling pointer — detecting and repairing that is exactly
    the protocol's job. *)

val states :
  old_graph:Mdst_graph.Graph.t ->
  new_graph:Mdst_graph.Graph.t ->
  State.t array ->
  State.t array
(** @raise Invalid_argument if the two graphs differ in node count or
    identifier assignment. *)

val remove_tree_edge :
  Mdst_util.Prng.t -> Mdst_graph.Graph.t -> Mdst_graph.Tree.t -> (Mdst_graph.Graph.t * (int * int)) option
(** Remove one random {e tree} edge whose loss keeps the graph connected
    (i.e. a tree edge that is not a bridge of the graph); [None] if every
    tree edge is a bridge.  The removed edge is returned. *)

val add_random_edge :
  Mdst_util.Prng.t -> Mdst_graph.Graph.t -> (Mdst_graph.Graph.t * (int * int)) option
(** Add one uniformly random absent edge; [None] on complete graphs. *)

val remove_heaviest_tree_edge :
  Mdst_graph.Graph.t -> Mdst_graph.Tree.t -> (Mdst_graph.Graph.t * (int * int)) option
(** Like {!remove_tree_edge} but deterministic and adversarial: removes the
    non-bridge tree edge orphaning the {e largest} subtree — the worst case
    for repair disruption (used by experiment E17). *)

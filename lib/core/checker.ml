(* Global-state observation: the legitimacy predicate of the paper, evaluated
   by the test/experiment harness from outside the system (no node ever sees
   this information).

   A configuration is legitimate when (i) the parent pointers of all nodes
   form one spanning tree of the communication graph rooted at the
   minimum-identifier node, and (ii) every node's dmax equals the actual
   degree of that tree.  Convergence of a run is detected as legitimacy
   plus quiescence of the protocol variables (see {!Run}). *)

module Graph = Mdst_graph.Graph
module Tree = Mdst_graph.Tree

type verdict = {
  tree : Tree.t option;
  spanning : bool;
  rooted_at_min_id : bool;
  dmax_consistent : bool;
  distances_consistent : bool;
}

let tree_of_states graph (states : State.t array) =
  let n = Graph.n graph in
  let min_node = Graph.min_id_node graph in
  let parents = Array.make n (-1) in
  let ok = ref true in
  for v = 0 to n - 1 do
    let st = states.(v) in
    if st.State.parent = Graph.id graph v then parents.(v) <- v
    else
      match Graph.index_of_id graph st.State.parent with
      | p when Graph.mem_edge graph v p -> parents.(v) <- p
      | _ -> ok := false
      | exception Not_found -> ok := false
  done;
  if (not !ok) || parents.(min_node) <> min_node then None
  else match Tree.of_parents graph ~root:min_node parents with
    | tree -> Some tree
    | exception Tree.Invalid _ -> None

let inspect graph (states : State.t array) =
  let tree = tree_of_states graph states in
  let min_node = Graph.min_id_node graph in
  let rooted_at_min_id =
    states.(min_node).State.parent = Graph.id graph min_node
    && Array.to_list states
       |> List.for_all (fun st -> st.State.root = Graph.id graph min_node)
  in
  let dmax_consistent, distances_consistent =
    match tree with
    | None -> (false, false)
    | Some t ->
        let k = Tree.max_degree t in
        let dm = ref true and dd = ref true in
        Array.iteri
          (fun v st ->
            if st.State.dmax <> k then dm := false;
            if st.State.dist <> Tree.depth t v then dd := false)
          states;
        (!dm, !dd)
  in
  { tree; spanning = tree <> None; rooted_at_min_id; dmax_consistent; distances_consistent }

let legitimate graph states =
  let v = inspect graph states in
  v.spanning && v.rooted_at_min_id && v.dmax_consistent

(* Quiescence fingerprint over the variables that matter for the tree and
   its degree bookkeeping (search cursors and TTLs are excluded: they keep
   moving forever by design).  The hash itself lives in {!Projection} so the
   conformance tooling observes the protocol on exactly the same footing. *)
let fingerprint = Projection.fingerprint_states

let tree_degree_now graph states =
  match tree_of_states graph states with None -> None | Some t -> Some (Tree.max_degree t)

(** Stable observable-state projection.

    The conformance driver, the schedule explorer and the golden traces all
    compare the real protocol against the reference model on the same
    footing: a per-node record of the public protocol variables plus two
    phase bits (is the node a segment participant of a pending swap, is it
    serving a Deblock).  Search cursors, TTL counters and the Info
    suppression cache are deliberately excluded — they keep moving forever
    by design and are engine-schedule artifacts, not protocol outcomes.

    {!fingerprint} hashes only the six quiescence fields (root, parent,
    dist, dmax, color, subtree_max) with the exact mixing
    [Checker.fingerprint] has always used, so replay goldens and the
    quiet-rounds convergence detector keep their historical values; the
    phase bits participate in {!equal}/{!diff} but not in the hash (deblock
    service keeps toggling after convergence, so hashing it would make
    quiescence undetectable). *)

type node = {
  p_root : int;
  p_parent : int;
  p_dist : int;
  p_dmax : int;
  p_color : bool;
  p_subtree_max : int;
  p_busy : bool;  (** [pending <> None] *)
  p_deblock : bool;  (** [deblock <> None] *)
}

type t = node array

val of_states : State.t array -> t

val equal : t -> t -> bool

val diff : t -> t -> (int * string) list
(** Per-node field-level differences, [(node_index, "field: a <> b")];
    empty iff {!equal}. *)

val fingerprint : t -> int

val fingerprint_states : State.t array -> int
(** Same hash as [fingerprint (of_states states)], allocation-free.
    [Checker.fingerprint] delegates here. *)

val fingerprint_coarse : State.t array -> int
(** Labeling-insensitive hash: a sorted multiset of per-node mixes over
    the id-free fields (dist, dmax, color, subtree_max, phase bits, and a
    self-rooted bit).  Invariant under node relabeling/reordering, so the
    fuzzer's novelty search does not hoard id-permuted duplicates of one
    shape.  Deliberately NOT the quiescence hash — do not use for golden
    traces. *)

val node_to_string : node -> string
(** One node as ["root/parent/dist/dmax/color/stm/busy/deblock"], the
    format used by the committed golden traces. *)

val to_string : t -> string
(** All nodes joined with [' '].  Round-trips through {!of_string}. *)

val of_string : string -> t
(** @raise Failure on malformed input. *)

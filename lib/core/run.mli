(** One-call harness around {!Proto} + the simulation engine.

    Convergence is declared when the configuration is {!Checker.legitimate},
    the protocol fingerprint has been stable for [quiet_rounds]
    asynchronous rounds, and the caller's [fixpoint] oracle accepts the
    extracted tree.  The oracle keeps the detector honest during the long
    gaps between improvements — without it, a still-improvable tree that
    happens to sit quiet would be declared final.  The experiment layer
    passes "not Fürer–Raghavachari-improvable"; the protocol itself never
    sees this information.

    Self-stabilizing algorithms never halt: after convergence the gossip
    and searches keep running, they just stop changing anything. *)

type init =
  [ `Clean  (** factory boot *)
  | `Random  (** the adversary: arbitrary states + corrupted channels *)
  | `Tree of Mdst_graph.Tree.t
    (** start from a prescribed spanning tree (cold degree bookkeeping);
        isolates the reduction modules from tree construction *) ]

type result = {
  converged : bool;
  rounds : int;  (** asynchronous rounds (causal depth) at stop *)
  time : float;  (** virtual time at stop *)
  deliveries : int;
  tree : Mdst_graph.Tree.t option;
  degree : int option;  (** [deg(T)] of the final tree, when legitimate *)
  messages : (string * int) list;  (** per message family *)
  total_messages : int;
  total_bits : int;
  max_state_bits : int;
  max_msg_bits : int;
}

type recovery = {
  first : result;  (** state of the run at first convergence *)
  corrupted : int;  (** nodes whose state was randomised *)
  recovery_rounds : int option;  (** rounds to re-convergence, if reached *)
}

val default_max_rounds : int

val state_of_tree :
  Mdst_graph.Tree.t -> Msg.t Mdst_sim.Node.ctx -> Mdst_util.Prng.t -> State.t
(** The [`Tree] initializer, exposed for custom engines. *)

(** The harness, generic over protocol variants (ablations in {!Proto}). *)
module Runner (A : Mdst_sim.Node.AUTOMATON with type state = State.t and type msg = Msg.t) : sig
  module Engine : module type of Mdst_sim.Engine.Make (A)

  val make_engine :
    ?latency:Mdst_sim.Latency.t -> ?seed:int -> ?init:init -> Mdst_graph.Graph.t -> Engine.t

  val make_stop :
    ?quiet_rounds:int -> ?fixpoint:(Mdst_graph.Tree.t -> bool) -> unit -> Engine.t -> bool
  (** A fresh stateful stop predicate (tracks the fingerprint). *)

  val snapshot : Engine.t -> converged:bool -> result
  (** The {!result} record of a custom engine run, for callers that drive
      {!Engine.run} themselves (tracing, fault injection). *)

  val converge :
    ?latency:Mdst_sim.Latency.t ->
    ?seed:int ->
    ?init:init ->
    ?max_rounds:int ->
    ?quiet_rounds:int ->
    ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
    Mdst_graph.Graph.t ->
    result

  val converge_corrupt_recover :
    ?latency:Mdst_sim.Latency.t ->
    ?seed:int ->
    ?init:init ->
    ?max_rounds:int ->
    ?quiet_rounds:int ->
    ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
    fraction:float ->
    Mdst_graph.Graph.t ->
    recovery
  (** Converge, corrupt [fraction] of the nodes (states + channels),
      measure rounds to re-convergence (experiment E4). *)

  (** {2 Sharded parallel engine}

      Same harness over {!Mdst_sim.Pengine}: identical initial
      configurations for a given (seed, init) — the parallel engine
      replays the sequential create's draws — and the same convergence
      detector, evaluated between windows. *)

  module Pengine : module type of Mdst_sim.Pengine.Make (A)

  val make_pengine :
    ?latency:Mdst_sim.Latency.t ->
    ?seed:int ->
    ?init:init ->
    ?record:bool ->
    ?partition:int array ->
    domains:int ->
    Mdst_graph.Graph.t ->
    Pengine.t

  val make_pstop :
    ?quiet_rounds:int -> ?fixpoint:(Mdst_graph.Tree.t -> bool) -> unit -> Pengine.t -> bool

  val psnapshot : Pengine.t -> converged:bool -> result

  val converge_par :
    ?latency:Mdst_sim.Latency.t ->
    ?seed:int ->
    ?init:init ->
    ?max_rounds:int ->
    ?quiet_rounds:int ->
    ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
    ?window:float ->
    domains:int ->
    Mdst_graph.Graph.t ->
    result
end

(** The default protocol instance, re-exported at the top level. *)
module Default_runner : module type of Runner (Proto.Default)

module Engine = Default_runner.Engine
module Pengine = Default_runner.Pengine

val make_engine :
  ?latency:Mdst_sim.Latency.t -> ?seed:int -> ?init:init -> Mdst_graph.Graph.t -> Engine.t

val make_stop :
  ?quiet_rounds:int -> ?fixpoint:(Mdst_graph.Tree.t -> bool) -> unit -> Engine.t -> bool

val snapshot : Engine.t -> converged:bool -> result

val converge :
  ?latency:Mdst_sim.Latency.t ->
  ?seed:int ->
  ?init:init ->
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
  Mdst_graph.Graph.t ->
  result

val converge_corrupt_recover :
  ?latency:Mdst_sim.Latency.t ->
  ?seed:int ->
  ?init:init ->
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
  fraction:float ->
  Mdst_graph.Graph.t ->
  recovery

val make_pengine :
  ?latency:Mdst_sim.Latency.t ->
  ?seed:int ->
  ?init:init ->
  ?record:bool ->
  ?partition:int array ->
  domains:int ->
  Mdst_graph.Graph.t ->
  Pengine.t

val make_pstop :
  ?quiet_rounds:int -> ?fixpoint:(Mdst_graph.Tree.t -> bool) -> unit -> Pengine.t -> bool

val psnapshot : Pengine.t -> converged:bool -> result

val converge_par :
  ?latency:Mdst_sim.Latency.t ->
  ?seed:int ->
  ?init:init ->
  ?max_rounds:int ->
  ?quiet_rounds:int ->
  ?fixpoint:(Mdst_graph.Tree.t -> bool) ->
  ?window:float ->
  domains:int ->
  Mdst_graph.Graph.t ->
  result

(** The discrete-event execution engine.

    The engine implements the paper's system model: an asynchronous
    message-passing network with reliable FIFO channels.  Every node runs
    one automaton instance; message transmissions receive a latency from the
    {!Latency} model, and per-channel FIFO order is enforced even when a
    later message samples a smaller latency.  A periodic local timer drives
    the paper's "Do forever: send InfoMsg" loop.

    {2 Round accounting}

    [rounds t] reports the {e causal depth} of the execution: every event
    carries a tag one larger than the tag of the event that caused it, and
    the round counter is the maximum tag processed.  This is the standard
    asynchronous-round measure the paper's time-complexity claims use — a
    round is over once everything enabled at the start of the round has been
    scheduled — and it is independent of the latency model's absolute
    numbers. *)

(** What an attached observer sees (message payloads are reduced to their
    family label so observers remain protocol-generic). *)
type observation =
  | Obs_tick of { node : int; round : int; time : float }
  | Obs_deliver of { src : int; dst : int; label : string; round : int; time : float }

module Make (A : Node.AUTOMATON) : sig
  type t

  type init =
    [ `Clean  (** every node boots via [A.init] *)
    | `Random  (** adversarial start: [A.random_state] + corrupted channels *)
    | `Custom of A.msg Node.ctx -> Mdst_util.Prng.t -> A.state ]

  val create :
    ?latency:Latency.t ->
    ?tick_period:float ->
    ?seed:int ->
    ?init:init ->
    Mdst_graph.Graph.t ->
    t
  (** Defaults: uniform latency, [tick_period = 1.0], [seed = 42],
      [init = `Clean].  The graph must be connected and non-empty. *)

  (** {1 Execution} *)

  val step : t -> bool
  (** Process one event; [false] when no event is pending (cannot happen
      while ticks are armed). *)

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  val run :
    t -> ?max_rounds:int -> ?check_every:int -> stop:(t -> bool) -> unit -> outcome
  (** Run until [stop] holds (checked every [check_every] rounds, default 1)
      or [max_rounds] (default 200_000) is exceeded. *)

  (** {1 Observation} *)

  val graph : t -> Mdst_graph.Graph.t

  val state : t -> int -> A.state

  val states : t -> A.state array
  (** The live array — do not mutate; use {!set_state}. *)

  val now : t -> float

  val rounds : t -> int

  val metrics : t -> Metrics.t

  val pending_events : t -> int

  val in_flight_exists : t -> (A.msg -> bool) -> bool
  (** Is any queued message satisfying the predicate still undelivered? *)

  (** {1 Fault injection} *)

  val set_state : t -> int -> A.state -> unit

  val corrupt : t -> ?fraction:float -> ?channels:bool -> unit -> int
  (** Replace the state of a random [fraction] (default 1.0) of nodes by
      [A.random_state], optionally also injecting random channel contents.
      Returns the number of nodes hit. *)

  val inject : t -> src:int -> dst:int -> A.msg -> unit
  (** Force a message onto a channel (the endpoints must be adjacent). *)

  (** {1 Observation hooks} *)

  val observe : t -> (observation -> unit) -> unit
  (** Install an observer called before each event is executed (tracing,
      live statistics).  Replaces any previous observer. *)

  val unobserve : t -> unit
end

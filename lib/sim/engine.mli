(** The discrete-event execution engine.

    The engine implements the paper's system model: an asynchronous
    message-passing network with reliable FIFO channels.  Every node runs
    one automaton instance; message transmissions receive a latency from the
    {!Latency} model, and per-channel FIFO order is enforced even when a
    later message samples a smaller latency.  A periodic local timer drives
    the paper's "Do forever: send InfoMsg" loop.

    {2 Round accounting}

    [rounds t] reports the {e causal depth} of the execution: every event
    carries a tag one larger than the tag of the event that caused it, and
    the round counter is the maximum tag processed.  This is the standard
    asynchronous-round measure the paper's time-complexity claims use — a
    round is over once everything enabled at the start of the round has been
    scheduled — and it is independent of the latency model's absolute
    numbers.

    {2 Memory model}

    The engine's footprint is O(n + m + in-flight messages): per-node
    state/context arrays, one event heap, and per-channel FIFO floors stored
    as one float per {e adjacent} ordered pair (a slot per neighbour, in
    [Graph.neighbors] order) — there is no per-ordered-pair matrix, so
    simulations scale to thousands of nodes (see EXPERIMENTS.md E19).
    Installed fault plans index their channel events by ordered channel, so
    a send on an untampered channel does no fault-list scanning and builds
    no label string. *)

(** What an attached observer sees (message payloads are reduced to their
    family label so observers remain protocol-generic).  [Obs_fault] records
    every action of an installed {!Fault.plan} — a trace always explains
    what the adversary did. *)
type observation =
  | Obs_tick of { node : int; round : int; time : float }
  | Obs_deliver of { src : int; dst : int; label : string; round : int; time : float }
  | Obs_fault of { kind : string; detail : string; round : int; time : float }

val fifo_epsilon : float
(** Minimum spacing the FIFO floor enforces between consecutive arrivals on
    one channel.  Exposed so {!Pengine} applies the {e same} constant — the
    two engines must agree on timestamps for the conformance replay to
    hold. *)

module Make (A : Node.AUTOMATON) : sig
  type t

  type init =
    [ `Clean  (** every node boots via [A.init] *)
    | `Random  (** adversarial start: [A.random_state] + corrupted channels *)
    | `Custom of A.msg Node.ctx -> Mdst_util.Prng.t -> A.state ]

  val create :
    ?latency:Latency.t ->
    ?tick_period:float ->
    ?seed:int ->
    ?init:init ->
    Mdst_graph.Graph.t ->
    t
  (** Defaults: uniform latency, [tick_period = 1.0], [seed = 42],
      [init = `Clean].  The graph must be connected and non-empty. *)

  (** {1 Execution} *)

  val step : t -> bool
  (** Process one event; [false] when no event is pending (cannot happen
      while ticks are armed). *)

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  val run :
    t -> ?max_rounds:int -> ?check_every:int -> stop:(t -> bool) -> unit -> outcome
  (** Run until [stop] holds (checked every [check_every] rounds, default 1)
      or [max_rounds] (default 200_000) is exceeded. *)

  (** {1 Observation} *)

  val graph : t -> Mdst_graph.Graph.t

  val state : t -> int -> A.state

  val states : t -> A.state array
  (** The live array — do not mutate; use {!set_state}. *)

  val now : t -> float

  val rounds : t -> int

  val metrics : t -> Metrics.t

  val pending_events : t -> int

  val in_flight_exists : t -> (A.msg -> bool) -> bool
  (** Is any queued message satisfying the predicate still undelivered? *)

  val in_flight : t -> (int * int * A.msg) list
  (** Every queued message as [(src, dst, msg)], sorted by arrival time.
      Per-channel arrival times are strictly increasing (the FIFO floor),
      so restricted to one ordered channel the list is in delivery order —
      what a conformance model needs to seed its queues.  O(events log
      events); an observation hook, not for hot paths. *)

  (** {1 Schedule control (testing hook)} *)

  (** One eligible next step for {!step_with}: a node's armed tick, or the
      FIFO head of a non-empty ordered channel. *)
  type choice =
    | Choose_tick of { node : int }
    | Choose_deliver of { src : int; dst : int; label : string }

  val step_with : t -> choose:(choice array -> int) -> bool
  (** Like {!step}, but the caller picks which eligible event runs instead
      of the arrival-time order: [choose] receives the eligible events
      (every armed tick in node order, then every non-empty channel's FIFO
      head in [(src * n) + dst] order) and returns an index into the
      array.  Per-channel FIFO is preserved by construction; everything
      else — tick fairness, latency realism, cross-channel order — is
      surrendered to the caller, which is the point: the bounded schedule
      explorer enumerates exactly these choices.  Virtual time still only
      moves forward (executing an event whose arrival time already passed
      does not rewind [now]).
      @raise Invalid_argument if [choose] returns an out-of-range index. *)

  (** {1 Fault injection}

      Ad-hoc primitives first; {!install_faults} interprets a declarative,
      replayable {!Fault.plan} on top of them.  Plan-driven faults draw all
      randomness from per-event streams ({!Fault.rng_for}), never from the
      engine's own PRNG, so installing a plan leaves the fault-free part of
      the execution byte-identical — experiment results do not shift when
      fault or PBT draws are added. *)

  val set_state : t -> int -> A.state -> unit

  val corrupt : t -> ?fraction:float -> ?channels:bool -> unit -> int
  (** Replace the state of a random [fraction] (default 1.0) of nodes by
      [A.random_state], optionally also injecting random channel contents.
      Returns the number of nodes hit.  The victim set is drawn from the
      engine's stream; each victim then gets its own split stream feeding
      its state corruption and (with [channels]) its injected payloads and
      their latency draws, so the engine's stream advances identically with
      and without [channels] — the post-corruption tick/latency schedule of
      the untouched channels is the same either way. *)

  val inject : t -> src:int -> dst:int -> A.msg -> unit
  (** Force a message onto a channel (the endpoints must be adjacent). *)

  val reset_node : t -> ?rng:Mdst_util.Prng.t -> [ `Init | `Random ] -> int -> unit
  (** Crash-restart one node: reinstall its state via [A.init] or
      [A.random_state].  [rng] (default: the engine's stream) feeds
      [`Random] re-initialization.  In-flight messages are untouched; use
      {!purge_channel} to model losing them. *)

  val purge_channel : t -> src:int -> dst:int -> int
  (** Drop every queued message on the ordered channel [src -> dst];
      returns how many were lost.  The channel's FIFO floor is {e kept}:
      messages sent after the purge are still delivered strictly after the
      arrival times of the purged ones, as on a real FIFO link that lost
      content without being re-established (see also {!Fault.event}
      [Crash], which purges all of a node's channels). *)

  val reshape :
    t ->
    ?remap:(old_graph:Mdst_graph.Graph.t -> new_graph:Mdst_graph.Graph.t -> A.state array -> A.state array) ->
    Mdst_graph.Graph.t ->
    unit
  (** Replace the topology mid-run (same node count, must stay connected).
      Messages in flight on vanished edges are lost; surviving channels
      keep their FIFO floors while new (or re-added) channels start fresh;
      node contexts are rebuilt (each node keeps its PRNG stream); [remap]
      re-homes the state
      array onto the new topology (default: states carried over untouched —
      protocol-specific carriers like [Mdst_core.Transplant.states] plug in
      here).  @raise Invalid_argument on node-count mismatch or a
      disconnected replacement. *)

  val install_faults :
    t ->
    ?remap:(old_graph:Mdst_graph.Graph.t -> new_graph:Mdst_graph.Graph.t -> A.state array -> A.state array) ->
    Fault.plan ->
    unit
  (** Interpret a {!Fault.plan} during subsequent execution: channel events
      tamper with sends while their round window is open; scheduled events
      (crash / cut / link) fire when {!step} first runs at or past their
      round.  [remap] is used by topology events (see {!reshape}).
      Replaces any previously installed plan. *)

  val fault_stats : t -> Fault.stats
  (** What the installed plan actually did so far (all-zero when no plan
      is installed). *)

  val faults_pending : t -> bool
  (** Is adversarial work from the installed plan still outstanding?  True
      while scheduled events (crash / cut / link) wait to fire — a fault
      scheduled at round [r] fires when the engine {e processes} an event
      at or past [r], which can be after a stop predicate already ran at
      round [r] — and also while any message a channel event tampered with
      (corrupted payload, duplicate copy, reordered delivery) is still in
      flight: such a message is adversarial state even after its round
      window closes, and delivering it can knock a quiescent configuration
      out of legitimacy.  Convergence checks must not declare victory while
      this holds. *)

  (** {1 Observation hooks} *)

  val observe : t -> (observation -> unit) -> unit
  (** Install an observer called before each event is executed (tracing,
      live statistics).  Replaces any previous observer. *)

  val unobserve : t -> unit
end

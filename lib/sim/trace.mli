(** Structured event tracing on top of the engine's observer hook.

    A trace is a bounded ring buffer of {!Engine.observation}s with an
    optional filter; it answers "what actually happened" questions after a
    run — per-label counts, per-round activity, and a rendering of the last
    N events.  Used by the CLI's [--trace] and by tests that assert on
    event sequences. *)

type t

val create : ?capacity:int -> ?keep:(Engine.observation -> bool) -> unit -> t
(** [capacity] bounds the retained events (default 4096, oldest dropped);
    [keep] filters at record time (default: drop ticks, keep deliveries). *)

val record : t -> Engine.observation -> unit
(** The function to install as the engine observer
    ([Engine.observe engine (Trace.record trace)]). *)

val events : t -> Engine.observation list
(** Retained events, oldest first. *)

val recorded : t -> int
(** Total events recorded (including those already evicted). *)

val counts_by_label : t -> (string * int) list
(** Delivery counts per message family over the retained window, sorted. *)

val render : ?limit:int -> t -> string
(** Human-readable rendering of the last [limit] (default all retained)
    events, one per line. *)

val clear : t -> unit

val keep_protocol_only : Engine.observation -> bool
(** The default filter: deliveries whose label is not ["info"]. *)

type t = {
  counts : (string, int ref) Hashtbl.t;
  bits : (string, int ref) Hashtbl.t;
  mutable sends : int;
  mutable deliveries : int;
  mutable total_bits : int;
  mutable max_state_bits : int;
  mutable max_msg_bits : int;
}

let create () =
  {
    counts = Hashtbl.create 8;
    bits = Hashtbl.create 8;
    sends = 0;
    deliveries = 0;
    total_bits = 0;
    max_state_bits = 0;
    max_msg_bits = 0;
  }

let bump tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := !r + v
  | None -> Hashtbl.add tbl key (ref v)

let record_send t ~label ~bits =
  bump t.counts label 1;
  bump t.bits label bits;
  t.sends <- t.sends + 1;
  t.total_bits <- t.total_bits + bits;
  if bits > t.max_msg_bits then t.max_msg_bits <- bits

let record_delivery t = t.deliveries <- t.deliveries + 1

let record_state_bits t b = if b > t.max_state_bits then t.max_state_bits <- b

let record_msg_peak_bits t b = if b > t.max_msg_bits then t.max_msg_bits <- b

let total_messages t = t.sends

let deliveries t = t.deliveries

let total_bits t = t.total_bits

let sorted tbl =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) tbl [] |> List.sort compare

let messages_by_label t = sorted t.counts

let bits_by_label t = sorted t.bits

let max_state_bits t = t.max_state_bits

let max_msg_bits t = t.max_msg_bits

let reset t =
  Hashtbl.reset t.counts;
  Hashtbl.reset t.bits;
  t.sends <- 0;
  t.deliveries <- 0;
  t.total_bits <- 0;
  t.max_state_bits <- 0;
  t.max_msg_bits <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>messages=%d delivered=%d bits=%d state<=%db msg<=%db@," t.sends
    t.deliveries t.total_bits t.max_state_bits t.max_msg_bits;
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-10s %d@," k v) (messages_by_label t);
  Format.fprintf ppf "@]"

(* Per-label accounting shares one record per label so the per-send hot
   path does a single hash lookup and two in-place increments — no boxed
   counters, no second table. *)

type per_label = { mutable count : int; mutable bits_sum : int }

type t = {
  by_label : (string, per_label) Hashtbl.t;
  mutable sends : int;
  mutable deliveries : int;
  mutable total_bits : int;
  mutable max_state_bits : int;
  mutable max_msg_bits : int;
  mutable suppressed : int;
}

let create () =
  {
    by_label = Hashtbl.create 8;
    sends = 0;
    deliveries = 0;
    total_bits = 0;
    max_state_bits = 0;
    max_msg_bits = 0;
    suppressed = 0;
  }

let record_send t ~label ~bits =
  (match Hashtbl.find_opt t.by_label label with
  | Some c ->
      c.count <- c.count + 1;
      c.bits_sum <- c.bits_sum + bits
  | None -> Hashtbl.add t.by_label label { count = 1; bits_sum = bits });
  t.sends <- t.sends + 1;
  t.total_bits <- t.total_bits + bits;
  if bits > t.max_msg_bits then t.max_msg_bits <- bits

let record_delivery t = t.deliveries <- t.deliveries + 1

let record_suppressed t k = t.suppressed <- t.suppressed + k

let suppressed_sends t = t.suppressed

let record_state_bits t b = if b > t.max_state_bits then t.max_state_bits <- b

let record_msg_peak_bits t b = if b > t.max_msg_bits then t.max_msg_bits <- b

let total_messages t = t.sends

let deliveries t = t.deliveries

let total_bits t = t.total_bits

let merge_into ~into src =
  Hashtbl.iter
    (fun label c ->
      match Hashtbl.find_opt into.by_label label with
      | Some d ->
          d.count <- d.count + c.count;
          d.bits_sum <- d.bits_sum + c.bits_sum
      | None -> Hashtbl.add into.by_label label { count = c.count; bits_sum = c.bits_sum })
    src.by_label;
  into.sends <- into.sends + src.sends;
  into.deliveries <- into.deliveries + src.deliveries;
  into.total_bits <- into.total_bits + src.total_bits;
  if src.max_state_bits > into.max_state_bits then into.max_state_bits <- src.max_state_bits;
  if src.max_msg_bits > into.max_msg_bits then into.max_msg_bits <- src.max_msg_bits;
  into.suppressed <- into.suppressed + src.suppressed

let sorted t project =
  Hashtbl.fold (fun k c acc -> (k, project c) :: acc) t.by_label [] |> List.sort compare

let messages_by_label t = sorted t (fun c -> c.count)

let bits_by_label t = sorted t (fun c -> c.bits_sum)

let max_state_bits t = t.max_state_bits

let max_msg_bits t = t.max_msg_bits

let reset t =
  Hashtbl.reset t.by_label;
  t.sends <- 0;
  t.deliveries <- 0;
  t.total_bits <- 0;
  t.max_state_bits <- 0;
  t.max_msg_bits <- 0;
  t.suppressed <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>messages=%d delivered=%d bits=%d state<=%db msg<=%db suppressed=%d@,"
    t.sends t.deliveries t.total_bits t.max_state_bits t.max_msg_bits t.suppressed;
  List.iter (fun (k, v) -> Format.fprintf ppf "  %-10s %d@," k v) (messages_by_label t);
  Format.fprintf ppf "@]"

(** Run-time accounting: message counts and idealised bit volumes per message
    family, plus peak state sizes.  Feeds experiments E3, E5 and E8. *)

type t

val create : unit -> t

val record_send : t -> label:string -> bits:int -> unit

val record_delivery : t -> unit

val record_suppressed : t -> int -> unit
(** [record_suppressed t k] counts [k] sends elided by the Info dirty-bit
    suppression mode (the gossip a node would have emitted but proved
    redundant).  These never reach the channel, so they appear in no other
    counter. *)

val suppressed_sends : t -> int

val record_state_bits : t -> int -> unit

val record_msg_peak_bits : t -> int -> unit

val total_messages : t -> int

val deliveries : t -> int

val total_bits : t -> int

val messages_by_label : t -> (string * int) list
(** Sorted by label. *)

val bits_by_label : t -> (string * int) list

val max_state_bits : t -> int
(** Peak per-node memory observed, in idealised bits. *)

val max_msg_bits : t -> int
(** Largest single message observed, in idealised bits. *)

val merge_into : into:t -> t -> unit
(** Accumulate another record's counters into [into] (peaks take the max).
    The sharded parallel engine keeps one record per shard so the per-send
    hot path stays contention-free, and merges them on demand. *)

val reset : t -> unit

val pp : Format.formatter -> t -> unit

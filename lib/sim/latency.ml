module Prng = Mdst_util.Prng

type t = {
  name : string;
  sample : Prng.t -> src:int -> dst:int -> float;
  (* Set iff this is the plain uniform model: the engine inlines that
     draw on its per-send path (bit-identical arithmetic, same single
     generator step) to avoid the closure-call float boxing. *)
  uniform_range : (float * float) option;
  (* Positive lower bound on every delay the model can emit, over all
     channels and draws.  The sharded parallel engine's conservative
     lookahead is exactly this bound: a shard that has executed
     everything before time T cannot cause a delivery before
     [T + min_delay], so every other shard may safely run up to that
     horizon.  A model violating its declared bound would break the
     parallel engine's determinism (a late-discovered event in a shard's
     past), hence the invariant is stated here and pinned by tests. *)
  min_delay : float;
}

let constant d =
  if d <= 0.0 then invalid_arg "Latency.constant: delay must be positive";
  { name = "constant"; sample = (fun _ ~src:_ ~dst:_ -> d); uniform_range = None; min_delay = d }

let uniform ?(lo = 0.5) ?(hi = 1.5) () =
  if lo <= 0.0 || hi < lo then invalid_arg "Latency.uniform";
  {
    name = "uniform";
    sample = (fun rng ~src:_ ~dst:_ -> lo +. Prng.float rng (hi -. lo));
    uniform_range = Some (lo, hi);
    min_delay = lo;
  }

let exponential ?(mean = 1.0) () =
  if mean <= 0.0 then invalid_arg "Latency.exponential";
  {
    name = "exponential";
    sample = (fun rng ~src:_ ~dst:_ -> 0.01 +. Prng.exponential rng (1.0 /. mean));
    uniform_range = None;
    (* The additive floor: Prng.exponential is nonnegative. *)
    min_delay = 0.01;
  }

(* Deterministic per-link hash so the slowed set is stable across a run.
   [Prng.float_of_seed] keeps this allocation-free — it runs once per send
   under the slow-links / node-skew models. *)
let link_hash seed src dst =
  Prng.float_of_seed (seed lxor (src * 1_000_003) lxor (dst * 7_368_787))

let slow_links ?(factor = 10.0) ?(fraction = 0.15) ~base seed =
  if factor <= 0.0 then invalid_arg "Latency.slow_links: factor must be positive";
  {
    name = "slow-links";
    sample =
      (fun rng ~src ~dst ->
        let d = base.sample rng ~src ~dst in
        if link_hash seed src dst < fraction then d *. factor else d);
    uniform_range = None;
    (* A factor below 1 would speed the slowed set up. *)
    min_delay = base.min_delay *. Float.min 1.0 factor;
  }

let node_skew ?(max_factor = 8.0) ~base seed =
  if max_factor <= 0.0 then invalid_arg "Latency.node_skew: max_factor must be positive";
  {
    name = "node-skew";
    sample =
      (fun rng ~src ~dst ->
        let d = base.sample rng ~src ~dst in
        let f = 1.0 +. (link_hash seed dst dst *. (max_factor -. 1.0)) in
        d *. f);
    uniform_range = None;
    (* f = 1 + h * (max_factor - 1) over h in [0, 1): bounded below by 1
       when max_factor >= 1, by max_factor itself otherwise. *)
    min_delay = base.min_delay *. Float.min 1.0 max_factor;
  }

let sample t rng ~src ~dst = t.sample rng ~src ~dst

let uniform_params t = t.uniform_range

let min_delay t = t.min_delay

let name t = t.name

let names = [ "constant"; "uniform"; "exponential"; "slow-links"; "node-skew" ]

let by_name name seed =
  match name with
  | "constant" -> constant 1.0
  | "uniform" -> uniform ()
  | "exponential" -> exponential ()
  | "slow-links" -> slow_links ~base:(uniform ()) seed
  | "node-skew" -> node_skew ~base:(uniform ()) seed
  | other -> invalid_arg (Printf.sprintf "Latency.by_name: unknown model %S" other)

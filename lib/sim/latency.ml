module Prng = Mdst_util.Prng

type t = {
  name : string;
  sample : Prng.t -> src:int -> dst:int -> float;
  (* Set iff this is the plain uniform model: the engine inlines that
     draw on its per-send path (bit-identical arithmetic, same single
     generator step) to avoid the closure-call float boxing. *)
  uniform_range : (float * float) option;
}

let constant d =
  if d <= 0.0 then invalid_arg "Latency.constant: delay must be positive";
  { name = "constant"; sample = (fun _ ~src:_ ~dst:_ -> d); uniform_range = None }

let uniform ?(lo = 0.5) ?(hi = 1.5) () =
  if lo <= 0.0 || hi < lo then invalid_arg "Latency.uniform";
  {
    name = "uniform";
    sample = (fun rng ~src:_ ~dst:_ -> lo +. Prng.float rng (hi -. lo));
    uniform_range = Some (lo, hi);
  }

let exponential ?(mean = 1.0) () =
  if mean <= 0.0 then invalid_arg "Latency.exponential";
  {
    name = "exponential";
    sample = (fun rng ~src:_ ~dst:_ -> 0.01 +. Prng.exponential rng (1.0 /. mean));
    uniform_range = None;
  }

(* Deterministic per-link hash so the slowed set is stable across a run.
   [Prng.float_of_seed] keeps this allocation-free — it runs once per send
   under the slow-links / node-skew models. *)
let link_hash seed src dst =
  Prng.float_of_seed (seed lxor (src * 1_000_003) lxor (dst * 7_368_787))

let slow_links ?(factor = 10.0) ?(fraction = 0.15) ~base seed =
  {
    name = "slow-links";
    sample =
      (fun rng ~src ~dst ->
        let d = base.sample rng ~src ~dst in
        if link_hash seed src dst < fraction then d *. factor else d);
    uniform_range = None;
  }

let node_skew ?(max_factor = 8.0) ~base seed =
  {
    name = "node-skew";
    sample =
      (fun rng ~src ~dst ->
        let d = base.sample rng ~src ~dst in
        let f = 1.0 +. (link_hash seed dst dst *. (max_factor -. 1.0)) in
        d *. f);
    uniform_range = None;
  }

let sample t rng ~src ~dst = t.sample rng ~src ~dst

let uniform_params t = t.uniform_range

let name t = t.name

let names = [ "constant"; "uniform"; "exponential"; "slow-links"; "node-skew" ]

let by_name name seed =
  match name with
  | "constant" -> constant 1.0
  | "uniform" -> uniform ()
  | "exponential" -> exponential ()
  | "slow-links" -> slow_links ~base:(uniform ()) seed
  | "node-skew" -> node_skew ~base:(uniform ()) seed
  | other -> invalid_arg (Printf.sprintf "Latency.by_name: unknown model %S" other)

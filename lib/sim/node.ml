(* Node automaton interface: the contract between a distributed protocol and
   the simulation engine.

   A node is a deterministic state machine driven by two kinds of events:

   - [on_tick]: the periodic local timer.  The paper's "Do forever: send
     InfoMsg to all neighbours" loop lives here.
   - [on_message]: receipt of one message from one neighbour.  Together with
     the sends performed inside the handler this is exactly the paper's
     send/receive atomicity: an atomic step is one local computation plus
     the communication operations it triggers.

   Handlers communicate only through [ctx.send], which enqueues onto the
   FIFO channel towards a neighbour.  Handlers must not retain [ctx] beyond
   the call. *)

type 'msg ctx = {
  node : int;  (** dense node index in the topology *)
  id : int;  (** protocol identifier (unique, totally ordered) *)
  n : int;  (** network size — metering only; protocol code must not use it *)
  neighbors : int array;  (** node indices of the one-hop neighbourhood *)
  neighbor_ids : int array;  (** their protocol identifiers, same order *)
  send : int -> 'msg -> unit;  (** [send dst msg]; [dst] must be a neighbour *)
  note_suppressed : int -> unit;
      (** [note_suppressed k]: the handler elided [k] sends it proved
          redundant (Info dirty-bit suppression) — metering only, no
          protocol-visible effect *)
  rng : Mdst_util.Prng.t;  (** node-local deterministic randomness *)
  now : unit -> float;  (** virtual time, for tracing only *)
}

module type AUTOMATON = sig
  type state
  type msg

  val name : string

  val init : msg ctx -> state
  (** Clean cold-start state (the "designed" initial configuration). *)

  val random_state : msg ctx -> Mdst_util.Prng.t -> state
  (** An arbitrary (possibly inconsistent) state: the adversary of the
      self-stabilization definition.  Must cover the whole reachable state
      space shape-wise, not just legal values. *)

  val random_msg : msg ctx -> Mdst_util.Prng.t -> msg option
  (** An arbitrary in-flight message for channel corruption, or [None] if
      the protocol does not model channel corruption. *)

  val on_tick : msg ctx -> state -> state

  val on_message : msg ctx -> state -> src:int -> msg -> state

  val msg_label : msg -> string
  (** Coarse message family ("info", "search", ...) for metering. *)

  val msg_bits : n:int -> msg -> int
  (** Idealised encoded size, per the paper's O(.) accounting. *)

  val state_bits : n:int -> state -> int
  (** Idealised per-node memory, per the paper's O(.) accounting. *)
end

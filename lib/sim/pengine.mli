(** Sharded parallel discrete-event engine (conservative PDES on OCaml 5
    domains).

    The graph is partitioned into [domains] node-shards; each shard runs
    its own event heap, PRNG draws, FIFO floors and metrics on a dedicated
    domain.  Cross-shard sends cross bounded SPSC mailboxes; shards
    synchronise through published clocks with lookahead
    [Latency.min_delay] — see the implementation header for the protocol
    and its soundness/progress arguments.

    {2 Determinism contract}

    Events are totally ordered by [(time, shard, seq)], where [(shard,
    seq)] identify the event's {e creation}, not its delivery.  Two
    guarantees follow:

    - {b bit-identical}: a fixed [(seed, domains, partition)] replays the
      exact same execution, every run;
    - {b schedule-equivalent across shard counts}: [create] replays
      {!Engine.create}'s root-stream draws and then moves latency to
      per-node streams, so the timestamped event set is independent of
      [domains].  Runs with different [domains] differ only in how
      cross-shard events at {e exactly} equal float times are ordered —
      measure-zero under the stochastic latency models — hence the
      quiescence fingerprints compared by the [pardet] check.

    The sequential {!Engine} draws post-create latencies from its root
    stream instead, so its trace differs from [domains = 1]; equivalence
    against it is established by replaying a recorded sharded schedule
    through [Engine.step_with] (see {!Parcheck} in [lib/check]).

    {2 Threading}

    Only [run] / [run_window] are parallel; every other function must be
    called between windows (the spawning domain joins all workers before
    returning, which synchronises memory). *)

module Make (A : Node.AUTOMATON) : sig
  type t

  type init =
    [ `Clean
    | `Random
    | `Custom of A.msg Node.ctx -> Mdst_util.Prng.t -> A.state ]

  val create :
    ?latency:Latency.t ->
    ?tick_period:float ->
    ?seed:int ->
    ?init:init ->
    ?record:bool ->
    ?partition:int array ->
    domains:int ->
    Mdst_graph.Graph.t ->
    t
  (** Defaults match {!Engine.create} (uniform latency, tick period 1.0,
      seed 42, clean start).  [partition] overrides the
      {!Mdst_graph.Partition.blocks} layout; [record] keeps the executed
      schedule for {!schedule}.
      @raise Invalid_argument on an empty or disconnected graph,
        [domains <= 0] or beyond {!Shard.max_shards}, an invalid
        partition, or a latency model without a positive lookahead. *)

  (** {2 Running} *)

  val run_window :
    t -> until:float -> unit
  (** Advance the whole simulation to virtual time [until]: spawns
      [domains - 1] worker domains, runs shard 0 on the caller, joins.
      No-op when [until <= now t].  A worker exception aborts the window,
      poisons the engine and re-raises on the caller. *)

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  val run :
    t ->
    ?max_rounds:int ->
    ?window:float ->
    stop:(t -> bool) ->
    unit ->
    outcome
  (** Window-at-a-time driver: advances [window] (default 8.0) units of
      virtual time per {!run_window} and evaluates [stop] between windows
      (single-threaded, safe to inspect states).  Rounds are causal depth,
      as in {!Engine.run}. *)

  (** {2 Inspection — between windows only} *)

  val graph : t -> Mdst_graph.Graph.t
  val domains : t -> int

  val partition : t -> int array
  (** Node to shard assignment actually in use. *)

  val lookahead : t -> float

  val state : t -> int -> A.state
  val states : t -> A.state array

  val now : t -> float
  (** The horizon: virtual time the run is complete up to. *)

  val rounds : t -> int
  val deliveries : t -> int

  val events : t -> int
  (** Total executed events (ticks + deliveries) across shards. *)

  val metrics : t -> Metrics.t
  (** Merged copy of the per-shard records (allocates). *)

  val pending_events : t -> int

  val in_flight : t -> (int * int * A.msg) list
  (** Queued [(src, dst, msg)] sorted by arrival time — same shape as
      {!Engine.in_flight}; feeds the conformance model's channel seed. *)

  (** {2 Faults}

      Channel events only (drop / duplicate / reorder / corrupt), decided
      on the sending shard with {!Fault.rng_for} streams; windows compare
      against the sender shard's causal round.  Scheduled events (crash /
      cut / link) mutate the graph under every shard and are rejected. *)

  val install_faults : t -> Fault.plan -> unit
  (** @raise Invalid_argument when the plan contains scheduled events. *)

  val fault_stats : t -> Fault.stats
  val faults_pending : t -> bool

  (** {2 Recorded schedule} *)

  type sched_event =
    | Sched_tick of { node : int }
    | Sched_deliver of { src : int; dst : int }

  val schedule : t -> (float * sched_event) array
  (** The executed events merged across shards in [(time, shard, seq)]
      order — by construction a schedule the sequential engine accepts.
      @raise Invalid_argument unless created with [~record:true]. *)
end

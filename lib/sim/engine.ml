module Prng = Mdst_util.Prng
module Heap = Mdst_util.Heap
module Graph = Mdst_graph.Graph

let fifo_epsilon = 1e-6

(* What an attached observer sees; message payloads are reduced to their
   family label so observers stay generic across protocols. *)
type observation =
  | Obs_tick of { node : int; round : int; time : float }
  | Obs_deliver of { src : int; dst : int; label : string; round : int; time : float }
  | Obs_fault of { kind : string; detail : string; round : int; time : float }

module Make (A : Node.AUTOMATON) = struct
  type event = Tick of int | Deliver of { src : int; dst : int; msg : A.msg }

  type tagged = { event : event; tag : int }

  (* An installed Fault.plan, split into the channel events (consulted on
     every send) and the scheduled events (a round-ordered queue).  Each
     event carries its private PRNG stream so decisions never touch the
     engine's stream and survive deletion of sibling events (shrinking). *)
  type faults = {
    channel : (Fault.event * Prng.t) list;  (* in plan order *)
    mutable pending : (int * Fault.event * Prng.t) list;  (* sorted by round *)
    fremap : old_graph:Graph.t -> new_graph:Graph.t -> A.state array -> A.state array;
    mutable stats : Fault.stats;
  }

  type t = {
    mutable graph : Graph.t;
    latency : Latency.t;
    tick_period : float;
    rng : Prng.t;
    states : A.state array;
    ctxs : A.msg Node.ctx array;
    heap : tagged Heap.t;
    last_arrival : float array array;  (* per ordered pair, FIFO floor *)
    metrics : Metrics.t;
    mutable now : float;
    mutable round : int;
    mutable current_tag : int;  (* tag of the event being processed *)
    mutable deliveries : int;
    mutable observer : (observation -> unit) option;
    mutable faults : faults option;
  }

  type init =
    [ `Clean
    | `Random
    | `Custom of A.msg Node.ctx -> Prng.t -> A.state ]

  let note t ~kind ~detail =
    match t.observer with
    | Some f -> f (Obs_fault { kind; detail; round = t.round; time = t.now })
    | None -> ()

  (* [extra_delay = Some d] bypasses the FIFO floor: the delayed message may
     be overtaken by later sends on the same channel (reorder faults). *)
  let enqueue_raw t ?extra_delay ~src ~dst msg =
    let lat = Latency.sample t.latency t.rng ~src ~dst in
    let arrival =
      match extra_delay with
      | None ->
          let a = max (t.now +. lat) (t.last_arrival.(src).(dst) +. fifo_epsilon) in
          t.last_arrival.(src).(dst) <- a;
          a
      | Some d -> t.now +. lat +. d
    in
    Metrics.record_send t.metrics ~label:(A.msg_label msg)
      ~bits:(A.msg_bits ~n:(Graph.n t.graph) msg);
    Heap.push t.heap ~prio:arrival { event = Deliver { src; dst; msg }; tag = t.current_tag + 1 }

  (* The first channel event whose channel and round window match — and
     whose coin comes up — decides the fate of the message. *)
  let enqueue t ~src ~dst msg =
    let applicable ev =
      match (ev : Fault.event) with
      | Drop f -> f.src = src && f.dst = dst && f.window.from_round <= t.round && t.round <= f.window.upto_round
      | Duplicate f ->
          f.src = src && f.dst = dst && f.window.from_round <= t.round && t.round <= f.window.upto_round
      | Reorder f ->
          f.src = src && f.dst = dst && f.window.from_round <= t.round && t.round <= f.window.upto_round
      | Corrupt f ->
          f.src = src && f.dst = dst && f.window.from_round <= t.round && t.round <= f.window.upto_round
      | Crash _ | Cut _ | Link _ -> false
    in
    let chan = Printf.sprintf "%d>%d" src dst in
    let rec decide = function
      | [] -> enqueue_raw t ~src ~dst msg
      | (ev, rng) :: rest ->
          if not (applicable ev) then decide rest
          else begin
            match (ev : Fault.event) with
            | Drop f when Prng.bernoulli rng f.prob ->
                (match t.faults with
                | Some fs -> fs.stats <- { fs.stats with Fault.drops = fs.stats.Fault.drops + 1 }
                | None -> ());
                note t ~kind:"drop" ~detail:chan
            | Duplicate f when Prng.bernoulli rng f.prob ->
                (match t.faults with
                | Some fs ->
                    fs.stats <- { fs.stats with Fault.duplicates = fs.stats.Fault.duplicates + 1 }
                | None -> ());
                note t ~kind:"dup" ~detail:(Printf.sprintf "%s x%d" chan f.copies);
                for _ = 0 to f.copies do
                  enqueue_raw t ~src ~dst msg
                done
            | Reorder f when Prng.bernoulli rng f.prob ->
                (match t.faults with
                | Some fs ->
                    fs.stats <- { fs.stats with Fault.reorders = fs.stats.Fault.reorders + 1 }
                | None -> ());
                note t ~kind:"reorder" ~detail:chan;
                enqueue_raw t ~extra_delay:(Prng.float rng f.delay) ~src ~dst msg
            | Corrupt f when Prng.bernoulli rng f.prob -> (
                match A.random_msg t.ctxs.(src) rng with
                | Some msg' ->
                    (match t.faults with
                    | Some fs ->
                        fs.stats <-
                          { fs.stats with Fault.corruptions = fs.stats.Fault.corruptions + 1 }
                    | None -> ());
                    note t ~kind:"corrupt" ~detail:chan;
                    enqueue_raw t ~src ~dst msg'
                | None -> decide rest)
            | _ -> decide rest
          end
    in
    match t.faults with
    | None -> enqueue_raw t ~src ~dst msg
    | Some fs -> decide fs.channel

  let make_ctx t i =
    let neighbors = Graph.neighbors t.graph i in
    {
      Node.node = i;
      id = Graph.id t.graph i;
      n = Graph.n t.graph;
      neighbors;
      neighbor_ids = Array.map (Graph.id t.graph) neighbors;
      send =
        (fun dst msg ->
          if not (Graph.mem_edge t.graph i dst) then
            invalid_arg (Printf.sprintf "Engine: node %d sending to non-neighbour %d" i dst);
          enqueue t ~src:i ~dst msg);
      rng = Prng.create 0 (* replaced below *);
      now = (fun () -> t.now);
    }

  let create ?(latency = Latency.uniform ()) ?(tick_period = 1.0) ?(seed = 42)
      ?(init = `Clean) graph =
    let n = Graph.n graph in
    if n = 0 then invalid_arg "Engine.create: empty graph";
    if not (Mdst_graph.Algo.is_connected graph) then
      invalid_arg "Engine.create: graph must be connected";
    let rng = Prng.create seed in
    let t =
      {
        graph;
        latency;
        tick_period;
        rng;
        states = Array.make n (Obj.magic 0);
        ctxs = Array.make n (Obj.magic 0);
        heap = Heap.create ~capacity:(4 * n) ();
        last_arrival = Array.make_matrix n n neg_infinity;
        metrics = Metrics.create ();
        now = 0.0;
        round = 0;
        current_tag = 0;
        deliveries = 0;
        observer = None;
        faults = None;
      }
    in
    for i = 0 to n - 1 do
      let ctx = make_ctx t i in
      t.ctxs.(i) <- { ctx with Node.rng = Prng.split rng }
    done;
    (* Initial states are installed without letting handlers send. *)
    for i = 0 to n - 1 do
      let state =
        match init with
        | `Clean -> A.init t.ctxs.(i)
        | `Random -> A.random_state t.ctxs.(i) (Prng.split rng)
        | `Custom f -> f t.ctxs.(i) (Prng.split rng)
      in
      t.states.(i) <- state
    done;
    (* Adversarial starts also corrupt channel contents. *)
    (match init with
    | `Random ->
        Graph.iter_edges graph (fun u v ->
            let inject_on src dst =
              let k = Prng.int rng 3 in
              for _ = 1 to k do
                match A.random_msg t.ctxs.(src) rng with
                | Some msg -> enqueue t ~src ~dst msg
                | None -> ()
              done
            in
            inject_on u v;
            inject_on v u)
    | `Clean | `Custom _ -> ());
    (* Arm the periodic timers with a random phase each. *)
    for i = 0 to n - 1 do
      Heap.push t.heap ~prio:(Prng.float rng tick_period) { event = Tick i; tag = 1 }
    done;
    t

  let graph t = t.graph

  let state t i = t.states.(i)

  let states t = t.states

  let now t = t.now

  let rounds t = t.round

  let metrics t = t.metrics

  let pending_events t = Heap.length t.heap

  let in_flight_exists t pred =
    List.exists
      (fun (_, { event; _ }) ->
        match event with Deliver { msg; _ } -> pred msg | Tick _ -> false)
      (Heap.to_list t.heap)

  let set_state t i s = t.states.(i) <- s

  let observe t f = t.observer <- Some f

  let unobserve t = t.observer <- None

  let inject t ~src ~dst msg =
    if not (Graph.mem_edge t.graph src dst) then invalid_arg "Engine.inject: not adjacent";
    let saved = t.current_tag in
    t.current_tag <- t.round;
    enqueue t ~src ~dst msg;
    t.current_tag <- saved

  let reset_node t ?rng mode i =
    let rng = match rng with Some r -> r | None -> t.rng in
    t.states.(i) <-
      (match mode with `Init -> A.init t.ctxs.(i) | `Random -> A.random_state t.ctxs.(i) rng)

  let purge_channel t ~src ~dst =
    Heap.filter t.heap (fun _ { event; _ } ->
        match event with
        | Deliver d -> not (d.src = src && d.dst = dst)
        | Tick _ -> true)

  let reshape t ?(remap = fun ~old_graph:_ ~new_graph:_ states -> states) new_graph =
    if Graph.n new_graph <> Graph.n t.graph then
      invalid_arg "Engine.reshape: node count must be preserved";
    if not (Mdst_graph.Algo.is_connected new_graph) then
      invalid_arg "Engine.reshape: graph must stay connected";
    let old_graph = t.graph in
    (* Messages in flight on vanished edges are lost with the edge. *)
    ignore
      (Heap.filter t.heap (fun _ { event; _ } ->
           match event with
           | Deliver { src; dst; _ } -> Graph.mem_edge new_graph src dst
           | Tick _ -> true));
    t.graph <- new_graph;
    for i = 0 to Graph.n new_graph - 1 do
      let kept_rng = t.ctxs.(i).Node.rng in
      t.ctxs.(i) <- { (make_ctx t i) with Node.rng = kept_rng }
    done;
    let remapped = remap ~old_graph ~new_graph t.states in
    if remapped != t.states then Array.blit remapped 0 t.states 0 (Array.length t.states)

  let install_faults t ?(remap = fun ~old_graph:_ ~new_graph:_ states -> states) plan =
    let channel, scheduled =
      List.partition
        (fun ev ->
          match (ev : Fault.event) with
          | Drop _ | Duplicate _ | Reorder _ | Corrupt _ -> true
          | Crash _ | Cut _ | Link _ -> false)
        plan.Fault.events
    in
    let pending =
      List.stable_sort
        (fun (r1, _, _) (r2, _, _) -> compare r1 r2)
        (List.map
           (fun ev ->
             let r =
               match (ev : Fault.event) with
               | Crash { at_round; _ } | Cut { at_round; _ } | Link { at_round; _ } -> at_round
               | _ -> assert false
             in
             (r, ev, Fault.rng_for plan ev))
           scheduled)
    in
    t.faults <-
      Some
        {
          channel = List.map (fun ev -> (ev, Fault.rng_for plan ev)) channel;
          pending;
          fremap = remap;
          stats = Fault.zero_stats;
        }

  let fault_stats t = match t.faults with None -> Fault.zero_stats | Some fs -> fs.stats

  let faults_pending t = match t.faults with None -> false | Some fs -> fs.pending <> []

  let skip fs t ~detail =
    fs.stats <- { fs.stats with Fault.skipped = fs.stats.Fault.skipped + 1 };
    note t ~kind:"skip" ~detail

  (* Fire every scheduled event whose round has been reached.  Cut / Link
     must keep the network inside the paper's model (connected, simple), so
     infeasible events are skipped and recorded as such — this is what lets
     the shrinker delete graph structure without invalidating plans. *)
  let apply_due_faults t =
    match t.faults with
    | None -> ()
    | Some fs ->
        let n = Graph.n t.graph in
        let rec go () =
          match fs.pending with
          | (r, ev, rng) :: rest when r <= t.round ->
              fs.pending <- rest;
              (match (ev : Fault.event) with
              | Crash { node; mode; _ } ->
                  if node < 0 || node >= n then
                    skip fs t ~detail:(Printf.sprintf "crash %d out of range" node)
                  else begin
                    fs.stats <- { fs.stats with Fault.crashes = fs.stats.Fault.crashes + 1 };
                    note t ~kind:"crash"
                      ~detail:
                        (Printf.sprintf "%d %s" node
                           (match mode with `Init -> "init" | `Random -> "random"));
                    reset_node t ~rng mode node;
                    Array.iter
                      (fun nb ->
                        ignore (purge_channel t ~src:node ~dst:nb);
                        ignore (purge_channel t ~src:nb ~dst:node))
                      (Graph.neighbors t.graph node)
                  end
              | Cut { u; v; _ } ->
                  if u < 0 || v < 0 || u >= n || v >= n || not (Graph.mem_edge t.graph u v)
                  then skip fs t ~detail:(Printf.sprintf "cut %d-%d absent" u v)
                  else begin
                    let ids = Array.init n (Graph.id t.graph) in
                    let edges =
                      List.filter
                        (fun (a, b) -> not ((a = u && b = v) || (a = v && b = u)))
                        (Array.to_list (Graph.edges t.graph))
                    in
                    let candidate = Graph.of_edges ~ids ~n edges in
                    if not (Mdst_graph.Algo.is_connected candidate) then
                      skip fs t ~detail:(Printf.sprintf "cut %d-%d would disconnect" u v)
                    else begin
                      fs.stats <- { fs.stats with Fault.cuts = fs.stats.Fault.cuts + 1 };
                      note t ~kind:"cut" ~detail:(Printf.sprintf "%d-%d" u v);
                      reshape t ~remap:fs.fremap candidate
                    end
                  end
              | Link { u; v; _ } ->
                  if u < 0 || v < 0 || u >= n || v >= n || u = v || Graph.mem_edge t.graph u v
                  then skip fs t ~detail:(Printf.sprintf "link %d-%d infeasible" u v)
                  else begin
                    let ids = Array.init n (Graph.id t.graph) in
                    let edges = (u, v) :: Array.to_list (Graph.edges t.graph) in
                    fs.stats <- { fs.stats with Fault.links = fs.stats.Fault.links + 1 };
                    note t ~kind:"link" ~detail:(Printf.sprintf "%d-%d" u v);
                    reshape t ~remap:fs.fremap (Graph.of_edges ~ids ~n edges)
                  end
              | Drop _ | Duplicate _ | Reorder _ | Corrupt _ -> assert false);
              go ()
          | _ -> ()
        in
        go ()

  let corrupt t ?(fraction = 1.0) ?(channels = false) () =
    let n = Graph.n t.graph in
    let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
    let victims = Prng.sample_without_replacement t.rng (min k n) n in
    List.iter
      (fun i -> t.states.(i) <- A.random_state t.ctxs.(i) (Prng.split t.rng))
      victims;
    if channels then
      List.iter
        (fun i ->
          Array.iter
            (fun nb ->
              match A.random_msg t.ctxs.(i) t.rng with
              | Some msg -> inject t ~src:i ~dst:nb msg
              | None -> ())
            (Graph.neighbors t.graph i))
        victims;
    List.length victims

  let step t =
    apply_due_faults t;
    match Heap.pop t.heap with
    | None -> false
    | Some (time, { event; tag }) ->
        t.now <- max t.now time;
        t.current_tag <- tag;
        if tag > t.round then t.round <- tag;
        (match event with
        | Tick i ->
            (match t.observer with
            | Some f -> f (Obs_tick { node = i; round = t.round; time = t.now })
            | None -> ());
            t.states.(i) <- A.on_tick t.ctxs.(i) t.states.(i);
            Metrics.record_state_bits t.metrics
              (A.state_bits ~n:(Graph.n t.graph) t.states.(i));
            Heap.push t.heap ~prio:(t.now +. t.tick_period) { event = Tick i; tag = tag + 1 }
        | Deliver { src; dst; msg } ->
            (match t.observer with
            | Some f ->
                f (Obs_deliver
                     { src; dst; label = A.msg_label msg; round = t.round; time = t.now })
            | None -> ());
            t.deliveries <- t.deliveries + 1;
            Metrics.record_delivery t.metrics;
            t.states.(dst) <- A.on_message t.ctxs.(dst) t.states.(dst) ~src msg);
        true

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  let run t ?(max_rounds = 200_000) ?(check_every = 1) ~stop () =
    let next_check = ref (t.round + check_every) in
    let finished = ref (stop t) in
    while (not !finished) && t.round <= max_rounds do
      if not (step t) then finished := true
      else if t.round >= !next_check then begin
        next_check := t.round + check_every;
        if stop t then finished := true
      end
    done;
    {
      converged = stop t;
      rounds = t.round;
      time = t.now;
      deliveries = t.deliveries;
    }
end

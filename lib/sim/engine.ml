module Prng = Mdst_util.Prng
module Heap = Mdst_util.Heap
module Graph = Mdst_graph.Graph

let fifo_epsilon = 1e-6

(* What an attached observer sees; message payloads are reduced to their
   family label so observers stay generic across protocols. *)
type observation =
  | Obs_tick of { node : int; round : int; time : float }
  | Obs_deliver of { src : int; dst : int; label : string; round : int; time : float }

module Make (A : Node.AUTOMATON) = struct
  type event = Tick of int | Deliver of { src : int; dst : int; msg : A.msg }

  type tagged = { event : event; tag : int }

  type t = {
    graph : Graph.t;
    latency : Latency.t;
    tick_period : float;
    rng : Prng.t;
    states : A.state array;
    ctxs : A.msg Node.ctx array;
    heap : tagged Heap.t;
    last_arrival : float array array;  (* per ordered pair, FIFO floor *)
    metrics : Metrics.t;
    mutable now : float;
    mutable round : int;
    mutable current_tag : int;  (* tag of the event being processed *)
    mutable deliveries : int;
    mutable observer : (observation -> unit) option;
  }

  type init =
    [ `Clean
    | `Random
    | `Custom of A.msg Node.ctx -> Prng.t -> A.state ]

  let enqueue t ~src ~dst msg =
    let lat = Latency.sample t.latency t.rng ~src ~dst in
    let arrival = max (t.now +. lat) (t.last_arrival.(src).(dst) +. fifo_epsilon) in
    t.last_arrival.(src).(dst) <- arrival;
    Metrics.record_send t.metrics ~label:(A.msg_label msg)
      ~bits:(A.msg_bits ~n:(Graph.n t.graph) msg);
    Heap.push t.heap ~prio:arrival { event = Deliver { src; dst; msg }; tag = t.current_tag + 1 }

  let make_ctx t i =
    let neighbors = Graph.neighbors t.graph i in
    {
      Node.node = i;
      id = Graph.id t.graph i;
      n = Graph.n t.graph;
      neighbors;
      neighbor_ids = Array.map (Graph.id t.graph) neighbors;
      send =
        (fun dst msg ->
          if not (Graph.mem_edge t.graph i dst) then
            invalid_arg (Printf.sprintf "Engine: node %d sending to non-neighbour %d" i dst);
          enqueue t ~src:i ~dst msg);
      rng = Prng.create 0 (* replaced below *);
      now = (fun () -> t.now);
    }

  let create ?(latency = Latency.uniform ()) ?(tick_period = 1.0) ?(seed = 42)
      ?(init = `Clean) graph =
    let n = Graph.n graph in
    if n = 0 then invalid_arg "Engine.create: empty graph";
    if not (Mdst_graph.Algo.is_connected graph) then
      invalid_arg "Engine.create: graph must be connected";
    let rng = Prng.create seed in
    let t =
      {
        graph;
        latency;
        tick_period;
        rng;
        states = Array.make n (Obj.magic 0);
        ctxs = Array.make n (Obj.magic 0);
        heap = Heap.create ~capacity:(4 * n) ();
        last_arrival = Array.make_matrix n n neg_infinity;
        metrics = Metrics.create ();
        now = 0.0;
        round = 0;
        current_tag = 0;
        deliveries = 0;
        observer = None;
      }
    in
    for i = 0 to n - 1 do
      let ctx = make_ctx t i in
      t.ctxs.(i) <- { ctx with Node.rng = Prng.split rng }
    done;
    (* Initial states are installed without letting handlers send. *)
    for i = 0 to n - 1 do
      let state =
        match init with
        | `Clean -> A.init t.ctxs.(i)
        | `Random -> A.random_state t.ctxs.(i) (Prng.split rng)
        | `Custom f -> f t.ctxs.(i) (Prng.split rng)
      in
      t.states.(i) <- state
    done;
    (* Adversarial starts also corrupt channel contents. *)
    (match init with
    | `Random ->
        Graph.iter_edges graph (fun u v ->
            let inject_on src dst =
              let k = Prng.int rng 3 in
              for _ = 1 to k do
                match A.random_msg t.ctxs.(src) rng with
                | Some msg -> enqueue t ~src ~dst msg
                | None -> ()
              done
            in
            inject_on u v;
            inject_on v u)
    | `Clean | `Custom _ -> ());
    (* Arm the periodic timers with a random phase each. *)
    for i = 0 to n - 1 do
      Heap.push t.heap ~prio:(Prng.float rng tick_period) { event = Tick i; tag = 1 }
    done;
    t

  let graph t = t.graph

  let state t i = t.states.(i)

  let states t = t.states

  let now t = t.now

  let rounds t = t.round

  let metrics t = t.metrics

  let pending_events t = Heap.length t.heap

  let in_flight_exists t pred =
    List.exists
      (fun (_, { event; _ }) ->
        match event with Deliver { msg; _ } -> pred msg | Tick _ -> false)
      (Heap.to_list t.heap)

  let set_state t i s = t.states.(i) <- s

  let observe t f = t.observer <- Some f

  let unobserve t = t.observer <- None

  let inject t ~src ~dst msg =
    if not (Graph.mem_edge t.graph src dst) then invalid_arg "Engine.inject: not adjacent";
    let saved = t.current_tag in
    t.current_tag <- t.round;
    enqueue t ~src ~dst msg;
    t.current_tag <- saved

  let corrupt t ?(fraction = 1.0) ?(channels = false) () =
    let n = Graph.n t.graph in
    let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
    let victims = Prng.sample_without_replacement t.rng (min k n) n in
    List.iter
      (fun i -> t.states.(i) <- A.random_state t.ctxs.(i) (Prng.split t.rng))
      victims;
    if channels then
      List.iter
        (fun i ->
          Array.iter
            (fun nb ->
              match A.random_msg t.ctxs.(i) t.rng with
              | Some msg -> inject t ~src:i ~dst:nb msg
              | None -> ())
            (Graph.neighbors t.graph i))
        victims;
    List.length victims

  let step t =
    match Heap.pop t.heap with
    | None -> false
    | Some (time, { event; tag }) ->
        t.now <- max t.now time;
        t.current_tag <- tag;
        if tag > t.round then t.round <- tag;
        (match event with
        | Tick i ->
            (match t.observer with
            | Some f -> f (Obs_tick { node = i; round = t.round; time = t.now })
            | None -> ());
            t.states.(i) <- A.on_tick t.ctxs.(i) t.states.(i);
            Metrics.record_state_bits t.metrics
              (A.state_bits ~n:(Graph.n t.graph) t.states.(i));
            Heap.push t.heap ~prio:(t.now +. t.tick_period) { event = Tick i; tag = tag + 1 }
        | Deliver { src; dst; msg } ->
            (match t.observer with
            | Some f ->
                f (Obs_deliver
                     { src; dst; label = A.msg_label msg; round = t.round; time = t.now })
            | None -> ());
            t.deliveries <- t.deliveries + 1;
            Metrics.record_delivery t.metrics;
            t.states.(dst) <- A.on_message t.ctxs.(dst) t.states.(dst) ~src msg);
        true

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  let run t ?(max_rounds = 200_000) ?(check_every = 1) ~stop () =
    let next_check = ref (t.round + check_every) in
    let finished = ref (stop t) in
    while (not !finished) && t.round <= max_rounds do
      if not (step t) then finished := true
      else if t.round >= !next_check then begin
        next_check := t.round + check_every;
        if stop t then finished := true
      end
    done;
    {
      converged = stop t;
      rounds = t.round;
      time = t.now;
      deliveries = t.deliveries;
    }
end

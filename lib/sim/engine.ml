module Prng = Mdst_util.Prng
module Heap = Mdst_util.Heap
module Graph = Mdst_graph.Graph

let fifo_epsilon = 1e-6

(* What an attached observer sees; message payloads are reduced to their
   family label so observers stay generic across protocols. *)
type observation =
  | Obs_tick of { node : int; round : int; time : float }
  | Obs_deliver of { src : int; dst : int; label : string; round : int; time : float }
  | Obs_fault of { kind : string; detail : string; round : int; time : float }

module Make (A : Node.AUTOMATON) = struct
  (* One heap entry.  Single-level on purpose: a delivery used to be an
     inline [Deliver] record inside an {event; tag} wrapper (7 words); one
     entry is pushed and popped per simulated send, so the extra block was
     a visible slice of the protocol macro-benchmark's allocations (E20). *)
  type tagged =
    | Tick of { node : int; tag : int }
    | Deliver of { src : int; dst : int; msg : A.msg; tag : int }

  (* An installed Fault.plan.  Channel events are indexed by ordered channel
     ([src * n + dst]) so a send on an untampered channel costs one hash
     lookup and no list scan; scheduled events form a round-ordered queue.
     Each event carries its private PRNG stream so decisions never touch
     the engine's stream and survive deletion of sibling events
     (shrinking). *)
  type faults = {
    by_channel : (int, (Fault.event * Prng.t) list) Hashtbl.t;  (* in plan order *)
    mutable pending : (int * Fault.event * Prng.t) list;  (* sorted by round *)
    fremap : old_graph:Graph.t -> new_graph:Graph.t -> A.state array -> A.state array;
    mutable stats : Fault.stats;
  }

  type t = {
    mutable graph : Graph.t;
    latency : Latency.t;
    (* Cached [Latency.uniform_params]: when the model is the plain
       uniform, [enqueue_raw] inlines the draw — same generator step,
       bit-identical float arithmetic — instead of paying the closure
       call's float boxing on every send. *)
    lat_uniform : bool;
    lat_lo : float;
    lat_span : float;  (* hi -. lo, precomputed *)
    tick_period : float;
    rng : Prng.t;
    states : A.state array;
    ctxs : A.msg Node.ctx array;
    heap : tagged Heap.t;
    mutable fifo_floor : float array array;
        (* fifo_floor.(src).(k): FIFO floor of the channel from [src] to its
           k-th neighbour (same order as [Graph.neighbors]).  O(n + m) in
           total — the engine holds no per-ordered-pair structure — and
           rebuilt by [reshape], carrying the floors of surviving edges. *)
    metrics : Metrics.t;
    mutable now : float;
    mutable round : int;
    mutable current_tag : int;  (* tag of the event being processed *)
    mutable deliveries : int;
    mutable observer : (observation -> unit) option;
    mutable faults : faults option;
    mutable tampered_until : float;
        (* Latest arrival time of any message a fault-plan channel event
           created or modified (corrupted payloads, duplicate copies,
           reordered deliveries).  Deliveries execute in time order, so once
           [now] passes this, no adversarial payload is in flight any more
           — [faults_pending] holds until then, closing the window where a
           convergence check could declare victory with a tampered message
           still queued (delivered later, it breaks closure). *)
  }

  type init =
    [ `Clean
    | `Random
    | `Custom of A.msg Node.ctx -> Prng.t -> A.state ]

  (* [detail] is a thunk: fault labels are only materialized when a fault
     actually fires AND someone is listening. *)
  let note t ~kind ~detail =
    match t.observer with
    | Some f -> f (Obs_fault { kind; detail = detail (); round = t.round; time = t.now })
    | None -> ()

  (* Slot of [dst] in the sorted neighbour array of [src]; the channel's
     FIFO floor lives at that slot. *)
  let slot_in graph src dst =
    let nbs = Graph.neighbors graph src in
    let lo = ref 0 and hi = ref (Array.length nbs - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = Array.unsafe_get nbs mid in
      if v = dst then found := mid else if v < dst then lo := mid + 1 else hi := mid - 1
    done;
    if !found < 0 then
      invalid_arg (Printf.sprintf "Engine: %d -> %d is not a channel" src dst);
    !found

  let fresh_floors graph =
    Array.init (Graph.n graph) (fun u -> Array.make (Graph.degree graph u) neg_infinity)

  (* [rng] (default: the engine's stream) feeds the latency draw; fault
     primitives pass their own stream so they do not shift the fault-free
     schedule. *)
  let enqueue_raw t ?extra_delay ?rng ~src ~dst msg =
    let rng = match rng with Some r -> r | None -> t.rng in
    let lat =
      if t.lat_uniform then
        (* Exactly [lo +. Prng.float rng (hi -. lo)], with the float kept
           unboxed end to end (Prng.raw53 returns an immediate). *)
        t.lat_lo +. (t.lat_span *. (float_of_int (Prng.raw53 rng) /. 9007199254740992.0))
      else Latency.sample t.latency rng ~src ~dst
    in
    let arrival =
      match extra_delay with
      | None ->
          let floors = t.fifo_floor.(src) in
          let k = slot_in t.graph src dst in
          let a = max (t.now +. lat) (floors.(k) +. fifo_epsilon) in
          floors.(k) <- a;
          a
      (* [extra_delay = Some d] bypasses the FIFO floor: the delayed message
         may be overtaken by later sends on the same channel (reorder
         faults). *)
      | Some d -> t.now +. lat +. d
    in
    Metrics.record_send t.metrics ~label:(A.msg_label msg)
      ~bits:(A.msg_bits ~n:(Graph.n t.graph) msg);
    Heap.push t.heap ~prio:arrival (Deliver { src; dst; msg; tag = t.current_tag + 1 });
    arrival

  let in_window (w : Fault.window) round = w.from_round <= round && round <= w.upto_round

  (* The first channel event whose round window is open — and whose coin
     comes up — decides the fate of the message.  Only events installed for
     this exact ordered channel are consulted (see [install_faults]). *)
  let enqueue ?rng t ~src ~dst msg =
    (* Tampered enqueues extend the adversarial-traffic horizon consulted by
       [faults_pending]: a tampered message is adversarial state until
       delivered, even after its event's round window closes. *)
    let mark arrival = if arrival > t.tampered_until then t.tampered_until <- arrival in
    let tamper fs events =
      let chan () = Printf.sprintf "%d>%d" src dst in
      let rec decide = function
        | [] -> ignore (enqueue_raw t ?rng ~src ~dst msg)
        | (ev, erng) :: rest -> (
            match (ev : Fault.event) with
            | Drop f when in_window f.window t.round && Prng.bernoulli erng f.prob ->
                fs.stats <- { fs.stats with Fault.drops = fs.stats.Fault.drops + 1 };
                note t ~kind:"drop" ~detail:chan
            | Duplicate f when in_window f.window t.round && Prng.bernoulli erng f.prob ->
                fs.stats <- { fs.stats with Fault.duplicates = fs.stats.Fault.duplicates + 1 };
                note t ~kind:"dup" ~detail:(fun () -> Printf.sprintf "%s x%d" (chan ()) f.copies);
                for _ = 0 to f.copies do
                  mark (enqueue_raw t ?rng ~src ~dst msg)
                done
            | Reorder f when in_window f.window t.round && Prng.bernoulli erng f.prob ->
                fs.stats <- { fs.stats with Fault.reorders = fs.stats.Fault.reorders + 1 };
                note t ~kind:"reorder" ~detail:chan;
                mark (enqueue_raw t ~extra_delay:(Prng.float erng f.delay) ?rng ~src ~dst msg)
            | Corrupt f when in_window f.window t.round && Prng.bernoulli erng f.prob -> (
                match A.random_msg t.ctxs.(src) erng with
                | Some msg' ->
                    fs.stats <-
                      { fs.stats with Fault.corruptions = fs.stats.Fault.corruptions + 1 };
                    note t ~kind:"corrupt" ~detail:chan;
                    mark (enqueue_raw t ?rng ~src ~dst msg')
                | None -> decide rest)
            | _ -> decide rest)
      in
      decide events
    in
    match t.faults with
    | None -> ignore (enqueue_raw t ?rng ~src ~dst msg)
    | Some fs -> (
        match Hashtbl.find_opt fs.by_channel ((src * Graph.n t.graph) + dst) with
        | None -> ignore (enqueue_raw t ?rng ~src ~dst msg)
        | Some events -> tamper fs events)

  let make_ctx t i =
    let neighbors = Graph.neighbors t.graph i in
    {
      Node.node = i;
      id = Graph.id t.graph i;
      n = Graph.n t.graph;
      neighbors;
      neighbor_ids = Array.map (Graph.id t.graph) neighbors;
      send =
        (fun dst msg ->
          if not (Graph.mem_edge t.graph i dst) then
            invalid_arg (Printf.sprintf "Engine: node %d sending to non-neighbour %d" i dst);
          enqueue t ~src:i ~dst msg);
      note_suppressed = (fun k -> Metrics.record_suppressed t.metrics k);
      rng = Prng.create 0 (* replaced below *);
      now = (fun () -> t.now);
    }

  let create ?(latency = Latency.uniform ()) ?(tick_period = 1.0) ?(seed = 42)
      ?(init = `Clean) graph =
    let n = Graph.n graph in
    if n = 0 then invalid_arg "Engine.create: empty graph";
    if not (Mdst_graph.Algo.is_connected graph) then
      invalid_arg "Engine.create: graph must be connected";
    let rng = Prng.create seed in
    let lat_lo, lat_span, lat_uniform =
      match Latency.uniform_params latency with
      | Some (lo, hi) -> (lo, hi -. lo, true)
      | None -> (0.0, 0.0, false)
    in
    let t =
      {
        graph;
        latency;
        lat_uniform;
        lat_lo;
        lat_span;
        tick_period;
        rng;
        states = Array.make n (Obj.magic 0);
        ctxs = Array.make n (Obj.magic 0);
        heap = Heap.create ~capacity:(4 * n) ();
        fifo_floor = fresh_floors graph;
        metrics = Metrics.create ();
        now = 0.0;
        round = 0;
        current_tag = 0;
        deliveries = 0;
        observer = None;
        faults = None;
        tampered_until = neg_infinity;
      }
    in
    for i = 0 to n - 1 do
      let ctx = make_ctx t i in
      t.ctxs.(i) <- { ctx with Node.rng = Prng.split rng }
    done;
    (* Initial states are installed without letting handlers send. *)
    for i = 0 to n - 1 do
      let state =
        match init with
        | `Clean -> A.init t.ctxs.(i)
        | `Random -> A.random_state t.ctxs.(i) (Prng.split rng)
        | `Custom f -> f t.ctxs.(i) (Prng.split rng)
      in
      t.states.(i) <- state
    done;
    (* Adversarial starts also corrupt channel contents. *)
    (match init with
    | `Random ->
        Graph.iter_edges graph (fun u v ->
            let inject_on src dst =
              let k = Prng.int rng 3 in
              for _ = 1 to k do
                match A.random_msg t.ctxs.(src) rng with
                | Some msg -> enqueue t ~src ~dst msg
                | None -> ()
              done
            in
            inject_on u v;
            inject_on v u)
    | `Clean | `Custom _ -> ());
    (* Arm the periodic timers with a random phase each. *)
    for i = 0 to n - 1 do
      Heap.push t.heap ~prio:(Prng.float rng tick_period) (Tick { node = i; tag = 1 })
    done;
    t

  let graph t = t.graph

  let state t i = t.states.(i)

  let states t = t.states

  let now t = t.now

  let rounds t = t.round

  let metrics t = t.metrics

  let pending_events t = Heap.length t.heap

  let in_flight_exists t pred =
    List.exists
      (fun (_, ev) -> match ev with Deliver { msg; _ } -> pred msg | Tick _ -> false)
      (Heap.to_list t.heap)

  let set_state t i s = t.states.(i) <- s

  let observe t f = t.observer <- Some f

  let unobserve t = t.observer <- None

  let inject_with ?rng t ~src ~dst msg =
    if not (Graph.mem_edge t.graph src dst) then invalid_arg "Engine.inject: not adjacent";
    let saved = t.current_tag in
    t.current_tag <- t.round;
    enqueue ?rng t ~src ~dst msg;
    t.current_tag <- saved

  let inject t ~src ~dst msg = inject_with t ~src ~dst msg

  let reset_node t ?rng mode i =
    let rng = match rng with Some r -> r | None -> t.rng in
    t.states.(i) <-
      (match mode with `Init -> A.init t.ctxs.(i) | `Random -> A.random_state t.ctxs.(i) rng)

  (* Queued messages are lost; the channel's FIFO floor is deliberately
     KEPT (see engine.mli): later traffic stays ordered after the lost
     messages' arrival times, as on a real FIFO link that lost content. *)
  let purge_channel t ~src ~dst =
    Heap.filter t.heap (fun _ ev ->
        match ev with
        | Deliver d -> not (d.src = src && d.dst = dst)
        | Tick _ -> true)

  let reshape t ?(remap = fun ~old_graph:_ ~new_graph:_ states -> states) new_graph =
    if Graph.n new_graph <> Graph.n t.graph then
      invalid_arg "Engine.reshape: node count must be preserved";
    if not (Mdst_graph.Algo.is_connected new_graph) then
      invalid_arg "Engine.reshape: graph must stay connected";
    let old_graph = t.graph in
    (* Messages in flight on vanished edges are lost with the edge. *)
    ignore
      (Heap.filter t.heap (fun _ ev ->
           match ev with
           | Deliver { src; dst; _ } -> Graph.mem_edge new_graph src dst
           | Tick _ -> true));
    (* Surviving channels keep their FIFO floor; new channels (and re-added
       ones — their in-flight messages died with the edge) start fresh. *)
    let old_floors = t.fifo_floor in
    t.fifo_floor <-
      Array.init (Graph.n new_graph) (fun u ->
          Array.map
            (fun v ->
              if Graph.mem_edge old_graph u v then old_floors.(u).(slot_in old_graph u v)
              else neg_infinity)
            (Graph.neighbors new_graph u));
    t.graph <- new_graph;
    for i = 0 to Graph.n new_graph - 1 do
      let kept_rng = t.ctxs.(i).Node.rng in
      t.ctxs.(i) <- { (make_ctx t i) with Node.rng = kept_rng }
    done;
    let remapped = remap ~old_graph ~new_graph t.states in
    if remapped != t.states then Array.blit remapped 0 t.states 0 (Array.length t.states)

  let install_faults t ?(remap = fun ~old_graph:_ ~new_graph:_ states -> states) plan =
    let n = Graph.n t.graph in
    let channel, scheduled =
      List.partition
        (fun ev ->
          match (ev : Fault.event) with
          | Drop _ | Duplicate _ | Reorder _ | Corrupt _ -> true
          | Crash _ | Cut _ | Link _ -> false)
        plan.Fault.events
    in
    let by_channel = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        let src, dst =
          match (ev : Fault.event) with
          | Drop { src; dst; _ } | Duplicate { src; dst; _ } | Reorder { src; dst; _ }
          | Corrupt { src; dst; _ } ->
              (src, dst)
          | Crash _ | Cut _ | Link _ -> assert false
        in
        (* Events naming an impossible channel can never fire; indexing them
           would alias a real channel's key. *)
        if src >= 0 && src < n && dst >= 0 && dst < n && src <> dst then begin
          let key = (src * n) + dst in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_channel key) in
          Hashtbl.replace by_channel key (prev @ [ (ev, Fault.rng_for plan ev) ])
        end)
      channel;
    let pending =
      List.stable_sort
        (fun (r1, _, _) (r2, _, _) -> compare r1 r2)
        (List.map
           (fun ev ->
             let r =
               match (ev : Fault.event) with
               | Crash { at_round; _ } | Cut { at_round; _ } | Link { at_round; _ } -> at_round
               | _ -> assert false
             in
             (r, ev, Fault.rng_for plan ev))
           scheduled)
    in
    t.faults <- Some { by_channel; pending; fremap = remap; stats = Fault.zero_stats }

  let fault_stats t = match t.faults with None -> Fault.zero_stats | Some fs -> fs.stats

  let faults_pending t =
    match t.faults with
    | None -> false
    | Some fs -> fs.pending <> [] || t.now <= t.tampered_until

  let skip fs t ~detail =
    fs.stats <- { fs.stats with Fault.skipped = fs.stats.Fault.skipped + 1 };
    note t ~kind:"skip" ~detail

  (* Fire every scheduled event whose round has been reached.  Cut / Link
     must keep the network inside the paper's model (connected, simple), so
     infeasible events are skipped and recorded as such — this is what lets
     the shrinker delete graph structure without invalidating plans. *)
  let apply_due_faults t =
    match t.faults with
    | None -> ()
    | Some fs ->
        let n = Graph.n t.graph in
        let rec go () =
          match fs.pending with
          | (r, ev, rng) :: rest when r <= t.round ->
              fs.pending <- rest;
              (match (ev : Fault.event) with
              | Crash { node; mode; _ } ->
                  if node < 0 || node >= n then
                    skip fs t ~detail:(fun () -> Printf.sprintf "crash %d out of range" node)
                  else begin
                    fs.stats <- { fs.stats with Fault.crashes = fs.stats.Fault.crashes + 1 };
                    note t ~kind:"crash"
                      ~detail:(fun () ->
                        Printf.sprintf "%d %s" node
                          (match mode with `Init -> "init" | `Random -> "random"));
                    reset_node t ~rng mode node;
                    Array.iter
                      (fun nb ->
                        ignore (purge_channel t ~src:node ~dst:nb);
                        ignore (purge_channel t ~src:nb ~dst:node))
                      (Graph.neighbors t.graph node)
                  end
              | Cut { u; v; _ } ->
                  if u < 0 || v < 0 || u >= n || v >= n || not (Graph.mem_edge t.graph u v)
                  then skip fs t ~detail:(fun () -> Printf.sprintf "cut %d-%d absent" u v)
                  else begin
                    let ids = Array.init n (Graph.id t.graph) in
                    let edges =
                      List.filter
                        (fun (a, b) -> not ((a = u && b = v) || (a = v && b = u)))
                        (Array.to_list (Graph.edges t.graph))
                    in
                    let candidate = Graph.of_edges ~ids ~n edges in
                    if not (Mdst_graph.Algo.is_connected candidate) then
                      skip fs t ~detail:(fun () ->
                          Printf.sprintf "cut %d-%d would disconnect" u v)
                    else begin
                      fs.stats <- { fs.stats with Fault.cuts = fs.stats.Fault.cuts + 1 };
                      note t ~kind:"cut" ~detail:(fun () -> Printf.sprintf "%d-%d" u v);
                      reshape t ~remap:fs.fremap candidate
                    end
                  end
              | Link { u; v; _ } ->
                  if u < 0 || v < 0 || u >= n || v >= n || u = v || Graph.mem_edge t.graph u v
                  then skip fs t ~detail:(fun () -> Printf.sprintf "link %d-%d infeasible" u v)
                  else begin
                    let ids = Array.init n (Graph.id t.graph) in
                    let edges = (u, v) :: Array.to_list (Graph.edges t.graph) in
                    fs.stats <- { fs.stats with Fault.links = fs.stats.Fault.links + 1 };
                    note t ~kind:"link" ~detail:(fun () -> Printf.sprintf "%d-%d" u v);
                    reshape t ~remap:fs.fremap (Graph.of_edges ~ids ~n edges)
                  end
              | Drop _ | Duplicate _ | Reorder _ | Corrupt _ -> assert false);
              go ()
          | _ -> ()
        in
        go ()

  let corrupt t ?(fraction = 1.0) ?(channels = false) () =
    let n = Graph.n t.graph in
    let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
    let victims = Prng.sample_without_replacement t.rng (min k n) n in
    (* One split stream per victim feeds its state corruption AND (with
       [channels]) its injected payloads and their latency draws, so the
       engine's own stream advances by exactly [k] splits either way — the
       post-corruption tick/latency schedule does not depend on whether
       channel corruption was requested. *)
    List.iter
      (fun i ->
        let vrng = Prng.split t.rng in
        t.states.(i) <- A.random_state t.ctxs.(i) vrng;
        if channels then begin
          (* Mutant "corrupt-shared-stream" reintroduces the historical
             coupling this split-stream design removed: payload and latency
             draws coming from the engine's own stream, shifting the
             post-corruption schedule when channel corruption is on. *)
          let crng =
            if Mdst_util.Mutation.enabled "corrupt-shared-stream" then t.rng else vrng
          in
          Array.iter
            (fun nb ->
              match A.random_msg t.ctxs.(i) crng with
              | Some msg -> inject_with ~rng:crng t ~src:i ~dst:nb msg
              | None -> ())
            (Graph.neighbors t.graph i)
        end)
      victims;
    List.length victims

  (* Execute one already-dequeued event; shared by [step] (priority order)
     and [step_with] (caller-chosen order). *)
  let execute t time ev =
    t.now <- max t.now time;
    let tag = match ev with Tick { tag; _ } | Deliver { tag; _ } -> tag in
    t.current_tag <- tag;
    if tag > t.round then t.round <- tag;
    match ev with
    | Tick { node = i; _ } ->
        (match t.observer with
        | Some f -> f (Obs_tick { node = i; round = t.round; time = t.now })
        | None -> ());
        t.states.(i) <- A.on_tick t.ctxs.(i) t.states.(i);
        Metrics.record_state_bits t.metrics
          (A.state_bits ~n:(Graph.n t.graph) t.states.(i));
        Heap.push t.heap ~prio:(t.now +. t.tick_period) (Tick { node = i; tag = tag + 1 })
    | Deliver { src; dst; msg; _ } ->
        (match t.observer with
        | Some f ->
            f (Obs_deliver
                 { src; dst; label = A.msg_label msg; round = t.round; time = t.now })
        | None -> ());
        t.deliveries <- t.deliveries + 1;
        Metrics.record_delivery t.metrics;
        t.states.(dst) <- A.on_message t.ctxs.(dst) t.states.(dst) ~src msg

  let step t =
    apply_due_faults t;
    if Heap.is_empty t.heap then false
    else begin
      (* top_prio + drop_min instead of pop: no option/tuple per event. *)
      let time = Heap.top_prio t.heap in
      let ev = Heap.drop_min t.heap in
      execute t time ev;
      true
    end

  let in_flight t =
    Heap.to_list t.heap
    |> List.filter_map (fun (prio, ev) ->
           match ev with
           | Deliver { src; dst; msg; _ } -> Some (prio, (src, dst, msg))
           | Tick _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd

  type choice =
    | Choose_tick of { node : int }
    | Choose_deliver of { src : int; dst : int; label : string }

  let step_with t ~choose =
    apply_due_faults t;
    if Heap.is_empty t.heap then false
    else begin
      let n = Graph.n t.graph in
      let entries = Heap.to_list t.heap in
      (* Eligible: every armed tick, plus the oldest (min arrival time,
         i.e. FIFO head) queued message of each ordered channel. *)
      let ticks =
        List.filter_map
          (fun (prio, ev) ->
            match ev with Tick { node; _ } -> Some (node, (prio, ev)) | Deliver _ -> None)
          entries
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let heads = Hashtbl.create 16 in
      List.iter
        (fun (prio, ev) ->
          match ev with
          | Deliver { src; dst; _ } -> (
              let key = (src * n) + dst in
              match Hashtbl.find_opt heads key with
              | Some (p0, _) when p0 <= prio -> ()
              | _ -> Hashtbl.replace heads key (prio, ev))
          | Tick _ -> ())
        entries;
      let channels =
        Hashtbl.fold (fun key entry acc -> (key, entry) :: acc) heads []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let picks = Array.of_list (List.map snd ticks @ List.map snd channels) in
      let options =
        Array.map
          (fun (_, ev) ->
            match ev with
            | Tick { node; _ } -> Choose_tick { node }
            | Deliver { src; dst; msg; _ } -> Choose_deliver { src; dst; label = A.msg_label msg })
          picks
      in
      let idx = choose options in
      if idx < 0 || idx >= Array.length picks then
        invalid_arg
          (Printf.sprintf "Engine.step_with: choice %d out of range [0, %d)" idx
             (Array.length picks));
      let time, ev = picks.(idx) in
      (* Remove exactly the chosen entry; events are freshly allocated per
         push, so physical identity picks it out of the heap uniquely. *)
      ignore (Heap.filter t.heap (fun _ e -> not (e == ev)));
      execute t time ev;
      true
    end

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  let run t ?(max_rounds = 200_000) ?(check_every = 1) ~stop () =
    let next_check = ref (t.round + check_every) in
    let finished = ref (stop t) in
    while (not !finished) && t.round <= max_rounds do
      if not (step t) then finished := true
      else if t.round >= !next_check then begin
        next_check := t.round + check_every;
        if stop t then finished := true
      end
    done;
    {
      converged = stop t;
      rounds = t.round;
      time = t.now;
      deliveries = t.deliveries;
    }
end

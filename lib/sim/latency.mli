(** Channel latency models — the "daemon" of the asynchronous model.

    A latency model assigns each transmission a positive delay; the engine
    preserves per-channel FIFO order regardless of the sampled values (late
    messages never overtake earlier ones on the same link).  Varying the
    model exercises different interleavings, which is how experiment E10
    probes scheduler robustness. *)

type t

val constant : float -> t
(** Every message takes exactly [d] time units: the synchronous daemon. *)

val uniform : ?lo:float -> ?hi:float -> unit -> t
(** Uniform in [\[lo, hi\]] (default [0.5, 1.5]): the random daemon. *)

val exponential : ?mean:float -> unit -> t
(** Heavy-ish tail; occasionally very slow deliveries. *)

val slow_links : ?factor:float -> ?fraction:float -> base:t -> int -> t
(** [slow_links ~base seed]: a deterministic [fraction] (default 0.15) of
    ordered links is slowed by [factor] (default 10): an adversary that
    starves fixed channels. *)

val node_skew : ?max_factor:float -> base:t -> int -> t
(** Per-receiver skew: some nodes are persistently slow to be reached,
    emulating an unfair daemon. *)

val sample : t -> Mdst_util.Prng.t -> src:int -> dst:int -> float

val uniform_params : t -> (float * float) option
(** [Some (lo, hi)] iff the model is the plain {!uniform}: the engine
    inlines that draw on its per-send hot path (same single generator
    step, bit-identical arithmetic) to avoid closure-call float
    boxing.  Composite models wrapping a uniform base report [None]. *)

val min_delay : t -> float
(** Positive lower bound on every delay the model can emit, over all
    channels and draws.  This is the {e lookahead} of the sharded parallel
    engine ({!Pengine}): a shard that has executed everything before time
    [T] cannot cause a delivery anywhere before [T + min_delay], so peers
    may safely run up to that horizon.  Models must honour their declared
    bound — the built-in ones do by construction ([constant d] returns
    [d]; [uniform] its [lo]; [exponential] its additive floor; the
    composite adversaries scale their base's bound by the smallest factor
    they can apply). *)

val name : t -> string

val by_name : string -> int -> t
(** ["constant" | "uniform" | "exponential" | "slow-links" | "node-skew"],
    seeded for the deterministic adversaries.
    @raise Invalid_argument on unknown names. *)

val names : string list

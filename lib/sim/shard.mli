(** Scaffolding for the sharded parallel engine ({!Pengine}): event-key
    encoding, published per-shard clocks, cross-shard adjacency and
    wait-loop backoff. *)

val shard_bits : int
val seq_bits : int

val max_shards : int
(** [2 ^ shard_bits]: the largest shard count the key encoding admits. *)

val key : shard:int -> seq:int -> int
(** Packs the creating shard and its per-shard creation counter into one
    int ordering as [(shard, seq)] lexicographically.  Used as the heap
    tie-break so the [(time, shard, seq)] total order is a property of
    the event, independent of inbox drain timing. *)

val key_shard : int -> int
val key_seq : int -> int

module Clocks : sig
  (** One published clock per shard: a lower bound on the timestamp of
      anything that shard may still send.  Reads are allocation-free; a
      publish boxes one float (once per synchronisation pass — noise). *)

  type t

  val create : int -> t
  (** All clocks start at virtual time 0. *)

  val get : t -> int -> float

  val advance : t -> int -> float -> unit
  (** Monotone publish; values below the current clock are ignored.  Must
      only be called from the owning shard's domain (single-writer).
      @raise Invalid_argument on negative or NaN values. *)

  val infinity_ : t -> int -> unit
  (** Poison the clock so peers stop waiting on this shard (worker
      failure path). *)
end

val in_shards : Mdst_graph.Graph.t -> int array -> k:int -> int array array
(** [in_shards graph part ~k] gives, per shard, the ascending list of
    other shards sharing a cut edge with it — the clocks it must watch
    and the mailboxes it must drain. *)

val backoff : int -> unit
(** [backoff n] waits proportionally to the number [n] of consecutive
    fruitless polls: spins first, then short sleeps.  The sleep phase
    matters when domains outnumber cores — a pure spin starves the peer
    being waited on. *)

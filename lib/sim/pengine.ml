(* Sharded parallel discrete-event engine: conservative PDES over OCaml 5
   domains.

   The graph is partitioned into [k] node-shards ({!Mdst_graph.Partition});
   each shard owns the event heap, PRNG draws, metrics and FIFO floors of
   its nodes and runs on its own domain.  Cross-shard sends travel through
   bounded SPSC mailboxes ({!Mdst_util.Mailbox}); synchronisation is the
   classic conservative protocol with the null messages collapsed into one
   published clock per shard ({!Shard.Clocks}):

     - every latency model guarantees a positive minimum delay
       ([Latency.min_delay], the {e lookahead} d): a shard whose clock
       reads [P] cannot cause a delivery anywhere before [P + d];
     - a shard repeatedly (1) reads the clocks of the shards with an edge
       into it, taking the minimum [hmin], (2) drains its inboxes,
       (3) executes heap events strictly below
       [B = min (hmin + d) window_end], (4) publishes
       [min next_local_event (hmin + d)].

   The read -> drain -> execute -> publish order is what makes [B] sound:
   a message from shard [s'] timestamped below [hmin + d] was necessarily
   pushed before we read [s']'s clock (its sender executed below its
   published bound), so step (2) sees it.  Progress is the standard
   argument: the globally least published clock rises by at least [d] per
   round of passes, so the shard holding the globally next event always
   reaches a bound above it.

   Determinism is non-negotiable and rests on two mechanisms:

     - {b (time, shard, seq) total order}: every event carries the packed
       key of its creating shard and that shard's creation counter
       ({!Shard.key}); heaps tie-break on it ({!Mdst_util.Heap.push_at}),
       so the order is a property of the event, independent of when a
       drain happened to pull it out of a mailbox.  A fixed (seed, k) is
       bit-reproducible.
     - {b k-independent timestamps}: [create] replays the sequential
       {!Engine.create} draw-for-draw (same root stream: ctx splits, init
       states, `Random channel injection, tick phases), and post-create
       sends draw latency from per-node streams split off afterwards in
       node order.  Node [i]'s draws depend only on node [i]'s execution
       history, which depends only on event timestamps — so the full
       timestamped schedule is invariant in [k].  Runs with different
       shard counts execute the same events at the same virtual times and
       can only differ on cross-shard ties at {e exactly} equal float
       times (measure-zero under the stochastic latency models).

   Fault plans are supported for channel events only (drop / duplicate /
   reorder / corrupt): they are decided on the sending shard with the
   per-event private streams of {!Fault.rng_for}, so they parallelise for
   free.  Scheduled events (crash / cut / link) mutate the graph and the
   partition under every shard's feet and are rejected. *)

module Prng = Mdst_util.Prng
module Heap = Mdst_util.Heap
module Mailbox = Mdst_util.Mailbox
module Graph = Mdst_graph.Graph
module Partition = Mdst_graph.Partition

module Make (A : Node.AUTOMATON) = struct
  type tagged =
    | Tick of { node : int; tag : int }
    | Deliver of { src : int; dst : int; msg : A.msg; tag : int }

  type packet = { p_time : float; p_key : int; p_ev : tagged }

  type shard = {
    sid : int;
    heap : tagged Heap.t;
    mutable seq : int;  (* creation counter; feeds Shard.key *)
    mutable now : float;
    mutable current_tag : int;
    mutable rounds : int;
    mutable deliveries : int;
    mutable executed : int;
    metrics : Metrics.t;  (* per-shard: the hot path never contends *)
    in_shards : int array;  (* shards with a cut edge into us *)
    inboxes : packet Mailbox.t array;  (* slot s' = ring written by shard s' *)
    mutable sched : (float * int * int) list;  (* recording; reversed *)
    mutable fstats : Fault.stats;
    mutable tampered_until : float;
  }

  type faults = {
    by_channel : (int, (Fault.event * Prng.t) list) Hashtbl.t;
        (* Frozen after install_faults; concurrent find_opt on a
           non-resizing table is safe, and each ordered channel is only
           ever consulted by its source node's shard. *)
  }

  type t = {
    graph : Graph.t;
    latency : Latency.t;
    lat_uniform : bool;
    lat_lo : float;
    lat_span : float;
    tick_period : float;
    lookahead : float;  (* Latency.min_delay; must be > 0 *)
    rng : Prng.t;  (* root stream; only used by create *)
    k : int;
    part : int array;  (* node -> shard *)
    shards : shard array;
    clocks : Shard.Clocks.t;
    states : A.state array;
    ctxs : A.msg Node.ctx array;
    lat_rngs : Prng.t array;
        (* Per-node latency streams, split from the root AFTER create's
           draws: timestamps depend on (seed, node history), never on k. *)
    fifo_floor : float array array;
        (* fifo_floor.(src) is written only by shard part.(src). *)
    recording : bool;
    mutable running : bool;  (* inside run_window: route sends via mailboxes *)
    mutable horizon : float;  (* virtual time the run is complete up to *)
    mutable poisoned : bool;  (* a window died; the state is not trustworthy *)
    mutable faults : faults option;
    abort : bool Atomic.t;
    done_count : int Atomic.t;
    failure : (exn * Printexc.raw_backtrace) option Atomic.t;
  }

  type init =
    [ `Clean
    | `Random
    | `Custom of A.msg Node.ctx -> Prng.t -> A.state ]

  exception Aborted
  (* Internal: a peer shard failed; unwind this worker quietly. *)

  (* Must equal Engine's constant — the conformance replay would flag a
     drift as a FIFO/timestamp mismatch. *)
  let fifo_epsilon = Engine.fifo_epsilon

  let slot_in graph src dst =
    let nbs = Graph.neighbors graph src in
    let lo = ref 0 and hi = ref (Array.length nbs - 1) in
    let found = ref (-1) in
    while !found < 0 && !lo <= !hi do
      let mid = (!lo + !hi) / 2 in
      let v = Array.unsafe_get nbs mid in
      if v = dst then found := mid else if v < dst then lo := mid + 1 else hi := mid - 1
    done;
    if !found < 0 then
      invalid_arg (Printf.sprintf "Pengine: %d -> %d is not a channel" src dst);
    !found

  let drain_inboxes sh =
    let got = ref false in
    Array.iter
      (fun s' ->
        let mb = sh.inboxes.(s') in
        let more = ref true in
        while !more do
          match Mailbox.try_pop mb with
          | Some pkt ->
              got := true;
              Heap.push_at sh.heap ~prio:pkt.p_time ~seq:pkt.p_key pkt.p_ev
          | None -> more := false
        done)
      sh.in_shards;
    !got

  (* Backpressure without deadlock: while the receiver's ring is full we
     drain our OWN inboxes (so a peer blocked pushing to us can advance)
     and retry.  Drained events only enter the heap — everything arriving
     now is timestamped at or above our current execution bound, so the
     insertion cannot disturb an execution pass in progress. *)
  let push_remote t sh ds pkt =
    let mb = t.shards.(ds).inboxes.(sh.sid) in
    if not (Mailbox.try_push mb pkt) then begin
      let n = ref 0 in
      while not (Mailbox.try_push mb pkt) do
        if Atomic.get t.abort then raise Aborted;
        ignore (drain_inboxes sh);
        Shard.backoff !n;
        incr n
      done
    end

  (* Mirrors Engine.enqueue_raw, with the sending shard explicit.  The
     latency stream defaults to the per-node split of [src]; create and
     fault primitives pass their own. *)
  let enqueue_raw t sh ?extra_delay ?rng ~src ~dst msg =
    let rng = match rng with Some r -> r | None -> t.lat_rngs.(src) in
    let lat =
      if t.lat_uniform then
        t.lat_lo +. (t.lat_span *. (float_of_int (Prng.raw53 rng) /. 9007199254740992.0))
      else Latency.sample t.latency rng ~src ~dst
    in
    let arrival =
      match extra_delay with
      | None ->
          let floors = t.fifo_floor.(src) in
          let k = slot_in t.graph src dst in
          let a = max (sh.now +. lat) (floors.(k) +. fifo_epsilon) in
          floors.(k) <- a;
          a
      | Some d -> sh.now +. lat +. d
    in
    Metrics.record_send sh.metrics ~label:(A.msg_label msg)
      ~bits:(A.msg_bits ~n:(Graph.n t.graph) msg);
    let key = Shard.key ~shard:sh.sid ~seq:sh.seq in
    sh.seq <- sh.seq + 1;
    let ev = Deliver { src; dst; msg; tag = sh.current_tag + 1 } in
    let ds = t.part.(dst) in
    if ds = sh.sid then Heap.push_at sh.heap ~prio:arrival ~seq:key ev
    else if t.running then push_remote t sh ds { p_time = arrival; p_key = key; p_ev = ev }
    else
      (* create / between windows: single-threaded, push straight in. *)
      Heap.push_at t.shards.(ds).heap ~prio:arrival ~seq:key ev;
    arrival

  let in_window (w : Fault.window) round = w.from_round <= round && round <= w.upto_round

  (* Engine.enqueue's channel-fault gate, decided on the sending shard
     with that shard's stats and the event's private stream.  [round] is
     the sender shard's causal round — the parallel engine has no global
     round while a window runs. *)
  let enqueue ?rng t sh ~src ~dst msg =
    let mark arrival = if arrival > sh.tampered_until then sh.tampered_until <- arrival in
    let tamper events =
      let rec decide = function
        | [] -> ignore (enqueue_raw t sh ?rng ~src ~dst msg)
        | (ev, erng) :: rest -> (
            match (ev : Fault.event) with
            | Drop f when in_window f.window sh.rounds && Prng.bernoulli erng f.prob ->
                sh.fstats <- { sh.fstats with Fault.drops = sh.fstats.Fault.drops + 1 }
            | Duplicate f when in_window f.window sh.rounds && Prng.bernoulli erng f.prob ->
                sh.fstats <-
                  { sh.fstats with Fault.duplicates = sh.fstats.Fault.duplicates + 1 };
                for _ = 0 to f.copies do
                  mark (enqueue_raw t sh ?rng ~src ~dst msg)
                done
            | Reorder f when in_window f.window sh.rounds && Prng.bernoulli erng f.prob ->
                sh.fstats <- { sh.fstats with Fault.reorders = sh.fstats.Fault.reorders + 1 };
                mark (enqueue_raw t sh ~extra_delay:(Prng.float erng f.delay) ?rng ~src ~dst msg)
            | Corrupt f when in_window f.window sh.rounds && Prng.bernoulli erng f.prob -> (
                match A.random_msg t.ctxs.(src) erng with
                | Some msg' ->
                    sh.fstats <-
                      { sh.fstats with Fault.corruptions = sh.fstats.Fault.corruptions + 1 };
                    mark (enqueue_raw t sh ?rng ~src ~dst msg')
                | None -> decide rest)
            | _ -> decide rest)
      in
      decide events
    in
    match t.faults with
    | None -> ignore (enqueue_raw t sh ?rng ~src ~dst msg)
    | Some fs -> (
        match Hashtbl.find_opt fs.by_channel ((src * Graph.n t.graph) + dst) with
        | None -> ignore (enqueue_raw t sh ?rng ~src ~dst msg)
        | Some events -> tamper events)

  let make_ctx t i =
    let sh = t.shards.(t.part.(i)) in
    let neighbors = Graph.neighbors t.graph i in
    {
      Node.node = i;
      id = Graph.id t.graph i;
      n = Graph.n t.graph;
      neighbors;
      neighbor_ids = Array.map (Graph.id t.graph) neighbors;
      send =
        (fun dst msg ->
          if not (Graph.mem_edge t.graph i dst) then
            invalid_arg (Printf.sprintf "Pengine: node %d sending to non-neighbour %d" i dst);
          enqueue t sh ~src:i ~dst msg);
      note_suppressed = (fun k -> Metrics.record_suppressed sh.metrics k);
      rng = Prng.create 0 (* replaced below *);
      now = (fun () -> sh.now);
    }

  let fresh_floors graph =
    Array.init (Graph.n graph) (fun u -> Array.make (Graph.degree graph u) neg_infinity)

  let create ?(latency = Latency.uniform ()) ?(tick_period = 1.0) ?(seed = 42)
      ?(init = `Clean) ?(record = false) ?partition ~domains graph =
    let n = Graph.n graph in
    if n = 0 then invalid_arg "Pengine.create: empty graph";
    if domains <= 0 then invalid_arg "Pengine.create: domains must be positive";
    if domains > Shard.max_shards then
      invalid_arg
        (Printf.sprintf "Pengine.create: at most %d shards (key encoding)" Shard.max_shards);
    if not (Mdst_graph.Algo.is_connected graph) then
      invalid_arg "Pengine.create: graph must be connected";
    let lookahead = Latency.min_delay latency in
    if not (lookahead > 0.0) then
      invalid_arg "Pengine.create: latency model must declare a positive min_delay";
    let k = domains in
    let part =
      match partition with
      | Some p ->
          if not (Partition.validate graph p ~parts:k) then
            invalid_arg "Pengine.create: partition does not match graph/domains";
          Array.copy p
      | None -> Partition.blocks graph ~parts:k
    in
    let rng = Prng.create seed in
    let lat_lo, lat_span, lat_uniform =
      match Latency.uniform_params latency with
      | Some (lo, hi) -> (lo, hi -. lo, true)
      | None -> (0.0, 0.0, false)
    in
    let in_shards = Shard.in_shards graph part ~k in
    let shards =
      Array.init k (fun s ->
          {
            sid = s;
            heap = Heap.create ~capacity:(max 16 (4 * n / k)) ();
            seq = 0;
            now = 0.0;
            current_tag = 0;
            rounds = 0;
            deliveries = 0;
            executed = 0;
            metrics = Metrics.create ();
            in_shards = in_shards.(s);
            inboxes = Array.init k (fun _ -> Mailbox.create ~capacity:256 ());
            sched = [];
            fstats = Fault.zero_stats;
            tampered_until = neg_infinity;
          })
    in
    let t =
      {
        graph;
        latency;
        lat_uniform;
        lat_lo;
        lat_span;
        tick_period;
        lookahead;
        rng;
        k;
        part;
        shards;
        clocks = Shard.Clocks.create k;
        states = Array.make n (Obj.magic 0);
        ctxs = Array.make n (Obj.magic 0);
        lat_rngs = Array.make n rng (* replaced below *);
        fifo_floor = fresh_floors graph;
        recording = record;
        running = false;
        horizon = 0.0;
        poisoned = false;
        faults = None;
        abort = Atomic.make false;
        done_count = Atomic.make 0;
        failure = Atomic.make None;
      }
    in
    (* From here to the tick arming this is Engine.create draw-for-draw on
       the same root stream: identical ctx streams, initial states and
       event timestamps for every (seed, init), whatever [k] is. *)
    for i = 0 to n - 1 do
      let ctx = make_ctx t i in
      t.ctxs.(i) <- { ctx with Node.rng = Prng.split rng }
    done;
    for i = 0 to n - 1 do
      let state =
        match init with
        | `Clean -> A.init t.ctxs.(i)
        | `Random -> A.random_state t.ctxs.(i) (Prng.split rng)
        | `Custom f -> f t.ctxs.(i) (Prng.split rng)
      in
      t.states.(i) <- state
    done;
    (match init with
    | `Random ->
        Graph.iter_edges graph (fun u v ->
            let inject_on src dst =
              let c = Prng.int rng 3 in
              for _ = 1 to c do
                match A.random_msg t.ctxs.(src) rng with
                | Some msg -> enqueue ~rng t t.shards.(part.(src)) ~src ~dst msg
                | None -> ()
              done
            in
            inject_on u v;
            inject_on v u)
    | `Clean | `Custom _ -> ());
    for i = 0 to n - 1 do
      let sh = t.shards.(part.(i)) in
      let key = Shard.key ~shard:sh.sid ~seq:sh.seq in
      sh.seq <- sh.seq + 1;
      Heap.push_at sh.heap ~prio:(Prng.float rng tick_period) ~seq:key
        (Tick { node = i; tag = 1 })
    done;
    (* Post-create latency streams, split in node order AFTER the draws
       above so the prefix stays bit-identical with Engine.create. *)
    for i = 0 to n - 1 do
      t.lat_rngs.(i) <- Prng.split rng
    done;
    t

  (* ---------------------------------------------------------------- *)
  (* Execution. *)

  let execute t sh time key ev =
    if time > sh.now then sh.now <- time;
    let tag = match ev with Tick { tag; _ } | Deliver { tag; _ } -> tag in
    sh.current_tag <- tag;
    if tag > sh.rounds then sh.rounds <- tag;
    sh.executed <- sh.executed + 1;
    if t.recording then
      sh.sched <-
        (match ev with
        | Tick { node; _ } -> (time, key, -node - 1)
        | Deliver { src; dst; _ } -> (time, key, (src * Graph.n t.graph) + dst))
        :: sh.sched;
    match ev with
    | Tick { node = i; _ } ->
        t.states.(i) <- A.on_tick t.ctxs.(i) t.states.(i);
        Metrics.record_state_bits sh.metrics (A.state_bits ~n:(Graph.n t.graph) t.states.(i));
        let key' = Shard.key ~shard:sh.sid ~seq:sh.seq in
        sh.seq <- sh.seq + 1;
        Heap.push_at sh.heap ~prio:(sh.now +. t.tick_period) ~seq:key'
          (Tick { node = i; tag = tag + 1 })
    | Deliver { src; dst; msg; _ } ->
        sh.deliveries <- sh.deliveries + 1;
        Metrics.record_delivery sh.metrics;
        t.states.(dst) <- A.on_message t.ctxs.(dst) t.states.(dst) ~src msg

  (* One read -> drain -> execute -> publish pass; returns
     (made_progress, window_done). *)
  let shard_pass t sh ~until =
    let hmin = ref infinity in
    Array.iter
      (fun s' ->
        let c = Shard.Clocks.get t.clocks s' in
        if c < !hmin then hmin := c)
      sh.in_shards;
    ignore (drain_inboxes sh);
    let bound = Float.min (!hmin +. t.lookahead) until in
    let progressed = ref false in
    while (not (Heap.is_empty sh.heap)) && Heap.top_prio sh.heap < bound do
      let time = Heap.top_prio sh.heap in
      let key = Heap.top_seq sh.heap in
      let ev = Heap.drop_min sh.heap in
      execute t sh time key ev;
      progressed := true
    done;
    let next_local = if Heap.is_empty sh.heap then infinity else Heap.top_prio sh.heap in
    Shard.Clocks.advance t.clocks sh.sid (Float.min next_local (!hmin +. t.lookahead));
    (!progressed, next_local >= until && !hmin +. t.lookahead >= until)

  let record_failure t e bt =
    ignore (Atomic.compare_and_set t.failure None (Some (e, bt)));
    Atomic.set t.abort true

  (* A whole shard-window on the calling domain.  After its own horizon
     closes, a shard keeps servicing its inboxes until every shard is done
     — a peer may still be pushing next-window traffic at us, and an
     abandoned full ring would block it forever. *)
  let worker t ~until s =
    let sh = t.shards.(s) in
    (try
       let idle = ref 0 in
       let running = ref true in
       while !running do
         if Atomic.get t.abort then raise Aborted;
         let progressed, done_ = shard_pass t sh ~until in
         if done_ then running := false
         else if progressed then idle := 0
         else begin
           incr idle;
           Shard.backoff !idle
         end
       done
     with
    | Aborted -> Shard.Clocks.infinity_ t.clocks sh.sid
    | e ->
        record_failure t e (Printexc.get_raw_backtrace ());
        Shard.Clocks.infinity_ t.clocks sh.sid);
    Atomic.incr t.done_count;
    let idle = ref 0 in
    while Atomic.get t.done_count < t.k && not (Atomic.get t.abort) do
      if drain_inboxes sh then idle := 0 else incr idle;
      Shard.backoff !idle
    done

  let run_window t ~until =
    if t.poisoned then invalid_arg "Pengine.run_window: a previous window failed";
    if until > t.horizon then begin
      Atomic.set t.done_count 0;
      Atomic.set t.abort false;
      t.running <- true;
      let doms =
        Array.init (t.k - 1) (fun i -> Domain.spawn (fun () -> worker t ~until (i + 1)))
      in
      worker t ~until 0;
      Array.iter Domain.join doms;
      t.running <- false;
      match Atomic.get t.failure with
      | Some (e, bt) ->
          t.poisoned <- true;
          Printexc.raise_with_backtrace e bt
      | None -> t.horizon <- until
    end

  (* ---------------------------------------------------------------- *)
  (* Accessors (all single-threaded: call between windows only). *)

  let graph t = t.graph
  let domains t = t.k
  let partition t = t.part
  let lookahead t = t.lookahead
  let state t i = t.states.(i)
  let states t = t.states
  let now t = t.horizon
  let rounds t = Array.fold_left (fun acc sh -> max acc sh.rounds) 0 t.shards
  let deliveries t = Array.fold_left (fun acc sh -> acc + sh.deliveries) 0 t.shards
  let events t = Array.fold_left (fun acc sh -> acc + sh.executed) 0 t.shards

  let metrics t =
    let m = Metrics.create () in
    Array.iter (fun sh -> Metrics.merge_into ~into:m sh.metrics) t.shards;
    m

  let pending_events t =
    Array.fold_left
      (fun acc sh ->
        acc + Heap.length sh.heap
        + Array.fold_left (fun a mb -> a + Mailbox.length mb) 0 sh.inboxes)
      0 t.shards

  let in_flight t =
    Array.to_list t.shards
    |> List.concat_map (fun sh -> Heap.to_list sh.heap)
    |> List.filter_map (fun (prio, ev) ->
           match ev with
           | Deliver { src; dst; msg; _ } -> Some (prio, (src, dst, msg))
           | Tick _ -> None)
    |> List.sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd

  (* ---------------------------------------------------------------- *)
  (* Faults. *)

  let install_faults t plan =
    let n = Graph.n t.graph in
    List.iter
      (fun ev ->
        match (ev : Fault.event) with
        | Crash _ | Cut _ | Link _ ->
            invalid_arg
              "Pengine.install_faults: scheduled events (crash/cut/link) need the \
               sequential engine"
        | Drop _ | Duplicate _ | Reorder _ | Corrupt _ -> ())
      plan.Fault.events;
    let by_channel = Hashtbl.create 16 in
    List.iter
      (fun ev ->
        let src, dst =
          match (ev : Fault.event) with
          | Drop { src; dst; _ } | Duplicate { src; dst; _ } | Reorder { src; dst; _ }
          | Corrupt { src; dst; _ } ->
              (src, dst)
          | Crash _ | Cut _ | Link _ -> assert false
        in
        if src >= 0 && src < n && dst >= 0 && dst < n && src <> dst then begin
          let key = (src * n) + dst in
          let prev = Option.value ~default:[] (Hashtbl.find_opt by_channel key) in
          Hashtbl.replace by_channel key (prev @ [ (ev, Fault.rng_for plan ev) ])
        end)
      plan.Fault.events;
    t.faults <- Some { by_channel }

  let fault_stats t =
    Array.fold_left
      (fun (acc : Fault.stats) sh ->
        let s = sh.fstats in
        {
          Fault.drops = acc.Fault.drops + s.Fault.drops;
          duplicates = acc.Fault.duplicates + s.Fault.duplicates;
          reorders = acc.Fault.reorders + s.Fault.reorders;
          corruptions = acc.Fault.corruptions + s.Fault.corruptions;
          crashes = acc.Fault.crashes + s.Fault.crashes;
          cuts = acc.Fault.cuts + s.Fault.cuts;
          links = acc.Fault.links + s.Fault.links;
          skipped = acc.Fault.skipped + s.Fault.skipped;
        })
      Fault.zero_stats t.shards

  let faults_pending t =
    t.faults <> None
    && Array.exists (fun sh -> t.horizon <= sh.tampered_until) t.shards

  (* ---------------------------------------------------------------- *)
  (* Recorded schedule. *)

  type sched_event =
    | Sched_tick of { node : int }
    | Sched_deliver of { src : int; dst : int }

  let schedule t =
    if not t.recording then invalid_arg "Pengine.schedule: created without ~record:true";
    let n = Graph.n t.graph in
    let all =
      Array.concat
        (Array.to_list (Array.map (fun sh -> Array.of_list (List.rev sh.sched)) t.shards))
    in
    Array.sort
      (fun (t1, k1, _) (t2, k2, _) ->
        let c = compare t1 t2 in
        if c <> 0 then c else compare k1 k2)
      all;
    Array.map
      (fun (time, _, code) ->
        if code < 0 then (time, Sched_tick { node = -code - 1 })
        else (time, Sched_deliver { src = code / n; dst = code mod n }))
      all

  (* ---------------------------------------------------------------- *)
  (* Driver. *)

  type outcome = {
    converged : bool;
    rounds : int;
    time : float;
    deliveries : int;
  }

  let run t ?(max_rounds = 200_000) ?(window = 8.0) ~stop () =
    if window <= 0.0 then invalid_arg "Pengine.run: window must be positive";
    let finished = ref (stop t) in
    while (not !finished) && rounds t <= max_rounds do
      run_window t ~until:(t.horizon +. window);
      if stop t then finished := true
    done;
    { converged = stop t; rounds = rounds t; time = t.horizon; deliveries = deliveries t }
end

module Prng = Mdst_util.Prng
module Graph = Mdst_graph.Graph

module Make (A : Node.AUTOMATON) = struct
  type t = {
    graph : Graph.t;
    rng : Prng.t;
    states : A.state array;
    ctxs : A.msg Node.ctx array;
    (* inbox.(dst) holds (src, msg) pairs to deliver next round, FIFO. *)
    inbox : (int * A.msg) Queue.t array;
    outbox : (int * A.msg) Queue.t array;
    metrics : Metrics.t;
    mutable round_count : int;
  }

  type init =
    [ `Clean | `Random | `Custom of A.msg Node.ctx -> Prng.t -> A.state ]

  let make_ctx t i =
    let neighbors = Graph.neighbors t.graph i in
    {
      Node.node = i;
      id = Graph.id t.graph i;
      n = Graph.n t.graph;
      neighbors;
      neighbor_ids = Array.map (Graph.id t.graph) neighbors;
      send =
        (fun dst msg ->
          if not (Graph.mem_edge t.graph i dst) then
            invalid_arg "Sync_engine: sending to non-neighbour";
          Metrics.record_send t.metrics ~label:(A.msg_label msg)
            ~bits:(A.msg_bits ~n:(Graph.n t.graph) msg);
          Queue.add (i, msg) t.outbox.(dst));
      note_suppressed = (fun k -> Metrics.record_suppressed t.metrics k);
      rng = Prng.create 0;
      now = (fun () -> float_of_int t.round_count);
    }

  let create ?(seed = 42) ?(init = `Clean) graph =
    let n = Graph.n graph in
    if n = 0 then invalid_arg "Sync_engine.create: empty graph";
    if not (Mdst_graph.Algo.is_connected graph) then
      invalid_arg "Sync_engine.create: graph must be connected";
    let rng = Prng.create seed in
    let t =
      {
        graph;
        rng;
        states = Array.make n (Obj.magic 0);
        ctxs = Array.make n (Obj.magic 0);
        inbox = Array.init n (fun _ -> Queue.create ());
        outbox = Array.init n (fun _ -> Queue.create ());
        metrics = Metrics.create ();
        round_count = 0;
      }
    in
    for i = 0 to n - 1 do
      let ctx = make_ctx t i in
      t.ctxs.(i) <- { ctx with Node.rng = Prng.split rng }
    done;
    for i = 0 to n - 1 do
      t.states.(i) <-
        (match init with
        | `Clean -> A.init t.ctxs.(i)
        | `Random -> A.random_state t.ctxs.(i) (Prng.split rng)
        | `Custom f -> f t.ctxs.(i) (Prng.split rng))
    done;
    (match init with
    | `Random ->
        (* Adversarial channel contents for the first round. *)
        Graph.iter_edges graph (fun u v ->
            (match A.random_msg t.ctxs.(u) rng with
            | Some m -> Queue.add (u, m) t.inbox.(v)
            | None -> ());
            match A.random_msg t.ctxs.(v) rng with
            | Some m -> Queue.add (v, m) t.inbox.(u)
            | None -> ())
    | `Clean | `Custom _ -> ());
    t

  let round t =
    let n = Graph.n t.graph in
    (* Phase 1: deliver everything queued from the previous round. *)
    for dst = 0 to n - 1 do
      while not (Queue.is_empty t.inbox.(dst)) do
        let src, msg = Queue.pop t.inbox.(dst) in
        Metrics.record_delivery t.metrics;
        t.states.(dst) <- A.on_message t.ctxs.(dst) t.states.(dst) ~src msg
      done
    done;
    (* Phase 2: every node ticks. *)
    for i = 0 to n - 1 do
      t.states.(i) <- A.on_tick t.ctxs.(i) t.states.(i);
      Metrics.record_state_bits t.metrics (A.state_bits ~n:(Graph.n t.graph) t.states.(i))
    done;
    (* Phase 3: sends of this round become next round's inboxes. *)
    for i = 0 to n - 1 do
      Queue.transfer t.outbox.(i) t.inbox.(i)
    done;
    t.round_count <- t.round_count + 1

  type outcome = { converged : bool; rounds : int }

  let run t ?(max_rounds = 100_000) ~stop () =
    let finished = ref (stop t) in
    while (not !finished) && t.round_count < max_rounds do
      round t;
      if stop t then finished := true
    done;
    { converged = stop t; rounds = t.round_count }

  let graph t = t.graph

  let states t = t.states

  let state t i = t.states.(i)

  let rounds t = t.round_count

  let metrics t = t.metrics

  let pending_messages t = Array.fold_left (fun acc q -> acc + Queue.length q) 0 t.inbox

  let set_state t i s = t.states.(i) <- s

  let corrupt t ?(fraction = 1.0) () =
    let n = Graph.n t.graph in
    let k = max 1 (int_of_float (Float.round (fraction *. float_of_int n))) in
    let victims = Prng.sample_without_replacement t.rng (min k n) n in
    List.iter (fun i -> t.states.(i) <- A.random_state t.ctxs.(i) (Prng.split t.rng)) victims;
    List.length victims
end

type t = {
  capacity : int;
  keep : Engine.observation -> bool;
  buffer : Engine.observation option array;
  mutable next : int;  (* ring index *)
  mutable stored : int;
  mutable recorded : int;
}

let keep_protocol_only = function
  | Engine.Obs_deliver { label; _ } -> label <> "info"
  | Engine.Obs_fault _ -> true
  | Engine.Obs_tick _ -> false

let create ?(capacity = 4096) ?(keep = keep_protocol_only) () =
  {
    capacity = max 1 capacity;
    keep;
    buffer = Array.make (max 1 capacity) None;
    next = 0;
    stored = 0;
    recorded = 0;
  }

let record t obs =
  if t.keep obs then begin
    t.recorded <- t.recorded + 1;
    t.buffer.(t.next) <- Some obs;
    t.next <- (t.next + 1) mod t.capacity;
    if t.stored < t.capacity then t.stored <- t.stored + 1
  end

let events t =
  let start = if t.stored < t.capacity then 0 else t.next in
  List.init t.stored (fun i ->
      match t.buffer.((start + i) mod t.capacity) with
      | Some obs -> obs
      | None -> assert false)

let recorded t = t.recorded

let counts_by_label t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun obs ->
      match obs with
      | Engine.Obs_deliver { label; _ } ->
          Hashtbl.replace tbl label (1 + Option.value ~default:0 (Hashtbl.find_opt tbl label))
      | Engine.Obs_fault { kind; _ } ->
          let label = "fault:" ^ kind in
          Hashtbl.replace tbl label (1 + Option.value ~default:0 (Hashtbl.find_opt tbl label))
      | Engine.Obs_tick _ -> ())
    (events t);
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let render ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some l when List.length evs > l ->
        List.filteri (fun i _ -> i >= List.length evs - l) evs
    | Some _ | None -> evs
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun obs ->
      match obs with
      | Engine.Obs_deliver { src; dst; label; round; time } ->
          Buffer.add_string buf
            (Printf.sprintf "[round %5d | t=%8.1f] %-12s %d -> %d\n" round time label src dst)
      | Engine.Obs_fault { kind; detail; round; time } ->
          Buffer.add_string buf
            (Printf.sprintf "[round %5d | t=%8.1f] fault:%-6s %s\n" round time kind detail)
      | Engine.Obs_tick { node; round; time } ->
          Buffer.add_string buf (Printf.sprintf "[round %5d | t=%8.1f] tick         %d\n" round time node))
    evs;
  Buffer.contents buf

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0;
  t.stored <- 0;
  t.recorded <- 0

(* Fault plans as pure data.  The engine interprets them (see engine.ml);
   this module only defines the shape, the per-event PRNG derivation and
   the textual reproducer format. *)

module Prng = Mdst_util.Prng

type window = { from_round : int; upto_round : int }

type mode = [ `Init | `Random ]

type event =
  | Drop of { window : window; src : int; dst : int; prob : float }
  | Duplicate of { window : window; src : int; dst : int; prob : float; copies : int }
  | Reorder of { window : window; src : int; dst : int; prob : float; delay : float }
  | Corrupt of { window : window; src : int; dst : int; prob : float }
  | Crash of { at_round : int; node : int; mode : mode }
  | Cut of { at_round : int; u : int; v : int }
  | Link of { at_round : int; u : int; v : int }

type plan = { plan_seed : int; events : event list }

let empty = { plan_seed = 0; events = [] }

let is_empty plan = plan.events = []

let last_fault_round plan =
  List.fold_left
    (fun acc ev ->
      max acc
        (match ev with
        | Drop { window; _ } | Duplicate { window; _ } | Reorder { window; _ }
        | Corrupt { window; _ } ->
            window.upto_round
        | Crash { at_round; _ } | Cut { at_round; _ } | Link { at_round; _ } -> at_round))
    0 plan.events

let nodes_mentioned plan =
  List.concat_map
    (function
      | Drop { src; dst; _ } | Duplicate { src; dst; _ } | Reorder { src; dst; _ }
      | Corrupt { src; dst; _ } ->
          [ src; dst ]
      | Crash { node; _ } -> [ node ]
      | Cut { u; v; _ } | Link { u; v; _ } -> [ u; v ])
    plan.events
  |> List.sort_uniq compare

(* The event's stream depends on its content, not its list position, so
   shrinking (deleting sibling events) never shifts its decisions.
   [Hashtbl.hash] is OCaml's deterministic structural hash. *)
let rng_for plan event =
  Prng.create (plan.plan_seed lxor (Hashtbl.hash event * 0x9e3779b9))

type stats = {
  drops : int;
  duplicates : int;
  reorders : int;
  corruptions : int;
  crashes : int;
  cuts : int;
  links : int;
  skipped : int;
}

let zero_stats =
  { drops = 0; duplicates = 0; reorders = 0; corruptions = 0; crashes = 0; cuts = 0;
    links = 0; skipped = 0 }

let total s = s.drops + s.duplicates + s.reorders + s.corruptions + s.crashes + s.cuts + s.links

let pp_stats fmt s =
  Format.fprintf fmt
    "drops=%d dups=%d reorders=%d corruptions=%d crashes=%d cuts=%d links=%d skipped=%d"
    s.drops s.duplicates s.reorders s.corruptions s.crashes s.cuts s.links s.skipped

(* ---------------- textual form ---------------- *)

let string_of_float_compact f =
  if Float.is_integer f && Float.abs f < 1e15 then string_of_int (int_of_float f)
  else string_of_float f

let window_to_string w = Printf.sprintf "%d-%d" w.from_round w.upto_round

let event_to_string = function
  | Drop { window; src; dst; prob } ->
      Printf.sprintf "drop:%s:%d>%d:%s" (window_to_string window) src dst
        (string_of_float_compact prob)
  | Duplicate { window; src; dst; prob; copies } ->
      Printf.sprintf "dup:%s:%d>%d:%s:%d" (window_to_string window) src dst
        (string_of_float_compact prob) copies
  | Reorder { window; src; dst; prob; delay } ->
      Printf.sprintf "reorder:%s:%d>%d:%s:%s" (window_to_string window) src dst
        (string_of_float_compact prob) (string_of_float_compact delay)
  | Corrupt { window; src; dst; prob } ->
      Printf.sprintf "corrupt:%s:%d>%d:%s" (window_to_string window) src dst
        (string_of_float_compact prob)
  | Crash { at_round; node; mode } ->
      Printf.sprintf "crash:%d:%d:%s" at_round node
        (match mode with `Init -> "init" | `Random -> "random")
  | Cut { at_round; u; v } -> Printf.sprintf "cut:%d:%d-%d" at_round u v
  | Link { at_round; u; v } -> Printf.sprintf "link:%d:%d-%d" at_round u v

let fail fmt = Printf.ksprintf invalid_arg fmt

let int_of s ~what =
  match int_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail "Fault.of_string: bad %s %S" what s

let float_of s ~what =
  match float_of_string_opt (String.trim s) with
  | Some v -> v
  | None -> fail "Fault.of_string: bad %s %S" what s

let window_of s =
  match String.split_on_char '-' s with
  | [ a; b ] -> { from_round = int_of a ~what:"window start"; upto_round = int_of b ~what:"window end" }
  | _ -> fail "Fault.of_string: bad window %S (want FROM-TO)" s

let channel_of s =
  match String.split_on_char '>' s with
  | [ a; b ] -> (int_of a ~what:"src", int_of b ~what:"dst")
  | _ -> fail "Fault.of_string: bad channel %S (want SRC>DST)" s

let pair_of s =
  match String.split_on_char '-' s with
  | [ a; b ] -> (int_of a ~what:"endpoint", int_of b ~what:"endpoint")
  | _ -> fail "Fault.of_string: bad edge %S (want U-V)" s

let event_of_string s =
  match String.split_on_char ':' (String.trim s) with
  | "drop" :: w :: ch :: p :: [] ->
      let src, dst = channel_of ch in
      Drop { window = window_of w; src; dst; prob = float_of p ~what:"probability" }
  | "dup" :: w :: ch :: p :: k :: [] ->
      let src, dst = channel_of ch in
      Duplicate
        { window = window_of w; src; dst; prob = float_of p ~what:"probability";
          copies = int_of k ~what:"copies" }
  | "reorder" :: w :: ch :: p :: d :: [] ->
      let src, dst = channel_of ch in
      Reorder
        { window = window_of w; src; dst; prob = float_of p ~what:"probability";
          delay = float_of d ~what:"delay" }
  | "corrupt" :: w :: ch :: p :: [] ->
      let src, dst = channel_of ch in
      Corrupt { window = window_of w; src; dst; prob = float_of p ~what:"probability" }
  | "crash" :: r :: node :: mode :: [] ->
      let mode =
        match String.trim mode with
        | "init" -> `Init
        | "random" -> `Random
        | m -> fail "Fault.of_string: bad crash mode %S (want init|random)" m
      in
      Crash { at_round = int_of r ~what:"round"; node = int_of node ~what:"node"; mode }
  | "cut" :: r :: uv :: [] ->
      let u, v = pair_of uv in
      Cut { at_round = int_of r ~what:"round"; u; v }
  | "link" :: r :: uv :: [] ->
      let u, v = pair_of uv in
      Link { at_round = int_of r ~what:"round"; u; v }
  | kind :: _ -> fail "Fault.of_string: unknown event %S" kind
  | [] -> fail "Fault.of_string: empty event"

let to_string plan =
  String.concat "|"
    (Printf.sprintf "seed=%d" plan.plan_seed :: List.map event_to_string plan.events)

let of_string s =
  let parts =
    List.filter (fun p -> String.trim p <> "") (String.split_on_char '|' (String.trim s))
  in
  let seed = ref 0 in
  let events =
    List.filter_map
      (fun part ->
        let part = String.trim part in
        if String.length part >= 5 && String.sub part 0 5 = "seed=" then begin
          seed := int_of (String.sub part 5 (String.length part - 5)) ~what:"plan seed";
          None
        end
        else Some (event_of_string part))
      parts
  in
  { plan_seed = !seed; events }

(** Deterministic fault plans — the transient-fault adversary of the paper's
    self-stabilization claim, made explicit, replayable and shrinkable.

    A {!plan} is pure data: a seed plus a list of fault events.  Channel
    events (drop / duplicate / reorder / corrupt) act on every message a
    given ordered channel carries while an asynchronous-round window is
    open; scheduled events (crash-restart, edge cut / link) fire once when
    the execution first reaches their round.  The engine applies plans via
    {!Engine.Make.install_faults} and reports every applied fault as an
    [Obs_fault] observation, so a trace always explains what the adversary
    did.

    {2 Determinism}

    Every probabilistic event draws from its {e own} PRNG stream, derived
    from the plan seed and the event's content ({!rng_for}) — never from
    the engine's stream.  Consequences:

    - installing a plan does not perturb the fault-free execution
      (latencies, tick phases and initial states are byte-identical with
      and without an empty plan);
    - deleting an event from a plan leaves the decisions of every other
      event unchanged, which is exactly what counterexample shrinking
      needs ({!Mdst_check.Shrink});
    - replaying the same (graph, plan, engine seed) triple reproduces the
      same execution, faults included. *)

type window = { from_round : int; upto_round : int }
(** Half-open in neither sense: active while
    [from_round <= round <= upto_round]. *)

type mode = [ `Init | `Random ]
(** Crash-restart re-initialization: a factory reboot ([`Init]) or an
    arbitrary corrupted state ([`Random], the automaton's [random_state]). *)

type event =
  | Drop of { window : window; src : int; dst : int; prob : float }
      (** Lose each message on channel [src -> dst] with probability
          [prob] while the window is open. *)
  | Duplicate of { window : window; src : int; dst : int; prob : float; copies : int }
      (** Deliver [copies] extra copies of each affected message: exactly
          [copies + 1] deliveries in total — the original plus the extras
          (each floored by the channel's FIFO order like any send). *)
  | Reorder of { window : window; src : int; dst : int; prob : float; delay : float }
      (** Delay each affected message by up to [delay] extra time units,
          {e bypassing} the channel's FIFO floor, so later messages can
          overtake it. *)
  | Corrupt of { window : window; src : int; dst : int; prob : float }
      (** Replace each affected payload by an arbitrary message of the
          automaton's [random_msg]; dropped if the automaton does not model
          payload corruption. *)
  | Crash of { at_round : int; node : int; mode : mode }
      (** Crash-restart: the node's state is re-initialized per [mode] and
          every message in flight to or from it is lost.  The purged
          channels {e keep} their FIFO floors: traffic after the restart is
          still delivered strictly after the lost messages' arrival times —
          the link itself was never torn down, only its content was lost
          (pinned by the [purge keeps fifo floor] regression test). *)
  | Cut of { at_round : int; u : int; v : int }
      (** Remove edge [{u, v}]; skipped (and recorded as skipped) if the
          edge is absent or is a bridge — the paper's model requires the
          network to stay connected. *)
  | Link of { at_round : int; u : int; v : int }
      (** Add edge [{u, v}]; skipped if already present or [u = v]. *)

type plan = { plan_seed : int; events : event list }

val empty : plan

val is_empty : plan -> bool

val last_fault_round : plan -> int
(** The last round at which the plan can still act: the maximum over
    window ends and scheduled rounds ([0] for the empty plan).
    Convergence-under-adversity properties budget rounds {e after} this
    point. *)

val nodes_mentioned : plan -> int list
(** Every node index an event references, deduplicated and sorted (used to
    remap or drop events when shrinking deletes a vertex). *)

val rng_for : plan -> event -> Mdst_util.Prng.t
(** The event's private PRNG stream: a pure function of the plan seed and
    the event's content (window, channel, probabilities — everything but
    the surrounding list). *)

(** {1 Accounting} *)

type stats = {
  drops : int;
  duplicates : int;
  reorders : int;
  corruptions : int;
  crashes : int;
  cuts : int;
  links : int;
  skipped : int;  (** scheduled events that were infeasible when due *)
}

val zero_stats : stats

val total : stats -> int
(** Applied faults, [skipped] excluded. *)

val pp_stats : Format.formatter -> stats -> unit

(** {1 Textual form}

    The plan's wire format is the reproducer format printed by the PBT
    harness and accepted by the CLI's [--faults]:

    {v
    seed=7|drop:10-400:0>1:0.5|dup:0-100:2>3:0.25:2
         |reorder:50-90:1>0:1:5.0|corrupt:0-60:3>2:0.1
         |crash:120:4:random|cut:200:0-3|link:240:1-4
    v}

    Events are separated by [|]; the [seed=] component may appear anywhere
    and defaults to 0. *)

val event_to_string : event -> string

val event_of_string : string -> event
(** @raise Invalid_argument on malformed input. *)

val to_string : plan -> string

val of_string : string -> plan
(** @raise Invalid_argument on malformed input. *)

(** Synchronous lockstep execution of the same {!Node.AUTOMATON}s.

    One synchronous round = every message sent in the previous round is
    delivered (per-channel FIFO, deterministic node order), then every node
    takes one tick.  This is the synchronous-daemon model common in
    self-stabilization proofs; running the identical protocol code under
    both this engine and the asynchronous {!Engine} is the differential
    check of experiment E12 — the algorithm may be faster or slower, but
    its guarantees must be daemon-independent. *)

module Make (A : Node.AUTOMATON) : sig
  type t

  type init =
    [ `Clean | `Random | `Custom of A.msg Node.ctx -> Mdst_util.Prng.t -> A.state ]

  val create : ?seed:int -> ?init:init -> Mdst_graph.Graph.t -> t

  val round : t -> unit
  (** Execute one synchronous round. *)

  type outcome = { converged : bool; rounds : int }

  val run : t -> ?max_rounds:int -> stop:(t -> bool) -> unit -> outcome
  (** [stop] is evaluated after every round. *)

  val graph : t -> Mdst_graph.Graph.t

  val states : t -> A.state array

  val state : t -> int -> A.state

  val rounds : t -> int

  val metrics : t -> Metrics.t

  val pending_messages : t -> int

  val set_state : t -> int -> A.state -> unit

  val corrupt : t -> ?fraction:float -> unit -> int
end

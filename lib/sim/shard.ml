(* Shared scaffolding for the sharded parallel engine: published clocks,
   the (shard, seq) event-key encoding, cross-shard adjacency, and the
   wait-loop backoff.  Kept separate from {!Pengine} so the pieces with
   delicate memory-ordering arguments stay small and independently
   testable. *)

(* ------------------------------------------------------------------ *)
(* Event keys.

   The parallel engine orders events by [(time, shard, seq)]: [shard] is
   the shard that *created* the event, [seq] its per-shard creation
   counter.  Packing both into one int lets {!Mdst_util.Heap.push_at}
   break time ties with a single int compare, and makes the tie-break a
   property of the event itself — two runs that create the same events
   agree on the order no matter when each shard drained its inboxes. *)

let shard_bits = 11
let seq_bits = 51
let max_shards = 1 lsl shard_bits

let key ~shard ~seq = (shard lsl seq_bits) lor seq
let key_shard k = k lsr seq_bits
let key_seq k = k land ((1 lsl seq_bits) - 1)

(* ------------------------------------------------------------------ *)
(* Published clocks.

   Each shard publishes a lower bound on the timestamp of anything it
   may still send: peers read it to compute how far they can safely
   execute (the null message of conservative PDES, collapsed into one
   atomic per shard).  Clocks are [float Atomic.t]: a publish boxes one
   float, but publishes happen once per synchronisation pass, not per
   event, so the allocation is noise.  (Packing the IEEE bits into an
   unboxed [int Atomic.t] does NOT work: doubles at or above 2.0 use bit
   62 of the payload, which overflows OCaml's 63-bit int into the sign —
   every publish past virtual time 2.0 would silently be dropped as
   "not an advance".)  [Atomic] in OCaml 5 is sequentially consistent,
   which is what the publish/read protocol in {!Pengine} relies on. *)

module Clocks = struct
  type t = float Atomic.t array

  let create k = Array.init k (fun _ -> Atomic.make 0.0)

  let get (t : t) s = Atomic.get t.(s)

  (* Only shard [s]'s domain writes clock [s], so a plain read-compare-set
     suffices: there is no competing writer to race with, the atomic is
     only needed for cross-domain visibility. *)
  let advance (t : t) s v =
    if not (v >= 0.0) then invalid_arg "Shard.Clocks: clock must be non-negative";
    if v > Atomic.get t.(s) then Atomic.set t.(s) v

  (* Poison on worker failure: lets peers finish their window instead of
     waiting forever on a clock that will never move again. *)
  let infinity_ (t : t) s = Atomic.set t.(s) infinity
end

(* ------------------------------------------------------------------ *)
(* Cross-shard adjacency: [in_shards.(s)] lists the shards holding a
   graph neighbour of some node in [s] — exactly the clocks shard [s]
   must read and the mailboxes it must drain. *)

let in_shards graph part ~k =
  let touch = Array.make_matrix k k false in
  Mdst_graph.Graph.iter_edges graph (fun u v ->
      let pu = part.(u) and pv = part.(v) in
      if pu <> pv then begin
        touch.(pu).(pv) <- true;
        touch.(pv).(pu) <- true
      end);
  Array.init k (fun s ->
      let acc = ref [] in
      for s' = k - 1 downto 0 do
        if touch.(s).(s') then acc := s' :: !acc
      done;
      Array.of_list !acc)

(* ------------------------------------------------------------------ *)
(* Backoff for wait loops (a shard waiting on a peer's clock, or a
   producer retrying a full mailbox).  Starts with [cpu_relax] spins and
   escalates to short sleeps: on machines with fewer cores than domains
   — including the single-core CI containers this repo tests on — a
   pure spin loop starves the very domain being waited on. *)

let backoff n =
  if n < 16 then Domain.cpu_relax ()
  else if n < 64 then
    for _ = 1 to 32 do
      Domain.cpu_relax ()
    done
  else Unix.sleepf (if n < 256 then 50e-6 else 500e-6)

(** Test-only mutation switches.

    The conformance / exploration suite is validated by reintroducing
    historical bugs (see CHANGES.md) behind these flags and checking that
    the suite detects each one.  A mutant is named by a short slug; flags
    are read from the [MDST_MUTANT] environment variable (comma-separated
    slugs) or forced programmatically by the mutation-check harness.

    Production code paths consult {!enabled} at the mutation site; with no
    variable set and no forced list, every check is a cheap
    compare-against-empty, so the hooks cost nothing in normal runs. *)

val names : string list
(** The known mutant slugs:
    - ["grant-drop"]: the protocol discards Grant messages on receipt, so
      a validated swap never commits at [s] (the PR-1 lossy-variant bug).
    - ["stop-check-race"]: the convergence harness ignores
      [Engine.faults_pending], re-opening the stop-check vs scheduled-fault
      race fixed in PR 1.
    - ["corrupt-shared-stream"]: [Engine.corrupt ~channels:true] draws its
      injected payloads and latencies from the engine's own stream instead
      of the per-victim split streams (the PR-2 schedule-coupling bug).
    - ["suppression-no-refresh"]: dirty-bit Info suppression never forces
      the periodic refresh, so a stale cache can silence a node forever
      (the failure mode the PR-3 refresh bounds). *)

val enabled : string -> bool
(** Is this mutant active?  Unknown slugs are simply never active. *)

val any : unit -> bool

val force : string list option -> unit
(** [force (Some slugs)] overrides the environment for the current process
    (the in-process mutation-check harness toggles mutants this way);
    [force None] reverts to the environment variable. *)

(** {1 Coverage probes}

    The coverage-guided schedule fuzzer ({!Mdst_check.Fuzz}) needs a
    per-execution branch signal from the protocol handlers.  Rather than a
    second instrumentation layer, the probes ride the same plumbing as the
    mutant flags: a [probe] call at a handler branch costs one
    load-and-branch while no harness is collecting, and a counter bump
    while one is — the default build pays nothing measurable.

    Collection is process-global and non-reentrant, like {!force}. *)

val probe : string -> unit
(** Record one hit of the named branch, if a collection is active. *)

val probe_n : string -> int -> unit
(** Record [k] hits at once ([k <= 0] is a no-op). *)

val with_coverage : (unit -> 'a) -> 'a * (string * int) list
(** Run the thunk with collection on; return its result and the sorted
    [(probe, hits)] census of every probe that fired.
    @raise Invalid_argument on nested use. *)

(* Idealised bit-size accounting used by the memory/message metering of
   experiment E5.  We charge the information-theoretic cost the paper's
   complexity analysis uses: an identifier or distance in a network of n
   nodes costs ceil(log2 n) bits, a boolean 1 bit, a list the sum of its
   elements plus a length field. *)

let bits_for_card n = if n <= 1 then 1 else int_of_float (ceil (log (float_of_int n) /. log 2.0))

let id_bits ~n = bits_for_card n

let int_bits v = if v <= 1 then 1 else bits_for_card (v + 1)

let bool_bits = 1

let list_bits ~n element_bits count = bits_for_card (n + 1) + (element_bits * count)

(** Bounded single-producer / single-consumer mailbox over OCaml 5 domains.

    The sharded parallel engine owns one mailbox per ordered shard pair:
    the source shard's domain is the only pusher, the destination shard's
    domain the only popper.  Both operations are wait-free and
    allocation-free (beyond the value itself); a full mailbox refuses the
    push ([try_push] returns [false]) so the producer can apply
    backpressure — in the engine it drains its own inboxes while retrying,
    which makes the cyclic-blocking deadlock impossible.

    The SPSC contract is a hard requirement, not an optimisation: two
    concurrent pushers (or poppers) race on the same ring index. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
(** Capacity is rounded up to a power of two (default 1024).
    @raise Invalid_argument when [capacity <= 0]. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Linearizable estimate: exact when called from either endpoint's
    domain. *)

val is_empty : 'a t -> bool

val try_push : 'a t -> 'a -> bool
(** [false] when the ring is full (nothing was written).  Producer side
    only. *)

val try_pop : 'a t -> 'a option
(** [None] when empty.  The vacated slot is cleared, so a popped value is
    collectable as soon as the consumer releases it.  Consumer side only. *)

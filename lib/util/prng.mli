(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that every
    simulation, generator and experiment is reproducible from a single integer
    seed.  The core is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a
    64-bit state advanced by a Weyl sequence and finalised with a
    variant of the MurmurHash3 mixer.  It is fast, passes BigCrush when used
    as a stream, and — crucially for fan-out experiments — supports {!split},
    which derives an independent child generator, so parallel workloads can
    each get their own stream without coordination. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator.  Two generators created with the
    same seed produce identical streams. *)

val copy : t -> t
(** [copy t] duplicates the current state; the copy evolves independently. *)

val split : t -> t
(** [split t] advances [t] and returns a statistically independent child. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.  Requires
    [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val raw53 : t -> int
(** The 53-bit integer draw behind {!float} ([float t b] is
    [b *. (float_of_int (raw53 t) /. 2.0 ** 53.0)]): one generator step,
    returned as an immediate so boxing-sensitive callers can keep the
    float arithmetic unboxed. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] samples Exp(rate); used for channel latencies. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.  @raise Invalid_argument on [||]. *)

val sample_without_replacement : t -> int -> int -> int list
(** [sample_without_replacement t k n] draws [k] distinct values from
    [\[0, n)], in increasing order.  Requires [0 <= k <= n]. *)

val float_of_seed : int -> float
(** [float_of_seed seed] is exactly [float (create seed) 1.0] without
    allocating a generator — a deterministic hash of [seed] into [\[0, 1)]
    for hot paths that need one draw per call (per-link latency models). *)

val seed_of_string : string -> int
(** Stable FNV-1a hash of a string, for naming experiment seeds. *)

let default_domains () = max 1 (Domain.recommended_domain_count () - 1)

type 'b cell = Pending | Ok of 'b | Err of exn

let map ?domains f xs =
  let domains = match domains with Some d -> max 1 d | None -> default_domains () in
  let tasks = Array.of_list xs in
  let n = Array.length tasks in
  if n = 0 then []
  else if domains = 1 || n = 1 then List.map f xs
  else begin
    let results = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (results.(i) <- (try Ok (f tasks.(i)) with e -> Err e));
          loop ()
        end
      in
      loop ()
    in
    let spawned = List.init (min domains n - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned;
    Array.to_list results
    |> List.map (function
         | Ok v -> v
         | Err e -> raise e
         | Pending -> assert false)
  end

(** Persistent integer sets (little-endian Patricia tries with bitmap leaves) with O(1)
    cardinality.  [mem] and [add] are O(min(W, log n)); the
    representation is canonical, so structural equality is set equality.
    Used for the visited-set the Search DFS threads through its
    messages. *)

type t

val empty : t

val is_empty : t -> bool

val cardinal : t -> int
(** O(1) — metered on every send by {!Mdst_core.Msg.bits}. *)

val mem : int -> t -> bool

val add : int -> t -> t
(** Returns the set unchanged (physically) when the element is present. *)

val singleton : int -> t

val of_list : int list -> t

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
(** Unspecified order. *)

val elements : t -> int list
(** Sorted ascending. *)

val pp : Format.formatter -> t -> unit

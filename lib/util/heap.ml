(* Parallel-array binary min-heap.

   Priorities, insertion sequence numbers and values live in three
   parallel arrays instead of one entry record per element: a float array
   stores its elements unboxed, so [push] and the engine-facing
   [top_prio]/[drop_min] path allocate nothing at all.  The engine pushes
   and pops one event per simulated send/tick — with entry records this
   was ~11 words per push/pop pair, a measurable slice of the protocol
   macro-benchmark's allocation volume (E20).

   Vacated value slots must not keep the old element reachable: the
   engine's event heap is long-lived, and a popped event pinned in
   [values.(size)] would retain its whole message payload until the slot
   is overwritten (if ever).  Every removal overwrites the slot with
   [dummy], an unsafe placeholder that is never read. *)

type 'a t = {
  mutable prios : float array;
  mutable seqs : int array;
  mutable values : 'a array;
  mutable size : int;
  mutable next_seq : int;
  dummy : 'a;
}

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  {
    prios = Array.make capacity 0.0;
    seqs = Array.make capacity 0;
    values = Array.make capacity (Obj.magic 0);
    size = 0;
    next_seq = 0;
    dummy = Obj.magic 0;
  }

let length t = t.size

let is_empty t = t.size = 0

(* Min-ordering on (prio, seq): FIFO among equal priorities. *)
let lt t i j =
  t.prios.(i) < t.prios.(j) || (t.prios.(i) = t.prios.(j) && t.seqs.(i) < t.seqs.(j))

let swap t i j =
  let p = t.prios.(i) in
  t.prios.(i) <- t.prios.(j);
  t.prios.(j) <- p;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.values.(i) in
  t.values.(i) <- t.values.(j);
  t.values.(j) <- v

let grow t =
  let cap = 2 * Array.length t.prios in
  let prios = Array.make cap 0.0 in
  Array.blit t.prios 0 prios 0 t.size;
  t.prios <- prios;
  let seqs = Array.make cap 0 in
  Array.blit t.seqs 0 seqs 0 t.size;
  t.seqs <- seqs;
  let values = Array.make cap t.dummy in
  Array.blit t.values 0 values 0 t.size;
  t.values <- values

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if lt t i p then begin
      swap t i p;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t ~prio value =
  if t.size = Array.length t.prios then grow t;
  t.prios.(t.size) <- prio;
  t.seqs.(t.size) <- t.next_seq;
  t.values.(t.size) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let push_at t ~prio ~seq value =
  if t.size = Array.length t.prios then grow t;
  t.prios.(t.size) <- prio;
  t.seqs.(t.size) <- seq;
  t.values.(t.size) <- value;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let top_seq t =
  if t.size = 0 then invalid_arg "Heap.top_seq: empty heap";
  t.seqs.(0)

let top_prio t =
  if t.size = 0 then invalid_arg "Heap.top_prio: empty heap";
  t.prios.(0)

let drop_min t =
  if t.size = 0 then invalid_arg "Heap.drop_min: empty heap";
  let v = t.values.(0) in
  t.size <- t.size - 1;
  if t.size > 0 then begin
    t.prios.(0) <- t.prios.(t.size);
    t.seqs.(0) <- t.seqs.(t.size);
    t.values.(0) <- t.values.(t.size)
  end;
  t.values.(t.size) <- t.dummy;
  if t.size > 0 then sift_down t 0;
  v

let pop t =
  if t.size = 0 then None
  else begin
    (* Bind the priority before [drop_min] replaces the root. *)
    let prio = t.prios.(0) in
    Some (prio, drop_min t)
  end

let peek t = if t.size = 0 then None else Some (t.prios.(0), t.values.(0))

let clear t =
  Array.fill t.values 0 t.size t.dummy;
  t.size <- 0;
  t.next_seq <- 0

let filter t keep =
  (* Compact the surviving entries (keeping their original [seq], so FIFO
     ties stay deterministic), then re-establish the heap shape. *)
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    if keep t.prios.(i) t.values.(i) then begin
      t.prios.(!kept) <- t.prios.(i);
      t.seqs.(!kept) <- t.seqs.(i);
      t.values.(!kept) <- t.values.(i);
      incr kept
    end
  done;
  let removed = t.size - !kept in
  Array.fill t.values !kept removed t.dummy;
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  removed

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (t.prios.(i), t.values.(i)) :: !acc
  done;
  !acc

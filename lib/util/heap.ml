type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?(capacity = 16) () =
  { data = Array.make (max 1 capacity) (Obj.magic 0); size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let lt a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow t =
  let data = Array.make (2 * Array.length t.data) t.data.(0) in
  Array.blit t.data 0 data 0 t.size;
  t.data <- data

let rec sift_up t i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if lt t.data.(i) t.data.(p) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(p);
      t.data.(p) <- tmp;
      sift_up t p
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.size && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t ~prio value =
  if t.size = Array.length t.data then grow t;
  t.data.(t.size) <- { prio; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.data.(0).prio, t.data.(0).value)

let clear t =
  t.size <- 0;
  t.next_seq <- 0

let filter t keep =
  (* Compact the surviving entries (keeping their original [seq], so FIFO
     ties stay deterministic), then re-establish the heap shape. *)
  let kept = ref 0 in
  for i = 0 to t.size - 1 do
    let e = t.data.(i) in
    if keep e.prio e.value then begin
      t.data.(!kept) <- e;
      incr kept
    end
  done;
  let removed = t.size - !kept in
  t.size <- !kept;
  for i = (t.size / 2) - 1 downto 0 do
    sift_down t i
  done;
  removed

let to_list t =
  let acc = ref [] in
  for i = t.size - 1 downto 0 do
    acc := (t.data.(i).prio, t.data.(i).value) :: !acc
  done;
  !acc

(** Mutable binary min-heap with user-supplied priorities.

    The discrete-event simulator stores pending events here keyed by virtual
    time; ties are broken by insertion order so that executions are
    deterministic for a fixed seed. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> prio:float -> 'a -> unit
(** Amortised O(log n). *)

val push_at : 'a t -> prio:float -> seq:int -> 'a -> unit
(** Like {!push} but with a caller-supplied tie-break sequence instead of
    the heap's own insertion counter: among equal priorities, smaller [seq]
    pops first.  The sharded parallel engine keys events by a global
    [(time, shard, seq)] order, where the tie-break is a property of the
    {e event}, not of when this heap happened to learn about it (a remote
    event is pushed at mailbox-drain time, which is racy).  Do not mix with
    {!push} on the same heap unless the two sequence spaces are disjoint. *)

val top_seq : 'a t -> int
(** Tie-break sequence of the minimum entry ({!push_at}'s [seq], or the
    insertion counter for {!push}).  Allocation-free.
    @raise Invalid_argument on an empty heap. *)

val pop : 'a t -> (float * 'a) option
(** Removes and returns the entry with the smallest priority (FIFO among
    equal priorities). O(log n).  The heap drops its own reference to the
    popped value: once the caller releases the result, the value is
    collectable (the backing array never pins popped entries). *)

val top_prio : 'a t -> float
(** Priority of the minimum entry without removing it.  Allocation-free
    (priorities live in an unboxed float array).
    @raise Invalid_argument on an empty heap. *)

val drop_min : 'a t -> 'a
(** Removes the minimum entry and returns its value only — the
    allocation-free form of {!pop} for hot loops that read the priority
    first via {!top_prio}.  Same release guarantee as {!pop}.
    @raise Invalid_argument on an empty heap. *)

val peek : 'a t -> (float * 'a) option

val clear : 'a t -> unit

val to_list : 'a t -> (float * 'a) list
(** Snapshot in arbitrary heap order; used by tests and fault injection. *)

val filter : 'a t -> (float -> 'a -> bool) -> int
(** [filter t keep] removes every entry for which [keep prio value] is
    false and returns how many were removed.  The relative order of
    surviving equal-priority entries is preserved (fault injection purges
    channels without perturbing FIFO determinism).  O(n log n). *)

(* Test-only mutation switches; see mutation.mli for the catalogue. *)

let names =
  [ "grant-drop"; "stop-check-race"; "corrupt-shared-stream"; "suppression-no-refresh" ]

let from_env =
  lazy
    (match Sys.getenv_opt "MDST_MUTANT" with
    | None | Some "" -> []
    | Some s ->
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> ""))

let forced : string list option ref = ref None

let active () = match !forced with Some l -> l | None -> Lazy.force from_env

let enabled name = List.mem name (active ())

let any () = active () <> []

let force l = forced := l

(* ---------------- coverage probes ----------------

   The same plumbing that threads mutant flags into the handlers carries
   lightweight branch counters back out of them: a probe site costs one
   load-and-branch while collection is off, and a hashtable bump while a
   harness (the schedule fuzzer) is collecting. *)

let collecting = ref false

let counts : (string, int ref) Hashtbl.t = Hashtbl.create 64

let probe name =
  if !collecting then
    match Hashtbl.find_opt counts name with
    | Some r -> incr r
    | None -> Hashtbl.add counts name (ref 1)

let probe_n name k =
  if !collecting && k > 0 then
    match Hashtbl.find_opt counts name with
    | Some r -> r := !r + k
    | None -> Hashtbl.add counts name (ref k)

let coverage_snapshot () =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) counts []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let with_coverage f =
  if !collecting then invalid_arg "Mutation.with_coverage: already collecting";
  Hashtbl.reset counts;
  collecting := true;
  match f () with
  | v ->
      collecting := false;
      (v, coverage_snapshot ())
  | exception e ->
      collecting := false;
      raise e

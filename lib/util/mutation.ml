(* Test-only mutation switches; see mutation.mli for the catalogue. *)

let names =
  [ "grant-drop"; "stop-check-race"; "corrupt-shared-stream"; "suppression-no-refresh" ]

let from_env =
  lazy
    (match Sys.getenv_opt "MDST_MUTANT" with
    | None | Some "" -> []
    | Some s ->
        String.split_on_char ',' s
        |> List.map String.trim
        |> List.filter (fun x -> x <> ""))

let forced : string list option ref = ref None

let active () = match !forced with Some l -> l | None -> Lazy.force from_env

let enabled name = List.mem name (active ())

let any () = active () <> []

let force l = forced := l

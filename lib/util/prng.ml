(* SplitMix64, computed on two 32-bit native-int limbs.

   The obvious representation — `{ mutable state : int64 }` — boxes every
   Int64 intermediate on a non-flambda compiler: one [bits64] is ~8 heap
   blocks, and the engine draws a latency per send, which made the PRNG
   the single largest allocation source in protocol macro-benchmarks
   (E20).  Native ints are immediate, so the same arithmetic carried as
   (hi, lo) 32-bit limbs allocates nothing.  The limb pipeline is
   bit-exact with the Int64 formulation (test/test_util.ml checks a
   reference implementation draw-for-draw): every replay trace, golden
   round count and recorded fault plan in the repository depends on these
   streams staying identical.

   Limb arithmetic notes (native int is 63-bit):
   - a 32x32 product needed in full is assembled from 16-bit halves
     (partial products stay below 2^33);
   - a product needed only mod 2^32 may use the native [*] directly:
     native overflow wraps mod 2^63 and 2^32 divides 2^63, so the low 32
     bits come out right regardless. *)

type t = {
  mutable hi : int;  (* bits 32..63 of the Weyl state, in [0, 2^32) *)
  mutable lo : int;  (* bits 0..31 *)
  mutable mhi : int;  (* scratch: high limb of the last mixed output *)
  mutable mlo : int;  (* scratch: low limb *)
}

let mask32 = 0xFFFFFFFF

(* golden gamma 0x9E3779B97F4A7C15 as limbs *)
let gamma_hi = 0x9E3779B9

let gamma_lo = 0x7F4A7C15

(* Finalizer: z ^= z >>> 30; z *= 0xBF58476D1CE4E5B9;
              z ^= z >>> 27; z *= 0x94D049BB133111EB;
              z ^= z >>> 31.
   Writes the result into the scratch limbs; allocates nothing. *)
let mix_into t h l =
  (* z ^= z >>> 30 *)
  let l = l lxor ((l lsr 30) lor ((h lsl 2) land mask32)) in
  let h = h lxor (h lsr 30) in
  (* z *= 0xBF58476D_1CE4E5B9 *)
  let l0 = l land 0xFFFF and l1 = l lsr 16 in
  let p00 = l0 * 0xE5B9 and p01 = l0 * 0x1CE4 in
  let p10 = l1 * 0xE5B9 and p11 = l1 * 0x1CE4 in
  let mid = p01 + p10 in
  let lowp = p00 + ((mid land 0xFFFF) lsl 16) in
  let carry = (lowp lsr 32) + (mid lsr 16) + p11 in
  let h = (carry + (l * 0xBF58476D) + (h * 0x1CE4E5B9)) land mask32 in
  let l = lowp land mask32 in
  (* z ^= z >>> 27 *)
  let l = l lxor ((l lsr 27) lor ((h lsl 5) land mask32)) in
  let h = h lxor (h lsr 27) in
  (* z *= 0x94D049BB_133111EB *)
  let l0 = l land 0xFFFF and l1 = l lsr 16 in
  let p00 = l0 * 0x11EB and p01 = l0 * 0x1331 in
  let p10 = l1 * 0x11EB and p11 = l1 * 0x1331 in
  let mid = p01 + p10 in
  let lowp = p00 + ((mid land 0xFFFF) lsl 16) in
  let carry = (lowp lsr 32) + (mid lsr 16) + p11 in
  let h = (carry + (l * 0x94D049BB) + (h * 0x133111EB)) land mask32 in
  let l = lowp land mask32 in
  (* z ^= z >>> 31 *)
  let l = l lxor ((l lsr 31) lor ((h lsl 1) land mask32)) in
  let h = h lxor (h lsr 31) in
  t.mhi <- h;
  t.mlo <- l

(* state += golden_gamma, with the carry crossing the limb boundary. *)
let advance t =
  let lo = t.lo + gamma_lo in
  t.lo <- lo land mask32;
  t.hi <- (t.hi + gamma_hi + (lo lsr 32)) land mask32

let create seed =
  (* Int64.of_int sign-extends bit 62 into bit 63; [asr] reproduces it. *)
  let t = { hi = (seed asr 32) land mask32; lo = seed land mask32; mhi = 0; mlo = 0 } in
  mix_into t t.hi t.lo;
  t.hi <- t.mhi;
  t.lo <- t.mlo;
  t

let copy t = { hi = t.hi; lo = t.lo; mhi = 0; mlo = 0 }

let next t =
  advance t;
  mix_into t t.hi t.lo

let bits64 t =
  next t;
  Int64.logor (Int64.shift_left (Int64.of_int t.mhi) 32) (Int64.of_int t.mlo)

let split t =
  next t;
  let sh = t.mhi and sl = t.mlo in
  mix_into t sh sl;
  { hi = t.mhi; lo = t.mlo; mhi = 0; mlo = 0 }

(* Non-negative 62-bit int from the top bits, fitting OCaml's native int. *)
let bits t =
  next t;
  (t.mhi lsl 30) lor (t.mlo lsr 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bound = bound - 1 in
  if bound land mask_bound = 0 then bits t land mask_bound
  else
    let rec draw () =
      let r = bits t in
      let v = r mod bound in
      if r - v > max_int - bound + 1 then draw () else v
    in
    draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

(* The 53-bit draw behind [float] (z >>> 11, exact in a double), as an
   int: boxing-sensitive callers — the engine's per-send latency draw —
   can keep the whole float computation unboxed.  One [next] per call,
   exactly like [float]. *)
let raw53 t =
  next t;
  (t.mhi lsl 21) lor (t.mlo lsr 11)

let float t bound = bound *. (float_of_int (raw53 t) /. 9007199254740992.0 (* 2^53 *))

let bool t =
  next t;
  t.mlo land 1 = 1

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module IS = Set.Make (Int) in
  let s = ref IS.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    if IS.mem v !s then s := IS.add j !s else s := IS.add v !s
  done;
  IS.elements !s

(* Equals [float (create seed) 1.0]: mix once to initialise, advance by one
   gamma, mix again, take the top 53 bits.  Runs on throwaway limbs — one
   short-lived record, no Int64 boxes — once per send under the slow-links
   / node-skew latency models. *)
let float_of_seed seed =
  let t = { hi = (seed asr 32) land mask32; lo = seed land mask32; mhi = 0; mlo = 0 } in
  mix_into t t.hi t.lo;
  t.hi <- t.mhi;
  t.lo <- t.mlo;
  advance t;
  mix_into t t.hi t.lo;
  float_of_int ((t.mhi lsl 21) lor (t.mlo lsr 11)) /. 9007199254740992.0 (* 2^53 *)

let seed_of_string str =
  let h = ref (0xcbf29ce484222325L |> Int64.to_int) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    str;
  !h

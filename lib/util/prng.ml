type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

(* Non-negative 62-bit int from the top bits, fitting OCaml's native int. *)
let bits t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let mask_bound = bound - 1 in
  if bound land mask_bound = 0 then bits t land mask_bound
  else
    let rec draw () =
      let r = bits t in
      let v = r mod bound in
      if r - v > max_int - bound + 1 then draw () else v
    in
    draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Prng.exponential: rate must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. rate

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let sample_without_replacement t k n =
  if k < 0 || k > n then invalid_arg "Prng.sample_without_replacement";
  (* Floyd's algorithm: O(k) expected insertions. *)
  let module IS = Set.Make (Int) in
  let s = ref IS.empty in
  for j = n - k to n - 1 do
    let v = int t (j + 1) in
    if IS.mem v !s then s := IS.add j !s else s := IS.add v !s
  done;
  IS.elements !s

(* Equals [float (create seed) 1.0] without allocating a generator — the
   hot path of per-link latency hashing samples this once per send. *)
let float_of_seed seed =
  let z = mix64 (Int64.add (mix64 (Int64.of_int seed)) golden_gamma) in
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.0 (* 2^53 *)

let seed_of_string str =
  let h = ref (0xcbf29ce484222325L |> Int64.to_int) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3 land max_int)
    str;
  !h

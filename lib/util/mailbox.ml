(* Bounded single-producer / single-consumer mailbox.

   One OCaml 5 domain pushes, one other domain pops; the ring indices are
   the only shared mutable state.  [Atomic] operations in OCaml are
   sequentially consistent, so the producer's plain write into [slots]
   happens-before the consumer's read of the same slot: the producer
   publishes the slot by storing [tail], and the consumer only reads slots
   strictly below the [tail] it loaded.  Slot indices are monotonically
   increasing ints masked into the ring, so producer and consumer never
   touch the same slot concurrently (the producer writes index [i] only
   when [i - head < capacity], i.e. after the consumer is done with it).

   Vacated slots are overwritten with a dummy on pop, exactly like
   {!Heap}: a parallel-engine mailbox is long-lived and must not pin the
   last messages that crossed it. *)

type 'a t = {
  slots : 'a array;
  mask : int;
  head : int Atomic.t;  (* next index to pop; advanced only by the consumer *)
  tail : int Atomic.t;  (* next index to push; advanced only by the producer *)
  dummy : 'a;
}

let create ?(capacity = 1024) () =
  if capacity <= 0 then invalid_arg "Mailbox.create: capacity must be positive";
  (* Round up to a power of two so the ring index is a mask, not a mod. *)
  let cap = ref 1 in
  while !cap < capacity do
    cap := !cap * 2
  done;
  {
    slots = Array.make !cap (Obj.magic 0);
    mask = !cap - 1;
    head = Atomic.make 0;
    tail = Atomic.make 0;
    dummy = Obj.magic 0;
  }

let capacity t = t.mask + 1

let length t = Atomic.get t.tail - Atomic.get t.head

let is_empty t = length t = 0

let try_push t v =
  let tail = Atomic.get t.tail in
  if tail - Atomic.get t.head > t.mask then false
  else begin
    t.slots.(tail land t.mask) <- v;
    (* Publishes the slot write: consumers load [tail] before the slot. *)
    Atomic.set t.tail (tail + 1);
    true
  end

let try_pop t =
  let head = Atomic.get t.head in
  if Atomic.get t.tail = head then None
  else begin
    let v = t.slots.(head land t.mask) in
    t.slots.(head land t.mask) <- t.dummy;
    Atomic.set t.head (head + 1);
    Some v
  end

(* Persistent integer sets as little-endian Patricia tries (Okasaki &
   Gill, "Fast Mergeable Integer Maps") with 32-element bitmap leaves,
   carrying the cardinality so size queries are O(1).

   The Search DFS of the protocol threads its visited-set through every
   hop; [mem]/[add] must therefore be sub-linear (they are O(min(W, log
   n))) and [cardinal] must be free (message-size metering runs on every
   send).  A leaf covers the 32-key block [32k, 32k+31] as one bitmap:
   protocol identifiers are dense (0..n-1), so a visited set of hundreds
   of nodes keeps only n/32 leaves and a correspondingly short Branch
   spine — [add] rebuilds ~5 fewer spine nodes per fresh insert than
   one-key leaves, which is most of its allocation (E20).

   The representation stays canonical — no leaf holds an empty bitmap,
   so two tries hold the same elements iff they are structurally equal —
   and polymorphic equality and hashing behave like set equality, which
   keeps messages carrying a set comparable in tests and reproducers. *)

type tree =
  | Empty
  | Leaf of int * int  (* (block prefix = key asr 5, bitmap of key land 31) *)
  | Branch of int * int * tree * tree
      (* (prefix, branching bit, subtree with bit clear, subtree with bit
         set); [prefix] holds the block-prefix bits below the branching
         bit. *)

type t = { card : int; tree : tree }

let empty = { card = 0; tree = Empty }

let is_empty t = t.card = 0

let cardinal t = t.card

(* Branching-bit arithmetic; [land] with the two's-complement negation
   isolates the lowest set bit, which works for negative keys too. *)
let lowest_bit x = x land -x

let branching_bit p0 p1 = lowest_bit (p0 lxor p1)

let mask p m = p land (m - 1)

let match_prefix k p m = mask k m = p

let rec mem_tree pfx bit = function
  | Empty -> false
  | Leaf (p, bm) -> p = pfx && bm land bit <> 0
  | Branch (p, m, l, r) ->
      match_prefix pfx p m && if pfx land m = 0 then mem_tree pfx bit l else mem_tree pfx bit r

let mem k t = mem_tree (k asr 5) (1 lsl (k land 31)) t.tree

let join p0 t0 p1 t1 =
  let m = branching_bit p0 p1 in
  if p0 land m = 0 then Branch (mask p0 m, m, t0, t1) else Branch (mask p0 m, m, t1, t0)

let rec add_tree pfx bit = function
  | Empty -> Leaf (pfx, bit)
  | Leaf (p, bm) as t ->
      if p = pfx then if bm land bit <> 0 then t else Leaf (p, bm lor bit)
      else join pfx (Leaf (pfx, bit)) p t
  | Branch (p, m, l, r) as t ->
      if match_prefix pfx p m then
        if pfx land m = 0 then Branch (p, m, add_tree pfx bit l, r)
        else Branch (p, m, l, add_tree pfx bit r)
      else join pfx (Leaf (pfx, bit)) p t

let add k t =
  if mem k t then t
  else { card = t.card + 1; tree = add_tree (k asr 5) (1 lsl (k land 31)) t.tree }

let singleton k = { card = 1; tree = Leaf (k asr 5, 1 lsl (k land 31)) }

let rec bit_index b i = if b = 1 then i else bit_index (b lsr 1) (i + 1)

let rec fold_bits f acc base bm =
  if bm = 0 then acc
  else
    let b = bm land -bm in
    fold_bits f (f acc (base lor bit_index b 0)) base (bm land (bm - 1))

let rec fold_tree f acc = function
  | Empty -> acc
  | Leaf (p, bm) -> fold_bits f acc (p lsl 5) bm
  | Branch (_, _, l, r) -> fold_tree f (fold_tree f acc l) r

let fold f acc t = fold_tree f acc t.tree

let of_list xs = List.fold_left (fun t k -> add k t) empty xs

let elements t = List.sort compare (fold (fun acc k -> k :: acc) [] t)

let pp ppf t =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map string_of_int (elements t)))

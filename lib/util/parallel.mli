(** Fixed-pool parallel map over OCaml 5 domains.

    Experiment sweeps run many independent, deterministically seeded
    simulations; this spreads them across cores without any shared mutable
    state (each task builds its own engine and PRNG, results are collected
    by index).  Order of results matches the input order, so determinism of
    the reported tables is preserved. *)

val default_domains : unit -> int
(** [max 1 (recommended_domain_count () - 1)]. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] applies [f] to every element, running up to [domains]
    (default {!default_domains}) evaluations concurrently.  Exceptions
    raised by [f] are re-raised in the caller after all workers finish.
    With [domains = 1] (or a single-element list) no domain is spawned. *)

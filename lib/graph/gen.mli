(** Graph generators — the workload families of EXPERIMENTS.md.

    All generators take an explicit {!Mdst_util.Prng.t} so experiments are
    reproducible.  Generators whose name carries the [_connected] suffix (or
    that are connected by construction) guarantee a connected result, which
    the paper's model requires. *)

type rng = Mdst_util.Prng.t

(** {1 Deterministic families} *)

val path : int -> Graph.t
(** The path P_n: the only graph whose MDST is trivially itself. *)

val ring : int -> Graph.t
(** Cycle C_n (n >= 3): removing any edge yields a degree-2 spanning tree. *)

val star : int -> Graph.t
(** K_{1,n-1}: the unique spanning tree has degree n-1 — worst case. *)

val wheel : int -> Graph.t
(** Hub + cycle of n-1 rim nodes (n >= 4); MDST degree is 3 for n >= 7. *)

val grid : rows:int -> cols:int -> Graph.t

val torus : rows:int -> cols:int -> Graph.t
(** Wrap-around grid; requires [rows >= 3] and [cols >= 3]. *)

val hypercube : int -> Graph.t
(** The d-dimensional hypercube Q_d (2^d nodes); Hamiltonian, so Δ* = 2. *)

val complete : int -> Graph.t
(** K_n; Hamiltonian path exists, so Δ* = 2. *)

val complete_bipartite : int -> int -> Graph.t

val petersen : unit -> Graph.t
(** The Petersen graph — hypohamiltonian: no Hamiltonian cycle but a
    Hamiltonian path, hence Δ* = 2 and the +1 slack is observable. *)

val lollipop : clique:int -> tail:int -> Graph.t
(** K_clique with a pendant path of [tail] nodes; used by experiment E7. *)

val caterpillar : spine:int -> legs:int -> Graph.t
(** A spine path where every spine node carries [legs] pendant leaves; every
    spanning tree is the graph itself (it is a tree), Δ* = legs + 2. *)

val star_of_cliques : cliques:int -> clique_size:int -> Graph.t
(** [cliques] disjoint K_{clique_size} whose node 0s are joined to one hub,
    plus an outer cycle linking the cliques: many simultaneous max-degree
    nodes — the workload of experiment E6. *)

val binary_tree_with_chords : depth:int -> Graph.t
(** Complete binary tree plus chords between consecutive leaves: the
    internal degree-3 nodes can be relieved through the leaf chords. *)

val deblock_gadget : unit -> Graph.t
(** The smallest instance where the paper's Deblock machinery is {e
    necessary}: node 0 is a degree-4 hub whose only improving edge [{5,1}]
    has the degree-3 node 5 as a blocking endpoint, and the only way to
    unblock 5 is the edge [{6,7}] inside its subtree.  Without recursive
    unblocking the tree is stuck at degree 4; with it, degree 3 = Δ*.
    Start from {!deblock_gadget_tree}. *)

val deblock_gadget_tree : Graph.t -> Graph.t * int array
(** The blocked starting tree for {!deblock_gadget} (parents array, rooted
    at node 0); returned with the graph for convenience. *)

(** {1 Random families} *)

val erdos_renyi : rng -> n:int -> p:float -> Graph.t
(** G(n, p); possibly disconnected. *)

val erdos_renyi_connected : rng -> n:int -> p:float -> Graph.t
(** G(n, p) conditioned on connectivity: a uniform random spanning tree is
    laid down first and each remaining pair is added with probability
    adjusted so the expected edge count matches G(n, p). *)

val random_connected : rng -> n:int -> m:int -> Graph.t
(** Uniform random tree (Prüfer) plus [m - (n-1)] extra distinct edges.
    Requires [n-1 <= m <= n(n-1)/2]. *)

val barabasi_albert : rng -> n:int -> k:int -> Graph.t
(** Preferential attachment, [k] links per arriving node; connected.
    Produces the heavy-tailed degree distributions of the paper's P2P
    motivation. *)

val random_geometric_connected : rng -> n:int -> radius:float -> Graph.t
(** n points uniform in the unit square, edge iff distance <= radius; the
    result is patched to connectivity by linking nearest components.  The
    sensor-network workload of the paper's introduction. *)

val random_regular : rng -> n:int -> d:int -> Graph.t
(** Random d-regular graph by pairing with restarts; requires [n*d] even,
    [d < n].  Connected with high probability for d >= 3 (resampled until
    connected). *)

(** {1 Utilities} *)

val with_random_ids : rng -> Graph.t -> Graph.t
(** Assign a random permutation of [0..n-1] as protocol identifiers, so the
    minimum-ID root lands on a random node. *)

val family_names : string list
(** The named families the CLI and the experiment harness expose. *)

val by_name : string -> rng -> n:int -> Graph.t
(** Look up a family by name with a single size parameter (density and
    shape parameters take the documented defaults).
    @raise Invalid_argument on unknown names. *)

module Prng = Mdst_util.Prng

let encode ~n edges =
  if n < 2 then invalid_arg "Prufer.encode: n >= 2";
  if List.length edges <> n - 1 then invalid_arg "Prufer.encode: wrong edge count";
  let deg = Array.make n 0 in
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v then
        invalid_arg "Prufer.encode: bad edge";
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1;
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let removed = Array.make n false in
  (* Min-heap of current leaves. *)
  let heap = Mdst_util.Heap.create () in
  for v = 0 to n - 1 do
    if deg.(v) = 1 then Mdst_util.Heap.push heap ~prio:(float_of_int v) v
  done;
  let seq = Array.make (max 0 (n - 2)) 0 in
  for i = 0 to n - 3 do
    let leaf =
      let rec next () =
        match Mdst_util.Heap.pop heap with
        | Some (_, v) when (not removed.(v)) && deg.(v) = 1 -> v
        | Some _ -> next ()
        | None -> invalid_arg "Prufer.encode: edges do not form a tree"
      in
      next ()
    in
    removed.(leaf) <- true;
    let neighbour =
      match List.find_opt (fun u -> not removed.(u)) adj.(leaf) with
      | Some u -> u
      | None -> invalid_arg "Prufer.encode: edges do not form a tree"
    in
    seq.(i) <- neighbour;
    deg.(neighbour) <- deg.(neighbour) - 1;
    deg.(leaf) <- 0;
    if deg.(neighbour) = 1 then
      Mdst_util.Heap.push heap ~prio:(float_of_int neighbour) neighbour
  done;
  seq

let decode ~n seq =
  if n < 2 then invalid_arg "Prufer.decode: n >= 2";
  if Array.length seq <> n - 2 then invalid_arg "Prufer.decode: wrong length";
  Array.iter (fun v -> if v < 0 || v >= n then invalid_arg "Prufer.decode: out of range") seq;
  let deg = Array.make n 1 in
  Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
  let heap = Mdst_util.Heap.create () in
  for v = 0 to n - 1 do
    if deg.(v) = 1 then Mdst_util.Heap.push heap ~prio:(float_of_int v) v
  done;
  let edges = ref [] in
  Array.iter
    (fun v ->
      match Mdst_util.Heap.pop heap with
      | Some (_, leaf) ->
          edges := (min leaf v, max leaf v) :: !edges;
          deg.(leaf) <- 0;
          deg.(v) <- deg.(v) - 1;
          if deg.(v) = 1 then Mdst_util.Heap.push heap ~prio:(float_of_int v) v
      | None -> invalid_arg "Prufer.decode: malformed sequence")
    seq;
  (* Two leaves remain; join them. *)
  let rest = ref [] in
  for v = 0 to n - 1 do
    if deg.(v) = 1 then rest := v :: !rest
  done;
  (match !rest with
  | [ a; b ] -> edges := (min a b, max a b) :: !edges
  | _ -> invalid_arg "Prufer.decode: malformed sequence");
  !edges

let random_tree rng ~n =
  if n < 2 then invalid_arg "Prufer.random_tree: n >= 2";
  if n = 2 then [ (0, 1) ]
  else decode ~n (Array.init (n - 2) (fun _ -> Prng.int rng n))

let random_spanning_tree_edges rng g =
  let edges = Array.copy (Graph.edges g) in
  Prng.shuffle rng edges;
  let uf = Union_find.create (Graph.n g) in
  let kept = ref [] in
  Array.iter (fun (u, v) -> if Union_find.union uf u v then kept := (u, v) :: !kept) edges;
  if List.length !kept <> Graph.n g - 1 then
    invalid_arg "Prufer.random_spanning_tree_edges: graph is disconnected";
  !kept

let graph_to_string ?(name = "g") g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  Graph.iter_nodes g (fun v ->
      Buffer.add_string buf (Printf.sprintf "  %d [label=\"%d\"];\n" v (Graph.id g v)));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let tree_to_string ?(name = "t") ?(highlight_max = true) t =
  let g = Tree.graph t in
  let k = Tree.max_degree t in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [shape=circle];\n" name);
  Graph.iter_nodes g (fun v ->
      let attrs =
        if highlight_max && Tree.degree t v = k then
          " style=filled fillcolor=lightcoral"
        else if v = Tree.root t then " style=filled fillcolor=lightblue"
        else ""
      in
      Buffer.add_string buf (Printf.sprintf "  %d [label=\"%d\"%s];\n" v (Graph.id g v) attrs));
  Graph.iter_edges g (fun u v ->
      let style = if Tree.is_tree_edge t u v then "penwidth=2" else "style=dotted" in
      Buffer.add_string buf (Printf.sprintf "  %d -- %d [%s];\n" u v style));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

(** Prüfer sequences: the classical bijection between labelled trees on n
    nodes and sequences in [\[0, n)]^(n-2).

    Used to generate uniformly random labelled trees (initial spanning trees
    for the protocol, adversarial initial configurations) and as a
    property-testing oracle: encode ∘ decode must be the identity. *)

val encode : n:int -> (int * int) list -> int array
(** [encode ~n edges] — Prüfer sequence of the tree given by its edge list.
    @raise Invalid_argument if the edges do not form a tree on [n >= 2]
    nodes. *)

val decode : n:int -> int array -> (int * int) list
(** Inverse of {!encode}; [n >= 2] and the sequence must have length
    [n - 2] with entries in range. *)

val random_tree : Mdst_util.Prng.t -> n:int -> (int * int) list
(** A uniformly random labelled tree (uniform over all n^(n-2) trees). *)

val random_spanning_tree_edges : Mdst_util.Prng.t -> Graph.t -> (int * int) list
(** Random spanning tree of an arbitrary connected graph via randomised
    Kruskal (not uniform, but supported on all spanning trees). *)

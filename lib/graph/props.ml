let density g =
  let n = Graph.n g in
  if n < 2 then 0.0 else 2.0 *. float_of_int (Graph.m g) /. float_of_int (n * (n - 1))

let average_degree g =
  let n = Graph.n g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.m g) /. float_of_int n

let degree_histogram g =
  let h = Array.make (Graph.max_degree g + 1) 0 in
  Graph.iter_nodes g (fun v ->
      let d = Graph.degree g v in
      h.(d) <- h.(d) + 1);
  h

let triangle_count g =
  (* For each edge (u,v), count common neighbours w > v to count each
     triangle once (u < v < w ordering via sorted adjacency). *)
  let count = ref 0 in
  Graph.iter_edges g (fun u v ->
      Array.iter
        (fun w -> if w > v && Graph.mem_edge g u w then incr count)
        (Graph.neighbors g v));
  !count

let wedge_count g =
  let acc = ref 0 in
  Graph.iter_nodes g (fun v ->
      let d = Graph.degree g v in
      acc := !acc + (d * (d - 1) / 2));
  !acc

let global_clustering g =
  let wedges = wedge_count g in
  if wedges = 0 then 0.0 else 3.0 *. float_of_int (triangle_count g) /. float_of_int wedges

let average_local_clustering g =
  let n = Graph.n g in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    Graph.iter_nodes g (fun v ->
        let nbrs = Graph.neighbors g v in
        let d = Array.length nbrs in
        if d >= 2 then begin
          let links = ref 0 in
          Array.iteri
            (fun i u ->
              for j = i + 1 to d - 1 do
                if Graph.mem_edge g u nbrs.(j) then incr links
              done)
            nbrs;
          total := !total +. (2.0 *. float_of_int !links /. float_of_int (d * (d - 1)))
        end);
    !total /. float_of_int n
  end

let degree_assortativity g =
  let m = Graph.m g in
  if m < 2 then 0.0
  else begin
    (* Pearson correlation over the 2m ordered endpoint pairs. *)
    let sx = ref 0.0 and sy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 and sxy = ref 0.0 in
    let count = float_of_int (2 * m) in
    let accumulate a b =
      let x = float_of_int (Graph.degree g a) and y = float_of_int (Graph.degree g b) in
      sx := !sx +. x;
      sy := !sy +. y;
      sxx := !sxx +. (x *. x);
      syy := !syy +. (y *. y);
      sxy := !sxy +. (x *. y)
    in
    Graph.iter_edges g (fun u v ->
        accumulate u v;
        accumulate v u);
    let cov = (!sxy /. count) -. (!sx /. count *. (!sy /. count)) in
    let var_x = (!sxx /. count) -. ((!sx /. count) ** 2.0) in
    let var_y = (!syy /. count) -. ((!sy /. count) ** 2.0) in
    if var_x <= 0.0 || var_y <= 0.0 then 0.0 else cov /. sqrt (var_x *. var_y)
  end

let summary g =
  [
    ("nodes", string_of_int (Graph.n g));
    ("edges", string_of_int (Graph.m g));
    ("density", Printf.sprintf "%.4f" (density g));
    ("average degree", Printf.sprintf "%.2f" (average_degree g));
    ("max degree", string_of_int (Graph.max_degree g));
    ("min degree", string_of_int (Graph.min_degree g));
    ("connected", string_of_bool (Algo.is_connected g));
    ("diameter", string_of_int (Algo.diameter g));
    ("bridges", string_of_int (List.length (Algo.bridges g)));
    ("triangles", string_of_int (triangle_count g));
    ("global clustering", Printf.sprintf "%.4f" (global_clustering g));
    ("avg local clustering", Printf.sprintf "%.4f" (average_local_clustering g));
    ("degree assortativity", Printf.sprintf "%.4f" (degree_assortativity g));
  ]

(** Undirected simple graphs over nodes [0 .. n-1].

    This is the topology substrate for the whole repository: the simulator
    instantiates one process per node, the MDST protocol runs on top, and all
    baselines consume the same structure.  Nodes are dense integer indices;
    each node additionally carries a {e protocol identifier} ([id]) because
    the paper's algorithm breaks symmetry by unique IDs (the spanning tree
    roots itself at the minimum ID).  By default [id i = i], but generators
    can permute IDs to exercise the ID-dependent code paths. *)

type t

(** {1 Construction} *)

val of_edges : ?ids:int array -> n:int -> (int * int) list -> t
(** [of_edges ~n edges] builds a graph with [n] nodes.  Self-loops are
    rejected; duplicate edges (in either orientation) are collapsed.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or if
    [ids] is not a permutation-free array of [n] distinct identifiers. *)

val complete : int -> t

val empty : int -> t

(** {1 Accessors} *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of edges. *)

val neighbors : t -> int -> int array
(** Sorted neighbour array; the returned array must not be mutated. *)

val degree : t -> int -> int

val max_degree : t -> int

val min_degree : t -> int

val mem_edge : t -> int -> int -> bool
(** O(log degree). *)

val edges : t -> (int * int) array
(** Each edge appears once, as [(u, v)] with [u < v]; the array is sorted and
    must not be mutated. *)

val id : t -> int -> int
(** Protocol identifier of node index [i]. *)

val index_of_id : t -> int -> int
(** Inverse of {!id}. @raise Not_found for unknown identifiers. *)

val min_id_node : t -> int
(** Node index holding the smallest protocol identifier. *)

val relabel_ids : t -> int array -> t
(** [relabel_ids g ids] is [g] with fresh protocol identifiers. *)

(** {1 Iteration} *)

val iter_nodes : t -> (int -> unit) -> unit

val iter_edges : t -> (int -> int -> unit) -> unit

val fold_edges : t -> init:'a -> f:('a -> int -> int -> 'a) -> 'a

(** {1 Misc} *)

val non_edges : t -> (int * int) list
(** All node pairs not joined by an edge ([u < v]). O(n^2). *)

val equal : t -> t -> bool
(** Structural equality on node count, edge set and identifiers. *)

val pp : Format.formatter -> t -> unit

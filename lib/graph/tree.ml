type t = {
  graph : Graph.t;
  root : int;
  parents : int array;
  depths : int array;
  degrees : int array;
  children : int list array;
}

exception Invalid of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid s)) fmt

let finish graph ~root parents =
  let n = Graph.n graph in
  let children = Array.make n [] in
  for v = n - 1 downto 0 do
    if v <> root then begin
      let p = parents.(v) in
      children.(p) <- v :: children.(p)
    end
  done;
  let depths = Array.make n (-1) in
  let degrees = Array.make n 0 in
  depths.(root) <- 0;
  (* BFS from the root over parent links guarantees every depth is set iff
     the parent structure is acyclic and spanning. *)
  let visited = ref 1 in
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun c ->
        if depths.(c) <> -1 then invalid "node %d reached twice" c;
        depths.(c) <- depths.(v) + 1;
        incr visited;
        Queue.add c q)
      children.(v)
  done;
  if !visited <> n then invalid "parent structure is not spanning (%d of %d reached)" !visited n;
  for v = 0 to n - 1 do
    degrees.(v) <- List.length children.(v) + if v = root then 0 else 1
  done;
  { graph; root; parents; depths; degrees; children }

let of_parents graph ~root parents =
  let n = Graph.n graph in
  if n = 0 then invalid "empty graph";
  if Array.length parents <> n then invalid "parents length mismatch";
  if root < 0 || root >= n then invalid "root out of range";
  if parents.(root) <> root then invalid "root must be its own parent";
  Array.iteri
    (fun v p ->
      if v <> root then begin
        if p < 0 || p >= n then invalid "parent of %d out of range" v;
        if p = v then invalid "non-root node %d is its own parent" v;
        if not (Graph.mem_edge graph v p) then invalid "parent link %d->%d is not a graph edge" v p
      end)
    parents;
  finish graph ~root (Array.copy parents)

let of_edge_list graph ~root edges =
  let n = Graph.n graph in
  if List.length edges <> n - 1 then invalid "expected %d edges, got %d" (n - 1) (List.length edges);
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if not (Graph.mem_edge graph u v) then invalid "edge %d-%d not in graph" u v;
      adj.(u) <- v :: adj.(u);
      adj.(v) <- u :: adj.(v))
    edges;
  let parents = Array.make n (-1) in
  parents.(root) <- root;
  let q = Queue.create () in
  Queue.add root q;
  let visited = ref 1 in
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    List.iter
      (fun u ->
        if parents.(u) = -1 then begin
          parents.(u) <- v;
          incr visited;
          Queue.add u q
        end)
      adj.(v)
  done;
  if !visited <> n then invalid "edge list does not span the graph";
  finish graph ~root parents

let graph t = t.graph

let root t = t.root

let parent t v = t.parents.(v)

let depth t v = t.depths.(v)

let degree t v = t.degrees.(v)

let max_degree t = Array.fold_left max 0 t.degrees

let max_degree_nodes t =
  let k = max_degree t in
  let acc = ref [] in
  for v = Graph.n t.graph - 1 downto 0 do
    if t.degrees.(v) = k then acc := v :: !acc
  done;
  !acc

let children t v = t.children.(v)

let is_tree_edge t u v = (u <> v) && (t.parents.(u) = v || t.parents.(v) = u)

let edge_list t =
  let acc = ref [] in
  Array.iteri
    (fun v p -> if v <> t.root then acc := (if v < p then (v, p) else (p, v)) :: !acc)
    t.parents;
  List.sort compare !acc

let non_tree_edges t =
  Graph.fold_edges t.graph ~init:[] ~f:(fun acc u v ->
      if is_tree_edge t u v then acc else (u, v) :: acc)
  |> List.sort compare

let path_to_root t v =
  let rec up v acc = if v = t.root then List.rev (v :: acc) else up t.parents.(v) (v :: acc) in
  up v []

let fundamental_cycle t (u, v) =
  if not (Graph.mem_edge t.graph u v) then invalid "%d-%d is not a graph edge" u v;
  if is_tree_edge t u v then invalid "%d-%d is a tree edge" u v;
  (* Walk both endpoints up to their LCA, guided by depths. *)
  let rec climb a b up_a up_b =
    if a = b then (a, up_a, up_b)
    else if t.depths.(a) >= t.depths.(b) then climb t.parents.(a) b (a :: up_a) up_b
    else climb a t.parents.(b) up_a (b :: up_b)
  in
  let lca, from_u_rev, from_v_rev = climb u v [] [] in
  (* from_u_rev = [.. ; u] upward; from_v_rev likewise: glue u..lca..v. *)
  List.rev_append from_u_rev (lca :: from_v_rev)

let swap t ~remove ~add =
  let ru, rv = remove and au, av = add in
  if not (is_tree_edge t ru rv) then invalid "swap: %d-%d is not a tree edge" ru rv;
  if not (Graph.mem_edge t.graph au av) then invalid "swap: %d-%d is not a graph edge" au av;
  if is_tree_edge t au av then invalid "swap: %d-%d is already a tree edge" au av;
  let cycle = fundamental_cycle t (au, av) in
  let on_cycle =
    let rec consecutive = function
      | a :: (b :: _ as rest) ->
          ((a = ru && b = rv) || (a = rv && b = ru)) || consecutive rest
      | _ -> false
    in
    consecutive cycle
  in
  if not on_cycle then invalid "swap: removed edge is not on the fundamental cycle of the added edge";
  let keep = List.filter (fun e -> e <> (min ru rv, max ru rv)) (edge_list t) in
  of_edge_list t.graph ~root:t.root ((min au av, max au av) :: keep)

let in_subtree t ~root:w v =
  let rec up x = x = w || (x <> t.root && up t.parents.(x)) in
  up v

let equal_edges a b = edge_list a = edge_list b

let degree_histogram t =
  let k = max_degree t in
  let h = Array.make (k + 1) 0 in
  Array.iter (fun d -> h.(d) <- h.(d) + 1) t.degrees;
  h

let pp ppf t =
  Format.fprintf ppf "@[<v>tree root=%d deg=%d@," t.root (max_degree t);
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -- %d@," u v) (edge_list t);
  Format.fprintf ppf "@]"

(** Rooted spanning trees of a {!Graph.t}, as parent-pointer arrays.

    This is the common currency between the protocol checker, the sequential
    baselines and the exact solver: all of them produce or consume values of
    this type.  A tree is always validated against its host graph — every
    parent link must be a real graph edge, there must be exactly one root,
    and every node must reach it. *)

type t

exception Invalid of string

(** {1 Construction} *)

val of_parents : Graph.t -> root:int -> int array -> t
(** [of_parents g ~root parents] checks that [parents] describes a spanning
    tree of [g] rooted at [root] (with [parents.(root) = root]).
    @raise Invalid otherwise. *)

val of_edge_list : Graph.t -> root:int -> (int * int) list -> t
(** Builds the parent orientation by BFS from [root] over the given edges.
    @raise Invalid if the edges do not form a spanning tree of [g]. *)

(** {1 Accessors} *)

val graph : t -> Graph.t

val root : t -> int

val parent : t -> int -> int
(** [parent t root = root]. *)

val depth : t -> int -> int

val degree : t -> int -> int
(** Degree of the node {e in the tree} (children + parent edge). *)

val max_degree : t -> int
(** [deg(T)] in the paper's notation: the degree of the tree. *)

val max_degree_nodes : t -> int list
(** All nodes whose tree degree equals {!max_degree}. *)

val children : t -> int -> int list

val is_tree_edge : t -> int -> int -> bool

val edge_list : t -> (int * int) list
(** The n-1 tree edges, each as [(u, v)] with [u < v], sorted. *)

val non_tree_edges : t -> (int * int) list
(** Graph edges absent from the tree, sorted. *)

(** {1 Structure} *)

val path_to_root : t -> int -> int list
(** [path_to_root t v] is [v; parent v; ...; root]. *)

val fundamental_cycle : t -> int * int -> int list
(** [fundamental_cycle t (u, v)] for a non-tree edge [{u,v}] returns the tree
    path [u; ...; v] (both endpoints included); adding edge [{u,v}] closes
    the fundamental cycle C_e of the paper.
    @raise Invalid if [{u,v}] is a tree edge or not a graph edge. *)

val swap : t -> remove:int * int -> add:int * int -> t
(** [swap t ~remove ~add] exchanges a tree edge for a non-tree edge.  The
    root is preserved.  @raise Invalid if [remove] is not a tree edge, [add]
    is not a graph edge, or the exchange disconnects the tree (i.e. [remove]
    does not lie on the fundamental cycle of [add]). *)

val in_subtree : t -> root:int -> int -> bool
(** [in_subtree t ~root:w v] — is [v] in the subtree hanging from [w]? *)

val equal_edges : t -> t -> bool
(** Same undirected edge set (orientation ignored). *)

val degree_histogram : t -> int array
(** [h.(d)] = number of nodes of tree degree [d]; length [max_degree + 1]. *)

val pp : Format.formatter -> t -> unit

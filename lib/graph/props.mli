(** Structural graph statistics, for workload characterisation in reports
    and the CLI's [props] subcommand.  The paper's motivation is about
    degree concentration (hubs), so the hub-oriented measures matter most
    here. *)

val density : Graph.t -> float
(** m / (n choose 2); 0 for graphs with fewer than two nodes. *)

val average_degree : Graph.t -> float

val degree_histogram : Graph.t -> int array
(** [h.(d)] = number of nodes of degree [d]; length [max_degree + 1]. *)

val triangle_count : Graph.t -> int

val global_clustering : Graph.t -> float
(** 3 * triangles / wedges (transitivity); 0 when there are no wedges. *)

val average_local_clustering : Graph.t -> float
(** Watts–Strogatz mean of per-node clustering coefficients. *)

val degree_assortativity : Graph.t -> float
(** Pearson correlation of endpoint degrees over edges; 0 when undefined
    (fewer than 2 edges or constant degrees).  Negative values mean hubs
    attach to leaves (typical for BA graphs). *)

val summary : Graph.t -> (string * string) list
(** Human-readable key/value lines for the CLI. *)

(** Graphviz DOT export for graphs and spanning trees — the CLI's [--dot]
    flag renders runs for inspection. *)

val graph_to_string : ?name:string -> Graph.t -> string

val tree_to_string : ?name:string -> ?highlight_max:bool -> Tree.t -> string
(** Tree edges solid, remaining graph edges dotted; with [highlight_max]
    (default true) nodes at the tree's maximum degree are filled. *)

(** Plain-text graph exchange format.

    The format is line-based and diff-friendly:

    {v
    # optional comments
    n 5
    ids 10 11 12 13 14        (optional; defaults to 0..n-1)
    0 1
    1 2
    ...
    v}

    Used by the CLI's [--input]/[--save-graph] so experiments can run on
    user-supplied topologies. *)

val to_string : Graph.t -> string

val of_string : string -> Graph.t
(** @raise Invalid_argument on malformed input. *)

val save : string -> Graph.t -> unit
(** [save path g] writes the textual form to [path]. *)

val load : string -> Graph.t
(** @raise Invalid_argument on malformed input; @raise Sys_error on IO. *)

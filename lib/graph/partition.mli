(** Balanced edge-cut partitioning for the sharded parallel engine.

    [blocks graph ~parts] assigns every node to one of [parts] shards:
    regions are grown by breadth-first search under a strict balance cap
    (every part ends within the floor/ceil band of [n / parts]), then a
    bounded greedy sweep moves boundary nodes to the neighbouring part
    holding most of their edges when that strictly reduces the edge cut
    without leaving the balance band.

    The result is deterministic in (graph, parts) — the parallel engine's
    event total order depends on the shard layout, so partitioning must be
    a pure function.  Parts need not be connected (balance wins on graphs
    where contiguous regions of equal size do not exist), but BFS growth
    keeps them contiguous on mesh-like topologies. *)

val blocks : Graph.t -> parts:int -> int array
(** Part index per node, each in [0 .. min parts n - 1].  With
    [parts >= n] every node is its own part; with [parts = 1] all zeros.
    @raise Invalid_argument when [parts <= 0]. *)

val cut_edges : Graph.t -> int array -> int
(** Number of edges whose endpoints live in different parts. *)

val part_sizes : n:int -> parts:int -> int array
(** The balanced size quota: [n / parts] per part, the first [n mod parts]
    parts taking one extra. *)

val members : int array -> parts:int -> int array array
(** Node indices per part, ascending.  @raise Invalid_argument when an
    assignment is outside [0 .. parts - 1]. *)

val validate : Graph.t -> int array -> parts:int -> bool
(** Cheap well-formedness check: right length, all assignments in range. *)

(** Classical graph algorithms over {!Graph.t}.

    These are used (a) by generators to enforce connectivity, (b) by the
    baselines of experiment E2 (BFS / DFS / uniform-random spanning trees),
    and (c) by the exact solver for pruning (bridges must stay in every
    spanning tree). *)

val bfs_order : Graph.t -> src:int -> int array
(** Visit order (first element is [src]); only the component of [src]. *)

val bfs_distances : Graph.t -> src:int -> int array
(** Hop distances; unreachable nodes get [-1]. *)

val is_connected : Graph.t -> bool

val components : Graph.t -> int array
(** Component label per node, labels are [0 ..]. *)

val component_count : Graph.t -> int

val bfs_tree : Graph.t -> root:int -> Tree.t
(** Breadth-first spanning tree. @raise Tree.Invalid when disconnected. *)

val dfs_tree : Graph.t -> root:int -> Tree.t
(** Depth-first spanning tree (iterative, lowest-numbered neighbour first). *)

val random_spanning_tree : Mdst_util.Prng.t -> Graph.t -> root:int -> Tree.t
(** Uniformly random spanning tree by Wilson's loop-erased random-walk
    algorithm — the "no intelligence at all" baseline of E2. *)

val kruskal_random_tree : Mdst_util.Prng.t -> Graph.t -> root:int -> Tree.t
(** Spanning tree from Kruskal's algorithm under random edge weights. *)

val random_ids : Mdst_util.Prng.t -> int -> int array
(** A random permutation of [0 .. n-1], for relabelling protocol IDs. *)

val bridges : Graph.t -> (int * int) list
(** All bridge edges [(u, v)], [u < v], via Tarjan low-link. *)

val diameter : Graph.t -> int
(** Exact diameter by n BFS runs; [-1] when disconnected or empty. *)

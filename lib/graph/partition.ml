(* Graph partitioning for the sharded parallel engine.

   [blocks] grows one region per part by breadth-first search under a
   strict balance cap, then runs a greedy boundary-refinement sweep that
   moves nodes to the neighbouring part holding most of their edges
   whenever the move both respects the balance and strictly reduces the
   edge cut.  BFS growth keeps regions contiguous on mesh-like topologies
   (a grid partitions into near-optimal strips); the refinement pass
   recovers most of what seeded growth loses on expander-ish graphs (ER).

   Everything is deterministic: seeds are the lowest-index unassigned
   nodes, BFS visits sorted neighbour arrays, and the refinement sweep
   scans nodes in index order.  The parallel engine's shard layout — and
   with it the [(time, shard, seq)] total order of a run — is a pure
   function of (graph, parts). *)

let part_sizes ~n ~parts =
  let base = n / parts and extra = n mod parts in
  Array.init parts (fun p -> base + if p < extra then 1 else 0)

let blocks graph ~parts =
  let n = Graph.n graph in
  if parts <= 0 then invalid_arg "Partition.blocks: parts must be positive";
  let k = min parts n in
  let part = Array.make n (-1) in
  if k <= 1 then Array.make n 0
  else begin
    let quota = part_sizes ~n ~parts:k in
    (* Ring buffer as BFS queue; every node enters at most once. *)
    let queue = Array.make n 0 in
    let next_seed = ref 0 in
    for p = 0 to k - 1 do
      let assigned = ref 0 in
      let head = ref 0 and tail = ref 0 in
      while !assigned < quota.(p) do
        if !head = !tail then begin
          (* Frontier exhausted (or fresh part): seed from the lowest
             unassigned node.  The common case enters here once per part. *)
          while part.(!next_seed) >= 0 do
            incr next_seed
          done;
          part.(!next_seed) <- p;
          incr assigned;
          queue.(!tail) <- !next_seed;
          incr tail
        end
        else begin
          let u = queue.(!head) in
          incr head;
          let nbs = Graph.neighbors graph u in
          let i = ref 0 and len = Array.length nbs in
          while !assigned < quota.(p) && !i < len do
            let v = nbs.(!i) in
            incr i;
            if part.(v) < 0 then begin
              part.(v) <- p;
              incr assigned;
              queue.(!tail) <- v;
              incr tail
            end
          done
        end
      done
    done;
    (* Greedy refinement: move boundary nodes to the adjacent part owning
       most of their edges when the move strictly reduces the cut and
       keeps every part within the floor/ceil balance band. *)
    let sizes = Array.make k 0 in
    Array.iter (fun p -> sizes.(p) <- sizes.(p) + 1) part;
    let floor_sz = n / k and ceil_sz = (n + k - 1) / k in
    let counts = Array.make k 0 in
    for _sweep = 1 to 2 do
      for u = 0 to n - 1 do
        let pu = part.(u) in
        if sizes.(pu) > floor_sz then begin
          let nbs = Graph.neighbors graph u in
          let touched = ref [] in
          Array.iter
            (fun v ->
              let pv = part.(v) in
              if counts.(pv) = 0 then touched := pv :: !touched;
              counts.(pv) <- counts.(pv) + 1)
            nbs;
          let best = ref pu and best_count = ref counts.(pu) in
          List.iter
            (fun p ->
              if
                p <> pu
                && sizes.(p) < ceil_sz
                && (counts.(p) > !best_count
                   || (counts.(p) = !best_count && !best <> pu && p < !best))
              then begin
                best := p;
                best_count := counts.(p)
              end)
            (List.sort compare !touched);
          if !best <> pu then begin
            part.(u) <- !best;
            sizes.(pu) <- sizes.(pu) - 1;
            sizes.(!best) <- sizes.(!best) + 1
          end;
          List.iter (fun p -> counts.(p) <- 0) !touched
        end
      done
    done;
    part
  end

let cut_edges graph part =
  Graph.fold_edges graph ~init:0 ~f:(fun acc u v ->
      if part.(u) <> part.(v) then acc + 1 else acc)

let members part ~parts =
  let sizes = Array.make parts 0 in
  Array.iter
    (fun p ->
      if p < 0 || p >= parts then invalid_arg "Partition.members: part out of range";
      sizes.(p) <- sizes.(p) + 1)
    part;
  let out = Array.init parts (fun p -> Array.make sizes.(p) 0) in
  let fill = Array.make parts 0 in
  Array.iteri
    (fun v p ->
      out.(p).(fill.(p)) <- v;
      fill.(p) <- fill.(p) + 1)
    part;
  out

let validate graph part ~parts =
  Array.length part = Graph.n graph
  && Array.for_all (fun p -> p >= 0 && p < parts) part

let to_string g =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "n %d\n" (Graph.n g));
  let default_ids = ref true in
  Graph.iter_nodes g (fun v -> if Graph.id g v <> v then default_ids := false);
  if not !default_ids then begin
    Buffer.add_string buf "ids";
    Graph.iter_nodes g (fun v -> Buffer.add_string buf (Printf.sprintf " %d" (Graph.id g v)));
    Buffer.add_char buf '\n'
  end;
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string text =
  let lines = String.split_on_char '\n' text in
  let n = ref (-1) in
  let ids = ref None in
  let edges = ref [] in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then begin
        let fail msg = invalid_arg (Printf.sprintf "Io.of_string: line %d: %s" (lineno + 1) msg) in
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | [ "n"; v ] -> (
            match int_of_string_opt v with
            | Some v when v >= 0 -> n := v
            | _ -> fail "bad node count")
        | "ids" :: rest ->
            let parse s =
              match int_of_string_opt s with Some v -> v | None -> fail "bad identifier"
            in
            ids := Some (Array.of_list (List.map parse rest))
        | [ a; b ] -> (
            match (int_of_string_opt a, int_of_string_opt b) with
            | Some a, Some b -> edges := (a, b) :: !edges
            | _ -> fail "bad edge")
        | _ -> fail "unrecognised line"
      end)
    lines;
  if !n < 0 then invalid_arg "Io.of_string: missing 'n <count>' header";
  Graph.of_edges ?ids:!ids ~n:!n (List.rev !edges)

let save path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (really_input_string ic (in_channel_length ic)))

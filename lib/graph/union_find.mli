(** Disjoint-set forest with union by rank and path compression.

    Used by the random-spanning-tree and Kruskal baselines, by the exact MDST
    branch-and-bound solver for connectivity pruning, and by graph
    generators to enforce connectivity. *)

type t

val create : int -> t

val find : t -> int -> int
(** Representative of the element's set, with path compression. *)

val union : t -> int -> int -> bool
(** Merge two sets; returns [false] when already joined. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets currently alive. *)

val copy : t -> t
(** Independent snapshot (the branch-and-bound solver backtracks on it). *)

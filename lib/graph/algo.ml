module Prng = Mdst_util.Prng

let bfs_distances g ~src =
  let n = Graph.n g in
  let dist = Array.make n (-1) in
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun u ->
        if dist.(u) = -1 then begin
          dist.(u) <- dist.(v) + 1;
          Queue.add u q
        end)
      (Graph.neighbors g v)
  done;
  dist

let bfs_order g ~src =
  let n = Graph.n g in
  let seen = Array.make n false in
  let order = ref [] in
  seen.(src) <- true;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := v :: !order;
    Array.iter
      (fun u ->
        if not seen.(u) then begin
          seen.(u) <- true;
          Queue.add u q
        end)
      (Graph.neighbors g v)
  done;
  Array.of_list (List.rev !order)

let components g =
  let n = Graph.n g in
  let label = Array.make n (-1) in
  let next = ref 0 in
  for src = 0 to n - 1 do
    if label.(src) = -1 then begin
      let c = !next in
      incr next;
      label.(src) <- c;
      let q = Queue.create () in
      Queue.add src q;
      while not (Queue.is_empty q) do
        let v = Queue.pop q in
        Array.iter
          (fun u ->
            if label.(u) = -1 then begin
              label.(u) <- c;
              Queue.add u q
            end)
          (Graph.neighbors g v)
      done
    end
  done;
  label

let component_count g =
  let label = components g in
  Array.fold_left max (-1) label + 1

let is_connected g = Graph.n g > 0 && component_count g = 1

let bfs_tree g ~root =
  let n = Graph.n g in
  let parents = Array.make n (-1) in
  parents.(root) <- root;
  let q = Queue.create () in
  Queue.add root q;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    Array.iter
      (fun u ->
        if parents.(u) = -1 then begin
          parents.(u) <- v;
          Queue.add u q
        end)
      (Graph.neighbors g v)
  done;
  Tree.of_parents g ~root parents

let dfs_tree g ~root =
  let n = Graph.n g in
  let parents = Array.make n (-1) in
  let stack = Stack.create () in
  (* Parent is committed at visit (pop) time, so the tree is a true DFS
     tree: deep paths, few branches. *)
  Stack.push (root, root) stack;
  while not (Stack.is_empty stack) do
    let v, p = Stack.pop stack in
    if parents.(v) = -1 then begin
      parents.(v) <- p;
      (* Push in reverse so the lowest-numbered neighbour is explored first. *)
      let nbrs = Graph.neighbors g v in
      for i = Array.length nbrs - 1 downto 0 do
        if parents.(nbrs.(i)) = -1 then Stack.push (nbrs.(i), v) stack
      done
    end
  done;
  Tree.of_parents g ~root parents

let random_spanning_tree rng g ~root =
  let n = Graph.n g in
  let parents = Array.make n (-1) in
  let in_tree = Array.make n false in
  in_tree.(root) <- true;
  parents.(root) <- root;
  for start = 0 to n - 1 do
    if not in_tree.(start) then begin
      (* Loop-erased random walk: record the successor taken at each node;
         re-visiting a node overwrites it, which erases the loop. *)
      let v = ref start in
      while not in_tree.(!v) do
        let next = Prng.choose rng (Graph.neighbors g !v) in
        parents.(!v) <- next;
        v := next
      done;
      let v = ref start in
      while not in_tree.(!v) do
        in_tree.(!v) <- true;
        v := parents.(!v)
      done
    end
  done;
  Tree.of_parents g ~root parents

let kruskal_random_tree rng g ~root =
  let edges = Array.copy (Graph.edges g) in
  Prng.shuffle rng edges;
  let uf = Union_find.create (Graph.n g) in
  let kept = ref [] in
  Array.iter (fun (u, v) -> if Union_find.union uf u v then kept := (u, v) :: !kept) edges;
  Tree.of_edge_list g ~root !kept

let random_ids rng n =
  let ids = Array.init n (fun i -> i) in
  Prng.shuffle rng ids;
  ids

let bridges g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let timer = ref 0 in
  let result = ref [] in
  (* Iterative Tarjan: frames are (node, parent, next neighbour index). *)
  for src = 0 to n - 1 do
    if disc.(src) = -1 then begin
      let stack = Stack.create () in
      disc.(src) <- !timer;
      low.(src) <- !timer;
      incr timer;
      Stack.push (src, -1, ref 0) stack;
      while not (Stack.is_empty stack) do
        let v, parent, idx = Stack.top stack in
        let nbrs = Graph.neighbors g v in
        if !idx < Array.length nbrs then begin
          let u = nbrs.(!idx) in
          incr idx;
          if disc.(u) = -1 then begin
            disc.(u) <- !timer;
            low.(u) <- !timer;
            incr timer;
            Stack.push (u, v, ref 0) stack
          end
          else if u <> parent then low.(v) <- min low.(v) disc.(u)
        end
        else begin
          ignore (Stack.pop stack);
          if parent <> -1 then begin
            if low.(v) > disc.(parent) then
              result := (min v parent, max v parent) :: !result;
            low.(parent) <- min low.(parent) low.(v)
          end
        end
      done
    end
  done;
  List.sort compare !result

let diameter g =
  let n = Graph.n g in
  if n = 0 || not (is_connected g) then -1
  else begin
    let best = ref 0 in
    for src = 0 to n - 1 do
      let dist = bfs_distances g ~src in
      Array.iter (fun d -> if d > !best then best := d) dist
    done;
    !best
  end

module Prng = Mdst_util.Prng

type rng = Prng.t

let path n =
  if n < 1 then invalid_arg "Gen.path: n >= 1";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Gen.ring: n >= 3";
  Graph.of_edges ~n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 2 then invalid_arg "Gen.star: n >= 2";
  Graph.of_edges ~n (List.init (n - 1) (fun i -> (0, i + 1)))

let wheel n =
  if n < 4 then invalid_arg "Gen.wheel: n >= 4";
  let rim = List.init (n - 2) (fun i -> (i + 1, i + 2)) in
  let close = (n - 1, 1) in
  let spokes = List.init (n - 1) (fun i -> (0, i + 1)) in
  Graph.of_edges ~n (close :: (rim @ spokes))

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Gen.grid";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (idx r c, idx r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (idx r c, idx (r + 1) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let torus ~rows ~cols =
  if rows < 3 || cols < 3 then invalid_arg "Gen.torus: rows, cols >= 3";
  let idx r c = (r * cols) + c in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      edges := (idx r c, idx r ((c + 1) mod cols)) :: !edges;
      edges := (idx r c, idx ((r + 1) mod rows) c) :: !edges
    done
  done;
  Graph.of_edges ~n:(rows * cols) !edges

let hypercube d =
  if d < 1 || d > 20 then invalid_arg "Gen.hypercube: 1 <= d <= 20";
  let n = 1 lsl d in
  let edges = ref [] in
  for v = 0 to n - 1 do
    for b = 0 to d - 1 do
      let u = v lxor (1 lsl b) in
      if u > v then edges := (v, u) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let complete = Graph.complete

let complete_bipartite a b =
  if a < 1 || b < 1 then invalid_arg "Gen.complete_bipartite";
  let edges = ref [] in
  for u = 0 to a - 1 do
    for v = a to a + b - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n:(a + b) !edges

let petersen () =
  (* Outer 5-cycle 0..4, inner pentagram 5..9, spokes i -- i+5. *)
  let outer = [ (0, 1); (1, 2); (2, 3); (3, 4); (4, 0) ] in
  let inner = [ (5, 7); (7, 9); (9, 6); (6, 8); (8, 5) ] in
  let spokes = List.init 5 (fun i -> (i, i + 5)) in
  Graph.of_edges ~n:10 (outer @ inner @ spokes)

let lollipop ~clique ~tail =
  if clique < 3 || tail < 1 then invalid_arg "Gen.lollipop: clique >= 3, tail >= 1";
  let n = clique + tail in
  let edges = ref [] in
  for u = 0 to clique - 1 do
    for v = u + 1 to clique - 1 do
      edges := (u, v) :: !edges
    done
  done;
  for i = 0 to tail - 1 do
    let prev = if i = 0 then clique - 1 else clique + i - 1 in
    edges := (prev, clique + i) :: !edges
  done;
  Graph.of_edges ~n !edges

let caterpillar ~spine ~legs =
  if spine < 1 || legs < 0 then invalid_arg "Gen.caterpillar";
  let n = spine * (1 + legs) in
  let edges = ref [] in
  for s = 0 to spine - 1 do
    if s + 1 < spine then edges := (s, s + 1) :: !edges;
    for l = 0 to legs - 1 do
      edges := (s, spine + (s * legs) + l) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let star_of_cliques ~cliques ~clique_size =
  if cliques < 3 || clique_size < 2 then
    invalid_arg "Gen.star_of_cliques: cliques >= 3, clique_size >= 2";
  let n = (cliques * clique_size) + 1 in
  let hub = n - 1 in
  let base c = c * clique_size in
  let edges = ref [] in
  for c = 0 to cliques - 1 do
    for u = 0 to clique_size - 1 do
      for v = u + 1 to clique_size - 1 do
        edges := (base c + u, base c + v) :: !edges
      done
    done;
    (* Hub attaches to every clique's node 0... *)
    edges := (hub, base c) :: !edges;
    (* ...and an outer cycle joins the cliques through their node 1
       (or node 0 when the clique is a single edge). *)
    let port c = base c + min 1 (clique_size - 1) in
    edges := (port c, port ((c + 1) mod cliques)) :: !edges
  done;
  Graph.of_edges ~n !edges

let binary_tree_with_chords ~depth =
  if depth < 1 || depth > 16 then invalid_arg "Gen.binary_tree_with_chords";
  let n = (1 lsl (depth + 1)) - 1 in
  let edges = ref [] in
  for v = 1 to n - 1 do
    edges := ((v - 1) / 2, v) :: !edges
  done;
  let first_leaf = (1 lsl depth) - 1 in
  for leaf = first_leaf to n - 2 do
    edges := (leaf, leaf + 1) :: !edges
  done;
  Graph.of_edges ~n !edges

(* Nodes: 0 = hub w (degree 4 in the start tree), 1..4 its leaves,
   5 = blocking node b (degree 3), 6..7 = b's leaves.  Non-tree edges:
   {5,1} (the blocked improving edge) and {6,7} (the unblocking edge). *)
let deblock_gadget () =
  Graph.of_edges ~n:8
    [ (0, 1); (0, 2); (0, 3); (0, 4); (2, 5); (5, 6); (5, 7); (1, 5); (6, 7) ]

let deblock_gadget_tree g = (g, [| 0; 0; 0; 0; 0; 2; 5; 5 |])

let erdos_renyi rng ~n ~p =
  if n < 1 || p < 0.0 || p > 1.0 then invalid_arg "Gen.erdos_renyi";
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

(* Uniform random labelled tree via a Prüfer-like random attachment:
   a random permutation is threaded and each node attaches to a random
   earlier node of the permutation.  (Not the uniform distribution over all
   trees — Prufer.random_tree provides that — but cheap and connected.) *)
let random_attachment_tree rng n =
  let order = Array.init n (fun i -> i) in
  Prng.shuffle rng order;
  let edges = ref [] in
  for i = 1 to n - 1 do
    let j = Prng.int rng i in
    edges := (order.(i), order.(j)) :: !edges
  done;
  !edges

let erdos_renyi_connected rng ~n ~p =
  if n < 1 || p < 0.0 || p > 1.0 then invalid_arg "Gen.erdos_renyi_connected";
  let tree = random_attachment_tree rng n in
  let edges = ref tree in
  (* The tree consumed n-1 of the expected p * n(n-1)/2 edges; add the rest
     independently so density is approximately preserved. *)
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Prng.bernoulli rng p then edges := (u, v) :: !edges
    done
  done;
  Graph.of_edges ~n !edges

let random_connected rng ~n ~m =
  let max_m = n * (n - 1) / 2 in
  if n < 1 || m < n - 1 || m > max_m then invalid_arg "Gen.random_connected";
  let tree = random_attachment_tree rng n in
  let module ES = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let canon (u, v) = if u < v then (u, v) else (v, u) in
  let have = ref (List.fold_left (fun s e -> ES.add (canon e) s) ES.empty tree) in
  let extra = ref [] in
  while ES.cardinal !have < m do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then begin
      let e = canon (u, v) in
      if not (ES.mem e !have) then begin
        have := ES.add e !have;
        extra := e :: !extra
      end
    end
  done;
  Graph.of_edges ~n (tree @ !extra)

let barabasi_albert rng ~n ~k =
  if k < 1 || n < k + 1 then invalid_arg "Gen.barabasi_albert: n >= k+1, k >= 1";
  (* Repeated-endpoints trick: sampling uniformly from the multiset of edge
     endpoints is exactly degree-proportional sampling. *)
  let endpoints = ref [] in
  let n_endpoints = ref 0 in
  let edges = ref [] in
  let add_edge u v =
    edges := (u, v) :: !edges;
    endpoints := u :: v :: !endpoints;
    n_endpoints := !n_endpoints + 2
  in
  (* Seed: a (k+1)-clique so early targets exist. *)
  for u = 0 to k do
    for v = u + 1 to k do
      add_edge u v
    done
  done;
  let endpoint_array = ref [||] in
  let refresh () = endpoint_array := Array.of_list !endpoints in
  refresh ();
  for v = k + 1 to n - 1 do
    let module IS = Set.Make (Int) in
    let targets = ref IS.empty in
    let guard = ref 0 in
    while IS.cardinal !targets < k && !guard < 10_000 do
      incr guard;
      let t = Prng.choose rng !endpoint_array in
      if t <> v then targets := IS.add t !targets
    done;
    IS.iter (fun t -> add_edge v t) !targets;
    refresh ()
  done;
  Graph.of_edges ~n !edges

let random_geometric_connected rng ~n ~radius =
  if n < 1 || radius <= 0.0 then invalid_arg "Gen.random_geometric_connected";
  let xs = Array.init n (fun _ -> Prng.float rng 1.0) in
  let ys = Array.init n (fun _ -> Prng.float rng 1.0) in
  let dist2 u v = ((xs.(u) -. xs.(v)) ** 2.0) +. ((ys.(u) -. ys.(v)) ** 2.0) in
  let r2 = radius *. radius in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if dist2 u v <= r2 then edges := (u, v) :: !edges
    done
  done;
  (* Patch connectivity: while several components remain, add the shortest
     inter-component link — mimics deploying a relay node's radio link. *)
  let uf = Union_find.create n in
  List.iter (fun (u, v) -> ignore (Union_find.union uf u v)) !edges;
  while Union_find.count uf > 1 do
    let best = ref None in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if not (Union_find.same uf u v) then begin
          let d = dist2 u v in
          match !best with
          | Some (bd, _, _) when bd <= d -> ()
          | _ -> best := Some (d, u, v)
        end
      done
    done;
    match !best with
    | Some (_, u, v) ->
        edges := (u, v) :: !edges;
        ignore (Union_find.union uf u v)
    | None -> assert false
  done;
  Graph.of_edges ~n !edges

let random_regular rng ~n ~d =
  if d < 1 || d >= n || (n * d) mod 2 <> 0 then invalid_arg "Gen.random_regular";
  let attempt () =
    let stubs = Array.make (n * d) 0 in
    for v = 0 to n - 1 do
      for j = 0 to d - 1 do
        stubs.((v * d) + j) <- v
      done
    done;
    Prng.shuffle rng stubs;
    let module ES = Set.Make (struct
      type t = int * int

      let compare = compare
    end) in
    let ok = ref true in
    let seen = ref ES.empty in
    let edges = ref [] in
    let i = ref 0 in
    while !ok && !i < n * d do
      let u = stubs.(!i) and v = stubs.(!i + 1) in
      i := !i + 2;
      let e = (min u v, max u v) in
      if u = v || ES.mem e !seen then ok := false
      else begin
        seen := ES.add e !seen;
        edges := e :: !edges
      end
    done;
    if !ok then Some (Graph.of_edges ~n !edges) else None
  in
  let rec go tries =
    if tries > 5_000 then invalid_arg "Gen.random_regular: too many restarts"
    else
      match attempt () with
      | Some g when Algo.is_connected g -> g
      | _ -> go (tries + 1)
  in
  go 0

let with_random_ids rng g = Graph.relabel_ids g (Algo.random_ids rng (Graph.n g))

let family_names =
  [
    "path"; "ring"; "star"; "wheel"; "grid"; "torus"; "hypercube"; "complete";
    "petersen"; "lollipop"; "caterpillar"; "star-of-cliques"; "er"; "er-dense";
    "ba"; "geometric"; "regular";
  ]

let by_name name rng ~n =
  let isqrt x =
    let r = int_of_float (sqrt (float_of_int x)) in
    if (r + 1) * (r + 1) <= x then r + 1 else r
  in
  match name with
  | "path" -> path n
  | "ring" -> ring (max 3 n)
  | "star" -> star (max 2 n)
  | "wheel" -> wheel (max 4 n)
  | "grid" ->
      let r = max 2 (isqrt n) in
      grid ~rows:r ~cols:(max 2 ((n + r - 1) / r))
  | "torus" ->
      let r = max 3 (isqrt n) in
      torus ~rows:r ~cols:(max 3 ((n + r - 1) / r))
  | "hypercube" ->
      let d = max 2 (int_of_float (Float.round (log (float_of_int (max 4 n)) /. log 2.0))) in
      hypercube d
  | "complete" -> complete (max 3 n)
  | "petersen" -> petersen ()
  | "lollipop" -> lollipop ~clique:(max 3 (n / 2)) ~tail:(max 1 (n - max 3 (n / 2)))
  | "caterpillar" -> caterpillar ~spine:(max 1 (n / 4)) ~legs:3
  | "star-of-cliques" ->
      let cliques = max 3 (n / 5) in
      star_of_cliques ~cliques ~clique_size:4
  | "er" -> erdos_renyi_connected rng ~n ~p:(2.5 *. log (float_of_int (max 2 n)) /. float_of_int n)
  | "er-dense" -> erdos_renyi_connected rng ~n ~p:0.35
  | "ba" -> barabasi_albert rng ~n ~k:2
  | "geometric" ->
      let radius = 1.8 *. sqrt (log (float_of_int (max 2 n)) /. float_of_int n) in
      random_geometric_connected rng ~n ~radius
  | "regular" ->
      let n = if n * 3 mod 2 = 0 then n else n + 1 in
      random_regular rng ~n ~d:3
  | other -> invalid_arg (Printf.sprintf "Gen.by_name: unknown family %S" other)

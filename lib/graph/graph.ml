type t = {
  n : int;
  adj : int array array;
  edges : (int * int) array;
  ids : int array;
  id_index : (int, int) Hashtbl.t;
}

let check_ids ~n ids =
  if Array.length ids <> n then invalid_arg "Graph: ids length mismatch";
  let seen = Hashtbl.create n in
  Array.iter
    (fun id ->
      if Hashtbl.mem seen id then invalid_arg "Graph: duplicate identifier";
      Hashtbl.add seen id ())
    ids

let build ~n ~ids edge_list =
  let module ES = Set.Make (struct
    type t = int * int

    let compare = compare
  end) in
  let canon (u, v) =
    if u = v then invalid_arg "Graph: self-loop";
    if u < 0 || v < 0 || u >= n || v >= n then invalid_arg "Graph: endpoint out of range";
    if u < v then (u, v) else (v, u)
  in
  let set = List.fold_left (fun acc e -> ES.add (canon e) acc) ES.empty edge_list in
  let edges = Array.of_list (ES.elements set) in
  let deg = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      deg.(u) <- deg.(u) + 1;
      deg.(v) <- deg.(v) + 1)
    edges;
  let adj = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  Array.iter
    (fun (u, v) ->
      adj.(u).(fill.(u)) <- v;
      fill.(u) <- fill.(u) + 1;
      adj.(v).(fill.(v)) <- u;
      fill.(v) <- fill.(v) + 1)
    edges;
  Array.iter (fun a -> Array.sort compare a) adj;
  let id_index = Hashtbl.create n in
  Array.iteri (fun i id -> Hashtbl.add id_index id i) ids;
  { n; adj; edges; ids; id_index }

let of_edges ?ids ~n edge_list =
  if n < 0 then invalid_arg "Graph: negative node count";
  let ids = match ids with Some a -> Array.copy a | None -> Array.init n (fun i -> i) in
  check_ids ~n ids;
  build ~n ~ids edge_list

let complete n =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  of_edges ~n !edges

let empty n = of_edges ~n []

let n g = g.n

let m g = Array.length g.edges

let neighbors g i = g.adj.(i)

let degree g i = Array.length g.adj.(i)

let max_degree g =
  let best = ref 0 in
  for i = 0 to g.n - 1 do
    if degree g i > !best then best := degree g i
  done;
  !best

let min_degree g =
  if g.n = 0 then 0
  else begin
    let best = ref max_int in
    for i = 0 to g.n - 1 do
      if degree g i < !best then best := degree g i
    done;
    !best
  end

let mem_edge g u v =
  if u < 0 || v < 0 || u >= g.n || v >= g.n || u = v then false
  else begin
    let a = g.adj.(u) in
    let rec bsearch lo hi =
      if lo > hi then false
      else
        let mid = (lo + hi) / 2 in
        if a.(mid) = v then true
        else if a.(mid) < v then bsearch (mid + 1) hi
        else bsearch lo (mid - 1)
    in
    bsearch 0 (Array.length a - 1)
  end

let edges g = g.edges

let id g i = g.ids.(i)

let index_of_id g identifier =
  match Hashtbl.find_opt g.id_index identifier with
  | Some i -> i
  | None -> raise Not_found

let min_id_node g =
  if g.n = 0 then invalid_arg "Graph.min_id_node: empty graph";
  let best = ref 0 in
  for i = 1 to g.n - 1 do
    if g.ids.(i) < g.ids.(!best) then best := i
  done;
  !best

let relabel_ids g ids =
  check_ids ~n:g.n ids;
  let ids = Array.copy ids in
  let id_index = Hashtbl.create g.n in
  Array.iteri (fun i v -> Hashtbl.add id_index v i) ids;
  { g with ids; id_index }

let iter_nodes g f =
  for i = 0 to g.n - 1 do
    f i
  done

let iter_edges g f = Array.iter (fun (u, v) -> f u v) g.edges

let fold_edges g ~init ~f = Array.fold_left (fun acc (u, v) -> f acc u v) init g.edges

let non_edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for v = g.n - 1 downto u + 1 do
      if not (mem_edge g u v) then acc := (u, v) :: !acc
    done
  done;
  !acc

let equal a b = a.n = b.n && a.edges = b.edges && a.ids = b.ids

let pp ppf g =
  Format.fprintf ppf "@[<v>graph n=%d m=%d@," g.n (m g);
  iter_edges g (fun u v -> Format.fprintf ppf "  %d -- %d@," u v);
  Format.fprintf ppf "@]"
